package tango

import (
	"fmt"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/core/sched"
	"tango/internal/switchsim"
)

// Re-exported types: these aliases are the public names for the pieces of
// the system an application composes.
type (
	// Device is any switch reachable for probing: an in-process emulated
	// switch (SimDevice) or a live TCP OpenFlow endpoint
	// (internal/ofconn.Controller satisfies it).
	Device = probe.Device
	// Engine is the probing engine that applies Tango patterns.
	Engine = probe.Engine
	// Profile describes an emulated switch model.
	Profile = switchsim.Profile
	// Switch is an emulated OpenFlow switch.
	Switch = switchsim.Switch
	// Policy is a lexicographic cache-replacement policy.
	Policy = switchsim.Policy
	// SortKey is one attribute+direction component of a Policy.
	SortKey = switchsim.SortKey
	// ScoreCard is a switch's measured control-channel cost model.
	ScoreCard = pattern.ScoreCard
	// DB is the central Tango pattern and score database.
	DB = pattern.DB
	// Request is one switch request for the scheduler.
	Request = sched.Request
	// RequestGraph is a dependency DAG of switch requests.
	RequestGraph = sched.Graph
	// SizeResult reports flow-table size inference.
	SizeResult = infer.SizeResult
	// PolicyResult reports cache-policy inference.
	PolicyResult = infer.PolicyResult
)

// The four calibrated switch models of the paper's evaluation.
var (
	// ProfileOVS is the Open vSwitch software switch.
	ProfileOVS = switchsim.OVS
	// ProfileSwitch1 is the Vendor #1 hardware switch (FIFO software table
	// over a 2K/4K TCAM, strongly priority-sensitive installation).
	ProfileSwitch1 = switchsim.Switch1
	// ProfileSwitch2 is the Vendor #2 hardware switch (2560-entry
	// double-wide TCAM only).
	ProfileSwitch2 = switchsim.Switch2
	// ProfileSwitch3 is the Vendor #3 hardware switch (adaptive-width
	// 767/369 TCAM only).
	ProfileSwitch3 = switchsim.Switch3
)

// Cache policies for emulated switches.
var (
	PolicyFIFO     = switchsim.PolicyFIFO
	PolicyLRU      = switchsim.PolicyLRU
	PolicyLFU      = switchsim.PolicyLFU
	PolicyPriority = switchsim.PolicyPriority
)

// NewEmulatedSwitch builds an emulated switch from a profile, running on a
// virtual clock.
func NewEmulatedSwitch(p Profile, opts ...switchsim.Option) *Switch {
	return switchsim.New(p, opts...)
}

// NewEngine wraps a device in a probing engine.
func NewEngine(dev Device) *Engine { return probe.NewEngine(dev) }

// EngineFor wraps an emulated switch in a probing engine on its virtual
// clock.
func EngineFor(s *Switch) *Engine {
	return probe.NewEngine(probe.SimDevice{S: s})
}

// NewDB returns an empty pattern/score database.
func NewDB() *DB { return pattern.NewDB() }

// Model is the complete inferred fingerprint of one switch — what Tango
// knows after probing it.
type Model struct {
	// Name labels the switch.
	Name string
	// Sizes is the flow-table layer inference (Algorithm 1).
	Sizes *SizeResult
	// Microflow reports traffic-driven exact-match caching (OVS style).
	Microflow bool
	// Policy is the cache-policy inference (Algorithm 2); nil when the
	// switch has no cache hierarchy to probe (single layer or microflow).
	Policy *PolicyResult
	// Costs is the fitted control-channel score card.
	Costs *ScoreCard
}

// String renders the model compactly.
func (m *Model) String() string {
	s := fmt.Sprintf("switch %s: %s", m.Name, m.Sizes.String())
	if m.Microflow {
		s += " caching=microflow"
	} else if m.Policy != nil {
		s += " policy=" + m.Policy.Policy.String()
	}
	if m.Costs != nil {
		s += fmt.Sprintf(" costs{add=%v addNew=%v shift=%v mod=%v del=%v}",
			m.Costs.AddSamePriority.Round(time.Microsecond),
			m.Costs.AddNewPriority.Round(time.Microsecond),
			m.Costs.ShiftPerEntry.Round(time.Nanosecond),
			m.Costs.Mod.Round(time.Microsecond),
			m.Costs.Del.Round(time.Microsecond))
	}
	return s
}

// InspectOptions tunes Inspect. The zero value is sensible.
type InspectOptions struct {
	// Name labels the produced model and score card.
	Name string
	// Seed fixes all probing randomness.
	Seed int64
	// MaxRules bounds the size-probing budget (0 = default 16384).
	MaxRules int
	// SkipPolicy disables the (comparatively expensive) policy probe.
	SkipPolicy bool
	// SkipCosts disables control-cost fitting.
	SkipCosts bool
	// Retry bounds recovery from transient control-channel failures
	// (timeouts, injected faults). The zero value keeps every operation
	// single-attempt; probe.DefaultRetry suits lossy channels.
	Retry probe.Retry
}

// Inspect runs the full Tango inference pipeline against a device: size
// probing, microflow detection, cache-policy probing (when a multi-layer
// hierarchy is present), and control-cost fitting. Probe rules are removed
// as each phase finishes; the device should otherwise be idle, and its
// flow tables are assumed empty at entry (probe a switch before putting it
// in production, or drain it first).
func Inspect(dev Device, opts InspectOptions) (*Model, error) {
	if opts.Name == "" {
		opts.Name = "switch"
	}
	e := probe.NewEngine(dev)
	e.Retry = opts.Retry
	m := &Model{Name: opts.Name}

	sizeOpts := infer.SizeOptions{Seed: opts.Seed, MaxRules: opts.MaxRules}
	sizes, err := infer.ProbeSizes(e, sizeOpts)
	if err != nil {
		return nil, fmt.Errorf("tango: size probing: %w", err)
	}
	m.Sizes = sizes
	e.ClearProbeRules(0, uint32(sizes.RulesInstalled), 1000)

	micro, _, err := infer.DetectMicroflowCaching(e, 9<<20, 1000)
	if err != nil {
		return nil, fmt.Errorf("tango: microflow detection: %w", err)
	}
	m.Microflow = micro

	if !opts.SkipPolicy && !micro && len(sizes.Levels) >= 2 {
		pr, err := infer.ProbePolicy(e, infer.PolicyOptions{
			CacheSize: sizes.Levels[0].Census,
			Seed:      opts.Seed + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("tango: policy probing: %w", err)
		}
		m.Policy = pr
	}

	if !opts.SkipCosts {
		card, err := infer.MeasureCosts(e, opts.Name, infer.CostOptions{})
		if err != nil {
			return nil, fmt.Errorf("tango: cost fitting: %w", err)
		}
		card.PathLatency = nil
		for _, l := range sizes.Levels {
			card.PathLatency = append(card.PathLatency, l.MeanRTT)
		}
		m.Costs = card
	}
	return m, nil
}

// NewRequestGraph returns an empty request DAG.
func NewRequestGraph() *RequestGraph { return sched.NewGraph() }

// TangoScheduler returns the measurement-driven scheduler (Algorithm 3)
// with priority sorting enabled.
func TangoScheduler(db *DB) sched.Scheduler {
	return &sched.Tango{DB: db, SortPriorities: true}
}

// DionysusScheduler returns the critical-path baseline scheduler.
func DionysusScheduler() sched.Scheduler { return sched.Dionysus{} }

// Schedule drains the request graph using the scheduler against per-switch
// probing engines and returns the simulated network-wide makespan.
func Schedule(g *RequestGraph, s sched.Scheduler, engines map[string]*Engine) (time.Duration, error) {
	ex := sched.EngineExecutor{}
	for name, e := range engines {
		ex[name] = e
	}
	res, err := sched.Run(g, s, ex, sched.RunOptions{})
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// EnforcePriorities assigns minimal DAG-level priorities to requests whose
// applications left them unset (§7.2's priority enforcement).
func EnforcePriorities(g *RequestGraph, base uint16) { sched.EnforcePriorities(g, base) }
