// Package tango is a Go implementation of Tango ("Tango: Simplifying SDN
// Control with Automatic Switch Property Inference, Abstraction, and
// Optimization", CoNEXT 2014): an SDN control framework that copes with
// switch implementation diversity by measuring switches instead of trusting
// their self-reports.
//
// Tango probes a switch through its standard OpenFlow interface with
// *Tango patterns* — sequences of flow-mod commands paired with matching
// data traffic — and infers from the measurements:
//
//   - the number of flow-table layers and the size of each one
//     (TCAM vs. kernel vs. user-space tables), via RTT clustering and a
//     negative-binomial sampling estimator;
//   - the cache-replacement policy governing which rules live in the fast
//     hardware table, as a lexicographic composite of monotone attribute
//     orders (FIFO, LRU, LFU, priority, and combinations);
//   - the control-channel cost model: what additions, modifications, and
//     deletions cost, and how installation order — especially rule
//     priority order — changes the bill.
//
// A network scheduler then uses the inferred score cards to order rule
// updates per switch (delete/modify/add grouping, ascending-priority
// installation, priority enforcement), beating diversity-oblivious
// schedulers such as critical-path (Dionysus-style) scheduling.
//
// The package exposes the high-level API: Inspect to fingerprint a device,
// NewEmulatedSwitch for the four calibrated vendor models the paper
// measures, and Schedule to drain a dependency DAG of switch requests.
// Deeper control lives in the internal packages; see DESIGN.md for the
// layout and EXPERIMENTS.md for the paper-vs-measured record.
package tango
