module tango

go 1.22
