// Command switchd runs an emulated OpenFlow switch on a TCP listener so
// that controllers — including Tango's own probing engine — can exercise
// the full wire protocol against it.
//
// Usage:
//
//	switchd -listen :6633 -profile switch1 -scale 0.001
//
// The -scale flag compresses the emulated latencies into wall time (0.001
// turns a simulated 6 ms flow-mod into 6 µs) so interactive probing remains
// fast while relative magnitudes — which is all Tango's inference needs —
// are preserved.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"tango/internal/faults"
	"tango/internal/ofconn"
	"tango/internal/simclock"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:6633", "address to listen on")
		profile      = flag.String("profile", "switch1", "switch profile: ovs, switch1, switch2, switch3, fig5")
		scale        = flag.Float64("scale", 0.001, "wall-time scale for emulated latencies")
		defaultRoute = flag.Bool("default-route", false, "pre-install the punt-to-controller default route")
		seed         = flag.Int64("seed", 42, "latency model RNG seed")
		faultSpec    = flag.String("faults", "", `inject control-channel faults, e.g. "drop=0.01,delay=0.05,seed=7" (kinds: drop, delay, duplicate, reorder, reset, overflow)`)
		tcli         telemetry.CLI
	)
	tcli.BindFlags(flag.CommandLine)
	flag.Parse()

	prof, err := profileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faultCfg, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "switchd: -faults: %v\n", err)
		os.Exit(2)
	}
	// The shared telemetry block installs the process defaults (and, with
	// -telemetry, the HTTP exporter with /metrics/series and /debug/pprof);
	// the serve loop binds the installed registry/tracer explicitly so the
	// per-connection counters land where the exporter looks. switchd never
	// exits cleanly, so the flush (file outputs) is best-effort only.
	if _, err := tcli.Setup(); err != nil {
		log.Fatalf("switchd: %v", err)
	}
	var serveOpts ofconn.ServeOptions
	if tcli.Enabled() {
		serveOpts.Metrics, serveOpts.Tracer = telemetry.Default(), telemetry.DefaultTracer()
		if tcli.Addr != "" {
			log.Printf("switchd: telemetry on http://%s/", tcli.Addr)
		}
	}
	opts := []switchsim.Option{
		switchsim.WithClock(&simclock.Real{Scale: *scale}),
		switchsim.WithSeed(*seed),
	}
	if *defaultRoute {
		opts = append(opts, switchsim.WithDefaultRoute())
	}
	sw := switchsim.New(prof, opts...)
	// Built after the telemetry setup so the fault counters land in the
	// registry the HTTP endpoint serves.
	serveOpts.Faults = faults.NewInjector(faultCfg)
	if serveOpts.Faults != nil {
		log.Printf("switchd: injecting faults: %s", faultCfg)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("switchd: %v", err)
	}
	log.Printf("switchd: %s (%s, dpid=%#x) listening on %s, scale=%g",
		prof.Name, prof.Kind, prof.DatapathID, ln.Addr(), *scale)
	log.Fatal(ofconn.ServeWith(ln, sw, serveOpts))
}

// profileByName maps the flag value to a vendor profile.
func profileByName(name string) (switchsim.Profile, error) {
	switch name {
	case "ovs":
		return switchsim.OVS(), nil
	case "switch1":
		return switchsim.Switch1(), nil
	case "switch2":
		return switchsim.Switch2(), nil
	case "switch3":
		return switchsim.Switch3(), nil
	case "fig5":
		return switchsim.FigureFiveSwitch(), nil
	default:
		return switchsim.Profile{}, fmt.Errorf("switchd: unknown profile %q (want ovs, switch1, switch2, switch3, fig5)", name)
	}
}
