// Command switchd runs an emulated OpenFlow switch on a TCP listener so
// that controllers — including Tango's own probing engine — can exercise
// the full wire protocol against it.
//
// Usage:
//
//	switchd -listen :6633 -profile switch1 -scale 0.001
//
// The -scale flag compresses the emulated latencies into wall time (0.001
// turns a simulated 6 ms flow-mod into 6 µs) so interactive probing remains
// fast while relative magnitudes — which is all Tango's inference needs —
// are preserved.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, open
// connections drain their in-flight operation (replies still go out), and
// the telemetry exports flush before exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tango/internal/faults"
	"tango/internal/ofconn"
	"tango/internal/simclock"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// shutdownGrace bounds how long a signal-initiated shutdown waits for open
// connections to drain before force-closing them.
const shutdownGrace = 5 * time.Second

// config is the switch-daemon configuration assembled from flags; the
// lifecycle tests build servers from it directly.
type config struct {
	listen       string
	profile      string
	scale        float64
	defaultRoute bool
	seed         int64
	faultSpec    string
}

// buildServer constructs the emulated switch and its listener-bound server.
// The caller runs Serve and owns Shutdown.
func buildServer(cfg config, serveOpts ofconn.ServeOptions) (*ofconn.Server, error) {
	prof, err := profileByName(cfg.profile)
	if err != nil {
		return nil, err
	}
	faultCfg, err := faults.ParseSpec(cfg.faultSpec)
	if err != nil {
		return nil, fmt.Errorf("switchd: -faults: %w", err)
	}
	opts := []switchsim.Option{
		switchsim.WithClock(&simclock.Real{Scale: cfg.scale}),
		switchsim.WithSeed(cfg.seed),
	}
	if cfg.defaultRoute {
		opts = append(opts, switchsim.WithDefaultRoute())
	}
	sw := switchsim.New(prof, opts...)
	serveOpts.Faults = faults.NewInjector(faultCfg)
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return nil, fmt.Errorf("switchd: %w", err)
	}
	return ofconn.NewServer(ln, sw, serveOpts), nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:6633", "address to listen on")
	flag.StringVar(&cfg.profile, "profile", "switch1", "switch profile: ovs, switch1, switch2, switch3, fig5")
	flag.Float64Var(&cfg.scale, "scale", 0.001, "wall-time scale for emulated latencies")
	flag.BoolVar(&cfg.defaultRoute, "default-route", false, "pre-install the punt-to-controller default route")
	flag.Int64Var(&cfg.seed, "seed", 42, "latency model RNG seed")
	flag.StringVar(&cfg.faultSpec, "faults", "", `inject control-channel faults, e.g. "drop=0.01,delay=0.05,seed=7" (kinds: drop, delay, duplicate, reorder, reset, overflow)`)
	var tcli telemetry.CLI
	tcli.BindFlags(flag.CommandLine)
	flag.Parse()

	// The shared telemetry block installs the process defaults (and, with
	// -telemetry, the HTTP exporter with /metrics/series and /debug/pprof);
	// the serve loop binds the installed registry/tracer explicitly so the
	// per-connection counters land where the exporter looks. The graceful
	// shutdown path flushes the file outputs before exit.
	flush, err := tcli.Setup()
	if err != nil {
		log.Fatalf("switchd: %v", err)
	}
	var serveOpts ofconn.ServeOptions
	if tcli.Enabled() {
		serveOpts.Metrics, serveOpts.Tracer = telemetry.Default(), telemetry.DefaultTracer()
		if tcli.Addr != "" {
			log.Printf("switchd: telemetry on http://%s/", tcli.Addr)
		}
	}
	srv, err := buildServer(cfg, serveOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.faultSpec != "" {
		log.Printf("switchd: injecting faults: %s", cfg.faultSpec)
	}
	prof, _ := profileByName(cfg.profile)
	log.Printf("switchd: %s (%s, dpid=%#x) listening on %s, scale=%g",
		prof.Name, prof.Kind, prof.DatapathID, srv.Addr(), cfg.scale)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("switchd: %v: draining connections (grace %v)", s, shutdownGrace)
		if err := srv.Shutdown(shutdownGrace); err != nil {
			log.Printf("switchd: %v", err)
		}
	}()

	serveErr := srv.Serve()
	if err := flush(); err != nil {
		log.Printf("switchd: telemetry flush: %v", err)
	}
	if serveErr != nil {
		log.Fatalf("switchd: %v", serveErr)
	}
	log.Print("switchd: stopped")
}

// profileByName maps the flag value to a vendor profile.
func profileByName(name string) (switchsim.Profile, error) {
	switch name {
	case "ovs":
		return switchsim.OVS(), nil
	case "switch1":
		return switchsim.Switch1(), nil
	case "switch2":
		return switchsim.Switch2(), nil
	case "switch3":
		return switchsim.Switch3(), nil
	case "fig5":
		return switchsim.FigureFiveSwitch(), nil
	default:
		return switchsim.Profile{}, fmt.Errorf("switchd: unknown profile %q (want ovs, switch1, switch2, switch3, fig5)", name)
	}
}
