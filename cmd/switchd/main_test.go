package main

import "testing"

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"ovs", "switch1", "switch2", "switch3", "fig5"} {
		p, err := profileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name == "" {
			t.Fatalf("%s: empty profile", name)
		}
	}
	if _, err := profileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
