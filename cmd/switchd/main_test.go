package main

import (
	"io"
	"log"
	"runtime"
	"testing"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/ofconn"
	"tango/internal/telemetry"
)

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"ovs", "switch1", "switch2", "switch3", "fig5"} {
		p, err := profileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name == "" {
			t.Fatalf("%s: empty profile", name)
		}
	}
	if _, err := profileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestBuildServerRejectsBadConfig(t *testing.T) {
	if _, err := buildServer(config{listen: "127.0.0.1:0", profile: "nope"}, ofconn.ServeOptions{}); err == nil {
		t.Fatal("bad profile accepted")
	}
	if _, err := buildServer(config{listen: "127.0.0.1:0", profile: "switch1", faultSpec: "bogus"}, ofconn.ServeOptions{}); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

// TestSwitchdFleetLifecycle is the daemon's lifecycle under a fleet: three
// switchd servers come up, an ofconn.Fleet connects and probes all of them,
// and graceful shutdown drains every server — Serve returns nil, later ops
// fail fast, and no server goroutine leaks.
func TestSwitchdFleetLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()

	quiet := ofconn.ServeOptions{
		Logger:  log.New(io.Discard, "", 0),
		Metrics: telemetry.NewRegistry(),
	}
	var servers []*ofconn.Server
	serveErrs := make(chan error, 3)
	fleet := ofconn.NewFleet()
	defer fleet.Close()
	for _, cfg := range []config{
		{listen: "127.0.0.1:0", profile: "switch1", scale: 1e-6, seed: 1},
		{listen: "127.0.0.1:0", profile: "switch2", scale: 1e-6, seed: 2},
		{listen: "127.0.0.1:0", profile: "ovs", scale: 1e-6, seed: 3},
	} {
		srv, err := buildServer(cfg, quiet)
		if err != nil {
			t.Fatalf("%s: %v", cfg.profile, err)
		}
		servers = append(servers, srv)
		go func() { serveErrs <- srv.Serve() }()
		if err := fleet.Connect(cfg.profile, srv.Addr().String()); err != nil {
			t.Fatalf("connect %s: %v", cfg.profile, err)
		}
	}

	db := pattern.NewDB()
	if err := fleet.ProbeAll(db, infer.CostOptions{Samples: 16}); err != nil {
		t.Fatalf("ProbeAll: %v", err)
	}
	for _, name := range fleet.Names() {
		if _, ok := db.Score(name); !ok {
			t.Fatalf("no score card for %s", name)
		}
	}

	for i, srv := range servers {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			t.Fatalf("server %d Shutdown: %v (want graceful drain)", i, err)
		}
	}
	for range servers {
		select {
		case err := <-serveErrs:
			if err != nil {
				t.Fatalf("Serve after Shutdown: %v, want nil", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Serve did not return after Shutdown")
		}
	}
	// The drained daemons refuse further work.
	if err := fleet.ProbeAll(pattern.NewDB(), infer.CostOptions{Samples: 4}); err == nil {
		t.Fatal("ProbeAll succeeded against shut-down servers")
	}
	fleet.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
