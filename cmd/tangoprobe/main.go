// Command tangoprobe fingerprints a switch with Tango's inference pipeline:
// flow-table layer sizes (Algorithm 1), microflow-caching detection, cache
// replacement policy (Algorithm 2), and the control-channel cost card.
//
// Probe an emulated profile in process:
//
//	tangoprobe -profile switch1
//
// or a live OpenFlow endpoint (e.g. one served by switchd):
//
//	tangoprobe -connect 127.0.0.1:6633 -max-rules 2048
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tango"
	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/ofconn"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

func main() {
	var (
		profile  = flag.String("profile", "", "emulated profile: ovs, switch1, switch2, switch3")
		policy   = flag.String("policy", "", "override cache policy for emulated profile: fifo, lru, lfu, priority")
		connect  = flag.String("connect", "", "probe a live OpenFlow switch at this TCP address instead")
		maxRules = flag.Int("max-rules", 0, "size-probing budget (0 = default)")
		seed     = flag.Int64("seed", 1, "probing RNG seed")
		skipPol  = flag.Bool("skip-policy", false, "skip the cache-policy probe")
		curves   = flag.Bool("curves", false, "also measure priority-ordering installation curves")
		channel  = flag.Bool("channel", false, "also run the Oflops-style channel benchmark")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-reply timeout for -connect (0 = wait forever)")
		retry    = flag.Bool("retry", true, "retry transient channel failures for -connect (bounded backoff)")
		tcli     telemetry.CLI
	)
	tcli.BindFlags(flag.CommandLine)
	flag.Parse()

	// Install the process-wide telemetry defaults (registry, tracer, flight
	// recorder, optional HTTP exporter) before any engine or switch is
	// constructed, so everything below binds to them.
	flush, err := tcli.Setup()
	if err != nil {
		log.Fatalf("tangoprobe: %v", err)
	}

	var (
		dev      tango.Device
		name     string
		hardened probe.Retry
	)
	switch {
	case *connect != "":
		c, err := ofconn.DialOptions(*connect, ofconn.ControllerOptions{Timeout: *timeout})
		if err != nil {
			log.Fatalf("tangoprobe: %v", err)
		}
		defer c.Close()
		name = fmt.Sprintf("dpid-%#x", c.Features().DatapathID)
		dev = c
		if *retry {
			hardened = probe.DefaultRetry
		}
	case *profile != "":
		prof, err := byName(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *policy != "" {
			p, err := policyByName(*policy)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			prof = prof.WithPolicy(p)
		}
		name = prof.Name
		sw := tango.NewEmulatedSwitch(prof, switchsim.WithSeed(*seed))
		dev = tango.EngineFor(sw).Device()
	default:
		fmt.Fprintln(os.Stderr, "tangoprobe: need -profile or -connect")
		os.Exit(2)
	}

	start := time.Now()
	model, err := tango.Inspect(dev, tango.InspectOptions{
		Name:       name,
		Seed:       *seed,
		MaxRules:   *maxRules,
		SkipPolicy: *skipPol,
		Retry:      hardened,
	})
	if err != nil {
		log.Fatalf("tangoprobe: %v", err)
	}
	fmt.Println(model)
	fmt.Printf("layers:\n")
	for i, l := range model.Sizes.Levels {
		fmt.Printf("  level %d: ~%d entries (census %d), mean RTT %v\n",
			i, l.Size, l.Census, l.MeanRTT.Round(10*time.Microsecond))
	}
	if model.Policy != nil {
		for i, r := range model.Policy.Rounds {
			fmt.Printf("  policy round %d: correlations=%v\n", i, r.Correlations)
		}
	}
	fmt.Printf("probing wall time: %v (rules=%d, probes=%d)\n",
		time.Since(start).Round(time.Millisecond),
		model.Sizes.RulesInstalled, model.Sizes.ProbesSent)

	if *channel {
		rep, err := probe.BenchmarkChannel(tango.NewEngine(dev), probe.ChannelBenchOptions{})
		if err != nil {
			log.Fatalf("tangoprobe: channel benchmark: %v", err)
		}
		fmt.Println(rep)
	}

	if *curves {
		e := tango.NewEngine(dev)
		cs, err := infer.MeasurePriorityCurves(e, infer.CurveOptions{Seed: *seed})
		if err != nil {
			log.Fatalf("tangoprobe: curves: %v", err)
		}
		fmt.Println("priority-ordering installation curves:")
		for _, order := range pattern.Orders {
			fmt.Printf("  %-10s", order.String())
			for _, pt := range cs[order] {
				fmt.Printf("  n=%d:%v", pt.N, pt.Total.Round(time.Millisecond))
			}
			fmt.Println()
		}
	}

	if err := flush(); err != nil {
		log.Fatalf("tangoprobe: %v", err)
	}
}

func byName(name string) (switchsim.Profile, error) {
	switch name {
	case "ovs":
		return switchsim.OVS(), nil
	case "switch1":
		return switchsim.Switch1(), nil
	case "switch2":
		return switchsim.Switch2(), nil
	case "switch3":
		return switchsim.Switch3(), nil
	default:
		return switchsim.Profile{}, fmt.Errorf("tangoprobe: unknown profile %q", name)
	}
}

func policyByName(name string) (switchsim.Policy, error) {
	switch name {
	case "fifo":
		return switchsim.PolicyFIFO, nil
	case "lru":
		return switchsim.PolicyLRU, nil
	case "lfu":
		return switchsim.PolicyLFU, nil
	case "priority":
		return switchsim.PolicyPriority, nil
	default:
		return switchsim.Policy{}, fmt.Errorf("tangoprobe: unknown policy %q", name)
	}
}
