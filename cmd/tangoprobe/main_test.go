package main

import "testing"

func TestByName(t *testing.T) {
	for _, name := range []string{"ovs", "switch1", "switch2", "switch3"} {
		if _, err := byName(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := byName("zz"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"fifo", "lru", "lfu", "priority"} {
		p, err := policyByName(name)
		if err != nil || len(p.Keys) == 0 {
			t.Fatalf("%s: %v %v", name, p, err)
		}
	}
	if _, err := policyByName("zz"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
