// Command tangobench regenerates every table and figure of the paper's
// evaluation from the emulated testbed and prints the rows/series the paper
// reports. With -out it also writes one whitespace-separated .dat file per
// series, ready for gnuplot.
//
//	tangobench                  # run everything
//	tangobench -only f3c,f10    # run a subset
//	tangobench -runs 3          # fewer repeat runs for the 10-run figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"tango/internal/experiments"
	"tango/internal/faults"
	"tango/internal/telemetry"
)

// experiment is one runnable table/figure driver.
type experiment struct {
	id   string
	desc string
	run  func(runs int) []fmt.Stringer
}

func catalog(faultSpec string) []experiment {
	tab := func(f func() *experiments.Table) func(int) []fmt.Stringer {
		return func(int) []fmt.Stringer { return []fmt.Stringer{f()} }
	}
	figs := func(f func(int) []*experiments.Figure) func(int) []fmt.Stringer {
		return func(runs int) []fmt.Stringer {
			var out []fmt.Stringer
			for _, fg := range f(runs) {
				out = append(out, fg)
			}
			return out
		}
	}
	return []experiment{
		{"table1", "Table 1: table types and sizes", tab(experiments.Table1)},
		{"f2", "Figure 2: delay tiers on OVS / Switch#1 / Switch#2", func(int) []fmt.Stringer {
			var out []fmt.Stringer
			for _, fg := range experiments.Figure2() {
				out = append(out, fg)
			}
			return out
		}},
		{"f3a", "Figure 3(a): add/mod/del permutations", func(runs int) []fmt.Stringer {
			return []fmt.Stringer{experiments.Figure3a(runs)}
		}},
		{"f3b", "Figure 3(b): add vs modify", func(int) []fmt.Stringer {
			return []fmt.Stringer{experiments.Figure3b(nil)}
		}},
		{"f3c", "Figure 3(c): priority orderings", func(int) []fmt.Stringer {
			return []fmt.Stringer{experiments.Figure3c(nil)}
		}},
		{"f5", "Figure 5: RTT tiers on Switch#2", func(int) []fmt.Stringer {
			return []fmt.Stringer{experiments.Figure5()}
		}},
		{"f6", "Figure 6: policy-probe initialization pattern", func(int) []fmt.Stringer {
			return []fmt.Stringer{experiments.Figure6()}
		}},
		{"sizeacc", "Size-inference accuracy (<5% headline)", tab(experiments.SizeAccuracy)},
		{"policyacc", "Policy-inference accuracy", tab(experiments.PolicyAccuracy)},
		{"reported", "Switch-reported vs inferred capacity", tab(experiments.ReportedVsInferred)},
		{"qos", "Cache policy × traffic: fast-path hit rates", tab(experiments.CacheHitRates)},
		{"table2", "Table 2: ClassBench files", tab(experiments.Table2)},
		{"f8", "Figure 8: OVS scheduling scenarios", figs(experiments.Figure8)},
		{"f9", "Figure 9: Switch#1 scheduling scenarios", figs(experiments.Figure9)},
		{"f10", "Figure 10: testbed LF/TE scenarios", tab(experiments.Figure10)},
		{"f11", "Figure 11: priority sorting vs enforcement", tab(experiments.Figure11)},
		{"f12", "Figure 12: B4 TE on OVS", func(int) []fmt.Stringer {
			return []fmt.Stringer{experiments.Figure12(0)}
		}},
		{"overflow", "Overflow-inference attack scenarios (timing channel + detector)", tab(experiments.Overflow)},
		{"churn", "Heavy-churn scenarios (inference under timeout expiry)", tab(experiments.ChurnScenarios)},
		{"altpolicy", "Non-LEX cache policies (classify-or-reject)", tab(experiments.AltPolicy)},
		{"scale", "B4-wide sharded scale harness (honours -scale-flows, -scale-shards)", tab(experiments.Scale)},
		{"fleet", "Continuous-inference fleet service (honours -fleet-switches, -fleet-workers)", tab(experiments.Fleet)},
		{"conformance", "Ground-truth inference conformance harness (honours -faults)", func(int) []fmt.Stringer {
			t, err := experiments.Conformance(24, 1, faultSpec)
			if err != nil {
				// The spec was validated in main; this is unreachable.
				fmt.Fprintf(os.Stderr, "tangobench: %v\n", err)
				os.Exit(1)
			}
			return []fmt.Stringer{t}
		}},
	}
}

func main() {
	var (
		only       = flag.String("only", "", "comma-separated experiment ids (default: all)")
		runs       = flag.Int("runs", 10, "repeat runs for the multi-run figures")
		out        = flag.String("out", "", "directory to write .dat series files into")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		faultSpec  = flag.String("faults", "", `control-channel fault spec for the conformance experiment, e.g. "drop=0.01,delay=0.05,seed=7" (see internal/faults)`)
		parallel   = flag.Int("parallel", 1, "run up to this many experiments concurrently (0 = GOMAXPROCS); output order is unchanged")
		schedWork  = flag.Int("sched-workers", 0, "worker pool size for per-switch batches inside the scheduling experiments (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		inferWork  = flag.Int("infer-workers", 0, "worker pool size for per-profile cells inside the inference experiments (table1, sizeacc, policyacc, reported) (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		scaleFlows = flag.Int("scale-flows", 0, "resident-flow target for the scale experiment (0 = harness default, 1<<20)")
		scaleShard = flag.Int("scale-shards", 0, "shard count for the scale experiment (0 = one shard per B4 site); results are identical at any setting")
		fleetSw    = flag.Int("fleet-switches", 0, "simulated-member count for the fleet experiment (0 = 64)")
		fleetWork  = flag.Int("fleet-workers", 0, "shard worker-pool size for the fleet experiment (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		tcli       telemetry.CLI
	)
	tcli.BindFlags(flag.CommandLine)
	flag.Parse()
	experiments.SchedWorkers = *schedWork
	experiments.InferWorkers = *inferWork
	experiments.ScaleFlows = *scaleFlows
	experiments.ScaleShards = *scaleShard
	experiments.FleetSwitches = *fleetSw
	experiments.FleetWorkers = *fleetWork

	if _, err := faults.ParseSpec(*faultSpec); err != nil {
		fmt.Fprintf(os.Stderr, "tangobench: -faults: %v\n", err)
		os.Exit(2)
	}

	// Validate output destinations before burning minutes of experiment
	// time, so a typo'd path fails immediately instead of at the end.
	if *out != "" {
		if err := checkWritableDir(*out); err != nil {
			fmt.Fprintf(os.Stderr, "tangobench: -out: %v\n", err)
			os.Exit(1)
		}
	}
	for _, p := range tcli.OutputPaths() {
		if err := checkWritableFile(p[1]); err != nil {
			fmt.Fprintf(os.Stderr, "tangobench: %s: %v\n", p[0], err)
			os.Exit(1)
		}
	}
	flush, err := tcli.Setup()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tangobench: %v\n", err)
		os.Exit(1)
	}

	cat := catalog(*faultSpec)
	if *list {
		for _, e := range cat {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id != "" {
			selected[id] = true
		}
	}
	if len(selected) > 0 {
		known := map[string]bool{}
		for _, e := range cat {
			known[e.id] = true
		}
		var unknown []string
		for id := range selected {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "tangobench: unknown experiment(s): %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	var chosen []experiment
	for _, e := range cat {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		chosen = append(chosen, e)
	}
	for i, ch := range launch(chosen, *runs, *parallel) {
		res := <-ch
		e := chosen[i]
		for _, r := range res.results {
			fmt.Println(r)
			if *out != "" {
				if err := writeDat(*out, e.id, r); err != nil {
					fmt.Fprintf(os.Stderr, "tangobench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s done in %v]\n\n", e.id, res.elapsed.Round(time.Millisecond))
	}
	if err := flush(); err != nil {
		fmt.Fprintf(os.Stderr, "tangobench: %v\n", err)
		os.Exit(1)
	}
}

// expResult is one experiment's finished output plus its wall time.
type expResult struct {
	results []fmt.Stringer
	elapsed time.Duration
}

// launch starts the chosen experiments across a pool of `parallel` workers
// (0 selects GOMAXPROCS) and returns one channel per experiment, in input
// order. Each experiment owns its switches, clocks, and RNGs, so results are
// identical at any parallelism; the caller drains the channels in order,
// which keeps the printed output byte-for-byte the same as a serial run.
func launch(chosen []experiment, runs, parallel int) []chan expResult {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(chosen) {
		parallel = len(chosen)
	}
	done := make([]chan expResult, len(chosen))
	for i := range chosen {
		done[i] = make(chan expResult, 1)
	}
	next := make(chan int, len(chosen))
	for i := range chosen {
		next <- i
	}
	close(next)
	for w := 0; w < parallel; w++ {
		go func() {
			for i := range next {
				start := time.Now()
				results := chosen[i].run(runs)
				done[i] <- expResult{results: results, elapsed: time.Since(start)}
			}
		}()
	}
	return done
}

// checkWritableDir verifies dir can be created and written into by probing
// with a temp file.
func checkWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".tangobench-*")
	if err != nil {
		return fmt.Errorf("directory %s is not writable: %w", dir, err)
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// checkWritableFile verifies path can be opened for writing without
// truncating an existing file.
func checkWritableFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

// writeDat dumps figures as per-series gnuplot .dat files and tables as a
// single .txt file.
func writeDat(dir, id string, r fmt.Stringer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	switch v := r.(type) {
	case *experiments.Figure:
		for _, s := range v.Series {
			name := sanitize(id + "_" + s.Name)
			var b strings.Builder
			fmt.Fprintf(&b, "# %s — %s\n", v.Title, s.Name)
			for i := range s.X {
				fmt.Fprintf(&b, "%g %g\n", s.X[i], s.Y[i])
			}
			if err := os.WriteFile(filepath.Join(dir, name+".dat"), []byte(b.String()), 0o644); err != nil {
				return err
			}
		}
	case *experiments.Table:
		name := sanitize(id)
		return os.WriteFile(filepath.Join(dir, name+".txt"), []byte(v.String()), 0o644)
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}
