package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tango/internal/experiments"
)

func TestSanitize(t *testing.T) {
	if got := sanitize("f3c_same priority (OVS)"); strings.ContainsAny(got, " ()") {
		t.Fatalf("sanitize left specials: %q", got)
	}
}

func TestCatalogIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range catalog("") {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	for _, id := range []string{"table1", "f2", "f3c", "f10", "f12", "qos", "reported", "scale"} {
		if !seen[id] {
			t.Fatalf("missing experiment id %q", id)
		}
	}
}

func TestWriteDat(t *testing.T) {
	dir := t.TempDir()
	fig := &experiments.Figure{
		Title:  "t",
		Series: []experiments.Series{{Name: "s one", X: []float64{1, 2}, Y: []float64{3, 4}}},
	}
	if err := writeDat(dir, "exp", fig); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "exp_s_one.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "1 3\n2 4\n") {
		t.Fatalf("dat content: %q", data)
	}
	tab := &experiments.Table{Title: "tt", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	if err := writeDat(dir, "tab", tab); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tab.txt")); err != nil {
		t.Fatal(err)
	}
}

// unwritablePath returns a path whose parent is a regular file, which no
// process — including root — can create children under.
func unwritablePath(t *testing.T) string {
	t.Helper()
	blocker := filepath.Join(t.TempDir(), "afile")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(blocker, "sub")
}

func TestCheckWritableDirRejectsBadPath(t *testing.T) {
	if err := checkWritableDir(unwritablePath(t)); err == nil {
		t.Fatal("checkWritableDir accepted a path under a regular file")
	}
}

func TestCheckWritableDirAcceptsNewDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "new", "nested")
	if err := checkWritableDir(dir); err != nil {
		t.Fatal(err)
	}
	// The probe temp file must not linger.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("probe left %d entries behind", len(ents))
	}
}

func TestCheckWritableFileRejectsBadPath(t *testing.T) {
	if err := checkWritableFile(filepath.Join(unwritablePath(t), "m.json")); err == nil {
		t.Fatal("checkWritableFile accepted a path under a regular file")
	}
}

func TestCheckWritableFileKeepsExistingContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte("existing"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkWritableFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "existing" {
		t.Fatalf("probe truncated the file: %q", data)
	}
}
