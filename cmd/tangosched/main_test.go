package main

import "testing"

func TestParseRatio(t *testing.T) {
	a, m, d, err := parseRatio("2:1:1")
	if err != nil || a != 2 || m != 1 || d != 1 {
		t.Fatalf("got %d:%d:%d err=%v", a, m, d, err)
	}
	for _, bad := range []string{"", "1:2", "1:2:3:4", "x:1:1", "-1:1:1", "0:0:0"} {
		if _, _, _, err := parseRatio(bad); err == nil {
			t.Errorf("ratio %q accepted", bad)
		}
	}
}
