// Command tangosched runs the network-wide scheduling scenarios of §7.2 —
// link failure and traffic engineering on the triangle hardware testbed —
// and prints a scheduler comparison.
//
//	tangosched -scenario lf -flows 400
//	tangosched -scenario te -requests 800 -ratio 2:1:1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"tango/internal/core/sched"
	"tango/internal/experiments"
	"tango/internal/telemetry"
)

func main() {
	var (
		scenario = flag.String("scenario", "lf", "scenario: lf (link failure) or te (traffic engineering)")
		flows    = flag.Int("flows", 400, "rerouted flows for -scenario lf")
		requests = flag.Int("requests", 800, "total requests for -scenario te")
		ratio    = flag.String("ratio", "2:1:1", "add:mod:del ratio for -scenario te")
		seed     = flag.Int64("seed", 1, "workload seed")
		tcli     telemetry.CLI
	)
	tcli.BindFlags(flag.CommandLine)
	flag.Parse()

	// Bind process-wide telemetry before probing or scheduling so the
	// sched.batch/sched.round spans land in the exported trace.
	flush, err := tcli.Setup()
	if err != nil {
		log.Fatalf("tangosched: %v", err)
	}

	profiles := experiments.TestbedProfiles()
	fmt.Println("probing testbed switches for score cards...")
	db := experiments.BuildScoreDB(profiles)
	for _, name := range db.Switches() {
		card, _ := db.Score(name)
		fmt.Printf("  %s: add=%v addNew=%v shift=%v/entry mod=%v del=%v typeSwitch=%v\n",
			name,
			card.AddSamePriority.Round(time.Microsecond),
			card.AddNewPriority.Round(time.Microsecond),
			card.ShiftPerEntry.Round(time.Microsecond),
			card.Mod.Round(time.Microsecond),
			card.Del.Round(time.Microsecond),
			card.TypeSwitch.Round(time.Microsecond))
	}
	fmt.Println()

	build := func() (*sched.Graph, map[string]experiments.PreloadSpec) {
		switch *scenario {
		case "lf":
			return experiments.LFScenario(*flows, *seed)
		case "te":
			a, m, d, err := parseRatio(*ratio)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			return experiments.TEScenario(*requests, a, m, d, *seed)
		default:
			fmt.Fprintf(os.Stderr, "tangosched: unknown scenario %q\n", *scenario)
			os.Exit(2)
			return nil, nil
		}
	}

	_, preload := build()
	existing := experiments.ExistingHigherFor(preload)
	schedulers := []sched.Scheduler{
		sched.Dionysus{},
		&sched.Tango{DB: db, ExistingHigher: existing},
		&sched.Tango{DB: db, SortPriorities: true, ExistingHigher: existing},
	}
	var base time.Duration
	for i, s := range schedulers {
		g, pl := build()
		ex := experiments.ExecutorFor(profiles, pl, 5)
		res, err := sched.Run(g, s, ex, sched.RunOptions{})
		if err != nil {
			log.Fatalf("tangosched: %v", err)
		}
		d := res.Makespan
		if i == 0 {
			base = d
			fmt.Printf("%-22s %v (%d rounds)\n", s.Name(), d.Round(time.Millisecond), res.Rounds)
		} else {
			imp := 100 * (1 - d.Seconds()/base.Seconds())
			fmt.Printf("%-22s %v (%d rounds, %.1f%% faster than dionysus)\n",
				s.Name(), d.Round(time.Millisecond), res.Rounds, imp)
		}
	}

	if err := flush(); err != nil {
		log.Fatalf("tangosched: %v", err)
	}
}

func parseRatio(s string) (a, m, d int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("tangosched: ratio must be a:m:d, got %q", s)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return 0, 0, 0, fmt.Errorf("tangosched: bad ratio component %q", p)
		}
		vals[i] = v
	}
	if vals[0]+vals[1]+vals[2] == 0 {
		return 0, 0, 0, fmt.Errorf("tangosched: ratio cannot be all zero")
	}
	return vals[0], vals[1], vals[2], nil
}
