package main

import (
	"io"
	"log"
	"runtime"
	"testing"
	"time"
)

// TestTangofleetSmoke is the service smoke test from the issue: spin up a
// small mixed fleet — including real TCP members through the switchd serve
// path — run a fixed-round inference batch through the exact code path main
// drives, and shut everything down without leaking goroutines.
func TestTangofleetSmoke(t *testing.T) {
	before := runtime.NumGoroutine()

	quiet := log.New(io.Discard, "", 0)
	cfg := fleetConfig{
		switches: 3,
		tcp:      2,
		rounds:   1,
		seed:     5,
		maxRules: 256,
		tcpScale: 1e-6,
	}
	res, err := execute(cfg, nil, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 3 || res.TCPSwitches != 2 {
		t.Fatalf("members = %d sim + %d tcp, want 3 + 2", res.Switches, res.TCPSwitches)
	}
	if res.InferErrs != 0 {
		t.Fatalf("inference errors: %d", res.InferErrs)
	}
	if res.Inferences != 5 || res.ScoreCards != 5 {
		t.Fatalf("inferences = %d, score cards = %d, want 5 each", res.Inferences, res.ScoreCards)
	}
	if res.SwitchesPerSec <= 0 || res.FlowModsPerSec <= 0 {
		t.Fatalf("rates not populated: %v switches/sec, %v flow-mods/sec",
			res.SwitchesPerSec, res.FlowModsPerSec)
	}

	// TCP servers are gone: the deferred Close inside execute drained them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTangofleetContinuousStops exercises the continuous-service path: the
// fleet loops until stop closes, then execute returns the final fold.
func TestTangofleetContinuousStops(t *testing.T) {
	quiet := log.New(io.Discard, "", 0)
	cfg := fleetConfig{
		switches: 2,
		seed:     11,
		maxRules: 256,
		interval: time.Millisecond, // exercise the progress ticker too
	}
	stop := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(stop)
	}()
	res, err := execute(cfg, stop, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 {
		t.Fatalf("service stopped after %d rounds, want >= 1", res.Rounds)
	}
	if res.Inferences < res.Rounds*cfg.switches {
		t.Fatalf("inferences = %d over %d rounds of %d switches", res.Inferences, res.Rounds, cfg.switches)
	}
}
