// Command tangofleet runs the continuous-inference controller service: a
// fleet of emulated switches — in-process simulated members plus optional
// real-TCP members served through the switchd path — continuously probed,
// inferred, and re-inferred on a sharded worker pool (see internal/fleet).
//
// Usage:
//
//	tangofleet -switches 256 -tcp 8 -workers 8            # run until SIGINT
//	tangofleet -switches 64 -rounds 4                     # fixed-round batch
//	tangofleet -switches 256 -telemetry 127.0.0.1:8080    # live HTTP exporter
//
// With -rounds 0 (the default) the service loops until SIGINT/SIGTERM and
// -interval logs periodic progress; with -rounds N it executes N rounds and
// exits. Either way the final fold — switches inferred, flow-mods/sec, p99
// probe RTT — is printed on exit and the telemetry exports are flushed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tango/internal/fleet"
	"tango/internal/ofconn"
	"tango/internal/telemetry"
)

// fleetConfig is the service configuration assembled from flags; the smoke
// test drives execute with it directly.
type fleetConfig struct {
	switches    int
	tcp         int
	workers     int
	rounds      int
	seed        int64
	maxRules    int
	probeRate   float64
	maxInflight int
	tcpScale    float64
	interval    time.Duration
}

// execute runs the fleet described by cfg: fixed rounds when cfg.rounds > 0,
// otherwise the continuous service until stop closes. TCP members are
// spawned in-process (SpawnSimTCP) and torn down — gracefully, draining
// in-flight ops — before return.
func execute(cfg fleetConfig, stop <-chan struct{}, lg *log.Logger) (*fleet.Result, error) {
	var tcpFleet *ofconn.Fleet
	if cfg.tcp > 0 {
		st, err := fleet.SpawnSimTCP(cfg.tcp, cfg.seed, cfg.tcpScale, ofconn.ControllerOptions{})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		tcpFleet = st.Fleet
		lg.Printf("tangofleet: %d TCP members up", st.Len())
	}
	o := fleet.Options{
		Switches:    cfg.switches,
		Workers:     cfg.workers,
		Rounds:      cfg.rounds,
		Seed:        cfg.seed,
		MaxRules:    cfg.maxRules,
		ProbeRate:   cfg.probeRate,
		MaxInflight: cfg.maxInflight,
		TCP:         tcpFleet,
	}
	if cfg.rounds > 0 {
		return fleet.Run(o)
	}
	s, err := fleet.Start(o)
	if err != nil {
		return nil, err
	}
	lg.Printf("tangofleet: %d members, continuous inference (SIGINT to stop)", s.Members())
	var tick <-chan time.Time
	if cfg.interval > 0 {
		t := time.NewTicker(cfg.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-stop:
			return s.Stop(), nil
		case <-tick:
			lg.Printf("tangofleet: %d rounds complete", s.Rounds())
		}
	}
}

func main() {
	var cfg fleetConfig
	flag.IntVar(&cfg.switches, "switches", 256, "simulated fleet members")
	flag.IntVar(&cfg.tcp, "tcp", 0, "real-TCP fleet members (in-process switchd servers)")
	flag.IntVar(&cfg.workers, "workers", 0, "shard worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.rounds, "rounds", 0, "inference rounds to run (0 = continuous until SIGINT)")
	flag.Int64Var(&cfg.seed, "seed", 42, "fleet RNG seed")
	flag.IntVar(&cfg.maxRules, "max-rules", 1024, "probe-rule cap per size-inference round")
	flag.Float64Var(&cfg.probeRate, "probe-rate", 0, "per-switch probe budget in probes/sec (0 = unlimited)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "global cap on members mid-round (0 = unbounded)")
	flag.Float64Var(&cfg.tcpScale, "tcp-scale", 1e-6, "wall-time scale for TCP members' emulated latencies")
	flag.DurationVar(&cfg.interval, "interval", 10*time.Second, "progress log interval in continuous mode")
	var tcli telemetry.CLI
	tcli.BindFlags(flag.CommandLine)
	flag.Parse()

	flush, err := tcli.Setup()
	if err != nil {
		log.Fatalf("tangofleet: %v", err)
	}
	if tcli.Addr != "" {
		log.Printf("tangofleet: telemetry on http://%s/", tcli.Addr)
	}

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("tangofleet: %v: stopping after the current round", s)
		close(stop)
	}()

	res, err := execute(cfg, stop, log.Default())
	if ferr := flush(); ferr != nil {
		log.Printf("tangofleet: telemetry flush: %v", ferr)
	}
	if err != nil {
		log.Fatalf("tangofleet: %v", err)
	}
	printResult(os.Stdout, res)
}

// printResult writes the human-facing fold summary.
func printResult(w *os.File, r *fleet.Result) {
	fmt.Fprintf(w, "fleet: %d switches (%d sim + %d tcp), %d workers, %d rounds in %v\n",
		r.Switches+r.TCPSwitches, r.Switches, r.TCPSwitches, r.Workers, r.Rounds, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "inference: %d completed (%.1f switches/sec), %d errors, %d score cards\n",
		r.Inferences, r.SwitchesPerSec, r.InferErrs, r.ScoreCards)
	fmt.Fprintf(w, "ops: %d flow-mods (%.0f/sec), %d probes (%d punted)\n",
		r.FlowMods, r.FlowModsPerSec, r.Probes, r.Punted)
	fmt.Fprintf(w, "probe rtt: p50 %v, p99 %v over %d samples\n",
		r.P50ProbeRTT, r.P99ProbeRTT, r.RTTSamples)
	if r.Throttles > 0 {
		fmt.Fprintf(w, "pacing: %d throttled admissions, %v total wait\n", r.Throttles, r.ThrottleWait)
	}
}
