// Event-driven failover: a controller holds OpenFlow connections to the
// three testbed switches, a link goes down, and the PORT_STATUS
// notification triggers a Tango-scheduled reroute — the full loop the
// paper's link-failure scenario implies, over real TCP sockets.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"tango"
	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/core/sched"
	"tango/internal/flowtable"
	"tango/internal/ofconn"
	"tango/internal/openflow"
	"tango/internal/packet"
	"tango/internal/simclock"
	"tango/internal/switchsim"
	"tango/internal/topo"
)

const flows = 120

func main() {
	// Bring up the triangle testbed as TCP OpenFlow endpoints.
	profiles := map[string]switchsim.Profile{
		"s1": switchsim.Switch1(),
		"s2": switchsim.Switch1(),
		"s3": switchsim.Switch3().WithTCAMCapacity(2048),
	}
	switches := map[string]*switchsim.Switch{}
	ctrls := map[string]*ofconn.Controller{}
	for name, prof := range profiles {
		sw := switchsim.New(prof,
			switchsim.WithClock(&simclock.Real{Scale: 1e-4}),
			switchsim.WithSeed(4))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		go ofconn.Serve(ln, sw)
		c, err := ofconn.Dial(ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		switches[name] = sw
		ctrls[name] = c
		fmt.Printf("connected to %s (dpid %#x, %d ports)\n",
			name, c.Features().DatapathID, len(c.Features().Ports))
	}

	// Baseline state: flows pinned on the s1→s2 direct path.
	var baseline []*openflow.FlowMod
	for f := 0; f < flows; f++ {
		baseline = append(baseline, &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    flowtable.ExactProbeMatch(uint32(f)),
			Priority: 100,
			Actions:  flowtable.Output(2), // port 2 = direct link to s2
		})
	}
	if err := ctrls["s1"].FlowMods(baseline); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %d baseline flows on s1 (batched, one barrier)\n\n", flows)

	// Probe cost cards up front, as Tango does before optimizing.
	db := tango.NewDB()
	for name, prof := range profiles {
		e := probe.NewEngine(probe.SimDevice{S: switchsim.New(prof, switchsim.WithSeed(7))})
		card, err := infer.MeasureCosts(e, name, infer.CostOptions{})
		if err != nil {
			log.Fatal(err)
		}
		db.PutScore(card)
	}

	// The event: port 2 on s1 (the s1–s2 link) goes down.
	net1 := topo.Triangle()
	fmt.Println("failing link s1-s2 ...")
	switches["s1"].SetPortDown(2, true)
	// Nudge the agent so it flushes the notification, then wait for it.
	go ctrls["s1"].Echo()
	select {
	case msg := <-ctrls["s1"].Notifications():
		ps, ok := msg.(*openflow.PortStatus)
		if !ok {
			log.Fatalf("unexpected notification %T", msg)
		}
		fmt.Printf("PORT_STATUS: port %d of s1 link down=%v\n",
			ps.Desc.PortNo, ps.Desc.State&openflow.PortStateLinkDown != 0)
		net1.RemoveLink("s1", "s2")
	case <-time.After(5 * time.Second):
		log.Fatal("no PORT_STATUS notification")
	}
	newPath := net1.ShortestPath("s1", "s2")
	fmt.Printf("recomputed path: %v\n\n", newPath)

	// Build the reroute DAG (reverse-path: transit rules on s3 first) and
	// schedule it with Tango against the live switches.
	g := sched.NewGraph()
	for f := 0; f < flows; f++ {
		add := g.AddNode(&sched.Request{
			Switch: "s3", Op: pattern.OpAdd,
			FlowID: uint32(10000 + f), Priority: uint16(1000 + f%97), HasPriority: true,
		})
		mod := g.AddNode(&sched.Request{
			Switch: "s1", Op: pattern.OpMod,
			FlowID: uint32(f), Priority: 100, HasPriority: true,
		})
		if err := g.AddEdge(add, mod); err != nil {
			log.Fatal(err)
		}
	}
	engines := map[string]*tango.Engine{}
	for name, c := range ctrls {
		engines[name] = tango.NewEngine(c)
	}
	start := time.Now()
	d, err := tango.Schedule(g, tango.TangoScheduler(db), engines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rerouted %d flows via %v in %v wall time (%v measured on-switch)\n",
		flows, newPath, time.Since(start).Round(time.Millisecond), d.Round(time.Millisecond))

	// Confirm the data plane: a rerouted flow now forwards on s3.
	raw, _ := buildProbe(10000)
	_, punted, err := ctrls["s3"].SendProbe(raw, 1)
	if err != nil || punted {
		log.Fatalf("transit rule not active on s3: punted=%v err=%v", punted, err)
	}
	fmt.Println("verified: transit rule active on s3, failover complete")
}

func buildProbe(id uint32) ([]byte, error) {
	return packet.BuildProbe(packet.ProbeSpec{FlowID: id})
}
