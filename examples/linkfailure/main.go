// Link failure on the triangle testbed (§7.2, Figure 10): the s1–s2 link
// fails and 400 flows must reroute via s3. Tango first probes each switch
// to build score cards, then schedules the rule updates — adds on the
// Vendor #3 switch, next-hop modifications on the Vendor #1 switch, in
// reverse-path order — and beats the diversity-oblivious critical-path
// (Dionysus-style) baseline by sorting the additions into ascending
// priority order.
//
//	go run ./examples/linkfailure
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tango"
	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/core/sched"
	"tango/internal/switchsim"
	"tango/internal/topo"
)

const reroutedFlows = 400

func main() {
	net := topo.Triangle()
	fmt.Println("triangle testbed: s1, s2 (Vendor #1), s3 (Vendor #3)")
	fmt.Printf("before: 400 flows on path %v\n", net.ShortestPath("s1", "s2"))
	net.RemoveLink("s1", "s2")
	newPath := net.ShortestPath("s1", "s2")
	fmt.Printf("link s1-s2 FAILED; new path %v\n\n", newPath)

	profiles := map[string]switchsim.Profile{
		"s1": switchsim.Switch1(),
		"s2": switchsim.Switch1(),
		"s3": switchsim.Switch3().WithTCAMCapacity(2048),
	}

	// Phase 1: probe each switch for its cost card.
	db := tango.NewDB()
	for name, prof := range profiles {
		e := probe.NewEngine(probe.SimDevice{S: switchsim.New(prof, switchsim.WithSeed(7))})
		card, err := infer.MeasureCosts(e, name, infer.CostOptions{})
		if err != nil {
			log.Fatal(err)
		}
		db.PutScore(card)
		fmt.Printf("probed %s: addNew=%v shift=%v/entry mod=%v\n", name,
			card.AddNewPriority.Round(time.Microsecond),
			card.ShiftPerEntry.Round(time.Microsecond),
			card.Mod.Round(time.Microsecond))
	}
	fmt.Println()

	// Phase 2: schedule the reroute under three schedulers.
	schedulers := []sched.Scheduler{
		sched.Dionysus{},
		&sched.Tango{DB: db},
		&sched.Tango{DB: db, SortPriorities: true},
	}
	var base time.Duration
	for i, s := range schedulers {
		d, err := runOnce(profiles, s)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = d
			fmt.Printf("%-24s %8v\n", s.Name(), d.Round(time.Millisecond))
			continue
		}
		fmt.Printf("%-24s %8v  (%.0f%% faster)\n", s.Name(),
			d.Round(time.Millisecond), 100*(1-d.Seconds()/base.Seconds()))
	}
}

// runOnce builds the reroute DAG and executes it on fresh switches.
func runOnce(profiles map[string]switchsim.Profile, s sched.Scheduler) (time.Duration, error) {
	g := sched.NewGraph()
	rng := rand.New(rand.NewSource(1))
	prios := rng.Perm(reroutedFlows)
	for f := 0; f < reroutedFlows; f++ {
		// New transit rule at s3 first (reverse-path), then flip s1.
		add := g.AddNode(&sched.Request{
			Switch: "s3", Op: pattern.OpAdd,
			FlowID: uint32(10000 + f), Priority: uint16(1000 + prios[f]), HasPriority: true,
		})
		mod := g.AddNode(&sched.Request{
			Switch: "s1", Op: pattern.OpMod,
			FlowID: uint32(f), Priority: 100, HasPriority: true,
		})
		if err := g.AddEdge(add, mod); err != nil {
			return 0, err
		}
	}
	engines := map[string]*tango.Engine{}
	for name, prof := range profiles {
		e := probe.NewEngine(probe.SimDevice{S: switchsim.New(prof, switchsim.WithSeed(5))})
		// The 400 flows' existing rules on s1/s2.
		for f := 0; f < reroutedFlows; f++ {
			if err := e.Install(uint32(f), 100); err != nil {
				return 0, err
			}
		}
		engines[name] = e
	}
	return tango.Schedule(g, s, engines)
}
