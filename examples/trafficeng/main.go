// Traffic engineering on the B4 backbone (§7.2, Figure 12): a traffic
// matrix change makes the max-min fair allocator move flows to alternate
// paths; the resulting rule changes — with reverse-path consistency
// dependencies — are scheduled network-wide under Dionysus and Tango.
//
//	go run ./examples/trafficeng
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tango"
	"tango/internal/core/infer"
	"tango/internal/core/probe"
	"tango/internal/core/sched"
	"tango/internal/switchsim"
	"tango/internal/topo"
	"tango/internal/update"
)

const flows = 1000

func main() {
	g := topo.B4()
	nodes := g.Nodes()
	fmt.Printf("B4 backbone: %d sites, OVS at every site\n", len(nodes))
	rng := rand.New(rand.NewSource(42))

	// Initial demands on shortest paths.
	demands := make([]topo.Demand, flows)
	before := topo.Allocation{}
	for i := range demands {
		src, dst := nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]
		for dst == src {
			dst = nodes[rng.Intn(len(nodes))]
		}
		demands[i] = topo.Demand{FlowID: uint32(i), Src: src, Dst: dst, Rate: float64(1 + rng.Intn(5))}
		before[uint32(i)] = g.ShortestPath(src, dst)
	}
	oldRates := topo.MaxMinFair(g, before, demands)

	// Traffic spike: half the flows triple their demand; starved flows are
	// moved to their second path by the TE controller.
	after := topo.Allocation{}
	moved := 0
	for i := range demands {
		f := uint32(i)
		after[f] = before[f]
		if i%2 == 0 {
			demands[i].Rate *= 3
		}
		if oldRates[f] < demands[i].Rate {
			if alts := g.KShortestPaths(demands[i].Src, demands[i].Dst, 2); len(alts) == 2 {
				after[f] = alts[1]
				moved++
			}
		}
	}
	newRates := topo.MaxMinFair(g, after, demands)
	var oldSum, newSum float64
	for _, d := range demands {
		oldSum += oldRates[d.FlowID]
		newSum += newRates[d.FlowID]
	}
	changes := topo.DiffAssignments(before, after)
	fmt.Printf("TM change: %d/%d flows rerouted, Σrate %.0f → %.0f, %d rule changes\n\n",
		moved, flows, oldSum, newSum, len(changes))

	// One probe suffices: all sites run the same OVS build.
	db := tango.NewDB()
	e := probe.NewEngine(probe.SimDevice{S: switchsim.New(switchsim.OVS(), switchsim.WithSeed(7))})
	card, err := infer.MeasureCosts(e, "ovs", infer.CostOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range nodes {
		c := *card
		c.SwitchName = n
		db.PutScore(&c)
	}

	var base time.Duration
	for i, s := range []sched.Scheduler{sched.Dionysus{}, &sched.Tango{DB: db, SortPriorities: true}} {
		d, err := run(changes, nodes, s)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = d
			fmt.Printf("%-24s %8v\n", s.Name(), d.Round(time.Millisecond))
			continue
		}
		fmt.Printf("%-24s %8v  (%.1f%% faster)\n", s.Name(),
			d.Round(time.Millisecond), 100*(1-d.Seconds()/base.Seconds()))
	}
}

// run plans the diff as a consistent-update DAG and executes it on
// per-site OVS engines.
func run(changes []topo.RuleChange, nodes []string, s sched.Scheduler) (time.Duration, error) {
	g, err := update.Plan(changes, update.PlanOptions{
		FlowIDBase: 50000, AssignPriorities: true, Seed: 9,
	})
	if err != nil {
		return 0, err
	}
	engines := map[string]*tango.Engine{}
	for _, n := range nodes {
		engines[n] = probe.NewEngine(probe.SimDevice{S: switchsim.New(switchsim.OVS(), switchsim.WithSeed(3))})
	}
	return tango.Schedule(g, s, engines)
}
