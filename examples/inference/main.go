// Inference over a live OpenFlow channel: this example starts the four
// vendor switch models as real TCP OpenFlow endpoints (what cmd/switchd
// serves) and runs Tango's inference against each through an actual
// socket — wire codec, handshake, barriers, probe packets and all.
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"tango"
	"tango/internal/ofconn"
	"tango/internal/simclock"
	"tango/internal/switchsim"
)

func main() {
	cases := []struct {
		profile  switchsim.Profile
		maxRules int
	}{
		{switchsim.OVS(), 512},
		{switchsim.Switch1().WithTCAMCapacity(256), 2048},
		{switchsim.Switch2().WithTCAMCapacity(320), 2048},
		{switchsim.Switch3(), 2048},
	}
	for _, c := range cases {
		if err := probeOverTCP(c.profile, c.maxRules); err != nil {
			log.Fatalf("%s: %v", c.profile.Name, err)
		}
	}
}

func probeOverTCP(profile switchsim.Profile, maxRules int) error {
	// Emulated latencies are compressed 10^6x into wall time: relative
	// magnitudes — all the inference uses — survive, and the probing
	// finishes in seconds. (Switch capacities above are scaled down for
	// the same reason; cmd/tangoprobe runs the full-size profiles.)
	prof := profile
	if prof.Kind == switchsim.ManagePolicyCache {
		prof.SoftwareCapacity = 3 * prof.TCAM.CapacityNarrow
	}
	sw := switchsim.New(prof,
		switchsim.WithClock(&simclock.Real{Scale: 1e-6}),
		switchsim.WithSeed(9))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go ofconn.Serve(ln, sw)

	ctrl, err := ofconn.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer ctrl.Close()

	fmt.Printf("connected to %s at %s (dpid %#x, %d tables)\n",
		prof.Name, ln.Addr(), ctrl.Features().DatapathID, ctrl.Features().NTables)

	start := time.Now()
	// RTTs over the loopback carry microsecond-scale TCP noise on top of
	// the scaled model latencies, so skip the (latency-ratio sensitive)
	// policy probe here; cmd/tangoprobe -profile runs it on virtual time.
	model, err := tango.Inspect(ctrl, tango.InspectOptions{
		Name:       prof.Name,
		MaxRules:   maxRules,
		SkipPolicy: true,
		SkipCosts:  true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %s\n", model)
	tables, err := ctrl.TableStats()
	if err != nil {
		return err
	}
	for _, ts := range tables {
		fmt.Printf("  switch-reported table %q: active=%d max=%d\n", ts.Name, ts.ActiveCount, ts.MaxEntries)
	}
	fmt.Printf("  probed in %v over TCP\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}
