// Quickstart: fingerprint an emulated switch with Tango's inference
// pipeline and print what it learned — table layers and sizes, the cache
// replacement policy, and the control-channel cost card.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"tango"
	"tango/internal/switchsim"
)

func main() {
	// A mystery switch: a 512-entry TCAM cache managed with an LFU policy
	// over an unbounded software table. Tango gets no hints — only the
	// OpenFlow control channel and probe packets.
	profile := switchsim.TestSwitch(512, tango.PolicyLFU)
	profile.SoftwareCapacity = 1536
	sw := tango.NewEmulatedSwitch(profile, switchsim.WithSeed(2024))

	fmt.Println("probing the switch (sizes → caching style → policy → costs)...")
	start := time.Now()
	model, err := tango.Inspect(tango.EngineFor(sw).Device(), tango.InspectOptions{Name: "mystery-switch"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v of wall time (%v of simulated switch time)\n\n",
		time.Since(start).Round(time.Millisecond), sw.Now().Sub(startOfTime(sw)))

	fmt.Println(model)
	fmt.Println()
	for i, l := range model.Sizes.Levels {
		fmt.Printf("  flow-table layer %d: ≈%d entries, mean RTT %v\n",
			i, l.Size, l.MeanRTT.Round(10*time.Microsecond))
	}
	if model.Policy != nil {
		fmt.Printf("  cache policy: %s\n", model.Policy.Policy)
	}
	fmt.Printf("  add (same priority):  %v\n", model.Costs.AddSamePriority.Round(time.Microsecond))
	fmt.Printf("  add (new priority):   %v\n", model.Costs.AddNewPriority.Round(time.Microsecond))
	fmt.Printf("  shift per displaced:  %v\n", model.Costs.ShiftPerEntry.Round(100*time.Nanosecond))
	fmt.Printf("  modify:               %v\n", model.Costs.Mod.Round(time.Microsecond))
	fmt.Printf("  delete:               %v\n", model.Costs.Del.Round(time.Microsecond))

	// The payoff: with the fitted score card, the scheduler knows that on
	// this switch 1000 descending-priority adds are far dearer than the
	// same adds ascending.
	desc := descendingCost(model.Costs, 1000)
	asc := ascendingCost(model.Costs, 1000)
	fmt.Printf("\npredicted cost of 1000 adds: descending %v vs ascending %v (%.0fx)\n",
		desc.Round(time.Millisecond), asc.Round(time.Millisecond), float64(desc)/float64(asc))
}

func startOfTime(sw *tango.Switch) time.Time {
	return time.Date(2014, time.December, 2, 0, 0, 0, 0, time.UTC)
}

func descendingCost(c *tango.ScoreCard, n int) time.Duration {
	return time.Duration(n)*c.AddNewPriority + time.Duration(n*(n-1)/2)*c.ShiftPerEntry
}

func ascendingCost(c *tango.ScoreCard, n int) time.Duration {
	return time.Duration(n) * c.AddNewPriority
}
