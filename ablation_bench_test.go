package tango

// ablation_bench_test.go benchmarks the design choices DESIGN.md calls out,
// comparing each mechanism against its simpler alternative:
//
//   - RTT clustering: gap-split+k-means (Find) vs. fixed-k k-means (FindK)
//   - size estimator: negative-binomial sampling vs. stage-2 census
//   - scheduling: greedy dependency barriers vs. the §6 concurrent
//     cross-switch extension with guard times
//   - priority handling: sorting vs. enforcement on the same workload

import (
	"math/rand"
	"testing"
	"time"

	"tango/internal/cluster"
	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/core/sched"
	"tango/internal/switchsim"
)

// tierSamples fabricates a three-tier RTT population.
func tierSamples(rng *rand.Rand, n int) []float64 {
	centres := []float64{0.665, 3.7, 7.5}
	xs := make([]float64, 0, 3*n)
	for _, c := range centres {
		for i := 0; i < n; i++ {
			xs = append(xs, c*(0.95+rng.Float64()*0.1))
		}
	}
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	return xs
}

func BenchmarkAblationClusterGapKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := tierSamples(rng, 2000)
	var found float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Find(xs, cluster.Options{})
		if err != nil {
			b.Fatal(err)
		}
		found = float64(len(res.Clusters))
	}
	b.ReportMetric(found, "tiers-found(true=3)")
}

func BenchmarkAblationClusterFixedK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := tierSamples(rng, 2000)
	var found float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fixed k=2 guess — what a controller would hardcode without the
		// gap stage — merges the two slowest tiers.
		res, err := cluster.FindK(xs, 2)
		if err != nil {
			b.Fatal(err)
		}
		found = float64(len(res.Clusters))
	}
	b.ReportMetric(found, "tiers-found(true=3)")
}

// sizeProbeOnce runs Algorithm 1 on a fresh 512-entry FIFO cache.
func sizeProbeOnce(b *testing.B, seed int64) *infer.SizeResult {
	b.Helper()
	p := switchsim.TestSwitch(512, switchsim.PolicyFIFO)
	p.SoftwareCapacity = 1536
	e := probe.NewEngine(probe.SimDevice{S: switchsim.New(p, switchsim.WithSeed(seed))})
	res, err := infer.ProbeSizes(e, infer.SizeOptions{Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkAblationSizeNegBinomial(b *testing.B) {
	var errPct float64
	for i := 0; i < b.N; i++ {
		res := sizeProbeOnce(b, int64(i))
		errPct = 100 * absf(float64(res.Levels[0].Size-512)) / 512
	}
	b.ReportMetric(errPct, "err-%")
}

func BenchmarkAblationSizeCensus(b *testing.B) {
	var errPct float64
	for i := 0; i < b.N; i++ {
		res := sizeProbeOnce(b, int64(i))
		errPct = 100 * absf(float64(res.Levels[0].Census-512)) / 512
	}
	b.ReportMetric(errPct, "err-%")
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// crossChainWorkload builds 200 two-op chains spanning two switches.
func crossChainWorkload() *sched.Graph {
	g := sched.NewGraph()
	for f := 0; f < 200; f++ {
		a := g.AddNode(&sched.Request{Switch: "s1", Op: pattern.OpMod, FlowID: uint32(f), Priority: 100, HasPriority: true})
		bn := g.AddNode(&sched.Request{Switch: "s2", Op: pattern.OpMod, FlowID: uint32(f), Priority: 100, HasPriority: true})
		if err := g.AddEdge(a, bn); err != nil {
			panic(err)
		}
	}
	return g
}

func ablationDB() *pattern.DB {
	db := pattern.NewDB()
	for _, n := range []string{"s1", "s2"} {
		db.PutScore(&pattern.ScoreCard{
			SwitchName: n, AddSamePriority: time.Millisecond,
			AddNewPriority: time.Millisecond, Mod: 6 * time.Millisecond, Del: 2 * time.Millisecond,
		})
	}
	return db
}

func BenchmarkAblationSchedulerBarriers(b *testing.B) {
	db := ablationDB()
	var makespan float64
	for i := 0; i < b.N; i++ {
		res, err := sched.Run(crossChainWorkload(), &sched.Tango{DB: db}, sched.CardExecutor{DB: db}, sched.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		makespan = res.Makespan.Seconds()
	}
	b.ReportMetric(makespan, "makespan-s")
}

func BenchmarkAblationSchedulerConcurrent(b *testing.B) {
	db := ablationDB()
	var makespan float64
	for i := 0; i < b.N; i++ {
		res, err := sched.Run(crossChainWorkload(), &sched.Tango{DB: db}, sched.CardExecutor{DB: db},
			sched.RunOptions{Concurrent: true, GuardTime: 500 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		makespan = res.Makespan.Seconds()
	}
	b.ReportMetric(makespan, "makespan-s")
}

// forkJoinWorkload builds 100 groups of {slow independent op on s1; cheap
// op on s2 unlocking an expensive successor on s2} — the shape where
// non-greedy prefix batching beats greedy whole-set issue.
func forkJoinWorkload() *sched.Graph {
	g := sched.NewGraph()
	for f := 0; f < 100; f++ {
		g.AddNode(&sched.Request{Switch: "s1", Op: pattern.OpMod, FlowID: uint32(f), Priority: 1, HasPriority: true})
		bn := g.AddNode(&sched.Request{Switch: "s2", Op: pattern.OpDel, FlowID: uint32(f), Priority: 1, HasPriority: true})
		cn := g.AddNode(&sched.Request{Switch: "s2", Op: pattern.OpMod, FlowID: uint32(1000 + f), Priority: 1, HasPriority: true})
		if err := g.AddEdge(bn, cn); err != nil {
			panic(err)
		}
	}
	return g
}

func nonGreedyDB() *pattern.DB {
	db := pattern.NewDB()
	for _, n := range []string{"s1", "s2"} {
		db.PutScore(&pattern.ScoreCard{SwitchName: n,
			AddSamePriority: time.Millisecond, AddNewPriority: time.Millisecond,
			Mod: 10 * time.Millisecond, Del: time.Millisecond})
	}
	return db
}

func BenchmarkAblationGreedyBatching(b *testing.B) {
	db := nonGreedyDB()
	var makespan float64
	for i := 0; i < b.N; i++ {
		res, err := sched.Run(forkJoinWorkload(), &sched.Tango{DB: db}, sched.CardExecutor{DB: db}, sched.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		makespan = res.Makespan.Seconds()
	}
	b.ReportMetric(makespan, "makespan-s")
}

func BenchmarkAblationNonGreedyBatching(b *testing.B) {
	db := nonGreedyDB()
	var makespan float64
	for i := 0; i < b.N; i++ {
		res, err := sched.Run(forkJoinWorkload(), &sched.Tango{DB: db}, sched.CardExecutor{DB: db}, sched.RunOptions{NonGreedy: true})
		if err != nil {
			b.Fatal(err)
		}
		makespan = res.Makespan.Seconds()
	}
	b.ReportMetric(makespan, "makespan-s")
}

// descendingAdds is the worst-case priority workload on one switch.
func descendingAdds(n int) *sched.Graph {
	g := sched.NewGraph()
	for i := 0; i < n; i++ {
		g.AddNode(&sched.Request{
			Switch: "s1", Op: pattern.OpAdd,
			FlowID: uint32(1000 + i), Priority: uint16(20000 - i), HasPriority: true,
		})
	}
	return g
}

func runPrioAblation(b *testing.B, sortPriorities bool) float64 {
	b.Helper()
	db := pattern.NewDB()
	db.PutScore(&pattern.ScoreCard{
		SwitchName: "s1", AddSamePriority: 400 * time.Microsecond,
		AddNewPriority: 900 * time.Microsecond, ShiftPerEntry: 14 * time.Microsecond,
		Mod: 6 * time.Millisecond, Del: 2 * time.Millisecond,
	})
	e := probe.NewEngine(probe.SimDevice{S: switchsim.New(switchsim.Switch1(), switchsim.WithSeed(1))})
	res, err := sched.Run(descendingAdds(800), &sched.Tango{DB: db, SortPriorities: sortPriorities},
		sched.EngineExecutor{"s1": e}, sched.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return res.Makespan.Seconds()
}

func BenchmarkAblationPrioritySortingOff(b *testing.B) {
	var makespan float64
	for i := 0; i < b.N; i++ {
		makespan = runPrioAblation(b, false)
	}
	b.ReportMetric(makespan, "makespan-s")
}

func BenchmarkAblationPrioritySortingOn(b *testing.B) {
	var makespan float64
	for i := 0; i < b.N; i++ {
		makespan = runPrioAblation(b, true)
	}
	b.ReportMetric(makespan, "makespan-s")
}
