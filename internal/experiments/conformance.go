package experiments

import (
	"fmt"

	"tango/internal/conformance"
	"tango/internal/faults"
)

// Conformance runs the ground-truth inference conformance harness as a
// benchmark table: n randomized switch profiles, probed end to end
// (size then policy) through an optionally faulty control channel. With an
// empty faultSpec the table is the clean-channel regression — every size
// within 10%, every policy exact; with faults it reports how gracefully
// inference degrades (typed faults, never hangs).
func Conformance(n int, seed int64, faultSpec string) (*Table, error) {
	cfg, err := faults.ParseSpec(faultSpec)
	if err != nil {
		return nil, fmt.Errorf("experiments: conformance: %w", err)
	}
	title := fmt.Sprintf("Inference conformance (%d randomized profiles, seed %d", n, seed)
	if cfg.Enabled() {
		title += ", faults " + cfg.String()
	}
	title += ")"
	t := &Table{
		Title:  title,
		Header: []string{"profile", "true size", "estimate", "err", "policy", "recovered", "outcome"},
	}
	specs := conformance.GenerateSpecs(n, seed)
	results := conformance.Run(specs, conformance.Options{Faults: cfg})
	for _, r := range results {
		truePolicy, recovered := "-", "-"
		if r.PolicyChecked || len(r.Spec.Policy.Keys) > 0 {
			truePolicy = r.Spec.Policy.String()
		}
		if r.Err != nil {
			outcome := "ORGANIC FAIL: " + r.Err.Error()
			if r.FaultTyped {
				outcome = "typed fault: " + r.Err.Error()
			}
			t.Rows = append(t.Rows, []string{r.Spec.Name, fmt.Sprint(r.Spec.CacheSize), "-", "-", truePolicy, "-", outcome})
			continue
		}
		if r.PolicyChecked {
			recovered = r.InferredPolicy.String()
		}
		outcome := "ok"
		if !r.SizeOK {
			outcome = "size off"
		}
		if r.PolicyChecked && !r.PolicyOK {
			outcome = "policy wrong"
		}
		t.Rows = append(t.Rows, []string{
			r.Spec.Name,
			fmt.Sprint(r.Spec.CacheSize),
			fmt.Sprint(r.SizeEstimate),
			fmt.Sprintf("%.1f%%", 100*r.SizeError),
			truePolicy,
			recovered,
			outcome,
		})
	}
	sum := conformance.Summarize(results)
	t.Rows = append(t.Rows, []string{"TOTAL", "", "", fmt.Sprintf("max %.1f%%", 100*sum.MaxSizeError), "",
		fmt.Sprintf("%d/%d exact", sum.PolicyExact, sum.PolicyChecked),
		fmt.Sprintf("converged %d/%d, typed faults %d, organic %d", sum.Converged, sum.Profiles, sum.TypedFaults, sum.OrganicFails)})
	return t, nil
}
