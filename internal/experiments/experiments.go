// Package experiments contains one driver per table and figure of the
// paper's evaluation (§3 and §7). Every driver builds its workload, runs it
// against emulated switches on virtual clocks, and returns the same rows or
// series the paper reports — cmd/tangobench prints them, bench_test.go
// wraps them as benchmarks, and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is a titled grid of rendered cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Series is one plotted curve: paired X/Y values with a name.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// String renders the series compactly.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s --\n", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, "%g\t%g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// Figure is a titled collection of series.
type Figure struct {
	Title  string
	Series []Series
}

// String renders the figure.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	for i := range f.Series {
		b.WriteString(f.Series[i].String())
	}
	return b.String()
}

// seconds converts a duration to float seconds for series output.
func seconds(d time.Duration) float64 { return d.Seconds() }

// msec converts a duration to float milliseconds.
func msec(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// fmtDur renders a duration with stable precision for table cells.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
