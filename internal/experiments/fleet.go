package experiments

import (
	"fmt"
	"time"

	"tango/internal/fleet"
	"tango/internal/ofconn"
)

// fleet.go renders the continuous-inference controller service
// (internal/fleet) as a benchmark table: a sharded fleet of simulated
// switches plus a small real-TCP contingent served through the switchd
// path, probed and re-inferred over repeated rounds. The fold is
// bit-identical at any worker count (gated by TestFleetShardedDifferential),
// so rerunning with -fleet-workers 1 must print the same rows, the rate and
// wall-clock lines aside.

// FleetSwitches overrides the simulated-member count of the Fleet
// experiment (0 = 64). cmd/tangobench binds -fleet-switches to it; CI uses
// a reduced count so the smoke artifact stays fast.
var FleetSwitches int

// FleetWorkers overrides the shard worker-pool size of the Fleet experiment
// (0 = GOMAXPROCS). cmd/tangobench binds -fleet-workers to it; results are
// identical at any setting.
var FleetWorkers int

// fleetTCPMembers is the experiment's real-TCP contingent: in-process
// switchd servers dialed over loopback alongside the simulated members.
const fleetTCPMembers = 4

// Fleet runs the continuous-inference fleet for two rounds and tabulates
// the fold.
func Fleet() *Table {
	fail := func(err error) *Table {
		return &Table{
			Title:  "Fleet service: error",
			Header: []string{"error"},
			Rows:   [][]string{{err.Error()}},
		}
	}
	switches := FleetSwitches
	if switches == 0 {
		switches = 64
	}
	tcp, err := fleet.SpawnSimTCP(fleetTCPMembers, 1, 1e-6, ofconn.ControllerOptions{})
	if err != nil {
		return fail(err)
	}
	defer tcp.Close()
	res, err := fleet.Run(fleet.Options{
		Switches: switches,
		Workers:  FleetWorkers,
		Rounds:   2,
		Seed:     1,
		TCP:      tcp.Fleet,
	})
	if err != nil {
		return fail(err)
	}
	t := &Table{
		Title: fmt.Sprintf("Fleet service: %d sim + %d tcp switches, %d workers, %d rounds",
			res.Switches, res.TCPSwitches, res.Workers, res.Rounds),
		Header: []string{"metric", "value"},
	}
	row := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	row("inferences", fmt.Sprint(res.Inferences))
	row("inference errors", fmt.Sprint(res.InferErrs))
	row("score cards", fmt.Sprint(res.ScoreCards))
	row("flow mods", fmt.Sprint(res.FlowMods))
	row("probes", fmt.Sprintf("%d (%d punted)", res.Probes, res.Punted))
	row("probe RTT p50", fmt.Sprint(res.P50ProbeRTT))
	row("probe RTT p99", fmt.Sprint(res.P99ProbeRTT))
	row("rtt samples", fmt.Sprint(res.RTTSamples))
	row("switches inferred/sec", fmt.Sprintf("%.1f", res.SwitchesPerSec))
	row("flow-mods/sec", fmt.Sprintf("%.0f", res.FlowModsPerSec))
	row("wall", res.Wall.Round(time.Millisecond).String())
	return t
}
