package experiments

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"tango/internal/core/sched"
	"tango/internal/telemetry"
)

// schedRunOutput captures everything a sched.Run produces: the result, the
// run's full metric snapshot, and its trace events (wall timestamps zeroed —
// they are the only legitimately nondeterministic field).
type schedRunOutput struct {
	res    *sched.RunResult
	snap   *telemetry.Snapshot
	events []telemetry.SpanEvent
}

// runSchedOnce executes one scheduling run against a fresh registry and
// tracer. build must return a fresh graph and scheduler each call (Tango
// memoizes per-instance state; graphs are consumed by the run).
func runSchedOnce(t *testing.T, g *sched.Graph, s sched.Scheduler, exec sched.Executor, opts sched.RunOptions) schedRunOutput {
	t.Helper()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(nil)
	opts.Metrics = reg
	opts.Tracer = tr
	if tg, ok := s.(*sched.Tango); ok {
		tg.Metrics = reg
	}
	res, err := sched.Run(g, s, exec, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	snap.TakenAt = time.Time{}
	events := tr.Events()
	for i := range events {
		events[i].Wall = time.Time{}
	}
	return schedRunOutput{res: res, snap: snap, events: events}
}

// diffOutputs fails the test if two runs differ anywhere: result fields,
// every counter/gauge/histogram (including quantiles, whose sample ring is
// order-sensitive — the sharpest detector of nondeterministic aggregation),
// or any trace span.
func diffOutputs(t *testing.T, label string, serial, parallel schedRunOutput) {
	t.Helper()
	if !reflect.DeepEqual(serial.res, parallel.res) {
		t.Errorf("%s: RunResult diverged:\nserial:   %+v\nparallel: %+v", label, serial.res, parallel.res)
	}
	if !reflect.DeepEqual(serial.snap, parallel.snap) {
		t.Errorf("%s: metric snapshots diverged:\nserial:   %+v\nparallel: %+v", label, serial.snap, parallel.snap)
	}
	if !reflect.DeepEqual(serial.events, parallel.events) {
		t.Errorf("%s: trace events diverged (%d vs %d events)", label, len(serial.events), len(parallel.events))
	}
}

// TestRunParallelDifferential is the randomized gate for the parallel
// scheduler core: across seeds and the full option matrix (greedy vs
// non-greedy batching, concurrent cross-switch extension on/off, Tango vs
// Dionysus), a run with a worker pool must be bit-for-bit identical to the
// serial path — RunResult, metrics, and traces. CI runs it under -race,
// which also exercises the worker pool for data races.
func TestRunParallelDifferential(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		_, db := SchedWorkload(8, 400, 10, seed)
		exec := sched.CardExecutor{DB: db}
		newTango := func() sched.Scheduler {
			return &sched.Tango{DB: db, SortPriorities: true}
		}
		newDionysus := func() sched.Scheduler { return sched.Dionysus{} }
		schedulers := []struct {
			name string
			make func() sched.Scheduler
		}{
			{"tango", newTango},
			{"dionysus", newDionysus},
		}
		options := []struct {
			name string
			opts sched.RunOptions
		}{
			{"greedy", sched.RunOptions{}},
			{"nongreedy", sched.RunOptions{NonGreedy: true}},
			{"concurrent", sched.RunOptions{Concurrent: true, GuardTime: 2 * time.Millisecond}},
			{"nongreedy+concurrent", sched.RunOptions{NonGreedy: true, Concurrent: true, GuardTime: 2 * time.Millisecond}},
		}
		for _, sc := range schedulers {
			for _, oc := range options {
				label := fmt.Sprintf("seed=%d/%s/%s", seed, sc.name, oc.name)
				serialOpts := oc.opts
				serialOpts.Workers = 1
				parallelOpts := oc.opts
				parallelOpts.Workers = 8
				gs, _ := SchedWorkload(8, 400, 10, seed)
				serial := runSchedOnce(t, gs, sc.make(), exec, serialOpts)
				gp, _ := SchedWorkload(8, 400, 10, seed)
				parallel := runSchedOnce(t, gp, sc.make(), exec, parallelOpts)
				diffOutputs(t, label, serial, parallel)
			}
		}
	}
}

// TestRunParallelDifferentialEngines repeats the serial-vs-parallel check
// with real emulated engines (stateful switches on virtual clocks) on the
// hardware-testbed scenarios, covering the EngineExecutor path.
func TestRunParallelDifferentialEngines(t *testing.T) {
	profiles := TestbedProfiles()
	db := BuildScoreDB(profiles)
	scenarios := []struct {
		name  string
		build func() (*sched.Graph, map[string]PreloadSpec)
	}{
		{"LF", func() (*sched.Graph, map[string]PreloadSpec) { return LFScenario(120, 3) }},
		{"TE", func() (*sched.Graph, map[string]PreloadSpec) { return TEScenario(300, 2, 1, 1, 3) }},
	}
	for _, sc := range scenarios {
		run := func(workers int) schedRunOutput {
			g, preload := sc.build()
			ex := ExecutorFor(profiles, preload, 5)
			s := &sched.Tango{DB: db, SortPriorities: true, ExistingHigher: ExistingHigherFor(preload)}
			return runSchedOnce(t, g, s, ex, sched.RunOptions{Workers: workers})
		}
		diffOutputs(t, sc.name, run(1), run(6))
	}
}

// TestSchedGolden pins makespan and round count for one Tango and one
// Dionysus run over the seeded benchmark workload, so both scheduler
// behaviour and its determinism are regression-gated. These values change
// only if scheduling semantics change — not with worker count, allocation
// strategy, or frontier implementation.
func TestSchedGolden(t *testing.T) {
	_, db := SchedWorkload(8, 800, 10, 7)
	exec := sched.CardExecutor{DB: db}

	gT, _ := SchedWorkload(8, 800, 10, 7)
	tango, err := sched.Run(gT, &sched.Tango{DB: db, SortPriorities: true}, exec, sched.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gD, _ := SchedWorkload(8, 800, 10, 7)
	dio, err := sched.Run(gD, sched.Dionysus{}, exec, sched.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tango: makespan=%v rounds=%d; dionysus: makespan=%v rounds=%d",
		tango.Makespan, tango.Rounds, dio.Makespan, dio.Rounds)
	const (
		wantTangoMakespan = 349625 * time.Microsecond
		wantTangoRounds   = 10
		wantDioMakespan   = 362344250 * time.Nanosecond
		wantDioRounds     = 10
	)
	if tango.Makespan != wantTangoMakespan || tango.Rounds != wantTangoRounds {
		t.Errorf("tango run: makespan=%v rounds=%d, want %v/%d", tango.Makespan, tango.Rounds, wantTangoMakespan, wantTangoRounds)
	}
	if dio.Makespan != wantDioMakespan || dio.Rounds != wantDioRounds {
		t.Errorf("dionysus run: makespan=%v rounds=%d, want %v/%d", dio.Makespan, dio.Rounds, wantDioMakespan, wantDioRounds)
	}
}
