package experiments

import (
	"fmt"

	"tango/internal/core/infer"
	"tango/internal/core/probe"
	"tango/internal/openflow"
	"tango/internal/switchsim"
)

// ReportedVsInferred demonstrates the paper's §1 motivation — "the reports
// can be inaccurate. For example, the maximum number of flow entries that
// can be inserted is approximate and depends on the matching fields" — by
// comparing what each switch *reports* through OFPST_TABLE statistics with
// what Tango *measures* for the rule shape actually in use (double-wide
// L2+L3 probe rules).
func ReportedVsInferred() *Table {
	t := &Table{
		Title:  "Switch-reported vs. Tango-inferred usable capacity (L2+L3 rules)",
		Header: []string{"switch", "reported max", "inferred usable", "discrepancy"},
	}
	cases := []struct {
		prof switchsim.Profile
		opts []switchsim.Option
	}{
		{switchsim.Switch1(), []switchsim.Option{switchsim.WithDefaultRoute()}},
		{switchsim.Switch2(), nil},
		{switchsim.Switch3(), nil},
	}
	rows := make([][]string, len(cases))
	runCells(len(cases), func(i int) {
		c := cases[i]
		sw := switchsim.New(c.prof, append(c.opts, switchsim.WithSeed(int64(i)))...)
		// What the switch reports: OFPST_TABLE max_entries for the TCAM.
		replies := sw.Handle(&openflow.StatsRequest{StatsType: openflow.StatsTypeTable})
		reported := uint32(0)
		for _, r := range replies {
			if sr, ok := r.(*openflow.StatsReply); ok {
				for _, ts := range sr.Tables {
					if ts.Name == "tcam" {
						reported = ts.MaxEntries
					}
				}
			}
		}
		// What Tango measures for the rules it will actually install.
		e := probe.NewEngine(probe.SimDevice{S: sw})
		res, err := infer.ProbeSizes(e, infer.SizeOptions{Seed: int64(i)})
		if err != nil {
			rows[i] = []string{c.prof.Name, fmt.Sprint(reported), "error: " + err.Error(), "-"}
			return
		}
		inferred := res.Levels[0].Census
		disc := "none"
		if int(reported) != inferred {
			disc = fmt.Sprintf("%+d", inferred-int(reported))
		}
		rows[i] = []string{c.prof.Name, fmt.Sprint(reported), fmt.Sprint(inferred), disc}
	})
	t.Rows = append(t.Rows, rows...)
	return t
}
