package experiments

import (
	"testing"

	"tango/internal/telemetry"
)

// TestTelemetryDifferential is the observer-effect gate: inference results
// must be byte-identical whether the process-wide telemetry defaults are nil
// (the uninstrumented configuration every test and library consumer gets) or
// fully installed (registry + tracer + flight recorder, as `tangobench
// -metrics-out -trace-out -flight-out` runs). Probing drives everything off
// the emulated switches' virtual clocks and seeded RNGs, so instrumentation
// — which only reads those clocks and copies samples aside — must never
// shift an estimate, census count, or policy verdict. A divergence means a
// record path leaked into the measured timeline (e.g. a wall-clock sleep or
// an extra virtual-clock advance on the probe path).
func TestTelemetryDifferential(t *testing.T) {
	oldReg, oldTr := telemetry.Default(), telemetry.DefaultTracer()
	oldFr := telemetry.DefaultFlight()
	defer func() {
		telemetry.SetDefault(oldReg, oldTr)
		telemetry.SetDefaultFlight(oldFr)
	}()

	type table struct {
		name string
		run  func() *Table
		// wantProbes: the run drives probe engines, so the instrumented pass
		// must show probe counters and flight tracks. Table1 installs rules
		// directly on the switches, so only the emulator counters move.
		wantProbes bool
	}
	tables := []table{
		{"Table1", Table1, false},
		{"SizeAccuracy", SizeAccuracy, true},
		{"PolicyAccuracy", PolicyAccuracy, true},
	}
	// Subtests stay sequential: they flip the process-wide defaults.
	for _, tb := range tables {
		tb := tb
		t.Run(tb.name, func(t *testing.T) {
			telemetry.SetDefault(nil, nil)
			telemetry.SetDefaultFlight(nil)
			bare := tb.run().String()

			reg := telemetry.NewRegistry()
			tr := telemetry.NewTracer(nil)
			fr := telemetry.NewFlightRecorder(0)
			telemetry.SetDefault(reg, tr)
			telemetry.SetDefaultFlight(fr)
			instrumented := tb.run().String()

			if bare != instrumented {
				t.Errorf("%s diverges with telemetry installed:\nbare:\n%s\ninstrumented:\n%s",
					tb.name, bare, instrumented)
			}
			// The instrumented run must actually have been observed — a
			// passing diff with an empty registry would prove nothing.
			snap := reg.Snapshot()
			if snap.Counters["switchsim.flowmods"] == 0 {
				t.Error("instrumented run recorded no flow-mods; differential proves nothing")
			}
			if tb.wantProbes {
				if snap.Counters["probe.probes_sent"] == 0 {
					t.Error("instrumented run recorded no probes")
				}
				if len(fr.Tracks()) == 0 {
					t.Error("instrumented run recorded no flight tracks")
				}
			}
		})
	}
}
