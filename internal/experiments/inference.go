package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"tango/internal/core/infer"
	"tango/internal/core/probe"
	"tango/internal/switchsim"
)

// InferWorkers is the worker-pool size the per-profile inference
// experiments (Table 1, size/policy accuracy, reported-vs-inferred) fan out
// across — the conformance harness's Options.Workers pattern applied to the
// evaluation catalog. Every cell owns its switch, engine, and RNG, and the
// results fold in deterministic profile order, so output is byte-identical
// at any setting; 0 means GOMAXPROCS, 1 forces the old serial behaviour.
// Set from tangobench's -infer-workers flag.
var InferWorkers int

// runCells invokes fn(i) for every cell index in [0, n), fanning out across
// InferWorkers goroutines. Cells must be independent and write results only
// to their own index-addressed slot; callers fold the slots in input order
// afterwards, which keeps tables identical at any worker count.
func runCells(n int, fn func(int)) {
	workers := InferWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// policyMatrix is the policy sweep of the §7.1 inference evaluation.
func policyMatrix() []struct {
	name   string
	policy switchsim.Policy
} {
	return []struct {
		name   string
		policy switchsim.Policy
	}{
		{"FIFO", switchsim.PolicyFIFO},
		{"LRU", switchsim.PolicyLRU},
		{"LFU", switchsim.PolicyLFU},
		{"Priority", switchsim.PolicyPriority},
	}
}

// policyMatrixExtended adds LEX composites beyond the named policies to the
// inference sweep (the model space of §5.1 is all attribute permutations).
func policyMatrixExtended() []struct {
	name   string
	policy switchsim.Policy
} {
	out := policyMatrix()
	out = append(out, struct {
		name   string
		policy switchsim.Policy
	}{"Traffic+FIFO", switchsim.Policy{Keys: []switchsim.SortKey{
		{Attr: switchsim.AttrTraffic, HighIsBetter: true},
		{Attr: switchsim.AttrInsertion, HighIsBetter: false},
	}}})
	return out
}

// SizeAccuracy reproduces the §7.1 headline: flow-table size inference
// within 5% of actual values across switch designs and caching algorithms.
// Each row is one (design, policy, cache size) cell with the actual TCAM
// size, the negative-binomial estimate, the census estimate, and errors.
func SizeAccuracy() *Table {
	t := &Table{
		Title:  "Size inference accuracy (paper headline: <5% error)",
		Header: []string{"switch", "policy", "actual", "estimate", "err", "census", "census err"},
	}
	type cell struct {
		name   string
		prof   switchsim.Profile
		actual int
	}
	var cells []cell
	// TCAM-only designs at their Table 1 capacities.
	cells = append(cells,
		cell{"Switch#2", switchsim.Switch2(), 2560},
		cell{"Switch#3 (wide rules)", switchsim.Switch3(), 369},
	)
	// Policy-cache designs across the caching-algorithm matrix.
	for _, pm := range policyMatrix() {
		p := switchsim.TestSwitch(512, pm.policy)
		p.SoftwareCapacity = 1536
		p.Name = "cache-switch/" + pm.name
		cells = append(cells, cell{p.Name, p, 512})
	}
	// Switch #1 with its default route occupying a slot (Figure 2(b)).
	s1 := switchsim.Switch1()
	s1.SoftwareCapacity = 4096
	cells = append(cells, cell{"Switch#1 (+default route)", s1, 2047})

	// One worker-pool cell per (design, policy) profile; each builds its own
	// seeded switch and engine, and the rows fold back in catalog order.
	rows := make([][]string, len(cells))
	runCells(len(cells), func(i int) {
		c := cells[i]
		var opts []switchsim.Option
		opts = append(opts, switchsim.WithSeed(int64(i)))
		if c.name == "Switch#1 (+default route)" {
			opts = append(opts, switchsim.WithDefaultRoute())
		}
		sw := switchsim.New(c.prof, opts...)
		e := probe.NewEngine(probe.SimDevice{S: sw})
		res, err := infer.ProbeSizes(e, infer.SizeOptions{Seed: int64(i)})
		if err != nil {
			rows[i] = []string{c.name, "-", "-", "error: " + err.Error(), "-", "-", "-"}
			return
		}
		est, census := res.Levels[0].Size, res.Levels[0].Census
		policy := c.prof.CachePolicy.String()
		if c.prof.Kind == switchsim.ManageTCAMOnly {
			policy = "(tcam only)"
		}
		rows[i] = []string{
			c.name, policy,
			fmt.Sprintf("%d", c.actual),
			fmt.Sprintf("%d", est), fmtPct(relError(est, c.actual)),
			fmt.Sprintf("%d", census), fmtPct(relError(census, c.actual)),
		}
	})
	t.Rows = append(t.Rows, rows...)
	return t
}

func relError(est, actual int) float64 {
	if actual == 0 {
		return 0
	}
	d := est - actual
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(actual)
}

// PolicyAccuracy runs Algorithm 2 across the caching-algorithm matrix and
// reports the inferred policy against ground truth.
func PolicyAccuracy() *Table {
	t := &Table{
		Title:  "Cache-policy inference (Algorithm 2)",
		Header: []string{"true policy", "inferred", "correct", "rounds"},
	}
	const cache = 100
	matrix := policyMatrixExtended()
	rows := make([][]string, len(matrix))
	runCells(len(matrix), func(i int) {
		pm := matrix[i]
		sw := switchsim.New(switchsim.TestSwitch(cache, pm.policy), switchsim.WithSeed(int64(i)))
		e := probe.NewEngine(probe.SimDevice{S: sw})
		res, err := infer.ProbePolicy(e, infer.PolicyOptions{CacheSize: cache, Seed: int64(i + 1)})
		if err != nil {
			rows[i] = []string{pm.policy.String(), "error: " + err.Error(), "no", "-"}
			return
		}
		correct := "no"
		if res.Policy.Equal(pm.policy) {
			correct = "yes"
		}
		rows[i] = []string{
			pm.policy.String(), res.Policy.String(), correct,
			fmt.Sprintf("%d", len(res.Rounds)),
		}
	})
	t.Rows = append(t.Rows, rows...)
	// OVS: correctly reported as traffic-driven/inconclusive.
	sw := switchsim.New(switchsim.OVS())
	e := probe.NewEngine(probe.SimDevice{S: sw})
	res, err := infer.ProbePolicy(e, infer.PolicyOptions{CacheSize: 64, Seed: 99})
	status := "error"
	if err == nil {
		status = "policy: " + res.Policy.String()
		if res.Inconclusive {
			status = "inconclusive (microflow)"
		}
	}
	micro := "no"
	if ok, _, err := infer.DetectMicroflowCaching(e, 1<<24, 9000); err == nil && ok {
		micro = "yes"
	}
	t.Rows = append(t.Rows, []string{"OVS (traffic-driven)", status, "microflow detected: " + micro, "-"})
	return t
}

// Figure6 reproduces Figure 6: the attribute-initialization pattern of the
// policy probe for cache size 100 — 200 flows whose insertion order, use
// order, priority, and traffic count are pairwise-decorrelated.
func Figure6() *Figure {
	init := infer.InitializationPattern(100, 0)
	fig := &Figure{Title: "Figure 6: cache-algorithm pattern initialization (cache size 100)"}
	mk := func(name string, vals []int) Series {
		s := Series{Name: name}
		for i, v := range vals {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, float64(v))
		}
		return s
	}
	fig.Series = []Series{
		mk("insertion time", init.Insertion),
		mk("use time", init.Use),
		mk("priority", init.Priority),
		mk("traffic count", init.Traffic),
	}
	return fig
}
