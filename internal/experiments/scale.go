package experiments

import (
	"fmt"
	"time"

	"tango/internal/scale"
)

// scale.go renders the sharded discrete-event scale harness (internal/scale)
// as a benchmark table: all 12 B4 sites on goroutine-parallel shards with
// epoch barriers, a ~million resident flows, live timeout churn, TE
// re-allocation rounds, a link-failure storm, and size inference running
// concurrently. The harness is bit-identical at any shard count (gated by
// TestScaleShardedDifferential), so the table doubles as a determinism
// demonstration: rerunning with -scale-shards 1 must print the same rows,
// wall-clock lines aside.

// ScaleFlows overrides the resident-flow target of the Scale experiment
// (0 = the harness default, 1<<20). cmd/tangobench binds -scale-flows to it;
// CI uses a reduced target so the smoke artifact stays fast.
var ScaleFlows int

// ScaleShards overrides the shard count of the Scale experiment (0 = one
// shard per B4 site). cmd/tangobench binds -scale-shards to it.
var ScaleShards int

// Scale runs the B4-wide scale harness once and tabulates the fold.
func Scale() *Table {
	o := scale.Options{
		Flows:  ScaleFlows,
		Shards: ScaleShards,
		Seed:   1,
	}
	res, err := scale.Run(o)
	if err != nil {
		return &Table{
			Title:  "Scale harness: error",
			Header: []string{"error"},
			Rows:   [][]string{{err.Error()}},
		}
	}
	t := &Table{
		Title: fmt.Sprintf("Scale harness: %d B4 sites, %d shards, %d epochs",
			res.Sites, res.Shards, res.Epochs),
		Header: []string{"metric", "value"},
	}
	row := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	row("flows resident (peak)", fmt.Sprint(res.FlowsResident))
	row("flows resident (end)", fmt.Sprint(res.FlowsResidentEnd))
	row("flows distinct", fmt.Sprint(res.FlowsDistinct))
	row("events", fmt.Sprint(res.Events))
	row("events/sec", fmt.Sprintf("%.0f", res.EventsPerSec))
	row("rule ops", fmt.Sprint(res.RuleOps))
	row("expirations", fmt.Sprint(res.Expirations))
	row("pair migrations", fmt.Sprintf("%d (%d skipped)", res.PairMoves, res.MovesSkipped))
	row("probe samples", fmt.Sprint(res.ProbeSamples))
	row("probe RTT p50", fmt.Sprint(res.P50ProbeRTT))
	row("probe RTT p99", fmt.Sprint(res.P99ProbeRTT))
	row("churn applied", fmt.Sprintf("%d (%d installs)", res.ChurnApplied, res.ChurnInstalls))
	row("inference", fmt.Sprintf("%d runs, %d rules, %d probes",
		res.InferRuns, res.InferRules, res.InferProbes))
	row("max shard lag (virtual)", fmt.Sprint(res.MaxShardLag))
	row("table-full rejections", fmt.Sprint(res.TableFull))
	row("device errors", fmt.Sprint(res.Errs))
	row("setup wall", res.SetupWall.Round(time.Millisecond).String())
	row("epochs wall", res.EpochWall.Round(time.Millisecond).String())
	return t
}
