package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parseSeconds pulls the float out of a "1.234s" cell.
func parseSeconds(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	want := map[string][2]string{
		"OVS":      {"<inf (kernel)", "<inf (kernel)"},
		"Switch#1": {"4096", "2048"},
		"Switch#2": {"2560", "2560"},
		"Switch#3": {"767", "369"},
	}
	for _, row := range tb.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Fatalf("unexpected switch %q", row[0])
		}
		if row[2] != w[0] || row[3] != w[1] {
			t.Errorf("%s: got (%s, %s), want (%s, %s)", row[0], row[2], row[3], w[0], w[1])
		}
	}
}

func TestFigure2Tiers(t *testing.T) {
	figs := Figure2()
	if len(figs) != 3 {
		t.Fatalf("figures = %d", len(figs))
	}
	// OVS: flow 0 (matched): packet 1 slow (~4.5ms), packet 2 fast (~3ms).
	ovs := figs[0]
	p1, p2 := ovs.Series[0], ovs.Series[1]
	if !(p1.Y[0] > 3.8 && p1.Y[0] < 5.5) {
		t.Errorf("OVS first packet delay = %v ms, want ~4.5", p1.Y[0])
	}
	if !(p2.Y[0] > 2.5 && p2.Y[0] < 3.5) {
		t.Errorf("OVS second packet delay = %v ms, want ~3", p2.Y[0])
	}
	// Unmatched OVS flow (id 100): both packets at control-path delay.
	if !(p1.Y[100] > 4.2 && p2.Y[100] > 4.2) {
		t.Errorf("OVS miss delays = %v/%v ms", p1.Y[100], p2.Y[100])
	}

	// Switch #1: both packets of a flow share a tier (traffic independent);
	// flow 100 fast (~0.665), flow 3000 slow (~3.7), flow 4000 control (~7.5).
	s1 := figs[1]
	if d := s1.Series[0].Y[100]; !(d > 0.4 && d < 1.0) {
		t.Errorf("Switch#1 fast delay = %v", d)
	}
	if d1, d2 := s1.Series[0].Y[3000], s1.Series[1].Y[3000]; !(d1 > 2.5 && d1 < 5.0) || !(d2 > 2.5 && d2 < 5.0) {
		t.Errorf("Switch#1 slow delays = %v/%v (FIFO must be traffic independent)", d1, d2)
	}
	if d := s1.Series[0].Y[4000]; !(d > 5.0) {
		t.Errorf("Switch#1 control delay = %v", d)
	}

	// Switch #2: two tiers only — fast below ~2ms, control ~8ms, nothing
	// in between (no slow path).
	s2 := figs[2]
	for i, d := range s2.Series[0].Y {
		if d > 2.5 && d < 5.0 {
			t.Errorf("Switch#2 flow %d in a middle tier (%v ms) — should be two-tier", i, d)
			break
		}
	}
}

func TestFigure3aPermutationsDiffer(t *testing.T) {
	tb := Figure3a(2)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	vals := map[string]float64{}
	for _, row := range tb.Rows {
		vals[row[0]] = parseSeconds(t, row[1])
	}
	// All six permutations complete in plausible time.
	for name, v := range vals {
		if v <= 0 || v > 120 {
			t.Errorf("%s = %v s", name, v)
		}
	}
}

func TestFigure3bModCheaperAtScale(t *testing.T) {
	fig := Figure3b([]int{200, 2000})
	series := map[string][]float64{}
	for _, s := range fig.Series {
		series[s.Name] = s.Y
	}
	addHW := series["add flow (Switch#1)"]
	modHW := series["mod flow (Switch#1)"]
	if addHW == nil || modHW == nil {
		t.Fatalf("missing series: %v", keys(series))
	}
	// At 2000 rules, random-order adds must be several times costlier than
	// mods on hardware (paper: ~6x at 5000).
	if addHW[1] < modHW[1]*1.5 {
		t.Errorf("add (%v) vs mod (%v) at 2000: expected add >> mod", addHW[1], modHW[1])
	}
	// On OVS both are trivial and similar.
	addOVS := series["add flow (OVS)"]
	modOVS := series["mod flow (OVS)"]
	if addOVS[1] > 1 || modOVS[1] > 1 {
		t.Errorf("OVS times should be sub-second: %v/%v", addOVS[1], modOVS[1])
	}
}

func TestFigure3cOrderingSpread(t *testing.T) {
	fig := Figure3c([]int{2000})
	get := func(name string) float64 {
		for _, s := range fig.Series {
			if s.Name == name {
				return s.Y[0]
			}
		}
		t.Fatalf("missing series %q", name)
		return 0
	}
	same := get("same priority (Switch#1)")
	asc := get("ascending priority (Switch#1)")
	desc := get("descending priority (Switch#1)")
	rnd := get("random priority (Switch#1)")
	if !(same < asc && asc < rnd && rnd < desc) {
		t.Fatalf("ordering violated: same=%v asc=%v rnd=%v desc=%v", same, asc, rnd, desc)
	}
	// Headline factors: desc >> same (tens of times), rnd several times asc.
	if desc/same < 10 {
		t.Errorf("desc/same = %v, want >= 10 (paper: up to 46x)", desc/same)
	}
	if rnd/asc < 3 {
		t.Errorf("rnd/asc = %v, want >= 3 (paper: ~12x)", rnd/asc)
	}
	// OVS curves must be flat across orderings (within 25%).
	ovsVals := []float64{
		get("same priority (OVS)"), get("ascending priority (OVS)"),
		get("descending priority (OVS)"), get("random priority (OVS)"),
	}
	for _, v := range ovsVals[1:] {
		if r := v / ovsVals[0]; r < 0.75 || r > 1.25 {
			t.Errorf("OVS ordering sensitivity: %v", ovsVals)
			break
		}
	}
}

func TestFigure5ThreeTiers(t *testing.T) {
	fig := Figure5()
	ys := fig.Series[0].Y
	if len(ys) != 2500 {
		t.Fatalf("points = %d", len(ys))
	}
	// Tier means: ~30 (fast bank), ~55 (second bank), ~140 (slow), in the
	// figure's 1e-2 ms units.
	if !(ys[100] < 45) {
		t.Errorf("early flow RTT = %v, want fast bank", ys[100])
	}
	if !(ys[1500] > 45 && ys[1500] < 90) {
		t.Errorf("mid flow RTT = %v, want second bank", ys[1500])
	}
	if !(ys[2300] > 90) {
		t.Errorf("late flow RTT = %v, want slow path", ys[2300])
	}
}

func TestFigure6Decorrelated(t *testing.T) {
	fig := Figure6()
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 200 {
			t.Fatalf("%s: %d points, want 200", s.Name, len(s.Y))
		}
	}
}

func TestSizeAccuracyWithinFivePercent(t *testing.T) {
	if testing.Short() {
		t.Skip("full probing sweep")
	}
	tb := SizeAccuracy()
	for _, row := range tb.Rows {
		errCell := strings.TrimSuffix(row[4], "%")
		v, err := strconv.ParseFloat(errCell, 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if v > 5.0 {
			t.Errorf("%s (%s): error %v%% exceeds 5%%", row[0], row[1], v)
		}
	}
}

func TestPolicyAccuracyAllCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("full probing sweep")
	}
	tb := PolicyAccuracy()
	for _, row := range tb.Rows[:5] {
		if row[2] != "yes" {
			t.Errorf("policy %s inferred as %s", row[0], row[1])
		}
	}
	last := tb.Rows[len(tb.Rows)-1]
	if !strings.Contains(last[1], "inconclusive") || !strings.Contains(last[2], "yes") {
		t.Errorf("OVS row = %v", last)
	}
}

func TestTable2Counts(t *testing.T) {
	tb := Table2()
	wantTopo := []string{"52", "38", "33"}
	wantFlows := []string{"829", "989", "972"}
	for i, row := range tb.Rows {
		if row[1] != wantTopo[i] {
			t.Errorf("file %d topo priorities = %s, want %s", i+1, row[1], wantTopo[i])
		}
		if row[2] != wantFlows[i] || row[3] != wantFlows[i] {
			t.Errorf("file %d flows = %s installed %s, want %s", i+1, row[2], row[3], wantFlows[i])
		}
	}
}

func TestFigure9AscendingWins(t *testing.T) {
	figs := Figure9(2)
	for _, fig := range figs {
		means := map[string]float64{}
		for _, s := range fig.Series {
			var sum float64
			for _, y := range s.Y {
				sum += y
			}
			means[s.Name] = sum / float64(len(s.Y))
		}
		topoOpt := means["Topo Asc"]
		for name, v := range means {
			if name == "Topo Asc" {
				continue
			}
			if topoOpt > v {
				t.Errorf("%s: Topo Asc (%v) lost to %s (%v)", fig.Title, topoOpt, name, v)
			}
		}
		// The paper reports ~80-89% reduction vs random orders on hardware.
		if r := means["Topo Rand"]; topoOpt > 0.5*r {
			t.Errorf("%s: Topo Asc %v vs Topo Rand %v — want large win", fig.Title, topoOpt, r)
		}
	}
}

func TestFigure8SmallOVSDifferences(t *testing.T) {
	figs := Figure8(2)
	for _, fig := range figs {
		for _, s := range fig.Series {
			for _, y := range s.Y {
				if y > 1.0 {
					t.Errorf("%s %s: %v s — OVS installs should be fast", fig.Title, s.Name, y)
				}
			}
		}
	}
}

func TestFigure10TangoBeatsDionysus(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed sweep")
	}
	tb := Figure10()
	for _, row := range tb.Rows {
		dio := parseSeconds(t, row[1])
		typ := parseSeconds(t, row[2])
		full := parseSeconds(t, row[3])
		if typ > dio*1.02 {
			t.Errorf("%s: Tango(Type) %v worse than Dionysus %v", row[0], typ, dio)
		}
		if full > typ*1.02 {
			t.Errorf("%s: Tango(Type+Priority) %v worse than Tango(Type) %v", row[0], full, typ)
		}
		if row[0] == "LF" && full > dio*0.6 {
			t.Errorf("LF: priority pattern should win big: tango %v vs dionysus %v", full, dio)
		}
	}
}

func TestFigure11EnforcementWins(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed sweep")
	}
	tb := Figure11()
	for _, row := range tb.Rows {
		dio := parseSeconds(t, row[1])
		sorting := parseSeconds(t, row[2])
		enforcement := parseSeconds(t, row[3])
		if sorting > dio {
			t.Errorf("%s: sorting %v worse than dionysus %v", row[0], sorting, dio)
		}
		if enforcement > sorting*1.05 {
			t.Errorf("%s: enforcement %v worse than sorting %v", row[0], enforcement, sorting)
		}
	}
}

func TestFigure12TangoWins(t *testing.T) {
	if testing.Short() {
		t.Skip("B4 sweep")
	}
	tb := Figure12(400)
	dio := parseSeconds(t, tb.Rows[0][1])
	tango := parseSeconds(t, tb.Rows[1][1])
	if tango > dio {
		t.Errorf("tango %v worse than dionysus %v", tango, dio)
	}
}

func keys(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTableAndFigureRendering(t *testing.T) {
	tb := &Table{Title: "t", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	if s := tb.String(); !strings.Contains(s, "== t ==") || !strings.Contains(s, "bb") {
		t.Fatalf("table render: %q", s)
	}
	fig := &Figure{Title: "f", Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}}
	if s := fig.String(); !strings.Contains(s, "-- s --") {
		t.Fatalf("figure render: %q", s)
	}
}

func TestReportedVsInferred(t *testing.T) {
	if testing.Short() {
		t.Skip("full probing sweep")
	}
	tb := ReportedVsInferred()
	want := map[string][3]string{
		"Switch#1": {"2048", "2047", "-1"},   // default route steals a slot
		"Switch#2": {"2560", "2560", "none"}, // honest flat design
		"Switch#3": {"767", "369", "-398"},   // report ignores entry width
	}
	for _, row := range tb.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Fatalf("unexpected switch %q", row[0])
		}
		if row[1] != w[0] || row[2] != w[1] || row[3] != w[2] {
			t.Errorf("%s: got %v, want %v", row[0], row[1:], w)
		}
	}
}

func TestCacheHitRatesShape(t *testing.T) {
	tb := CacheHitRates()
	rates := map[[2]string]float64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		rates[[2]string{row[0], row[1]}] = v
	}
	// Skewed traffic: recency/frequency policies beat FIFO decisively.
	if rates[[2]string{"zipf", "LRU"}] < rates[[2]string{"zipf", "FIFO"}]+30 {
		t.Errorf("zipf: LRU %.1f%% vs FIFO %.1f%% — want a large gap",
			rates[[2]string{"zipf", "LRU"}], rates[[2]string{"zipf", "FIFO"}])
	}
	if rates[[2]string{"zipf", "LFU"}] < rates[[2]string{"zipf", "LRU"}]-5 {
		t.Errorf("zipf: LFU %.1f%% should be at least competitive with LRU %.1f%%",
			rates[[2]string{"zipf", "LFU"}], rates[[2]string{"zipf", "LRU"}])
	}
	// Uniform traffic: every policy converges to cache/rules ≈ 25%.
	for _, pol := range []string{"FIFO", "LRU", "LFU"} {
		if v := rates[[2]string{"uniform", pol}]; v < 15 || v > 35 {
			t.Errorf("uniform %s hit rate %.1f%%, want ~25%%", pol, v)
		}
	}
	// Scans starve recency policies but leave FIFO's resident set alone.
	if rates[[2]string{"scan", "LRU"}] > 5 {
		t.Errorf("scan LRU hit rate %.1f%%, want ~0", rates[[2]string{"scan", "LRU"}])
	}
	if rates[[2]string{"scan", "FIFO"}] < 15 {
		t.Errorf("scan FIFO hit rate %.1f%%, want ~25", rates[[2]string{"scan", "FIFO"}])
	}
}
