package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/switchsim"
)

// Table1 reproduces Table 1: for each switch, the software-table situation
// and the number of hardware (TCAM) entries it holds for L2-only/L3-only
// versus combined L2+L3 matches. Switch #1's TCAM mode is user
// configurable, so its narrow column uses single-wide mode and its wide
// column double-wide mode, as in the paper.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: diversity of tables and table sizes",
		Header: []string{"switch", "software tables", "TCAM L2/L3", "TCAM L2+L3"},
	}
	type row struct {
		name         string
		narrow, wide switchsim.Profile
	}
	rows := []row{
		{"OVS", switchsim.OVS(), switchsim.OVS()},
		{"Switch#1", switchsim.Switch1Mode(flowtable.ModeSingleWide), switchsim.Switch1Mode(flowtable.ModeDoubleWide)},
		{"Switch#2", switchsim.Switch2(), switchsim.Switch2()},
		{"Switch#3", switchsim.Switch3(), switchsim.Switch3()},
	}
	const budget = 6000
	out := make([][]string, len(rows))
	runCells(len(rows), func(i int) {
		r := rows[i]
		nTCAM := tcamResidency(r.narrow, false, budget)
		wTCAM := tcamResidency(r.wide, true, budget)
		var soft string
		switch r.narrow.Kind {
		case switchsim.ManageTCAMOnly:
			soft = "None"
		default:
			soft = "<inf"
		}
		nStr, wStr := fmt.Sprintf("%d", nTCAM), fmt.Sprintf("%d", wTCAM)
		if r.narrow.Kind == switchsim.ManageMicroflow {
			nStr, wStr = "<inf (kernel)", "<inf (kernel)"
		}
		out[i] = []string{r.name, soft, nStr, wStr}
	})
	t.Rows = append(t.Rows, out...)
	return t
}

// tcamResidency installs rules of the given width until rejection or the
// budget and returns how many landed in the hardware table.
func tcamResidency(p switchsim.Profile, wide bool, budget int) int {
	s := switchsim.New(p, switchsim.WithSeed(1))
	for id := uint32(0); int(id) < budget; id++ {
		var m flowtable.Match
		if wide {
			m = flowtable.ExactProbeMatch(id)
		} else {
			m = flowtable.L3ProbeMatch(id)
		}
		err := s.FlowMod(&openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    m,
			Priority: 100,
			Actions:  flowtable.Output(1),
		})
		if err != nil {
			break
		}
	}
	tcam, _, _ := s.RuleCount()
	return tcam
}

// Figure2 reproduces Figure 2: per-flow forwarding delay versus flow ID on
// OVS (a), Switch #1 (b), and Switch #2 (c). Matching flows occupy the low
// IDs; flows beyond the installed rules punt to the controller. Each flow
// sends two packets; both delays are reported, which is what separates the
// OVS slow-then-fast microflow signature from Switch #1's traffic-
// independent FIFO placement.
func Figure2() []*Figure {
	type scenario struct {
		profile switchsim.Profile
		opts    []switchsim.Option
		rules   int
		flows   int
		caption string
	}
	scenarios := []scenario{
		{profile: switchsim.OVS(), rules: 80, flows: 160, caption: "Figure 2(a): three-tier delay in OVS"},
		{profile: switchsim.Switch1(), opts: []switchsim.Option{switchsim.WithDefaultRoute()}, rules: 3500, flows: 5000,
			caption: "Figure 2(b): three-tier delay in Switch #1"},
		{profile: switchsim.Switch2(), rules: 2500, flows: 5000, caption: "Figure 2(c): two-tier delay in Switch #2"},
	}
	var out []*Figure
	for _, sc := range scenarios {
		s := switchsim.New(sc.profile, append(sc.opts, switchsim.WithSeed(7))...)
		e := probe.NewEngine(probe.SimDevice{S: s})
		for id := 0; id < sc.rules; id++ {
			if err := e.Install(uint32(id), 100); err != nil {
				break // Switch #2's TCAM caps below 2500+preinstalled
			}
		}
		fig := &Figure{Title: sc.caption}
		first := Series{Name: "packet 1 delay (ms)"}
		second := Series{Name: "packet 2 delay (ms)"}
		for id := 0; id < sc.flows; id++ {
			r1, _, err := e.Probe(uint32(id))
			if err != nil {
				continue
			}
			r2, _, err := e.Probe(uint32(id))
			if err != nil {
				continue
			}
			first.X = append(first.X, float64(id))
			first.Y = append(first.Y, msec(r1))
			second.X = append(second.X, float64(id))
			second.Y = append(second.Y, msec(r2))
		}
		fig.Series = []Series{first, second}
		out = append(out, fig)
	}
	return out
}

// Figure3a reproduces Figure 3(a): total time for 200 adds + 200 mods +
// 200 dels on Switch #1 (1000 random-priority rules preinstalled), across
// all six type permutations, averaged over repeat runs.
func Figure3a(repeats int) *Table {
	if repeats <= 0 {
		repeats = 10
	}
	t := &Table{
		Title:  "Figure 3(a): rule installation sequences on Switch #1 (200 add/mod/del)",
		Header: []string{"scenario", "mean install time", "min", "max"},
	}
	for _, perm := range pattern.Permutations3 {
		var total, min, max time.Duration
		for rep := 0; rep < repeats; rep++ {
			d := runPermutation(perm, rep)
			total += d
			if rep == 0 || d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		mean := total / time.Duration(repeats)
		name := fmt.Sprintf("%s_%s_%s", perm[0], perm[1], perm[2])
		t.Rows = append(t.Rows, []string{name, fmtDur(mean), fmtDur(min), fmtDur(max)})
	}
	return t
}

// runPermutation executes one Figure 3(a) trial.
func runPermutation(perm [3]pattern.OpKind, seed int) time.Duration {
	rng := rand.New(rand.NewSource(int64(seed) + 42))
	s := switchsim.New(switchsim.Switch1(), switchsim.WithSeed(int64(seed)))
	e := probe.NewEngine(probe.SimDevice{S: s})
	// Preinstall 1000 rules with random priorities.
	for id := uint32(0); id < 1000; id++ {
		if err := e.Install(id, uint16(1000+rng.Intn(1000))); err != nil {
			panic(err)
		}
	}
	p := pattern.Permutation(perm, 200, 200, 200, 1500)
	// The mod and del targets sit above the new adds' priority band
	// (as ACL updates usually do: retire old high-priority rules, insert
	// replacements below); deleting them first spares the adds their
	// shifts, which is what separates the six permutations.
	for i := uint32(0); i < 400; i++ {
		if err := e.Install(2000+i, 2500); err != nil {
			panic(err)
		}
	}
	ops := make([]pattern.Op, len(p.Ops))
	for i, op := range p.Ops {
		switch op.Kind {
		case pattern.OpMod, pattern.OpDel:
			op.FlowID += 2000
			op.Priority = 2500
		}
		ops[i] = op
	}
	d, err := e.TimeOps(ops)
	if err != nil {
		panic(err)
	}
	return d
}

// Figure3b reproduces Figure 3(b): total time to add n new rules versus
// modify n existing rules, on Switch #1 and OVS, n ∈ counts.
func Figure3b(counts []int) *Figure {
	if len(counts) == 0 {
		counts = []int{20, 100, 500, 1000, 2000, 3500, 5000}
	}
	fig := &Figure{Title: "Figure 3(b): add vs modify flow delay"}
	for _, prof := range []switchsim.Profile{bigSwitch1(), switchsim.OVS()} {
		add := Series{Name: "add flow (" + prof.Name + ")"}
		mod := Series{Name: "mod flow (" + prof.Name + ")"}
		for _, n := range counts {
			// Adds in descending priority order — the worst case a diversity
			// oblivious controller hits, and the regime where the paper's
			// 6x mod-vs-add gap at 5000 rules appears.
			s := switchsim.New(prof, switchsim.WithSeed(int64(n)))
			e := probe.NewEngine(probe.SimDevice{S: s})
			ops := make([]pattern.Op, n)
			for i := 0; i < n; i++ {
				ops[i] = pattern.Op{Kind: pattern.OpAdd, FlowID: uint32(i), Priority: uint16(20000 - i)}
			}
			dAdd, err := e.TimeOps(ops)
			if err != nil {
				panic(err)
			}
			add.X = append(add.X, float64(n))
			add.Y = append(add.Y, seconds(dAdd))

			// Mods over the now-installed rules.
			mops := make([]pattern.Op, n)
			for i := 0; i < n; i++ {
				mops[i] = pattern.Op{Kind: pattern.OpMod, FlowID: uint32(i), Priority: uint16(20000 - i)}
			}
			dMod, err := e.TimeOps(mops)
			if err != nil {
				panic(err)
			}
			mod.X = append(mod.X, float64(n))
			mod.Y = append(mod.Y, seconds(dMod))
		}
		fig.Series = append(fig.Series, add, mod)
	}
	return fig
}

// Figure3c reproduces Figure 3(c): installation time for the four priority
// orderings on Switch #1 and OVS, via the probing engine's priority-curve
// pattern (infer.MeasurePriorityCurves).
func Figure3c(counts []int) *Figure {
	if len(counts) == 0 {
		counts = []int{20, 100, 500, 1000, 2000, 3500, 5000}
	}
	fig := &Figure{Title: "Figure 3(c): flow installation time by priority pattern"}
	for _, prof := range []switchsim.Profile{bigSwitch1(), switchsim.OVS()} {
		s := switchsim.New(prof, switchsim.WithSeed(17))
		e := probe.NewEngine(probe.SimDevice{S: s})
		curves, err := infer.MeasurePriorityCurves(e, infer.CurveOptions{Counts: counts, Seed: 7})
		if err != nil {
			panic(err)
		}
		for _, order := range pattern.Orders {
			ser := Series{Name: fmt.Sprintf("%s priority (%s)", order, prof.Name)}
			for _, pt := range curves[order] {
				ser.X = append(ser.X, float64(pt.N))
				ser.Y = append(ser.Y, seconds(pt.Total))
			}
			fig.Series = append(fig.Series, ser)
		}
	}
	return fig
}

// bigSwitch1 is Switch #1 with its software table widened so the 5000-rule
// sweeps of Figure 3 fit (the paper's switch holds 256 virtual user-space
// tables; the exact bound is immaterial to the control-channel curves).
func bigSwitch1() switchsim.Profile {
	p := switchsim.Switch1()
	p.SoftwareCapacity = 16384
	return p
}

// Figure5 reproduces Figure 5: per-flow RTTs on the Switch #2 style device
// whose TCAM splits into two fast banks, with ~2500 installed flows.
func Figure5() *Figure {
	p := switchsim.FigureFiveSwitch()
	s := switchsim.New(p, switchsim.WithSeed(11))
	e := probe.NewEngine(probe.SimDevice{S: s})
	const flows = 2500
	for id := uint32(0); id < flows; id++ {
		if err := e.Install(id, 100); err != nil {
			break
		}
	}
	ser := Series{Name: "RTT (1e-2 ms) vs flow id"}
	for id := uint32(0); id < flows; id++ {
		rtt, _, err := e.Probe(id)
		if err != nil {
			continue
		}
		ser.X = append(ser.X, float64(id))
		// The paper's y axis is in units of 10^-2 ms.
		ser.Y = append(ser.Y, msec(rtt)*100)
	}
	return &Figure{Title: "Figure 5: round-trip times for flows installed in HW Switch #2", Series: []Series{ser}}
}
