package experiments

import (
	"fmt"

	"tango/internal/conformance"
)

// adversarial.go renders the adversarial/churn workload scenario catalog
// (conformance/scenarios.go) as benchmark tables, one per family, each with
// a pass/fail gate row. Scenarios are seeded and deterministic, so the
// tables double as regression gates: tangobench's CI invocation fails the
// build if any pinned verdict flips.

// adversarialFamily runs the catalog scenarios of one family into a table.
func adversarialFamily(family, title string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"scenario", "seed", "verdict", "outcome"},
	}
	pass, total := 0, 0
	for _, sc := range conformance.Scenarios() {
		if sc.Family != family {
			continue
		}
		total++
		r := conformance.RunScenario(sc)
		status := "FAIL"
		if r.Pass {
			status = "ok"
			pass++
		}
		t.Rows = append(t.Rows, []string{sc.Name, fmt.Sprint(sc.Seed), r.Verdict, status})
	}
	t.Rows = append(t.Rows, []string{"TOTAL", "", fmt.Sprintf("%d/%d gates hold", pass, total), ""})
	return t
}

// Overflow runs the overflow-inference attack scenarios (arXiv 1504.03095):
// the attack's timing channel resolving an LRU cache size, its structural
// signature tripping the switch-side detector while a clean Zipf replay
// stays silent, and Tango's own size inference converging with the attack
// running as a concurrent tenant.
func Overflow() *Table {
	return adversarialFamily("overflow",
		"Overflow-inference attack: timing channel, detector, inference interference")
}

// ChurnScenarios runs the heavy-churn scenarios: size and policy inference
// with a timeout-driven install/expire workload continuously sweeping rules
// through switchsim's lazy expiry while probing runs.
func ChurnScenarios() *Table {
	return adversarialFamily("churn",
		"Heavy churn: inference under timeout-driven install/expire load")
}

// AltPolicy runs the alternative cache-management scenarios: policies
// outside the LEX model (destination /28 aggregation, FDRC epoch caching)
// that ClassifyPolicy must either reject with a typed error or classify as
// the LEX composite their observable behaviour coincides with.
func AltPolicy() *Table {
	return adversarialFamily("altpolicy",
		"Alternative cache management: classify-or-reject for non-LEX policies")
}
