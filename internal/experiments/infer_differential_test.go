package experiments

import "testing"

// TestInferParallelDifferential is the worker-pool determinism gate for the
// inference experiments: every table that fans per-profile cells across
// InferWorkers — embedding each profile's SizeResult estimates, census
// counts, and policy verdicts — must render byte-identical at 1 and 8
// workers. Each cell owns its seeded switch, engine, and RNG, so any
// divergence means shared state leaked between cells. CI runs this under
// the race detector, where the 8-worker pass also shakes out data races.
func TestInferParallelDifferential(t *testing.T) {
	old := InferWorkers
	defer func() { InferWorkers = old }()

	type table struct {
		name string
		run  func() *Table
	}
	tables := []table{
		{"SizeAccuracy", SizeAccuracy},
		{"PolicyAccuracy", PolicyAccuracy},
		{"ReportedVsInferred", ReportedVsInferred},
		{"Table1", Table1},
	}
	// Subtests stay sequential: they all flip the shared InferWorkers knob.
	for _, tb := range tables {
		tb := tb
		t.Run(tb.name, func(t *testing.T) {
			InferWorkers = 1
			serial := tb.run().String()
			InferWorkers = 8
			parallel := tb.run().String()
			if serial != parallel {
				t.Errorf("%s diverges between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s",
					tb.name, serial, parallel)
			}
		})
	}
}
