package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tango/internal/classbench"
	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/core/sched"
	"tango/internal/dag"
	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/switchsim"
	"tango/internal/topo"
	"tango/internal/update"
)

// SchedWorkers is the worker-pool size the scheduling experiments pass to
// sched.RunOptions.Workers: 0 (the default) lets the runner use GOMAXPROCS,
// 1 forces the serial path. Results are identical either way — the runner
// aggregates deterministically — so this only trades wall-clock time.
// cmd/tangobench exposes it as -sched-workers.
var SchedWorkers int

// schedRunOptions returns the experiments' standard run options.
func schedRunOptions() sched.RunOptions {
	return sched.RunOptions{Workers: SchedWorkers}
}

// Table2 reproduces Table 2: per ClassBench file, the flow count and the
// sizes of the two priority assignments, plus how many flows install.
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: flows per ClassBench file and their priorities",
		Header: []string{"flow file", "topological priorities", "R priorities", "flows installed"},
	}
	for i, cfg := range classbench.Table2Configs {
		rs := classbench.Generate(cfg)
		installed := installClassbench(switchsim.OVS(), rs, rs.TopologicalPriorities(100), nil, int64(i)).installed
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Classbench%d", i+1),
			fmt.Sprintf("%d", rs.NumTopoPriorities()),
			fmt.Sprintf("%d", len(rs.Rules)),
			fmt.Sprintf("%d", installed),
		})
	}
	return t
}

// installResult reports one ClassBench installation run.
type installResult struct {
	elapsed   time.Duration
	installed int
}

// installClassbench installs the rule set on a fresh switch of the given
// profile with the given priorities. order is the installation order (a
// permutation of rule indices); nil means ascending priority — the order
// Tango's probing engine recommends for every modelled hardware switch.
func installClassbench(prof switchsim.Profile, rs *classbench.RuleSet, prios []uint16, order []int, seed int64) installResult {
	s := switchsim.New(prof, switchsim.WithSeed(seed))
	if order == nil {
		order = ascendingByPriority(prios)
	}
	start := s.Now()
	installed := 0
	for _, i := range order {
		err := s.FlowMod(&openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    rs.Rules[i],
			Priority: prios[i],
			Actions:  flowtable.Output(1),
		})
		if err == nil {
			installed++
		}
	}
	return installResult{elapsed: s.Now().Sub(start), installed: installed}
}

// ascendingByPriority returns rule indices sorted by ascending priority,
// stable in rule order.
func ascendingByPriority(prios []uint16) []int {
	idx := make([]int, len(prios))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return prios[idx[a]] < prios[idx[b]] })
	return idx
}

// classbenchScenarios runs the four §7.1 scheduling scenarios for one rule
// file on one profile, over `runs` seeds, and returns one series per
// scenario (x = run index, y = seconds).
func classbenchScenarios(prof switchsim.Profile, cfg classbench.Options, runs int, optLabel string) []Series {
	rs := classbench.Generate(cfg)
	topoP := rs.TopologicalPriorities(100)
	rP := rs.RPriorities(100)
	type scenario struct {
		name   string
		prios  []uint16
		random bool
	}
	scenarios := []scenario{
		{"Topo " + optLabel, topoP, false},
		{"R " + optLabel, rP, false},
		{"R Rand", rP, true},
		{"Topo Rand", topoP, true},
	}
	out := make([]Series, len(scenarios))
	for si, sc := range scenarios {
		out[si].Name = sc.name
		for run := 0; run < runs; run++ {
			var order []int
			if sc.random {
				rng := rand.New(rand.NewSource(int64(run)*977 + cfg.Seed))
				order = rng.Perm(len(rs.Rules))
			}
			res := installClassbench(prof, rs, sc.prios, order, int64(run))
			out[si].X = append(out[si].X, float64(run+1))
			out[si].Y = append(out[si].Y, seconds(res.elapsed))
		}
	}
	return out
}

// Figure8 reproduces Figure 8(a–c): ClassBench installation time on OVS for
// the four priority-assignment × installation-order scenarios, 10 runs each.
func Figure8(runs int) []*Figure {
	if runs <= 0 {
		runs = 10
	}
	var out []*Figure
	for i, cfg := range classbench.Table2Configs {
		fig := &Figure{Title: fmt.Sprintf("Figure 8(%c): OVS optimization results (Classbench %d)", 'a'+i, i+1)}
		fig.Series = classbenchScenarios(switchsim.OVS(), cfg, runs, "Opt")
		out = append(out, fig)
	}
	return out
}

// Figure9 reproduces Figure 9(a–c): the same scenarios on HW Switch #1,
// where ascending-priority installation wins by a large margin.
func Figure9(runs int) []*Figure {
	if runs <= 0 {
		runs = 10
	}
	var out []*Figure
	for i, cfg := range classbench.Table2Configs {
		fig := &Figure{Title: fmt.Sprintf("Figure 9(%c): HW Switch #1 optimization results (Classbench %d)", 'a'+i, i+1)}
		fig.Series = classbenchScenarios(bigSwitch1(), cfg, runs, "Asc")
		out = append(out, fig)
	}
	return out
}

// TestbedProfiles returns the triangle testbed's per-switch profiles:
// s1 and s2 from Vendor #1, s3 from Vendor #3 (§7.2). The emulated probe
// rules are double-wide (L2+L3) whereas the paper's testbed rules were
// single-wide, so s3's TCAM is sized at its single-wide depth scaled to
// hold the scenario's preload plus 400 reroute adds — its cost model, which
// is what the experiment measures, is unchanged.
func TestbedProfiles() map[string]switchsim.Profile {
	s3 := switchsim.Switch3().WithTCAMCapacity(2048)
	return map[string]switchsim.Profile{
		"s1": bigSwitch1(),
		"s2": bigSwitch1(),
		"s3": s3,
	}
}

// BuildScoreDB probes each profile with the cost patterns and returns the
// Tango score database — the measured input the scheduler optimizes with.
func BuildScoreDB(profiles map[string]switchsim.Profile) *pattern.DB {
	db := pattern.NewDB()
	for name, prof := range profiles {
		s := switchsim.New(prof, switchsim.WithSeed(77))
		e := probe.NewEngine(probe.SimDevice{S: s})
		card, err := infer.MeasureCosts(e, name, infer.CostOptions{})
		if err != nil {
			panic(fmt.Sprintf("score DB probe for %s: %v", name, err))
		}
		db.PutScore(card)
	}
	return db
}

// PreloadSpec describes the rules resident on one switch before a scenario:
// modTargets flows [0, ModTargets) at priority 100 (cheap rules scheduled
// for modification) and delTargets flows [delTargetBase, …) at priority
// delTargetPriority — high-priority rules scheduled for deletion, whose
// residency is exactly what makes delete-before-add orderings pay off.
type PreloadSpec struct {
	ModTargets int
	DelTargets int
}

const (
	delTargetBase     = 5000
	delTargetPriority = 3000
)

// ExecutorFor builds fresh per-switch engines with the scenario's preloaded
// rules installed.
func ExecutorFor(profiles map[string]switchsim.Profile, preload map[string]PreloadSpec, seed int64) sched.EngineExecutor {
	ex := sched.EngineExecutor{}
	for name, prof := range profiles {
		s := switchsim.New(prof, switchsim.WithSeed(seed))
		e := probe.NewEngine(probe.SimDevice{S: s})
		spec := preload[name]
		for i := 0; i < spec.ModTargets; i++ {
			if err := e.Install(uint32(i), 100); err != nil {
				break
			}
		}
		for i := 0; i < spec.DelTargets; i++ {
			if err := e.Install(uint32(delTargetBase+i), delTargetPriority); err != nil {
				break
			}
		}
		ex[name] = e
	}
	return ex
}

// ExistingHigherFor returns the controller's table-state oracle for the
// scenario: how many resident rules out-prioritise p on each switch.
func ExistingHigherFor(preload map[string]PreloadSpec) func(string, uint16) int {
	return func(sw string, p uint16) int {
		spec := preload[sw]
		n := 0
		if p < delTargetPriority {
			n += spec.DelTargets
		}
		if p < 100 {
			n += spec.ModTargets
		}
		return n
	}
}

// LFScenario builds the Link Failure scenario: the s1–s2 link fails and
// `flows` existing flows reroute via s3. Per flow: a new rule on s3 must be
// added before the source switch s1 is modified (reverse-path order).
// Each flow carries an app-specified priority.
func LFScenario(flows int, seed int64) (*sched.Graph, map[string]PreloadSpec) {
	g := sched.NewGraph()
	rng := rand.New(rand.NewSource(seed))
	prios := rng.Perm(flows)
	for f := 0; f < flows; f++ {
		p := uint16(1000 + prios[f])
		add := g.AddNode(&sched.Request{
			Switch: "s3", Op: pattern.OpAdd,
			FlowID: uint32(10000 + f), Priority: p, HasPriority: true,
		})
		mod := g.AddNode(&sched.Request{
			Switch: "s1", Op: pattern.OpMod,
			FlowID: uint32(f), Priority: 100, HasPriority: true,
		})
		if err := g.AddEdge(add, mod); err != nil {
			panic(err)
		}
	}
	return g, map[string]PreloadSpec{"s1": {ModTargets: flows}, "s2": {ModTargets: flows}}
}

// TEScenario builds a Traffic Engineering scenario on the triangle: total
// requests split across add/mod/del with the given ratio (adds:mods:dels),
// arriving interleaved (as per-flow TE decisions do), spread across the
// three switches, with a fraction forming reverse-path cross-switch chains.
// It also returns the per-switch preload the scenario assumes: mod targets
// at low priority and del targets at high priority.
func TEScenario(total int, addRatio, modRatio, delRatio int, seed int64) (*sched.Graph, map[string]PreloadSpec) {
	g := sched.NewGraph()
	rng := rand.New(rand.NewSource(seed))
	switches := []string{"s1", "s2", "s3"}
	sum := addRatio + modRatio + delRatio
	preload := map[string]PreloadSpec{}

	// Interleaved arrival: each request's type is drawn by the ratio, so a
	// diversity-oblivious scheduler issues them interleaved while Tango's
	// pattern oracle regroups them.
	kinds := make([]pattern.OpKind, 0, total)
	for i := 0; i < total; i++ {
		r := rng.Intn(sum)
		switch {
		case r < addRatio:
			kinds = append(kinds, pattern.OpAdd)
		case r < addRatio+modRatio:
			kinds = append(kinds, pattern.OpMod)
		default:
			kinds = append(kinds, pattern.OpDel)
		}
	}
	var nodes []struct {
		id  int
		req *sched.Request
	}
	for i, kind := range kinds {
		sw := switches[rng.Intn(3)]
		spec := preload[sw]
		r := &sched.Request{Switch: sw, Op: kind, HasPriority: true}
		switch kind {
		case pattern.OpAdd:
			r.FlowID = uint32(20000 + i)
			r.Priority = uint16(1000 + rng.Intn(total))
		case pattern.OpMod:
			r.FlowID = uint32(spec.ModTargets)
			r.Priority = 100
			spec.ModTargets++
		case pattern.OpDel:
			r.FlowID = uint32(delTargetBase + spec.DelTargets)
			r.Priority = delTargetPriority
			spec.DelTargets++
		}
		preload[sw] = spec
		id := g.AddNode(r)
		nodes = append(nodes, struct {
			id  int
			req *sched.Request
		}{int(id), r})
	}
	// ~20% of requests chain after another request on a different switch
	// (reverse-path consistency).
	for i := range nodes {
		if rng.Float64() > 0.2 {
			continue
		}
		j := rng.Intn(len(nodes))
		if i == j || nodes[i].req.Switch == nodes[j].req.Switch {
			continue
		}
		_ = g.AddEdge(dagID(nodes[j].id), dagID(nodes[i].id)) // cycle-safe: errors ignored
	}
	return g, preload
}

// Figure10 reproduces Figure 10: LF, TE1, TE2 on the hardware testbed,
// comparing Dionysus, Tango with the rule-type pattern only, and Tango with
// type + priority patterns.
func Figure10() *Table {
	profiles := TestbedProfiles()
	db := BuildScoreDB(profiles)
	t := &Table{
		Title:  "Figure 10: hardware testbed network-wide optimization",
		Header: []string{"scenario", "Dionysus", "Tango (Type)", "Tango (Type+Priority)", "improvement"},
	}
	scenarios := []struct {
		name  string
		build func(seed int64) (*sched.Graph, map[string]PreloadSpec)
	}{
		{"LF", func(seed int64) (*sched.Graph, map[string]PreloadSpec) { return LFScenario(400, seed) }},
		{"TE 1", func(seed int64) (*sched.Graph, map[string]PreloadSpec) { return TEScenario(800, 2, 1, 1, seed) }},
		{"TE 2", func(seed int64) (*sched.Graph, map[string]PreloadSpec) { return TEScenario(800, 1, 1, 1, seed) }},
	}
	for _, sc := range scenarios {
		run := func(s sched.Scheduler) time.Duration {
			g, preload := sc.build(1)
			ex := ExecutorFor(profiles, preload, 5)
			res, err := sched.Run(g, s, ex, schedRunOptions())
			if err != nil {
				panic(err)
			}
			return res.Makespan
		}
		_, preload := sc.build(1)
		existing := ExistingHigherFor(preload)
		dio := run(sched.Dionysus{})
		typ := run(&sched.Tango{DB: db, ExistingHigher: existing})
		full := run(&sched.Tango{DB: db, SortPriorities: true, ExistingHigher: existing})
		imp := 1 - full.Seconds()/dio.Seconds()
		t.Rows = append(t.Rows, []string{sc.name, fmtDur(dio), fmtDur(typ), fmtDur(full), fmtPct(imp)})
	}
	return t
}

// Figure11 reproduces Figure 11: priority sorting versus priority
// enforcement across four workload shapes.
func Figure11() *Table {
	profiles := TestbedProfiles()
	db := BuildScoreDB(profiles)
	t := &Table{
		Title:  "Figure 11: priority sorting vs priority enforcement",
		Header: []string{"scenario", "Dionysus", "Tango (Priority Sorting)", "Tango (Priority Enforcement)"},
	}
	scenarios := []struct {
		name   string
		total  int
		mixed  bool
		levels int
	}{
		{"add, DAG=1, 2.4K", 2400, false, 1},
		{"mixed, DAG=1, 2.4K", 2400, true, 1},
		{"mixed, DAG=2, 2.4K", 2400, true, 2},
		{"mixed, DAG=2, 3.2K", 3200, true, 2},
	}
	for _, sc := range scenarios {
		build := func(withPriorities bool) (*sched.Graph, map[string]PreloadSpec) {
			return figure11Graph(sc.total, sc.mixed, sc.levels, withPriorities, 3)
		}
		run := func(s sched.Scheduler, g *sched.Graph, preload map[string]PreloadSpec) time.Duration {
			ex := ExecutorFor(profiles, preload, 5)
			res, err := sched.Run(g, s, ex, schedRunOptions())
			if err != nil {
				panic(err)
			}
			return res.Makespan
		}
		gd, pd := build(true)
		dio := run(sched.Dionysus{}, gd, pd)
		gs, ps := build(true)
		sorting := run(&sched.Tango{DB: db, SortPriorities: true, ExistingHigher: ExistingHigherFor(ps)}, gs, ps)
		gEnf, pe := build(false)
		sched.EnforcePriorities(gEnf, 1000)
		enforcement := run(&sched.Tango{DB: db, SortPriorities: true, ExistingHigher: ExistingHigherFor(pe)}, gEnf, pe)
		t.Rows = append(t.Rows, []string{sc.name, fmtDur(dio), fmtDur(sorting), fmtDur(enforcement)})
	}
	return t
}

// figure11Graph builds one Figure 11 workload: adds (plus mods/dels when
// mixed) spread across the triangle, in `levels` dependency levels. With
// withPriorities, adds get unique R-style priorities; otherwise they are
// left unassigned for enforcement.
func figure11Graph(total int, mixed bool, levels int, withPriorities bool, seed int64) (*sched.Graph, map[string]PreloadSpec) {
	g := sched.NewGraph()
	rng := rand.New(rand.NewSource(seed))
	switches := []string{"s1", "s2", "s3"}
	preload := map[string]PreloadSpec{}
	prios := rng.Perm(total)
	var prevLevel []int
	perLevel := total / levels
	idx := 0
	for lvl := 0; lvl < levels; lvl++ {
		var cur []int
		count := perLevel
		if lvl == levels-1 {
			count = total - idx
		}
		for i := 0; i < count; i++ {
			sw := switches[idx%3]
			spec := preload[sw]
			op := pattern.OpAdd
			flow := uint32(30000 + idx)
			prio := uint16(1000 + prios[idx])
			if mixed {
				switch idx % 4 {
				case 1:
					op = pattern.OpMod
					flow = uint32(spec.ModTargets)
					prio = 100
					spec.ModTargets++
				case 3:
					op = pattern.OpDel
					flow = uint32(delTargetBase + spec.DelTargets)
					prio = delTargetPriority
					spec.DelTargets++
				}
			}
			preload[sw] = spec
			r := &sched.Request{
				Switch: sw, Op: op, FlowID: flow,
				Priority: prio, HasPriority: true,
			}
			if op == pattern.OpAdd && !withPriorities {
				r.Priority = 0
				r.HasPriority = false
			}
			id := g.AddNode(r)
			cur = append(cur, int(id))
			if lvl > 0 {
				parent := prevLevel[rng.Intn(len(prevLevel))]
				_ = g.AddEdge(dagID(parent), dagID(int(id)))
			}
			idx++
		}
		prevLevel = cur
	}
	return g, preload
}

// Figure12 reproduces Figure 12: a B4-wide traffic-engineering change on
// OVS switches (the Mininet emulation), Dionysus versus Tango.
func Figure12(flows int) *Table {
	if flows <= 0 {
		flows = 2200
	}
	g := topo.B4()
	nodes := g.Nodes()
	rng := rand.New(rand.NewSource(4))

	// Demands and initial shortest-path allocation.
	demands := make([]topo.Demand, flows)
	oldAlloc := topo.Allocation{}
	for i := range demands {
		src := nodes[rng.Intn(len(nodes))]
		dst := nodes[rng.Intn(len(nodes))]
		for dst == src {
			dst = nodes[rng.Intn(len(nodes))]
		}
		demands[i] = topo.Demand{FlowID: uint32(i), Src: src, Dst: dst, Rate: float64(1 + rng.Intn(5))}
		oldAlloc[uint32(i)] = g.ShortestPath(src, dst)
	}
	oldRates := topo.MaxMinFair(g, oldAlloc, demands)

	// Traffic-matrix change: demands double for half the flows; the TE
	// controller moves rate-starved flows to their second path.
	newAlloc := topo.Allocation{}
	for i := range demands {
		f := uint32(i)
		newAlloc[f] = oldAlloc[f]
		if i%2 == 0 {
			demands[i].Rate *= 3
		}
		if oldRates[f] < demands[i].Rate {
			if alts := g.KShortestPaths(demands[i].Src, demands[i].Dst, 2); len(alts) == 2 {
				newAlloc[f] = alts[1]
			}
		}
	}
	changes := topo.DiffAssignments(oldAlloc, newAlloc)

	// Per-site OVS engines and a measured score database.
	profiles := map[string]switchsim.Profile{}
	for _, n := range nodes {
		p := switchsim.OVS()
		p.Name = n
		profiles[n] = p
	}
	db := BuildScoreDB(map[string]switchsim.Profile{"b4-01": profiles["b4-01"]})
	card, _ := db.Score("b4-01")
	for _, n := range nodes {
		c := *card
		c.SwitchName = n
		db.PutScore(&c)
	}

	run := func(s sched.Scheduler) time.Duration {
		gCopy, err := update.Plan(changes, update.PlanOptions{
			FlowIDBase: 40000, AssignPriorities: true, Seed: 9,
		})
		if err != nil {
			panic(err)
		}
		ex := ExecutorFor(profiles, nil, 9)
		res, err := sched.Run(gCopy, s, ex, schedRunOptions())
		if err != nil {
			panic(err)
		}
		return res.Makespan
	}
	dio := run(sched.Dionysus{})
	tango := run(&sched.Tango{DB: db, SortPriorities: true})
	imp := 1 - tango.Seconds()/dio.Seconds()
	return &Table{
		Title:  fmt.Sprintf("Figure 12: B4/OVS TE optimization (%d flows, %d rule changes)", flows, len(changes)),
		Header: []string{"scheduler", "installation time", "improvement"},
		Rows: [][]string{
			{"Dionysus", fmtDur(dio), "-"},
			{"Tango", fmtDur(tango), fmtPct(imp)},
		},
	}
}

// dagID converts a stored int back to a DAG node ID.
func dagID(i int) dag.NodeID { return dag.NodeID(i) }

// SchedWorkload builds a large synthetic scheduling workload for benchmarks
// and differential tests: `total` requests spread round-robin over
// `switches` switches in `levels` dependency levels (the Figure 11 DAG-depth
// parameterisation), with a mixed add/mod/del op stream and seeded random
// priorities and cross-level dependencies. The returned score database holds
// one hardware-style card per switch with per-switch cost variation, so the
// pattern oracle has real choices to make.
func SchedWorkload(switches, total, levels int, seed int64) (*sched.Graph, *pattern.DB) {
	if switches <= 0 || total <= 0 || levels <= 0 {
		panic("experiments: SchedWorkload needs positive sizes")
	}
	rng := rand.New(rand.NewSource(seed))
	g := sched.NewGraph()
	var prevLevel []dag.NodeID
	perLevel := total / levels
	idx := 0
	for lvl := 0; lvl < levels; lvl++ {
		count := perLevel
		if lvl == levels-1 {
			count = total - idx
		}
		cur := make([]dag.NodeID, 0, count)
		for i := 0; i < count; i++ {
			sw := fmt.Sprintf("bench-%02d", idx%switches)
			r := &sched.Request{Switch: sw, HasPriority: true}
			switch rng.Intn(4) {
			case 0:
				r.Op = pattern.OpMod
				r.FlowID = uint32(idx)
				r.Priority = 100
			case 1:
				r.Op = pattern.OpDel
				r.FlowID = uint32(delTargetBase + idx)
				r.Priority = delTargetPriority
			default:
				r.Op = pattern.OpAdd
				r.FlowID = uint32(50000 + idx)
				r.Priority = uint16(1000 + rng.Intn(total))
			}
			id := g.AddNode(r)
			cur = append(cur, id)
			if lvl > 0 {
				// One or two parents from the previous level keep the DAG
				// connected without letting edge count explode.
				for p := 0; p < 1+rng.Intn(2); p++ {
					parent := prevLevel[rng.Intn(len(prevLevel))]
					_ = g.AddEdge(parent, id)
				}
			}
			idx++
		}
		prevLevel = cur
	}
	db := pattern.NewDB()
	for s := 0; s < switches; s++ {
		v := time.Duration(s)
		db.PutScore(&pattern.ScoreCard{
			SwitchName:      fmt.Sprintf("bench-%02d", s),
			AddSamePriority: 400*time.Microsecond + v*3*time.Microsecond,
			AddNewPriority:  900*time.Microsecond + v*5*time.Microsecond,
			ShiftPerEntry:   14*time.Microsecond + v*time.Microsecond/4,
			Mod:             6*time.Millisecond + v*20*time.Microsecond,
			Del:             2*time.Millisecond + v*10*time.Microsecond,
			TypeSwitch:      300*time.Microsecond + v*2*time.Microsecond,
		})
	}
	return g, db
}
