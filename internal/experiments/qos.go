package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tango/internal/core/probe"
	"tango/internal/switchsim"
	"tango/internal/workload"
)

// CacheHitRates quantifies the paper's utilization challenge (§1): two
// switches with identical table sizes but different cache-replacement
// policies deliver very different QoS for the same traffic, because the
// policy decides which rules enjoy the TCAM fast path. Each cell replays
// the same trace against a 256-entry cache fronting 1024 installed rules
// and reports the fast-path hit rate and mean forwarding delay.
func CacheHitRates() *Table {
	t := &Table{
		Title:  "Utilization challenge: fast-path hit rate by cache policy × traffic shape",
		Header: []string{"traffic", "policy", "fast-path hit rate", "mean delay"},
	}
	const (
		cacheSize = 256
		rules     = 1024
		packets   = 30000
	)
	traces := []workload.Options{
		{Kind: workload.KindZipf, Flows: rules, Packets: packets, Skew: 1.2, Seed: 3},
		{Kind: workload.KindUniform, Flows: rules, Packets: packets, Seed: 3},
		{Kind: workload.KindScan, Flows: rules, Packets: packets, Seed: 3},
	}
	for _, tr := range traces {
		trace := workload.Generate(tr)
		// Decorrelate popularity rank from flow ID (and hence from install
		// order): otherwise FIFO "wins" Zipf traces by the accident that the
		// hottest flows were installed first.
		perm := rand.New(rand.NewSource(99)).Perm(rules)
		for i, f := range trace {
			trace[i] = uint32(perm[f])
		}
		for _, pm := range policyMatrix() {
			if pm.name == "Priority" {
				continue // all rules share one priority here; nothing to rank
			}
			hit, mean := replayTrace(pm.policy, cacheSize, rules, trace)
			t.Rows = append(t.Rows, []string{
				tr.Kind.String(), pm.name,
				fmtPct(hit),
				fmt.Sprintf("%.2fms", mean.Seconds()*1000),
			})
		}
	}
	return t
}

// replayTrace installs `rules` flows on a fresh policy-cache switch and
// replays the trace, returning the fast-path hit rate and mean RTT.
func replayTrace(policy switchsim.Policy, cacheSize, rules int, trace []uint32) (float64, time.Duration) {
	p := switchsim.TestSwitch(cacheSize, policy)
	p.SoftwareCapacity = 4 * rules
	s := switchsim.New(p, switchsim.WithSeed(11))
	e := probe.NewEngine(probe.SimDevice{S: s})
	for id := 0; id < rules; id++ {
		if err := e.Install(uint32(id), 100); err != nil {
			panic(err)
		}
	}
	var total time.Duration
	for _, f := range trace {
		rtt, _, err := e.Probe(f)
		if err != nil {
			panic(err)
		}
		total += rtt
	}
	st := s.Stats()
	served := st.FastHits + st.MidHits + st.SlowHits
	if served == 0 {
		return 0, 0
	}
	return float64(st.FastHits+st.MidHits) / float64(served),
		total / time.Duration(len(trace))
}
