package simclock

import (
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestGroupClocksStartAtEpoch(t *testing.T) {
	g := NewGroup(4)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	for i := 0; i < g.Len(); i++ {
		if now := g.Clock(i).Now(); !now.Equal(Epoch) {
			t.Fatalf("clock %d starts at %v, want %v", i, now, Epoch)
		}
	}
	if lag := g.Lag(); lag != 0 {
		t.Fatalf("fresh group lag = %v", lag)
	}
}

func TestGroupFrontierAndAlign(t *testing.T) {
	g := NewGroup(3)
	g.Clock(0).Sleep(5 * time.Second)
	g.Clock(1).Sleep(2 * time.Second)
	// Clock 2 stays at Epoch.

	want := Epoch.Add(5 * time.Second)
	if front := g.Frontier(); !front.Equal(want) {
		t.Fatalf("Frontier = %v, want %v", front, want)
	}
	if lag := g.Lag(); lag != 5*time.Second {
		t.Fatalf("Lag = %v, want 5s", lag)
	}

	front := g.Align()
	if !front.Equal(want) {
		t.Fatalf("Align returned %v, want %v", front, want)
	}
	for i := 0; i < g.Len(); i++ {
		if now := g.Clock(i).Now(); !now.Equal(want) {
			t.Fatalf("clock %d after Align = %v, want %v", i, now, want)
		}
	}
	if lag := g.Lag(); lag != 0 {
		t.Fatalf("lag after Align = %v", lag)
	}
}

func TestGroupAlignToNeverRewinds(t *testing.T) {
	g := NewGroup(2)
	g.Clock(0).Sleep(10 * time.Second)
	g.AlignTo(Epoch.Add(3 * time.Second))
	if now := g.Clock(0).Now(); !now.Equal(Epoch.Add(10 * time.Second)) {
		t.Fatalf("AlignTo rewound the fast clock to %v", now)
	}
	if now := g.Clock(1).Now(); !now.Equal(Epoch.Add(3 * time.Second)) {
		t.Fatalf("AlignTo left the slow clock at %v", now)
	}
}

// TestGroupAlignDeterministic replays the same per-shard advance schedule
// serially and concurrently: after the barrier the frontier and every clock
// reading must be bit-identical, which is the property the scale harness'
// differential gate builds on.
func TestGroupAlignDeterministic(t *testing.T) {
	run := func(concurrent bool) time.Time {
		g := NewGroup(8)
		var wg sync.WaitGroup
		for i := 0; i < g.Len(); i++ {
			step := func(i int) {
				c := g.Clock(i)
				for j := 0; j < 1000; j++ {
					c.Sleep(time.Duration(i+1) * time.Microsecond)
				}
			}
			if concurrent {
				wg.Add(1)
				go func(i int) { defer wg.Done(); step(i) }(i)
			} else {
				step(i)
			}
		}
		wg.Wait()
		return g.Align()
	}
	serial, parallel := run(false), run(true)
	if !serial.Equal(parallel) {
		t.Fatalf("frontier differs: serial %v, parallel %v", serial, parallel)
	}
}

// TestVirtualOffsetPadding pins the false-sharing fix: each clock's atomic
// offset must sit on its own cache line, so adjacent clocks in a Group's
// contiguous slice never share one.
func TestVirtualOffsetPadding(t *testing.T) {
	var v Virtual
	offOffset := unsafe.Offsetof(v.off)
	if offOffset%cacheLine != 0 {
		t.Fatalf("off at offset %d, not cache-line aligned", offOffset)
	}
	if size := unsafe.Sizeof(v); size%cacheLine != 0 {
		t.Fatalf("Virtual size %d is not a cache-line multiple", size)
	}
}
