// Package simclock provides clock abstractions used throughout the Tango
// simulator. Experiments run against a virtual clock so that the latency
// models of emulated switches advance simulated time instead of sleeping,
// which keeps the full benchmark suite deterministic and fast. The real
// clock is used only when an emulated switch is exposed over a live TCP
// OpenFlow channel and must behave like a physical device.
package simclock

import (
	"sync/atomic"
	"time"
)

// Clock is the minimal time source used by the switch emulator and the
// probing engine. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant on this clock.
	Now() time.Time
	// Sleep advances this clock by d. A virtual clock returns immediately
	// after moving its notion of "now"; a real clock blocks.
	Sleep(d time.Duration)
}

// cacheLine is the assumed CPU cache-line size. 64 bytes is correct for
// every amd64 and most arm64 parts; being wrong only costs padding.
const cacheLine = 64

// Virtual is a manually advanced clock. The zero value is ready to use and
// starts at the zero time.Time; most callers prefer NewVirtual, which starts
// at a fixed, recognisable epoch.
//
// The clock is a base instant plus an atomically advanced offset: the switch
// emulator reads and advances it on every simulated packet, so Now/Sleep must
// not take a lock of their own (the ~50 ns mutex pair showed up as several
// percent of the probing benchmarks).
//
// The offset word is padded out to its own cache line. Sharded scale runs
// keep one Virtual per shard in a contiguous slice (Group); without the
// padding, neighbouring shards' offsets share a line and every Sleep
// invalidates the other shards' cached copies — classic false sharing, which
// dominates once a dozen shards hammer their clocks millions of times per
// second (see BenchmarkVirtualNowParallel for the before/after).
type Virtual struct {
	base time.Time
	_    [cacheLine - 24]byte // time.Time is 24 bytes; start off on a fresh line
	off  atomic.Int64         // nanoseconds since base
	_    [cacheLine - 8]byte  // keep the next struct off this line too
}

// Epoch is the starting instant of clocks returned by NewVirtual. The exact
// value is arbitrary; it is fixed so that traces and goldens are stable.
var Epoch = time.Date(2014, time.December, 2, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a virtual clock positioned at Epoch.
func NewVirtual() *Virtual {
	return &Virtual{base: Epoch}
}

// Now returns the current virtual instant.
func (v *Virtual) Now() time.Time {
	return v.base.Add(time.Duration(v.off.Load()))
}

// Sleep advances the virtual clock by d without blocking. Negative durations
// are ignored so that a clock can never run backwards.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.off.Add(int64(d))
}

// Advance is a synonym for Sleep that reads better at call sites that are
// driving the clock rather than simulating elapsed work.
func (v *Virtual) Advance(d time.Duration) { v.Sleep(d) }

// Since returns the virtual duration elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration {
	return v.Now().Sub(t)
}

// Real is a Clock backed by the wall clock. Scale stretches or compresses
// sleeps: a Scale of 0.001 makes a simulated 5 s installation take 5 ms of
// wall time, which keeps live demos responsive while preserving relative
// magnitudes. A zero Scale means 1.0.
type Real struct {
	// Scale multiplies every Sleep duration. Zero means no scaling.
	Scale float64
}

// Now returns the wall-clock time.
func (r *Real) Now() time.Time { return time.Now() }

// Sleep blocks for d scaled by r.Scale.
func (r *Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if r.Scale > 0 {
		d = time.Duration(float64(d) * r.Scale)
	}
	time.Sleep(d)
}
