package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual()
	v.Sleep(5 * time.Second)
	if got := v.Since(Epoch); got != 5*time.Second {
		t.Fatalf("Since = %v", got)
	}
	v.Advance(time.Second)
	if got := v.Since(Epoch); got != 6*time.Second {
		t.Fatalf("Since after Advance = %v", got)
	}
}

func TestVirtualNeverGoesBackwards(t *testing.T) {
	v := NewVirtual()
	v.Sleep(time.Second)
	v.Sleep(-10 * time.Second)
	v.Sleep(0)
	if got := v.Since(Epoch); got != time.Second {
		t.Fatalf("negative sleep moved the clock: %v", got)
	}
}

func TestVirtualConcurrentSleeps(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := v.Since(Epoch); got != 5*time.Second {
		t.Fatalf("concurrent sleeps lost time: %v", got)
	}
}

func TestZeroValueVirtualUsable(t *testing.T) {
	var v Virtual
	v.Sleep(time.Minute)
	if got := v.Now(); !got.Equal(time.Time{}.Add(time.Minute)) {
		t.Fatalf("zero-value clock: %v", got)
	}
}

func TestRealScaledSleep(t *testing.T) {
	r := &Real{Scale: 1e-6}
	start := time.Now()
	r.Sleep(10 * time.Second) // scaled to 10µs
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("scaled sleep took %v", elapsed)
	}
	r.Sleep(-time.Second) // must not panic or block
	if r.Now().IsZero() {
		t.Fatal("Real.Now returned zero time")
	}
}
