package simclock

import (
	"sync/atomic"
	"testing"
	"time"
)

// unpaddedClock replicates Virtual's pre-padding layout (base + bare atomic
// offset, 32 bytes) so the benchmark pair below shows the false-sharing
// cost side by side: a contiguous slice of these packs two clocks per cache
// line, and concurrent shards ping-pong the line between cores.
type unpaddedClock struct {
	base time.Time
	off  atomic.Int64
}

func (c *unpaddedClock) Now() time.Time { return c.base.Add(time.Duration(c.off.Load())) }
func (c *unpaddedClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.off.Add(int64(d))
}

// BenchmarkVirtualNowParallel exercises the sharded-core clock pattern: each
// worker owns one clock in a contiguous slice and alternates Sleep/Now, the
// exact traffic the scale harness generates. Compare against the Unpadded
// variant: on multi-core hardware the padded layout is several times faster
// because neighbouring shards no longer invalidate each other's line (on a
// single-core runner the two benches read the same — there is no one to
// false-share with).
func BenchmarkVirtualNowParallel(b *testing.B) {
	g := NewGroup(16)
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		c := g.Clock(int(next.Add(1)-1) % g.Len())
		for pb.Next() {
			c.Sleep(time.Microsecond)
			_ = c.Now()
		}
	})
}

func BenchmarkVirtualNowParallelUnpadded(b *testing.B) {
	clocks := make([]unpaddedClock, 16)
	for i := range clocks {
		clocks[i].base = Epoch
	}
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		c := &clocks[int(next.Add(1)-1)%len(clocks)]
		for pb.Next() {
			c.Sleep(time.Microsecond)
			_ = c.Now()
		}
	})
}
