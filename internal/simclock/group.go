package simclock

import "time"

// Group is a set of per-shard virtual clocks with a rendezvous ("epoch
// barrier") operation, the clock layer of the sharded discrete-event core.
//
// The model: independent switches never interact except at control-plane
// boundaries, so each shard free-runs its own Virtual clock through the
// data-plane events of an epoch. At every control-plane interaction — probe
// fan-outs, FlowMod batches, TE re-allocation diffs — the shards quiesce and
// the harness calls Align, which advances every clock to the group frontier
// (the maximum instant any shard reached). After Align all shards observe the
// same "now", so timeout expiry, RTT stamps, and latency draws in the next
// phase are independent of how the shards interleaved in wall time: a run
// with one shard and a run with N shards produce bit-identical virtual
// timelines (the TestScaleShardedDifferential gate in internal/scale).
//
// Group methods themselves are not synchronisation points: the caller must
// ensure shards are parked (e.g. behind a sync.WaitGroup) before calling
// Frontier, Lag, or Align from the coordinating goroutine. The per-clock
// cache-line padding on Virtual keeps the shards' free-running Sleep traffic
// from false-sharing while they run.
type Group struct {
	clocks []Virtual
}

// NewGroup returns n virtual clocks, all positioned at Epoch, laid out
// contiguously so shard i's clock is one pointer indirection away.
func NewGroup(n int) *Group {
	g := &Group{clocks: make([]Virtual, n)}
	for i := range g.clocks {
		g.clocks[i].base = Epoch
	}
	return g
}

// Len returns the number of clocks in the group.
func (g *Group) Len() int { return len(g.clocks) }

// Clock returns shard i's clock.
func (g *Group) Clock(i int) *Virtual { return &g.clocks[i] }

// Frontier returns the latest instant any clock in the group has reached.
func (g *Group) Frontier() time.Time {
	var front time.Time
	for i := range g.clocks {
		if now := g.clocks[i].Now(); now.After(front) {
			front = now
		}
	}
	return front
}

// Lag returns the spread between the fastest and slowest clocks — how far
// the shards drifted apart during the last free-running phase. Harnesses
// report the maximum observed lag as a shard-balance diagnostic.
func (g *Group) Lag() time.Duration {
	if len(g.clocks) == 0 {
		return 0
	}
	front := g.Frontier()
	lag := time.Duration(0)
	for i := range g.clocks {
		if d := front.Sub(g.clocks[i].Now()); d > lag {
			lag = d
		}
	}
	return lag
}

// Align advances every clock to the group frontier and returns it — the
// epoch barrier. Virtual.Sleep ignores non-positive durations, so the
// frontier clock itself is untouched and no clock ever moves backwards.
func (g *Group) Align() time.Time {
	front := g.Frontier()
	g.AlignTo(front)
	return front
}

// AlignTo advances every clock that is behind t up to exactly t. Clocks at
// or past t are untouched.
func (g *Group) AlignTo(t time.Time) {
	for i := range g.clocks {
		c := &g.clocks[i]
		c.Sleep(t.Sub(c.Now()))
	}
}
