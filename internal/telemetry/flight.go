package telemetry

// flight.go is the per-switch RTT flight recorder: a bounded ring of the
// most recent probe round trips for every switch the process talks to, each
// sample stamped on both clocks and tagged with the flow that produced it.
// It is the raw-sample companion to the aggregated probe.rtt_ns histograms:
// quantiles tell you a distribution moved, the flight recorder tells you
// when, on which flow, and whether the probe punted — the stream the
// change-point drift detector and the fingerprinting analyses (arXiv
// 1611.02370) consume. Bounded like an aircraft recorder: old samples fall
// off, memory never grows past tracks × capacity.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFlightCapacity is the per-track sample ring size.
const DefaultFlightCapacity = 4096

// FlightSample is one recorded probe round trip.
type FlightSample struct {
	// Switch is the track label (switch/profile name). Filled on export;
	// tracks do not store it per sample.
	Switch string `json:"switch,omitempty"`
	// Seq numbers samples per track from 1, so exports reveal how many
	// samples the ring has already dropped.
	Seq uint64 `json:"seq"`
	// Virt is the instant on the device's measurement clock (virtual for
	// emulated switches, wall for TCP); Wall is when it was recorded.
	Virt time.Time `json:"virt"`
	Wall time.Time `json:"wall"`
	// RTT is the measured round trip.
	RTT time.Duration `json:"rtt_ns"`
	// FlowID is the probe flow that produced the sample.
	FlowID uint32 `json:"flow_id"`
	// Punted reports whether the frame went to the controller (NO_MATCH)
	// instead of being forwarded.
	Punted bool `json:"punted"`
}

// FlightTrack is one switch's bounded sample ring. Record is mutex-guarded
// but allocation-free; a nil *FlightTrack is a no-op.
type FlightTrack struct {
	mu   sync.Mutex
	buf  []FlightSample
	next int
	seq  uint64
}

// Record appends one sample, overwriting the oldest once the ring is full.
func (t *FlightTrack) Record(virt, wall time.Time, rtt time.Duration, flowID uint32, punted bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	t.buf[t.next] = FlightSample{
		Seq: t.seq, Virt: virt, Wall: wall, RTT: rtt, FlowID: flowID, Punted: punted,
	}
	t.next = (t.next + 1) % len(t.buf)
	t.mu.Unlock()
}

// Samples returns a copy of the retained samples, oldest first (nil track:
// nil).
func (t *FlightTrack) Samples() []FlightSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]FlightSample, 0, len(t.buf))
	for i := 0; i < len(t.buf); i++ {
		s := t.buf[(t.next+i)%len(t.buf)]
		if s.Seq != 0 {
			out = append(out, s)
		}
	}
	return out
}

// Len returns how many samples the track currently retains.
func (t *FlightTrack) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.seq >= uint64(len(t.buf)) {
		return len(t.buf)
	}
	return int(t.seq)
}

// FlightRecorder owns one FlightTrack per switch. Track lookups follow the
// vec pattern: copy-on-write map, so the hit path is one atomic load. A nil
// *FlightRecorder hands out nil tracks, keeping the disabled configuration
// free.
type FlightRecorder struct {
	capacity int
	mu       sync.Mutex
	m        atomic.Pointer[map[string]*FlightTrack]
}

// NewFlightRecorder returns a recorder whose tracks hold capacity samples
// each (0 selects DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{capacity: capacity}
}

// Track returns (creating if needed) the named switch's track.
func (fr *FlightRecorder) Track(name string) *FlightTrack {
	if fr == nil {
		return nil
	}
	if p := fr.m.Load(); p != nil {
		if t := (*p)[name]; t != nil {
			return t
		}
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if p := fr.m.Load(); p != nil {
		if t := (*p)[name]; t != nil {
			return t
		}
	}
	t := &FlightTrack{buf: make([]FlightSample, fr.capacity)}
	old := fr.m.Load()
	next := make(map[string]*FlightTrack, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[name] = t
	fr.m.Store(&next)
	return t
}

// Tracks returns the sorted track names (nil recorder: nil).
func (fr *FlightRecorder) Tracks() []string {
	if fr == nil {
		return nil
	}
	p := fr.m.Load()
	if p == nil {
		return nil
	}
	return metricNames(*p)
}

// WriteJSONL writes every track's retained samples as JSON Lines — one
// sample object per line, tracks in sorted name order, each track oldest
// first. The schema is FlightSample's JSON form with the track name in
// "switch". A nil recorder writes nothing and returns nil.
func (fr *FlightRecorder) WriteJSONL(w io.Writer) error {
	if fr == nil {
		return nil
	}
	p := fr.m.Load()
	if p == nil {
		return nil
	}
	names := metricNames(*p)
	enc := json.NewEncoder(w)
	for _, name := range names {
		for _, s := range (*p)[name].Samples() {
			s.Switch = name
			if err := enc.Encode(s); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFile writes the JSONL export to path.
func (fr *FlightRecorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: flight export: %w", err)
	}
	if err := fr.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: flight export: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: flight export: %w", err)
	}
	return nil
}

// Process-wide default flight recorder, following the registry/tracer
// pattern: nil until a command installs one, so the default configuration
// records nothing.
var defaultFlight atomic.Pointer[FlightRecorder]

// SetDefaultFlight installs the process-wide default flight recorder (may
// be nil). Like SetDefault it must run before instrumented objects are
// constructed.
func SetDefaultFlight(fr *FlightRecorder) { defaultFlight.Store(fr) }

// DefaultFlight returns the process-wide default flight recorder (nil when
// unset).
func DefaultFlight() *FlightRecorder { return defaultFlight.Load() }
