package telemetry

// cli.go holds the one-call setup the commands share: bind fresh process
// defaults when the user asked for an export file, and hand back a flush
// function that writes the files when the run finishes.

// Setup installs a new Registry and Tracer as the process defaults when
// metricsPath or tracePath is non-empty, so components constructed afterwards
// (engines, switches, scheduler runs) bind to them automatically. The
// returned flush writes the requested files; it is never nil. When both
// paths are empty nothing is installed and flush is a no-op.
func Setup(metricsPath, tracePath string) (flush func() error) {
	if metricsPath == "" && tracePath == "" {
		return func() error { return nil }
	}
	reg := NewRegistry()
	tr := NewTracer(nil)
	SetDefault(reg, tr)
	return func() error {
		if metricsPath != "" {
			if err := reg.WriteFile(metricsPath); err != nil {
				return err
			}
		}
		if tracePath != "" {
			if err := tr.WriteFile(tracePath); err != nil {
				return err
			}
		}
		return nil
	}
}
