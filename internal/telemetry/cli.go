package telemetry

// cli.go holds the one-call setup the commands share: one flag set
// (-metrics-out, -trace-out, -flight-out, -telemetry, -sample-every) bound
// through CLI.BindFlags, one Setup call that installs fresh process
// defaults, optionally serves the HTTP exporter, and hands back a flush
// function that writes the export files when the run finishes.

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"
)

// CLI is the shared telemetry flag block. Bind it with BindFlags, then call
// Setup after flag parsing.
type CLI struct {
	// MetricsOut, TraceOut, FlightOut are export file paths written by the
	// flush function ("" disables each).
	MetricsOut string
	TraceOut   string
	FlightOut  string
	// Addr serves the live HTTP exporter (/metrics, /metrics/series,
	// /trace, /flight, /debug/pprof) when non-empty.
	Addr string
	// SampleEvery is the windowed-series sampling interval for the HTTP
	// exporter's /metrics/series endpoint.
	SampleEvery time.Duration
}

// BindFlags registers the shared telemetry flags on fs (use flag.CommandLine
// from a command's main).
func (c *CLI) BindFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write a telemetry metrics snapshot (JSON) to this file")
	fs.StringVar(&c.TraceOut, "trace-out", "", "write a Chrome trace_event file (JSON) to this file")
	fs.StringVar(&c.FlightOut, "flight-out", "", "write the per-switch RTT flight recorder (JSON Lines) to this file")
	fs.StringVar(&c.Addr, "telemetry", "", "serve /metrics, /metrics/series, /trace, /flight and /debug/pprof over HTTP on this address (e.g. 127.0.0.1:8080)")
	fs.DurationVar(&c.SampleEvery, "sample-every", DefaultSampleInterval, "sampling interval for the windowed /metrics/series endpoint")
}

// Enabled reports whether any telemetry sink was requested.
func (c *CLI) Enabled() bool {
	return c.MetricsOut != "" || c.TraceOut != "" || c.FlightOut != "" || c.Addr != ""
}

// OutputPaths returns the flag-name/path pairs of the requested export
// files, for commands that validate output destinations before running.
func (c *CLI) OutputPaths() [][2]string {
	var out [][2]string
	for _, p := range [][2]string{
		{"-metrics-out", c.MetricsOut}, {"-trace-out", c.TraceOut}, {"-flight-out", c.FlightOut},
	} {
		if p[1] != "" {
			out = append(out, p)
		}
	}
	return out
}

// Setup installs a fresh Registry, Tracer, and FlightRecorder as the
// process defaults when any sink was requested, so components constructed
// afterwards bind to them automatically. With Addr set it also binds the
// listener (failing fast on a bad address), starts the windowed Sampler,
// and serves the HTTP exporter in the background. The returned flush stops
// the sampler and writes the requested files; it is never nil. When no sink
// was requested nothing is installed and flush is a no-op.
func (c *CLI) Setup() (flush func() error, err error) {
	if !c.Enabled() {
		return func() error { return nil }, nil
	}
	// Bind the listener before touching the process defaults, so a bad
	// -telemetry address fails without leaving half-installed globals.
	var ln net.Listener
	if c.Addr != "" {
		var err error
		if ln, err = net.Listen("tcp", c.Addr); err != nil {
			return nil, fmt.Errorf("telemetry: -telemetry %s: %w", c.Addr, err)
		}
	}
	reg := NewRegistry()
	tr := NewTracer(nil)
	fr := NewFlightRecorder(0)
	SetDefault(reg, tr)
	SetDefaultFlight(fr)

	var smp *Sampler
	if ln != nil {
		smp = NewSampler(reg, SamplerOptions{Interval: c.SampleEvery})
		smp.Start()
		h := HandlerFor(HandlerOptions{Registry: reg, Tracer: tr, Sampler: smp, Flight: fr})
		go func() {
			if serr := http.Serve(ln, h); serr != nil {
				fmt.Fprintf(os.Stderr, "telemetry: http: %v\n", serr)
			}
		}()
	}
	return func() error {
		smp.Stop()
		if c.MetricsOut != "" {
			if err := reg.WriteFile(c.MetricsOut); err != nil {
				return err
			}
		}
		if c.TraceOut != "" {
			if err := tr.WriteFile(c.TraceOut); err != nil {
				return err
			}
		}
		if c.FlightOut != "" {
			if err := fr.WriteFile(c.FlightOut); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

// Setup installs a new Registry and Tracer as the process defaults when
// metricsPath or tracePath is non-empty, so components constructed afterwards
// (engines, switches, scheduler runs) bind to them automatically. The
// returned flush writes the requested files; it is never nil. When both
// paths are empty nothing is installed and flush is a no-op.
//
// It is the file-only predecessor of CLI.Setup, kept for embedders that do
// not want the flag block.
func Setup(metricsPath, tracePath string) (flush func() error) {
	c := CLI{MetricsOut: metricsPath, TraceOut: tracePath}
	// No Addr means no listener, so CLI.Setup cannot fail.
	flush, _ = c.Setup()
	return flush
}
