package telemetry

import (
	"sync"
	"time"
)

// DefaultSpanLimit caps how many events a tracer retains before it starts
// dropping (counting the drops). Large scheduler runs can emit one span per
// flow-mod; the cap bounds memory without failing the run.
const DefaultSpanLimit = 1 << 16

// SpanEvent is one recorded span or instant event, stamped on both clocks:
// Virt/VirtDur place it on the simulated timeline (the one trace viewers
// render), Wall records when it really happened.
type SpanEvent struct {
	// Name is the event name, e.g. "sched.batch".
	Name string
	// Track groups events into trace-viewer threads ("" is the main track);
	// scheduler batches use the switch name so each switch gets a lane.
	Track string
	// Phase is 'X' for complete spans, 'i' for instant events.
	Phase byte
	// Virt is the virtual start instant, VirtDur the virtual duration.
	Virt    time.Time
	VirtDur time.Duration
	// Wall is the wall-clock instant the event was recorded.
	Wall time.Time
	// Args carries event metadata into the trace viewer.
	Args map[string]any
}

// Tracer collects span events. All methods are safe for concurrent use, and
// a nil *Tracer (or nil *Span) is a no-op, so tracing instrumentation can be
// left in place unconditionally.
type Tracer struct {
	virtNow func() time.Time

	mu      sync.Mutex
	limit   int
	events  []SpanEvent
	dropped int64
}

// NewTracer returns a tracer. virtNow supplies the virtual clock for spans
// started with Start and for Instant events; nil means spans are stamped
// with wall time on both clocks (appropriate for purely wall-clock
// processes such as the TCP daemon). Events recorded through Record carry
// their own virtual timestamps and ignore virtNow.
func NewTracer(virtNow func() time.Time) *Tracer {
	return &Tracer{virtNow: virtNow, limit: DefaultSpanLimit}
}

// SetLimit changes the retained-event cap (minimum 1).
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

func (t *Tracer) now() (virt, wall time.Time) {
	wall = time.Now()
	if t.virtNow != nil {
		return t.virtNow(), wall
	}
	return wall, wall
}

func (t *Tracer) append(ev SpanEvent) {
	t.mu.Lock()
	if len(t.events) >= t.limit {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Record adds a complete span with an explicit virtual start and duration —
// the form used by components that own their own clock (the switch emulator,
// the scheduler's composed makespan timeline). args may be nil; the map is
// retained, so callers must not reuse it.
func (t *Tracer) Record(name, track string, virtStart time.Time, virtDur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.append(SpanEvent{
		Name: name, Track: track, Phase: 'X',
		Virt: virtStart, VirtDur: virtDur, Wall: time.Now(), Args: args,
	})
}

// Instant adds a zero-duration event at the current time.
func (t *Tracer) Instant(name, track string, args map[string]any) {
	if t == nil {
		return
	}
	virt, wall := t.now()
	t.append(SpanEvent{Name: name, Track: track, Phase: 'i', Virt: virt, Wall: wall, Args: args})
}

// Span is an in-flight span created by Start; End records it.
type Span struct {
	t         *Tracer
	name      string
	track     string
	virtStart time.Time
	wallStart time.Time
	args      map[string]any
}

// Start begins a span on the tracer's clocks. Returns nil (safe to use) on
// a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	virt, wall := t.now()
	return &Span{t: t, name: name, virtStart: virt, wallStart: wall}
}

// OnTrack moves the span onto the named track. Returns s for chaining.
func (s *Span) OnTrack(track string) *Span {
	if s != nil {
		s.track = track
	}
	return s
}

// Arg attaches one key/value of metadata. Returns s for chaining.
func (s *Span) Arg(key string, v any) *Span {
	if s != nil {
		if s.args == nil {
			s.args = map[string]any{}
		}
		s.args[key] = v
	}
	return s
}

// End completes and records the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	virt, _ := s.t.now()
	s.t.append(SpanEvent{
		Name: s.name, Track: s.track, Phase: 'X',
		Virt: s.virtStart, VirtDur: virt.Sub(s.virtStart),
		Wall: s.wallStart, Args: s.args,
	})
}

// Events returns a copy of the retained events.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// Dropped returns how many events the cap discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all retained events and the drop count.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events, t.dropped = nil, 0
	t.mu.Unlock()
}
