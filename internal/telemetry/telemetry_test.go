package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("x") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metric handles")
	}
	// None of these may panic.
	c.Add(1)
	c.Inc()
	g.Set(2)
	g.Add(3)
	h.Observe(4)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if got := h.Snapshot(); got.Count != 0 {
		t.Fatalf("nil histogram snapshot = %+v", got)
	}
	snap := r.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}

	var tr *Tracer
	tr.Record("a", "", time.Time{}, 0, nil)
	tr.Instant("b", "", nil)
	tr.SetLimit(1)
	tr.Reset()
	sp := tr.Start("c")
	sp.OnTrack("t").Arg("k", 1).End()
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("nil tracer WriteTrace: %v", err)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rtt", 10, 100, 1000)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	if want := 500.5; math.Abs(s.Mean-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", s.Mean, want)
	}
	// The ring holds the full stream (1000 ≤ reservoirSize) so quantiles
	// are near-exact.
	if s.P50 < 450 || s.P50 > 550 {
		t.Fatalf("p50 = %g", s.P50)
	}
	if s.P99 < 950 {
		t.Fatalf("p99 = %g", s.P99)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 1000 {
		t.Fatalf("bucket counts sum to %d", total)
	}
	// Values equal to a boundary land in that boundary's bucket.
	if s.Buckets[0].LE != 10 || s.Buckets[0].Count != 10 {
		t.Fatalf("first bucket = %+v", s.Buckets[0])
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 10)
	h.Observe(1e9)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || !math.IsInf(s.Buckets[0].LE, 1) || s.Buckets[0].Count != 1 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			for i := 0; i < 1000; i++ {
				c.Add(1)
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("probe.flowmods").Add(12)
	r.Gauge("sched.makespan_ns").Set(34)
	r.Histogram("probe.rtt_ns").Observe(5e5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["probe.flowmods"] != 12 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Gauges["sched.makespan_ns"] != 34 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if h := snap.Histograms["probe.rtt_ns"]; h.Count != 1 || h.Sum != 5e5 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil || DefaultTracer() != nil {
		t.Fatal("defaults must start nil")
	}
	r := NewRegistry()
	tr := NewTracer(nil)
	SetDefault(r, tr)
	defer SetDefault(nil, nil)
	if Default() != r || DefaultTracer() != tr {
		t.Fatal("SetDefault did not take")
	}
}
