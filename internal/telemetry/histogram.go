package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"tango/internal/stats"
)

// DefBuckets are the default histogram boundaries, tuned for durations in
// nanoseconds: roughly logarithmic from 1µs to 100s, which covers everything
// from a fast-path RTT sample to a whole scheduling run's makespan.
var DefBuckets = []float64{
	1e3, 2.5e3, 5e3, // 1µs .. 5µs
	1e4, 2.5e4, 5e4, // 10µs .. 50µs
	1e5, 2.5e5, 5e5, // 100µs .. 500µs
	1e6, 2.5e6, 5e6, // 1ms .. 5ms
	1e7, 2.5e7, 5e7, // 10ms .. 50ms
	1e8, 2.5e8, 5e8, // 100ms .. 500ms
	1e9, 2.5e9, 5e9, // 1s .. 5s
	1e10, 2.5e10, 5e10, // 10s .. 50s
	1e11, // 100s
}

// reservoirSize is the per-histogram ring capacity backing quantile
// summaries. Power of two so the hot path can mask instead of divide.
const reservoirSize = 1024

// Histogram records a distribution into fixed buckets plus a ring of the
// most recent reservoirSize observations. Observing is an atomic fast path
// with no allocation; snapshots pay for sorting. A nil *Histogram is a
// no-op.
type Histogram struct {
	bounds  []float64 // immutable upper bucket boundaries, ascending
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-updated
	min     atomic.Uint64 // float64 bits
	max     atomic.Uint64 // float64 bits
	ring    [reservoirSize]atomic.Uint64
	ringN   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	casAddFloat(&h.sum, v)
	casFloat(&h.min, v, func(cur float64) bool { return v < cur })
	casFloat(&h.max, v, func(cur float64) bool { return v > cur })
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	slot := (h.ringN.Add(1) - 1) & (reservoirSize - 1)
	h.ring[slot].Store(math.Float64bits(v))
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// casAddFloat atomically adds v to the float64 stored in a's bits.
func casAddFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// casFloat atomically replaces the float64 in a when better(current) holds.
func casFloat(a *atomic.Uint64, v float64, better func(cur float64) bool) {
	for {
		old := a.Load()
		if !better(math.Float64frombits(old)) {
			return
		}
		if a.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// bucketQuantile estimates the q-th percentile from per-bucket counts
// (counts[i] pairs with upper bound bounds[i]; the final slot is the +Inf
// overflow bucket) by locating the containing bucket and interpolating
// linearly inside it. min/max clamp the bucket edges to the observed range,
// which pins the open-ended first and overflow buckets to real values.
// Returns 0 when total is 0.
func bucketQuantile(bounds []float64, counts []int64, total int64, min, max float64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	rank := q / 100 * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := min
		if i > 0 && bounds[i-1] > lo {
			lo = bounds[i-1]
		}
		hi := max
		if i < len(bounds) && bounds[i] < hi {
			hi = bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	return max
}

// BucketCount is one cumulative-free histogram bucket: the number of
// observations v with prevLE < v ≤ LE. The final bucket has LE = +Inf.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time summary of a histogram. Quantiles
// are estimated from the ring of recent observations.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot summarises the histogram. Empty histograms report all zeros.
//
// Quantiles follow a ring-vs-bucket precedence: while the recent-observation
// ring still holds the complete stream (count ≤ ring capacity) they are
// computed from the ring, which is near-exact. Once the ring has wrapped it
// only retains the most recent window — quantiles from it would silently
// describe recency, not the distribution — so the snapshot switches to the
// full-stream bucket counts, linearly interpolating within the containing
// bucket (see bucketQuantile, and the precedence note in the package docs).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	n := h.count.Load()
	if n == 0 {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: n,
		Sum:   math.Float64frombits(h.sum.Load()),
		Min:   math.Float64frombits(h.min.Load()),
		Max:   math.Float64frombits(h.max.Load()),
	}
	s.Mean = s.Sum / float64(n)
	if n <= reservoirSize {
		held := h.ringN.Load()
		if held > reservoirSize {
			held = reservoirSize
		}
		sample := make([]float64, held)
		for i := range sample {
			sample[i] = math.Float64frombits(h.ring[i].Load())
		}
		s.P50, _ = stats.Percentile(sample, 50)
		s.P90, _ = stats.Percentile(sample, 90)
		s.P99, _ = stats.Percentile(sample, 99)
	} else {
		counts := make([]int64, len(h.buckets))
		var total int64
		for i := range h.buckets {
			counts[i] = h.buckets[i].Load()
			total += counts[i]
		}
		s.P50 = bucketQuantile(h.bounds, counts, total, s.Min, s.Max, 50)
		s.P90 = bucketQuantile(h.bounds, counts, total, s.Min, s.Max, 90)
		s.P99 = bucketQuantile(h.bounds, counts, total, s.Min, s.Max, 99)
	}
	s.Buckets = make([]BucketCount, 0, len(h.buckets))
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue // keep snapshots small: most duration buckets are empty
		}
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: c})
	}
	return s
}
