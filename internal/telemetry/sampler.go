package telemetry

// sampler.go turns the registry's cumulative metrics into time series. A
// Sampler periodically walks every registered metric (the shape of the FaaS
// controller's sys_measure snapshot pass) and appends one interval snapshot
// per metric to a bounded ring: counters become per-window deltas with
// rates and an EWMA, gauges become sampled values, histograms become
// per-window count/sum plus quantiles interpolated from the interval's
// bucket deltas. Each window is stamped on both clocks — wall time, and the
// virtual clock when one is supplied — so emulator runs can be asked "what
// happened over the last 30 virtual seconds" and TCP runs "over the last 30
// real ones". Every tick also captures runtime health (heap, GC pauses,
// goroutine count), which is the drift detector's baseline for separating
// switch-side change from controller-side load.

import (
	"encoding/json"
	"io"
	"math"
	"runtime"
	"sync"
	"time"
)

// Sampler defaults.
const (
	// DefaultSampleInterval is Start's wall-clock tick period.
	DefaultSampleInterval = time.Second
	// DefaultWindows is the per-metric ring capacity: with the default
	// interval, two minutes of history.
	DefaultWindows = 120
	// DefaultEWMAAlpha is the rate-smoothing factor (weight of the newest
	// window).
	DefaultEWMAAlpha = 0.3
)

// SamplerOptions configures NewSampler. The zero value selects the defaults
// above with wall-clock stamping only.
type SamplerOptions struct {
	// Interval is the wall period of Start's loop; Tick may additionally be
	// driven by hand (tests, virtual-time harnesses). Zero means
	// DefaultSampleInterval.
	Interval time.Duration
	// Windows bounds each series ring. Zero means DefaultWindows.
	Windows int
	// VirtNow supplies the virtual clock for window stamps; nil stamps
	// virtual time with wall time.
	VirtNow func() time.Time
	// Alpha is the EWMA smoothing factor in (0,1]. Zero means
	// DefaultEWMAAlpha.
	Alpha float64
}

// CounterPoint is one counter window: the delta accumulated over the
// interval, its rate, and the smoothed rate.
type CounterPoint struct {
	Wall    time.Time     `json:"wall"`
	Virt    time.Time     `json:"virt"`
	Dur     time.Duration `json:"dur_ns"`
	VirtDur time.Duration `json:"virt_dur_ns"`
	Delta   int64         `json:"delta"`
	Total   int64         `json:"total"`
	Rate    float64       `json:"rate_per_s"`
	EWMA    float64       `json:"ewma_per_s"`
}

// GaugePoint is one sampled gauge value.
type GaugePoint struct {
	Wall  time.Time `json:"wall"`
	Virt  time.Time `json:"virt"`
	Value int64     `json:"value"`
}

// HistogramPoint is one histogram window: observations and mass accumulated
// over the interval, with quantiles interpolated from the interval's bucket
// deltas (not the lifetime distribution).
type HistogramPoint struct {
	Wall    time.Time     `json:"wall"`
	Virt    time.Time     `json:"virt"`
	Dur     time.Duration `json:"dur_ns"`
	VirtDur time.Duration `json:"virt_dur_ns"`
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Rate    float64       `json:"rate_per_s"`
	EWMA    float64       `json:"ewma_per_s"`
}

// RuntimePoint is one runtime-health sample.
type RuntimePoint struct {
	Wall         time.Time     `json:"wall"`
	Virt         time.Time     `json:"virt"`
	HeapAlloc    uint64        `json:"heap_alloc_bytes"`
	HeapObjects  uint64        `json:"heap_objects"`
	Goroutines   int           `json:"goroutines"`
	NumGC        uint32        `json:"num_gc"`
	GCPauseTotal time.Duration `json:"gc_pause_total_ns"`
	GCPauseDelta time.Duration `json:"gc_pause_delta_ns"`
}

// ring is a bounded append-only window buffer.
type ring[T any] struct {
	buf  []T
	next int
	full bool
}

func (r *ring[T]) push(cap int, v T) {
	if r.buf == nil {
		r.buf = make([]T, cap)
	}
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// ordered returns the retained points, oldest first.
func (r *ring[T]) ordered() []T {
	if r.buf == nil {
		return nil
	}
	if !r.full {
		return append([]T(nil), r.buf[:r.next]...)
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

type counterSeries struct {
	c    *Counter
	prev int64
	ewma float64
	ring ring[CounterPoint]
}

type gaugeSeries struct {
	g    *Gauge
	ring ring[GaugePoint]
}

type histSeries struct {
	h          *Histogram
	prevCount  int64
	prevSum    float64
	prevBucket []int64
	ewma       float64
	ring       ring[HistogramPoint]
}

// Sampler drives windowed aggregation over one registry. All methods are
// safe for concurrent use; a nil *Sampler is a no-op end to end.
type Sampler struct {
	reg  *Registry
	opts SamplerOptions

	mu       sync.Mutex
	counters map[string]*counterSeries
	gauges   map[string]*gaugeSeries
	hists    map[string]*histSeries
	runtime  ring[RuntimePoint]
	prevGC   time.Duration
	lastWall time.Time
	lastVirt time.Time
	ticks    int64

	startMu sync.Mutex
	stop    chan struct{}
	done    chan struct{}
}

// NewSampler returns a sampler over reg. It takes no measurements until
// Start or Tick is called.
func NewSampler(reg *Registry, opts SamplerOptions) *Sampler {
	if opts.Interval <= 0 {
		opts.Interval = DefaultSampleInterval
	}
	if opts.Windows <= 0 {
		opts.Windows = DefaultWindows
	}
	if opts.Alpha <= 0 || opts.Alpha > 1 {
		opts.Alpha = DefaultEWMAAlpha
	}
	return &Sampler{
		reg:      reg,
		opts:     opts,
		counters: map[string]*counterSeries{},
		gauges:   map[string]*gaugeSeries{},
		hists:    map[string]*histSeries{},
	}
}

// Start launches the periodic snapshot loop on the configured interval.
// Calling Start on a running (or nil) sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startMu.Lock()
	defer s.startMu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(s.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Tick()
			case <-stop:
				return
			}
		}
	}(s.stop, s.done)
}

// Stop halts the loop started by Start and waits for it to exit. Safe on a
// nil or never-started sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.startMu.Lock()
	defer s.startMu.Unlock()
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop, s.done = nil, nil
}

// Tick takes one interval snapshot immediately. It is the loop body of
// Start, exported so tests and virtual-time harnesses can drive windows
// deterministically.
func (s *Sampler) Tick() {
	if s == nil {
		return
	}
	wall := time.Now()
	virt := wall
	if s.opts.VirtNow != nil {
		virt = s.opts.VirtNow()
	}

	// Collect stable metric handles under the registry lock, then read the
	// atomics outside it.
	type named[M any] struct {
		name string
		m    M
	}
	var (
		cs []named[*Counter]
		gs []named[*Gauge]
		hs []named[*Histogram]
	)
	if s.reg != nil {
		s.reg.mu.Lock()
		for n, c := range s.reg.counters {
			cs = append(cs, named[*Counter]{n, c})
		}
		for n, g := range s.reg.gauges {
			gs = append(gs, named[*Gauge]{n, g})
		}
		for n, h := range s.reg.hists {
			hs = append(hs, named[*Histogram]{n, h})
		}
		s.reg.mu.Unlock()
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	goroutines := runtime.NumGoroutine()

	s.mu.Lock()
	defer s.mu.Unlock()
	first := s.ticks == 0
	dur := wall.Sub(s.lastWall)
	virtDur := virt.Sub(s.lastVirt)
	s.lastWall, s.lastVirt = wall, virt
	s.ticks++
	secs := dur.Seconds()

	for _, nc := range cs {
		ser := s.counters[nc.name]
		if ser == nil {
			ser = &counterSeries{c: nc.m}
			s.counters[nc.name] = ser
		}
		total := nc.m.Value()
		delta := total - ser.prev
		ser.prev = total
		if first {
			// The first tick only establishes the baseline: there is no
			// interval yet for a delta to cover.
			continue
		}
		rate := 0.0
		if secs > 0 {
			rate = float64(delta) / secs
		}
		ser.ewma = s.opts.Alpha*rate + (1-s.opts.Alpha)*ser.ewma
		ser.ring.push(s.opts.Windows, CounterPoint{
			Wall: wall, Virt: virt, Dur: dur, VirtDur: virtDur,
			Delta: delta, Total: total, Rate: rate, EWMA: ser.ewma,
		})
	}
	for _, ng := range gs {
		ser := s.gauges[ng.name]
		if ser == nil {
			ser = &gaugeSeries{g: ng.m}
			s.gauges[ng.name] = ser
		}
		ser.ring.push(s.opts.Windows, GaugePoint{Wall: wall, Virt: virt, Value: ng.m.Value()})
	}
	for _, nh := range hs {
		ser := s.hists[nh.name]
		if ser == nil {
			ser = &histSeries{h: nh.m, prevBucket: make([]int64, len(nh.m.buckets))}
			s.hists[nh.name] = ser
		}
		count := nh.m.count.Load()
		sum := math.Float64frombits(nh.m.sum.Load())
		dCount := count - ser.prevCount
		dSum := sum - ser.prevSum
		deltas := make([]int64, len(nh.m.buckets))
		for i := range nh.m.buckets {
			cur := nh.m.buckets[i].Load()
			deltas[i] = cur - ser.prevBucket[i]
			ser.prevBucket[i] = cur
		}
		ser.prevCount, ser.prevSum = count, sum
		if first {
			continue
		}
		pt := HistogramPoint{
			Wall: wall, Virt: virt, Dur: dur, VirtDur: virtDur,
			Count: dCount, Sum: dSum,
		}
		if dCount > 0 {
			pt.Mean = dSum / float64(dCount)
			min := math.Float64frombits(nh.m.min.Load())
			max := math.Float64frombits(nh.m.max.Load())
			pt.P50 = bucketQuantile(nh.m.bounds, deltas, dCount, min, max, 50)
			pt.P90 = bucketQuantile(nh.m.bounds, deltas, dCount, min, max, 90)
			pt.P99 = bucketQuantile(nh.m.bounds, deltas, dCount, min, max, 99)
		}
		if secs > 0 {
			pt.Rate = float64(dCount) / secs
		}
		ser.ewma = s.opts.Alpha*pt.Rate + (1-s.opts.Alpha)*ser.ewma
		pt.EWMA = ser.ewma
		ser.ring.push(s.opts.Windows, pt)
	}

	gcPause := time.Duration(ms.PauseTotalNs)
	rp := RuntimePoint{
		Wall: wall, Virt: virt,
		HeapAlloc: ms.HeapAlloc, HeapObjects: ms.HeapObjects,
		Goroutines: goroutines, NumGC: ms.NumGC,
		GCPauseTotal: gcPause, GCPauseDelta: gcPause - s.prevGC,
	}
	if first {
		rp.GCPauseDelta = 0
	}
	s.prevGC = gcPause
	s.runtime.push(s.opts.Windows, rp)
}

// SeriesSnapshot is the exportable view of every windowed series, oldest
// point first.
type SeriesSnapshot struct {
	TakenAt    time.Time                   `json:"taken_at"`
	Interval   time.Duration               `json:"interval_ns"`
	Ticks      int64                       `json:"ticks"`
	Counters   map[string][]CounterPoint   `json:"counters"`
	Gauges     map[string][]GaugePoint     `json:"gauges"`
	Histograms map[string][]HistogramPoint `json:"histograms"`
	Runtime    []RuntimePoint              `json:"runtime"`
}

// Series returns a copy of every retained window. A nil sampler yields an
// empty (but non-nil) snapshot.
func (s *Sampler) Series() *SeriesSnapshot {
	out := &SeriesSnapshot{
		TakenAt:    time.Now(),
		Counters:   map[string][]CounterPoint{},
		Gauges:     map[string][]GaugePoint{},
		Histograms: map[string][]HistogramPoint{},
	}
	if s == nil {
		return out
	}
	out.Interval = s.opts.Interval
	s.mu.Lock()
	defer s.mu.Unlock()
	out.Ticks = s.ticks
	for n, ser := range s.counters {
		if pts := ser.ring.ordered(); len(pts) > 0 {
			out.Counters[n] = pts
		}
	}
	for n, ser := range s.gauges {
		if pts := ser.ring.ordered(); len(pts) > 0 {
			out.Gauges[n] = pts
		}
	}
	for n, ser := range s.hists {
		if pts := ser.ring.ordered(); len(pts) > 0 {
			out.Histograms[n] = pts
		}
	}
	out.Runtime = s.runtime.ordered()
	return out
}

// WriteJSON writes the series snapshot as indented JSON.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Series())
}
