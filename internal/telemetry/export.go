package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"time"
)

// Snapshot is a point-in-time copy of every metric in a registry, shaped
// for JSON export.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty (but non-nil) snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		TakenAt:    time.Now(),
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range metricNames(r.counters) {
		s.Counters[n] = r.counters[n].Value()
	}
	for _, n := range metricNames(r.gauges) {
		s.Gauges[n] = r.gauges[n].Value()
	}
	for _, n := range metricNames(r.hists) {
		s.Histograms[n] = r.hists[n].Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFile writes the registry snapshot to path.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: metrics snapshot: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: metrics snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: metrics snapshot: %w", err)
	}
	return nil
}

// traceEvent is one Chrome trace_event object.
// See the Trace Event Format spec (docs.google.com/document/d/1CvAClvFfyA5R-
// PhYUmn5OOQtYMH4h6I0nSsKchNAySU); the subset emitted here loads in both
// about:tracing and Perfetto.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object flavour of the trace format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace exports the retained events as Chrome trace_event JSON. The
// timeline is virtual time, rebased so the earliest event sits at t=0; each
// event's wall-clock instant rides along in its args. Tracks map to
// trace-viewer threads with their names attached as metadata.
func (t *Tracer) WriteTrace(w io.Writer) error {
	events := t.Events()
	out := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}

	var base time.Time
	for _, ev := range events {
		if base.IsZero() || ev.Virt.Before(base) {
			base = ev.Virt
		}
	}
	tids := map[string]int{"": 0}
	out.TraceEvents = append(out.TraceEvents,
		traceEvent{Name: "process_name", Phase: "M", PID: 1, Args: map[string]any{"name": "tango"}},
		traceEvent{Name: "thread_name", Phase: "M", PID: 1, TID: 0, Args: map[string]any{"name": "main"}},
	)
	for _, ev := range events {
		tid, ok := tids[ev.Track]
		if !ok {
			tid = len(tids)
			tids[ev.Track] = tid
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": ev.Track},
			})
		}
		args := map[string]any{"wall": ev.Wall.Format(time.RFC3339Nano)}
		for k, v := range ev.Args {
			args[k] = v
		}
		te := traceEvent{
			Name:  ev.Name,
			Cat:   "tango",
			Phase: string(ev.Phase),
			TS:    float64(ev.Virt.Sub(base)) / float64(time.Microsecond),
			PID:   1,
			TID:   tid,
			Args:  args,
		}
		if ev.Phase == 'X' {
			dur := float64(ev.VirtDur) / float64(time.Microsecond)
			te.Dur = &dur
		} else {
			te.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: trace export: %w", err)
	}
	if err := t.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: trace export: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: trace export: %w", err)
	}
	return nil
}

// HandlerOptions selects what HandlerFor serves. Every field may be nil;
// the corresponding endpoint then serves an empty document, so a partially
// configured process still exposes a well-formed surface.
type HandlerOptions struct {
	Registry *Registry
	Tracer   *Tracer
	// Sampler backs /metrics/series with windowed time series.
	Sampler *Sampler
	// Flight backs /flight with the per-switch RTT flight recorder JSONL.
	Flight *FlightRecorder
	// DisablePprof removes the /debug/pprof routes (served by default: the
	// exporter is a diagnostics endpoint, and live profiles are half the
	// point of having one).
	DisablePprof bool
}

// Handler returns an expvar-style HTTP handler exposing the registry and
// tracer (see HandlerFor for the full route set). Either argument may be
// nil, in which case the corresponding endpoint serves an empty document.
func Handler(r *Registry, t *Tracer) http.Handler {
	return HandlerFor(HandlerOptions{Registry: r, Tracer: t})
}

// HandlerFor returns the telemetry HTTP handler:
//
//	GET /metrics         — JSON metrics snapshot (labeled children appear
//	                       under their family{key="value"} names)
//	GET /metrics/series  — windowed time series (rates, EWMA, per-window
//	                       quantiles, runtime health) from the Sampler
//	GET /trace           — Chrome trace_event JSON of the spans so far
//	GET /flight          — per-switch RTT flight recorder, JSON Lines
//	GET /debug/pprof/*   — live Go profiles (unless DisablePprof)
//	GET /                — plain-text index
func HandlerFor(opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := opts.Registry.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics/series", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := opts.Sampler.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := opts.Tracer.WriteTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := opts.Flight.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if !opts.DisablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, `tango telemetry
  /metrics         JSON metrics snapshot
  /metrics/series  windowed time series (rates, EWMA, per-window quantiles)
  /trace           Chrome trace_event JSON (open in ui.perfetto.dev)
  /flight          per-switch RTT flight recorder (JSON Lines)
  /debug/pprof/    live Go profiles`)
	})
	return mux
}
