package telemetry

// The overhead guarantees the instrumented hot paths rely on: recording into
// a live counter/gauge/histogram allocates nothing, and the disabled (nil
// handle) path costs only a nil check. Run with -benchmem; the alloc
// invariants are also enforced as plain tests so `go test` catches
// regressions without benchmarking.

import (
	"testing"
	"time"
)

func TestRecordingIsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(42)
		h.Observe(3.5e5)
		h.ObserveDuration(time.Millisecond)
	}); n != 0 {
		t.Fatalf("live record path allocates %v objects per op, want 0", n)
	}
}

func TestNilRecordingIsAllocationFree(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var tr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(42)
		h.Observe(3.5e5)
		tr.Record("s", "", time.Time{}, 0, nil)
		tr.Start("s").End()
	}); n != 0 {
		t.Fatalf("nil no-op path allocates %v objects per op, want 0", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e4)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkNilTracerSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start("s").End()
	}
}
