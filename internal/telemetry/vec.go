package telemetry

// vec.go adds labeled metric families. A Vec is a named family plus a label
// key ("switch", "profile"); With(value) returns the child metric for one
// label value, registering it on first use under the canonical name
// `family{key="value"}` so snapshots, the sampler, and the HTTP exporter
// see children exactly like plain metrics.
//
// The child table is a copy-on-write map behind an atomic pointer: With is a
// single atomic load plus one map lookup on the hit path — no lock, no
// allocation — which keeps per-probe labeled recording as cheap as the
// unlabeled handles. Writers (first use of a new label value) take a mutex,
// copy the table, and publish the new map. Handles should still be cached at
// construction where possible; With exists for call sites whose label is
// only known per operation (a fleet worker touching many switches).

import (
	"sync"
	"sync/atomic"
)

// ChildName returns the canonical registry name of a vec child:
// `family{key="value"}`. Exporters and tests use it to address children in
// snapshots.
func ChildName(family, key, value string) string {
	return family + "{" + key + `="` + value + `"}`
}

// vecCore is the label-value → child table shared by the three vec kinds.
type vecCore[M any] struct {
	name string
	key  string
	m    atomic.Pointer[map[string]*M]
	mu   sync.Mutex
}

// get returns the cached child for value, or nil when it has not been
// created yet. Allocation-free.
func (v *vecCore[M]) get(value string) *M {
	if p := v.m.Load(); p != nil {
		return (*p)[value]
	}
	return nil
}

// put publishes child under value via copy-on-write. Callers hold v.mu and
// have re-checked for a racing insert.
func (v *vecCore[M]) put(value string, child *M) {
	old := v.m.Load()
	next := make(map[string]*M, 1)
	if old != nil {
		for k, c := range *old {
			next[k] = c
		}
	}
	next[value] = child
	v.m.Store(&next)
}

// labels returns the sorted label values with live children.
func (v *vecCore[M]) labels() []string {
	p := v.m.Load()
	if p == nil {
		return nil
	}
	return metricNames(*p)
}

// CounterVec is a family of counters keyed by one label. A nil *CounterVec
// hands out nil (no-op) children.
type CounterVec struct {
	reg *Registry
	vecCore[Counter]
}

// With returns (registering if needed) the child counter for the label
// value. The hit path is lock- and allocation-free.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	if c := v.get(value); c != nil {
		return c
	}
	return v.slow(value)
}

func (v *CounterVec) slow(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.get(value); c != nil {
		return c
	}
	// Register through the registry so the child shows up in snapshots and
	// is shared with any direct Counter(ChildName(...)) lookup.
	c := v.reg.Counter(ChildName(v.name, v.key, value))
	v.put(value, c)
	return c
}

// Labels returns the sorted label values observed so far (nil receiver: nil).
func (v *CounterVec) Labels() []string {
	if v == nil {
		return nil
	}
	return v.labels()
}

// GaugeVec is a family of gauges keyed by one label. A nil *GaugeVec hands
// out nil (no-op) children.
type GaugeVec struct {
	reg *Registry
	vecCore[Gauge]
}

// With returns (registering if needed) the child gauge for the label value.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	if g := v.get(value); g != nil {
		return g
	}
	return v.slow(value)
}

func (v *GaugeVec) slow(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	if g := v.get(value); g != nil {
		return g
	}
	g := v.reg.Gauge(ChildName(v.name, v.key, value))
	v.put(value, g)
	return g
}

// Labels returns the sorted label values observed so far (nil receiver: nil).
func (v *GaugeVec) Labels() []string {
	if v == nil {
		return nil
	}
	return v.labels()
}

// HistogramVec is a family of histograms keyed by one label. Children share
// the bucket boundaries fixed at vec registration. A nil *HistogramVec hands
// out nil (no-op) children.
type HistogramVec struct {
	reg    *Registry
	bounds []float64
	vecCore[Histogram]
}

// With returns (registering if needed) the child histogram for the label
// value. The hit path is lock- and allocation-free.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	if h := v.get(value); h != nil {
		return h
	}
	return v.slow(value)
}

func (v *HistogramVec) slow(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.get(value); h != nil {
		return h
	}
	h := v.reg.Histogram(ChildName(v.name, v.key, value), v.bounds...)
	v.put(value, h)
	return h
}

// Labels returns the sorted label values observed so far (nil receiver: nil).
func (v *HistogramVec) Labels() []string {
	if v == nil {
		return nil
	}
	return v.labels()
}

// CounterVec returns (registering if needed) the counter family name keyed
// by label key. The key is fixed by whichever call registers first.
func (r *Registry) CounterVec(name, key string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{reg: r}
		v.name, v.key = name, key
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns (registering if needed) the gauge family name keyed by
// label key.
func (r *Registry) GaugeVec(name, key string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{reg: r}
		v.name, v.key = name, key
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns (registering if needed) the histogram family name
// keyed by label key; bounds apply to every child and are fixed by whichever
// call registers first (omitted: DefBuckets).
func (r *Registry) HistogramVec(name, key string, bounds ...float64) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histVecs[name]
	if !ok {
		v = &HistogramVec{reg: r, bounds: bounds}
		v.name, v.key = name, key
		r.histVecs[name] = v
	}
	return v
}
