// Package telemetry is the repository's dependency-free metrics and tracing
// toolkit. It exists because Tango's whole premise is measurement — the
// controller infers switch properties from rule-installation latencies and
// RTT distributions — yet without this package the reproduction could not
// observe its own behaviour: how many probes an inference spent, how
// scheduler batches overlapped in virtual time, or where a slow run burned
// its budget.
//
// # Dual clocks
//
// The repository runs on two clocks: experiments and benchmarks advance a
// virtual clock (internal/simclock) so emulated switch latencies cost no
// wall time, while the TCP path measures real time. Telemetry understands
// both. Every trace span carries a virtual timestamp and duration (the
// timeline Perfetto renders) plus the wall-clock instant it was recorded
// (kept in the span's args), so a scheduler run that finished in
// milliseconds of wall time can still be inspected on its simulated
// multi-second timeline.
//
// # Metrics
//
// A Registry owns named Counters, Gauges and Histograms. Handles are looked
// up once at construction time and then recorded through directly:
//
//	reg := telemetry.NewRegistry()
//	probes := reg.Counter("probe.probes_sent")
//	rtt := reg.Histogram("probe.rtt_ns")
//	...
//	probes.Add(1)
//	rtt.Observe(float64(d))
//
// The record path is an atomic fast path with no allocation, cheap enough
// for the switch emulator's per-packet pipeline. Every handle type is
// nil-safe: a nil *Registry returns nil handles and every method on a nil
// handle (or nil *Tracer / *Span) is a no-op, so instrumented code carries
// zero conditional clutter and, with telemetry disabled, costs only a nil
// check.
//
// Histograms keep fixed buckets plus a ring of the most recent observations.
//
// # Quantile precedence: ring, then buckets
//
// A histogram snapshot derives its p50/p90/p99 from the observation ring
// (internal/stats.Percentile — near-exact) for as long as every observation
// still fits, i.e. while the total count is at most the ring size (1024).
// Once the ring has wrapped, the ring no longer represents the full
// distribution — it holds only the newest observations — so the snapshot
// switches to the bucket counts and interpolates linearly within the bucket
// containing each quantile rank, clamped to the observed min/max. Ring
// quantiles are exact but recent-biased after a wrap; bucket quantiles are
// approximate (bounded by bucket width) but always cover the whole
// population. Choosing exactness below the threshold and coverage above it
// keeps short benchmark runs precise without letting long runs silently
// report quantiles of the last 1024 samples only.
//
// # Labeled vectors
//
// CounterVec, GaugeVec and HistogramVec add one-label metric families
// ("switch", "profile"): With(value) returns the child metric, registering
// it on first use under the canonical name family{key="value"} (ChildName),
// so children appear in snapshots, the sampler, and the HTTP exporter
// exactly like plain metrics. The child table is copy-on-write behind an
// atomic pointer: the hit path is one atomic load plus a map lookup — no
// lock, no allocation — so labeled recording matches the unlabeled cost.
//
// # Windowed time series
//
// A Sampler turns the registry's cumulative metrics into a bounded ring of
// interval windows: per-counter deltas, rates and EWMA-smoothed rates,
// per-histogram window quantiles (from bucket deltas between ticks), and
// runtime health (heap, GC pause, goroutines). Each window is stamped on
// both clocks. Series() returns the retained windows; the HTTP exporter
// serves them at /metrics/series.
//
// # Flight recorder
//
// A FlightRecorder keeps one bounded ring of raw probe RTT samples per
// switch (FlightTrack), each sample carrying both clocks, the flow ID, the
// punted flag, and a per-track sequence number that reveals drops. It is the
// raw-sample companion to the probe.rtt_ns histograms, exported as JSON
// Lines (WriteJSONL, /flight). SetDefaultFlight installs the process-wide
// default the probe engine binds per-switch tracks from.
//
// # Tracing
//
// A Tracer records spans ("probe.round", "sched.batch", "switch.flowmod",
// "infer.size", …) and instant events on named tracks and exports them as
// Chrome trace_event JSON via WriteTrace, loadable in about:tracing or
// https://ui.perfetto.dev. Tracks map to trace threads, so each switch in a
// scheduling run renders as its own swim lane.
//
// # Process-wide default
//
// Deeply nested code (the experiment drivers construct their own switches
// and engines) binds to the process-wide default registry and tracer when
// none is injected explicitly. SetDefault, called by a command's main before
// any instrumented object is built, therefore lights up the entire pipeline;
// when it is never called the defaults stay nil and everything remains a
// no-op. This is how `tangobench -metrics-out` and `tangosched -trace-out`
// capture metrics from the unmodified experiment drivers.
//
// # Exporters
//
//   - Registry.WriteJSON / Registry.WriteFile: one JSON snapshot of every
//     metric.
//   - Tracer.WriteTrace / Tracer.WriteFile: Chrome trace_event JSON.
//   - Sampler.WriteJSON: the windowed time series.
//   - FlightRecorder.WriteJSONL / WriteFile: raw RTT samples, JSON Lines.
//   - HandlerFor: the HTTP surface — /metrics, /metrics/series, /trace,
//     /flight and /debug/pprof — served by every command's -telemetry flag
//     (the shared CLI flag block in cli.go).
package telemetry
