// Package telemetry is the repository's dependency-free metrics and tracing
// toolkit. It exists because Tango's whole premise is measurement — the
// controller infers switch properties from rule-installation latencies and
// RTT distributions — yet without this package the reproduction could not
// observe its own behaviour: how many probes an inference spent, how
// scheduler batches overlapped in virtual time, or where a slow run burned
// its budget.
//
// # Dual clocks
//
// The repository runs on two clocks: experiments and benchmarks advance a
// virtual clock (internal/simclock) so emulated switch latencies cost no
// wall time, while the TCP path measures real time. Telemetry understands
// both. Every trace span carries a virtual timestamp and duration (the
// timeline Perfetto renders) plus the wall-clock instant it was recorded
// (kept in the span's args), so a scheduler run that finished in
// milliseconds of wall time can still be inspected on its simulated
// multi-second timeline.
//
// # Metrics
//
// A Registry owns named Counters, Gauges and Histograms. Handles are looked
// up once at construction time and then recorded through directly:
//
//	reg := telemetry.NewRegistry()
//	probes := reg.Counter("probe.probes_sent")
//	rtt := reg.Histogram("probe.rtt_ns")
//	...
//	probes.Add(1)
//	rtt.Observe(float64(d))
//
// The record path is an atomic fast path with no allocation, cheap enough
// for the switch emulator's per-packet pipeline. Every handle type is
// nil-safe: a nil *Registry returns nil handles and every method on a nil
// handle (or nil *Tracer / *Span) is a no-op, so instrumented code carries
// zero conditional clutter and, with telemetry disabled, costs only a nil
// check.
//
// Histograms keep fixed buckets plus a ring of the most recent observations;
// snapshots derive quantile summaries (p50/p90/p99) from the ring with
// internal/stats.Percentile.
//
// # Tracing
//
// A Tracer records spans ("probe.round", "sched.batch", "switch.flowmod",
// "infer.size", …) and instant events on named tracks and exports them as
// Chrome trace_event JSON via WriteTrace, loadable in about:tracing or
// https://ui.perfetto.dev. Tracks map to trace threads, so each switch in a
// scheduling run renders as its own swim lane.
//
// # Process-wide default
//
// Deeply nested code (the experiment drivers construct their own switches
// and engines) binds to the process-wide default registry and tracer when
// none is injected explicitly. SetDefault, called by a command's main before
// any instrumented object is built, therefore lights up the entire pipeline;
// when it is never called the defaults stay nil and everything remains a
// no-op. This is how `tangobench -metrics-out` and `tangosched -trace-out`
// capture metrics from the unmodified experiment drivers.
//
// # Exporters
//
//   - Registry.WriteJSON / Registry.WriteFile: one JSON snapshot of every
//     metric.
//   - Tracer.WriteTrace / Tracer.WriteFile: Chrome trace_event JSON.
//   - Handler: an expvar-style HTTP endpoint serving both (wired into
//     cmd/switchd behind the -telemetry flag).
package telemetry
