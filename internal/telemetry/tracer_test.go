package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tango/internal/simclock"
)

func TestTracerRecordAndExport(t *testing.T) {
	clk := simclock.NewVirtual()
	tr := NewTracer(clk.Now)

	// A span on the main track, recorded with explicit virtual timestamps.
	tr.Record("switch.flowmod", "", simclock.Epoch.Add(10*time.Millisecond), 5*time.Millisecond,
		map[string]any{"command": "ADD"})
	// A span on a named track via Start/End.
	sp := tr.Start("sched.batch").OnTrack("s1").Arg("ops", 3)
	clk.Advance(20 * time.Millisecond)
	sp.End()
	tr.Instant("ofconn.accept", "", map[string]any{"remote": "127.0.0.1:1"})

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[1].Name != "sched.batch" || events[1].Track != "s1" || events[1].VirtDur != 20*time.Millisecond {
		t.Fatalf("span = %+v", events[1])
	}
	if events[1].Wall.IsZero() {
		t.Fatal("span missing wall timestamp")
	}
	if events[2].Phase != 'i' {
		t.Fatalf("instant phase = %q", events[2].Phase)
	}

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	byName := map[string]int{}
	threadNames := map[int]string{}
	for i, ev := range out.TraceEvents {
		byName[ev.Name] = i
		if ev.Name == "thread_name" {
			threadNames[ev.TID] = ev.Args["name"].(string)
		}
	}
	fm := out.TraceEvents[byName["switch.flowmod"]]
	if fm.Phase != "X" || fm.Dur != 5000 { // µs
		t.Fatalf("flowmod event = %+v", fm)
	}
	// Earliest event (virtual epoch, the sched.batch start) rebases to 0;
	// the flowmod starts 10ms later.
	if fm.TS != 10000 {
		t.Fatalf("flowmod ts = %g µs, want 10000", fm.TS)
	}
	if fm.Args["wall"] == nil || fm.Args["command"] != "ADD" {
		t.Fatalf("flowmod args = %+v", fm.Args)
	}
	batch := out.TraceEvents[byName["sched.batch"]]
	if threadNames[batch.TID] != "s1" {
		t.Fatalf("batch on thread %q, want s1 (threads=%v)", threadNames[batch.TID], threadNames)
	}
	if inst := out.TraceEvents[byName["ofconn.accept"]]; inst.Phase != "i" {
		t.Fatalf("instant = %+v", inst)
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.Instant("e", "", nil)
	}
	if len(tr.Events()) != 2 {
		t.Fatalf("events = %d, want 2", len(tr.Events()))
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	tr := NewTracer(nil)
	tr.Instant("e", "", nil)
	srv := httptest.NewServer(Handler(r, tr))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/trace", "/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["c"] != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if resp, err := http.Get(srv.URL + "/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %v %v", resp.StatusCode, err)
	}
}
