package telemetry

// v2_test.go covers the time-series layer: labeled vecs, the windowed
// sampler, the flight recorder, histogram bucket quantiles after ring wrap,
// and the HTTP handler's full route surface (including its error paths).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestVecChildrenRegisterIntoRegistry(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("hits", "switch")
	if r.CounterVec("hits", "switch") != cv {
		t.Fatal("second vec lookup returned a different family")
	}
	c := cv.With("sw1")
	if cv.With("sw1") != c {
		t.Fatal("second With returned a different child")
	}
	c.Add(3)
	// The child is an ordinary registry metric under its canonical name.
	if got := r.Counter(ChildName("hits", "switch", "sw1")); got != c {
		t.Fatal("child not shared with the plain-name lookup")
	}
	if got := cv.Labels(); len(got) != 1 || got[0] != "sw1" {
		t.Fatalf("Labels() = %v, want [sw1]", got)
	}

	gv := r.GaugeVec("occ", "switch")
	gv.With("sw1").Set(7)
	hv := r.HistogramVec("rtt", "switch", 10, 100)
	hv.With("sw1").Observe(42)
	hv.With("sw2").Observe(5)

	snap := r.Snapshot()
	if snap.Counters[`hits{switch="sw1"}`] != 3 {
		t.Fatalf("counter child missing from snapshot: %v", snap.Counters)
	}
	if snap.Gauges[`occ{switch="sw1"}`] != 7 {
		t.Fatalf("gauge child missing from snapshot: %v", snap.Gauges)
	}
	if hs, ok := snap.Histograms[`rtt{switch="sw2"}`]; !ok || hs.Count != 1 {
		t.Fatalf("histogram child missing from snapshot: %v", snap.Histograms)
	}
}

func TestVecNilSafety(t *testing.T) {
	var r *Registry
	cv := r.CounterVec("c", "k")
	gv := r.GaugeVec("g", "k")
	hv := r.HistogramVec("h", "k")
	if cv != nil || gv != nil || hv != nil {
		t.Fatal("nil registry must hand out nil vecs")
	}
	// Nil vecs hand out nil (no-op) children; none of this may panic.
	cv.With("x").Add(1)
	gv.With("x").Set(2)
	hv.With("x").Observe(3)
	if cv.Labels() != nil || gv.Labels() != nil || hv.Labels() != nil {
		t.Fatal("nil vec Labels() must be nil")
	}
}

func TestVecWithHitPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "switch")
	hv := r.HistogramVec("h", "switch")
	cv.With("sw1")
	hv.With("sw1")
	if n := testing.AllocsPerRun(200, func() {
		cv.With("sw1").Add(1)
		hv.With("sw1").Observe(1)
	}); n != 0 {
		t.Fatalf("labeled record path allocates %v objects/op, want 0", n)
	}
}

func TestVecConcurrentWith(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "switch")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				cv.With(fmt.Sprintf("sw%d", i%10)).Add(1)
			}
		}(g)
	}
	wg.Wait()
	if got := len(cv.Labels()); got != 10 {
		t.Fatalf("labels = %d, want 10", got)
	}
	var total int64
	for _, l := range cv.Labels() {
		total += cv.With(l).Value()
	}
	if total != 8*200 {
		t.Fatalf("total = %d, want %d", total, 8*200)
	}
}

func TestBucketQuantileAfterRingWrap(t *testing.T) {
	r := NewRegistry()
	// Uniform 0..9999 over 2000 observations wraps the 1024-slot ring, so
	// the snapshot must fall back to bucket interpolation.
	h := r.Histogram("wrap", 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000)
	const n = 2000
	for i := 0; i < n; i++ {
		h.Observe(float64(i * 10000 / n))
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d", s.Count)
	}
	// Exact percentiles are 5000/9000/9900; bucket interpolation must land
	// within one bucket width (1000).
	for _, tc := range []struct {
		got, want float64
	}{{s.P50, 5000}, {s.P90, 9000}, {s.P99, 9900}} {
		if diff := tc.got - tc.want; diff < -1000 || diff > 1000 {
			t.Fatalf("quantile = %v, want %v ±1000 (snapshot %+v)", tc.got, tc.want, s)
		}
	}
	// Quantiles stay clamped to the observed range even at the extremes.
	if s.P99 > s.Max || s.P50 < s.Min {
		t.Fatalf("quantiles escaped [min,max]: %+v", s)
	}
}

func TestSamplerWindows(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	h := r.Histogram("lat", 10, 100, 1000)
	virt := time.Unix(0, 0)
	s := NewSampler(r, SamplerOptions{
		Interval: time.Second,
		Windows:  4,
		VirtNow:  func() time.Time { return virt },
	})

	s.Tick() // baseline: records prev state, no windows yet
	c.Add(10)
	h.Observe(50)
	h.Observe(500)
	virt = virt.Add(time.Second)
	s.Tick()

	ss := s.Series()
	if ss.Ticks != 2 {
		t.Fatalf("ticks = %d, want 2", ss.Ticks)
	}
	cp := ss.Counters["ops"]
	if len(cp) != 1 || cp[0].Delta != 10 || cp[0].Total != 10 {
		t.Fatalf("counter windows = %+v", cp)
	}
	if cp[0].Rate <= 0 || cp[0].EWMA <= 0 {
		t.Fatalf("rate/ewma not positive: %+v", cp[0])
	}
	if !cp[0].Virt.Equal(virt) {
		t.Fatalf("virtual stamp = %v, want %v", cp[0].Virt, virt)
	}
	hp := ss.Histograms["lat"]
	if len(hp) != 1 || hp[0].Count != 2 {
		t.Fatalf("histogram windows = %+v", hp)
	}
	if hp[0].Mean != 275 {
		t.Fatalf("window mean = %v, want 275", hp[0].Mean)
	}
	if hp[0].P50 < 10 || hp[0].P50 > 1000 {
		t.Fatalf("window p50 = %v out of bucket range", hp[0].P50)
	}
	if len(ss.Runtime) != 2 {
		t.Fatalf("runtime samples = %d, want 2", len(ss.Runtime))
	}
	if ss.Runtime[1].HeapAlloc == 0 || ss.Runtime[1].Goroutines == 0 {
		t.Fatalf("runtime sample empty: %+v", ss.Runtime[1])
	}

	// Windows ring: 5 more ticks with the 4-window bound retains 4.
	for i := 0; i < 5; i++ {
		c.Add(1)
		virt = virt.Add(time.Second)
		s.Tick()
	}
	if got := len(s.Series().Counters["ops"]); got != 4 {
		t.Fatalf("retained windows = %d, want 4", got)
	}
}

func TestSamplerEWMAConverges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	s := NewSampler(r, SamplerOptions{Interval: time.Second, Alpha: 0.5})
	s.Tick()
	for i := 0; i < 12; i++ {
		c.Add(100)
		s.Tick()
	}
	pts := s.Series().Counters["ops"]
	last := pts[len(pts)-1]
	// Steady input: EWMA approaches the raw rate. Wall-clock ticks are
	// near-instant so rates are huge; compare the two against each other.
	if last.EWMA < last.Rate*0.5 || last.EWMA > last.Rate*2.0 {
		t.Fatalf("ewma %v not near rate %v after steady input", last.EWMA, last.Rate)
	}
}

func TestSamplerStartStop(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, SamplerOptions{Interval: time.Millisecond})
	s.Start()
	s.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for {
		if s.Series().Ticks >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sampler loop never ticked")
		case <-time.After(time.Millisecond):
		}
	}
	s.Stop()
	s.Stop() // idempotent
	// Nil sampler: everything is a no-op.
	var ns *Sampler
	ns.Start()
	ns.Tick()
	ns.Stop()
	if got := ns.Series(); got == nil || got.Ticks != 0 {
		t.Fatalf("nil sampler series = %+v", got)
	}
	var buf bytes.Buffer
	if err := ns.WriteJSON(&buf); err != nil {
		t.Fatalf("nil sampler WriteJSON: %v", err)
	}
}

func TestFlightRecorder(t *testing.T) {
	fr := NewFlightRecorder(4)
	tr := fr.Track("sw1")
	if fr.Track("sw1") != tr {
		t.Fatal("second Track returned a different ring")
	}
	base := time.Unix(100, 0)
	for i := 0; i < 6; i++ {
		tr.Record(base.Add(time.Duration(i)*time.Second), base, time.Duration(i)*time.Millisecond, uint32(i), i%2 == 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4 (capacity)", tr.Len())
	}
	got := tr.Samples()
	if len(got) != 4 {
		t.Fatalf("samples = %d, want 4", len(got))
	}
	// Oldest retained is seq 3 (two dropped), newest seq 6.
	if got[0].Seq != 3 || got[3].Seq != 6 {
		t.Fatalf("seq range = [%d,%d], want [3,6]", got[0].Seq, got[3].Seq)
	}
	if got[3].RTT != 5*time.Millisecond || got[3].FlowID != 5 {
		t.Fatalf("newest sample = %+v", got[3])
	}

	fr.Track("sw0").Record(base, base, time.Millisecond, 9, false)
	if names := fr.Tracks(); len(names) != 2 || names[0] != "sw0" || names[1] != "sw1" {
		t.Fatalf("tracks = %v", names)
	}

	var buf bytes.Buffer
	if err := fr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []FlightSample
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var s FlightSample
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, s)
	}
	if len(lines) != 5 {
		t.Fatalf("JSONL lines = %d, want 5", len(lines))
	}
	// Sorted by track name, oldest first within a track, switch filled in.
	if lines[0].Switch != "sw0" || lines[1].Switch != "sw1" || lines[1].Seq != 3 {
		t.Fatalf("JSONL order wrong: %+v", lines[:2])
	}
}

func TestFlightNilSafety(t *testing.T) {
	var fr *FlightRecorder
	tr := fr.Track("x")
	if tr != nil {
		t.Fatal("nil recorder must hand out nil tracks")
	}
	tr.Record(time.Time{}, time.Time{}, 0, 0, false)
	if tr.Samples() != nil || tr.Len() != 0 {
		t.Fatal("nil track must read as empty")
	}
	if fr.Tracks() != nil {
		t.Fatal("nil recorder Tracks() must be nil")
	}
	var buf bytes.Buffer
	if err := fr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder WriteJSONL wrote %q, err %v", buf.String(), err)
	}
}

func TestFlightDefault(t *testing.T) {
	old := DefaultFlight()
	defer SetDefaultFlight(old)
	SetDefaultFlight(nil)
	if DefaultFlight() != nil {
		t.Fatal("cleared default flight recorder must be nil")
	}
	fr := NewFlightRecorder(0)
	SetDefaultFlight(fr)
	if DefaultFlight() != fr {
		t.Fatal("default flight recorder not installed")
	}
}

func TestHandlerRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	tr := NewTracer(nil)
	s := NewSampler(r, SamplerOptions{})
	s.Tick()
	fr := NewFlightRecorder(8)
	fr.Track("sw1").Record(time.Now(), time.Now(), time.Millisecond, 1, false)
	h := HandlerFor(HandlerOptions{Registry: r, Tracer: tr, Sampler: s, Flight: fr})

	for _, tc := range []struct {
		path string
		want string
	}{
		{"/metrics", `"c": 1`},
		{"/metrics/series", `"ticks"`},
		{"/trace", "traceEvents"},
		{"/flight", `"switch":"sw1"`},
		{"/", "/metrics/series"},
		{"/debug/pprof/cmdline", ""},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", tc.path, rec.Code)
		}
		if tc.want != "" && !strings.Contains(rec.Body.String(), tc.want) {
			t.Fatalf("GET %s body %q missing %q", tc.path, rec.Body.String(), tc.want)
		}
	}
}

func TestHandlerErrorPaths(t *testing.T) {
	// Unknown routes 404 instead of falling through to the index.
	h := HandlerFor(HandlerOptions{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /nope = %d, want 404", rec.Code)
	}

	// Every collaborator nil: all routes still serve well-formed (empty)
	// documents rather than panicking.
	for _, path := range []string{"/metrics", "/metrics/series", "/trace", "/flight", "/"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s with nil options = %d", path, rec.Code)
		}
	}

	// DisablePprof removes the profile routes.
	noPprof := HandlerFor(HandlerOptions{DisablePprof: true})
	rec = httptest.NewRecorder()
	noPprof.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 404 {
		t.Fatalf("GET /debug/pprof/cmdline with DisablePprof = %d, want 404", rec.Code)
	}

	// Partial wiring: tracer-only and registry-only combinations.
	rec = httptest.NewRecorder()
	HandlerFor(HandlerOptions{Tracer: NewTracer(nil)}).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("tracer-only /metrics = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	HandlerFor(HandlerOptions{Registry: NewRegistry()}).ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("registry-only /trace = %d", rec.Code)
	}
}

func TestHandlerSnapshotDuringRecord(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "switch")
	h := Handler(r, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Keep creating fresh children so snapshots race real registry
			// mutations, not just atomic adds.
			cv.With(fmt.Sprintf("sw%d", i%50)).Add(1)
			r.Histogram("lat").Observe(float64(i))
		}
	}()
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("snapshot during record = %d", rec.Code)
		}
		var snap Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatalf("snapshot not valid JSON under concurrent recording: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestCLIHelpers(t *testing.T) {
	var c CLI
	if c.Enabled() {
		t.Fatal("zero CLI must be disabled")
	}
	if got := c.OutputPaths(); got != nil {
		t.Fatalf("zero CLI OutputPaths = %v", got)
	}
	flush, err := c.Setup()
	if err != nil || flush == nil {
		t.Fatalf("disabled Setup: flush nil=%v, err=%v", flush == nil, err)
	}
	if err := flush(); err != nil {
		t.Fatalf("disabled flush: %v", err)
	}

	c = CLI{MetricsOut: "m.json", FlightOut: "f.jsonl"}
	if !c.Enabled() {
		t.Fatal("CLI with outputs must be enabled")
	}
	paths := c.OutputPaths()
	if len(paths) != 2 || paths[0][0] != "-metrics-out" || paths[1][1] != "f.jsonl" {
		t.Fatalf("OutputPaths = %v", paths)
	}

	// A bad -telemetry address fails fast at Setup, not at first scrape.
	bad := CLI{Addr: "256.256.256.256:0"}
	if _, err := bad.Setup(); err == nil {
		t.Fatal("Setup with unroutable address must fail")
	}
}
