package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter is a no-op, so instrumentation can record through
// handles unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics. Lookups register on first use and return
// the same handle thereafter, so handles act as process-wide accumulation
// points. All methods are safe for concurrent use. A nil *Registry returns
// nil handles, making the zero configuration a no-op end to end.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Labeled families (vec.go). Children register into the plain maps
	// above under `family{key="value"}` names, so the maps below only route
	// With lookups.
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		hists:       map[string]*Histogram{},
		counterVecs: map[string]*CounterVec{},
		gaugeVecs:   map[string]*GaugeVec{},
		histVecs:    map[string]*HistogramVec{},
	}
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the named histogram. bounds are
// the upper bucket boundaries; omitted, the duration-oriented DefBuckets
// apply. Boundaries are fixed by whichever call registers the histogram
// first.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// metricNames returns the sorted names of one metric family.
func metricNames[M any](m map[string]M) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Process-wide defaults. Instrumented constructors deep inside the
// experiment drivers fall back to these when no registry/tracer is injected
// explicitly; commands install them before building any instrumented object.
// They stay nil unless SetDefault is called, keeping the default
// configuration a no-op.
var (
	defaultRegistry atomic.Pointer[Registry]
	defaultTracer   atomic.Pointer[Tracer]
)

// SetDefault installs the process-wide default registry and tracer. Either
// may be nil. It must be called before instrumented objects are constructed;
// objects built earlier keep their no-op handles.
func SetDefault(r *Registry, t *Tracer) {
	defaultRegistry.Store(r)
	defaultTracer.Store(t)
}

// Default returns the process-wide default registry (nil when unset).
func Default() *Registry { return defaultRegistry.Load() }

// DefaultTracer returns the process-wide default tracer (nil when unset).
func DefaultTracer() *Tracer { return defaultTracer.Load() }
