package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Frame is a fully parsed probe frame: the decoded header fields of every
// layer present plus the application payload. It is the unit the emulated
// switch pipeline matches against its flow tables.
type Frame struct {
	Eth     Ethernet
	HasIPv4 bool
	IP      IPv4
	HasTCP  bool
	TCP     TCP
	HasUDP  bool
	UDP     UDP
	Payload []byte
}

// Decode parses an Ethernet frame and whatever known layers follow it.
// Unknown ether types or IP protocols leave the remaining bytes in Payload —
// the pipeline can still L2-match such frames, mirroring real switches.
func Decode(data []byte) (*Frame, error) {
	var f Frame
	if err := DecodeInto(&f, data); err != nil {
		return nil, err
	}
	return &f, nil
}

// DecodeInto parses data into f, overwriting any previous contents. Callers
// that decode packets in a hot loop reuse one Frame instead of allocating
// per packet; f.Payload aliases data and is only valid until the next decode.
func DecodeInto(f *Frame, data []byte) error {
	*f = Frame{}
	rest, err := f.Eth.DecodeFromBytes(data)
	if err != nil {
		return err
	}
	f.Payload = rest
	if f.Eth.EtherType != EtherTypeIPv4 {
		return nil
	}
	rest, err = f.IP.DecodeFromBytes(rest)
	if err != nil {
		return fmt.Errorf("decoding ipv4: %w", err)
	}
	f.HasIPv4 = true
	f.Payload = rest
	switch f.IP.Protocol {
	case IPProtocolTCP:
		rest, err = f.TCP.DecodeFromBytes(rest)
		if err != nil {
			return fmt.Errorf("decoding tcp: %w", err)
		}
		f.HasTCP = true
		f.Payload = rest
	case IPProtocolUDP:
		rest, err = f.UDP.DecodeFromBytes(rest)
		if err != nil {
			return fmt.Errorf("decoding udp: %w", err)
		}
		f.HasUDP = true
		f.Payload = rest
	}
	return nil
}

// Serialize encodes the frame back to wire bytes. Length and checksum fields
// are recomputed from the layer structure.
func (f *Frame) Serialize() ([]byte, error) {
	return f.AppendSerialize(make([]byte, 0, 64+len(f.Payload)))
}

// AppendSerialize appends the frame's encoding to b and returns the extended
// slice, writing the layers in place instead of assembling a scratch L4
// buffer first — callers with a pre-sized b serialize without allocating.
func (f *Frame) AppendSerialize(b []byte) ([]byte, error) {
	b = f.Eth.AppendTo(b)
	if !f.HasIPv4 {
		return append(b, f.Payload...), nil
	}
	l4len := len(f.Payload)
	switch {
	case f.HasTCP:
		l4len += tcpHeaderLen
	case f.HasUDP:
		l4len += udpHeaderLen
	}
	var err error
	b, err = f.IP.AppendTo(b, l4len)
	if err != nil {
		return nil, err
	}
	switch {
	case f.HasTCP:
		b = f.TCP.AppendTo(b)
	case f.HasUDP:
		b = f.UDP.AppendTo(b, len(f.Payload))
	}
	return append(b, f.Payload...), nil
}

// FiveTuple is a canonical flow identity used as a map key by the emulated
// kernel microflow cache (exact-match table).
type FiveTuple struct {
	Src, Dst         netip.Addr
	Proto            IPProtocol
	SrcPort, DstPort uint16
}

// FiveTuple extracts the flow identity of an IPv4 frame. The boolean is
// false for non-IP frames, which exact-match caches ignore.
func (f *Frame) FiveTuple() (FiveTuple, bool) {
	if !f.HasIPv4 {
		return FiveTuple{}, false
	}
	ft := FiveTuple{Src: f.IP.Src, Dst: f.IP.Dst, Proto: f.IP.Protocol}
	switch {
	case f.HasTCP:
		ft.SrcPort, ft.DstPort = f.TCP.SrcPort, f.TCP.DstPort
	case f.HasUDP:
		ft.SrcPort, ft.DstPort = f.UDP.SrcPort, f.UDP.DstPort
	}
	return ft, true
}

// ProbeSpec describes a synthetic flow for which probe frames are minted.
// The probing engine enumerates flow IDs; each ID maps deterministically to
// distinct L2+L3+L4 headers so that generated rules and generated traffic
// agree (a Tango pattern is "a sequence of OpenFlow commands and a
// corresponding data traffic pattern").
type ProbeSpec struct {
	FlowID  uint32
	Proto   IPProtocol // TCP unless set otherwise
	Payload []byte
}

// probeBase* define the address blocks probe traffic is minted from. The
// 10.83.0.0/16 block is private and unlikely to collide with pre-installed
// rules on a device under test.
var (
	probeBaseSrc = netip.AddrFrom4([4]byte{10, 83, 0, 0})
	probeBaseDst = netip.AddrFrom4([4]byte{10, 84, 0, 0})
)

// ProbeSrcIP returns the source address assigned to flow id.
func ProbeSrcIP(id uint32) netip.Addr {
	b := probeBaseSrc.As4()
	b[2] = byte(id >> 8)
	b[3] = byte(id)
	b[1] += byte(id >> 16) // spill into the second octet past 65536 flows
	return netip.AddrFrom4(b)
}

// ProbeDstIP returns the destination address assigned to flow id.
func ProbeDstIP(id uint32) netip.Addr {
	b := probeBaseDst.As4()
	b[2] = byte(id >> 8)
	b[3] = byte(id)
	b[1] += byte(id >> 16)
	return netip.AddrFrom4(b)
}

// BuildProbe mints the wire bytes of the probe frame for spec. Frames for
// the same FlowID are always byte-identical except for the payload.
func BuildProbe(spec ProbeSpec) ([]byte, error) {
	return AppendBuildProbe(make([]byte, 0, 64+len(spec.Payload)), spec)
}

// AppendBuildProbe appends the probe frame for spec to b and returns the
// extended slice; with a pre-sized b it mints the frame without allocating.
func AppendBuildProbe(b []byte, spec ProbeSpec) ([]byte, error) {
	var f Frame
	BuildProbeFrame(&f, spec)
	return f.AppendSerialize(b)
}

// BuildProbeFrame fills f in place with the decoded form of the probe frame
// for spec — the same Frame a DecodeInto of BuildProbe's wire bytes would
// yield, including the derived IPv4 length and the packed address word the
// exact-match fast path keys on. In-process senders (FrameDevice, the scale
// harness' pooled per-shard frames) mint frames this way and skip the
// encode/decode round trip entirely.
func BuildProbeFrame(f *Frame, spec ProbeSpec) {
	proto := spec.Proto
	if proto == 0 {
		proto = IPProtocolTCP
	}
	*f = Frame{
		Eth: Ethernet{
			Dst:       MACFromUint64(0x0200_0000_0000 | uint64(spec.FlowID)),
			Src:       MACFromUint64(0x0200_0100_0000 | uint64(spec.FlowID)),
			EtherType: EtherTypeIPv4,
		},
		HasIPv4: true,
		IP: IPv4{
			Src:      ProbeSrcIP(spec.FlowID),
			Dst:      ProbeDstIP(spec.FlowID),
			Protocol: proto,
			TTL:      64,
			ID:       uint16(spec.FlowID),
		},
		Payload: spec.Payload,
	}
	l4len := len(spec.Payload)
	switch proto {
	case IPProtocolTCP:
		f.HasTCP = true
		f.TCP = TCP{SrcPort: 1024 + uint16(spec.FlowID%50000), DstPort: 80, Window: 65535}
		l4len += tcpHeaderLen
	case IPProtocolUDP:
		f.HasUDP = true
		f.UDP = UDP{
			SrcPort: 1024 + uint16(spec.FlowID%50000),
			DstPort: 53,
			Length:  uint16(udpHeaderLen + len(spec.Payload)),
		}
		l4len += udpHeaderLen
	}
	f.IP.Length = uint16(ipv4HeaderLen + l4len)
	src, dst := f.IP.Src.As4(), f.IP.Dst.As4()
	f.IP.addrWord = uint64(binary.BigEndian.Uint32(src[:]))<<32 | uint64(binary.BigEndian.Uint32(dst[:]))
}
