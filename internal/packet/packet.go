// Package packet implements serialization and decoding of the small set of
// protocol layers Tango's probing engine needs to synthesise data-plane
// traffic: Ethernet, IPv4, TCP and UDP. The design follows the layered model
// popularised by gopacket — each layer knows how to decode itself from bytes
// and serialize itself in front of a payload — but is deliberately minimal
// and allocation-conscious since probing sends tens of thousands of frames.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes understood by the switch pipeline.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
	EtherTypeVLAN EtherType = 0x8100
)

// IPProtocol identifies the payload protocol of an IPv4 packet.
type IPProtocol uint8

// IP protocol numbers used by probe traffic.
const (
	IPProtocolICMP IPProtocol = 1
	IPProtocolTCP  IPProtocol = 6
	IPProtocolUDP  IPProtocol = 17
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the address in canonical colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACFromUint64 builds a MAC from the low 48 bits of v. Probing uses this to
// mint dense, unique source addresses for generated flows.
func MACFromUint64(v uint64) MAC {
	var m MAC
	m[0] = byte(v >> 40)
	m[1] = byte(v >> 32)
	m[2] = byte(v >> 24)
	m[3] = byte(v >> 16)
	m[4] = byte(v >> 8)
	m[5] = byte(v)
	return m
}

// Uint64 returns the address as an integer (inverse of MACFromUint64).
func (m MAC) Uint64() uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// Errors returned by the decoders.
var (
	ErrTruncated = errors.New("packet: truncated data")
	ErrBadHeader = errors.New("packet: malformed header")
)

// Ethernet is a layer-2 frame header (without FCS).
type Ethernet struct {
	Dst, Src  MAC
	EtherType EtherType
}

// HeaderLen is the encoded size of an Ethernet header.
const ethernetHeaderLen = 14

// DecodeFromBytes parses the header from data and returns the payload bytes.
func (e *Ethernet) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < ethernetHeaderLen {
		return nil, fmt.Errorf("%w: ethernet needs %d bytes, have %d", ErrTruncated, ethernetHeaderLen, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = EtherType(binary.BigEndian.Uint16(data[12:14]))
	return data[ethernetHeaderLen:], nil
}

// AppendTo appends the encoded header to b and returns the extended slice.
func (e *Ethernet) AppendTo(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, uint16(e.EtherType))
}

// IPv4 is a layer-3 header. Options are not supported: probe traffic never
// carries them and the switch pipeline never inspects them.
type IPv4 struct {
	TOS      uint8
	TTL      uint8
	Protocol IPProtocol
	Src, Dst netip.Addr
	// Length is the total packet length including header. Filled in by
	// DecodeFromBytes; computed automatically when serializing.
	Length uint16
	// ID is the identification field, useful for tagging probe packets.
	ID uint16
	// addrWord caches the packed src<<32|dst big-endian address word at
	// decode time, so exact-match classifiers keying on the address pair
	// read one integer instead of re-packing two netip.Addr values per
	// packet. Zero means "not cached" (hand-built headers, or the all-zero
	// address pair) and consumers fall back to packing the addresses.
	addrWord uint64
}

// AddrWord returns the cached packed (src<<32 | dst) address word; ok is
// false when the header was not produced by DecodeFromBytes and the caller
// must derive the word from Src and Dst itself.
func (ip *IPv4) AddrWord() (uint64, bool) { return ip.addrWord, ip.addrWord != 0 }

const ipv4HeaderLen = 20

// DecodeFromBytes parses the header from data and returns the payload bytes.
func (ip *IPv4) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < ipv4HeaderLen {
		return nil, fmt.Errorf("%w: ipv4 needs %d bytes, have %d", ErrTruncated, ipv4HeaderLen, len(data))
	}
	vihl := data[0]
	if vihl>>4 != 4 {
		return nil, fmt.Errorf("%w: ip version %d", ErrBadHeader, vihl>>4)
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < ipv4HeaderLen {
		return nil, fmt.Errorf("%w: ihl %d", ErrBadHeader, ihl)
	}
	if len(data) < ihl {
		return nil, fmt.Errorf("%w: ipv4 header extends past data", ErrTruncated)
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	ip.addrWord = binary.BigEndian.Uint64(data[12:20])
	return data[ihl:], nil
}

// AppendTo appends the encoded header to b assuming payloadLen payload bytes
// follow, and returns the extended slice. The checksum is computed over the
// final header.
func (ip *IPv4) AppendTo(b []byte, payloadLen int) ([]byte, error) {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return nil, fmt.Errorf("%w: ipv4 layer requires 4-byte addresses", ErrBadHeader)
	}
	total := ipv4HeaderLen + payloadLen
	if total > 0xffff {
		return nil, fmt.Errorf("%w: packet too large (%d)", ErrBadHeader, total)
	}
	start := len(b)
	b = append(b, 0x45, ip.TOS)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = append(b, 0, 0) // flags + fragment offset
	ttl := ip.TTL
	if ttl == 0 {
		ttl = 64
	}
	b = append(b, ttl, byte(ip.Protocol), 0, 0) // checksum placeholder
	src := ip.Src.As4()
	dst := ip.Dst.As4()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	sum := headerChecksum(b[start : start+ipv4HeaderLen])
	binary.BigEndian.PutUint16(b[start+10:start+12], sum)
	return b, nil
}

// headerChecksum is the RFC 791 ones-complement header checksum.
func headerChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ValidateChecksum reports whether the first 20 bytes of data carry a valid
// IPv4 header checksum.
func ValidateChecksum(data []byte) bool {
	if len(data) < ipv4HeaderLen {
		return false
	}
	var sum uint32
	for i := 0; i+1 < ipv4HeaderLen; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return uint16(sum) == 0xffff
}

// TCP is a minimal layer-4 header. Only the fields the flow pipeline matches
// on (ports) plus sequence bookkeeping are modelled; flags are carried
// through untouched.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
}

const tcpHeaderLen = 20

// DecodeFromBytes parses the header from data and returns the payload bytes.
func (t *TCP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < tcpHeaderLen {
		return nil, fmt.Errorf("%w: tcp needs %d bytes, have %d", ErrTruncated, tcpHeaderLen, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	off := int(data[12]>>4) * 4
	if off < tcpHeaderLen {
		return nil, fmt.Errorf("%w: tcp data offset %d", ErrBadHeader, off)
	}
	if len(data) < off {
		return nil, fmt.Errorf("%w: tcp header extends past data", ErrTruncated)
	}
	t.Flags = data[13]
	t.Window = binary.BigEndian.Uint16(data[14:16])
	return data[off:], nil
}

// AppendTo appends the encoded header to b and returns the extended slice.
// The checksum field is left zero: the emulated pipeline does not verify
// transport checksums, matching how hardware offload behaves in practice.
func (t *TCP) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, 5<<4, t.Flags)
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0, 0, 0) // checksum + urgent pointer
	return b
}

// UDP is a layer-4 datagram header.
type UDP struct {
	SrcPort, DstPort uint16
	// Length is the UDP length field (header + payload). Filled by decode;
	// computed on serialize.
	Length uint16
}

const udpHeaderLen = 8

// DecodeFromBytes parses the header from data and returns the payload bytes.
func (u *UDP) DecodeFromBytes(data []byte) ([]byte, error) {
	if len(data) < udpHeaderLen {
		return nil, fmt.Errorf("%w: udp needs %d bytes, have %d", ErrTruncated, udpHeaderLen, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	if int(u.Length) < udpHeaderLen {
		return nil, fmt.Errorf("%w: udp length %d", ErrBadHeader, u.Length)
	}
	return data[udpHeaderLen:], nil
}

// AppendTo appends the encoded header to b assuming payloadLen payload bytes
// follow, and returns the extended slice.
func (u *UDP) AppendTo(b []byte, payloadLen int) []byte {
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(udpHeaderLen+payloadLen))
	b = append(b, 0, 0) // checksum (optional in IPv4)
	return b
}
