package packet

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMACRoundTrip(t *testing.T) {
	m := MACFromUint64(0x0200_0000_1234)
	if got := m.Uint64(); got != 0x0200_0000_1234 {
		t.Fatalf("Uint64 = %x", got)
	}
	if got := m.String(); got != "02:00:00:00:12:34" {
		t.Fatalf("String = %q", got)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		Dst:       MACFromUint64(1),
		Src:       MACFromUint64(2),
		EtherType: EtherTypeIPv4,
	}
	b := e.AppendTo(nil)
	if len(b) != 14 {
		t.Fatalf("encoded length = %d, want 14", len(b))
	}
	var d Ethernet
	rest, err := d.DecodeFromBytes(append(b, 0xAA))
	if err != nil {
		t.Fatal(err)
	}
	if d != e {
		t.Fatalf("decoded %+v, want %+v", d, e)
	}
	if len(rest) != 1 || rest[0] != 0xAA {
		t.Fatalf("rest = %x", rest)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var d Ethernet
	if _, err := d.DecodeFromBytes(make([]byte, 13)); err == nil {
		t.Fatal("expected error for 13-byte frame")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS:      0x10,
		TTL:      63,
		Protocol: IPProtocolTCP,
		Src:      netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		Dst:      netip.AddrFrom4([4]byte{10, 0, 0, 2}),
		ID:       777,
	}
	b, err := ip.AppendTo(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !ValidateChecksum(b) {
		t.Fatal("checksum invalid")
	}
	var d IPv4
	if _, err := d.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if d.Src != ip.Src || d.Dst != ip.Dst || d.Protocol != ip.Protocol ||
		d.TOS != ip.TOS || d.TTL != ip.TTL || d.ID != ip.ID {
		t.Fatalf("decoded %+v, want %+v", d, ip)
	}
	if d.Length != 120 {
		t.Fatalf("Length = %d, want 120", d.Length)
	}
}

func TestIPv4Malformed(t *testing.T) {
	var d IPv4
	if _, err := d.DecodeFromBytes(make([]byte, 10)); err == nil {
		t.Fatal("expected truncation error")
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // version 6
	if _, err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("expected version error")
	}
	bad[0] = 0x43 // ihl 3 (<5)
	if _, err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("expected ihl error")
	}
	bad[0] = 0x4f // ihl 15 => 60 bytes, but only 20 present
	if _, err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("expected extended-header truncation error")
	}
}

func TestIPv4RequiresV4Addrs(t *testing.T) {
	ip := IPv4{Src: netip.MustParseAddr("::1"), Dst: netip.AddrFrom4([4]byte{1, 2, 3, 4})}
	if _, err := ip.AppendTo(nil, 0); err == nil {
		t.Fatal("expected error for v6 source")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tc := TCP{SrcPort: 1234, DstPort: 80, Seq: 99, Ack: 100, Flags: 0x18, Window: 4096}
	b := tc.AppendTo(nil)
	if len(b) != 20 {
		t.Fatalf("encoded length = %d, want 20", len(b))
	}
	var d TCP
	rest, err := d.DecodeFromBytes(append(b, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d != tc {
		t.Fatalf("decoded %+v, want %+v", d, tc)
	}
	if len(rest) != 3 {
		t.Fatalf("rest = %x", rest)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 5353, DstPort: 53}
	b := u.AppendTo(nil, 4)
	var d UDP
	if _, err := d.DecodeFromBytes(append(b, 0xde, 0xad, 0xbe, 0xef)); err != nil {
		t.Fatal(err)
	}
	if d.SrcPort != 5353 || d.DstPort != 53 || d.Length != 12 {
		t.Fatalf("decoded %+v", d)
	}
	bad := u.AppendTo(nil, 0)
	bad[4], bad[5] = 0, 3 // length 3 < 8
	if _, err := d.DecodeFromBytes(bad); err == nil {
		t.Fatal("expected error for short udp length")
	}
}

func TestFrameRoundTripTCP(t *testing.T) {
	raw, err := BuildProbe(ProbeSpec{FlowID: 42, Payload: []byte("tango")})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasIPv4 || !f.HasTCP || f.HasUDP {
		t.Fatalf("layer flags: %+v", f)
	}
	if string(f.Payload) != "tango" {
		t.Fatalf("payload = %q", f.Payload)
	}
	if f.IP.Src != ProbeSrcIP(42) || f.IP.Dst != ProbeDstIP(42) {
		t.Fatalf("addresses: %v -> %v", f.IP.Src, f.IP.Dst)
	}
	re, err := f.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, raw) {
		t.Fatalf("reserialized frame differs:\n got %x\nwant %x", re, raw)
	}
}

func TestFrameRoundTripUDP(t *testing.T) {
	raw, err := BuildProbe(ProbeSpec{FlowID: 7, Proto: IPProtocolUDP})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasUDP || f.HasTCP {
		t.Fatalf("layer flags: %+v", f)
	}
	ft, ok := f.FiveTuple()
	if !ok || ft.Proto != IPProtocolUDP || ft.DstPort != 53 {
		t.Fatalf("five tuple: %+v ok=%v", ft, ok)
	}
}

func TestFrameNonIP(t *testing.T) {
	e := Ethernet{EtherType: EtherTypeARP}
	raw := append(e.AppendTo(nil), 1, 2, 3, 4)
	f, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.HasIPv4 {
		t.Fatal("ARP frame decoded as IPv4")
	}
	if _, ok := f.FiveTuple(); ok {
		t.Fatal("non-IP frame has five tuple")
	}
	re, err := f.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, raw) {
		t.Fatalf("reserialized: %x want %x", re, raw)
	}
}

func TestProbeUniqueness(t *testing.T) {
	// Distinct flow IDs must produce distinct five tuples — otherwise
	// inference would conflate flows.
	seen := map[FiveTuple]uint32{}
	for id := uint32(0); id < 5000; id++ {
		raw, err := BuildProbe(ProbeSpec{FlowID: id})
		if err != nil {
			t.Fatal(err)
		}
		f, err := Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		ft, ok := f.FiveTuple()
		if !ok {
			t.Fatal("no five tuple")
		}
		if prev, dup := seen[ft]; dup {
			t.Fatalf("flows %d and %d share a five tuple", prev, id)
		}
		seen[ft] = id
	}
}

func TestProbeIPSpill(t *testing.T) {
	// Past 65536 flows the addresses must keep changing.
	if ProbeSrcIP(1) == ProbeSrcIP(65537) {
		t.Fatal("address space wrapped at 64k flows")
	}
}

// Property: any probe frame round-trips decode→serialize byte-identically.
func TestProbeRoundTripProperty(t *testing.T) {
	f := func(id uint32, udp bool, payload []byte) bool {
		spec := ProbeSpec{FlowID: id % 200000, Payload: payload}
		if udp {
			spec.Proto = IPProtocolUDP
		}
		raw, err := BuildProbe(spec)
		if err != nil {
			return false
		}
		fr, err := Decode(raw)
		if err != nil {
			return false
		}
		re, err := fr.Serialize()
		if err != nil {
			return false
		}
		return bytes.Equal(raw, re) && ValidateChecksum(raw[14:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics and never returns a frame on inputs
// shorter than a full Ethernet header.
func TestDecodeRobustness(t *testing.T) {
	f := func(data []byte) bool {
		fr, err := Decode(data)
		if len(data) < 14 {
			return err != nil && fr == nil
		}
		return true // any outcome fine, just must not panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: BuildProbeFrame's in-place decoded form is exactly what decoding
// BuildProbe's wire bytes yields — the scale harness pools these frames and
// feeds them straight to SendFrameN, so any divergence would break the
// encode-path/decode-path equivalence the differential gates rely on.
func TestBuildProbeFrameMatchesDecode(t *testing.T) {
	f := func(id uint32, udp bool, payload []byte) bool {
		spec := ProbeSpec{FlowID: id % 2_000_000, Payload: payload}
		if len(payload) == 0 {
			// Decode represents an absent payload as an empty non-nil
			// slice; pin a canonical non-empty payload instead of testing
			// nil-vs-empty representation.
			spec.Payload = []byte{0xab}
		}
		if udp {
			spec.Proto = IPProtocolUDP
		}
		raw, err := BuildProbe(spec)
		if err != nil {
			return false
		}
		decoded, err := Decode(raw)
		if err != nil {
			return false
		}
		var built Frame
		BuildProbeFrame(&built, spec)
		return reflect.DeepEqual(&built, decoded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
