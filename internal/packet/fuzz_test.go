package packet

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the frame decoder with arbitrary bytes: it must never
// panic, and any frame it accepts must serialize and re-decode to an
// identical wire image (after the canonicalising first re-serialize, which
// recomputes lengths and checksums).
func FuzzDecode(f *testing.F) {
	for _, id := range []uint32{0, 1, 70000} {
		raw, err := BuildProbe(ProbeSpec{FlowID: id, Payload: []byte("seed")})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	e := Ethernet{EtherType: EtherTypeARP}
	f.Add(append(e.AppendTo(nil), 1, 2, 3))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		canon, err := fr.Serialize()
		if err != nil {
			// A decoded frame may fail to serialize only when its layers
			// cannot express what was parsed; our layer set round-trips
			// everything it accepts.
			t.Fatalf("serialize after decode: %v", err)
		}
		fr2, err := Decode(canon)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		canon2, err := fr2.Serialize()
		if err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("serialization not idempotent:\n first %x\nsecond %x", canon, canon2)
		}
	})
}
