package update

import (
	"testing"

	"tango/internal/core/pattern"
	"tango/internal/topo"
)

func TestPlanRerouteDependencies(t *testing.T) {
	oldA := topo.Allocation{1: {"a", "x", "b"}, 2: {"a", "b"}}
	newA := topo.Allocation{1: {"a", "y", "b"}, 2: {"a", "b"}}
	g, n, err := PlanReroute(oldA, newA, PlanOptions{AssignPriorities: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // add y, mod a, del x (flow 2 unchanged)
		t.Fatalf("changes = %d, want 3", n)
	}
	if g.Len() != 3 {
		t.Fatalf("nodes = %d", g.Len())
	}
	// The independent set must contain only the destination-side add.
	indep := g.IndependentSet()
	if len(indep) != 1 || g.Payload(indep[0]).Switch != "y" || g.Payload(indep[0]).Op != pattern.OpAdd {
		t.Fatalf("independent set = %+v", indep)
	}
	// Draining the graph respects add → mod → del order.
	var order []pattern.OpKind
	for g.Len() > 0 {
		for _, id := range g.IndependentSet() {
			order = append(order, g.Payload(id).Op)
			if err := g.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := []pattern.OpKind{pattern.OpAdd, pattern.OpMod, pattern.OpDel}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", order, want)
		}
	}
}

func TestPlanPriorityAssignmentModes(t *testing.T) {
	changes := []topo.RuleChange{
		{FlowID: 1, Switch: "s", Kind: topo.ChangeAdd, DependsOn: -1},
		{FlowID: 1, Switch: "t", Kind: topo.ChangeAdd, DependsOn: 0},
	}
	g, err := Plan(changes, PlanOptions{AssignPriorities: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint16]bool{}
	for _, id := range g.Nodes() {
		r := g.Payload(id)
		if !r.HasPriority {
			t.Fatal("priority not assigned")
		}
		if seen[r.Priority] {
			t.Fatal("duplicate priority")
		}
		seen[r.Priority] = true
	}
	g2, err := Plan(changes, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g2.Nodes() {
		if g2.Payload(id).HasPriority {
			t.Fatal("priority assigned in enforcement mode")
		}
	}
}

func TestPlanRejectsForwardDependency(t *testing.T) {
	changes := []topo.RuleChange{
		{FlowID: 1, Switch: "s", Kind: topo.ChangeAdd, DependsOn: 1},
		{FlowID: 1, Switch: "t", Kind: topo.ChangeAdd, DependsOn: -1},
	}
	if _, err := Plan(changes, PlanOptions{}); err == nil {
		t.Fatal("forward dependency accepted")
	}
}
