// Package update plans consistent network updates: it converts the
// per-flow rule changes produced by path diffing into a scheduler request
// DAG whose dependencies enforce the reverse-path update discipline the
// paper adopts from the consistent-updates literature ("we ensure that the
// flow updates are conducted in reverse order across the source-destination
// paths to ensure update consistency", §7.2) — a packet in flight never
// meets a switch that has not yet learned its flow.
package update

import (
	"fmt"
	"math/rand"

	"tango/internal/core/pattern"
	"tango/internal/core/sched"
	"tango/internal/dag"
	"tango/internal/topo"
)

// PlanOptions tunes Plan.
type PlanOptions struct {
	// FlowIDBase offsets the rule flow IDs used for new-path rules.
	FlowIDBase uint32
	// BasePriority anchors assigned priorities.
	BasePriority uint16
	// AssignPriorities controls how rule priorities are chosen:
	// true assigns each change a unique priority from a seeded shuffle
	// (app-specified, 1-1 style); false leaves priorities unassigned so
	// the scheduler's priority enforcement can pick them.
	AssignPriorities bool
	// Seed drives the priority shuffle.
	Seed int64
}

// Plan builds the request DAG for a set of rule changes. Each change's
// DependsOn edge becomes a DAG edge, serialising every flow's updates from
// the destination side back to the source, with old-path cleanup last.
func Plan(changes []topo.RuleChange, opts PlanOptions) (*sched.Graph, error) {
	if opts.BasePriority == 0 {
		opts.BasePriority = 1000
	}
	g := sched.NewGraph()
	ids := make([]dag.NodeID, len(changes))
	var prios []int
	if opts.AssignPriorities {
		prios = rand.New(rand.NewSource(opts.Seed)).Perm(len(changes))
	}
	for i, ch := range changes {
		var op pattern.OpKind
		switch ch.Kind {
		case topo.ChangeAdd:
			op = pattern.OpAdd
		case topo.ChangeMod:
			op = pattern.OpMod
		case topo.ChangeDel:
			op = pattern.OpDel
		default:
			return nil, fmt.Errorf("update: unknown change kind %v", ch.Kind)
		}
		r := &sched.Request{
			Switch: ch.Switch,
			Op:     op,
			FlowID: opts.FlowIDBase + uint32(i),
		}
		if opts.AssignPriorities {
			r.Priority = opts.BasePriority + uint16(prios[i])
			r.HasPriority = true
		}
		ids[i] = g.AddNode(r)
		if ch.DependsOn >= 0 {
			if ch.DependsOn >= i {
				return nil, fmt.Errorf("update: change %d depends on later change %d", i, ch.DependsOn)
			}
			if err := g.AddEdge(ids[ch.DependsOn], ids[i]); err != nil {
				return nil, fmt.Errorf("update: dependency %d→%d: %w", ch.DependsOn, i, err)
			}
		}
	}
	return g, nil
}

// PlanReroute is the link-failure convenience: it diffs the allocations and
// plans the resulting changes in one step.
func PlanReroute(oldA, newA topo.Allocation, opts PlanOptions) (*sched.Graph, int, error) {
	changes := topo.DiffAssignments(oldA, newA)
	g, err := Plan(changes, opts)
	return g, len(changes), err
}
