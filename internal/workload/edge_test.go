package workload

import "testing"

// TestGenerateEdgeCases is the table-driven boundary sweep for Generate:
// every kind must behave at the degenerate corners the scenario runners can
// reach (single-flow populations, one-packet traces).
func TestGenerateEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		len  int
	}{
		{"zipf-single-flow", Options{Kind: KindZipf, Flows: 1, Packets: 100, Seed: 3}, 100},
		{"uniform-single-flow", Options{Kind: KindUniform, Flows: 1, Packets: 100, Seed: 3}, 100},
		{"scan-single-flow", Options{Kind: KindScan, Flows: 1, Packets: 100}, 100},
		{"zipf-single-packet", Options{Kind: KindZipf, Flows: 64, Packets: 1, Seed: 3}, 1},
		{"scan-more-flows-than-packets", Options{Kind: KindScan, Flows: 100, Packets: 5}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace := Generate(tc.opts)
			if len(trace) != tc.len {
				t.Fatalf("len = %d, want %d", len(trace), tc.len)
			}
			for i, f := range trace {
				if int(f) >= tc.opts.Flows {
					t.Fatalf("packet %d references flow %d of %d", i, f, tc.opts.Flows)
				}
			}
			if tc.opts.Flows == 1 {
				for i, f := range trace {
					if f != 0 {
						t.Fatalf("single-flow trace emits flow %d at %d", f, i)
					}
				}
			}
		})
	}
}

func TestGeneratePanicsOnBadPackets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero packets")
		}
	}()
	Generate(Options{Flows: 10, Packets: 0})
}

// TestPopularityEdgeCases pins Popularity at its boundaries: empty traces,
// out-of-range flow IDs (dropped, not panicking), and zero-flow tallies.
func TestPopularityEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		trace []uint32
		flows int
		want  []int
	}{
		{"zero-length-trace", nil, 3, []int{0, 0, 0}},
		{"empty-slice-trace", []uint32{}, 2, []int{0, 0}},
		{"single-flow-trace", []uint32{0, 0, 0}, 1, []int{3}},
		{"out-of-range-ids-dropped", []uint32{0, 5, 1, 99}, 2, []int{1, 1}},
		{"zero-flows", []uint32{1, 2}, 0, []int{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Popularity(tc.trace, tc.flows)
			if len(got) != len(tc.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("counts = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestTopShareEdgeCases pins TopShare at its boundaries — in particular
// k larger than the flow population, which must clamp rather than read out
// of range.
func TestTopShareEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		trace []uint32
		flows int
		k     int
		want  float64
	}{
		{"k-exceeds-flows", []uint32{0, 1, 0, 1}, 2, 10, 1.0},
		{"k-equals-flows", []uint32{0, 1, 2}, 3, 3, 1.0},
		{"zero-length-trace", nil, 4, 2, 0},
		{"zero-k", []uint32{0, 1}, 2, 0, 0},
		{"negative-k", []uint32{0, 1}, 2, -1, 0},
		{"single-flow-trace", []uint32{0, 0, 0, 0}, 1, 1, 1.0},
		{"top-1-of-skewed", []uint32{0, 0, 0, 1}, 2, 1, 0.75},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := TopShare(tc.trace, tc.flows, tc.k); got != tc.want {
				t.Fatalf("TopShare = %v, want %v", got, tc.want)
			}
		})
	}
}
