package workload

import (
	"math/rand"
	"time"
)

// churn.go generates heavy-churn control-plane workloads: a population of
// short-lived flows that are installed with idle/hard timeouts and
// sporadically touched on the data plane, so the switch's lazy expiry sweep
// (switchsim/expiry.go) continuously removes and re-admits rules while
// whatever else is using the switch — Tango's inference, in the conformance
// scenarios — runs concurrently.

// ChurnKind distinguishes churn events.
type ChurnKind int

const (
	// ChurnInstall (re-)installs the event's flow with the event's timeouts.
	ChurnInstall ChurnKind = iota
	// ChurnTouch sends one data-plane packet for the flow, refreshing its
	// idle timer if the rule is still live (a miss just punts — also churn).
	ChurnTouch
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case ChurnInstall:
		return "install"
	case ChurnTouch:
		return "touch"
	}
	return "churn-op(?)"
}

// ChurnEvent is one timed step of a churn schedule. At is an offset from the
// start of whatever run replays the schedule, in virtual time.
type ChurnEvent struct {
	At          time.Duration
	Kind        ChurnKind
	Flow        uint32
	IdleTimeout uint16 // seconds; 0 = none (ChurnInstall only)
	HardTimeout uint16 // seconds; 0 = none (ChurnInstall only)
}

// ChurnOptions parameterises Churn.
type ChurnOptions struct {
	// FlowBase is the first flow ID of the churning population; see
	// AttackOptions.FlowBase for the aliasing constraint.
	FlowBase uint32
	// Flows is the population size; events pick flows uniformly from it
	// (default 128). Re-installing a still-live flow is an OpenFlow
	// overwrite-in-place no-op, so the effective install rate is governed
	// by how fast timeouts free population slots.
	Flows int
	// Rate is the event rate in events per virtual second. Rate <= 0 means
	// no churn: Churn returns nil, which is the identity schedule the
	// no-observer-effect differential test relies on.
	Rate float64
	// Duration bounds the schedule (default 60s). Replays that finish
	// earlier simply never reach the tail events.
	Duration time.Duration
	// MinTimeout/MaxTimeout bound the per-install timeout draw, in whole
	// seconds (defaults 1 and 3; OpenFlow timeouts have second resolution).
	MinTimeout, MaxTimeout int
	// TouchFrac is the fraction of events that are data-plane touches
	// rather than installs (default 0.3).
	TouchFrac float64
	// Seed fixes the schedule's RNG.
	Seed int64
}

func (o ChurnOptions) withDefaults() ChurnOptions {
	if o.FlowBase == 0 {
		o.FlowBase = 5 << 20
	}
	if o.Flows <= 0 {
		o.Flows = 128
	}
	if o.Duration <= 0 {
		o.Duration = 60 * time.Second
	}
	if o.MinTimeout <= 0 {
		o.MinTimeout = 1
	}
	if o.MaxTimeout < o.MinTimeout {
		o.MaxTimeout = o.MinTimeout + 2
	}
	if o.TouchFrac <= 0 {
		o.TouchFrac = 0.3
	}
	return o
}

// Churn returns a deterministic churn schedule: events at fixed 1/Rate
// spacing, each picking a population flow and either re-installing it with a
// fresh random timeout or touching it on the data plane. Events are ordered
// by At. A non-positive rate returns nil.
func Churn(opts ChurnOptions) []ChurnEvent {
	if opts.Rate <= 0 {
		return nil
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	interval := time.Duration(float64(time.Second) / opts.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	span := opts.MaxTimeout - opts.MinTimeout + 1
	var out []ChurnEvent
	for at := interval; at <= opts.Duration; at += interval {
		ev := ChurnEvent{At: at, Flow: opts.FlowBase + uint32(rng.Intn(opts.Flows))}
		if rng.Float64() < opts.TouchFrac {
			ev.Kind = ChurnTouch
		} else {
			ev.Kind = ChurnInstall
			t := uint16(opts.MinTimeout + rng.Intn(span))
			if rng.Intn(2) == 0 {
				ev.IdleTimeout = t
			} else {
				ev.HardTimeout = t
			}
		}
		out = append(out, ev)
	}
	return out
}
