package workload

import (
	"testing"
	"testing/quick"
)

func TestGenerateLengthAndRange(t *testing.T) {
	for _, kind := range []Kind{KindZipf, KindUniform, KindScan} {
		trace := Generate(Options{Kind: kind, Flows: 50, Packets: 1000, Seed: 1})
		if len(trace) != 1000 {
			t.Fatalf("%v: len = %d", kind, len(trace))
		}
		for i, f := range trace {
			if int(f) >= 50 {
				t.Fatalf("%v: packet %d references flow %d", kind, i, f)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Options{Kind: KindZipf, Flows: 100, Packets: 500, Seed: 7})
	b := Generate(Options{Kind: KindZipf, Flows: 100, Packets: 500, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestZipfSkewedUniformFlat(t *testing.T) {
	zipf := Generate(Options{Kind: KindZipf, Flows: 1000, Packets: 50000, Skew: 1.2, Seed: 2})
	uni := Generate(Options{Kind: KindUniform, Flows: 1000, Packets: 50000, Seed: 2})
	zs := TopShare(zipf, 1000, 100)
	us := TopShare(uni, 1000, 100)
	if zs < 0.6 {
		t.Fatalf("zipf top-100 share = %.2f, want heavy skew", zs)
	}
	if us > 0.2 {
		t.Fatalf("uniform top-100 share = %.2f, want ~0.1", us)
	}
}

func TestScanCycles(t *testing.T) {
	trace := Generate(Options{Kind: KindScan, Flows: 4, Packets: 10})
	want := []uint32{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("scan trace = %v", trace[:10])
		}
	}
}

func TestPopularitySums(t *testing.T) {
	f := func(seed int64, kindRaw uint8) bool {
		trace := Generate(Options{Kind: Kind(kindRaw % 3), Flows: 64, Packets: 2048, Seed: seed})
		counts := Popularity(trace, 64)
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == 2048
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero flows")
		}
	}()
	Generate(Options{Flows: 0, Packets: 10})
}
