// Package workload generates synthetic data-plane traffic traces. The
// paper's utilization challenge (§1) is that whether a rule sits in TCAM
// "can have a significant impact on its throughput, and therefore quality
// of service" — which rules those are depends on the switch's caching
// policy and the traffic's popularity distribution. This package supplies
// the traffic side: Zipf-skewed flow popularity, the canonical model for
// network flow size distributions, plus uniform and scan traces as
// contrast.
package workload

import (
	"fmt"
	"math/rand"
)

// Kind selects a trace shape.
type Kind int

// Trace shapes.
const (
	// KindZipf draws flows from a Zipf popularity distribution — few
	// elephants, many mice.
	KindZipf Kind = iota
	// KindUniform draws flows uniformly.
	KindUniform
	// KindScan cycles through all flows round-robin — the adversarial
	// pattern for LRU-style caches.
	KindScan
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindZipf:
		return "zipf"
	case KindUniform:
		return "uniform"
	default:
		return "scan"
	}
}

// Options parameterises Generate.
type Options struct {
	Kind Kind
	// Flows is the flow population size.
	Flows int
	// Packets is the trace length.
	Packets int
	// Skew is the Zipf s parameter (>1); ignored for other kinds.
	// Zero means 1.2.
	Skew float64
	// Seed drives the RNG.
	Seed int64
}

// Generate produces a packet trace: a sequence of flow IDs in arrival
// order. It panics on non-positive Flows/Packets, which indicate broken
// experiment setup.
func Generate(opts Options) []uint32 {
	if opts.Flows <= 0 || opts.Packets <= 0 {
		panic(fmt.Sprintf("workload: bad options %+v", opts))
	}
	if opts.Skew == 0 {
		opts.Skew = 1.2
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	out := make([]uint32, opts.Packets)
	switch opts.Kind {
	case KindZipf:
		z := rand.NewZipf(rng, opts.Skew, 1, uint64(opts.Flows-1))
		for i := range out {
			out[i] = uint32(z.Uint64())
		}
	case KindUniform:
		for i := range out {
			out[i] = uint32(rng.Intn(opts.Flows))
		}
	case KindScan:
		for i := range out {
			out[i] = uint32(i % opts.Flows)
		}
	}
	return out
}

// Popularity returns each flow's packet count in the trace, indexed by
// flow ID over [0, flows).
func Popularity(trace []uint32, flows int) []int {
	counts := make([]int, flows)
	for _, f := range trace {
		if int(f) < flows {
			counts[f]++
		}
	}
	return counts
}

// TopShare returns the fraction of packets carried by the k most popular
// flows — a quick skew diagnostic.
func TopShare(trace []uint32, flows, k int) float64 {
	if len(trace) == 0 || k <= 0 {
		return 0
	}
	counts := Popularity(trace, flows)
	// Partial selection of the k largest counts.
	for i := 0; i < k && i < len(counts); i++ {
		maxAt := i
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[maxAt] {
				maxAt = j
			}
		}
		counts[i], counts[maxAt] = counts[maxAt], counts[i]
	}
	top := 0
	for i := 0; i < k && i < len(counts); i++ {
		top += counts[i]
	}
	return float64(top) / float64(len(trace))
}
