package workload

import (
	"reflect"
	"testing"
	"time"
)

// TestOverflowAttackGoldenSmall pins the exact schedule for a hand-checkable
// configuration: 2 canaries, a canary revisit every 2 fills, 4 fills. The
// generator is a pure function, so any diff here is a semantic change to the
// attack, not noise.
func TestOverflowAttackGoldenSmall(t *testing.T) {
	got := OverflowAttack(AttackOptions{FlowBase: 100, Canaries: 2, Step: 2, MaxFills: 4})
	want := []AttackOp{
		// Canary phase: install and baseline-probe each sentinel.
		{AttackInstall, 100}, {AttackProbe, 100},
		{AttackInstall, 101}, {AttackProbe, 101},
		// Fill phase: every fill is installed and timed; after every 2nd
		// fill the next unchecked canary is revisited exactly once.
		{AttackInstall, 102}, {AttackProbe, 102},
		{AttackInstall, 103}, {AttackProbe, 103},
		{AttackProbe, 100}, // canary 0 checked after 2 fills
		{AttackInstall, 104}, {AttackProbe, 104},
		{AttackInstall, 105}, {AttackProbe, 105},
		{AttackProbe, 101}, // canary 1 checked after 4 fills
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule mismatch:\n got: %v\nwant: %v", got, want)
	}
}

// TestOverflowAttackDefaults pins the default schedule's shape: 16 canaries
// (install+probe), 320 fills (install+probe), and canary revisits capped at
// the canary count even though MaxFills/Step would allow 20.
func TestOverflowAttackDefaults(t *testing.T) {
	ops := OverflowAttack(AttackOptions{})
	if len(ops) != 2*16+2*320+16 {
		t.Fatalf("default schedule length = %d, want %d", len(ops), 2*16+2*320+16)
	}
	opts := AttackOptions{}.WithDefaults()
	if opts.FlowBase != 3<<20 || opts.Canaries != 16 || opts.Step != 16 || opts.MaxFills != 320 {
		t.Fatalf("defaults = %+v", opts)
	}
	// Each canary is probed exactly twice across the whole schedule: the
	// baseline probe and the single one-shot revisit. A third probe would
	// refresh recency and shield the canary from LRU eviction, breaking the
	// attack's bracketing logic.
	probes := make(map[uint32]int)
	for _, op := range ops {
		if op.Kind == AttackProbe && op.Flow < opts.FlowBase+uint32(opts.Canaries) {
			probes[op.Flow]++
		}
	}
	for flow, n := range probes {
		if n != 2 {
			t.Errorf("canary %d probed %d times, want exactly 2", flow, n)
		}
	}
	if len(probes) != opts.Canaries {
		t.Errorf("probed %d canaries, want %d", len(probes), opts.Canaries)
	}
}

func TestAttackOpKindString(t *testing.T) {
	if AttackInstall.String() != "install" || AttackProbe.String() != "probe" {
		t.Errorf("kind strings = %q/%q", AttackInstall, AttackProbe)
	}
	if AttackOpKind(99).String() != "attack-op(?)" {
		t.Errorf("unknown kind string = %q", AttackOpKind(99))
	}
}

// TestChurnGoldenSmall pins a full small schedule for seed 9: fixed 500ms
// spacing, flows from the 4-flow population, exactly one timeout field set
// per install.
func TestChurnGoldenSmall(t *testing.T) {
	got := Churn(ChurnOptions{FlowBase: 200, Flows: 4, Rate: 2, Duration: 3 * time.Second, Seed: 9})
	want := []ChurnEvent{
		{At: 500 * time.Millisecond, Kind: ChurnTouch, Flow: 201},
		{At: 1000 * time.Millisecond, Kind: ChurnInstall, Flow: 202, IdleTimeout: 1},
		{At: 1500 * time.Millisecond, Kind: ChurnInstall, Flow: 203, IdleTimeout: 3},
		{At: 2000 * time.Millisecond, Kind: ChurnInstall, Flow: 201, IdleTimeout: 3},
		{At: 2500 * time.Millisecond, Kind: ChurnTouch, Flow: 201},
		{At: 3000 * time.Millisecond, Kind: ChurnInstall, Flow: 203, IdleTimeout: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule mismatch:\n got: %v\nwant: %v", got, want)
	}
}

// TestChurnGoldenCounts pins aggregate shape at a realistic rate: event
// count, install/touch split for the default 0.3 touch fraction, and
// determinism across calls.
func TestChurnGoldenCounts(t *testing.T) {
	opts := ChurnOptions{Rate: 100, Duration: 30 * time.Second, Seed: 42}
	evs := Churn(opts)
	installs, touches := 0, 0
	for i, ev := range evs {
		if i > 0 && ev.At <= evs[i-1].At {
			t.Fatalf("events out of order at %d: %v after %v", i, ev.At, evs[i-1].At)
		}
		switch ev.Kind {
		case ChurnInstall:
			installs++
			if (ev.IdleTimeout == 0) == (ev.HardTimeout == 0) {
				t.Fatalf("install %d must set exactly one timeout: %+v", i, ev)
			}
			if to := ev.IdleTimeout + ev.HardTimeout; to < 1 || to > 3 {
				t.Fatalf("install %d timeout %d outside [1,3]", i, to)
			}
		case ChurnTouch:
			touches++
			if ev.IdleTimeout != 0 || ev.HardTimeout != 0 {
				t.Fatalf("touch %d carries timeouts: %+v", i, ev)
			}
		}
		if ev.Flow < 5<<20 || ev.Flow >= 5<<20+128 {
			t.Fatalf("event %d flow %d outside default population", i, ev.Flow)
		}
	}
	if len(evs) != 3000 || installs != 2082 || touches != 918 {
		t.Fatalf("shape = %d events, %d installs, %d touches; want 3000/2082/918",
			len(evs), installs, touches)
	}
	if !reflect.DeepEqual(evs, Churn(opts)) {
		t.Fatal("same-seed schedules differ")
	}
	if reflect.DeepEqual(evs, Churn(ChurnOptions{Rate: 100, Duration: 30 * time.Second, Seed: 43})) {
		t.Fatal("different-seed schedules identical")
	}
}

func TestChurnRateZeroIsNil(t *testing.T) {
	if evs := Churn(ChurnOptions{Rate: 0}); evs != nil {
		t.Fatalf("rate 0 schedule = %v, want nil", evs)
	}
	if evs := Churn(ChurnOptions{Rate: -5}); evs != nil {
		t.Fatalf("negative rate schedule = %v, want nil", evs)
	}
}

func TestChurnKindString(t *testing.T) {
	if ChurnInstall.String() != "install" || ChurnTouch.String() != "touch" {
		t.Errorf("kind strings = %q/%q", ChurnInstall, ChurnTouch)
	}
	if ChurnKind(99).String() != "churn-op(?)" {
		t.Errorf("unknown kind string = %q", ChurnKind(99))
	}
}
