package workload

// adversarial.go generates the flow-table overflow inference attack of
// arXiv 1504.03095: an adversary who can only install flows (as an ordinary
// tenant or via triggered table-misses) and time its own packets fills the
// switch's fast path with fresh flows while occasionally re-probing older
// "canary" flows it deliberately leaves untouched. The first canary whose
// revisit comes back slow has been evicted, which brackets the cache size
// between the fill counts of the last-resident and first-evicted canaries.
//
// The generator emits a deterministic operation schedule; executing it
// against a device and interpreting the canary timings is the conformance
// harness's job (internal/conformance), so the same schedule can drive both
// the attacker-succeeds experiment and the switch-side detector.

// AttackOpKind distinguishes the two operations an overflow attacker can
// perform against the device under attack.
type AttackOpKind int

const (
	// AttackInstall installs an exact-match rule for the op's flow.
	AttackInstall AttackOpKind = iota
	// AttackProbe sends one data-plane packet for the op's flow and times it.
	AttackProbe
)

// String implements fmt.Stringer.
func (k AttackOpKind) String() string {
	switch k {
	case AttackInstall:
		return "install"
	case AttackProbe:
		return "probe"
	}
	return "attack-op(?)"
}

// AttackOp is one step of an overflow-attack schedule.
type AttackOp struct {
	Kind AttackOpKind
	Flow uint32
}

// AttackOptions parameterises OverflowAttack. The zero value selects
// defaults suitable for caches up to a few hundred entries.
type AttackOptions struct {
	// FlowBase is the first flow ID the attacker mints. It must keep the
	// attack's probe addresses clear of any concurrent inference traffic:
	// probe IPs repeat every 1<<24 flow IDs, so bases are chosen well below
	// that and away from the inference engines' ID ranges.
	FlowBase uint32
	// Canaries is the number of sentinel flows installed up front. Each is
	// revisited exactly once, so refreshing a canary's recency (which would
	// shield it from LRU-style eviction) can never happen twice.
	Canaries int
	// Step is the number of fill flows installed between canary revisits;
	// it bounds the estimate's resolution to ±Step/2 entries.
	Step int
	// MaxFills caps the fill phase. Canaries*Step must reach past the
	// largest cache the attack should resolve: the k-th canary is checked
	// after (k+1)*Step fills.
	MaxFills int
}

// WithDefaults resolves zero fields to the documented defaults. Schedule
// executors call it to recover the same flow-ID layout the generator used.
func (o AttackOptions) WithDefaults() AttackOptions {
	if o.FlowBase == 0 {
		o.FlowBase = 3 << 20
	}
	if o.Canaries <= 0 {
		o.Canaries = 16
	}
	if o.Step <= 0 {
		o.Step = 16
	}
	if o.MaxFills <= 0 {
		o.MaxFills = 320
	}
	return o
}

// OverflowAttack returns the attack schedule: install-and-probe every canary,
// then interleave fill flows (install + timing probe each) with one-shot
// canary revisits every Step fills. The schedule is a pure function of its
// options — the attack carries no randomness, which is exactly what makes its
// traffic detectable: fresh sequential flows at a near-constant rate.
func OverflowAttack(opts AttackOptions) []AttackOp {
	opts = opts.WithDefaults()
	ops := make([]AttackOp, 0, 2*opts.Canaries+2*opts.MaxFills+opts.MaxFills/opts.Step+1)
	base := opts.FlowBase
	for i := 0; i < opts.Canaries; i++ {
		c := base + uint32(i)
		ops = append(ops, AttackOp{AttackInstall, c}, AttackOp{AttackProbe, c})
	}
	fillBase := base + uint32(opts.Canaries)
	checked := 0
	for f := 0; f < opts.MaxFills; f++ {
		fl := fillBase + uint32(f)
		ops = append(ops, AttackOp{AttackInstall, fl}, AttackOp{AttackProbe, fl})
		if (f+1)%opts.Step == 0 && checked < opts.Canaries {
			ops = append(ops, AttackOp{AttackProbe, base + uint32(checked)})
			checked++
		}
	}
	return ops
}
