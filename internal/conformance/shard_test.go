package conformance

import (
	"reflect"
	"testing"
	"time"

	"tango/internal/workload"
)

func TestShardScheduleFlowDisjointAndOrdered(t *testing.T) {
	events := workload.Churn(workload.ChurnOptions{
		Rate: 50, Duration: 20 * time.Second, Flows: 64, Seed: 7,
	})
	if len(events) == 0 {
		t.Fatal("empty schedule")
	}
	for _, n := range []int{1, 3, 12} {
		shards := ShardSchedule(events, n)
		if len(shards) != max(n, 1) {
			t.Fatalf("n=%d: got %d shards", n, len(shards))
		}
		total := 0
		seen := map[uint32]int{}
		for i, sh := range shards {
			total += len(sh)
			for j, ev := range sh {
				if owner, ok := seen[ev.Flow]; ok && owner != i {
					t.Fatalf("n=%d: flow %d on shards %d and %d", n, ev.Flow, owner, i)
				}
				seen[ev.Flow] = i
				if j > 0 && sh[j-1].At > ev.At {
					t.Fatalf("n=%d shard %d: events out of order", n, i)
				}
			}
		}
		if total != len(events) {
			t.Fatalf("n=%d: %d events after sharding, want %d", n, total, len(events))
		}
	}
}

func TestShardScheduleSingleShardIsIdentity(t *testing.T) {
	events := workload.Churn(workload.ChurnOptions{
		Rate: 10, Duration: 5 * time.Second, Seed: 1,
	})
	shards := ShardSchedule(events, 0)
	if len(shards) != 1 || !reflect.DeepEqual(shards[0], events) {
		t.Fatal("n<=1 must return the schedule unsplit")
	}
}
