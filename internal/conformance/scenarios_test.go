package conformance

import (
	"reflect"
	"testing"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/probe"
	"tango/internal/switchsim"
	"tango/internal/workload"
)

// TestScenarioGates is the adversarial conformance gate: every catalog
// scenario must produce its pinned verdict. Each scenario is a pure function
// of its seed, so a failure here is a behavioural regression, not noise.
func TestScenarioGates(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario catalog in -short mode")
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res := RunScenario(sc)
			if !res.Pass {
				t.Fatalf("scenario gate failed: %s", res.Verdict)
			}
			t.Logf("%s", res.Verdict)
		})
	}
}

// TestScenarioDeterminism pins bit-for-bit reproducibility: running a
// scenario twice yields identical results, including error text and every
// diagnostic counter. One representative per family keeps the test fast.
func TestScenarioDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay in -short mode")
	}
	byName := make(map[string]Scenario)
	for _, sc := range Scenarios() {
		byName[sc.Name] = sc
	}
	for _, name := range []string{"overflow-attack-timing", "churn-size-fifo", "altpolicy-dest-aggregate"} {
		sc, ok := byName[name]
		if !ok {
			t.Fatalf("scenario %q missing from catalog", name)
		}
		a, b := RunScenario(sc), RunScenario(sc)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: replay diverged:\n first: %+v\nsecond: %+v", name, a, b)
		}
	}
}

// TestScenarioCatalogShape pins catalog invariants the bench harness and
// tangobench rely on: unique names, known families, and a deterministic
// failure (not a panic) for unknown names.
func TestScenarioCatalogShape(t *testing.T) {
	seen := make(map[string]bool)
	seeds := make(map[int64]string)
	for _, sc := range Scenarios() {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if prev, dup := seeds[sc.Seed]; dup {
			t.Errorf("scenarios %q and %q share seed %d", prev, sc.Name, sc.Seed)
		}
		seeds[sc.Seed] = sc.Name
		switch sc.Family {
		case "overflow", "churn", "altpolicy":
		default:
			t.Errorf("scenario %q has unknown family %q", sc.Name, sc.Family)
		}
	}
	res := RunScenario(Scenario{Name: "no-such-scenario"})
	if res.Pass || res.ErrText == "" {
		t.Errorf("unknown scenario must fail with an error, got %+v", res)
	}
}

// TestChurnRateZeroDifferential is the no-observer-effect gate: inference
// through a background wrapper whose churn schedule is empty must be
// byte-identical to inference on the bare device. Two layers are pinned:
// the generator contract (rate 0 → nil driver → WrapBackground returns the
// device unchanged) and the wrapper itself (an active wrapper with zero
// events resolves the exact same device fast paths, so size and policy
// results stay deeply equal).
func TestChurnRateZeroDifferential(t *testing.T) {
	if NewChurnDriver(workload.Churn(workload.ChurnOptions{Rate: 0})) != nil {
		t.Fatal("rate-0 churn schedule must produce a nil driver")
	}

	const seed = 411
	run := func(wrap bool) (*infer.SizeResult, *infer.PolicyResult) {
		t.Helper()
		p := switchsim.TestSwitch(64, switchsim.PolicyLRU)
		p.Name = "diff-churn0"
		sw := switchsim.New(p, switchsim.WithSeed(seed))
		var dev probe.Device = probe.SimDevice{S: sw}
		if wrap {
			// An explicitly constructed empty driver: the wrapper is live
			// (every op steps it) but no event ever applies.
			dev = WrapBackground(dev, &ChurnDriver{})
		}
		e := probe.NewEngine(dev)
		sres, err := infer.ProbeSizes(e, infer.SizeOptions{Seed: seed + 1, MaxRules: 256})
		if err != nil {
			t.Fatalf("size stage (wrap=%v): %v", wrap, err)
		}
		p2 := switchsim.TestSwitch(64, switchsim.PolicyLRU)
		p2.Name = "diff-churn0"
		sw2 := switchsim.New(p2, switchsim.WithSeed(seed+2))
		var dev2 probe.Device = probe.SimDevice{S: sw2}
		if wrap {
			dev2 = WrapBackground(dev2, &ChurnDriver{})
		}
		pres, err := infer.ProbePolicy(probe.NewEngine(dev2), infer.PolicyOptions{CacheSize: 64, Seed: seed + 3})
		if err != nil {
			t.Fatalf("policy stage (wrap=%v): %v", wrap, err)
		}
		return sres, pres
	}

	bareSize, barePol := run(false)
	wrapSize, wrapPol := run(true)
	if !reflect.DeepEqual(bareSize, wrapSize) {
		t.Errorf("size inference diverged under empty background wrapper:\n bare: %+v\n wrap: %+v", bareSize, wrapSize)
	}
	if !reflect.DeepEqual(barePol, wrapPol) {
		t.Errorf("policy inference diverged under empty background wrapper:\n bare: %+v\n wrap: %+v", barePol, wrapPol)
	}
}

// TestWrapBackgroundNil pins that a nil Background is the identity.
func TestWrapBackgroundNil(t *testing.T) {
	sw := switchsim.New(switchsim.TestSwitch(8, switchsim.PolicyLRU))
	dev := probe.SimDevice{S: sw}
	if got := WrapBackground(dev, nil); got != probe.Device(dev) {
		t.Errorf("WrapBackground(dev, nil) = %T, want the device unchanged", got)
	}
}

// TestWrapBackgroundKeepsFastPaths pins that wrapping preserves the optional
// device capabilities the engine probes for — losing one would silently
// change inference behaviour and invalidate the differential above.
func TestWrapBackgroundKeepsFastPaths(t *testing.T) {
	sw := switchsim.New(switchsim.TestSwitch(8, switchsim.PolicyLRU))
	wrapped := WrapBackground(probe.SimDevice{S: sw}, &ChurnDriver{})
	if _, ok := wrapped.(probe.FrameDevice); !ok {
		t.Error("wrapper lost the FrameDevice fast path")
	}
	if _, ok := wrapped.(probe.TrafficSender); !ok {
		t.Error("wrapper lost the TrafficSender fast path")
	}
	if _, ok := wrapped.(probe.LabeledDevice); !ok {
		t.Error("wrapper lost the LabeledDevice capability")
	}
	if _, ok := wrapped.(interface{ Sleep(time.Duration) }); !ok {
		t.Error("wrapper lost the Sleep capability")
	}
}
