package conformance

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/probe"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
	"tango/internal/workload"
)

// scenarios.go is the adversarial/churn half of the conformance harness:
// where conformance.Run scores inference against randomized-but-quiet
// switches, the scenario catalog scores it against hostile and pathological
// *traffic* — overflow-probing attacks (arXiv 1504.03095), heavy
// timeout-driven churn, and cache-management policies outside the LEX model
// (arXiv 1909.03059 destination aggregation, arXiv 1803.04270 FDRC). Every
// scenario is a pure function of its seed: it either converges within its
// pinned tolerance or fails with a typed error, bit-for-bit reproducibly.

// Scenario is one adversarial workload conformance entry.
type Scenario struct {
	// Name identifies the scenario (catalog key and telemetry label).
	Name string
	// Family groups scenarios: "overflow", "churn", or "altpolicy".
	Family string
	// Seed drives every RNG in the scenario.
	Seed int64
	// Tolerance is the accepted relative size error for size-bearing
	// gates (0 when the scenario carries no size gate).
	Tolerance float64
	// MinExpirations is the churn non-vacuity floor: the scenario fails
	// unless at least this many rules expired while inference ran.
	MinExpirations uint64
	// ExpectPolicy pins the altpolicy verdict: "reject" (typed
	// ErrUnclassifiablePolicy) or "classify:<policy>" (Algorithm 2 settles
	// on exactly that LEX composite).
	ExpectPolicy string
}

// Scenarios returns the gated catalog. Seeds, tolerances, and expected
// verdicts are pinned — EXPERIMENTS.md documents each entry — so a change
// in any scenario's outcome is a regression, not noise.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "overflow-attack-timing", Family: "overflow", Seed: 71, Tolerance: 0.15},
		{Name: "overflow-clean-zipf", Family: "overflow", Seed: 72},
		{Name: "overflow-infer-under-attack", Family: "overflow", Seed: 73, Tolerance: 0.15},
		{Name: "churn-size-fifo", Family: "churn", Seed: 74, Tolerance: 0.10, MinExpirations: 50},
		{Name: "churn-size-lru", Family: "churn", Seed: 75, Tolerance: 0.25, MinExpirations: 50},
		{Name: "churn-policy-fifo", Family: "churn", Seed: 76, MinExpirations: 100},
		{Name: "altpolicy-dest-aggregate", Family: "altpolicy", Seed: 77, Tolerance: 0.15, ExpectPolicy: "reject"},
		// FDRC's recency-windowed traffic scores are observationally
		// equivalent to LRU under decorrelated probe rounds, so Algorithm 2
		// classifies rather than rejects — pinned as such.
		{Name: "altpolicy-fdrc", Family: "altpolicy", Seed: 78, Tolerance: 0.15, ExpectPolicy: "classify:use_time(keep-high)"},
	}
}

// ScenarioResult is one scenario's outcome. Err is carried as text so
// results from repeated runs compare with reflect.DeepEqual (the
// determinism gate).
type ScenarioResult struct {
	Scenario Scenario
	// TrueSize / Estimate / SizeError report the size gate, when present.
	TrueSize  int
	Estimate  int
	SizeError float64
	// Alarms / RevisitDemotions / Windows report the detector, when attached.
	Alarms           int
	RevisitDemotions int
	Windows          int
	// Expirations is the switch's expired-rule count at the end of the run.
	Expirations uint64
	// BackgroundApplied counts background schedule events executed.
	BackgroundApplied int
	// Policy is the inferred policy string (policy-bearing scenarios).
	Policy string
	// TypedReject reports that policy classification failed with the typed
	// ErrUnclassifiablePolicy (the expected verdict for non-LEX policies).
	TypedReject bool
	// ErrText is the pipeline error, "" when the scenario converged.
	ErrText string
	// Pass is the gate verdict; Verdict explains it.
	Pass    bool
	Verdict string
}

// String renders one scenario row.
func (r ScenarioResult) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%-28s [%s] %s", r.Scenario.Name, status, r.Verdict)
}

// RunScenario executes one catalog scenario and evaluates its gate.
func RunScenario(sc Scenario) ScenarioResult {
	var res ScenarioResult
	switch sc.Name {
	case "overflow-attack-timing":
		res = runAttackTiming(sc)
	case "overflow-clean-zipf":
		res = runCleanZipf(sc)
	case "overflow-infer-under-attack":
		res = runInferUnderAttack(sc)
	case "churn-size-fifo":
		res = runChurnSize(sc, switchsim.PolicyFIFO, 150, 0.3)
	case "churn-size-lru":
		res = runChurnSize(sc, switchsim.PolicyLRU, 40, 0.5)
	case "churn-policy-fifo":
		res = runChurnPolicy(sc)
	case "altpolicy-dest-aggregate":
		res = runAltPolicy(sc, switchsim.PolicyDestAggregate(), "altpolicy-destagg")
	case "altpolicy-fdrc":
		res = runAltPolicy(sc, switchsim.PolicyFDRC(4096), "altpolicy-fdrc")
	default:
		res = ScenarioResult{Scenario: sc, ErrText: "unknown scenario", Verdict: "unknown scenario"}
	}
	noteScenario(&res)
	return res
}

// RunScenarios executes the whole catalog in order.
func RunScenarios() []ScenarioResult {
	scs := Scenarios()
	out := make([]ScenarioResult, len(scs))
	for i, sc := range scs {
		out[i] = RunScenario(sc)
	}
	return out
}

// noteScenario labels the run in the process telemetry (nil-safe when no
// registry is installed).
func noteScenario(r *ScenarioResult) {
	reg := telemetry.Default()
	name := r.Scenario.Name
	reg.CounterVec("conformance.scenario.runs", "scenario").With(name).Add(1)
	if !r.Pass {
		reg.CounterVec("conformance.scenario.failures", "scenario").With(name).Add(1)
	}
	reg.CounterVec("conformance.scenario.detector_alarms", "scenario").With(name).Add(int64(r.Alarms))
	reg.CounterVec("conformance.scenario.expirations", "scenario").With(name).Add(int64(r.Expirations))
	reg.CounterVec("conformance.scenario.background_ops", "scenario").With(name).Add(int64(r.BackgroundApplied))
}

// attackProfile is the device under attack: an LRU cache, the policy family
// the 1504.03095 timing attack targets (new flows always admitted, silent
// flows aging toward eviction).
func attackProfile(name string, cache, softCap int) switchsim.Profile {
	p := switchsim.TestSwitch(cache, switchsim.PolicyLRU)
	p.Name = name
	p.SoftwareCapacity = softCap
	return p
}

// runAttackTiming plays the attacker: execute the overflow schedule against
// an LRU switch with the detector attached, time the canary revisits, and
// estimate the cache size from the first canary that comes back slow. The
// gate requires the attack to *work* (estimate within tolerance — the
// threat is real) and the detector to *see it* (≥1 alarm window plus the
// canary-demotion footprint).
func runAttackTiming(sc Scenario) ScenarioResult {
	const cache = 128
	res := ScenarioResult{Scenario: sc, TrueSize: cache}
	det := switchsim.NewOverflowDetector(switchsim.DetectorOptions{})
	sw := switchsim.New(attackProfile("adv-attack-lru", cache, 1024),
		switchsim.WithSeed(sc.Seed), switchsim.WithDetector(det))
	e := probe.NewEngine(probe.SimDevice{S: sw})

	aopts := workload.AttackOptions{Canaries: 16, Step: 16, MaxFills: 320}
	ops := workload.OverflowAttack(aopts)
	aopts = aopts.WithDefaults()
	base := aopts.FlowBase
	fillBase := base + uint32(aopts.Canaries)

	var baselineMax time.Duration
	fills := 0
	estimate := 0
	for _, op := range ops {
		switch op.Kind {
		case workload.AttackInstall:
			if err := e.Install(op.Flow, 900); err != nil {
				res.ErrText = fmt.Sprintf("attack install: %v", err)
				res.Verdict = res.ErrText
				return res
			}
			if op.Flow >= fillBase {
				fills++
			}
		case workload.AttackProbe:
			rtt, _, err := e.Probe(op.Flow)
			if err != nil {
				res.ErrText = fmt.Sprintf("attack probe: %v", err)
				res.Verdict = res.ErrText
				return res
			}
			if op.Flow >= fillBase {
				continue
			}
			k := int(op.Flow - base)
			if fills == 0 {
				// Canary phase: collect the fast-path timing baseline.
				if rtt > baselineMax {
					baselineMax = rtt
				}
				continue
			}
			// Milestone revisit: slow means this canary was evicted.
			if estimate == 0 && rtt > baselineMax*5/2 {
				upper := aopts.Canaries - k - 1 + fills
				if k == 0 {
					estimate = upper
				} else {
					lower := aopts.Canaries - k + (fills - aopts.Step)
					estimate = (lower + 1 + upper) / 2
				}
			}
		}
	}
	res.Estimate = estimate
	res.SizeError = relError(estimate, cache)
	res.Alarms = det.Alarms()
	res.RevisitDemotions = det.RevisitDemotions()
	res.Windows = det.Windows()

	switch {
	case estimate == 0:
		res.Verdict = "attack never observed an eviction"
	case res.SizeError > sc.Tolerance:
		res.Verdict = fmt.Sprintf("attack estimate %d/%d err %.1f%% exceeds %.0f%%",
			estimate, cache, 100*res.SizeError, 100*sc.Tolerance)
	case res.Alarms < 1:
		res.Verdict = fmt.Sprintf("detector silent across %d windows", res.Windows)
	case res.RevisitDemotions < 1:
		res.Verdict = "no canary demotion footprint recorded"
	default:
		res.Pass = true
		res.Verdict = fmt.Sprintf("attack estimate %d/%d (err %.1f%%), detector alarms %d/%d windows, %d canary demotions",
			estimate, cache, 100*res.SizeError, res.Alarms, res.Windows, res.RevisitDemotions)
	}
	return res
}

// runCleanZipf replays an organic Zipf trace (flow popularity decorrelated
// from address order, as in the qos experiment) through the same detector
// configuration. The gate is silence: zero alarm windows across a
// non-vacuous number of evaluated windows.
func runCleanZipf(sc Scenario) ScenarioResult {
	const (
		cache   = 256
		rules   = 1024
		packets = 30000
	)
	res := ScenarioResult{Scenario: sc}
	det := switchsim.NewOverflowDetector(switchsim.DetectorOptions{})
	sw := switchsim.New(attackProfile("adv-clean-lru", cache, 4096),
		switchsim.WithSeed(sc.Seed), switchsim.WithDetector(det))
	e := probe.NewEngine(probe.SimDevice{S: sw})

	for i := 0; i < rules; i++ {
		if err := e.Install(uint32(i), 100); err != nil {
			res.ErrText = fmt.Sprintf("install: %v", err)
			res.Verdict = res.ErrText
			return res
		}
	}
	trace := workload.Generate(workload.Options{
		Kind: workload.KindZipf, Flows: rules, Packets: packets, Skew: 1.2, Seed: sc.Seed + 1,
	})
	// Decorrelate popularity from flow ID (and hence address adjacency):
	// popular flows land on random addresses, like real assignments.
	perm := rand.New(rand.NewSource(sc.Seed + 2)).Perm(rules)
	for _, f := range trace {
		if _, _, err := e.Probe(uint32(perm[f])); err != nil {
			res.ErrText = fmt.Sprintf("probe: %v", err)
			res.Verdict = res.ErrText
			return res
		}
	}
	res.Alarms = det.Alarms()
	res.Windows = det.Windows()
	res.RevisitDemotions = det.RevisitDemotions()
	switch {
	case res.Windows < 100:
		res.Verdict = fmt.Sprintf("only %d detector windows evaluated (vacuous)", res.Windows)
	case res.Alarms != 0:
		res.Verdict = fmt.Sprintf("false positives: %d alarms in %d clean windows", res.Alarms, res.Windows)
	default:
		res.Pass = true
		res.Verdict = fmt.Sprintf("0 alarms across %d clean Zipf windows", res.Windows)
	}
	return res
}

// runInferUnderAttack runs Tango's size inference while an AttackDriver
// replays the overflow schedule as a concurrent tenant. The gate: the
// estimate still lands within tolerance — the attack steals cache slots and
// burns table space, but the negative-binomial estimator keeps converging.
func runInferUnderAttack(sc Scenario) ScenarioResult {
	const cache = 96
	res := ScenarioResult{Scenario: sc, TrueSize: cache}
	sw := switchsim.New(attackProfile("adv-infer-attack", cache, 6*cache), switchsim.WithSeed(sc.Seed))
	ad := &AttackDriver{Ops: workload.OverflowAttack(workload.AttackOptions{
		Canaries: 16, Step: 16, MaxFills: 256,
	})}
	e := probe.NewEngine(WrapBackground(probe.SimDevice{S: sw}, ad))

	sres, err := infer.ProbeSizes(e, infer.SizeOptions{Seed: sc.Seed + 1, MaxRules: 4 * cache})
	res.BackgroundApplied = ad.Applied()
	if err != nil {
		res.ErrText = fmt.Sprintf("size stage: %v", err)
		res.Verdict = res.ErrText
		return res
	}
	res.Estimate = sres.Levels[0].Size
	res.SizeError = relError(res.Estimate, cache)
	switch {
	case res.BackgroundApplied == 0:
		res.Verdict = "attack driver never ran (vacuous)"
	case res.SizeError > sc.Tolerance:
		res.Verdict = fmt.Sprintf("estimate %d/%d err %.1f%% exceeds %.0f%% under attack",
			res.Estimate, cache, 100*res.SizeError, 100*sc.Tolerance)
	default:
		res.Pass = true
		res.Verdict = fmt.Sprintf("estimate %d/%d (err %.1f%%) with %d attack ops interleaved",
			res.Estimate, cache, 100*res.SizeError, res.BackgroundApplied)
	}
	return res
}

// runChurnSize runs size inference while a ChurnDriver expires and
// re-installs a flow population through the switch's timeout sweep.
func runChurnSize(sc Scenario, policy switchsim.Policy, rate float64, touchFrac float64) ScenarioResult {
	const cache = 96
	res := ScenarioResult{Scenario: sc, TrueSize: cache}
	p := switchsim.TestSwitch(cache, policy)
	p.Name = sc.Name
	p.SoftwareCapacity = 5 * cache
	sw := switchsim.New(p, switchsim.WithSeed(sc.Seed))
	cd := NewChurnDriver(workload.Churn(workload.ChurnOptions{
		Flows: cache, Rate: rate, Duration: 5 * time.Minute,
		TouchFrac: touchFrac, Seed: sc.Seed + 1,
	}))
	e := probe.NewEngine(WrapBackground(probe.SimDevice{S: sw}, cd))

	sres, err := infer.ProbeSizes(e, infer.SizeOptions{Seed: sc.Seed + 2, MaxRules: 4 * cache})
	res.BackgroundApplied = cd.Applied()
	res.Expirations = sw.Stats().Expirations
	if err != nil {
		res.ErrText = fmt.Sprintf("size stage: %v", err)
		res.Verdict = res.ErrText
		return res
	}
	res.Estimate = sres.Levels[0].Size
	res.SizeError = relError(res.Estimate, cache)
	switch {
	case res.Expirations < sc.MinExpirations:
		res.Verdict = fmt.Sprintf("only %d expirations (floor %d, vacuous churn)", res.Expirations, sc.MinExpirations)
	case res.SizeError > sc.Tolerance:
		res.Verdict = fmt.Sprintf("estimate %d/%d err %.1f%% exceeds %.0f%% under churn",
			res.Estimate, cache, 100*res.SizeError, 100*sc.Tolerance)
	default:
		res.Pass = true
		res.Verdict = fmt.Sprintf("estimate %d/%d (err %.1f%%) with %d churn events, %d expirations",
			res.Estimate, cache, 100*res.SizeError, res.BackgroundApplied, res.Expirations)
	}
	return res
}

// runChurnPolicy runs policy inference on a FIFO cache under churn. FIFO
// keeps the oldest flows, so churn installs (younger than every probe flow)
// can never displace the measurement population — recovery must stay exact
// while hundreds of background rules expire.
func runChurnPolicy(sc Scenario) ScenarioResult {
	const cache = 64
	res := ScenarioResult{Scenario: sc, TrueSize: cache}
	p := switchsim.TestSwitch(cache, switchsim.PolicyFIFO)
	p.Name = sc.Name
	p.SoftwareCapacity = 4 * cache
	sw := switchsim.New(p, switchsim.WithSeed(sc.Seed))
	cd := NewChurnDriver(workload.Churn(workload.ChurnOptions{
		Flows: cache, Rate: 60, Duration: 10 * time.Minute,
		TouchFrac: 0.3, Seed: sc.Seed + 1,
	}))
	e := probe.NewEngine(WrapBackground(probe.SimDevice{S: sw}, cd))

	pres, err := infer.ProbePolicy(e, infer.PolicyOptions{CacheSize: cache, Seed: sc.Seed + 2})
	res.BackgroundApplied = cd.Applied()
	res.Expirations = sw.Stats().Expirations
	if err != nil {
		res.ErrText = fmt.Sprintf("policy stage: %v", err)
		res.Verdict = res.ErrText
		return res
	}
	res.Policy = pres.Policy.String()
	switch {
	case res.Expirations < sc.MinExpirations:
		res.Verdict = fmt.Sprintf("only %d expirations (floor %d, vacuous churn)", res.Expirations, sc.MinExpirations)
	case !pres.Policy.Equal(switchsim.PolicyFIFO):
		res.Verdict = fmt.Sprintf("recovered %q, want %q", res.Policy, switchsim.PolicyFIFO)
	default:
		res.Pass = true
		res.Verdict = fmt.Sprintf("recovered %q exactly with %d churn events, %d expirations",
			res.Policy, res.BackgroundApplied, res.Expirations)
	}
	return res
}

// runAltPolicy runs the full pipeline — size inference, then hard policy
// classification — against a cache-management policy outside the LEX model.
// The size stage must still converge (capacity is policy-independent); the
// classification stage must produce the pinned verdict: a typed
// ErrUnclassifiablePolicy rejection, or (when the policy's observable
// behaviour coincides with a LEX composite) exactly that composite.
func runAltPolicy(sc Scenario, policy switchsim.Policy, name string) ScenarioResult {
	const cache = 128
	res := ScenarioResult{Scenario: sc, TrueSize: cache}
	p := switchsim.TestSwitch(cache, policy)
	p.Name = name
	p.SoftwareCapacity = 3 * cache

	swSize := switchsim.New(p, switchsim.WithSeed(sc.Seed))
	sres, err := infer.ProbeSizes(probe.NewEngine(probe.SimDevice{S: swSize}),
		infer.SizeOptions{Seed: sc.Seed + 1, MaxRules: 8 * cache})
	if err != nil {
		res.ErrText = fmt.Sprintf("size stage: %v", err)
		res.Verdict = res.ErrText
		return res
	}
	res.Estimate = sres.Levels[0].Size
	res.SizeError = relError(res.Estimate, cache)
	if res.SizeError > sc.Tolerance {
		res.Verdict = fmt.Sprintf("size estimate %d/%d err %.1f%% exceeds %.0f%%",
			res.Estimate, cache, 100*res.SizeError, 100*sc.Tolerance)
		return res
	}

	swPol := switchsim.New(p, switchsim.WithSeed(sc.Seed+2))
	pres, err := infer.ClassifyPolicy(probe.NewEngine(probe.SimDevice{S: swPol}),
		infer.PolicyOptions{CacheSize: res.Estimate, Seed: sc.Seed + 3})
	if err != nil {
		if !errors.Is(err, infer.ErrUnclassifiablePolicy) {
			res.ErrText = fmt.Sprintf("policy stage: %v", err)
			res.Verdict = res.ErrText
			return res
		}
		res.TypedReject = true
		res.ErrText = err.Error()
	}
	if pres != nil {
		res.Policy = pres.Policy.String()
	}

	want := sc.ExpectPolicy
	switch {
	case want == "reject" && res.TypedReject:
		res.Pass = true
		res.Verdict = fmt.Sprintf("rejected with typed error as pinned: %s", res.ErrText)
	case want == "reject":
		res.Verdict = fmt.Sprintf("expected typed rejection, classified as %q", res.Policy)
	case res.TypedReject:
		res.Verdict = fmt.Sprintf("expected classification %q, got typed rejection: %s", want, res.ErrText)
	case "classify:"+res.Policy == want:
		res.Pass = true
		res.Verdict = fmt.Sprintf("classified as %q as pinned", res.Policy)
	default:
		res.Verdict = fmt.Sprintf("classified as %q, pinned verdict %q", res.Policy, want)
	}
	return res
}
