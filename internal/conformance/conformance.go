// Package conformance is the ground-truth regression gate for Tango's
// inference pipeline: it generates randomized switchsim profiles whose true
// properties (table layer sizes, LEX cache policies, cost curves) are
// known, runs the full probe→infer pipeline against each — optionally
// through the deterministic fault injector — and scores how accurately the
// pipeline recovered the truth.
//
// The clean-channel contract (asserted by the package tests and runnable
// via `tangobench -only conformance`): size estimates land within 10% of
// the configured capacity and cache policies are recovered exactly. Under
// injected faults the contract weakens to convergence: every run either
// produces estimates or fails with a typed fault error — never a hang or a
// panic — and is bit-for-bit reproducible from its seed.
package conformance

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/probe"
	"tango/internal/faults"
	"tango/internal/switchsim"
)

// Spec is one randomized ground-truth profile to be recovered.
type Spec struct {
	// Name labels the spec in results and tables.
	Name string
	// Profile is the generated switch configuration.
	Profile switchsim.Profile
	// CacheSize is the true capacity of the fastest layer.
	CacheSize int
	// Policy is the true cache policy; empty Keys for TCAM-only specs,
	// which skip the policy-recovery check.
	Policy switchsim.Policy
	// Seed drives the switch's latency draws and the probe RNGs.
	Seed int64
}

// GenerateSpecs draws n randomized specs from seed. Every fourth spec is a
// TCAM-only hierarchy (two observable layers: hardware and punt); the rest
// are policy-cache hierarchies (three layers) with a random LEX composite.
// Generation is a pure function of (n, seed).
func GenerateSpecs(n int, seed int64) []Spec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			capacity := 64 + rng.Intn(192)
			p := switchsim.TestSwitch(capacity, switchsim.Policy{})
			p.Kind = switchsim.ManageTCAMOnly
			p.SoftwareCapacity = 0
			p.Name = fmt.Sprintf("conf-%02d-tcam-%d", i, capacity)
			scaleCosts(&p, rng)
			specs = append(specs, Spec{
				Name: p.Name, Profile: p, CacheSize: capacity, Seed: rng.Int63(),
			})
			continue
		}
		cache := 48 + rng.Intn(81)
		policy := randomPolicy(rng)
		p := switchsim.TestSwitch(cache, policy)
		// A bounded software table makes the doubling phase terminate with a
		// genuine table-full rejection, keeping each spec's probe budget at
		// a few times the cache size.
		p.SoftwareCapacity = 3 * cache
		p.Name = fmt.Sprintf("conf-%02d-cache-%d", i, cache)
		scaleCosts(&p, rng)
		specs = append(specs, Spec{
			Name: p.Name, Profile: p, CacheSize: cache, Policy: policy, Seed: rng.Int63(),
		})
	}
	return specs
}

// randomPolicy draws an identifiable LEX composite: up to two non-serial
// prefix keys (traffic, priority — random subset, order, and direction)
// terminated by a serial key. The serial terminator is what makes the
// ground truth recoverable at all: switchsim's Better() breaks exhausted
// comparisons by insertion order, so a policy without a serial key would
// behave like one with an implicit insertion terminator and Algorithm 2
// would (correctly) report that longer ordering. Use-time keeps its
// recently-used direction — an anti-LRU cache is perturbed by the very act
// of measuring it, which violates the paper's MONOTONE observability
// assumption rather than our implementation.
func randomPolicy(rng *rand.Rand) switchsim.Policy {
	nonSerial := []switchsim.Attribute{switchsim.AttrTraffic, switchsim.AttrPriority}
	order := rng.Perm(len(nonSerial))
	var keys []switchsim.SortKey
	for _, idx := range order[:rng.Intn(len(nonSerial)+1)] {
		keys = append(keys, switchsim.SortKey{
			Attr:         nonSerial[idx],
			HighIsBetter: rng.Intn(2) == 0,
		})
	}
	serial := switchsim.SortKey{Attr: switchsim.AttrInsertion, HighIsBetter: rng.Intn(2) == 0}
	if rng.Intn(2) == 0 {
		serial = switchsim.SortKey{Attr: switchsim.AttrUseTime, HighIsBetter: true}
	}
	keys = append(keys, serial)
	return switchsim.Policy{Keys: keys}
}

// scaleCosts randomizes the profile's cost curves and latency tiers within
// bands that keep the tiers separable, so the harness also covers switches
// whose absolute timings differ from the calibrated vendor models.
func scaleCosts(p *switchsim.Profile, rng *rand.Rand) {
	scale := func(d time.Duration, lo, hi float64) time.Duration {
		return time.Duration(float64(d) * (lo + rng.Float64()*(hi-lo)))
	}
	p.FastPath.Mean = scale(p.FastPath.Mean, 0.7, 1.3)
	p.SlowPath.Mean = scale(p.SlowPath.Mean, 0.8, 1.4)
	p.ControlPath.Mean = scale(p.ControlPath.Mean, 0.9, 1.3)
	p.Costs.AddBase = scale(p.Costs.AddBase, 0.6, 1.8)
	p.Costs.ModBase = scale(p.Costs.ModBase, 0.6, 1.8)
	p.Costs.DelBase = scale(p.Costs.DelBase, 0.6, 1.8)
	p.Costs.ShiftUnit = scale(p.Costs.ShiftUnit, 0.5, 2.0)
}

// Options configures a conformance run.
type Options struct {
	// Faults enables the injector; the zero value probes a clean channel.
	Faults faults.Config
	// Retry is the probe engine's hardening policy. Zero selects
	// probe.DefaultRetry when faults are enabled, single-attempt otherwise.
	Retry probe.Retry
	// SizeTolerance is the accepted relative size error; 0 means 0.10.
	SizeTolerance float64
	// Workers caps the number of specs recovered concurrently; 0 means
	// GOMAXPROCS, 1 forces the old sequential behavior.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) tolerance() float64 {
	if o.SizeTolerance == 0 {
		return 0.10
	}
	return o.SizeTolerance
}

// Result is one spec's recovery outcome.
type Result struct {
	Spec Spec
	// Err is the pipeline failure, nil when both stages converged.
	Err error
	// FaultTyped reports that Err is a typed fault-path error (injected
	// fault, exhausted retry budget, or timeout) rather than an organic
	// failure — the "fail cleanly" half of the fault-regime contract.
	FaultTyped bool
	// SizeEstimate is the fastest layer's inferred size.
	SizeEstimate int
	// SizeError is |estimate−truth|/truth.
	SizeError float64
	// SizeOK reports SizeError within tolerance.
	SizeOK bool
	// InferredPolicy is Algorithm 2's answer (policy-cache specs only).
	InferredPolicy switchsim.Policy
	// PolicyChecked distinguishes specs where policy recovery applies.
	PolicyChecked bool
	// PolicyOK reports exact recovery of the true key sequence.
	PolicyOK bool
	// Resets counts injected switch resets observed by the emulator.
	Resets uint64
}

// String renders one result row.
func (r Result) String() string {
	if r.Err != nil {
		kind := "organic"
		if r.FaultTyped {
			kind = "typed fault"
		}
		return fmt.Sprintf("%s: error (%s): %v", r.Spec.Name, kind, r.Err)
	}
	s := fmt.Sprintf("%s: size %d/%d (err %.1f%%)", r.Spec.Name, r.SizeEstimate, r.Spec.CacheSize, 100*r.SizeError)
	if r.PolicyChecked {
		ok := "exact"
		if !r.PolicyOK {
			ok = "WRONG: " + r.InferredPolicy.String()
		}
		s += fmt.Sprintf(", policy %s (%s)", r.Spec.Policy, ok)
	}
	return s
}

// RunSpec executes the probe→infer pipeline against one spec. The policy
// stage consumes the size stage's estimate — the pipeline wiring of
// Figure 4 — and runs against a freshly built switch so leftover probe
// rules from the size stage cannot masquerade as cache residents.
func RunSpec(spec Spec, opts Options) Result {
	res := Result{Spec: spec}
	inj := faults.NewInjector(opts.Faults)
	retry := opts.Retry
	if retry.MaxAttempts <= 1 && inj != nil {
		retry = probe.DefaultRetry
	}
	engine := func(sw *switchsim.Switch) *probe.Engine {
		e := probe.NewEngine(faults.WrapDevice(probe.SimDevice{S: sw}, inj))
		e.Retry = retry
		return e
	}

	swSize := switchsim.New(spec.Profile, switchsim.WithSeed(spec.Seed))
	sres, err := infer.ProbeSizes(engine(swSize), infer.SizeOptions{
		Seed:     spec.Seed + 1,
		MaxRules: 8 * spec.CacheSize,
	})
	res.Resets += swSize.Stats().Resets
	if err != nil {
		res.Err = fmt.Errorf("size stage: %w", err)
		res.FaultTyped = faultTyped(err)
		return res
	}
	res.SizeEstimate = sres.Levels[0].Size
	res.SizeError = relError(res.SizeEstimate, spec.CacheSize)
	res.SizeOK = res.SizeError <= opts.tolerance()

	if spec.Profile.Kind != switchsim.ManagePolicyCache {
		return res
	}
	res.PolicyChecked = true
	swPol := switchsim.New(spec.Profile, switchsim.WithSeed(spec.Seed+2))
	pres, err := infer.ProbePolicy(engine(swPol), infer.PolicyOptions{
		CacheSize: res.SizeEstimate,
		Seed:      spec.Seed + 3,
	})
	res.Resets += swPol.Stats().Resets
	if err != nil {
		res.Err = fmt.Errorf("policy stage: %w", err)
		res.FaultTyped = faultTyped(err)
		return res
	}
	res.InferredPolicy = pres.Policy
	res.PolicyOK = pres.Policy.Equal(spec.Policy)
	return res
}

// ErrSpecPanic is the sentinel wrapped by SpecPanicError; match it with
// errors.Is.
var ErrSpecPanic = errors.New("conformance: spec panicked")

// SpecPanicError is the typed failure Run records when a spec's pipeline
// panics. A panicking spec used to kill the whole worker pool (taking the
// other in-flight specs' results with it); now it fails only its own row,
// preserving the harness's converge-or-typed-error contract.
type SpecPanicError struct {
	// Spec is the spec whose pipeline panicked.
	Spec Spec
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// Error implements error.
func (e *SpecPanicError) Error() string {
	return fmt.Sprintf("%v: %s: %v", ErrSpecPanic, e.Spec.Name, e.Value)
}

// Unwrap lets errors.Is(err, ErrSpecPanic) match.
func (e *SpecPanicError) Unwrap() error { return ErrSpecPanic }

// runSpec indirects RunSpec so the panic-containment regression test can
// substitute an implementation that panics on cue.
var runSpec = RunSpec

// runSpecSafe converts a panicking spec into a Result carrying a typed
// SpecPanicError. FaultTyped stays false: a panic is an organic bug in the
// pipeline, not a fault-path outcome.
func runSpecSafe(spec Spec, opts Options) (res Result) {
	defer func() {
		if v := recover(); v != nil {
			res = Result{Spec: spec, Err: &SpecPanicError{
				Spec:  spec,
				Value: v,
				Stack: string(debug.Stack()),
			}}
		}
	}()
	return runSpec(spec, opts)
}

// Run executes every spec, fanning out across Options.Workers goroutines.
// Each spec owns its switches, virtual clock, RNGs, and fault injector
// (RunSpec builds a fresh injector per spec), so concurrent recovery is
// bit-for-bit identical to the sequential order; results come back indexed
// by spec position regardless of completion order. A spec whose pipeline
// panics surfaces as a SpecPanicError result instead of crashing the pool.
func Run(specs []Spec, opts Options) []Result {
	out := make([]Result, len(specs))
	workers := opts.workers()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			out[i] = runSpecSafe(s, opts)
		}
		return out
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = runSpecSafe(specs[i], opts)
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// faultTyped classifies err as a typed fault-path failure: an injected
// fault, an exhausted retry budget, or anything carrying a Timeout or
// Transient marker (e.g. ofconn.ErrTimeout).
func faultTyped(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, faults.ErrInjected) || errors.Is(err, probe.ErrExhausted) {
		return true
	}
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	var tr interface{ Transient() bool }
	return errors.As(err, &tr)
}

func relError(est, actual int) float64 {
	if actual == 0 {
		return 0
	}
	d := est - actual
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(actual)
}

// Summary aggregates a run.
type Summary struct {
	Profiles      int
	Converged     int
	SizeWithinTol int
	PolicyChecked int
	PolicyExact   int
	TypedFaults   int
	OrganicFails  int
	MaxSizeError  float64
}

// Summarize folds results into a Summary.
func Summarize(rs []Result) Summary {
	var s Summary
	s.Profiles = len(rs)
	for _, r := range rs {
		if r.Err != nil {
			if r.FaultTyped {
				s.TypedFaults++
			} else {
				s.OrganicFails++
			}
			continue
		}
		s.Converged++
		if r.SizeOK {
			s.SizeWithinTol++
		}
		if r.SizeError > s.MaxSizeError {
			s.MaxSizeError = r.SizeError
		}
		if r.PolicyChecked {
			s.PolicyChecked++
			if r.PolicyOK {
				s.PolicyExact++
			}
		}
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("profiles=%d converged=%d size_ok=%d (max err %.1f%%) policy_ok=%d/%d typed_faults=%d organic_fails=%d",
		s.Profiles, s.Converged, s.SizeWithinTol, 100*s.MaxSizeError,
		s.PolicyExact, s.PolicyChecked, s.TypedFaults, s.OrganicFails)
}
