package conformance

import (
	"errors"
	"strings"
	"testing"
)

// TestRunContainsSpecPanic is the regression test for the fan-out panic
// fix: a spec whose pipeline panics must surface as a typed SpecPanicError
// on its own result row while every other spec in the pool still completes.
// Before the fix the panic escaped the worker goroutine and crashed the
// whole process.
func TestRunContainsSpecPanic(t *testing.T) {
	specs := GenerateSpecs(4, 99)
	const victim = 2

	orig := runSpec
	runSpec = func(spec Spec, opts Options) Result {
		if spec.Name == specs[victim].Name {
			panic("injected pipeline panic")
		}
		return orig(spec, opts)
	}
	defer func() { runSpec = orig }()

	// Workers > 1 exercises the goroutine pool path, where an uncontained
	// panic is fatal to the process rather than to the test.
	results := Run(specs, Options{Workers: 3})
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	for i, res := range results {
		if i == victim {
			if res.Err == nil {
				t.Fatalf("panicking spec %q produced no error", res.Spec.Name)
			}
			if !errors.Is(res.Err, ErrSpecPanic) {
				t.Errorf("panicking spec error = %v, want ErrSpecPanic", res.Err)
			}
			var pe *SpecPanicError
			if !errors.As(res.Err, &pe) {
				t.Fatalf("panicking spec error %T is not *SpecPanicError", res.Err)
			}
			if pe.Value != "injected pipeline panic" {
				t.Errorf("recovered value = %v, want the injected panic", pe.Value)
			}
			if !strings.Contains(pe.Stack, "panic_test.go") {
				t.Errorf("panic stack does not point at the panic site:\n%s", pe.Stack)
			}
			if res.FaultTyped {
				t.Error("a panic is an organic failure; FaultTyped must stay false")
			}
			continue
		}
		if res.Err != nil && errors.Is(res.Err, ErrSpecPanic) {
			t.Errorf("healthy spec %q contaminated with panic error: %v", res.Spec.Name, res.Err)
		}
	}
}

// TestRunContainsSpecPanicSerial covers the workers==1 serial loop, which
// routes through the same containment.
func TestRunContainsSpecPanicSerial(t *testing.T) {
	specs := GenerateSpecs(2, 100)

	orig := runSpec
	runSpec = func(spec Spec, opts Options) Result {
		if spec.Name == specs[0].Name {
			panic(errors.New("serial panic"))
		}
		return orig(spec, opts)
	}
	defer func() { runSpec = orig }()

	results := Run(specs, Options{Workers: 1})
	if !errors.Is(results[0].Err, ErrSpecPanic) {
		t.Errorf("serial path: err = %v, want ErrSpecPanic", results[0].Err)
	}
	if results[1].Err != nil && errors.Is(results[1].Err, ErrSpecPanic) {
		t.Errorf("serial path contaminated healthy spec: %v", results[1].Err)
	}
}
