package conformance

import (
	"time"

	"tango/internal/core/probe"
	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
	"tango/internal/workload"
)

// background.go interleaves adversarial or churn traffic with whatever
// engine is driving a device. A Background is stepped synchronously at the
// entry of every wrapped device operation — on the device's own (virtual)
// clock, before the foreground op runs — so schedules replay
// deterministically: the interleaving is a pure function of the foreground
// op sequence and the schedule, with no wall-clock goroutine races.

// Background is a traffic source running concurrently with the foreground
// engine. Step is called with the *unwrapped* device before each foreground
// operation; implementations apply whatever schedule entries are due and
// return. Step must not retain dev.
type Background interface {
	Step(dev probe.Device)
}

// WrapBackground returns a device that steps bg before every foreground
// operation. A nil bg returns dev unchanged. The wrapper forwards the
// optional TrafficSender, FrameDevice, Sleeper, Resetter, and LabeledDevice
// capabilities so the probe engine resolves the exact same fast paths as on
// the bare device — that equivalence is what the no-observer-effect
// differential test pins down.
func WrapBackground(dev probe.Device, bg Background) probe.Device {
	if bg == nil {
		return dev
	}
	b := &backgroundDevice{dev: dev, bg: bg}
	if f, ok := dev.(probe.FrameDevice); ok {
		return &backgroundFrameDevice{backgroundDevice: b, frames: f}
	}
	return b
}

// backgroundDevice steps the background source before each operation.
type backgroundDevice struct {
	dev probe.Device
	bg  Background
}

func (d *backgroundDevice) step() { d.bg.Step(d.dev) }

// FlowMod implements probe.Device.
func (d *backgroundDevice) FlowMod(fm *openflow.FlowMod) error {
	d.step()
	return d.dev.FlowMod(fm)
}

// SendProbe implements probe.Device.
func (d *backgroundDevice) SendProbe(data []byte, inPort uint16) (time.Duration, bool, error) {
	d.step()
	return d.dev.SendProbe(data, inPort)
}

// Now implements probe.Device. Reading the clock is not a foreground
// operation and does not advance the schedule.
func (d *backgroundDevice) Now() time.Time { return d.dev.Now() }

// SendTraffic implements probe.TrafficSender, delegating when the inner
// device can burst natively and degrading to per-packet sends otherwise —
// the same fallback the engine itself would apply.
func (d *backgroundDevice) SendTraffic(data []byte, inPort uint16, count int) error {
	d.step()
	if ts, ok := d.dev.(probe.TrafficSender); ok {
		return ts.SendTraffic(data, inPort, count)
	}
	for i := 0; i < count; i++ {
		if _, _, err := d.dev.SendProbe(data, inPort); err != nil {
			return err
		}
	}
	return nil
}

// Sleep delegates to the inner device's clock when it has one.
func (d *backgroundDevice) Sleep(dur time.Duration) {
	if s, ok := d.dev.(interface{ Sleep(time.Duration) }); ok {
		s.Sleep(dur)
	}
}

// Reset delegates to the inner device when it supports resets.
func (d *backgroundDevice) Reset() {
	if r, ok := d.dev.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// TelemetryLabel forwards the inner device's label.
func (d *backgroundDevice) TelemetryLabel() string {
	if l, ok := d.dev.(probe.LabeledDevice); ok {
		return l.TelemetryLabel()
	}
	return ""
}

// backgroundFrameDevice adds the FrameDevice fast path when the inner
// device has it, so wrapping never changes which send path the engine
// resolves.
type backgroundFrameDevice struct {
	*backgroundDevice
	frames probe.FrameDevice
}

// SendFrameN implements probe.FrameDevice.
func (d *backgroundFrameDevice) SendFrameN(f *packet.Frame, inPort uint16, size, n int) (time.Duration, bool, error) {
	d.step()
	return d.frames.SendFrameN(f, inPort, size, n)
}

// frameFor builds (and memoizes) the probe frame for a flow ID.
func frameFor(cache *map[uint32][]byte, id uint32) []byte {
	if *cache == nil {
		*cache = make(map[uint32][]byte)
	}
	if b, ok := (*cache)[id]; ok {
		return b
	}
	b, err := packet.BuildProbe(packet.ProbeSpec{FlowID: id})
	if err != nil {
		return nil
	}
	(*cache)[id] = b
	return b
}

// ChurnDriver replays a workload.Churn schedule against the device: events
// whose offset has passed on the device clock are applied, in order, at the
// entry of each foreground operation. Installs carry the schedule's idle
// and hard timeouts, driving the switch's lazy expiry sweep while the
// foreground runs.
type ChurnDriver struct {
	// Priority is the rule priority for churn installs (default 10 — below
	// every probing priority, so churn rules never shadow probe flows).
	Priority uint16

	events  []workload.ChurnEvent
	started bool
	start   time.Time
	next    int
	frames  map[uint32][]byte

	installs, touches, errs int
}

// NewChurnDriver wraps a schedule; an empty schedule (rate 0) returns nil,
// which WrapBackground treats as no background at all.
func NewChurnDriver(events []workload.ChurnEvent) *ChurnDriver {
	if len(events) == 0 {
		return nil
	}
	return &ChurnDriver{events: events}
}

// Step implements Background.
func (c *ChurnDriver) Step(dev probe.Device) {
	if !c.started {
		c.started, c.start = true, dev.Now()
	}
	elapsed := dev.Now().Sub(c.start)
	for c.next < len(c.events) && c.events[c.next].At <= elapsed {
		c.apply(dev, c.events[c.next])
		c.next++
	}
}

func (c *ChurnDriver) apply(dev probe.Device, ev workload.ChurnEvent) {
	switch ev.Kind {
	case workload.ChurnInstall:
		prio := c.Priority
		if prio == 0 {
			prio = 10
		}
		fm := &openflow.FlowMod{
			Command:     openflow.FlowAdd,
			Match:       flowtable.ExactProbeMatch(ev.Flow),
			Priority:    prio,
			IdleTimeout: ev.IdleTimeout,
			HardTimeout: ev.HardTimeout,
			Actions:     flowtable.Output(2),
		}
		if err := dev.FlowMod(fm); err != nil {
			c.errs++
			return
		}
		c.installs++
	case workload.ChurnTouch:
		data := frameFor(&c.frames, ev.Flow)
		if data == nil {
			c.errs++
			return
		}
		if _, _, err := dev.SendProbe(data, 1); err != nil {
			c.errs++
			return
		}
		c.touches++
	}
}

// Applied returns how many schedule events have executed (including ones
// that errored, e.g. installs rejected table-full mid-churn).
func (c *ChurnDriver) Applied() int { return c.next }

// Installs and Touches report the successfully applied event counts; Errs
// the events the device rejected.
func (c *ChurnDriver) Installs() int { return c.installs }

// Touches reports successfully applied data-plane touches.
func (c *ChurnDriver) Touches() int { return c.touches }

// Errs reports rejected events.
func (c *ChurnDriver) Errs() int { return c.errs }

// AttackDriver replays a workload.OverflowAttack schedule as background
// noise: every Every-th foreground operation applies a burst of attack ops.
// Unlike the attacker-in-the-foreground scenario (which interprets canary
// timings), the driver just executes the schedule — it models a concurrent
// tenant running the attack while Tango infers.
type AttackDriver struct {
	// Ops is the attack schedule.
	Ops []workload.AttackOp
	// Every is the number of foreground ops between bursts (default 4).
	Every int
	// Burst is the number of attack ops applied per active step (default 4).
	Burst int
	// Priority is the attack rules' priority (default 900).
	Priority uint16

	calls, next int
	frames      map[uint32][]byte

	installs, probes, errs int
}

// Step implements Background.
func (a *AttackDriver) Step(dev probe.Device) {
	if a.next >= len(a.Ops) {
		return
	}
	a.calls++
	every := a.Every
	if every <= 0 {
		every = 4
	}
	if a.calls%every != 0 {
		return
	}
	burst := a.Burst
	if burst <= 0 {
		burst = 4
	}
	for i := 0; i < burst && a.next < len(a.Ops); i++ {
		op := a.Ops[a.next]
		a.next++
		a.apply(dev, op)
	}
}

func (a *AttackDriver) apply(dev probe.Device, op workload.AttackOp) {
	switch op.Kind {
	case workload.AttackInstall:
		prio := a.Priority
		if prio == 0 {
			prio = 900
		}
		fm := &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    flowtable.ExactProbeMatch(op.Flow),
			Priority: prio,
			Actions:  flowtable.Output(2),
		}
		if err := dev.FlowMod(fm); err != nil {
			a.errs++
			return
		}
		a.installs++
	case workload.AttackProbe:
		data := frameFor(&a.frames, op.Flow)
		if data == nil {
			a.errs++
			return
		}
		if _, _, err := dev.SendProbe(data, 1); err != nil {
			a.errs++
			return
		}
		a.probes++
	}
}

// Applied returns how many attack ops have executed.
func (a *AttackDriver) Applied() int { return a.next }

// Errs reports rejected attack ops (e.g. installs bounced table-full).
func (a *AttackDriver) Errs() int { return a.errs }
