package conformance

import (
	"errors"
	"reflect"
	"testing"

	"tango/internal/core/probe"
	"tango/internal/faults"
	"tango/internal/switchsim"
)

// cleanSeed fixes the randomized profile generation for the regression
// gate; changing it invalidates the accuracy expectations below.
const cleanSeed = 1

// TestGenerateSpecsDeterministic pins generation to (n, seed).
func TestGenerateSpecsDeterministic(t *testing.T) {
	a := GenerateSpecs(24, cleanSeed)
	b := GenerateSpecs(24, cleanSeed)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenerateSpecs is not a pure function of (n, seed)")
	}
	if len(a) != 24 {
		t.Fatalf("got %d specs, want 24", len(a))
	}
	var tcamOnly, cache int
	for _, s := range a {
		switch s.Profile.Kind {
		case switchsim.ManageTCAMOnly:
			tcamOnly++
			if len(s.Policy.Keys) != 0 {
				t.Errorf("%s: TCAM-only spec carries a policy", s.Name)
			}
		case switchsim.ManagePolicyCache:
			cache++
			last := s.Policy.Keys[len(s.Policy.Keys)-1]
			if last.Attr != switchsim.AttrInsertion && last.Attr != switchsim.AttrUseTime {
				t.Errorf("%s: policy %v does not end in a serial attribute", s.Name, s.Policy)
			}
		}
	}
	if tcamOnly == 0 || cache == 0 {
		t.Fatalf("want a mix of kinds, got tcam=%d cache=%d", tcamOnly, cache)
	}
}

// TestCleanChannelAccuracy is the headline regression gate: with no faults,
// ≥20 randomized profiles recover sizes within 10% and policies exactly.
func TestCleanChannelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweep is slow")
	}
	specs := GenerateSpecs(24, cleanSeed)
	results := Run(specs, Options{})
	sum := Summarize(results)
	t.Logf("summary: %s", sum)
	for _, r := range results {
		t.Logf("  %s", r)
		if r.Err != nil {
			t.Errorf("%s: pipeline failed on a clean channel: %v", r.Spec.Name, r.Err)
			continue
		}
		if !r.SizeOK {
			t.Errorf("%s: size error %.1f%% exceeds 10%% (est %d, true %d)",
				r.Spec.Name, 100*r.SizeError, r.SizeEstimate, r.Spec.CacheSize)
		}
		if r.PolicyChecked && !r.PolicyOK {
			t.Errorf("%s: policy %v inferred as %v", r.Spec.Name, r.Spec.Policy, r.InferredPolicy)
		}
	}
}

// TestEachFaultKindConverges runs a subset of specs under each fault kind
// at a fixed seed: the pipeline must either converge or fail with a typed
// fault error — never hang, panic, or fail organically.
func TestEachFaultKindConverges(t *testing.T) {
	specs := GenerateSpecs(6, cleanSeed)
	kinds := []struct {
		name string
		cfg  faults.Config
	}{
		{"drop", faults.Config{Seed: 11, Drop: 0.02}},
		{"delay", faults.Config{Seed: 12, Delay: 0.05}},
		{"duplicate", faults.Config{Seed: 13, Duplicate: 0.02}},
		{"reorder", faults.Config{Seed: 14, Reorder: 0.02}},
		{"reset", faults.Config{Seed: 15, Reset: 0.0005}},
		{"overflow", faults.Config{Seed: 16, Overflow: 0.01}},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			results := Run(specs, Options{Faults: k.cfg})
			sum := Summarize(results)
			t.Logf("%s: %s", k.name, sum)
			if sum.OrganicFails > 0 {
				for _, r := range results {
					if r.Err != nil && !r.FaultTyped {
						t.Errorf("%s: untyped failure under %s faults: %v", r.Spec.Name, k.name, r.Err)
					}
				}
			}
			if sum.Converged == 0 && sum.TypedFaults == 0 {
				t.Fatalf("no result at all under %s faults", k.name)
			}
		})
	}
}

// TestFaultRunDeterministic asserts the whole suite replays bit-for-bit
// from its seeds, faults included.
func TestFaultRunDeterministic(t *testing.T) {
	specs := GenerateSpecs(4, cleanSeed)
	opts := Options{Faults: faults.Config{Seed: 7, Drop: 0.02, Delay: 0.03, Duplicate: 0.01}}
	a := Run(specs, opts)
	b := Run(specs, opts)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("run %d diverged:\n  first:  %s\n  second: %s", i, a[i], b[i])
		}
	}
}

// TestRetryDisabledSurfacesTypedErrors checks the fail-cleanly path: with
// retry explicitly reduced to one attempt, injected drops must surface as
// typed fault errors rather than hangs or organic failures.
func TestRetryDisabledSurfacesTypedErrors(t *testing.T) {
	specs := GenerateSpecs(2, cleanSeed)
	results := Run(specs, Options{
		Faults: faults.Config{Seed: 3, Drop: 0.2},
		Retry:  probe.Retry{MaxAttempts: 1},
	})
	for _, r := range results {
		if r.Err == nil {
			continue // survived by luck of the draw
		}
		if !r.FaultTyped {
			t.Errorf("%s: error not typed: %v", r.Spec.Name, r.Err)
		}
		if _, ok := faults.IsFault(r.Err); !ok && !errors.Is(r.Err, probe.ErrExhausted) {
			t.Errorf("%s: error chain lost the fault: %v", r.Spec.Name, r.Err)
		}
	}
}
