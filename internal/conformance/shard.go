package conformance

import "tango/internal/workload"

// shard.go adapts the background-driver machinery to the sharded scale
// harness. Backgrounds are stateful and single-goroutine by design (they
// step synchronously at foreground-op entry on the device's own clock), so
// a sharded run gives every shard its *own* driver over its *own* slice of
// the fleet schedule rather than sharing one driver behind a lock — locking
// would serialise the shards and, worse, make the interleaving depend on
// wall-clock scheduling, breaking the serial-vs-sharded differential gates.

// ShardSchedule partitions a fleet-wide churn schedule across n shards by
// flow ID (ev.Flow mod n), preserving event order within each shard. The
// partition is flow-disjoint: every flow's full history — install, touches,
// the timeouts that drive expiry — lands on exactly one shard, so a
// per-shard ChurnDriver stepped against that shard's device replays the
// same per-flow sequence the single serial driver would. Changing n
// redistributes flows over devices but never reorders or splits a flow's
// history, which is what keeps sharded runs bit-identical per device at
// every shard count that assigns devices the same way.
//
// n <= 1 returns the schedule unsplit (one shard).
func ShardSchedule(events []workload.ChurnEvent, n int) [][]workload.ChurnEvent {
	if n <= 1 {
		return [][]workload.ChurnEvent{events}
	}
	shards := make([][]workload.ChurnEvent, n)
	for _, ev := range events {
		i := int(ev.Flow % uint32(n))
		shards[i] = append(shards[i], ev)
	}
	return shards
}
