// Package cluster implements one-dimensional clustering of round-trip-time
// samples. The Tango inference engine clusters probe RTTs to discover how
// many flow-table layers a switch has (§5.2 of the paper: "We cluster the RTT
// to determine the number of flow table layers — each cluster corresponds to
// one layer").
//
// The algorithm is a two-stage hybrid:
//
//  1. Gap splitting: sort the samples and cut at every inter-sample gap that
//     is large relative to the sample spread. Well-separated latency tiers
//     (fast path vs. slow path vs. control path differ by 5–10x) produce
//     unambiguous gaps, and this stage also chooses the number of clusters.
//  2. 1-D k-means (Lloyd's algorithm) refinement seeded with the gap-split
//     centroids, which cleans up boundaries when tiers have wide, skewed
//     latency distributions.
package cluster

import (
	"errors"
	"math"
	"slices"
	"sort"
)

// Cluster describes one latency tier found in a sample set.
type Cluster struct {
	// Mean is the centroid of the cluster.
	Mean float64
	// Min and Max bound the members of the cluster.
	Min, Max float64
	// Count is the number of samples assigned to the cluster.
	Count int
}

// Result is the outcome of clustering: tiers sorted by ascending mean and an
// assignment from each input sample index to its tier index.
type Result struct {
	Clusters   []Cluster
	Assignment []int
}

// Options tunes Find. The zero value selects sensible defaults.
type Options struct {
	// MaxClusters caps how many tiers may be reported. Zero means 4 (TCAM,
	// kernel, user space, control path is the deepest hierarchy the switch
	// model produces).
	MaxClusters int
	// GapFactor is the multiple of the mean inter-sample gap above which a
	// gap becomes a cluster boundary. Zero means 8.
	GapFactor float64
	// MinSeparation is an absolute floor for boundary gaps, guarding against
	// splitting clusters of near-identical samples whose mean gap is ~0.
	// Zero means 10% of the full sample range.
	MinSeparation float64
	// KMeansIterations bounds the refinement loop. Zero means 32.
	KMeansIterations int
}

func (o Options) withDefaults(span float64) Options {
	if o.MaxClusters == 0 {
		o.MaxClusters = 4
	}
	if o.GapFactor == 0 {
		o.GapFactor = 8
	}
	if o.MinSeparation == 0 {
		o.MinSeparation = span * 0.10
	}
	if o.KMeansIterations == 0 {
		o.KMeansIterations = 32
	}
	return o
}

// ErrEmpty is returned when no samples are supplied.
var ErrEmpty = errors.New("cluster: no samples")

// Find clusters xs into latency tiers. The returned tiers are sorted by
// ascending mean; Assignment[i] gives the tier of xs[i].
func Find(xs []float64, opts Options) (Result, error) {
	if len(xs) == 0 {
		return Result{}, ErrEmpty
	}
	ss := make([]sample, len(xs))
	for i, v := range xs {
		ss[i] = sample{v, i}
	}
	sortSamples(ss)

	span := ss[len(ss)-1].v - ss[0].v
	opts = opts.withDefaults(span)

	// Stage 1: find boundaries at large gaps.
	boundaries := gapBoundaries(ss, opts)

	// Build initial centroids from the gap segments.
	centroids := make([]float64, 0, len(boundaries)+1)
	start := 0
	for _, b := range append(boundaries, len(ss)) {
		var sum float64
		for i := start; i < b; i++ {
			sum += ss[i].v
		}
		centroids = append(centroids, sum/float64(b-start))
		start = b
	}

	// Stage 2: k-means refinement on the sorted values.
	values := make([]float64, len(ss))
	for i, s := range ss {
		values[i] = s.v
	}
	assignSorted := kmeans1D(values, centroids, opts.KMeansIterations)

	// Assemble clusters and map assignments back to input order.
	k := len(centroids)
	clusters := make([]Cluster, k)
	for i := range clusters {
		clusters[i].Min = math.Inf(1)
		clusters[i].Max = math.Inf(-1)
	}
	assignment := make([]int, len(xs))
	sums := make([]float64, k)
	for i, s := range ss {
		c := assignSorted[i]
		assignment[s.idx] = c
		cl := &clusters[c]
		cl.Count++
		sums[c] += s.v
		if s.v < cl.Min {
			cl.Min = s.v
		}
		if s.v > cl.Max {
			cl.Max = s.v
		}
	}
	// Drop empty clusters (k-means can abandon a centroid) and renumber.
	remap := make([]int, k)
	kept := clusters[:0]
	for i, cl := range clusters {
		if cl.Count == 0 {
			remap[i] = -1
			continue
		}
		cl.Mean = sums[i] / float64(cl.Count)
		remap[i] = len(kept)
		kept = append(kept, cl)
	}
	for i, a := range assignment {
		assignment[i] = remap[a]
	}

	// Validation pass: k-means happily bisects a unimodal tier (a tail
	// outlier can seed a spurious boundary which Lloyd's algorithm then
	// drags to the median). Merge adjacent clusters that are not separated
	// like genuine latency tiers: tiers differ multiplicatively (≥1.3×)
	// or by a clear absolute gap.
	kept, assignment = mergeIndistinct(kept, assignment, opts)
	return Result{Clusters: kept, Assignment: assignment}, nil
}

// mergeIndistinct repeatedly merges adjacent clusters (sorted by mean)
// whose boundary gap is below MinSeparation and whose means differ by less
// than 1.3×, rewriting assignments accordingly.
func mergeIndistinct(clusters []Cluster, assignment []int, opts Options) ([]Cluster, []int) {
	for {
		merged := false
		for i := 0; i+1 < len(clusters); i++ {
			lo, hi := clusters[i], clusters[i+1]
			gap := hi.Min - lo.Max
			ratio := math.Inf(1)
			if lo.Mean > 0 {
				ratio = hi.Mean / lo.Mean
			}
			if gap >= opts.MinSeparation || ratio >= 1.3 {
				continue
			}
			total := lo.Count + hi.Count
			clusters[i] = Cluster{
				Mean:  (lo.Mean*float64(lo.Count) + hi.Mean*float64(hi.Count)) / float64(total),
				Min:   lo.Min,
				Max:   hi.Max,
				Count: total,
			}
			clusters = append(clusters[:i+1], clusters[i+2:]...)
			for j, a := range assignment {
				if a > i {
					assignment[j] = a - 1
				}
			}
			merged = true
			break
		}
		if !merged {
			return clusters, assignment
		}
	}
}

// sample pairs a value with its position in the caller's input slice.
type sample struct {
	v   float64
	idx int
}

// sortSamples orders samples by value. The generic sort avoids the
// reflection-based swapper of sort.Slice, which showed up in inference
// profiles (clustering sorts thousands of RTTs per level). Ties carry equal
// values, so the unstable order never changes boundaries or assignments.
func sortSamples(ss []sample) {
	slices.SortFunc(ss, func(a, b sample) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
}

// gapBoundaries returns sorted-sample indices where a new cluster begins,
// capped so at most opts.MaxClusters segments result.
func gapBoundaries(ss []sample, opts Options) []int {
	if len(ss) < 2 {
		return nil
	}
	n := len(ss)
	gaps := make([]float64, n-1)
	var total float64
	for i := 0; i+1 < n; i++ {
		gaps[i] = ss[i+1].v - ss[i].v
		total += gaps[i]
	}
	meanGap := total / float64(n-1)

	type bigGap struct {
		pos int
		g   float64
	}
	var big []bigGap
	for i, g := range gaps {
		if g <= 0 || g <= meanGap*opts.GapFactor {
			continue
		}
		// Latency tiers are separated multiplicatively (slow path is several
		// times the fast path), so a gap also qualifies when the next sample
		// jumps by a large ratio even if the absolute gap is small relative
		// to the full span.
		lo, hi := ss[i].v, ss[i+1].v
		if g >= opts.MinSeparation || (lo > 0 && hi >= lo*1.3) {
			big = append(big, bigGap{i + 1, g})
		}
	}
	// Keep only the largest MaxClusters-1 boundaries.
	sort.Slice(big, func(a, b int) bool { return big[a].g > big[b].g })
	if len(big) > opts.MaxClusters-1 {
		big = big[:opts.MaxClusters-1]
	}
	out := make([]int, len(big))
	for i, b := range big {
		out[i] = b.pos
	}
	sort.Ints(out)
	return out
}

// kmeans1D runs Lloyd's algorithm on sorted values with the given initial
// centroids and returns per-value cluster assignments. Because values are
// sorted and centroids stay sorted, assignment reduces to threshold search.
func kmeans1D(values, centroids []float64, iters int) []int {
	k := len(centroids)
	assign := make([]int, len(values))
	// Accumulator scratch is hoisted out of the iteration loop; Lloyd's
	// refinement otherwise allocates two fresh slices per pass.
	sums := make([]float64, k)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		sort.Float64s(centroids)
		changed := false
		c := 0
		for i, v := range values {
			for c+1 < k && math.Abs(centroids[c+1]-v) < math.Abs(centroids[c]-v) {
				c++
			}
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		clear(sums)
		clear(counts)
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for j := 0; j < k; j++ {
			if counts[j] > 0 {
				centroids[j] = sums[j] / float64(counts[j])
			}
		}
	}
	return assign
}

// FindK clusters xs into exactly k tiers with plain Lloyd's k-means seeded
// by quantiles, skipping the gap-splitting model-selection stage. It exists
// for the ablation benchmarks: against well-separated latency tiers it
// matches Find only when k happens to equal the true tier count, which is
// precisely the information Find's gap stage supplies.
func FindK(xs []float64, k int) (Result, error) {
	if len(xs) == 0 {
		return Result{}, ErrEmpty
	}
	if k < 1 {
		k = 1
	}
	ss := make([]sample, len(xs))
	for i, v := range xs {
		ss[i] = sample{v, i}
	}
	sortSamples(ss)
	values := make([]float64, len(ss))
	for i, s := range ss {
		values[i] = s.v
	}
	centroids := make([]float64, k)
	for j := 0; j < k; j++ {
		centroids[j] = values[(2*j+1)*len(values)/(2*k)]
	}
	assignSorted := kmeans1D(values, centroids, 64)
	clusters := make([]Cluster, k)
	for i := range clusters {
		clusters[i].Min = math.Inf(1)
		clusters[i].Max = math.Inf(-1)
	}
	sums := make([]float64, k)
	assignment := make([]int, len(xs))
	for i, s := range ss {
		c := assignSorted[i]
		assignment[s.idx] = c
		clusters[c].Count++
		sums[c] += s.v
		if s.v < clusters[c].Min {
			clusters[c].Min = s.v
		}
		if s.v > clusters[c].Max {
			clusters[c].Max = s.v
		}
	}
	kept := clusters[:0]
	remap := make([]int, k)
	for i, cl := range clusters {
		if cl.Count == 0 {
			remap[i] = -1
			continue
		}
		cl.Mean = sums[i] / float64(cl.Count)
		remap[i] = len(kept)
		kept = append(kept, cl)
	}
	for i, a := range assignment {
		assignment[i] = remap[a]
	}
	return Result{Clusters: kept, Assignment: assignment}, nil
}

// Within reports whether value v falls inside cluster c, extended by slack on
// either side. The probing engine uses this to decide whether a measured RTT
// still belongs to a previously identified latency tier.
func Within(c Cluster, v, slack float64) bool {
	return v >= c.Min-slack && v <= c.Max+slack
}

// Nearest returns the index of the cluster whose mean is closest to v.
// It returns -1 for an empty cluster list.
func Nearest(clusters []Cluster, v float64) int {
	best, bestD := -1, math.Inf(1)
	for i, c := range clusters {
		if d := math.Abs(c.Mean - v); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
