package cluster

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// tiered generates n samples around each of the given tier centres with ±5%
// jitter, mimicking fast/slow/control path RTT populations.
func tiered(rng *rand.Rand, centres []float64, n int) ([]float64, []int) {
	var xs []float64
	var truth []int
	for tier, c := range centres {
		for i := 0; i < n; i++ {
			xs = append(xs, c*(0.95+rng.Float64()*0.10))
			truth = append(truth, tier)
		}
	}
	// Shuffle to ensure Find does not depend on input order.
	rng.Shuffle(len(xs), func(i, j int) {
		xs[i], xs[j] = xs[j], xs[i]
		truth[i], truth[j] = truth[j], truth[i]
	})
	return xs, truth
}

func TestFindThreeTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Fast path 0.6ms, slow path 3.7ms, control path 7.5ms — Switch #1 tiers.
	xs, truth := tiered(rng, []float64{0.665, 3.7, 7.5}, 200)
	res, err := Find(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 3 {
		t.Fatalf("got %d clusters, want 3: %+v", len(res.Clusters), res.Clusters)
	}
	for i, a := range res.Assignment {
		if a != truth[i] {
			t.Fatalf("sample %d assigned tier %d, want %d", i, a, truth[i])
		}
	}
	if !sort.SliceIsSorted(res.Clusters, func(a, b int) bool {
		return res.Clusters[a].Mean < res.Clusters[b].Mean
	}) {
		t.Fatal("clusters not sorted by mean")
	}
}

func TestFindTwoTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Switch #2: fast path 0.4ms, control path 8ms.
	xs, _ := tiered(rng, []float64{0.4, 8.0}, 500)
	res, err := Find(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(res.Clusters))
	}
}

func TestFindSingleTier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, _ := tiered(rng, []float64{3.0}, 300)
	res, err := Find(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("got %d clusters, want 1: %+v", len(res.Clusters), res.Clusters)
	}
	if res.Clusters[0].Count != 300 {
		t.Fatalf("count = %d, want 300", res.Clusters[0].Count)
	}
}

func TestFindConstantSamples(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	res, err := Find(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || res.Clusters[0].Mean != 5 {
		t.Fatalf("constant samples: %+v", res.Clusters)
	}
}

func TestFindSingleSample(t *testing.T) {
	res, err := Find([]float64{1.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || res.Clusters[0].Count != 1 {
		t.Fatalf("single sample: %+v", res.Clusters)
	}
}

func TestFindEmpty(t *testing.T) {
	if _, err := Find(nil, Options{}); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestFindMaxClustersCap(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs, _ := tiered(rng, []float64{1, 10, 100, 1000, 10000}, 50)
	res, err := Find(xs, Options{MaxClusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) > 3 {
		t.Fatalf("got %d clusters, cap was 3", len(res.Clusters))
	}
}

func TestFindFourTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, _ := tiered(rng, []float64{0.3, 2.0, 12, 60}, 120)
	res, err := Find(xs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 4 {
		t.Fatalf("got %d clusters, want 4: %+v", len(res.Clusters), res.Clusters)
	}
}

func TestWithin(t *testing.T) {
	c := Cluster{Min: 1, Max: 2}
	if !Within(c, 1.5, 0) || !Within(c, 0.95, 0.1) || Within(c, 2.5, 0.1) {
		t.Fatal("Within boundary logic wrong")
	}
}

func TestNearest(t *testing.T) {
	cs := []Cluster{{Mean: 1}, {Mean: 10}, {Mean: 100}}
	if got := Nearest(cs, 12); got != 1 {
		t.Fatalf("Nearest = %d, want 1", got)
	}
	if got := Nearest(nil, 12); got != -1 {
		t.Fatalf("Nearest(nil) = %d, want -1", got)
	}
}

// Property: every sample is assigned to exactly one reported cluster, cluster
// counts sum to the sample count, and each sample lies within its cluster's
// [Min, Max].
func TestFindInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		res, err := Find(xs, Options{})
		if err != nil {
			return false
		}
		total := 0
		for _, c := range res.Clusters {
			total += c.Count
		}
		if total != len(xs) {
			return false
		}
		for i, a := range res.Assignment {
			if a < 0 || a >= len(res.Clusters) {
				return false
			}
			c := res.Clusters[a]
			if xs[i] < c.Min || xs[i] > c.Max {
				return false
			}
		}
		// Cluster ranges must not overlap when sorted by mean.
		for i := 1; i < len(res.Clusters); i++ {
			if res.Clusters[i].Min < res.Clusters[i-1].Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
