package structlayout

import (
	"reflect"
	"testing"
	"unsafe"
)

type packed struct {
	a uint64
	b int64
	c []byte
	d uint32
	e uint16
	f uint16
	g bool
	h bool
}

type wasteful struct {
	g bool
	a uint64
	e uint16
	c []byte
	h bool
	d uint32
}

func TestCheckAcceptsPackedStruct(t *testing.T) {
	if err := Check(packed{}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsWastefulStruct(t *testing.T) {
	if err := Check(wasteful{}); err == nil {
		t.Fatalf("wasteful struct (size %d) passed the gate", unsafe.Sizeof(wasteful{}))
	}
}

func TestCheckRejectsNonStruct(t *testing.T) {
	if err := Check(42); err == nil {
		t.Fatal("non-struct value passed the gate")
	}
}

func TestOptimalMatchesHandPacking(t *testing.T) {
	// The wasteful struct packs to: 8 (a) + 24 (c, slice header) + 4 (d) +
	// 2 (e) + 1 (g) + 1 (h) = 40 bytes with no padding at all.
	if got := Optimal(reflect.TypeOf(wasteful{})); got != 40 {
		t.Fatalf("Optimal = %d, want 40", got)
	}
	// A struct needing tail padding: 8 + 1 rounds up to 16.
	type tail struct {
		a uint64
		b bool
	}
	if got := Optimal(reflect.TypeOf(tail{})); got != unsafe.Sizeof(tail{}) {
		t.Fatalf("Optimal = %d, want %d", got, unsafe.Sizeof(tail{}))
	}
}
