// Package structlayout is a dependency-free, reflect-based stand-in for
// the x/tools fieldalignment analyzer: it computes the minimal size a
// struct could have if its fields were reordered, and reports the padding
// wasted by the declared order. Hot-path packages gate their per-entry
// structs on zero waste in tests, so a field added in the wrong place
// fails CI instead of silently inflating every arena slot.
package structlayout

import (
	"fmt"
	"reflect"
	"sort"
)

// sizeOf lays out fields (as size/align pairs) in the given order and
// returns the resulting struct size: each field is placed at its next
// aligned offset, and the total is rounded up to the struct alignment.
func sizeOf(fields []reflect.Type, structAlign uintptr) uintptr {
	var off uintptr
	for _, f := range fields {
		if a := uintptr(f.Align()); a > 0 {
			off = (off + a - 1) &^ (a - 1)
		}
		off += f.Size()
	}
	if structAlign > 0 {
		off = (off + structAlign - 1) &^ (structAlign - 1)
	}
	return off
}

// Optimal returns the minimal size of struct type t under field
// reordering. Go alignments are powers of two and every type's size is a
// multiple of its alignment, so placing fields in descending alignment
// order leaves no internal padding — that greedy order is optimal.
func Optimal(t reflect.Type) uintptr {
	if t.Kind() != reflect.Struct {
		return t.Size()
	}
	fields := make([]reflect.Type, t.NumField())
	for i := range fields {
		fields[i] = t.Field(i).Type
	}
	sort.SliceStable(fields, func(i, j int) bool {
		if fields[i].Align() != fields[j].Align() {
			return fields[i].Align() > fields[j].Align()
		}
		return fields[i].Size() > fields[j].Size()
	})
	return sizeOf(fields, uintptr(t.Align()))
}

// Check returns an error when v's struct type is larger than a reordering
// of its fields would be — i.e. when the declared field order wastes
// padding bytes. v is a value of the struct type (typically a zero value).
func Check(v interface{}) error {
	t := reflect.TypeOf(v)
	if t.Kind() != reflect.Struct {
		return fmt.Errorf("structlayout: %v is not a struct", t)
	}
	actual, optimal := t.Size(), Optimal(t)
	if actual > optimal {
		return fmt.Errorf("structlayout: %v is %d bytes but could be %d: field order wastes %d padding bytes",
			t, actual, optimal, actual-optimal)
	}
	return nil
}
