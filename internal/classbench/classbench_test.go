package classbench

import (
	"testing"
	"testing/quick"
)

func TestGenerateCounts(t *testing.T) {
	rs := Generate(Options{NumRules: 500, Families: 6, MaxDepth: 20, Seed: 1})
	if len(rs.Rules) != 500 {
		t.Fatalf("rules = %d, want 500", len(rs.Rules))
	}
	if got := rs.NumTopoPriorities(); got != 20 {
		t.Fatalf("topo priorities = %d, want 20 (max chain depth)", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Options{NumRules: 100, Families: 3, MaxDepth: 10, Seed: 7})
	b := Generate(Options{NumRules: 100, Families: 3, MaxDepth: 10, Seed: 7})
	for i := range a.Rules {
		if !a.Rules[i].Same(&b.Rules[i]) {
			t.Fatalf("rule %d differs across identical seeds", i)
		}
	}
}

func TestTopologicalPrioritiesValid(t *testing.T) {
	rs := Generate(Options{NumRules: 400, Families: 5, MaxDepth: 25, Seed: 2})
	prios := rs.TopologicalPriorities(100)
	if i, j := rs.ValidatePriorities(prios); i >= 0 {
		t.Fatalf("topological priorities violate constraint %d > %d", i, j)
	}
	// Minimality: distinct priority count equals level count.
	distinct := map[uint16]bool{}
	for _, p := range prios {
		distinct[p] = true
	}
	if len(distinct) != rs.NumTopoPriorities() {
		t.Fatalf("distinct = %d, levels = %d", len(distinct), rs.NumTopoPriorities())
	}
}

func TestRPrioritiesValidAndUnique(t *testing.T) {
	rs := Generate(Options{NumRules: 400, Families: 5, MaxDepth: 25, Seed: 3})
	prios := rs.RPriorities(100)
	if i, j := rs.ValidatePriorities(prios); i >= 0 {
		t.Fatalf("R priorities violate constraint %d > %d", i, j)
	}
	seen := map[uint16]bool{}
	for _, p := range prios {
		if seen[p] {
			t.Fatal("R priorities not unique")
		}
		seen[p] = true
	}
}

func TestDependenciesAreForward(t *testing.T) {
	rs := Generate(Options{NumRules: 200, Families: 4, MaxDepth: 15, Seed: 4})
	for i, js := range rs.Dependencies() {
		for _, j := range js {
			if j <= i {
				t.Fatalf("dependency %d -> %d not forward", i, j)
			}
			if !rs.Rules[i].Overlaps(&rs.Rules[j]) {
				t.Fatalf("dependency %d -> %d without overlap", i, j)
			}
		}
	}
}

func TestLevelsConsistent(t *testing.T) {
	rs := Generate(Options{NumRules: 300, Families: 5, MaxDepth: 18, Seed: 5})
	levels := rs.Levels()
	for i, js := range rs.Dependencies() {
		for _, j := range js {
			if levels[i] <= levels[j] {
				t.Fatalf("level[%d]=%d not above level[%d]=%d", i, levels[i], j, levels[j])
			}
		}
	}
}

func TestTable2Configs(t *testing.T) {
	wantFlows := []int{829, 989, 972}
	wantTopo := []int{52, 38, 33} // file 1 saturates at the prefix-nesting cap
	for i, cfg := range Table2Configs {
		rs := Generate(cfg)
		if len(rs.Rules) != wantFlows[i] {
			t.Errorf("file %d: flows = %d, want %d", i+1, len(rs.Rules), wantFlows[i])
		}
		if got := rs.NumTopoPriorities(); got != wantTopo[i] {
			t.Errorf("file %d: topo priorities = %d, want %d", i+1, got, wantTopo[i])
		}
		// R priorities are 1-1 with flows.
		prios := rs.RPriorities(100)
		seen := map[uint16]bool{}
		for _, p := range prios {
			seen[p] = true
		}
		if len(seen) != len(rs.Rules) {
			t.Errorf("file %d: R priorities %d not 1-1 with %d flows", i+1, len(seen), len(rs.Rules))
		}
	}
}

// Property: both priority assignments always satisfy every dependency for
// arbitrary generator parameters.
func TestPriorityAssignmentsAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw, famRaw, depthRaw uint8) bool {
		opts := Options{
			NumRules: int(nRaw%150) + 20,
			Families: int(famRaw%5) + 1,
			MaxDepth: int(depthRaw%30) + 2,
			Seed:     seed,
		}
		rs := Generate(opts)
		if i, _ := rs.ValidatePriorities(rs.TopologicalPriorities(10)); i >= 0 {
			return false
		}
		if i, _ := rs.ValidatePriorities(rs.RPriorities(10)); i >= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
