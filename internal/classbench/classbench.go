// Package classbench generates synthetic access-control rule sets in the
// spirit of the ClassBench suite the paper's §7.1 uses: rules with
// realistic overlap structure, from which dependency constraints and the
// two priority assignments of the evaluation — minimal "Topological"
// priorities and 1-1 "R" priorities (derived with the Maple-style
// algorithm) — are computed.
//
// Substitution note (DESIGN.md): the original ClassBench seed files are not
// redistributable; this generator reproduces what the experiments consume —
// a rule list in precedence order, its overlap-induced dependency DAG, and
// the two priority assignments — with counts parameterised to match
// Table 2.
package classbench

import (
	"fmt"
	"math/rand"
	"net/netip"

	"tango/internal/flowtable"
	"tango/internal/packet"
)

// Options parameterises Generate.
type Options struct {
	// NumRules is the total rule count.
	NumRules int
	// Families is the number of nested-rule families (each family is a
	// chain of increasingly general rules, the source of deep dependency
	// structure in ACLs).
	Families int
	// MaxDepth caps family chain depth; the deepest family determines the
	// number of distinct topological priorities. Capped internally at 52
	// (the maximum nesting depth expressible over src/dst prefixes plus
	// protocol and port wildcards).
	MaxDepth int
	// Seed drives all randomness.
	Seed int64
}

// RuleSet is a generated ACL: Rules[0] has the highest match precedence.
type RuleSet struct {
	Name  string
	Rules []flowtable.Match

	deps   [][]int // deps[i] = later rules that i must out-prioritise
	levels []int
}

// maxFamilyDepth is the deepest expressible nesting chain.
const maxFamilyDepth = 52

// Generate builds a rule set.
func Generate(opts Options) *RuleSet {
	if opts.NumRules <= 0 {
		opts.NumRules = 1000
	}
	if opts.Families <= 0 {
		opts.Families = 8
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 30
	}
	if opts.MaxDepth > maxFamilyDepth {
		opts.MaxDepth = maxFamilyDepth
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rs := &RuleSet{Name: fmt.Sprintf("classbench(seed=%d,n=%d)", opts.Seed, opts.NumRules)}

	// Family chains: family f's rule k is strictly nested inside rule k+1
	// (more specific ⇒ earlier precedence). The first family gets exactly
	// MaxDepth rules so the level count is deterministic.
	remaining := opts.NumRules
	for f := 0; f < opts.Families && remaining > 0; f++ {
		depth := opts.MaxDepth
		if f > 0 {
			depth = 2 + rng.Intn(opts.MaxDepth-1)
		}
		if depth > remaining {
			depth = remaining
		}
		srcHost := [4]byte{byte(10 + f), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		dstHost := [4]byte{byte(100 + f), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		for k := depth - 1; k >= 0; k-- { // most specific first
			rs.Rules = append(rs.Rules, familyRule(srcHost, dstHost, k))
			remaining--
		}
	}

	// Independent filler rules: near-disjoint host pairs in a high block.
	for remaining > 0 {
		m := flowtable.Match{
			Fields: flowtable.FieldNwSrc | flowtable.FieldNwDst,
			NwSrc:  hostPrefix([4]byte{192, byte(rng.Intn(64)), byte(rng.Intn(256)), byte(rng.Intn(256))}, 32),
			NwDst:  hostPrefix([4]byte{203, byte(rng.Intn(64)), byte(rng.Intn(256)), byte(rng.Intn(256))}, 32),
		}
		rs.Rules = append(rs.Rules, m)
		remaining--
	}

	// Shuffle precedence order across families so dependency levels
	// interleave like a real ACL (stable nesting order is preserved by
	// the dependency analysis, not by position).
	rng.Shuffle(len(rs.Rules), func(i, j int) {
		rs.Rules[i], rs.Rules[j] = rs.Rules[j], rs.Rules[i]
	})

	rs.analyze()
	return rs
}

// familyRule builds nesting step k of a family: larger k ⇒ more general.
// The specialisation order (most specific to most general) peels off:
// transport ports, protocol, then dst prefix bits 32→8, then src 32→8.
func familyRule(srcHost, dstHost [4]byte, k int) flowtable.Match {
	m := flowtable.Match{Fields: flowtable.FieldNwSrc | flowtable.FieldNwDst}
	// Depth positions: k=0 most specific.
	srcBits, dstBits := 32, 32
	extras := 0
	switch {
	case k <= 2:
		extras = 3 - k // 3,2,1 extra constrained fields at k=0,1,2
	case k <= 26:
		dstBits = 32 - (k - 2) // 31 … 8
	default:
		dstBits = 8
		srcBits = 32 - (k - 26) // 31 … 8 at k=27…50; k=51 ⇒ src /7
		if srcBits < 1 {
			srcBits = 1
		}
	}
	m.NwSrc = hostPrefix(srcHost, srcBits)
	m.NwDst = hostPrefix(dstHost, dstBits)
	if extras >= 1 {
		m.Fields |= flowtable.FieldNwProto
		m.NwProto = packet.IPProtocolTCP
	}
	if extras >= 2 {
		m.Fields |= flowtable.FieldTpDst
		m.TpDst = 443
	}
	if extras >= 3 {
		m.Fields |= flowtable.FieldTpSrc
		m.TpSrc = 1234
	}
	return m
}

func hostPrefix(host [4]byte, bits int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4(host), bits).Masked()
}

// analyze builds the dependency lists and topological levels.
// Precedence rule: for i < j with overlapping matches, rule i (earlier in
// the ACL, first-match-wins) must carry strictly higher priority than j.
func (rs *RuleSet) analyze() {
	n := len(rs.Rules)
	rs.deps = make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rs.Rules[i].Overlaps(&rs.Rules[j]) {
				rs.deps[i] = append(rs.deps[i], j)
			}
		}
	}
	// level[i] = length of the longest out-prioritisation chain below i.
	rs.levels = make([]int, n)
	for i := n - 1; i >= 0; i-- {
		max := -1
		for _, j := range rs.deps[i] {
			if rs.levels[j] > max {
				max = rs.levels[j]
			}
		}
		rs.levels[i] = max + 1
	}
}

// Dependencies returns, for each rule index, the later rule indices it must
// out-prioritise. The slice is shared; callers must not mutate it.
func (rs *RuleSet) Dependencies() [][]int { return rs.deps }

// Levels returns each rule's dependency depth (0 = no rule below it).
func (rs *RuleSet) Levels() []int { return rs.levels }

// NumTopoPriorities returns the number of distinct topological priorities
// (the "Topological Priorities" column of Table 2).
func (rs *RuleSet) NumTopoPriorities() int {
	max := 0
	for _, l := range rs.levels {
		if l > max {
			max = l
		}
	}
	return max + 1
}

// TopologicalPriorities assigns the minimal priority set: priority = base +
// dependency level, so overlapping rules are strictly ordered while
// independent rules share priorities (cheap same-priority installs).
func (rs *RuleSet) TopologicalPriorities(base uint16) []uint16 {
	out := make([]uint16, len(rs.Rules))
	for i, l := range rs.levels {
		out[i] = base + uint16(l)
	}
	return out
}

// RPriorities assigns unique 1-1 priorities consistent with the dependency
// constraints ("R Priorities" of Table 2): rules are ranked by (level,
// index) and receive strictly increasing priorities in that order.
func (rs *RuleSet) RPriorities(base uint16) []uint16 {
	n := len(rs.Rules)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort ascending by level; ties by descending ACL index so that within
	// one level later (more general) rules get lower priorities.
	sortByLevel(idx, rs.levels)
	out := make([]uint16, n)
	for rank, i := range idx {
		out[i] = base + uint16(rank)
	}
	return out
}

// sortByLevel sorts idx ascending by level, breaking ties by descending
// index (insertion-stable for our purposes).
func sortByLevel(idx []int, levels []int) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if levels[a] > levels[b] || (levels[a] == levels[b] && a < b) {
				idx[j-1], idx[j] = b, a
			} else {
				break
			}
		}
	}
}

// ValidatePriorities verifies that prios satisfies every dependency
// constraint (earlier overlapping rule strictly higher priority). It
// returns the first violated pair, or (-1, -1).
func (rs *RuleSet) ValidatePriorities(prios []uint16) (int, int) {
	for i, js := range rs.deps {
		for _, j := range js {
			if prios[i] <= prios[j] {
				return i, j
			}
		}
	}
	return -1, -1
}

// Table2Configs are the three generator configurations standing in for the
// paper's three ClassBench files, parameterised to match Table 2's flow
// counts. Chain depth is capped by what IPv4 prefix nesting can express, so
// file 1's topological priority count saturates at 52 rather than the
// paper's 64 (recorded in EXPERIMENTS.md).
var Table2Configs = []Options{
	{NumRules: 829, Families: 10, MaxDepth: 52, Seed: 101},
	{NumRules: 989, Families: 9, MaxDepth: 38, Seed: 202},
	{NumRules: 972, Families: 9, MaxDepth: 33, Seed: 303},
}
