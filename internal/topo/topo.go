// Package topo provides the network-topology substrate for Tango's
// network-wide experiments (§7.2): graph and path primitives, the triangle
// hardware testbed, a reconstruction of Google's B4 inter-datacenter
// backbone, max-min fair traffic-engineering allocation, and the diffing of
// two allocations into per-switch rule changes with the reverse-path update
// dependencies consistent updates require.
package topo

import (
	"fmt"
	"sort"
)

// Graph is an undirected graph of named switches with per-link capacities.
type Graph struct {
	nodes map[string]bool
	adj   map[string]map[string]float64 // adj[a][b] = capacity
	// sorted caches the Nodes() result; nil means stale. The TE diff path
	// calls Nodes per allocation round, so rebuilding the sorted slice on
	// every call dominated MaxMinFair profiles at fleet scale.
	sorted []string
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{nodes: map[string]bool{}, adj: map[string]map[string]float64{}}
}

// AddNode adds a switch.
func (g *Graph) AddNode(name string) {
	if !g.nodes[name] {
		g.nodes[name] = true
		g.adj[name] = map[string]float64{}
		g.sorted = nil
	}
}

// AddLink adds a bidirectional link with the given capacity.
func (g *Graph) AddLink(a, b string, capacity float64) {
	g.AddNode(a)
	g.AddNode(b)
	g.adj[a][b] = capacity
	g.adj[b][a] = capacity
	g.sorted = nil
}

// RemoveLink deletes the link (the LF scenario's failure event).
func (g *Graph) RemoveLink(a, b string) {
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.sorted = nil
}

// HasLink reports whether a-b is up.
func (g *Graph) HasLink(a, b string) bool {
	_, ok := g.adj[a][b]
	return ok
}

// Capacity returns the link's capacity (0 if absent).
func (g *Graph) Capacity(a, b string) float64 { return g.adj[a][b] }

// Nodes returns switch names in sorted order. The slice is cached between
// mutations (AddNode/AddLink/RemoveLink invalidate it) and shared across
// calls — callers must treat it as read-only.
func (g *Graph) Nodes() []string {
	if g.sorted == nil {
		g.sorted = make([]string, 0, len(g.nodes))
		for n := range g.nodes {
			g.sorted = append(g.sorted, n)
		}
		sort.Strings(g.sorted)
	}
	return g.sorted
}

// Neighbors returns a node's neighbours in sorted order.
func (g *Graph) Neighbors(n string) []string {
	out := make([]string, 0, len(g.adj[n]))
	for m := range g.adj[n] {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ShortestPath returns a minimum-hop path from src to dst (inclusive),
// or nil when unreachable. Ties break toward lexicographically smaller
// neighbours, keeping routing deterministic.
func (g *Graph) ShortestPath(src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range g.Neighbors(n) {
			if _, seen := prev[m]; seen {
				continue
			}
			prev[m] = n
			if m == dst {
				return rebuild(prev, src, dst)
			}
			queue = append(queue, m)
		}
	}
	return nil
}

func rebuild(prev map[string]string, src, dst string) []string {
	var rev []string
	for n := dst; n != src; n = prev[n] {
		rev = append(rev, n)
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// KShortestPaths returns up to k loop-free paths from src to dst, shortest
// first, found by iterative link pruning (an edge-disjoint-leaning
// approximation sufficient for two-path TE).
func (g *Graph) KShortestPaths(src, dst string, k int) [][]string {
	var paths [][]string
	pruned := NewGraph()
	for _, n := range g.Nodes() {
		pruned.AddNode(n)
	}
	for _, a := range g.Nodes() {
		for b, c := range g.adj[a] {
			if a < b {
				pruned.AddLink(a, b, c)
			}
		}
	}
	for len(paths) < k {
		p := pruned.ShortestPath(src, dst)
		if p == nil {
			break
		}
		paths = append(paths, p)
		for i := 0; i+1 < len(p); i++ {
			pruned.RemoveLink(p[i], p[i+1])
		}
	}
	return paths
}

// Triangle returns the three-switch hardware testbed of §7.2: s1, s2, s3
// fully connected.
func Triangle() *Graph {
	g := NewGraph()
	g.AddLink("s1", "s2", 10)
	g.AddLink("s2", "s3", 10)
	g.AddLink("s1", "s3", 10)
	return g
}

// B4 returns a reconstruction of Google's 12-site B4 backbone from the
// SIGCOMM'13 paper's topology figure. Exact link capacities were not
// published; uniform capacities are used, which preserves everything the
// TE experiment consumes (path diversity and shared-bottleneck structure).
func B4() *Graph {
	g := NewGraph()
	links := [][2]string{
		{"b4-01", "b4-02"}, {"b4-01", "b4-03"}, {"b4-02", "b4-03"},
		{"b4-02", "b4-05"}, {"b4-03", "b4-04"}, {"b4-03", "b4-05"},
		{"b4-04", "b4-05"}, {"b4-04", "b4-06"}, {"b4-05", "b4-07"},
		{"b4-06", "b4-07"}, {"b4-06", "b4-08"}, {"b4-07", "b4-09"},
		{"b4-08", "b4-09"}, {"b4-08", "b4-10"}, {"b4-09", "b4-11"},
		{"b4-10", "b4-11"}, {"b4-10", "b4-12"}, {"b4-11", "b4-12"},
		{"b4-07", "b4-08"},
	}
	for _, l := range links {
		g.AddLink(l[0], l[1], 100)
	}
	return g
}

// Demand is one end-to-end traffic demand.
type Demand struct {
	FlowID uint32
	Src    string
	Dst    string
	// Rate is the requested rate; max-min allocation may grant less.
	Rate float64
}

// Allocation maps a flow to its assigned path (node list, inclusive).
type Allocation map[uint32][]string

// MaxMinFair performs progressive-filling max-min fair allocation of the
// demands over their given paths (the B4 paper's allocation style): all
// unfrozen flows grow at one rate; when a link saturates, its flows freeze.
// It returns each flow's granted rate.
func MaxMinFair(g *Graph, paths Allocation, demands []Demand) map[uint32]float64 {
	type link struct{ a, b string }
	norm := func(a, b string) link {
		if a > b {
			a, b = b, a
		}
		return link{a, b}
	}
	// Residual capacity and link membership.
	residual := map[link]float64{}
	members := map[link][]uint32{}
	active := map[uint32]bool{}
	rates := map[uint32]float64{}
	want := map[uint32]float64{}
	for _, d := range demands {
		p := paths[d.FlowID]
		if len(p) < 2 {
			continue
		}
		active[d.FlowID] = true
		want[d.FlowID] = d.Rate
		for i := 0; i+1 < len(p); i++ {
			l := norm(p[i], p[i+1])
			if _, ok := residual[l]; !ok {
				residual[l] = g.Capacity(p[i], p[i+1])
			}
			members[l] = append(members[l], d.FlowID)
		}
	}
	for len(active) > 0 {
		// Smallest per-flow headroom across links and demand caps.
		delta := -1.0
		for l, cap := range residual {
			n := 0
			for _, f := range members[l] {
				if active[f] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if h := cap / float64(n); delta < 0 || h < delta {
				delta = h
			}
		}
		for f := range active {
			if h := want[f] - rates[f]; h < delta || delta < 0 {
				delta = h
			}
		}
		if delta <= 1e-12 {
			delta = 0
		}
		// Apply the increment.
		for f := range active {
			rates[f] += delta
		}
		for l := range residual {
			n := 0
			for _, f := range members[l] {
				if active[f] {
					n++
				}
			}
			residual[l] -= delta * float64(n)
		}
		// Freeze satisfied flows and flows on saturated links.
		for f := range active {
			if rates[f] >= want[f]-1e-12 {
				delete(active, f)
			}
		}
		for l, cap := range residual {
			if cap <= 1e-9 {
				for _, f := range members[l] {
					delete(active, f)
				}
			}
		}
		if delta == 0 {
			break
		}
	}
	return rates
}

// ChangeKind labels a rule change produced by allocation diffing.
type ChangeKind int

// Rule-change kinds.
const (
	ChangeAdd ChangeKind = iota
	ChangeMod
	ChangeDel
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case ChangeAdd:
		return "add"
	case ChangeMod:
		return "mod"
	default:
		return "del"
	}
}

// RuleChange is one per-switch operation required to move a flow from its
// old path to its new one. DependsOn is the index (within the returned
// slice) of the change that must complete first, or -1: new-path rules
// install from destination to source so a packet never meets a missing
// next hop, and the source switch flips last.
type RuleChange struct {
	FlowID    uint32
	Switch    string
	Kind      ChangeKind
	DependsOn int
}

// DiffAssignments computes the rule changes turning oldA into newA.
// Per flow: switches only on the new path get adds, switches on both paths
// get mods, switches only on the old path get dels (issued after the
// source flip, depending on it). Add/mod chains run reverse-path.
func DiffAssignments(oldA, newA Allocation) []RuleChange {
	var out []RuleChange
	flows := make([]uint32, 0, len(newA))
	for f := range newA {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		oldP, newP := oldA[f], newA[f]
		if samePath(oldP, newP) {
			continue
		}
		onOld := map[string]bool{}
		for _, s := range oldP {
			onOld[s] = true
		}
		onNew := map[string]bool{}
		for _, s := range newP {
			onNew[s] = true
		}
		// Reverse-path add/mod chain (skip the destination, which needs no
		// forwarding rule).
		prev := -1
		for i := len(newP) - 2; i >= 0; i-- {
			sw := newP[i]
			kind := ChangeAdd
			if onOld[sw] {
				kind = ChangeMod
			}
			out = append(out, RuleChange{FlowID: f, Switch: sw, Kind: kind, DependsOn: prev})
			prev = len(out) - 1
		}
		// Old-path-only switches clean up after the source flip.
		for i := 0; i+1 < len(oldP); i++ {
			sw := oldP[i]
			if !onNew[sw] {
				out = append(out, RuleChange{FlowID: f, Switch: sw, Kind: ChangeDel, DependsOn: prev})
			}
		}
	}
	return out
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate sanity-checks a path against the graph.
func (g *Graph) Validate(path []string) error {
	for i := 0; i+1 < len(path); i++ {
		if !g.HasLink(path[i], path[i+1]) {
			return fmt.Errorf("topo: no link %s-%s", path[i], path[i+1])
		}
	}
	return nil
}
