package topo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTriangle(t *testing.T) {
	g := Triangle()
	if len(g.Nodes()) != 3 {
		t.Fatalf("nodes = %v", g.Nodes())
	}
	p := g.ShortestPath("s1", "s2")
	if len(p) != 2 {
		t.Fatalf("direct path = %v", p)
	}
	g.RemoveLink("s1", "s2")
	p = g.ShortestPath("s1", "s2")
	if len(p) != 3 || p[1] != "s3" {
		t.Fatalf("reroute path = %v, want via s3", p)
	}
}

func TestNodesCacheInvalidation(t *testing.T) {
	g := NewGraph()
	g.AddLink("b", "a", 1)
	first := g.Nodes()
	if len(first) != 2 || first[0] != "a" || first[1] != "b" {
		t.Fatalf("Nodes = %v, want [a b]", first)
	}
	// Repeated calls without mutation return the cached slice.
	second := g.Nodes()
	if &first[0] != &second[0] {
		t.Fatal("Nodes rebuilt the slice without a mutation")
	}
	// AddNode of a brand-new name invalidates.
	g.AddNode("c")
	if got := g.Nodes(); len(got) != 3 || got[2] != "c" {
		t.Fatalf("Nodes after AddNode = %v", got)
	}
	// AddLink and RemoveLink invalidate too (conservatively: RemoveLink
	// never changes the node set, AddLink only via AddNode).
	g.AddLink("c", "d", 1)
	if got := g.Nodes(); len(got) != 4 || got[3] != "d" {
		t.Fatalf("Nodes after AddLink = %v", got)
	}
	g.RemoveLink("c", "d")
	if got := g.Nodes(); len(got) != 4 {
		t.Fatalf("Nodes after RemoveLink = %v", got)
	}
	// Re-adding an existing node must not disturb the cache's correctness.
	g.AddNode("a")
	if got := g.Nodes(); len(got) != 4 || got[0] != "a" {
		t.Fatalf("Nodes after duplicate AddNode = %v", got)
	}
}

func TestB4Connectivity(t *testing.T) {
	g := B4()
	nodes := g.Nodes()
	if len(nodes) != 12 {
		t.Fatalf("B4 nodes = %d, want 12", len(nodes))
	}
	edges := 0
	for _, a := range nodes {
		edges += len(g.Neighbors(a))
	}
	if edges/2 != 19 {
		t.Fatalf("B4 links = %d, want 19", edges/2)
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a == b {
				continue
			}
			p := g.ShortestPath(a, b)
			if p == nil {
				t.Fatalf("no path %s -> %s", a, b)
			}
			if err := g.Validate(p); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestShortestPathUnreachableAndSelf(t *testing.T) {
	g := NewGraph()
	g.AddNode("a")
	g.AddNode("b")
	if p := g.ShortestPath("a", "b"); p != nil {
		t.Fatalf("path across partition: %v", p)
	}
	if p := g.ShortestPath("a", "a"); len(p) != 1 {
		t.Fatalf("self path = %v", p)
	}
}

func TestKShortestPaths(t *testing.T) {
	g := Triangle()
	paths := g.KShortestPaths("s1", "s2", 3)
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2", paths)
	}
	if len(paths[0]) != 2 || len(paths[1]) != 3 {
		t.Fatalf("path lengths: %v", paths)
	}
}

func TestMaxMinFairEqualShare(t *testing.T) {
	// Two flows across one 10-unit link: 5 each.
	g := NewGraph()
	g.AddLink("a", "b", 10)
	paths := Allocation{1: {"a", "b"}, 2: {"a", "b"}}
	demands := []Demand{
		{FlowID: 1, Src: "a", Dst: "b", Rate: 100},
		{FlowID: 2, Src: "a", Dst: "b", Rate: 100},
	}
	rates := MaxMinFair(g, paths, demands)
	if math.Abs(rates[1]-5) > 1e-9 || math.Abs(rates[2]-5) > 1e-9 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestMaxMinFairSmallDemandFreesCapacity(t *testing.T) {
	// Flow 1 wants only 2; flow 2 should get the remaining 8.
	g := NewGraph()
	g.AddLink("a", "b", 10)
	paths := Allocation{1: {"a", "b"}, 2: {"a", "b"}}
	demands := []Demand{
		{FlowID: 1, Src: "a", Dst: "b", Rate: 2},
		{FlowID: 2, Src: "a", Dst: "b", Rate: 100},
	}
	rates := MaxMinFair(g, paths, demands)
	if math.Abs(rates[1]-2) > 1e-9 || math.Abs(rates[2]-8) > 1e-9 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestMaxMinFairMultiLink(t *testing.T) {
	// Flow 1 uses a-b (cap 10) and b-c (cap 4): bottlenecked at b-c shared
	// with flow 2.
	g := NewGraph()
	g.AddLink("a", "b", 10)
	g.AddLink("b", "c", 4)
	paths := Allocation{1: {"a", "b", "c"}, 2: {"b", "c"}}
	demands := []Demand{
		{FlowID: 1, Src: "a", Dst: "c", Rate: 100},
		{FlowID: 2, Src: "b", Dst: "c", Rate: 100},
	}
	rates := MaxMinFair(g, paths, demands)
	if math.Abs(rates[1]-2) > 1e-9 || math.Abs(rates[2]-2) > 1e-9 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestDiffAssignmentsReroute(t *testing.T) {
	oldA := Allocation{7: {"s1", "s2"}}
	newA := Allocation{7: {"s1", "s3", "s2"}}
	changes := DiffAssignments(oldA, newA)
	// New path switches needing rules: s3 (add), s1 (mod). Reverse path:
	// s3 first, then s1 depending on it. No old-only switches.
	if len(changes) != 2 {
		t.Fatalf("changes = %+v", changes)
	}
	if changes[0].Switch != "s3" || changes[0].Kind != ChangeAdd || changes[0].DependsOn != -1 {
		t.Fatalf("first change = %+v", changes[0])
	}
	if changes[1].Switch != "s1" || changes[1].Kind != ChangeMod || changes[1].DependsOn != 0 {
		t.Fatalf("second change = %+v", changes[1])
	}
}

func TestDiffAssignmentsWithCleanup(t *testing.T) {
	oldA := Allocation{1: {"a", "x", "b"}}
	newA := Allocation{1: {"a", "y", "b"}}
	changes := DiffAssignments(oldA, newA)
	// y add (dep -1), a mod (dep add), x del (dep a's mod).
	if len(changes) != 3 {
		t.Fatalf("changes = %+v", changes)
	}
	var del *RuleChange
	for i := range changes {
		if changes[i].Kind == ChangeDel {
			del = &changes[i]
		}
	}
	if del == nil || del.Switch != "x" {
		t.Fatalf("missing del on x: %+v", changes)
	}
	if changes[del.DependsOn].Switch != "a" {
		t.Fatalf("del depends on %+v, want the source flip", changes[del.DependsOn])
	}
}

func TestDiffAssignmentsNoChange(t *testing.T) {
	a := Allocation{1: {"a", "b"}}
	if changes := DiffAssignments(a, Allocation{1: {"a", "b"}}); len(changes) != 0 {
		t.Fatalf("changes on identical allocation: %+v", changes)
	}
}

// Property: max-min rates never exceed demand, never go negative, and no
// link is oversubscribed.
func TestMaxMinFairInvariants(t *testing.T) {
	g := B4()
	nodes := g.Nodes()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		demands := make([]Demand, n)
		paths := Allocation{}
		rng := newRng(seed)
		for i := 0; i < n; i++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			if src == dst {
				dst = nodes[(rng.Intn(len(nodes)-1)+1+indexOf(nodes, src))%len(nodes)]
			}
			demands[i] = Demand{FlowID: uint32(i), Src: src, Dst: dst, Rate: float64(rng.Intn(50) + 1)}
			paths[uint32(i)] = g.ShortestPath(src, dst)
		}
		rates := MaxMinFair(g, paths, demands)
		load := map[[2]string]float64{}
		for _, d := range demands {
			r := rates[d.FlowID]
			if r < -1e-9 || r > d.Rate+1e-9 {
				return false
			}
			p := paths[d.FlowID]
			for i := 0; i+1 < len(p); i++ {
				a, b := p[i], p[i+1]
				if a > b {
					a, b = b, a
				}
				load[[2]string{a, b}] += r
			}
		}
		for l, v := range load {
			if v > g.Capacity(l[0], l[1])+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// newRng is a tiny helper keeping the property test self-contained.
func newRng(seed int64) *prng { return &prng{state: uint64(seed)*2654435761 + 1} }

// prng is a minimal xorshift generator (math/rand would be fine too; this
// keeps the quick.Check closure allocation-free).
type prng struct{ state uint64 }

func (p *prng) Intn(n int) int {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(n))
}
