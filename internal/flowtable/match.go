// Package flowtable implements OpenFlow flow-table semantics: header-field
// matches with wildcards and prefixes, priority-ordered rule tables, and the
// TCAM capacity model (single-wide / double-wide / adaptive modes) that
// explains the diverse table sizes of Table 1 in the Tango paper.
package flowtable

import (
	"fmt"
	"net/netip"
	"strings"

	"tango/internal/packet"
)

// Field is a bit flag identifying one matchable header field.
type Field uint16

// Matchable fields. A Match only constrains the fields present in its Fields
// set; everything else is wildcarded, as in OpenFlow 1.0.
const (
	FieldInPort Field = 1 << iota
	FieldDlSrc
	FieldDlDst
	FieldDlType
	FieldNwSrc
	FieldNwDst
	FieldNwProto
	FieldTpSrc
	FieldTpDst
)

// l2Fields and l3Fields partition the fields into the layers that determine
// TCAM entry width.
const (
	l2Fields = FieldDlSrc | FieldDlDst | FieldDlType
	l3Fields = FieldNwSrc | FieldNwDst | FieldNwProto | FieldTpSrc | FieldTpDst
)

// Width classifies a match by the TCAM entry width it needs.
type Width int

// Entry widths.
const (
	// WidthL2 matches only L2 headers (single-wide TCAM entry).
	WidthL2 Width = iota
	// WidthL3 matches only L3/L4 headers (single-wide TCAM entry).
	WidthL3
	// WidthL2L3 matches both layers and needs a double-wide entry.
	WidthL2L3
	// WidthNone constrains neither layer (e.g. in-port-only or match-all).
	WidthNone
)

// String implements fmt.Stringer.
func (w Width) String() string {
	switch w {
	case WidthL2:
		return "L2"
	case WidthL3:
		return "L3"
	case WidthL2L3:
		return "L2+L3"
	default:
		return "none"
	}
}

// Match is a header-space predicate. The zero value matches every frame.
// Field order is packing-conscious (the pointer-aligned prefixes lead),
// gated by the structlayout test: matches are embedded in every rule and
// scanned on lookup misses.
type Match struct {
	NwSrc netip.Prefix
	NwDst netip.Prefix
	// Fields records which of the other members are significant.
	Fields  Field
	InPort  uint16
	DlSrc   packet.MAC
	DlDst   packet.MAC
	DlType  packet.EtherType
	NwProto packet.IPProtocol
	TpSrc   uint16
	TpDst   uint16
}

// Has reports whether field f is constrained by the match.
func (m *Match) Has(f Field) bool { return m.Fields&f != 0 }

// Width returns the TCAM entry width required for this match.
func (m *Match) Width() Width {
	l2 := m.Fields&l2Fields != 0
	l3 := m.Fields&l3Fields != 0
	switch {
	case l2 && l3:
		return WidthL2L3
	case l2:
		return WidthL2
	case l3:
		return WidthL3
	default:
		return WidthNone
	}
}

// Matches reports whether frame f (arriving on inPort) satisfies the match.
func (m *Match) Matches(f *packet.Frame, inPort uint16) bool {
	if m.Has(FieldInPort) && m.InPort != inPort {
		return false
	}
	if m.Has(FieldDlSrc) && m.DlSrc != f.Eth.Src {
		return false
	}
	if m.Has(FieldDlDst) && m.DlDst != f.Eth.Dst {
		return false
	}
	if m.Has(FieldDlType) && m.DlType != f.Eth.EtherType {
		return false
	}
	if m.Fields&l3Fields != 0 && !f.HasIPv4 {
		return false
	}
	if m.Has(FieldNwSrc) && !m.NwSrc.Contains(f.IP.Src) {
		return false
	}
	if m.Has(FieldNwDst) && !m.NwDst.Contains(f.IP.Dst) {
		return false
	}
	if m.Has(FieldNwProto) && m.NwProto != f.IP.Protocol {
		return false
	}
	if m.Fields&(FieldTpSrc|FieldTpDst) != 0 {
		var src, dst uint16
		switch {
		case f.HasTCP:
			src, dst = f.TCP.SrcPort, f.TCP.DstPort
		case f.HasUDP:
			src, dst = f.UDP.SrcPort, f.UDP.DstPort
		default:
			return false
		}
		if m.Has(FieldTpSrc) && m.TpSrc != src {
			return false
		}
		if m.Has(FieldTpDst) && m.TpDst != dst {
			return false
		}
	}
	return true
}

// MatchesRest verifies the non-address constraints of an exact-indexed match
// against frame f. The caller must already have established that
// FrameKey(f) equals ExactKey(m): key equality pins nw_src and nw_dst (both
// /32) and implies the frame is IPv4, so only the remaining fields need
// checking. Splitting those off skips the netip prefix containment tests
// that dominate Matches on probing workloads.
func (m *Match) MatchesRest(f *packet.Frame, inPort uint16) bool {
	if m.Has(FieldInPort) && m.InPort != inPort {
		return false
	}
	if m.Has(FieldDlSrc) && m.DlSrc != f.Eth.Src {
		return false
	}
	if m.Has(FieldDlDst) && m.DlDst != f.Eth.Dst {
		return false
	}
	if m.Has(FieldDlType) && m.DlType != f.Eth.EtherType {
		return false
	}
	if m.Has(FieldNwProto) && m.NwProto != f.IP.Protocol {
		return false
	}
	if m.Fields&(FieldTpSrc|FieldTpDst) != 0 {
		var src, dst uint16
		switch {
		case f.HasTCP:
			src, dst = f.TCP.SrcPort, f.TCP.DstPort
		case f.HasUDP:
			src, dst = f.UDP.SrcPort, f.UDP.DstPort
		default:
			return false
		}
		if m.Has(FieldTpSrc) && m.TpSrc != src {
			return false
		}
		if m.Has(FieldTpDst) && m.TpDst != dst {
			return false
		}
	}
	return true
}

// Overlaps reports whether some frame could satisfy both matches. It is
// conservative in the right direction for dependency analysis: two matches
// that disagree on any exactly matched field do not overlap; otherwise they
// are assumed to overlap.
func (m *Match) Overlaps(o *Match) bool {
	both := m.Fields & o.Fields
	if both&FieldInPort != 0 && m.InPort != o.InPort {
		return false
	}
	if both&FieldDlSrc != 0 && m.DlSrc != o.DlSrc {
		return false
	}
	if both&FieldDlDst != 0 && m.DlDst != o.DlDst {
		return false
	}
	if both&FieldDlType != 0 && m.DlType != o.DlType {
		return false
	}
	if both&FieldNwSrc != 0 && !m.NwSrc.Overlaps(o.NwSrc) {
		return false
	}
	if both&FieldNwDst != 0 && !m.NwDst.Overlaps(o.NwDst) {
		return false
	}
	if both&FieldNwProto != 0 && m.NwProto != o.NwProto {
		return false
	}
	if both&FieldTpSrc != 0 && m.TpSrc != o.TpSrc {
		return false
	}
	if both&FieldTpDst != 0 && m.TpDst != o.TpDst {
		return false
	}
	return true
}

// Covers reports whether every frame matched by o is also matched by m
// (m is a superset predicate). ClassBench dependency analysis uses this to
// decide when rule order matters.
func (m *Match) Covers(o *Match) bool {
	// m may only constrain fields that o also constrains.
	if m.Fields&^o.Fields != 0 {
		return false
	}
	if m.Has(FieldInPort) && m.InPort != o.InPort {
		return false
	}
	if m.Has(FieldDlSrc) && m.DlSrc != o.DlSrc {
		return false
	}
	if m.Has(FieldDlDst) && m.DlDst != o.DlDst {
		return false
	}
	if m.Has(FieldDlType) && m.DlType != o.DlType {
		return false
	}
	if m.Has(FieldNwSrc) && !prefixCovers(m.NwSrc, o.NwSrc) {
		return false
	}
	if m.Has(FieldNwDst) && !prefixCovers(m.NwDst, o.NwDst) {
		return false
	}
	if m.Has(FieldNwProto) && m.NwProto != o.NwProto {
		return false
	}
	if m.Has(FieldTpSrc) && m.TpSrc != o.TpSrc {
		return false
	}
	if m.Has(FieldTpDst) && m.TpDst != o.TpDst {
		return false
	}
	return true
}

// prefixCovers reports whether prefix a contains every address in prefix b.
func prefixCovers(a, b netip.Prefix) bool {
	return a.Bits() <= b.Bits() && a.Contains(b.Addr())
}

// Same reports whether two matches are identical predicates. OpenFlow
// identifies the rule targeted by a modify/delete command by exact match
// equality (plus priority, handled by the table).
func (m *Match) Same(o *Match) bool {
	if m.Fields != o.Fields {
		return false
	}
	return (!m.Has(FieldInPort) || m.InPort == o.InPort) &&
		(!m.Has(FieldDlSrc) || m.DlSrc == o.DlSrc) &&
		(!m.Has(FieldDlDst) || m.DlDst == o.DlDst) &&
		(!m.Has(FieldDlType) || m.DlType == o.DlType) &&
		(!m.Has(FieldNwSrc) || m.NwSrc == o.NwSrc) &&
		(!m.Has(FieldNwDst) || m.NwDst == o.NwDst) &&
		(!m.Has(FieldNwProto) || m.NwProto == o.NwProto) &&
		(!m.Has(FieldTpSrc) || m.TpSrc == o.TpSrc) &&
		(!m.Has(FieldTpDst) || m.TpDst == o.TpDst)
}

// String renders the match compactly for logs and test failures.
func (m *Match) String() string {
	if m.Fields == 0 {
		return "any"
	}
	var parts []string
	if m.Has(FieldInPort) {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if m.Has(FieldDlSrc) {
		parts = append(parts, "dl_src="+m.DlSrc.String())
	}
	if m.Has(FieldDlDst) {
		parts = append(parts, "dl_dst="+m.DlDst.String())
	}
	if m.Has(FieldDlType) {
		parts = append(parts, fmt.Sprintf("dl_type=0x%04x", uint16(m.DlType)))
	}
	if m.Has(FieldNwSrc) {
		parts = append(parts, "nw_src="+m.NwSrc.String())
	}
	if m.Has(FieldNwDst) {
		parts = append(parts, "nw_dst="+m.NwDst.String())
	}
	if m.Has(FieldNwProto) {
		parts = append(parts, fmt.Sprintf("nw_proto=%d", m.NwProto))
	}
	if m.Has(FieldTpSrc) {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.TpSrc))
	}
	if m.Has(FieldTpDst) {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.TpDst))
	}
	return strings.Join(parts, ",")
}

// ExactProbeMatch returns the L2+L3+L4 match that the probe frame for flow
// id satisfies — the rule side of a Tango pattern.
func ExactProbeMatch(id uint32) Match {
	return Match{
		Fields: FieldDlType | FieldNwSrc | FieldNwDst | FieldNwProto | FieldTpDst,
		DlType: packet.EtherTypeIPv4,
		NwSrc:  netip.PrefixFrom(packet.ProbeSrcIP(id), 32),
		NwDst:  netip.PrefixFrom(packet.ProbeDstIP(id), 32),

		NwProto: packet.IPProtocolTCP,
		TpDst:   80,
	}
}

// L3ProbeMatch returns an L3-only match for flow id (used when probing
// single-wide TCAM modes).
func L3ProbeMatch(id uint32) Match {
	return Match{
		Fields: FieldNwSrc | FieldNwDst,
		NwSrc:  netip.PrefixFrom(packet.ProbeSrcIP(id), 32),
		NwDst:  netip.PrefixFrom(packet.ProbeDstIP(id), 32),
	}
}

// L2ProbeMatch returns an L2-only match for flow id.
func L2ProbeMatch(id uint32) Match {
	return Match{
		Fields: FieldDlSrc | FieldDlDst,
		DlSrc:  packet.MACFromUint64(0x0200_0100_0000 | uint64(id)),
		DlDst:  packet.MACFromUint64(0x0200_0000_0000 | uint64(id)),
	}
}
