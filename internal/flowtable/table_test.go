package flowtable

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"tango/internal/packet"
)

var t0 = time.Date(2014, 12, 2, 0, 0, 0, 0, time.UTC)

func mkRule(id uint32, prio uint16) *Rule {
	return &Rule{Match: ExactProbeMatch(id), Priority: prio, Actions: Output(1)}
}

func TestWidthClassification(t *testing.T) {
	cases := []struct {
		m    Match
		want Width
	}{
		{ExactProbeMatch(1), WidthL2L3},
		{L2ProbeMatch(1), WidthL2},
		{L3ProbeMatch(1), WidthL3},
		{Match{}, WidthNone},
		{Match{Fields: FieldInPort, InPort: 3}, WidthNone},
	}
	for _, c := range cases {
		if got := c.m.Width(); got != c.want {
			t.Errorf("Width(%s) = %v, want %v", c.m.String(), got, c.want)
		}
	}
}

func TestMatchesProbeFrame(t *testing.T) {
	raw, err := packet.BuildProbe(packet.ProbeSpec{FlowID: 9})
	if err != nil {
		t.Fatal(err)
	}
	f, err := packet.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	m := ExactProbeMatch(9)
	if !m.Matches(f, 1) {
		t.Fatal("exact match failed on own probe frame")
	}
	other := ExactProbeMatch(10)
	if other.Matches(f, 1) {
		t.Fatal("match for flow 10 accepted flow 9's frame")
	}
	l2 := L2ProbeMatch(9)
	if !l2.Matches(f, 1) {
		t.Fatal("L2 match failed")
	}
	l3 := L3ProbeMatch(9)
	if !l3.Matches(f, 1) {
		t.Fatal("L3 match failed")
	}
}

func TestMatchInPortAndWildcard(t *testing.T) {
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 1})
	f, _ := packet.Decode(raw)
	m := Match{Fields: FieldInPort, InPort: 2}
	if m.Matches(f, 1) {
		t.Fatal("in_port=2 matched port 1")
	}
	if !m.Matches(f, 2) {
		t.Fatal("in_port=2 failed on port 2")
	}
	var any Match
	if !any.Matches(f, 7) {
		t.Fatal("wildcard match failed")
	}
}

func TestMatchL3OnNonIP(t *testing.T) {
	e := packet.Ethernet{EtherType: packet.EtherTypeARP}
	raw := e.AppendTo(nil)
	f, err := packet.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	m := L3ProbeMatch(1)
	if m.Matches(f, 1) {
		t.Fatal("L3 match accepted non-IP frame")
	}
	tp := Match{Fields: FieldTpDst, TpDst: 80}
	if tp.Matches(f, 1) {
		t.Fatal("transport match accepted non-IP frame")
	}
}

func TestPrefixMatch(t *testing.T) {
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 300}) // 10.83.1.44
	f, _ := packet.Decode(raw)
	m := Match{Fields: FieldNwSrc, NwSrc: netip.MustParsePrefix("10.83.0.0/16")}
	if !m.Matches(f, 1) {
		t.Fatal("/16 prefix failed")
	}
	m.NwSrc = netip.MustParsePrefix("10.90.0.0/16")
	if m.Matches(f, 1) {
		t.Fatal("wrong /16 prefix matched")
	}
}

func TestCoversAndOverlaps(t *testing.T) {
	wide := Match{Fields: FieldNwDst, NwDst: netip.MustParsePrefix("10.0.0.0/8")}
	narrow := Match{Fields: FieldNwDst, NwDst: netip.MustParsePrefix("10.1.0.0/16")}
	if !wide.Covers(&narrow) {
		t.Fatal("/8 should cover /16")
	}
	if narrow.Covers(&wide) {
		t.Fatal("/16 should not cover /8")
	}
	if !wide.Overlaps(&narrow) || !narrow.Overlaps(&wide) {
		t.Fatal("nested prefixes must overlap")
	}
	disjoint := Match{Fields: FieldNwDst, NwDst: netip.MustParsePrefix("192.168.0.0/16")}
	if wide.Overlaps(&disjoint) {
		t.Fatal("disjoint prefixes overlap")
	}
	// A match constraining extra fields cannot cover one that doesn't.
	extra := Match{Fields: FieldNwDst | FieldTpDst, NwDst: netip.MustParsePrefix("10.0.0.0/8"), TpDst: 80}
	if extra.Covers(&narrow) {
		t.Fatal("more-specific fields cannot cover")
	}
	if !narrow.Covers(&narrow) {
		t.Fatal("match must cover itself")
	}
}

func TestSame(t *testing.T) {
	a := ExactProbeMatch(5)
	b := ExactProbeMatch(5)
	if !a.Same(&b) {
		t.Fatal("identical matches not Same")
	}
	c := ExactProbeMatch(6)
	if a.Same(&c) {
		t.Fatal("different matches Same")
	}
}

func TestInsertOrderAndShifts(t *testing.T) {
	var tbl Table
	// Ascending priority: every insert lands at the top — displaces all?
	// No: insertionPoint puts higher priority first; inserting ascending
	// priorities means each new rule goes *before* existing lower ones.
	// The shift count equals the number of rules with lower priority.
	s1, err := tbl.Insert(mkRule(1, 10), t0)
	if err != nil || s1 != 0 {
		t.Fatalf("first insert: shifted=%d err=%v", s1, err)
	}
	s2, _ := tbl.Insert(mkRule(2, 20), t0)
	if s2 != 1 {
		t.Fatalf("higher-priority insert shifted %d, want 1", s2)
	}
	s3, _ := tbl.Insert(mkRule(3, 5), t0)
	if s3 != 0 {
		t.Fatalf("lowest-priority insert shifted %d, want 0", s3)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	prios := []uint16{20, 10, 5}
	for i, r := range tbl.Rules() {
		if r.Priority != prios[i] {
			t.Fatalf("position %d has priority %d, want %d", i, r.Priority, prios[i])
		}
	}
}

func TestInsertEqualPriorityFIFO(t *testing.T) {
	var tbl Table
	for id := uint32(0); id < 5; id++ {
		if shifted, err := tbl.Insert(mkRule(id, 100), t0); err != nil || shifted != 0 {
			t.Fatalf("equal-priority insert: shifted=%d err=%v", shifted, err)
		}
	}
	for i, r := range tbl.Rules() {
		if r.Seq() != uint64(i) {
			t.Fatalf("equal-priority order broken at %d", i)
		}
	}
}

func TestInsertDuplicateOverwrites(t *testing.T) {
	var tbl Table
	r := mkRule(1, 10)
	if _, err := tbl.Insert(r, t0); err != nil {
		t.Fatal(err)
	}
	dup := mkRule(1, 10)
	dup.Actions = Output(9)
	shifted, err := tbl.Insert(dup, t0)
	if err != nil || shifted != 0 {
		t.Fatalf("duplicate insert: shifted=%d err=%v", shifted, err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d, want 1", tbl.Len())
	}
	if tbl.Rules()[0].Actions[0].Port != 9 {
		t.Fatal("duplicate insert did not overwrite actions")
	}
}

func TestCapacityEnforced(t *testing.T) {
	tbl := Table{Capacity: 2}
	tbl.Insert(mkRule(1, 1), t0)
	tbl.Insert(mkRule(2, 1), t0)
	if _, err := tbl.Insert(mkRule(3, 1), t0); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestModifyDelete(t *testing.T) {
	var tbl Table
	tbl.Insert(mkRule(1, 10), t0)
	m := ExactProbeMatch(1)
	if err := tbl.Modify(&m, 10, Output(4)); err != nil {
		t.Fatal(err)
	}
	if tbl.Rules()[0].Actions[0].Port != 4 {
		t.Fatal("modify did not take")
	}
	if err := tbl.Modify(&m, 11, Output(4)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("modify wrong priority err = %v, want ErrNotFound", err)
	}
	r, err := tbl.Delete(&m, 10)
	if err != nil || r == nil {
		t.Fatalf("delete: %v", err)
	}
	if tbl.Len() != 0 {
		t.Fatal("delete left rule behind")
	}
	if _, err := tbl.Delete(&m, 10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestLookupPriorityWins(t *testing.T) {
	var tbl Table
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 77})
	f, _ := packet.Decode(raw)

	low := &Rule{Match: Match{}, Priority: 1, Actions: Output(1)} // match-all
	hi := mkRule(77, 500)
	hi.Actions = Output(2)
	tbl.Insert(low, t0)
	tbl.Insert(hi, t0)
	got := tbl.Lookup(f, 1)
	if got != hi {
		t.Fatal("lookup did not return highest-priority match")
	}
	// A frame matching only the wildcard rule falls back to it.
	raw2, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 78})
	f2, _ := packet.Decode(raw2)
	if got := tbl.Lookup(f2, 1); got != low {
		t.Fatal("wildcard fallback failed")
	}
}

func TestTouch(t *testing.T) {
	r := mkRule(1, 1)
	r.Touch(100, t0.Add(time.Second))
	r.Touch(50, t0.Add(2*time.Second))
	if r.Packets != 2 || r.Bytes != 150 {
		t.Fatalf("stats = %d pkts %d bytes", r.Packets, r.Bytes)
	}
	if !r.LastUsedAt.Equal(t0.Add(2 * time.Second)) {
		t.Fatal("LastUsedAt not updated")
	}
}

func TestTCAMSingleWideRejectsWide(t *testing.T) {
	tc := NewTCAM(TCAMConfig{Mode: ModeSingleWide, CapacityNarrow: 4})
	r := mkRule(1, 1) // L2+L3
	if _, err := tc.Insert(r, t0); !errors.Is(err, ErrWidthUnsupported) {
		t.Fatalf("err = %v, want ErrWidthUnsupported", err)
	}
	nr := &Rule{Match: L3ProbeMatch(1), Priority: 1}
	if _, err := tc.Insert(nr, t0); err != nil {
		t.Fatal(err)
	}
	if tc.EffectiveCapacity(WidthL3) != 3 {
		t.Fatalf("effective capacity = %d, want 3", tc.EffectiveCapacity(WidthL3))
	}
}

func TestTCAMDoubleWideFlat(t *testing.T) {
	// Switch #2 style: 2560 entries no matter the mix. Scaled to 6 here.
	tc := NewTCAM(TCAMConfig{Mode: ModeDoubleWide, CapacityNarrow: 6, CapacityWide: 6})
	for id := uint32(0); id < 3; id++ {
		if _, err := tc.Insert(&Rule{Match: L2ProbeMatch(id), Priority: 1}, t0); err != nil {
			t.Fatal(err)
		}
	}
	for id := uint32(10); id < 13; id++ {
		if _, err := tc.Insert(mkRule(id, 1), t0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tc.Insert(mkRule(99, 1), t0); !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
}

func TestTCAMAdaptiveMixing(t *testing.T) {
	// Switch #3 style, scaled: 6 narrow or 3 wide.
	tc := NewTCAM(TCAMConfig{Mode: ModeAdaptive, CapacityNarrow: 6, CapacityWide: 3})
	// One wide entry consumes the space of two narrow ones.
	if _, err := tc.Insert(mkRule(1, 1), t0); err != nil {
		t.Fatal(err)
	}
	if got := tc.EffectiveCapacity(WidthL2); got != 4 {
		t.Fatalf("narrow capacity after one wide = %d, want 4", got)
	}
	for id := uint32(10); id < 14; id++ {
		if _, err := tc.Insert(&Rule{Match: L2ProbeMatch(id), Priority: 1}, t0); err != nil {
			t.Fatal(err)
		}
	}
	if tc.Fits(WidthL2) || tc.Fits(WidthL2L3) {
		t.Fatal("full TCAM still admits entries")
	}
	// Deleting the wide entry frees room for two narrow entries.
	m := ExactProbeMatch(1)
	if _, err := tc.Delete(&m, 1); err != nil {
		t.Fatal(err)
	}
	if got := tc.EffectiveCapacity(WidthL2); got != 2 {
		t.Fatalf("narrow capacity after delete = %d, want 2", got)
	}
}

func TestTCAMRemoveReleasesSpace(t *testing.T) {
	tc := NewTCAM(TCAMConfig{Mode: ModeDoubleWide, CapacityNarrow: 1, CapacityWide: 1})
	r := mkRule(1, 1)
	if _, err := tc.Insert(r, t0); err != nil {
		t.Fatal(err)
	}
	if !tc.Remove(r) {
		t.Fatal("remove failed")
	}
	if tc.Remove(r) {
		t.Fatal("double remove succeeded")
	}
	if _, err := tc.Insert(mkRule(2, 1), t0); err != nil {
		t.Fatalf("space not released: %v", err)
	}
}

func TestTCAMTable1Capacities(t *testing.T) {
	// Full-scale checks against Table 1 of the paper.
	cases := []struct {
		name        string
		cfg         TCAMConfig
		wide        bool
		wantInstall int
	}{
		{"switch1-single-L3", TCAMConfig{Mode: ModeSingleWide, CapacityNarrow: 4096}, false, 4096},
		{"switch1-double", TCAMConfig{Mode: ModeDoubleWide, CapacityNarrow: 2048, CapacityWide: 2048}, true, 2048},
		{"switch2-any", TCAMConfig{Mode: ModeDoubleWide, CapacityNarrow: 2560, CapacityWide: 2560}, false, 2560},
		{"switch3-narrow", TCAMConfig{Mode: ModeAdaptive, CapacityNarrow: 767, CapacityWide: 369}, false, 767},
		{"switch3-wide", TCAMConfig{Mode: ModeAdaptive, CapacityNarrow: 767, CapacityWide: 369}, true, 369},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tc := NewTCAM(c.cfg)
			n := 0
			for id := uint32(0); ; id++ {
				var r *Rule
				if c.wide {
					r = mkRule(id, 1)
				} else {
					r = &Rule{Match: L3ProbeMatch(id), Priority: 1}
				}
				if _, err := tc.Insert(r, t0); err != nil {
					break
				}
				n++
				if n > c.wantInstall+10 {
					break
				}
			}
			if n != c.wantInstall {
				t.Fatalf("installed %d rules, want %d", n, c.wantInstall)
			}
		})
	}
}

// Property: after any random sequence of inserts/deletes the table ordering
// invariants hold and lookups always return the first match in rule order.
func TestTableRandomOpsInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tbl Table
		alive := map[uint32]uint16{}
		for op := 0; op < 200; op++ {
			id := uint32(rng.Intn(50))
			prio := uint16(rng.Intn(8) * 10)
			if rng.Float64() < 0.6 {
				if _, err := tbl.Insert(mkRule(id, prio), t0); err != nil {
					return false
				}
				alive[id] = prio
			} else if p, ok := alive[id]; ok {
				m := ExactProbeMatch(id)
				if _, err := tbl.Delete(&m, p); err != nil {
					// Duplicate (match,prio) inserts overwrite, so a delete
					// can only fail if we never inserted this pair.
					return false
				}
				delete(alive, id)
			}
			if tbl.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: InsertShiftCost agrees with the shift count Insert reports.
func TestShiftCostConsistency(t *testing.T) {
	f := func(prios []uint16) bool {
		var tbl Table
		for i, p := range prios {
			if i > 300 {
				break
			}
			want := tbl.InsertShiftCost(p)
			got, err := tbl.Insert(mkRule(uint32(i), p), t0)
			if err != nil || got != want {
				return false
			}
		}
		return tbl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestLookupIndexEquivalence verifies the exact-IP index fast path returns
// exactly what a naive priority-ordered scan would, across random mixes of
// indexable (exact-IP) and wildcard rules and random probe frames.
func TestLookupIndexEquivalence(t *testing.T) {
	naiveLookup := func(tbl *Table, f *packet.Frame, inPort uint16) *Rule {
		for _, r := range tbl.Rules() {
			if r.Match.Matches(f, inPort) {
				return r
			}
		}
		return nil
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tbl Table
		// Exact probe rules over a small flow space (collisions intended).
		for i := 0; i < 60; i++ {
			id := uint32(rng.Intn(20))
			prio := uint16(rng.Intn(5) * 10)
			tbl.Insert(&Rule{Match: ExactProbeMatch(id), Priority: prio, Actions: Output(1)}, t0)
		}
		// Wildcard rules: prefixes over the probe address space + match-all.
		for i := 0; i < 10; i++ {
			bits := 8 + rng.Intn(24)
			m := Match{
				Fields: FieldNwSrc,
				NwSrc:  netip.PrefixFrom(packet.ProbeSrcIP(uint32(rng.Intn(20))), bits).Masked(),
			}
			tbl.Insert(&Rule{Match: m, Priority: uint16(rng.Intn(5) * 10), Actions: Output(2)}, t0)
		}
		tbl.Insert(&Rule{Match: Match{}, Priority: 0, Actions: Output(3)}, t0)

		for probe := 0; probe < 40; probe++ {
			raw, err := packet.BuildProbe(packet.ProbeSpec{FlowID: uint32(rng.Intn(25))})
			if err != nil {
				return false
			}
			fr, err := packet.Decode(raw)
			if err != nil {
				return false
			}
			if tbl.Lookup(fr, 1) != naiveLookup(&tbl, fr, 1) {
				return false
			}
		}
		// Also after random deletions.
		for _, r := range append([]*Rule(nil), tbl.Rules()...) {
			if rng.Float64() < 0.3 {
				tbl.Remove(r)
			}
		}
		for probe := 0; probe < 40; probe++ {
			raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: uint32(rng.Intn(25))})
			fr, _ := packet.Decode(raw)
			if tbl.Lookup(fr, 1) != naiveLookup(&tbl, fr, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
