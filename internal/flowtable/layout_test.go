package flowtable

import (
	"testing"

	"tango/internal/structlayout"
)

// TestHotStructLayouts gates the per-rule structs on zero padding waste:
// rules are slab-allocated by the thousands and scanned on every lookup
// miss, so declared field order is part of the performance contract.
func TestHotStructLayouts(t *testing.T) {
	for _, v := range []interface{}{
		Rule{},
		Match{},
		exactBucket{},
		Action{},
	} {
		if err := structlayout.Check(v); err != nil {
			t.Error(err)
		}
	}
}
