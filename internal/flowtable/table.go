package flowtable

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"tango/internal/packet"
)

// ActionType discriminates rule actions.
type ActionType uint8

// Supported actions. An empty action list means drop, as in OpenFlow.
const (
	// ActionOutput forwards matching frames to Port.
	ActionOutput ActionType = iota
	// ActionController punts matching frames to the controller.
	ActionController
)

// Action is one forwarding action of a rule.
type Action struct {
	Type ActionType
	Port uint16
}

// Output is shorthand for an output action to port p.
func Output(p uint16) []Action { return []Action{{Type: ActionOutput, Port: p}} }

// Rule is one flow entry: a match, a priority, and actions, plus the
// per-flow statistics OpenFlow switches maintain and Tango's switch model
// assumes cache policies read (time since insertion, time since last use,
// traffic count, rule priority — the ATTRIB set of §5.1).
type Rule struct {
	Match    Match
	Priority uint16
	Actions  []Action
	Cookie   uint64

	// IdleTimeout and HardTimeout expire the rule (seconds; 0 = never):
	// idle counts from the last matched packet, hard from installation.
	IdleTimeout uint16
	HardTimeout uint16
	// SendFlowRem requests a FLOW_REMOVED notification when the rule dies.
	SendFlowRem bool

	// Stats are updated by the pipeline on every matched frame.
	Packets uint64
	Bytes   uint64

	// InstalledAt and LastUsedAt are bookkeeping for cache policies.
	InstalledAt time.Time
	LastUsedAt  time.Time

	// seq is a monotonically increasing insertion sequence number used to
	// keep ordering deterministic among equal-priority rules and to serve
	// as a tie-free "time since insertion" attribute.
	seq uint64
}

// Seq returns the rule's insertion sequence number within its table.
func (r *Rule) Seq() uint64 { return r.seq }

// Table is a priority-ordered flow table. Rules are kept sorted by
// descending priority; among equal priorities, earlier insertions come
// first. This mirrors a TCAM whose physical order encodes priority, which is
// exactly why rule insertion cost depends on priority order (§3 of the
// paper): inserting above existing entries displaces them.
//
// Table is not safe for concurrent use; the switch emulator serialises
// access.
type Table struct {
	rules   []*Rule
	nextSeq uint64
	// Capacity limits the number of rules; 0 means unbounded (software
	// tables are "virtually unlimited").
	Capacity int

	// exact indexes rules that pin both IP endpoints to single addresses
	// (the shape every probe rule has), keyed by (src, dst). Lookups check
	// the index plus the small residue of non-indexable rules, which keeps
	// probing workloads — tens of thousands of packets against thousands of
	// rules — linear instead of quadratic. wild holds the non-indexable
	// rules in table order.
	exact map[ipPair][]*Rule
	wild  []*Rule
}

// ipPair is the exact-index key.
type ipPair struct {
	src, dst netip.Addr
}

// indexKey returns the index key for m, and whether m is indexable: it must
// constrain both nw_src and nw_dst to /32 prefixes, so only frames carrying
// exactly those addresses can match it.
func indexKey(m *Match) (ipPair, bool) {
	if !m.Has(FieldNwSrc) || !m.Has(FieldNwDst) {
		return ipPair{}, false
	}
	if m.NwSrc.Bits() != 32 || m.NwDst.Bits() != 32 {
		return ipPair{}, false
	}
	return ipPair{m.NwSrc.Addr(), m.NwDst.Addr()}, true
}

// indexInsert registers r in the lookup acceleration structures.
func (t *Table) indexInsert(r *Rule) {
	if k, ok := indexKey(&r.Match); ok {
		if t.exact == nil {
			t.exact = make(map[ipPair][]*Rule)
		}
		t.exact[k] = append(t.exact[k], r)
		return
	}
	// Maintain wild in table order: descending priority, FIFO within equal.
	pos := searchByOrder(t.wild, r.Priority, r.seq)
	t.wild = append(t.wild, nil)
	copy(t.wild[pos+1:], t.wild[pos:])
	t.wild[pos] = r
}

// indexRemove unregisters r.
func (t *Table) indexRemove(r *Rule) {
	if k, ok := indexKey(&r.Match); ok {
		list := t.exact[k]
		for i, rr := range list {
			if rr == r {
				t.exact[k] = append(list[:i], list[i+1:]...)
				if len(t.exact[k]) == 0 {
					delete(t.exact, k)
				}
				return
			}
		}
		return
	}
	if i, ok := findByOrder(t.wild, r); ok {
		t.wild = append(t.wild[:i], t.wild[i+1:]...)
	}
}

// searchByOrder returns the index at which a rule with the given (priority,
// seq) key belongs in a slice kept in table order (descending priority, FIFO
// — ascending seq — within equal priority).
func searchByOrder(rules []*Rule, priority uint16, seq uint64) int {
	lo, hi := 0, len(rules)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := rules[mid]
		if m.Priority > priority || (m.Priority == priority && m.seq < seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findByOrder locates r in a table-ordered slice by binary search on its
// (priority, seq) key. A linear fallback covers rules whose seq was restamped
// by another table between ordering and removal — correctness net, never the
// common path.
func findByOrder(rules []*Rule, r *Rule) (int, bool) {
	if i := searchByOrder(rules, r.Priority, r.seq); i < len(rules) && rules[i] == r {
		return i, true
	}
	for i, rr := range rules {
		if rr == r {
			return i, true
		}
	}
	return 0, false
}

// Errors returned by table mutations.
var (
	ErrTableFull = errors.New("flowtable: table full")
	ErrNotFound  = errors.New("flowtable: no matching rule")
)

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the rules in TCAM (priority) order. The slice is shared;
// callers must not mutate it.
func (t *Table) Rules() []*Rule { return t.rules }

// insertionPoint returns the index at which a rule with priority p would be
// inserted: after all rules with priority >= p.
func (t *Table) insertionPoint(p uint16) int {
	lo, hi := 0, len(t.rules)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.rules[mid].Priority >= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// InsertShiftCost returns how many existing entries an insertion at priority
// p would displace — the quantity the hardware cost model charges for.
func (t *Table) InsertShiftCost(p uint16) int {
	return len(t.rules) - t.insertionPoint(p)
}

// CountHigher returns the number of rules with priority strictly greater
// than p. In a bottom-packed TCAM these are the entries that must shift to
// make room below them for a new priority-p rule, which is why descending-
// priority installation is expensive (§3 of the paper).
func (t *Table) CountHigher(p uint16) int {
	lo, hi := 0, len(t.rules)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.rules[mid].Priority > p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds rule r at its priority position, stamping bookkeeping fields.
// It returns the number of displaced entries, or ErrTableFull when at
// capacity. Duplicate (match, priority) pairs overwrite the existing rule's
// actions in place, per OpenFlow ADD semantics, at zero shift cost.
func (t *Table) Insert(r *Rule, now time.Time) (shifted int, err error) {
	if existing := t.find(&r.Match, r.Priority); existing != nil {
		existing.Actions = r.Actions
		existing.Cookie = r.Cookie
		return 0, nil
	}
	if t.Capacity > 0 && len(t.rules) >= t.Capacity {
		return 0, ErrTableFull
	}
	pos := t.insertionPoint(r.Priority)
	shifted = len(t.rules) - pos
	r.seq = t.nextSeq
	t.nextSeq++
	r.InstalledAt = now
	r.LastUsedAt = now
	t.rules = append(t.rules, nil)
	copy(t.rules[pos+1:], t.rules[pos:])
	t.rules[pos] = r
	t.indexInsert(r)
	return shifted, nil
}

// find returns the rule with an identical match and priority, or nil. It is
// served by the lookup index: an indexable match can only equal rules in its
// exact bucket, any other match only rules in the wild residue — so the
// duplicate check every Insert performs touches a handful of rules instead
// of scanning the table.
func (t *Table) find(m *Match, priority uint16) *Rule {
	if k, ok := indexKey(m); ok {
		for _, r := range t.exact[k] {
			if r.Priority == priority && r.Match.Same(m) {
				return r
			}
		}
		return nil
	}
	for _, r := range t.wild {
		if r.Priority == priority && r.Match.Same(m) {
			return r
		}
	}
	return nil
}

// Find returns the installed rule with an identical match and priority, or
// nil. It is an indexed point lookup, not a packet classification — use
// Lookup to match frames.
func (t *Table) Find(m *Match, priority uint16) *Rule { return t.find(m, priority) }

// CanInsert reports whether Insert would accept r right now: there is spare
// capacity, or an identical (match, priority) rule exists that Insert would
// overwrite in place.
func (t *Table) CanInsert(r *Rule) bool {
	if t.Capacity <= 0 || len(t.rules) < t.Capacity {
		return true
	}
	return t.find(&r.Match, r.Priority) != nil
}

// Modify replaces the actions of the rule identified by (match, priority).
// Per the paper's measurements this is far cheaper than an add on hardware
// because no TCAM entries shift; the table therefore reports zero shifts.
func (t *Table) Modify(m *Match, priority uint16, actions []Action) error {
	r := t.find(m, priority)
	if r == nil {
		return ErrNotFound
	}
	r.Actions = actions
	return nil
}

// Delete removes the rule identified by (match, priority) and returns it.
func (t *Table) Delete(m *Match, priority uint16) (*Rule, error) {
	r := t.find(m, priority)
	if r == nil {
		return nil, ErrNotFound
	}
	t.Remove(r)
	return r, nil
}

// Remove deletes the given rule pointer if present (used by cache eviction).
// The rule's position is found by binary search on its (priority, seq) key.
func (t *Table) Remove(target *Rule) bool {
	i, ok := findByOrder(t.rules, target)
	if !ok {
		return false
	}
	t.rules = append(t.rules[:i], t.rules[i+1:]...)
	t.indexRemove(target)
	return true
}

// Lookup returns the highest-priority rule matching frame f on inPort, or
// nil on a miss. Statistics are NOT updated; the pipeline decides where a
// frame "hits" across its table hierarchy and then calls Touch. Ties between
// equal-priority rules resolve to the earliest installed, exactly as the
// priority-ordered scan of the full table would.
func (t *Table) Lookup(f *packet.Frame, inPort uint16) *Rule {
	var best *Rule
	if f.HasIPv4 {
		for _, r := range t.exact[ipPair{f.IP.Src, f.IP.Dst}] {
			if !r.Match.Matches(f, inPort) {
				continue
			}
			if best == nil || r.Priority > best.Priority ||
				(r.Priority == best.Priority && r.seq < best.seq) {
				best = r
			}
		}
	}
	for _, r := range t.wild {
		if best != nil && (r.Priority < best.Priority ||
			(r.Priority == best.Priority && r.seq > best.seq)) {
			break // wild is in table order; nothing later can beat best
		}
		if r.Match.Matches(f, inPort) {
			return r
		}
	}
	return best
}

// Touch records a frame hit on rule r.
func (r *Rule) Touch(bytes int, now time.Time) {
	r.Packets++
	r.Bytes += uint64(bytes)
	r.LastUsedAt = now
}

// Validate checks internal ordering invariants; tests call it after
// randomised operation sequences.
func (t *Table) Validate() error {
	for i := 1; i < len(t.rules); i++ {
		a, b := t.rules[i-1], t.rules[i]
		if a.Priority < b.Priority {
			return fmt.Errorf("flowtable: priority order violated at %d (%d < %d)", i, a.Priority, b.Priority)
		}
		if a.Priority == b.Priority && a.seq > b.seq {
			return fmt.Errorf("flowtable: FIFO order violated among priority %d", a.Priority)
		}
	}
	if t.Capacity > 0 && len(t.rules) > t.Capacity {
		return fmt.Errorf("flowtable: %d rules exceed capacity %d", len(t.rules), t.Capacity)
	}
	for i := 1; i < len(t.wild); i++ {
		a, b := t.wild[i-1], t.wild[i]
		if a.Priority < b.Priority || (a.Priority == b.Priority && a.seq > b.seq) {
			return fmt.Errorf("flowtable: wild index order violated at %d", i)
		}
	}
	indexed := len(t.wild)
	for _, list := range t.exact {
		indexed += len(list)
	}
	if indexed != len(t.rules) {
		return fmt.Errorf("flowtable: index holds %d rules, table %d", indexed, len(t.rules))
	}
	return nil
}
