package flowtable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"tango/internal/packet"
)

// ActionType discriminates rule actions.
type ActionType uint8

// Supported actions. An empty action list means drop, as in OpenFlow.
const (
	// ActionOutput forwards matching frames to Port.
	ActionOutput ActionType = iota
	// ActionController punts matching frames to the controller.
	ActionController
)

// Action is one forwarding action of a rule.
type Action struct {
	Type ActionType
	Port uint16
}

// Output is shorthand for an output action to port p.
func Output(p uint16) []Action { return []Action{{Type: ActionOutput, Port: p}} }

// Rule is one flow entry: a match, a priority, and actions, plus the
// per-flow statistics OpenFlow switches maintain and Tango's switch model
// assumes cache policies read (time since insertion, time since last use,
// traffic count, rule priority — the ATTRIB set of §5.1).
// Field order is packing-conscious (narrow fields are grouped at the
// tail), gated by the structlayout test: rules are slab-allocated by the
// thousands.
type Rule struct {
	Match   Match
	Actions []Action
	Cookie  uint64

	// Stats are updated by the pipeline on every matched frame.
	Packets uint64
	Bytes   uint64

	// InstalledAt and LastUsedAt are bookkeeping for cache policies.
	InstalledAt time.Time
	LastUsedAt  time.Time

	// seq is a monotonically increasing insertion sequence number used to
	// keep ordering deterministic among equal-priority rules and to serve
	// as a tie-free "time since insertion" attribute.
	seq uint64

	// Ext is an opaque handle slot for the rule's owner. The switch emulator
	// stores the rule's arena handle here so hot paths resolve rule→entry
	// with one integer index instead of a map lookup or interface assertion;
	// zero means "no owner record". The table itself never reads it.
	Ext int32

	Priority uint16

	// IdleTimeout and HardTimeout expire the rule (seconds; 0 = never):
	// idle counts from the last matched packet, hard from installation.
	IdleTimeout uint16
	HardTimeout uint16
	// SendFlowRem requests a FLOW_REMOVED notification when the rule dies.
	SendFlowRem bool
}

// Seq returns the rule's insertion sequence number within its table.
func (r *Rule) Seq() uint64 { return r.seq }

// Table is a priority-ordered flow table. Rules are kept sorted by
// descending priority; among equal priorities, earlier insertions come
// first. This mirrors a TCAM whose physical order encodes priority, which is
// exactly why rule insertion cost depends on priority order (§3 of the
// paper): inserting above existing entries displaces them.
//
// Table is not safe for concurrent use; the switch emulator serialises
// access.
type Table struct {
	rules   []*Rule
	nextSeq uint64
	// Capacity limits the number of rules; 0 means unbounded (software
	// tables are "virtually unlimited").
	Capacity int

	// exact indexes rules that pin both IPv4 endpoints to single addresses
	// (the shape every probe rule has), keyed by the two addresses packed
	// into one uint64. Lookups check the index plus the small residue of
	// non-indexable rules, which keeps probing workloads — tens of thousands
	// of packets against thousands of rules — linear instead of quadratic,
	// and the integer key hashes several times faster than a struct of two
	// netip.Addr (which dominated lookup profiles). wild holds the
	// non-indexable rules in table order.
	exact map[uint64]exactBucket
	wild  []*Rule
}

// exactBucket holds the rules sharing one exact-index key. The first rule is
// inline: almost every key maps to exactly one rule, and keeping that rule
// out of a slice saves a heap allocation per insert — which bulk probing
// workloads pay tens of thousands of times.
type exactBucket struct {
	one  *Rule
	more []*Rule
}

// packAddrs packs two IPv4 addresses into the exact-index key. ok is false
// if either address is not IPv4.
func packAddrs(src, dst netip.Addr) (key uint64, ok bool) {
	if !src.Is4() || !dst.Is4() {
		return 0, false
	}
	s, d := src.As4(), dst.As4()
	return uint64(binary.BigEndian.Uint32(s[:]))<<32 |
		uint64(binary.BigEndian.Uint32(d[:])), true
}

// ExactKey returns the exact-index key for m, and whether m is indexable: it
// must constrain both nw_src and nw_dst to single IPv4 addresses (/32), so
// only frames carrying exactly those addresses can match it. Exported so the
// switch emulator can key its own per-rule indexes the same way.
func ExactKey(m *Match) (uint64, bool) {
	if !m.Has(FieldNwSrc) || !m.Has(FieldNwDst) {
		return 0, false
	}
	if m.NwSrc.Bits() != 32 || m.NwDst.Bits() != 32 {
		return 0, false
	}
	return packAddrs(m.NwSrc.Addr(), m.NwDst.Addr())
}

// FrameKey returns the exact-index key for frame f's IPv4 addresses; ok is
// false for non-IPv4 frames. It is the frame-side counterpart of ExactKey:
// a frame can match an exact-indexed rule only when their keys agree.
func FrameKey(f *packet.Frame) (uint64, bool) {
	if !f.HasIPv4 {
		return 0, false
	}
	if k, ok := f.IP.AddrWord(); ok {
		return k, true
	}
	return packAddrs(f.IP.Src, f.IP.Dst)
}

// WildLen reports how many non-exact-indexable rules the table holds.
func (t *Table) WildLen() int { return len(t.wild) }

// WildSingleton returns the table's only non-exact rule, or nil unless
// exactly one is resident.
func (t *Table) WildSingleton() *Rule {
	if len(t.wild) == 1 {
		return t.wild[0]
	}
	return nil
}

// indexKey is the internal alias for ExactKey.
func indexKey(m *Match) (uint64, bool) { return ExactKey(m) }

// indexInsert registers r in the lookup acceleration structures.
func (t *Table) indexInsert(r *Rule) {
	if k, ok := indexKey(&r.Match); ok {
		if t.exact == nil {
			// Capacity-bounded tables fill right up in probing workloads;
			// pre-sizing skips the incremental rehashes on the way there.
			// "Virtually unlimited" tables are capped — they never fill.
			hint := t.Capacity
			if hint > 2048 {
				hint = 2048
			}
			t.exact = make(map[uint64]exactBucket, hint)
		}
		b := t.exact[k]
		if b.one == nil {
			b.one = r
		} else {
			b.more = append(b.more, r)
		}
		t.exact[k] = b
		return
	}
	// Maintain wild in table order: descending priority, FIFO within equal.
	pos := searchByOrder(t.wild, r.Priority, r.seq)
	t.wild = append(t.wild, nil)
	copy(t.wild[pos+1:], t.wild[pos:])
	t.wild[pos] = r
}

// indexRemove unregisters r.
func (t *Table) indexRemove(r *Rule) {
	if k, ok := indexKey(&r.Match); ok {
		b := t.exact[k]
		if b.one == r {
			if n := len(b.more); n > 0 {
				b.one, b.more = b.more[n-1], b.more[:n-1]
				t.exact[k] = b
			} else {
				delete(t.exact, k)
			}
			return
		}
		for i, rr := range b.more {
			if rr == r {
				b.more = append(b.more[:i], b.more[i+1:]...)
				t.exact[k] = b
				return
			}
		}
		return
	}
	if i, ok := findByOrder(t.wild, r); ok {
		t.wild = append(t.wild[:i], t.wild[i+1:]...)
	}
}

// searchByOrder returns the index at which a rule with the given (priority,
// seq) key belongs in a slice kept in table order (descending priority, FIFO
// — ascending seq — within equal priority).
func searchByOrder(rules []*Rule, priority uint16, seq uint64) int {
	lo, hi := 0, len(rules)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := rules[mid]
		if m.Priority > priority || (m.Priority == priority && m.seq < seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findByOrder locates r in a table-ordered slice by binary search on its
// (priority, seq) key. A linear fallback covers rules whose seq was restamped
// by another table between ordering and removal — correctness net, never the
// common path.
func findByOrder(rules []*Rule, r *Rule) (int, bool) {
	if i := searchByOrder(rules, r.Priority, r.seq); i < len(rules) && rules[i] == r {
		return i, true
	}
	for i, rr := range rules {
		if rr == r {
			return i, true
		}
	}
	return 0, false
}

// Errors returned by table mutations.
var (
	ErrTableFull = errors.New("flowtable: table full")
	ErrNotFound  = errors.New("flowtable: no matching rule")
)

// Len returns the number of installed rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the rules in TCAM (priority) order. The slice is shared;
// callers must not mutate it.
func (t *Table) Rules() []*Rule { return t.rules }

// insertionPoint returns the index at which a rule with priority p would be
// inserted: after all rules with priority >= p.
func (t *Table) insertionPoint(p uint16) int {
	lo, hi := 0, len(t.rules)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.rules[mid].Priority >= p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// InsertShiftCost returns how many existing entries an insertion at priority
// p would displace — the quantity the hardware cost model charges for.
func (t *Table) InsertShiftCost(p uint16) int {
	return len(t.rules) - t.insertionPoint(p)
}

// CountHigher returns the number of rules with priority strictly greater
// than p. In a bottom-packed TCAM these are the entries that must shift to
// make room below them for a new priority-p rule, which is why descending-
// priority installation is expensive (§3 of the paper).
func (t *Table) CountHigher(p uint16) int {
	lo, hi := 0, len(t.rules)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.rules[mid].Priority > p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds rule r at its priority position, stamping bookkeeping fields.
// It returns the number of displaced entries, or ErrTableFull when at
// capacity. Duplicate (match, priority) pairs overwrite the existing rule's
// actions in place, per OpenFlow ADD semantics, at zero shift cost.
func (t *Table) Insert(r *Rule, now time.Time) (shifted int, err error) {
	if existing := t.find(&r.Match, r.Priority); existing != nil {
		existing.Actions = r.Actions
		existing.Cookie = r.Cookie
		return 0, nil
	}
	if t.Capacity > 0 && len(t.rules) >= t.Capacity {
		return 0, ErrTableFull
	}
	pos := t.insertionPoint(r.Priority)
	shifted = len(t.rules) - pos
	r.seq = t.nextSeq
	t.nextSeq++
	r.InstalledAt = now
	r.LastUsedAt = now
	t.rules = append(t.rules, nil)
	copy(t.rules[pos+1:], t.rules[pos:])
	t.rules[pos] = r
	t.indexInsert(r)
	return shifted, nil
}

// find returns the rule with an identical match and priority, or nil. It is
// served by the lookup index: an indexable match can only equal rules in its
// exact bucket, any other match only rules in the wild residue — so the
// duplicate check every Insert performs touches a handful of rules instead
// of scanning the table.
func (t *Table) find(m *Match, priority uint16) *Rule {
	if k, ok := indexKey(m); ok {
		b := t.exact[k]
		if b.one != nil && b.one.Priority == priority && b.one.Match.Same(m) {
			return b.one
		}
		for _, r := range b.more {
			if r.Priority == priority && r.Match.Same(m) {
				return r
			}
		}
		return nil
	}
	for _, r := range t.wild {
		if r.Priority == priority && r.Match.Same(m) {
			return r
		}
	}
	return nil
}

// Find returns the installed rule with an identical match and priority, or
// nil. It is an indexed point lookup, not a packet classification — use
// Lookup to match frames.
func (t *Table) Find(m *Match, priority uint16) *Rule { return t.find(m, priority) }

// CanInsert reports whether Insert would accept r right now: there is spare
// capacity, or an identical (match, priority) rule exists that Insert would
// overwrite in place.
func (t *Table) CanInsert(r *Rule) bool {
	if t.Capacity <= 0 || len(t.rules) < t.Capacity {
		return true
	}
	return t.find(&r.Match, r.Priority) != nil
}

// Modify replaces the actions of the rule identified by (match, priority).
// Per the paper's measurements this is far cheaper than an add on hardware
// because no TCAM entries shift; the table therefore reports zero shifts.
func (t *Table) Modify(m *Match, priority uint16, actions []Action) error {
	r := t.find(m, priority)
	if r == nil {
		return ErrNotFound
	}
	r.Actions = actions
	return nil
}

// Delete removes the rule identified by (match, priority) and returns it.
func (t *Table) Delete(m *Match, priority uint16) (*Rule, error) {
	r := t.find(m, priority)
	if r == nil {
		return nil, ErrNotFound
	}
	t.Remove(r)
	return r, nil
}

// Remove deletes the given rule pointer if present (used by cache eviction).
// The rule's position is found by binary search on its (priority, seq) key.
//
// The slice is closed up from whichever end is nearer, deque-style: eviction
// policies overwhelmingly remove the oldest rule of an equal-priority run —
// the front of the table under a single-priority probing fill — and shifting
// the (empty) prefix instead of the whole tail turns that from an O(n)
// barriered pointer copy per eviction into a constant-time head advance.
func (t *Table) Remove(target *Rule) bool {
	i, ok := findByOrder(t.rules, target)
	if !ok {
		return false
	}
	if i < len(t.rules)-i-1 {
		copy(t.rules[1:i+1], t.rules[:i])
		t.rules[0] = nil // drop the stale duplicate for GC
		t.rules = t.rules[1:]
	} else {
		t.rules = append(t.rules[:i], t.rules[i+1:]...)
	}
	t.indexRemove(target)
	return true
}

// Lookup returns the highest-priority rule matching frame f on inPort, or
// nil on a miss. Statistics are NOT updated; the pipeline decides where a
// frame "hits" across its table hierarchy and then calls Touch. Ties between
// equal-priority rules resolve to the earliest installed, exactly as the
// priority-ordered scan of the full table would.
func (t *Table) Lookup(f *packet.Frame, inPort uint16) *Rule {
	var best *Rule
	if f.HasIPv4 {
		if k, ok := packAddrs(f.IP.Src, f.IP.Dst); ok {
			b := t.exact[k]
			if b.one != nil && b.one.Match.Matches(f, inPort) {
				best = b.one
			}
			for _, r := range b.more {
				if !r.Match.Matches(f, inPort) {
					continue
				}
				if best == nil || r.Priority > best.Priority ||
					(r.Priority == best.Priority && r.seq < best.seq) {
					best = r
				}
			}
		}
	}
	for _, r := range t.wild {
		if best != nil && (r.Priority < best.Priority ||
			(r.Priority == best.Priority && r.seq > best.seq)) {
			break // wild is in table order; nothing later can beat best
		}
		if r.Match.Matches(f, inPort) {
			return r
		}
	}
	return best
}

// Touch records a frame hit on rule r.
func (r *Rule) Touch(bytes int, now time.Time) {
	r.Packets++
	r.Bytes += uint64(bytes)
	r.LastUsedAt = now
}

// Validate checks internal ordering invariants; tests call it after
// randomised operation sequences.
func (t *Table) Validate() error {
	for i := 1; i < len(t.rules); i++ {
		a, b := t.rules[i-1], t.rules[i]
		if a.Priority < b.Priority {
			return fmt.Errorf("flowtable: priority order violated at %d (%d < %d)", i, a.Priority, b.Priority)
		}
		if a.Priority == b.Priority && a.seq > b.seq {
			return fmt.Errorf("flowtable: FIFO order violated among priority %d", a.Priority)
		}
	}
	if t.Capacity > 0 && len(t.rules) > t.Capacity {
		return fmt.Errorf("flowtable: %d rules exceed capacity %d", len(t.rules), t.Capacity)
	}
	for i := 1; i < len(t.wild); i++ {
		a, b := t.wild[i-1], t.wild[i]
		if a.Priority < b.Priority || (a.Priority == b.Priority && a.seq > b.seq) {
			return fmt.Errorf("flowtable: wild index order violated at %d", i)
		}
	}
	indexed := len(t.wild)
	for _, b := range t.exact {
		indexed += 1 + len(b.more)
	}
	if indexed != len(t.rules) {
		return fmt.Errorf("flowtable: index holds %d rules, table %d", indexed, len(t.rules))
	}
	return nil
}
