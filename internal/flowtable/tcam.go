package flowtable

import (
	"errors"
	"fmt"
	"time"

	"tango/internal/packet"
)

// TCAMMode selects how a TCAM charges entries of different widths against
// its capacity, reproducing the three hardware designs of Table 1.
type TCAMMode int

// TCAM operation modes.
const (
	// ModeSingleWide: entries may match only L2 or only L3 headers; a
	// double-wide (L2+L3) entry is rejected outright. Switch #1 configured
	// in "L2 only / L3 only" mode behaves this way with 4K entries.
	ModeSingleWide TCAMMode = iota
	// ModeDoubleWide: every entry occupies a double-wide slot regardless of
	// what it matches, so capacity is flat. Switch #2's 2560 entries for
	// any mix of L2/L3/L2+L3 rules indicate this mode.
	ModeDoubleWide
	// ModeAdaptive: narrow entries and wide entries are charged at
	// different rates, so capacity degrades gracefully as wide entries mix
	// in. Switch #3 (767 narrow vs 369 wide) works this way.
	ModeAdaptive
)

// String implements fmt.Stringer.
func (m TCAMMode) String() string {
	switch m {
	case ModeSingleWide:
		return "single-wide"
	case ModeDoubleWide:
		return "double-wide"
	default:
		return "adaptive"
	}
}

// TCAMConfig sizes a TCAM.
type TCAMConfig struct {
	Mode TCAMMode
	// CapacityNarrow is the entry count when every installed entry is
	// single-wide (L2-only or L3-only).
	CapacityNarrow int
	// CapacityWide is the entry count when every installed entry is
	// double-wide. Ignored in ModeSingleWide; equal to CapacityNarrow in
	// ModeDoubleWide designs like Switch #2.
	CapacityWide int
}

// ErrWidthUnsupported is returned when an entry's width cannot be installed
// in the TCAM's current mode.
var ErrWidthUnsupported = errors.New("flowtable: entry width unsupported by TCAM mode")

// TCAM is a capacity-constrained priority flow table. Space accounting uses
// exact integer "units": a narrow entry costs CapacityWide units, a wide
// entry CapacityNarrow units, against a budget of CapacityNarrow ×
// CapacityWide units. This reproduces any (narrow, wide) capacity pair
// without floating-point drift.
type TCAM struct {
	Table
	cfg       TCAMConfig
	usedUnits int64
}

// NewTCAM returns an empty TCAM with the given configuration. It panics on
// non-positive capacities, which indicate a broken vendor profile.
func NewTCAM(cfg TCAMConfig) *TCAM {
	if cfg.CapacityNarrow <= 0 {
		panic(fmt.Sprintf("flowtable: bad narrow capacity %d", cfg.CapacityNarrow))
	}
	if cfg.Mode != ModeSingleWide && cfg.CapacityWide <= 0 {
		panic(fmt.Sprintf("flowtable: bad wide capacity %d", cfg.CapacityWide))
	}
	if cfg.Mode == ModeSingleWide {
		cfg.CapacityWide = cfg.CapacityNarrow // unused but keeps units sane
	}
	return &TCAM{cfg: cfg}
}

// Config returns the TCAM's configuration.
func (t *TCAM) Config() TCAMConfig { return t.cfg }

// budgetUnits is the total space budget in units.
func (t *TCAM) budgetUnits() int64 {
	return int64(t.cfg.CapacityNarrow) * int64(t.cfg.CapacityWide)
}

// unitsFor returns the unit cost of installing an entry of width w, or an
// error when the mode cannot host it.
func (t *TCAM) unitsFor(w Width) (int64, error) {
	switch t.cfg.Mode {
	case ModeSingleWide:
		if w == WidthL2L3 {
			return 0, ErrWidthUnsupported
		}
		return int64(t.cfg.CapacityWide), nil
	case ModeDoubleWide:
		// Everything occupies a double-wide physical slot.
		return int64(t.cfg.CapacityNarrow), nil
	default: // ModeAdaptive
		if w == WidthL2L3 {
			return int64(t.cfg.CapacityNarrow), nil
		}
		return int64(t.cfg.CapacityWide), nil
	}
}

// Fits reports whether an entry of width w can currently be installed.
func (t *TCAM) Fits(w Width) bool {
	u, err := t.unitsFor(w)
	if err != nil {
		return false
	}
	return t.usedUnits+u <= t.budgetUnits()
}

// Insert installs the rule, charging its width against capacity. It returns
// the number of displaced (shifted) entries for the latency model.
func (t *TCAM) Insert(r *Rule, now time.Time) (shifted int, err error) {
	u, err := t.unitsFor(r.Match.Width())
	if err != nil {
		return 0, err
	}
	if existing := t.find(&r.Match, r.Priority); existing != nil {
		// Overwrite in place: no new space consumed.
		existing.Actions = r.Actions
		existing.Cookie = r.Cookie
		return 0, nil
	}
	if t.usedUnits+u > t.budgetUnits() {
		return 0, ErrTableFull
	}
	shifted, err = t.Table.Insert(r, now)
	if err != nil {
		return 0, err
	}
	t.usedUnits += u
	return shifted, nil
}

// Delete removes the rule identified by (match, priority), releasing space.
func (t *TCAM) Delete(m *Match, priority uint16) (*Rule, error) {
	r, err := t.Table.Delete(m, priority)
	if err != nil {
		return nil, err
	}
	t.release(r)
	return r, nil
}

// Remove evicts the specific rule pointer, releasing space.
func (t *TCAM) Remove(r *Rule) bool {
	if !t.Table.Remove(r) {
		return false
	}
	t.release(r)
	return true
}

func (t *TCAM) release(r *Rule) {
	u, err := t.unitsFor(r.Match.Width())
	if err == nil {
		t.usedUnits -= u
		if t.usedUnits < 0 {
			t.usedUnits = 0
		}
	}
}

// EffectiveCapacity returns how many more entries of width w fit right now.
func (t *TCAM) EffectiveCapacity(w Width) int {
	u, err := t.unitsFor(w)
	if err != nil {
		return 0
	}
	return int((t.budgetUnits() - t.usedUnits) / u)
}

// Lookup returns the highest-priority matching rule (see Table.Lookup).
func (t *TCAM) Lookup(f *packet.Frame, inPort uint16) *Rule {
	return t.Table.Lookup(f, inPort)
}
