package dag

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperExample builds the DAG of Figure 7: nine requests A–J (no D) where
// C→B→A, F→E, G→F(?) ... The figure's exact edge set is: B→A? The paper says
// requests A, E, H, I are independent with equal longest-path length. We
// reproduce that structure: chains A←B←C, E←F←G, H←? with extra nodes so the
// independent set is {A, E, H, I}.
func paperExample(t *testing.T) (*Graph[string], map[string]NodeID) {
	t.Helper()
	g := New[string]()
	ids := map[string]NodeID{}
	for _, name := range []string{"A", "B", "C", "E", "F", "G", "H", "I", "J"} {
		ids[name] = g.AddNode(name)
	}
	edges := [][2]string{
		{"A", "B"}, {"B", "C"}, // A before B before C
		{"E", "F"}, {"F", "G"},
		{"H", "J"}, {"I", "J"},
	}
	for _, e := range edges {
		if err := g.AddEdge(ids[e[0]], ids[e[1]]); err != nil {
			t.Fatalf("AddEdge(%s→%s): %v", e[0], e[1], err)
		}
	}
	return g, ids
}

func names(g *Graph[string], ns []NodeID) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = g.Payload(n)
	}
	return out
}

func TestIndependentSet(t *testing.T) {
	g, ids := paperExample(t)
	got := names(g, g.IndependentSet())
	want := []string{"A", "E", "H", "I"}
	if len(got) != len(want) {
		t.Fatalf("independent set = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("independent set = %v, want %v", got, want)
		}
	}
	// Completing A promotes B.
	if err := g.Remove(ids["A"]); err != nil {
		t.Fatal(err)
	}
	got = names(g, g.IndependentSet())
	want = []string{"B", "E", "H", "I"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after removing A: %v, want %v", got, want)
		}
	}
}

func TestCycleRejection(t *testing.T) {
	g := New[int]()
	a := g.AddNode(1)
	b := g.AddNode(2)
	c := g.AddNode(3)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(c, a); !errors.Is(err, ErrWouldCycle) {
		t.Fatalf("err = %v, want ErrWouldCycle", err)
	}
	if err := g.AddEdge(a, a); !errors.Is(err, ErrWouldCycle) {
		t.Fatalf("self loop err = %v, want ErrWouldCycle", err)
	}
}

func TestBadNode(t *testing.T) {
	g := New[int]()
	a := g.AddNode(1)
	if err := g.AddEdge(a, NodeID(99)); !errors.Is(err, ErrBadNode) {
		t.Fatalf("err = %v, want ErrBadNode", err)
	}
	if err := g.Remove(NodeID(-1)); !errors.Is(err, ErrBadNode) {
		t.Fatalf("err = %v, want ErrBadNode", err)
	}
	if err := g.Remove(a); err != nil {
		t.Fatal(err)
	}
	if err := g.Remove(a); !errors.Is(err, ErrBadNode) {
		t.Fatalf("double remove err = %v, want ErrBadNode", err)
	}
}

func TestTopoSortRespectsEdges(t *testing.T) {
	g, _ := paperExample(t)
	order := g.TopoSort()
	pos := map[NodeID]int{}
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != g.Len() {
		t.Fatalf("topo covers %d nodes, want %d", len(order), g.Len())
	}
	for _, n := range g.Nodes() {
		for _, s := range g.Successors(n) {
			if pos[n] >= pos[s] {
				t.Fatalf("node %v not before successor %v", g.Payload(n), g.Payload(s))
			}
		}
	}
}

func TestLevels(t *testing.T) {
	g, _ := paperExample(t)
	levels := g.Levels()
	if len(levels) != 3 {
		t.Fatalf("got %d levels, want 3", len(levels))
	}
	if got := names(g, levels[0]); len(got) != 4 {
		t.Fatalf("level 0 = %v, want 4 nodes", got)
	}
	if got := names(g, levels[2]); len(got) != 2 { // C and G
		t.Fatalf("level 2 = %v, want 2 nodes", got)
	}
}

func TestLongestPathLengths(t *testing.T) {
	g, ids := paperExample(t)
	lp := g.LongestPathLengths()
	if lp[ids["A"]] != 3 {
		t.Fatalf("A chain length = %d, want 3", lp[ids["A"]])
	}
	if lp[ids["H"]] != 2 || lp[ids["I"]] != 2 {
		t.Fatalf("H, I chain lengths = %d, %d, want 2, 2", lp[ids["H"]], lp[ids["I"]])
	}
	if lp[ids["C"]] != 1 {
		t.Fatalf("C chain length = %d, want 1", lp[ids["C"]])
	}
}

func TestWeightedCriticalPath(t *testing.T) {
	g := New[float64]()
	a := g.AddNode(10)
	b := g.AddNode(1)
	c := g.AddNode(5)
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, c); err != nil {
		t.Fatal(err)
	}
	w := g.WeightedCriticalPath(func(n NodeID) float64 { return g.Payload(n) })
	if w[a] != 15 {
		t.Fatalf("critical path from a = %v, want 15 (10+5)", w[a])
	}
	if w[b] != 1 || w[c] != 5 {
		t.Fatalf("leaf weights = %v, %v", w[b], w[c])
	}
}

func TestDrainViaIndependentSets(t *testing.T) {
	// Simulates the scheduler loop: repeatedly issue the whole independent
	// set; the graph must drain in exactly (max level + 1) rounds with no
	// node issued before its dependencies.
	g, _ := paperExample(t)
	issued := map[NodeID]bool{}
	rounds := 0
	for g.Len() > 0 {
		rounds++
		if rounds > 100 {
			t.Fatal("graph failed to drain")
		}
		batch := g.IndependentSet()
		if len(batch) == 0 {
			t.Fatal("no progress possible on non-empty DAG")
		}
		for _, n := range batch {
			for _, p := range g.pred[n] {
				if !issued[p] {
					t.Fatalf("node %v issued before predecessor %v", g.Payload(n), g.Payload(p))
				}
			}
		}
		for _, n := range batch {
			issued[n] = true
			if err := g.Remove(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if rounds != 3 {
		t.Fatalf("drained in %d rounds, want 3", rounds)
	}
}

// Property: for random DAGs (edges only from lower to higher IDs, so acyclic
// by construction), TopoSort is a permutation of live nodes respecting all
// edges, and Levels partitions the nodes.
func TestRandomDAGInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		g := New[int]()
		for i := 0; i < n; i++ {
			g.AddNode(i)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					if err := g.AddEdge(NodeID(i), NodeID(j)); err != nil {
						return false
					}
				}
			}
		}
		order := g.TopoSort()
		if len(order) != n {
			return false
		}
		pos := map[NodeID]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, id := range g.Nodes() {
			for _, s := range g.Successors(id) {
				if pos[id] >= pos[s] {
					return false
				}
			}
		}
		total := 0
		for _, level := range g.Levels() {
			total += len(level)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: random edge insertions never produce a graph in which a cycle is
// observable: AddEdge(u,v) succeeding implies v cannot reach u.
func TestNoCycleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New[int]()
		const n = 12
		for i := 0; i < n; i++ {
			g.AddNode(i)
		}
		for k := 0; k < 60; k++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			err := g.AddEdge(u, v)
			if err == nil && g.reachable(v, u) {
				return false
			}
		}
		// A DAG must always have a non-empty independent set.
		return len(g.IndependentSet()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
