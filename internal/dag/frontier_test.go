package dag

import (
	"errors"
	"math/rand"
	"testing"
)

// sameIDs reports whether a and b are identical sequences.
func sameIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFrontierMatchesIndependentSet cross-checks the incremental frontier
// against the reference scan on the paper's Figure 7 example through a full
// drain via single Removes.
func TestFrontierMatchesIndependentSet(t *testing.T) {
	g, _ := paperExample(t)
	for g.Len() > 0 {
		want := g.IndependentSet()
		got := g.Frontier()
		if !sameIDs(got, want) {
			t.Fatalf("Frontier() = %v, IndependentSet() = %v", got, want)
		}
		if err := g.Remove(want[0]); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Frontier(); len(got) != 0 {
		t.Fatalf("drained graph frontier = %v", got)
	}
}

// TestRemoveBatchUnblocks pins the O(out-degree) emission contract: only
// nodes whose last live predecessor left with the batch are reported, in
// ascending ID order, and batch members are never reported.
func TestRemoveBatchUnblocks(t *testing.T) {
	g := New[string]()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	d := g.AddNode("d")
	e := g.AddNode("e")
	for _, edge := range [][2]NodeID{{a, c}, {b, c}, {a, d}, {c, e}} {
		if err := g.AddEdge(edge[0], edge[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Removing {a} unblocks d but not c (b still live).
	got, err := g.RemoveBatch([]NodeID{a})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []NodeID{d}) {
		t.Fatalf("unblocked = %v, want [d=%d]", got, d)
	}
	// Removing {b, c} unblocks e; c is unblocked by b's removal mid-batch
	// but, being a batch member, must not be reported.
	got, err = g.RemoveBatch([]NodeID{b, c})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []NodeID{e}) {
		t.Fatalf("unblocked = %v, want [e=%d]", got, e)
	}
	if want := g.IndependentSet(); !sameIDs(g.Frontier(), want) {
		t.Fatalf("frontier %v != reference %v", g.Frontier(), want)
	}
}

func TestRemoveBatchRejectsBadAndDuplicateNodes(t *testing.T) {
	g := New[int]()
	a := g.AddNode(1)
	b := g.AddNode(2)
	if _, err := g.RemoveBatch([]NodeID{a, NodeID(99)}); !errors.Is(err, ErrBadNode) {
		t.Fatalf("bad node err = %v", err)
	}
	if _, err := g.RemoveBatch([]NodeID{a, a}); !errors.Is(err, ErrBadNode) {
		t.Fatalf("duplicate err = %v", err)
	}
	// Failed batches must leave the graph untouched.
	if g.Len() != 2 || g.Removed(a) || g.Removed(b) {
		t.Fatalf("failed batch mutated graph: len=%d", g.Len())
	}
	if want := g.IndependentSet(); !sameIDs(g.Frontier(), want) {
		t.Fatalf("frontier %v != reference %v", g.Frontier(), want)
	}
}

// TestFrontierDifferential drains randomized DAGs with a mix of RemoveBatch
// (random frontier subsets plus same-batch dependent followers) and single
// Removes, comparing Frontier() against the IndependentSet() reference scan
// after every mutation. This is the randomized gate for the incremental
// Kahn machinery; the CI race job runs it under -race.
func TestFrontierDifferential(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New[int]()
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			g.AddNode(i)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.1 {
					if err := g.AddEdge(NodeID(i), NodeID(j)); err != nil {
						t.Fatalf("seed %d: AddEdge: %v", seed, err)
					}
				}
			}
		}
		for g.Len() > 0 {
			want := g.IndependentSet()
			got := g.Frontier()
			if !sameIDs(got, want) {
				t.Fatalf("seed %d: frontier %v != reference %v", seed, got, want)
			}
			if rng.Intn(4) == 0 {
				// Single reference-path removal.
				if err := g.Remove(want[rng.Intn(len(want))]); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				continue
			}
			// Random non-empty frontier subset...
			batch := make([]NodeID, 0, len(want))
			for _, id := range want {
				if rng.Float64() < 0.6 {
					batch = append(batch, id)
				}
			}
			if len(batch) == 0 {
				batch = append(batch, want[0])
			}
			// ...plus followers whose live predecessors all sit in the batch
			// (the concurrent extension's co-issue shape).
			inBatch := map[NodeID]bool{}
			for _, id := range batch {
				inBatch[id] = true
			}
			for _, id := range batch {
				for _, s := range g.Successors(id) {
					if inBatch[s] {
						continue
					}
					ok := true
					for _, p := range g.Predecessors(s) {
						if !inBatch[p] {
							ok = false
							break
						}
					}
					if ok && rng.Intn(2) == 0 {
						inBatch[s] = true
						batch = append(batch, s)
					}
				}
			}
			unblocked, err := g.RemoveBatch(batch)
			if err != nil {
				t.Fatalf("seed %d: RemoveBatch: %v", seed, err)
			}
			// Every reported node must now be in the reference independent
			// set, and must not have been there before... the cheap check:
			// all unblocked nodes are live with zero live predecessors.
			for _, id := range unblocked {
				if g.Removed(id) || len(g.Predecessors(id)) != 0 {
					t.Fatalf("seed %d: unblocked node %d not independent", seed, id)
				}
			}
		}
		if got := g.Frontier(); len(got) != 0 {
			t.Fatalf("seed %d: drained frontier = %v", seed, got)
		}
	}
}
