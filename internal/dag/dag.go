// Package dag implements the directed-acyclic-graph machinery behind the
// Tango scheduler (§6 of the paper). Nodes are switch requests; an edge
// A → B means A must complete before B may be issued. The scheduler
// repeatedly extracts the current *independent set* — nodes with no
// unfinished predecessors — orders it with a Tango pattern, issues it, and
// removes the finished requests.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node within one Graph. IDs are dense and assigned by
// AddNode in increasing order starting from zero.
type NodeID int

// Graph is a mutable DAG with arbitrary per-node payloads.
// The zero value is an empty graph ready for use.
//
// Alongside the adjacency lists the graph maintains an incremental Kahn
// frontier: a live-indegree counter per node and the set of live nodes whose
// counter is zero. Remove and RemoveBatch update both in O(out-degree), so
// the scheduler's round loop never rescans the whole graph; IndependentSet
// recomputes the same set from scratch and is kept as the differential-test
// reference.
type Graph[T any] struct {
	payload []T
	succ    [][]NodeID
	pred    [][]NodeID
	removed []bool
	live    int

	// indeg[i] counts live predecessors of live node i (stale for removed
	// nodes). inFrontier marks nodes with indeg zero; frontier lists them,
	// possibly with stale or duplicate entries that Frontier() compacts
	// lazily (membership truth lives in inFrontier).
	indeg         []int
	inFrontier    []bool
	frontier      []NodeID
	frontierClean bool
}

// New returns an empty graph.
func New[T any]() *Graph[T] { return &Graph[T]{} }

// AddNode inserts a node carrying payload v and returns its ID.
func (g *Graph[T]) AddNode(v T) NodeID {
	id := NodeID(len(g.payload))
	g.payload = append(g.payload, v)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.removed = append(g.removed, false)
	g.live++
	g.indeg = append(g.indeg, 0)
	g.inFrontier = append(g.inFrontier, true)
	// Appending the new maximum ID preserves the compacted (sorted, no
	// stale entries) state, so frontierClean is left as-is.
	g.frontier = append(g.frontier, id)
	return id
}

// ErrWouldCycle is returned by AddEdge when the edge would create a cycle.
var ErrWouldCycle = errors.New("dag: edge would create a cycle")

// ErrBadNode is returned when a node ID is out of range or removed.
var ErrBadNode = errors.New("dag: unknown node")

func (g *Graph[T]) check(id NodeID) error {
	if id < 0 || int(id) >= len(g.payload) || g.removed[id] {
		return fmt.Errorf("%w: %d", ErrBadNode, id)
	}
	return nil
}

// AddEdge adds the dependency from → to ("from must finish before to").
// It rejects self-loops and edges that would create a cycle, keeping the
// graph a DAG by construction: the paper requires that "if the dependency
// forms a loop, the upper layer must break the loop".
func (g *Graph[T]) AddEdge(from, to NodeID) error {
	if err := g.check(from); err != nil {
		return err
	}
	if err := g.check(to); err != nil {
		return err
	}
	if from == to {
		return ErrWouldCycle
	}
	if g.reachable(to, from) {
		return ErrWouldCycle
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.indeg[to]++
	if g.inFrontier[to] {
		// Lazy eviction: the stale slice entry is filtered on the next
		// Frontier() compaction.
		g.inFrontier[to] = false
		g.frontierClean = false
	}
	return nil
}

// reachable reports whether dst is reachable from src over live nodes.
func (g *Graph[T]) reachable(src, dst NodeID) bool {
	if src == dst {
		return true
	}
	seen := make(map[NodeID]bool)
	stack := []NodeID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succ[n] {
			if g.removed[s] || seen[s] {
				continue
			}
			if s == dst {
				return true
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return false
}

// Len returns the number of live (not yet removed) nodes.
func (g *Graph[T]) Len() int { return g.live }

// Payload returns the payload attached to id.
func (g *Graph[T]) Payload(id NodeID) T { return g.payload[id] }

// SetPayload replaces the payload attached to id.
func (g *Graph[T]) SetPayload(id NodeID, v T) { g.payload[id] = v }

// Remove marks a node finished and detaches it from the graph, potentially
// promoting its successors into the independent set. The frontier is
// maintained incrementally in O(out-degree).
func (g *Graph[T]) Remove(id NodeID) error {
	if err := g.check(id); err != nil {
		return err
	}
	g.detach(id, nil)
	return nil
}

// detach removes a checked-live node, decrements its live successors'
// indegree counters, and promotes newly-unblocked successors into the
// frontier. When emit is non-nil, promoted nodes are appended to *emit.
func (g *Graph[T]) detach(id NodeID, emit *[]NodeID) {
	g.removed[id] = true
	g.live--
	if g.inFrontier[id] {
		g.inFrontier[id] = false
		g.frontierClean = false
	}
	for _, s := range g.succ[id] {
		if g.removed[s] {
			continue
		}
		g.indeg[s]--
		if g.indeg[s] == 0 {
			g.inFrontier[s] = true
			g.frontier = append(g.frontier, s)
			g.frontierClean = false
			if emit != nil {
				*emit = append(*emit, s)
			}
		}
	}
}

// RemoveBatch removes every node in ids (all must be live; duplicates are
// rejected as ErrBadNode on the second occurrence) and returns the nodes the
// batch newly unblocked — live nodes whose last live predecessor was in the
// batch — in ascending ID order. Nodes removed by the batch itself are never
// reported, so issuing a frontier slice plus co-issued followers works. Cost
// is O(Σ out-degree(ids) + k log k) for k unblocked nodes, independent of
// graph size.
func (g *Graph[T]) RemoveBatch(ids []NodeID) ([]NodeID, error) {
	for i, id := range ids {
		err := g.check(id)
		if err == nil {
			// Marking inside the validation loop doubles as duplicate
			// detection; the marks are cleared before detaching.
			g.removed[id] = true
			continue
		}
		for _, done := range ids[:i] {
			g.removed[done] = false
		}
		return nil, err
	}
	for _, id := range ids {
		g.removed[id] = false
	}
	var unblocked []NodeID
	for _, id := range ids {
		g.detach(id, &unblocked)
	}
	// A batch member can be "unblocked" by an earlier member before its own
	// detach; filter those and sort what remains.
	out := unblocked[:0]
	for _, id := range unblocked {
		if !g.removed[id] {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// Frontier returns the live nodes with no live predecessors in ascending ID
// order — the same set IndependentSet computes by scanning, maintained
// incrementally. The returned slice is owned by the graph and valid until
// the next mutation.
func (g *Graph[T]) Frontier() []NodeID {
	if !g.frontierClean {
		g.compactFrontier()
	}
	return g.frontier
}

// compactFrontier drops stale and duplicate entries and sorts. Amortised
// O(f log f) for f frontier entries: every entry was appended by exactly one
// promotion (or AddNode), and compaction consumes them.
func (g *Graph[T]) compactFrontier() {
	kept := g.frontier[:0]
	for _, id := range g.frontier {
		if g.inFrontier[id] && !g.removed[id] {
			kept = append(kept, id)
		}
	}
	sort.Slice(kept, func(a, b int) bool { return kept[a] < kept[b] })
	// Dedupe adjacent entries: a node that left and re-entered the frontier
	// between compactions appears twice.
	out := kept[:0]
	for i, id := range kept {
		if i > 0 && id == kept[i-1] {
			continue
		}
		out = append(out, id)
	}
	g.frontier = out
	g.frontierClean = true
}

// Removed reports whether id has been removed.
func (g *Graph[T]) Removed(id NodeID) bool {
	return id >= 0 && int(id) < len(g.removed) && g.removed[id]
}

// Nodes returns the IDs of all live nodes in ascending order.
func (g *Graph[T]) Nodes() []NodeID {
	out := make([]NodeID, 0, g.live)
	for i := range g.payload {
		if !g.removed[i] {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Successors returns the live successors of id.
func (g *Graph[T]) Successors(id NodeID) []NodeID {
	var out []NodeID
	for _, s := range g.succ[id] {
		if !g.removed[s] {
			out = append(out, s)
		}
	}
	return out
}

// InDegree returns the number of live predecessors of id without
// materializing them — the counter the incremental frontier maintains.
func (g *Graph[T]) InDegree(id NodeID) int { return g.indeg[id] }

// Predecessors returns the live predecessors of id.
func (g *Graph[T]) Predecessors(id NodeID) []NodeID {
	var out []NodeID
	for _, p := range g.pred[id] {
		if !g.removed[p] {
			out = append(out, p)
		}
	}
	return out
}

// IndependentSet returns all live nodes with no live predecessors, in
// ascending ID order. These are the requests the scheduler may issue now.
func (g *Graph[T]) IndependentSet() []NodeID {
	var out []NodeID
	for i := range g.payload {
		if g.removed[i] {
			continue
		}
		if len(g.Predecessors(NodeID(i))) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// TopoSort returns the live nodes in a topological order (dependencies
// first). Ties are broken by ascending node ID so the order is
// deterministic.
func (g *Graph[T]) TopoSort() []NodeID {
	indeg := make(map[NodeID]int, g.live)
	for _, n := range g.Nodes() {
		indeg[n] = len(g.Predecessors(n))
	}
	var ready []NodeID
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
	out := make([]NodeID, 0, g.live)
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		var promoted []NodeID
		for _, s := range g.Successors(n) {
			indeg[s]--
			if indeg[s] == 0 {
				promoted = append(promoted, s)
			}
		}
		sort.Slice(promoted, func(a, b int) bool { return promoted[a] < promoted[b] })
		// Merge while keeping determinism; simple append+sort is fine at the
		// scales the scheduler works with.
		ready = append(ready, promoted...)
		sort.Slice(ready, func(a, b int) bool { return ready[a] < ready[b] })
	}
	return out
}

// Levels returns the live nodes grouped by dependency depth: level 0 is the
// independent set, level i+1 contains nodes all of whose predecessors sit in
// levels ≤ i with at least one in level i. The paper's Figure 11 experiments
// are parameterised by the number of DAG levels.
func (g *Graph[T]) Levels() [][]NodeID {
	depth := make(map[NodeID]int, g.live)
	for _, n := range g.TopoSort() {
		d := 0
		for _, p := range g.Predecessors(n) {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[n] = d
	}
	maxd := -1
	for _, d := range depth {
		if d > maxd {
			maxd = d
		}
	}
	levels := make([][]NodeID, maxd+1)
	for _, n := range g.Nodes() {
		levels[depth[n]] = append(levels[depth[n]], n)
	}
	return levels
}

// LongestPathLengths returns, for every live node, the number of nodes on
// the longest dependency chain starting at that node (counting itself).
// Critical-path schedulers (Dionysus) prioritise nodes with larger values.
func (g *Graph[T]) LongestPathLengths() map[NodeID]int {
	order := g.TopoSort()
	length := make(map[NodeID]int, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		best := 0
		for _, s := range g.Successors(n) {
			if length[s] > best {
				best = length[s]
			}
		}
		length[n] = best + 1
	}
	return length
}

// WeightedCriticalPath returns, for every live node, the total weight of the
// heaviest dependency chain starting at that node, where weight(n) is
// supplied by the caller (e.g. estimated installation latency). Dionysus
// uses operation counts; Tango's concurrent-dependent extension uses
// latency estimates from the score database.
func (g *Graph[T]) WeightedCriticalPath(weight func(NodeID) float64) map[NodeID]float64 {
	order := g.TopoSort()
	total := make(map[NodeID]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		best := 0.0
		for _, s := range g.Successors(n) {
			if total[s] > best {
				best = total[s]
			}
		}
		total[n] = best + weight(n)
	}
	return total
}
