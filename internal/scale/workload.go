package scale

import (
	"tango/internal/topo"
)

// workload.go lays flows out over the B4 fabric and turns the harness'
// control-plane decisions (TE re-allocation, link failure, restoration)
// into per-site operation lists. Everything here runs on the harness
// goroutine between epochs: shards only ever *execute* the opSpec lists,
// so planning can read cross-site state (loads, paths, the topology graph)
// without synchronisation.

// Flow-ID address blocks. Probe addresses repeat every 1<<24 IDs, so all
// three populations stay below that bound and clear of each other:
// resident flows are blocked per ordered site pair at pair*flowStride,
// churn and inference mint from dedicated high bases.
const (
	flowStride         = 1 << 16
	residentBase       = uint32(1)
	churnFlowBase      = uint32(12 << 20)
	inferFlowBase      = uint32(14 << 20)
	// rulePriority is shared by resident rules, churn installs, and
	// inference probe rules. One priority keeps every install an O(1)
	// append into the sorted software table (no memmove at the front of a
	// ~100K-entry slice) and zeroes the TCAM shift term of the virtual
	// cost model, so neither real nor virtual time depends on table size.
	rulePriority = uint16(100)
	// blockFlows is the layout granularity: pairs gain flows in blocks so
	// the greedy fill interleaves pairs fairly.
	blockFlows = 256
	// maxPairFlows caps one pair's population, bounding the FlowMod storm
	// a single TE move can emit.
	maxPairFlows = 8192
	// siteCap bounds planned residency per site: TCAM (2048) + software
	// (1<<17) minus headroom for churn installs and inference transients.
	siteCap = 2048 + 1<<17 - 10240
)

// flowBase returns the first resident flow ID of ordered pair p.
func flowBase(p int) uint32 { return residentBase + uint32(p)*flowStride }

// op kinds executed by shards.
const (
	opAdd = uint8(iota)
	opMod
	opDel
)

// opSpec is one planned control-plane operation: apply kind to every
// resident flow of pair, forwarding out port (adds/mods). Shards expand it
// into per-flow FlowMods; keeping it pair-granular makes the plan lists a
// few entries long regardless of flow count. Layout is gated in
// layout_test.go: phases append thousands of these per storm epoch.
type opSpec struct {
	pair int32
	port uint16
	kind uint8
}

// pairInfo is one ordered site pair and its currently installed path.
type pairInfo struct {
	path     []string
	src, dst int32
}

// move is one planned pair migration.
type move struct {
	pair     int32
	old, new []string
}

// buildPairs enumerates ordered pairs over the sorted site list with their
// initial shortest paths.
func (h *harness) buildPairs() {
	n := len(h.names)
	h.pairs = make([]pairInfo, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			h.pairs = append(h.pairs, pairInfo{
				src:  int32(i),
				dst:  int32(j),
				path: h.g.ShortestPath(h.names[i], h.names[j]),
			})
		}
	}
	h.counts = make([]int32, len(h.pairs))
	h.siteLoad = make([]int, n)
}

// layout fills pair populations round-robin in blockFlows blocks until the
// fleet-wide resident-rule target is met, each site capped at siteCap.
// Returns the planned resident rule count (flows × on-path switches,
// destination excluded).
func (h *harness) layout(target int) int {
	planned := 0
	for planned < target {
		progressed := false
		for p := range h.pairs {
			if planned >= target {
				break
			}
			if h.counts[p] >= maxPairFlows {
				continue
			}
			path := h.pairs[p].path
			if len(path) < 2 || !h.roomFor(path, nil, blockFlows) {
				continue
			}
			h.addLoad(path, nil, blockFlows)
			h.counts[p] += blockFlows
			planned += blockFlows * (len(path) - 1)
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return planned
}

// roomFor reports whether every switch on path (destination excluded, and
// excluding switches also on except) can absorb n more resident rules.
func (h *harness) roomFor(path, except []string, n int) bool {
	for i := 0; i+1 < len(path); i++ {
		if onPath(except, path[i]) {
			continue
		}
		if h.siteLoad[h.siteIdx[path[i]]]+n > siteCap {
			return false
		}
	}
	return true
}

// addLoad charges n rules to every switch on path except the destination
// and switches shared with except (whose rules are modified in place).
func (h *harness) addLoad(path, except []string, n int) {
	for i := 0; i+1 < len(path); i++ {
		if onPath(except, path[i]) {
			continue
		}
		h.siteLoad[h.siteIdx[path[i]]] += n
	}
}

func onPath(path []string, sw string) bool {
	for _, s := range path {
		if s == sw {
			return true
		}
	}
	return false
}

// installPlan seeds every site's phase-A op list with the initial adds, in
// pair order — the per-site install order that makes "TCAM = first 2048
// installs" a deterministic statement.
func (h *harness) installPlan() {
	for p := range h.pairs {
		if h.counts[p] == 0 {
			continue
		}
		path := h.pairs[p].path
		for i := 0; i+1 < len(path); i++ {
			st := h.sites[h.siteIdx[path[i]]]
			st.opsA = append(st.opsA, opSpec{pair: int32(p), port: st.ports[path[i+1]], kind: opAdd})
		}
	}
}

// applyMoves turns accepted pair migrations into per-site phase-A (adds and
// mods, reverse-path ordered by DiffAssignments) and phase-B (dels) op
// lists, and updates pair paths and site loads.
func (h *harness) applyMoves(moves []move) {
	if len(moves) == 0 {
		return
	}
	oldA, newA := topo.Allocation{}, topo.Allocation{}
	newBy := map[uint32][]string{}
	for _, mv := range moves {
		oldA[uint32(mv.pair)] = mv.old
		newA[uint32(mv.pair)] = mv.new
		newBy[uint32(mv.pair)] = mv.new
	}
	for _, ch := range topo.DiffAssignments(oldA, newA) {
		st := h.sites[h.siteIdx[ch.Switch]]
		sp := opSpec{pair: int32(ch.FlowID)}
		switch ch.Kind {
		case topo.ChangeDel:
			sp.kind = opDel
			st.opsB = append(st.opsB, sp)
		default:
			sp.kind = opAdd
			if ch.Kind == topo.ChangeMod {
				sp.kind = opMod
			}
			sp.port = st.ports[nextHop(newBy[ch.FlowID], ch.Switch)]
			st.opsA = append(st.opsA, sp)
		}
	}
	for _, mv := range moves {
		n := int(h.counts[mv.pair])
		h.addLoad(mv.new, mv.old, n)
		h.addLoad(mv.old, mv.new, -n)
		h.pairs[mv.pair].path = mv.new
		h.res.PairMoves++
	}
}

// nextHop returns the node after sw on path ("" when sw is absent or last —
// callers only ask for switches DiffAssignments placed on the path).
func nextHop(path []string, sw string) string {
	for i := 0; i+1 < len(path); i++ {
		if path[i] == sw {
			return path[i+1]
		}
	}
	return ""
}

// planTE runs one network-wide max-min fair re-allocation round: draw fresh
// demands, allocate over current paths, and migrate the most starved pairs
// onto their best alternate path, capacity permitting.
func (h *harness) planTE() {
	demands := make([]topo.Demand, len(h.pairs))
	paths := topo.Allocation{}
	for p, pi := range h.pairs {
		demands[p] = topo.Demand{
			FlowID: uint32(p),
			Src:    h.names[pi.src],
			Dst:    h.names[pi.dst],
			Rate:   1 + 3*h.rng.Float64(),
		}
		paths[uint32(p)] = pi.path
	}
	granted := topo.MaxMinFair(h.g, paths, demands)

	type starved struct {
		pair int32
		gap  float64
	}
	var cands []starved
	for p := range h.pairs {
		if gap := demands[p].Rate - granted[uint32(p)]; gap > 1e-9 && h.counts[p] > 0 {
			cands = append(cands, starved{int32(p), gap})
		}
	}
	// Largest starvation first; pair index breaks ties deterministically.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].gap > cands[j-1].gap ||
			(cands[j].gap == cands[j-1].gap && cands[j].pair < cands[j-1].pair)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	var moves []move
	for _, c := range cands {
		if len(moves) >= h.o.MaxMoves {
			break
		}
		pi := h.pairs[c.pair]
		var alt []string
		for _, p := range h.g.KShortestPaths(h.names[pi.src], h.names[pi.dst], 2) {
			if !samePath(p, pi.path) {
				alt = p
				break
			}
		}
		if alt == nil || !h.roomFor(alt, pi.path, int(h.counts[c.pair])) {
			h.res.MovesSkipped++
			continue
		}
		moves = append(moves, move{pair: c.pair, old: pi.path, new: alt})
		h.addLoad(alt, pi.path, int(h.counts[c.pair])) // reserve while planning
		h.addLoad(pi.path, alt, -int(h.counts[c.pair]))
	}
	// applyMoves re-charges loads; undo the planning reservation first.
	for _, mv := range moves {
		h.addLoad(mv.new, mv.old, -int(h.counts[mv.pair]))
		h.addLoad(mv.old, mv.new, int(h.counts[mv.pair]))
	}
	h.applyMoves(moves)
}

// planFail removes the storm link and re-paths every pair riding it.
func (h *harness) planFail() {
	h.g.RemoveLink(failLinkA, failLinkB)
	var moves []move
	for p, pi := range h.pairs {
		if h.counts[p] == 0 || !usesLink(pi.path, failLinkA, failLinkB) {
			continue
		}
		alt := h.g.ShortestPath(h.names[pi.src], h.names[pi.dst])
		if alt == nil || !h.roomFor(alt, pi.path, int(h.counts[p])) {
			h.res.MovesSkipped++
			continue
		}
		h.saved[int32(p)] = pi.path
		moves = append(moves, move{pair: int32(p), old: pi.path, new: alt})
		h.addLoad(alt, pi.path, int(h.counts[p]))
		h.addLoad(pi.path, alt, -int(h.counts[p]))
	}
	for _, mv := range moves {
		h.addLoad(mv.new, mv.old, -int(h.counts[mv.pair]))
		h.addLoad(mv.old, mv.new, int(h.counts[mv.pair]))
	}
	h.applyMoves(moves)
}

// planRestore brings the failed link back and returns displaced pairs to
// their pre-failure paths.
func (h *harness) planRestore() {
	h.g.AddLink(failLinkA, failLinkB, failLinkCap)
	var moves []move
	for p := range h.pairs {
		old, ok := h.saved[int32(p)]
		if !ok {
			continue
		}
		cur := h.pairs[p].path
		if samePath(cur, old) || !h.roomFor(old, cur, int(h.counts[p])) {
			if !samePath(cur, old) {
				h.res.MovesSkipped++
			}
			continue
		}
		moves = append(moves, move{pair: int32(p), old: cur, new: old})
		h.addLoad(old, cur, int(h.counts[p]))
		h.addLoad(cur, old, -int(h.counts[p]))
	}
	for _, mv := range moves {
		h.addLoad(mv.new, mv.old, -int(h.counts[mv.pair]))
		h.addLoad(mv.old, mv.new, int(h.counts[mv.pair]))
	}
	h.applyMoves(moves)
	h.saved = map[int32][]string{}
}

// The storm severs a central B4 link; uniform capacities make the exact
// choice immaterial, a middle link just maximises affected pairs.
const (
	failLinkA   = "b4-05"
	failLinkB   = "b4-07"
	failLinkCap = 100
)

func usesLink(path []string, a, b string) bool {
	for i := 0; i+1 < len(path); i++ {
		if (path[i] == a && path[i+1] == b) || (path[i] == b && path[i+1] == a) {
			return true
		}
	}
	return false
}

func samePath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
