// Package scale is the sharded discrete-event core: it drives all twelve
// B4 sites as concurrently emulated switches — each site's switchsim.Switch
// on a shard goroutine with a shard-local virtual clock — at million-flow
// residency, with live timeout churn and property inference running against
// the same tables.
//
// Determinism contract (the one DESIGN.md documents and the differential
// test enforces): within an epoch, every event a shard processes is a
// function of per-site state only — the site's switch, clock, RNG, churn
// driver, and flight track. Cross-site interaction happens exclusively on
// the harness goroutine between phases, after a WaitGroup barrier, when
// simclock.Group.Align advances every shard-local clock to the fleet
// frontier. Control-plane interactions (FlowMod storms from TE diffs and
// link failures, probe measurements, inference rounds) therefore rendezvous
// at epoch barriers, and every emulated RTT and expiry deadline is
// bit-identical whether the sites run on 1 goroutine or 12.
package scale

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"tango/internal/conformance"
	"tango/internal/core/infer"
	"tango/internal/core/probe"
	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
	"tango/internal/simclock"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
	"tango/internal/topo"
	"tango/internal/workload"
)

// Options configures a scale-harness run. The zero value is the B4-wide
// million-flow benchmark configuration.
type Options struct {
	// Flows is the fleet-wide resident-rule target (default 1<<20). The
	// layout places flows on ordered site pairs; each flow installs one
	// rule per on-path switch except the destination.
	Flows int
	// Shards is the number of shard goroutines sites are distributed over
	// (default: one per site). Shards=1 is the serial reference run the
	// differential test compares against.
	Shards int
	// Epochs is the number of simulation epochs (default 12).
	Epochs int
	// EventsPerEpoch is the data-plane sends per site per epoch (default
	// 4096); each send is a 1..BurstMax packet burst.
	EventsPerEpoch int
	// ProbesPerEpoch is the RTT measurement probes per site per epoch
	// (default 128), interleaved with the data events.
	ProbesPerEpoch int
	// BurstMax bounds the per-send burst size (default 4).
	BurstMax int
	// TEEvery runs a max-min fair re-allocation on epochs where
	// ep%TEEvery == TEEvery-1 (default 4; storm epochs take precedence).
	TEEvery int
	// MaxMoves caps pair migrations per TE round (default 16).
	MaxMoves int
	// FailEpoch is the link-failure storm epoch (default Epochs/2); the
	// link is restored two epochs later. Negative disables the storm.
	FailEpoch int
	// InferEvery runs size inference on a rotating site on epochs where
	// ep%InferEvery == 1 (default 4). Negative disables inference.
	InferEvery int
	// InferMaxRules caps each inference round's probe rules (default 2048).
	InferMaxRules int
	// ChurnRate and ChurnFlows shape the fleet-wide timeout-churn schedule
	// (defaults 10 events per virtual second over 1536 flows, spanning
	// ChurnDuration of virtual time). Negative ChurnRate disables churn.
	ChurnRate     float64
	ChurnFlows    int
	ChurnDuration time.Duration
	// Seed fixes every RNG in the run.
	Seed int64
	// Flight receives per-site probe RTT samples (default: the process
	// flight recorder, if installed). Samples record the virtual instant
	// for both timestamps, keeping exports shard-count invariant.
	Flight *telemetry.FlightRecorder
	// Registry receives the deterministic fleet-level fold (default: the
	// process registry, if installed). Per-site registries are always
	// created internally and snapshotted into Result.Snapshots.
	Registry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Flows <= 0 {
		o.Flows = 1 << 20
	}
	if o.Epochs <= 0 {
		o.Epochs = 12
	}
	if o.EventsPerEpoch <= 0 {
		o.EventsPerEpoch = 4096
	}
	if o.ProbesPerEpoch <= 0 {
		o.ProbesPerEpoch = 128
	}
	if o.BurstMax <= 0 {
		o.BurstMax = 4
	}
	if o.TEEvery <= 0 {
		o.TEEvery = 4
	}
	if o.MaxMoves <= 0 {
		o.MaxMoves = 16
	}
	if o.FailEpoch == 0 {
		o.FailEpoch = o.Epochs / 2
	}
	if o.InferEvery == 0 {
		o.InferEvery = 4
	}
	if o.InferMaxRules <= 0 {
		o.InferMaxRules = 2048
	}
	if o.ChurnRate == 0 {
		o.ChurnRate = 10
	}
	if o.ChurnFlows <= 0 {
		o.ChurnFlows = 1536
	}
	if o.ChurnDuration <= 0 {
		o.ChurnDuration = 4 * time.Hour
	}
	if o.Flight == nil {
		o.Flight = telemetry.DefaultFlight()
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default()
	}
	return o
}

// SiteStats is one site's end-of-run occupancy and switch counters.
type SiteStats struct {
	Name     string
	TCAM     int
	Software int
	Stats    switchsim.Stats
}

// Result is the harness' outcome. All fields except the wall-time-derived
// trio (SetupWall, EpochWall, EventsPerSec) are deterministic functions of
// Options; Deterministic returns a copy with that trio zeroed, which the
// sharded-vs-serial differential compares with DeepEqual.
type Result struct {
	Sites, Shards, Epochs int

	// FlowsResident is the fleet-wide resident rule count after setup;
	// FlowsDistinct the distinct resident flow IDs backing them;
	// FlowsResidentEnd the rule count at the end of the run (churn,
	// inference transients, and failed moves shift it).
	FlowsResident    int
	FlowsDistinct    int
	FlowsResidentEnd int

	// Events counts discrete events processed during the epoch loop:
	// data-plane packets plus control-plane FlowMods (setup excluded).
	Events       uint64
	RuleOps      uint64
	Expirations  uint64
	TableFull    uint64
	Errs         uint64
	PairMoves    int
	MovesSkipped int

	// Probe measurements, fleet-wide.
	ProbeSamples int
	ProbePunts   uint64
	P50ProbeRTT  time.Duration
	P99ProbeRTT  time.Duration

	// MaxShardLag is the largest clock spread observed at any barrier —
	// how far the fastest site's virtual clock ran ahead within a phase.
	MaxShardLag time.Duration

	// Inference activity (descriptive; accuracy is covered elsewhere).
	InferRuns   int
	InferRules  int
	InferProbes int

	// Churn totals across all per-site drivers.
	ChurnApplied  int
	ChurnInstalls int
	ChurnTouches  int
	ChurnErrs     int

	PerSite []SiteStats
	// Snapshots are the per-site telemetry registries, site order, TakenAt
	// zeroed so they compare shard-count invariant.
	Snapshots []*telemetry.Snapshot

	// Wall-clock measurements; excluded from Deterministic.
	SetupWall    time.Duration
	EpochWall    time.Duration
	EventsPerSec float64
}

// Deterministic returns a copy with the wall-time-derived fields and the
// shard-count configuration echo zeroed; everything remaining must be
// invariant under the shard count.
func (r *Result) Deterministic() *Result {
	c := *r
	c.Shards = 0
	c.SetupWall, c.EpochWall, c.EventsPerSec = 0, 0, 0
	return &c
}

// tally is a site's hot event counters, folded by the harness after the
// run. Layout gated: one lives in every site struct.
type tally struct {
	packets   uint64
	ruleOps   uint64
	tableFull uint64
	errs      uint64
	punted    uint64
}

// site is one B4 site: an emulated switch on its own virtual clock, the
// churn-wrapped device view, a probe engine for inference, and everything
// its shard goroutine touches during a phase. No field is accessed by any
// other goroutine while a phase runs.
type site struct {
	idx      int
	name     string
	sw       *switchsim.Switch
	dev      probe.Device
	fdev     probe.FrameDevice
	eng      *probe.Engine
	reg      *telemetry.Registry
	track    *telemetry.FlightTrack
	churn    *conformance.ChurnDriver
	rng      *rand.Rand
	frame    *packet.Frame
	fm       openflow.FlowMod
	acts     map[uint16][]flowtable.Action
	ports    map[string]uint16
	hostPort uint16

	ing, hot []int32 // ingress pairs (src == this site) and the hot subset
	opsA     []opSpec
	opsB     []opSpec
	rtts     []time.Duration
	tally    tally

	inferRuns, inferRules, inferProbes int
}

// harness wires sites, shards, and clocks together for one run.
type harness struct {
	o       Options
	g       *topo.Graph
	names   []string
	siteIdx map[string]int
	sites   []*site
	group   *simclock.Group
	pools   []*framePool
	rng     *rand.Rand

	pairs    []pairInfo
	counts   []int32
	siteLoad []int
	saved    map[int32][]string

	probeStride int
	inferEpoch  bool
	inferSite   int
	inferBase   uint32
	inferRun    int

	res *Result
}

// scaleProfile is the per-site switch model: Switch#1's policy-cache
// hierarchy and latency calibration with the software table widened to the
// emulator's "virtually unlimited" bound, named after the site so telemetry
// labels distinguish sites.
func scaleProfile(name string) switchsim.Profile {
	p := switchsim.Switch1()
	p.Name = name
	p.SoftwareCapacity = 1 << 17
	return p
}

// Run executes the scenario described by o and returns the folded result.
func Run(o Options) (*Result, error) {
	o = o.withDefaults()
	h := &harness{o: o, res: &Result{}, saved: map[int32][]string{}}
	h.rng = rand.New(rand.NewSource(o.Seed))

	setupStart := time.Now()
	h.build()
	h.layout(h.o.Flows)
	h.buildIngress()
	h.installPlan()
	h.runPhase(func(st *site) { st.execOps(h, &st.opsA) })
	h.res.SetupWall = time.Since(setupStart)
	for i := range h.pairs {
		h.res.FlowsDistinct += int(h.counts[i])
	}
	for _, st := range h.sites {
		tcam, _, soft := st.sw.RuleCount()
		h.res.FlowsResident += tcam + soft
	}

	base := make([]switchsim.Stats, len(h.sites))
	for i, st := range h.sites {
		base[i] = st.sw.Stats()
	}

	epochStart := time.Now()
	for ep := 0; ep < h.o.Epochs; ep++ {
		h.plan(ep)
		if h.havePlanned() {
			h.runPhase(func(st *site) { st.execOps(h, &st.opsA) })
			h.runPhase(func(st *site) { st.execOps(h, &st.opsB) })
		}
		h.runPhase(func(st *site) { st.runData(h) })
		h.inferEpoch = false
	}
	h.res.EpochWall = time.Since(epochStart)

	h.fold(base)
	return h.res, nil
}

// build constructs the topology, sites, clocks, pools, and churn drivers.
func (h *harness) build() {
	h.g = topo.B4()
	h.names = append([]string(nil), h.g.Nodes()...)
	h.siteIdx = make(map[string]int, len(h.names))
	for i, n := range h.names {
		h.siteIdx[n] = i
	}
	if h.o.Shards <= 0 || h.o.Shards > len(h.names) {
		h.o.Shards = len(h.names)
	}
	h.res.Sites, h.res.Shards, h.res.Epochs = len(h.names), h.o.Shards, h.o.Epochs
	h.probeStride = max(1, h.o.EventsPerEpoch/h.o.ProbesPerEpoch)

	h.group = simclock.NewGroup(len(h.names))
	h.pools = make([]*framePool, h.o.Shards)
	for k := range h.pools {
		h.pools[k] = &framePool{}
	}

	// One fleet-wide churn schedule, partitioned flow-disjoint per site so
	// every shard steps its own stateful driver.
	var schedules [][]workload.ChurnEvent
	if h.o.ChurnRate > 0 {
		events := workload.Churn(workload.ChurnOptions{
			FlowBase: churnFlowBase,
			Flows:    h.o.ChurnFlows,
			Rate:     h.o.ChurnRate,
			Duration: h.o.ChurnDuration,
			Seed:     h.o.Seed*31 + 7,
		})
		schedules = conformance.ShardSchedule(events, len(h.names))
	}

	h.sites = make([]*site, len(h.names))
	for i, name := range h.names {
		reg := telemetry.NewRegistry()
		sw := switchsim.New(scaleProfile(name),
			switchsim.WithClock(h.group.Clock(i)),
			switchsim.WithSeed(h.o.Seed+int64(i)),
			switchsim.WithTelemetry(reg, nil),
		)
		st := &site{
			idx:   i,
			name:  name,
			sw:    sw,
			reg:   reg,
			rng:   rand.New(rand.NewSource(h.o.Seed*131 + int64(i))),
			ports: map[string]uint16{},
			acts:  map[uint16][]flowtable.Action{},
			frame: h.pools[i%h.o.Shards].Get(),
		}
		for pi, nb := range h.g.Neighbors(name) {
			st.ports[nb] = uint16(pi + 1)
		}
		st.hostPort = uint16(len(st.ports) + 1)
		for _, p := range st.ports {
			st.acts[p] = flowtable.Output(p)
		}
		if len(schedules) > 0 {
			if st.churn = conformance.NewChurnDriver(schedules[i]); st.churn != nil {
				st.churn.Priority = rulePriority
			}
		}
		st.dev = conformance.WrapBackground(probe.SimDevice{S: sw}, st.churn)
		st.fdev = st.dev.(probe.FrameDevice)
		st.eng = probe.NewEngine(st.dev)
		st.eng.SetTelemetry(reg, nil)
		// The engine's flight track timestamps with wall clocks; the
		// harness records its own samples at virtual instants instead, so
		// flight exports stay shard-count invariant.
		st.eng.SetFlight(nil)
		if h.o.Flight != nil {
			st.track = h.o.Flight.Track(name)
		}
		h.sites[i] = st
	}
	h.buildPairs()
}

// buildIngress resolves each site's ingress pair list (pairs it originates)
// and the 20% hot subset its traffic draw favours. Must run after layout.
func (h *harness) buildIngress() {
	for p, pi := range h.pairs {
		if h.counts[p] > 0 {
			st := h.sites[pi.src]
			st.ing = append(st.ing, int32(p))
		}
	}
	for _, st := range h.sites {
		if n := len(st.ing); n > 0 {
			st.hot = st.ing[:max(1, n/5)]
		}
	}
}

// runPhase executes fn once per site — shard-parallel when Shards > 1 —
// then measures clock spread and aligns every site clock to the frontier.
// The WaitGroup barrier parks all shards before the harness touches any
// site state or clock.
func (h *harness) runPhase(fn func(*site)) {
	if h.o.Shards <= 1 {
		for _, st := range h.sites {
			fn(st)
		}
	} else {
		var wg sync.WaitGroup
		for k := 0; k < h.o.Shards; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				for i := k; i < len(h.sites); i += h.o.Shards {
					fn(h.sites[i])
				}
			}(k)
		}
		wg.Wait()
	}
	if lag := h.group.Lag(); lag > h.res.MaxShardLag {
		h.res.MaxShardLag = lag
	}
	h.group.Align()
}

// plan computes this epoch's control-plane op lists on the harness
// goroutine. Storm epochs take precedence over TE rounds.
func (h *harness) plan(ep int) {
	switch {
	case h.o.FailEpoch >= 0 && ep == h.o.FailEpoch:
		h.planFail()
	case h.o.FailEpoch >= 0 && ep == h.o.FailEpoch+2:
		h.planRestore()
	case ep%h.o.TEEvery == h.o.TEEvery-1:
		h.planTE()
	}
	if h.o.InferEvery > 0 && ep%h.o.InferEvery == 1 {
		h.inferEpoch = true
		h.inferSite = h.inferRun % len(h.sites)
		h.inferBase = inferFlowBase + uint32(h.inferRun)*flowStride
		h.inferRun++
	}
}

func (h *harness) havePlanned() bool {
	for _, st := range h.sites {
		if len(st.opsA) > 0 || len(st.opsB) > 0 {
			return true
		}
	}
	return false
}

// execOps expands the site's pending pair-granular ops into per-flow
// FlowMods against the churn-wrapped device and clears the list.
func (st *site) execOps(h *harness, ops *[]opSpec) {
	for _, op := range *ops {
		base, n := flowBase(int(op.pair)), h.counts[op.pair]
		for f := base; f < base+uint32(n); f++ {
			st.fm = openflow.FlowMod{
				Match:    flowtable.ExactProbeMatch(f),
				Priority: rulePriority,
			}
			switch op.kind {
			case opAdd:
				st.fm.Command = openflow.FlowAdd
				st.fm.Actions = st.acts[op.port]
			case opMod:
				st.fm.Command = openflow.FlowModifyStrict
				st.fm.Actions = st.acts[op.port]
			case opDel:
				st.fm.Command = openflow.FlowDeleteStrict
			}
			err := st.dev.FlowMod(&st.fm)
			st.tally.ruleOps++
			switch err {
			case nil:
			case switchsim.ErrTableFull:
				st.tally.tableFull++
			default:
				st.tally.errs++
			}
		}
	}
	*ops = (*ops)[:0]
}

// runData processes one epoch of data-plane events for the site: bursty
// sends over its ingress pairs (80% from the hot subset), RTT probes every
// probeStride-th event, and — on inference epochs, for the rotating site —
// a full size-inference round against the live tables.
func (st *site) runData(h *harness) {
	if len(st.ing) > 0 {
		for j := 0; j < h.o.EventsPerEpoch; j++ {
			p := st.ing[st.rng.Intn(len(st.ing))]
			if st.rng.Float64() < 0.8 {
				p = st.hot[st.rng.Intn(len(st.hot))]
			}
			f := flowBase(int(p)) + uint32(st.rng.Intn(int(h.counts[p])))
			packet.BuildProbeFrame(st.frame, packet.ProbeSpec{FlowID: f})
			burst := 1 + st.rng.Intn(h.o.BurstMax)
			if _, _, err := st.fdev.SendFrameN(st.frame, st.hostPort, probeWireLen, burst); err != nil {
				st.tally.errs++
				continue
			}
			st.tally.packets += uint64(burst)
			if j%h.probeStride == 0 {
				rtt, punted, err := st.fdev.SendFrameN(st.frame, st.hostPort, probeWireLen, 1)
				if err != nil {
					st.tally.errs++
					continue
				}
				st.tally.packets++
				now := st.sw.Now()
				st.track.Record(now, now, rtt, f, punted)
				st.rtts = append(st.rtts, rtt)
				if punted {
					st.tally.punted++
				}
			}
		}
	}
	if h.inferEpoch && h.inferSite == st.idx {
		st.runInfer(h)
	}
}

// runInfer runs one size-inference round against the site's live tables,
// then clears its probe rules so residency returns to baseline.
func (st *site) runInfer(h *harness) {
	res, err := infer.ProbeSizes(st.eng, infer.SizeOptions{
		Priority:   rulePriority,
		MaxRules:   h.o.InferMaxRules,
		Trials:     2,
		Seed:       h.o.Seed*1000 + int64(st.idx),
		FlowIDBase: h.inferBase,
	})
	if err != nil {
		st.tally.errs++
		return
	}
	st.inferRuns++
	st.inferRules += res.RulesInstalled
	st.inferProbes += res.ProbesSent
	st.eng.ClearProbeRules(h.inferBase, uint32(res.RulesInstalled), rulePriority)
}

// fold aggregates per-site state into the Result on the harness goroutine,
// always in site order so the fold itself is deterministic, and publishes
// the fleet-level metrics to the configured registry.
func (h *harness) fold(base []switchsim.Stats) {
	r := h.res
	var all []time.Duration
	for i, st := range h.sites {
		stats := st.sw.Stats()
		tcam, _, soft := st.sw.RuleCount()
		r.PerSite = append(r.PerSite, SiteStats{Name: st.name, TCAM: tcam, Software: soft, Stats: stats})
		r.FlowsResidentEnd += tcam + soft
		r.Events += stats.PacketsSeen - base[i].PacketsSeen + stats.FlowMods - base[i].FlowMods
		r.RuleOps += stats.FlowMods - base[i].FlowMods
		r.Expirations += stats.Expirations - base[i].Expirations
		r.TableFull += st.tally.tableFull
		r.Errs += st.tally.errs
		r.ProbePunts += st.tally.punted
		r.ProbeSamples += len(st.rtts)
		all = append(all, st.rtts...)
		r.InferRuns += st.inferRuns
		r.InferRules += st.inferRules
		r.InferProbes += st.inferProbes
		if st.churn != nil {
			r.ChurnApplied += st.churn.Applied()
			r.ChurnInstalls += st.churn.Installs()
			r.ChurnTouches += st.churn.Touches()
			r.ChurnErrs += st.churn.Errs()
		}
		snap := st.reg.Snapshot()
		snap.TakenAt = time.Time{}
		r.Snapshots = append(r.Snapshots, snap)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if n := len(all); n > 0 {
		r.P50ProbeRTT = all[n/2]
		r.P99ProbeRTT = all[min(n-1, n*99/100)]
	}
	if r.EpochWall > 0 {
		r.EventsPerSec = float64(r.Events) / r.EpochWall.Seconds()
	}

	reg := h.o.Registry
	reg.Counter("scale.events").Add(int64(r.Events))
	reg.Counter("scale.rule_ops").Add(int64(r.RuleOps))
	reg.Counter("scale.expirations").Add(int64(r.Expirations))
	reg.Counter("scale.table_full").Add(int64(r.TableFull))
	reg.Counter("scale.probe_samples").Add(int64(r.ProbeSamples))
	reg.Gauge("scale.flows_resident").Set(int64(r.FlowsResidentEnd))
	hist := reg.Histogram("scale.probe_rtt_ns")
	for _, d := range all {
		hist.Observe(float64(d))
	}
}
