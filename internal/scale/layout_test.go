package scale

import (
	"testing"

	"tango/internal/structlayout"
)

// TestHotStructLayouts gates the harness' per-event structs on zero padding
// waste, mirroring the switchsim arena gate: opSpecs are appended by the
// thousand per storm epoch and a tally lives in every site.
func TestHotStructLayouts(t *testing.T) {
	for _, v := range []interface{}{
		opSpec{},
		tally{},
		pairInfo{},
	} {
		if err := structlayout.Check(v); err != nil {
			t.Error(err)
		}
	}
}
