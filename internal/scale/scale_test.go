package scale

import (
	"reflect"
	"testing"
	"time"

	"tango/internal/telemetry"
)

// smallOpts is a scaled-down scenario that still exercises every phase
// kind: setup storm, TE rounds, the failure/restore storm, churn, probes,
// and inference.
func smallOpts(seed int64, shards int) Options {
	return Options{
		Flows:          30000,
		Shards:         shards,
		Epochs:         8,
		EventsPerEpoch: 256,
		ProbesPerEpoch: 32,
		TEEvery:        4,
		MaxMoves:       8,
		FailEpoch:      4,
		InferMaxRules:  256,
		ChurnRate:      50,
		ChurnFlows:     512,
		ChurnDuration:  30 * time.Minute,
		Seed:           seed,
		Flight:         telemetry.NewFlightRecorder(64),
		Registry:       telemetry.NewRegistry(),
	}
}

func TestScaleHarnessSmall(t *testing.T) {
	o := smallOpts(1, 0)
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites != 12 || res.Shards != 12 {
		t.Fatalf("sites/shards = %d/%d", res.Sites, res.Shards)
	}
	if res.FlowsResident < o.Flows {
		t.Fatalf("FlowsResident = %d, want >= %d", res.FlowsResident, o.Flows)
	}
	if res.FlowsDistinct == 0 || res.FlowsDistinct > res.FlowsResident {
		t.Fatalf("FlowsDistinct = %d (resident %d)", res.FlowsDistinct, res.FlowsResident)
	}
	if res.Events == 0 || res.RuleOps == 0 {
		t.Fatalf("events/ruleOps = %d/%d", res.Events, res.RuleOps)
	}
	if res.ProbeSamples == 0 || res.P50ProbeRTT <= 0 || res.P99ProbeRTT < res.P50ProbeRTT {
		t.Fatalf("probes = %d, p50 = %v, p99 = %v", res.ProbeSamples, res.P50ProbeRTT, res.P99ProbeRTT)
	}
	if res.PairMoves == 0 {
		t.Fatal("no pair migrations — TE and storm phases were no-ops")
	}
	if res.ChurnApplied == 0 {
		t.Fatal("churn drivers never stepped")
	}
	if res.InferRuns == 0 || res.InferRules == 0 {
		t.Fatalf("inference never ran: runs=%d rules=%d", res.InferRuns, res.InferRules)
	}
	if res.Errs != 0 {
		t.Fatalf("device errors = %d", res.Errs)
	}
	if len(res.PerSite) != 12 || len(res.Snapshots) != 12 {
		t.Fatalf("per-site fold incomplete: %d/%d", len(res.PerSite), len(res.Snapshots))
	}
	// Resident rules never exceed any site's capacity (the layout and move
	// guards exist to keep table-full rejections out of steady state).
	if res.TableFull != 0 {
		t.Fatalf("table-full rejections = %d", res.TableFull)
	}
	// The fleet fold landed in the run's registry.
	if res.Events == 0 || o.Registry.Counter("scale.events").Value() != int64(res.Events) {
		t.Fatal("fleet fold missing from registry")
	}
}

// TestScaleShardedDifferential is the epoch-barrier determinism gate: the
// full Result (counters, per-site stats, telemetry snapshots) and every
// site's flight-recorder samples must be bit-identical between the serial
// run (Shards=1) and the fully sharded run, across seeds.
func TestScaleShardedDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		o1 := smallOpts(seed, 1)
		oN := smallOpts(seed, 12)
		r1, err := Run(o1)
		if err != nil {
			t.Fatal(err)
		}
		rN, err := Run(oN)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Shards != 1 || rN.Shards != 12 {
			t.Fatalf("seed %d: shards = %d/%d", seed, r1.Shards, rN.Shards)
		}
		if !reflect.DeepEqual(r1.Deterministic(), rN.Deterministic()) {
			t.Errorf("seed %d: serial and sharded results diverge", seed)
			d1, dN := r1.Deterministic(), rN.Deterministic()
			if !reflect.DeepEqual(d1.Snapshots, dN.Snapshots) {
				t.Error("  telemetry snapshots differ")
			}
			d1.Snapshots, dN.Snapshots = nil, nil
			if !reflect.DeepEqual(d1, dN) {
				t.Errorf("  scalar results differ:\n  serial:  %+v\n  sharded: %+v", d1, dN)
			}
			continue
		}
		for _, ps := range r1.PerSite {
			s1 := o1.Flight.Track(ps.Name).Samples()
			sN := oN.Flight.Track(ps.Name).Samples()
			if !reflect.DeepEqual(s1, sN) {
				t.Errorf("seed %d: flight samples diverge for %s", seed, ps.Name)
			}
		}
	}
}
