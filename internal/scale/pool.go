package scale

import "tango/internal/packet"

// pool.go applies the switchsim arena/slab discipline (PR 8) to decoded
// frames: each shard owns one framePool, so Get/Put never contend, and the
// frames themselves come from append-only slabs — stable addresses, no
// per-frame allocation after warm-up. Sites draw their scratch frames from
// their shard's pool once at setup; steady-state event processing then
// mints every data-plane and probe frame in place with
// packet.BuildProbeFrame and hands it to SendFrameN, so the hot loop is
// allocation-free end to end.

// frameSlabSize is the frame-slab allocation unit.
const frameSlabSize = 64

// probeWireLen is the encoded length of a payloadless TCP probe frame
// (Ethernet 14 + IPv4 20 + TCP 20); SendFrameN wants the wire size for
// byte counters even though the frame never gets serialized.
const probeWireLen = 54

// framePool hands out decoded-frame records from slabs with a free list.
// It is single-goroutine (per shard) by design.
type framePool struct {
	slab []packet.Frame
	used int
	free []*packet.Frame
}

// Get returns a zeroed frame, reusing a freed one when available.
func (p *framePool) Get() *packet.Frame {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		*f = packet.Frame{}
		return f
	}
	if p.used == len(p.slab) {
		p.slab = make([]packet.Frame, frameSlabSize)
		p.used = 0
	}
	f := &p.slab[p.used]
	p.used++
	return f
}

// Put recycles a frame for the next Get.
func (p *framePool) Put(f *packet.Frame) {
	p.free = append(p.free, f)
}
