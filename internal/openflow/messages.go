package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tango/internal/flowtable"
)

// headerLen is the size of every OpenFlow message header.
const headerLen = 8

// MaxMessageLen bounds accepted messages, protecting the decoder against
// hostile or corrupt length fields.
const MaxMessageLen = 1 << 16

// Message is any OpenFlow protocol message. Marshal appends the full wire
// encoding — header included — to b.
type Message interface {
	// Type returns the message's OpenFlow type code.
	Type() MsgType
	// XID returns the transaction ID used to pair requests and replies.
	XID() uint32
	// Marshal appends the complete wire form to b.
	Marshal(b []byte) []byte
}

// Header carries the fields common to all messages. Embed it in message
// structs. The Length field is computed during Marshal and populated during
// decode.
type Header struct {
	Xid uint32
}

// XID returns the transaction ID.
func (h *Header) XID() uint32 { return h.Xid }

// SetXID sets the transaction ID.
func (h *Header) SetXID(x uint32) { h.Xid = x }

// putHeader appends an OpenFlow header with a placeholder length and returns
// the offset of the length field for patchLen.
func putHeader(b []byte, t MsgType, xid uint32) ([]byte, int) {
	off := len(b)
	b = append(b, Version, byte(t), 0, 0)
	b = binary.BigEndian.AppendUint32(b, xid)
	return b, off
}

// patchLen writes the final message length at the header starting at off.
func patchLen(b []byte, off int) []byte {
	binary.BigEndian.PutUint16(b[off+2:off+4], uint16(len(b)-off))
	return b
}

// Hello opens the connection; both sides send it first.
type Hello struct{ Header }

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

// Marshal implements Message.
func (m *Hello) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeHello, m.Xid)
	return patchLen(b, off)
}

// EchoRequest carries opaque data the peer must echo back. Tango's probing
// engine uses echo RTT as a floor estimate of channel latency.
type EchoRequest struct {
	Header
	Data []byte
}

// Type implements Message.
func (*EchoRequest) Type() MsgType { return TypeEchoRequest }

// Marshal implements Message.
func (m *EchoRequest) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeEchoRequest, m.Xid)
	b = append(b, m.Data...)
	return patchLen(b, off)
}

// EchoReply answers an EchoRequest with the same data.
type EchoReply struct {
	Header
	Data []byte
}

// Type implements Message.
func (*EchoReply) Type() MsgType { return TypeEchoReply }

// Marshal implements Message.
func (m *EchoReply) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeEchoReply, m.Xid)
	b = append(b, m.Data...)
	return patchLen(b, off)
}

// FeaturesRequest asks the switch for its datapath description.
type FeaturesRequest struct{ Header }

// Type implements Message.
func (*FeaturesRequest) Type() MsgType { return TypeFeaturesRequest }

// Marshal implements Message.
func (m *FeaturesRequest) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeFeaturesRequest, m.Xid)
	return patchLen(b, off)
}

// FeaturesReply describes the switch, including its physical ports.
type FeaturesReply struct {
	Header
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PortDesc
}

// Type implements Message.
func (*FeaturesReply) Type() MsgType { return TypeFeaturesReply }

// Marshal implements Message.
func (m *FeaturesReply) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeFeaturesReply, m.Xid)
	b = binary.BigEndian.AppendUint64(b, m.DatapathID)
	b = binary.BigEndian.AppendUint32(b, m.NBuffers)
	b = append(b, m.NTables, 0, 0, 0)
	b = binary.BigEndian.AppendUint32(b, m.Capabilities)
	b = binary.BigEndian.AppendUint32(b, m.Actions)
	for i := range m.Ports {
		b = marshalPortDesc(b, &m.Ports[i])
	}
	return patchLen(b, off)
}

// FlowMod programs the switch's flow tables.
type FlowMod struct {
	Header
	Match       flowtable.Match
	Cookie      uint64
	Command     FlowModCommand
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []flowtable.Action
}

// Type implements Message.
func (*FlowMod) Type() MsgType { return TypeFlowMod }

// Marshal implements Message.
func (m *FlowMod) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeFlowMod, m.Xid)
	b = marshalMatch(b, &m.Match)
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint16(b, uint16(m.Command))
	b = binary.BigEndian.AppendUint16(b, m.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, m.HardTimeout)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.OutPort)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	b = marshalActions(b, m.Actions)
	return patchLen(b, off)
}

// PacketIn delivers a data-plane frame to the controller.
type PacketIn struct {
	Header
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

// Type implements Message.
func (*PacketIn) Type() MsgType { return TypePacketIn }

// Marshal implements Message.
func (m *PacketIn) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypePacketIn, m.Xid)
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.TotalLen)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	b = append(b, m.Reason, 0)
	b = append(b, m.Data...)
	return patchLen(b, off)
}

// PacketOut injects a frame into the switch's data plane; the probing engine
// sends every probe packet this way.
type PacketOut struct {
	Header
	BufferID uint32
	InPort   uint16
	Actions  []flowtable.Action
	Data     []byte
}

// Type implements Message.
func (*PacketOut) Type() MsgType { return TypePacketOut }

// Marshal implements Message.
func (m *PacketOut) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypePacketOut, m.Xid)
	b = binary.BigEndian.AppendUint32(b, m.BufferID)
	b = binary.BigEndian.AppendUint16(b, m.InPort)
	actions := marshalActions(nil, m.Actions)
	b = binary.BigEndian.AppendUint16(b, uint16(len(actions)))
	b = append(b, actions...)
	b = append(b, m.Data...)
	return patchLen(b, off)
}

// BarrierRequest asks the switch to finish all preceding operations before
// replying — the probing engine's synchronisation point for latency
// measurements.
type BarrierRequest struct{ Header }

// Type implements Message.
func (*BarrierRequest) Type() MsgType { return TypeBarrierRequest }

// Marshal implements Message.
func (m *BarrierRequest) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeBarrierRequest, m.Xid)
	return patchLen(b, off)
}

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply struct{ Header }

// Type implements Message.
func (*BarrierReply) Type() MsgType { return TypeBarrierReply }

// Marshal implements Message.
func (m *BarrierReply) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeBarrierReply, m.Xid)
	return patchLen(b, off)
}

// FlowRemoved notifies the controller that a rule expired or was deleted
// (sent only for rules installed with the OFPFF_SEND_FLOW_REM flag).
type FlowRemoved struct {
	Header
	Match        flowtable.Match
	Cookie       uint64
	Priority     uint16
	Reason       uint8
	DurationSec  uint32
	DurationNsec uint32
	IdleTimeout  uint16
	PacketCount  uint64
	ByteCount    uint64
}

// Flow-removed reasons (ofp_flow_removed_reason).
const (
	RemovedIdleTimeout uint8 = 0
	RemovedHardTimeout uint8 = 1
	RemovedDelete      uint8 = 2
)

// FlagSendFlowRem asks the switch to send FLOW_REMOVED when the rule dies.
const FlagSendFlowRem uint16 = 1 << 0

// Type implements Message.
func (*FlowRemoved) Type() MsgType { return TypeFlowRemoved }

// Marshal implements Message.
func (m *FlowRemoved) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeFlowRemoved, m.Xid)
	b = marshalMatch(b, &m.Match)
	b = binary.BigEndian.AppendUint64(b, m.Cookie)
	b = binary.BigEndian.AppendUint16(b, m.Priority)
	b = append(b, m.Reason, 0)
	b = binary.BigEndian.AppendUint32(b, m.DurationSec)
	b = binary.BigEndian.AppendUint32(b, m.DurationNsec)
	b = binary.BigEndian.AppendUint16(b, m.IdleTimeout)
	b = append(b, 0, 0)
	b = binary.BigEndian.AppendUint64(b, m.PacketCount)
	b = binary.BigEndian.AppendUint64(b, m.ByteCount)
	return patchLen(b, off)
}

func decodeFlowRemoved(xid uint32, body []byte) (Message, error) {
	if len(body) < matchLen+40 {
		return nil, ErrTruncated
	}
	match, err := unmarshalMatch(body)
	if err != nil {
		return nil, err
	}
	p := body[matchLen:]
	return &FlowRemoved{
		Header:       Header{xid},
		Match:        match,
		Cookie:       binary.BigEndian.Uint64(p[0:8]),
		Priority:     binary.BigEndian.Uint16(p[8:10]),
		Reason:       p[10],
		DurationSec:  binary.BigEndian.Uint32(p[12:16]),
		DurationNsec: binary.BigEndian.Uint32(p[16:20]),
		IdleTimeout:  binary.BigEndian.Uint16(p[20:22]),
		PacketCount:  binary.BigEndian.Uint64(p[24:32]),
		ByteCount:    binary.BigEndian.Uint64(p[32:40]),
	}, nil
}

// Error reports a failure; Data holds (a prefix of) the offending message.
type Error struct {
	Header
	ErrType uint16
	Code    uint16
	Data    []byte
}

// Type implements Message.
func (*Error) Type() MsgType { return TypeError }

// Marshal implements Message.
func (m *Error) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeError, m.Xid)
	b = binary.BigEndian.AppendUint16(b, m.ErrType)
	b = binary.BigEndian.AppendUint16(b, m.Code)
	b = append(b, m.Data...)
	return patchLen(b, off)
}

// Error also satisfies the error interface so controller code can surface
// switch-side rejections directly.
func (m *Error) Error() string {
	return fmt.Sprintf("openflow: error type=%d code=%d", m.ErrType, m.Code)
}

// IsTableFull reports whether the error signals a full flow table — the
// condition Algorithm 1 watches for while doubling rule installations.
func (m *Error) IsTableFull() bool {
	return m.ErrType == ErrTypeFlowModFailed && m.Code == ErrCodeAllTablesFull
}

// ErrTruncated reports a message shorter than its header claims.
var ErrTruncated = errors.New("openflow: truncated message")

// Decode parses a single complete message from data (which must contain
// exactly one message, as returned by ReadMessage).
func Decode(data []byte) (Message, error) {
	if len(data) < headerLen {
		return nil, ErrTruncated
	}
	if data[0] != Version {
		return nil, fmt.Errorf("openflow: unsupported version 0x%02x", data[0])
	}
	t := MsgType(data[1])
	length := int(binary.BigEndian.Uint16(data[2:4]))
	if length != len(data) {
		return nil, fmt.Errorf("openflow: header length %d != buffer %d", length, len(data))
	}
	xid := binary.BigEndian.Uint32(data[4:8])
	body := data[headerLen:]
	switch t {
	case TypeHello:
		return &Hello{Header{xid}}, nil
	case TypeEchoRequest:
		return &EchoRequest{Header{xid}, cloneBytes(body)}, nil
	case TypeEchoReply:
		return &EchoReply{Header{xid}, cloneBytes(body)}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{Header{xid}}, nil
	case TypeFeaturesReply:
		return decodeFeaturesReply(xid, body)
	case TypeFlowMod:
		return decodeFlowMod(xid, body)
	case TypePacketIn:
		return decodePacketIn(xid, body)
	case TypePacketOut:
		return decodePacketOut(xid, body)
	case TypeFlowRemoved:
		return decodeFlowRemoved(xid, body)
	case TypePortStatus:
		return decodePortStatus(xid, body)
	case TypeGetConfigReq:
		return &GetConfigRequest{Header{xid}}, nil
	case TypeGetConfigReply:
		return decodeSwitchConfig(xid, body, false)
	case TypeSetConfig:
		return decodeSwitchConfig(xid, body, true)
	case TypeBarrierRequest:
		return &BarrierRequest{Header{xid}}, nil
	case TypeBarrierReply:
		return &BarrierReply{Header{xid}}, nil
	case TypeError:
		if len(body) < 4 {
			return nil, ErrTruncated
		}
		return &Error{Header{xid}, binary.BigEndian.Uint16(body[0:2]),
			binary.BigEndian.Uint16(body[2:4]), cloneBytes(body[4:])}, nil
	case TypeStatsRequest:
		return decodeStatsRequest(xid, body)
	case TypeStatsReply:
		return decodeStatsReply(xid, body)
	default:
		return nil, fmt.Errorf("openflow: unsupported message type %d", t)
	}
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

func decodeFeaturesReply(xid uint32, body []byte) (Message, error) {
	if len(body) < 24 {
		return nil, ErrTruncated
	}
	fr := &FeaturesReply{
		Header:       Header{xid},
		DatapathID:   binary.BigEndian.Uint64(body[0:8]),
		NBuffers:     binary.BigEndian.Uint32(body[8:12]),
		NTables:      body[12],
		Capabilities: binary.BigEndian.Uint32(body[16:20]),
		Actions:      binary.BigEndian.Uint32(body[20:24]),
	}
	for p := body[24:]; len(p) >= portDescLen; p = p[portDescLen:] {
		fr.Ports = append(fr.Ports, unmarshalPortDesc(p[:portDescLen]))
	}
	return fr, nil
}

func decodeFlowMod(xid uint32, body []byte) (Message, error) {
	if len(body) < matchLen+24 {
		return nil, ErrTruncated
	}
	match, err := unmarshalMatch(body)
	if err != nil {
		return nil, err
	}
	p := body[matchLen:]
	actions, err := unmarshalActions(p[24:])
	if err != nil {
		return nil, err
	}
	return &FlowMod{
		Header:      Header{xid},
		Match:       match,
		Cookie:      binary.BigEndian.Uint64(p[0:8]),
		Command:     FlowModCommand(binary.BigEndian.Uint16(p[8:10])),
		IdleTimeout: binary.BigEndian.Uint16(p[10:12]),
		HardTimeout: binary.BigEndian.Uint16(p[12:14]),
		Priority:    binary.BigEndian.Uint16(p[14:16]),
		BufferID:    binary.BigEndian.Uint32(p[16:20]),
		OutPort:     binary.BigEndian.Uint16(p[20:22]),
		Flags:       binary.BigEndian.Uint16(p[22:24]),
		Actions:     actions,
	}, nil
}

func decodePacketIn(xid uint32, body []byte) (Message, error) {
	if len(body) < 10 {
		return nil, ErrTruncated
	}
	return &PacketIn{
		Header:   Header{xid},
		BufferID: binary.BigEndian.Uint32(body[0:4]),
		TotalLen: binary.BigEndian.Uint16(body[4:6]),
		InPort:   binary.BigEndian.Uint16(body[6:8]),
		Reason:   body[8],
		Data:     cloneBytes(body[10:]),
	}, nil
}

func decodePacketOut(xid uint32, body []byte) (Message, error) {
	if len(body) < 8 {
		return nil, ErrTruncated
	}
	alen := int(binary.BigEndian.Uint16(body[6:8]))
	if 8+alen > len(body) {
		return nil, ErrTruncated
	}
	actions, err := unmarshalActions(body[8 : 8+alen])
	if err != nil {
		return nil, err
	}
	return &PacketOut{
		Header:   Header{xid},
		BufferID: binary.BigEndian.Uint32(body[0:4]),
		InPort:   binary.BigEndian.Uint16(body[4:6]),
		Actions:  actions,
		Data:     cloneBytes(body[8+alen:]),
	}, nil
}

// WriteMessage marshals m and writes it to w as one frame.
func WriteMessage(w io.Writer, m Message) error {
	_, err := w.Write(m.Marshal(nil))
	return err
}

// ReadMessage reads exactly one message from r and decodes it.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen || length > MaxMessageLen {
		return nil, fmt.Errorf("openflow: implausible message length %d", length)
	}
	buf := make([]byte, length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		return nil, err
	}
	return Decode(buf)
}
