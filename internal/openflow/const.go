// Package openflow implements the subset of the OpenFlow 1.0 wire protocol
// that Tango's controller and the emulated switches speak: the handshake
// (HELLO, FEATURES), flow programming (FLOW_MOD, BARRIER), the data-plane
// escape hatch (PACKET_IN / PACKET_OUT), statistics, and errors. Messages
// marshal to and from the exact byte layout of the OpenFlow 1.0.0
// specification so the emulated switch is indistinguishable on the wire
// from a hardware device speaking the same subset.
package openflow

// Version is the OpenFlow protocol version implemented by this package.
const Version = 0x01

// MsgType is the OpenFlow message type carried in every header.
type MsgType uint8

// OpenFlow 1.0 message types (ofp_type).
const (
	TypeHello           MsgType = 0
	TypeError           MsgType = 1
	TypeEchoRequest     MsgType = 2
	TypeEchoReply       MsgType = 3
	TypeVendor          MsgType = 4
	TypeFeaturesRequest MsgType = 5
	TypeFeaturesReply   MsgType = 6
	TypeGetConfigReq    MsgType = 7
	TypeGetConfigReply  MsgType = 8
	TypeSetConfig       MsgType = 9
	TypePacketIn        MsgType = 10
	TypeFlowRemoved     MsgType = 11
	TypePortStatus      MsgType = 12
	TypePacketOut       MsgType = 13
	TypeFlowMod         MsgType = 14
	TypePortMod         MsgType = 15
	TypeStatsRequest    MsgType = 16
	TypeStatsReply      MsgType = 17
	TypeBarrierRequest  MsgType = 18
	TypeBarrierReply    MsgType = 19
)

// String implements fmt.Stringer for diagnostics.
func (t MsgType) String() string {
	names := map[MsgType]string{
		TypeHello: "HELLO", TypeError: "ERROR",
		TypeEchoRequest: "ECHO_REQUEST", TypeEchoReply: "ECHO_REPLY",
		TypeVendor: "VENDOR", TypeFeaturesRequest: "FEATURES_REQUEST",
		TypeFeaturesReply: "FEATURES_REPLY", TypeGetConfigReq: "GET_CONFIG_REQUEST",
		TypeGetConfigReply: "GET_CONFIG_REPLY", TypeSetConfig: "SET_CONFIG",
		TypePacketIn: "PACKET_IN", TypeFlowRemoved: "FLOW_REMOVED",
		TypePortStatus: "PORT_STATUS", TypePacketOut: "PACKET_OUT",
		TypeFlowMod: "FLOW_MOD", TypePortMod: "PORT_MOD",
		TypeStatsRequest: "STATS_REQUEST", TypeStatsReply: "STATS_REPLY",
		TypeBarrierRequest: "BARRIER_REQUEST", TypeBarrierReply: "BARRIER_REPLY",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return "UNKNOWN"
}

// FlowModCommand selects the FLOW_MOD operation.
type FlowModCommand uint16

// Flow mod commands (ofp_flow_mod_command).
const (
	FlowAdd FlowModCommand = iota
	FlowModify
	FlowModifyStrict
	FlowDelete
	FlowDeleteStrict
)

// String implements fmt.Stringer.
func (c FlowModCommand) String() string {
	switch c {
	case FlowAdd:
		return "ADD"
	case FlowModify:
		return "MODIFY"
	case FlowModifyStrict:
		return "MODIFY_STRICT"
	case FlowDelete:
		return "DELETE"
	case FlowDeleteStrict:
		return "DELETE_STRICT"
	}
	return "UNKNOWN"
}

// Port numbers with special meaning (ofp_port).
const (
	PortMax        uint16 = 0xff00
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// PacketIn reasons (ofp_packet_in_reason).
const (
	ReasonNoMatch uint8 = 0
	ReasonAction  uint8 = 1
)

// Error types (ofp_error_type).
const (
	ErrTypeHelloFailed   uint16 = 0
	ErrTypeBadRequest    uint16 = 1
	ErrTypeBadAction     uint16 = 2
	ErrTypeFlowModFailed uint16 = 3
	ErrTypePortModFailed uint16 = 4
)

// Flow-mod failure codes (ofp_flow_mod_failed_code).
const (
	ErrCodeAllTablesFull    uint16 = 0
	ErrCodeOverlap          uint16 = 1
	ErrCodePermissionsEPERM uint16 = 2
	ErrCodeBadEmergTimeout  uint16 = 3
	ErrCodeBadCommand       uint16 = 4
	ErrCodeUnsupported      uint16 = 5
)

// Stats types (ofp_stats_types).
const (
	StatsTypeDesc      uint16 = 0
	StatsTypeFlow      uint16 = 1
	StatsTypeAggregate uint16 = 2
	StatsTypeTable     uint16 = 3
	StatsTypePort      uint16 = 4
)

// Action types (ofp_action_type).
const (
	ActionTypeOutput uint16 = 0
)

// Wildcard bits of ofp_match.wildcards (OFPFW_*).
const (
	wcInPort     uint32 = 1 << 0
	wcDlVLAN     uint32 = 1 << 1
	wcDlSrc      uint32 = 1 << 2
	wcDlDst      uint32 = 1 << 3
	wcDlType     uint32 = 1 << 4
	wcNwProto    uint32 = 1 << 5
	wcTpSrc      uint32 = 1 << 6
	wcTpDst      uint32 = 1 << 7
	wcNwSrcShift        = 8
	wcNwSrcMask  uint32 = 0x3f << wcNwSrcShift
	wcNwDstShift        = 14
	wcNwDstMask  uint32 = 0x3f << wcNwDstShift
	wcDlVLANPCP  uint32 = 1 << 20
	wcNwTOS      uint32 = 1 << 21
	wcAll        uint32 = 0x3fffff
)
