package openflow

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"tango/internal/flowtable"
	"tango/internal/packet"
)

// roundTrip marshals m, decodes the bytes, and returns the decoded message.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	raw := m.Marshal(nil)
	if int(binary.BigEndian.Uint16(raw[2:4])) != len(raw) {
		t.Fatalf("%T: header length %d != encoded %d",
			m, binary.BigEndian.Uint16(raw[2:4]), len(raw))
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatalf("%T: decode: %v", m, err)
	}
	return got
}

func TestHelloEchoBarrierRoundTrip(t *testing.T) {
	for _, m := range []Message{
		&Hello{Header{1}},
		&EchoRequest{Header{2}, []byte("ping")},
		&EchoReply{Header{3}, []byte("pong")},
		&FeaturesRequest{Header{4}},
		&BarrierRequest{Header{5}},
		&BarrierReply{Header{6}},
	} {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T round trip: got %+v want %+v", m, got, m)
		}
	}
}

func TestFeaturesReplyRoundTrip(t *testing.T) {
	m := &FeaturesReply{
		Header:       Header{9},
		DatapathID:   0xdeadbeefcafe,
		NBuffers:     256,
		NTables:      2,
		Capabilities: 0x87,
		Actions:      0xfff,
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	m := &FlowMod{
		Header:      Header{42},
		Match:       flowtable.ExactProbeMatch(1234),
		Cookie:      0xfeed,
		Command:     FlowAdd,
		IdleTimeout: 30,
		HardTimeout: 60,
		Priority:    500,
		BufferID:    0xffffffff,
		OutPort:     PortNone,
		Actions:     flowtable.Output(3),
	}
	got := roundTrip(t, m).(*FlowMod)
	if !got.Match.Same(&m.Match) {
		t.Fatalf("match: got %s want %s", got.Match.String(), m.Match.String())
	}
	got.Match = m.Match // compare the rest structurally
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestFlowModControllerAction(t *testing.T) {
	m := &FlowMod{
		Header:  Header{1},
		Command: FlowAdd,
		Actions: []flowtable.Action{{Type: flowtable.ActionController}},
	}
	got := roundTrip(t, m).(*FlowMod)
	if len(got.Actions) != 1 || got.Actions[0].Type != flowtable.ActionController {
		t.Fatalf("actions = %+v", got.Actions)
	}
}

func TestFlowModDropNoActions(t *testing.T) {
	m := &FlowMod{Header: Header{1}, Command: FlowAdd}
	got := roundTrip(t, m).(*FlowMod)
	if len(got.Actions) != 0 {
		t.Fatalf("drop rule decoded with actions: %+v", got.Actions)
	}
}

func TestMatchPrefixRoundTrip(t *testing.T) {
	m := flowtable.Match{
		Fields: flowtable.FieldNwSrc | flowtable.FieldNwDst,
		NwSrc:  netip.MustParsePrefix("10.0.0.0/8"),
		NwDst:  netip.MustParsePrefix("192.168.7.0/24"),
	}
	raw := marshalMatch(nil, &m)
	if len(raw) != matchLen {
		t.Fatalf("match encodes to %d bytes, want %d", len(raw), matchLen)
	}
	got, err := unmarshalMatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Same(&m) {
		t.Fatalf("got %s want %s", got.String(), m.String())
	}
}

func TestMatchWildcardAllRoundTrip(t *testing.T) {
	var m flowtable.Match
	got, err := unmarshalMatch(marshalMatch(nil, &m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields != 0 {
		t.Fatalf("wildcard-all decoded with fields %b", got.Fields)
	}
}

func TestPacketInOutRoundTrip(t *testing.T) {
	frame, err := packet.BuildProbe(packet.ProbeSpec{FlowID: 5})
	if err != nil {
		t.Fatal(err)
	}
	pin := &PacketIn{
		Header:   Header{7},
		BufferID: 0xffffffff,
		TotalLen: uint16(len(frame)),
		InPort:   2,
		Reason:   ReasonNoMatch,
		Data:     frame,
	}
	got := roundTrip(t, pin)
	if !reflect.DeepEqual(got, pin) {
		t.Fatalf("PacketIn: got %+v want %+v", got, pin)
	}

	pout := &PacketOut{
		Header:   Header{8},
		BufferID: 0xffffffff,
		InPort:   PortNone,
		Actions:  flowtable.Output(1),
		Data:     frame,
	}
	got2 := roundTrip(t, pout).(*PacketOut)
	if !bytes.Equal(got2.Data, frame) {
		t.Fatal("PacketOut data corrupted")
	}
	if len(got2.Actions) != 1 || got2.Actions[0].Port != 1 {
		t.Fatalf("PacketOut actions: %+v", got2.Actions)
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	m := &FlowRemoved{
		Header:       Header{21},
		Match:        flowtable.ExactProbeMatch(9),
		Cookie:       0xabc,
		Priority:     700,
		Reason:       RemovedIdleTimeout,
		DurationSec:  12,
		DurationNsec: 500,
		IdleTimeout:  30,
		PacketCount:  99,
		ByteCount:    9900,
	}
	got := roundTrip(t, m).(*FlowRemoved)
	if !got.Match.Same(&m.Match) {
		t.Fatalf("match: %s", got.Match.String())
	}
	got.Match = m.Match
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e := &Error{Header{3}, ErrTypeFlowModFailed, ErrCodeAllTablesFull, []byte{1, 2, 3}}
	got := roundTrip(t, e).(*Error)
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("got %+v want %+v", got, e)
	}
	if !got.IsTableFull() {
		t.Fatal("IsTableFull = false")
	}
	if got.Error() == "" {
		t.Fatal("empty error string")
	}
	other := &Error{Header{3}, ErrTypeBadRequest, 0, nil}
	if other.IsTableFull() {
		t.Fatal("bad request reported as table full")
	}
}

func TestStatsFlowRoundTrip(t *testing.T) {
	req := &StatsRequest{
		Header:      Header{11},
		StatsType:   StatsTypeFlow,
		FlowMatch:   flowtable.L3ProbeMatch(9),
		FlowTableID: 0xff,
		FlowOutPort: PortNone,
	}
	gotReq := roundTrip(t, req).(*StatsRequest)
	if gotReq.StatsType != StatsTypeFlow || !gotReq.FlowMatch.Same(&req.FlowMatch) {
		t.Fatalf("request: %+v", gotReq)
	}

	rep := &StatsReply{
		Header:    Header{11},
		StatsType: StatsTypeFlow,
		Flows: []FlowStats{
			{
				TableID:     0,
				Match:       flowtable.ExactProbeMatch(1),
				DurationSec: 10,
				Priority:    100,
				Cookie:      7,
				PacketCount: 55,
				ByteCount:   5500,
				Actions:     flowtable.Output(2),
			},
			{
				TableID:  1,
				Match:    flowtable.L2ProbeMatch(2),
				Priority: 50,
			},
		},
	}
	gotRep := roundTrip(t, rep).(*StatsReply)
	if len(gotRep.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(gotRep.Flows))
	}
	f0 := gotRep.Flows[0]
	if !f0.Match.Same(&rep.Flows[0].Match) || f0.PacketCount != 55 || f0.ByteCount != 5500 ||
		f0.Priority != 100 || f0.Cookie != 7 || len(f0.Actions) != 1 {
		t.Fatalf("flow 0: %+v", f0)
	}
}

func TestStatsTableRoundTrip(t *testing.T) {
	rep := &StatsReply{
		Header:    Header{12},
		StatsType: StatsTypeTable,
		Tables: []TableStats{
			{TableID: 0, Name: "tcam", MaxEntries: 2048, ActiveCount: 17, LookupCount: 100, MatchedCount: 90},
			{TableID: 1, Name: "software", MaxEntries: 1 << 20},
		},
	}
	got := roundTrip(t, rep).(*StatsReply)
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("got %+v want %+v", got, rep)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Decode([]byte{0x04, 0, 0, 8, 0, 0, 0, 0}); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Length field mismatching buffer size.
	raw := (&Hello{}).Marshal(nil)
	raw[3] = 99
	if _, err := Decode(raw); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Unknown type.
	raw = (&Hello{}).Marshal(nil)
	raw[1] = 200
	if _, err := Decode(raw); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{Header{1}},
		&FlowMod{Header: Header{2}, Match: flowtable.ExactProbeMatch(3), Command: FlowAdd, Priority: 9, Actions: flowtable.Output(1)},
		&BarrierRequest{Header{3}},
		&EchoRequest{Header{4}, []byte("x")},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() || got.XID() != want.XID() {
			t.Fatalf("message %d: got %v/%d want %v/%d", i, got.Type(), got.XID(), want.Type(), want.XID())
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("read past end succeeded")
	}
}

func TestReadMessageRejectsBadLength(t *testing.T) {
	// Header claiming a 4-byte total length is impossible.
	bad := []byte{Version, byte(TypeHello), 0, 4, 0, 0, 0, 0}
	if _, err := ReadMessage(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted length < header size")
	}
}

// Property: FlowMod round-trips for arbitrary probe-rule contents.
func TestFlowModRoundTripProperty(t *testing.T) {
	f := func(id uint32, prio uint16, cmd uint8, port uint16, cookie uint64) bool {
		m := &FlowMod{
			Header:   Header{id},
			Match:    flowtable.ExactProbeMatch(id % 100000),
			Cookie:   cookie,
			Command:  FlowModCommand(cmd % 5),
			Priority: prio,
			Actions:  flowtable.Output(port),
		}
		got, err := Decode(m.Marshal(nil))
		if err != nil {
			return false
		}
		fm, ok := got.(*FlowMod)
		if !ok {
			return false
		}
		return fm.Match.Same(&m.Match) && fm.Priority == prio &&
			fm.Command == m.Command && fm.Cookie == cookie &&
			len(fm.Actions) == 1 && fm.Actions[0].Port == m.Actions[0].Port
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes with a plausible
// header, and ReadMessage never over-reads.
func TestDecodeFuzzProperty(t *testing.T) {
	f := func(body []byte, typ uint8) bool {
		raw := make([]byte, 0, len(body)+8)
		raw = append(raw, Version, typ%20, 0, 0, 0, 0, 0, 1)
		raw = append(raw, body...)
		binary.BigEndian.PutUint16(raw[2:4], uint16(len(raw)))
		_, _ = Decode(raw) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeFlowMod.String() != "FLOW_MOD" || MsgType(250).String() != "UNKNOWN" {
		t.Fatal("MsgType.String broken")
	}
	if FlowAdd.String() != "ADD" || FlowModCommand(99).String() != "UNKNOWN" {
		t.Fatal("FlowModCommand.String broken")
	}
}

func TestPortMessagesRoundTrip(t *testing.T) {
	fr := &FeaturesReply{
		Header:     Header{5},
		DatapathID: 7,
		NTables:    2,
		Ports: []PortDesc{
			{PortNo: 1, HWAddr: packet.MACFromUint64(0x10), Name: "eth1", Curr: 1 << 5},
			{PortNo: 2, HWAddr: packet.MACFromUint64(0x20), Name: "eth2", State: PortStateLinkDown},
		},
	}
	got := roundTrip(t, fr).(*FeaturesReply)
	if !reflect.DeepEqual(got, fr) {
		t.Fatalf("got %+v want %+v", got, fr)
	}

	ps := &PortStatus{
		Header: Header{6},
		Reason: PortReasonModify,
		Desc:   PortDesc{PortNo: 3, Name: "eth3", State: PortStateLinkDown},
	}
	got2 := roundTrip(t, ps).(*PortStatus)
	if !reflect.DeepEqual(got2, ps) {
		t.Fatalf("got %+v want %+v", got2, ps)
	}
}

func TestConfigMessagesRoundTrip(t *testing.T) {
	for _, set := range []bool{false, true} {
		m := &SwitchConfig{Header: Header{7}, Set: set, Flags: 2, MissSendLen: 128}
		got := roundTrip(t, m).(*SwitchConfig)
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("set=%v: got %+v want %+v", set, got, m)
		}
	}
	gr := &GetConfigRequest{Header{8}}
	if got := roundTrip(t, gr); !reflect.DeepEqual(got, gr) {
		t.Fatalf("got %+v", got)
	}
}

func TestAggregateStatsRoundTrip(t *testing.T) {
	m := &StatsReply{
		Header:    Header{9},
		StatsType: StatsTypeAggregate,
		Aggregate: AggregateStats{PacketCount: 100, ByteCount: 6400, FlowCount: 7},
	}
	got := roundTrip(t, m).(*StatsReply)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v want %+v", got, m)
	}
}
