package openflow

import (
	"bytes"
	"testing"

	"tango/internal/flowtable"
)

// FuzzDecode drives the message decoder with arbitrary bytes. The decoder
// must never panic, and any message it accepts must re-encode to bytes the
// decoder accepts again with an identical second decode (decode∘encode is
// a projection).
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		&Hello{Header{1}},
		&EchoRequest{Header{2}, []byte("x")},
		&FeaturesReply{Header: Header{3}, DatapathID: 9, NTables: 2},
		&FlowMod{Header: Header{4}, Match: flowtable.ExactProbeMatch(5), Command: FlowAdd, Priority: 7, Actions: flowtable.Output(1)},
		&PacketIn{Header: Header{5}, Reason: ReasonNoMatch, Data: []byte{1, 2, 3}},
		&PacketOut{Header: Header{6}, Actions: flowtable.Output(2), Data: []byte{9}},
		&Error{Header{7}, ErrTypeFlowModFailed, ErrCodeAllTablesFull, nil},
		&StatsRequest{Header: Header{8}, StatsType: StatsTypeFlow, FlowMatch: flowtable.L3ProbeMatch(1)},
		&StatsReply{Header: Header{9}, StatsType: StatsTypeTable, Tables: []TableStats{{TableID: 1, Name: "t"}}},
		&FlowRemoved{Header: Header{10}, Match: flowtable.L2ProbeMatch(2), Reason: RemovedDelete},
		&BarrierReply{Header{11}},
	}
	for _, m := range seeds {
		f.Add(m.Marshal(nil))
	}
	f.Add([]byte{Version, 99, 0, 8, 0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re := msg.Marshal(nil)
		msg2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v (first decode %T)", err, msg)
		}
		re2 := msg2.Marshal(nil)
		if !bytes.Equal(re, re2) {
			t.Fatalf("encode not idempotent:\n first %x\nsecond %x", re, re2)
		}
	})
}
