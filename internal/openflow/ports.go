package openflow

import (
	"encoding/binary"

	"tango/internal/packet"
)

// PortDesc is one ofp_phy_port entry (48 bytes on the wire).
type PortDesc struct {
	PortNo     uint16
	HWAddr     packet.MAC
	Name       string
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

// Port state bits (ofp_port_state).
const (
	PortStateLinkDown uint32 = 1 << 0
)

// portDescLen is the encoded size of one port description.
const portDescLen = 48

func marshalPortDesc(b []byte, p *PortDesc) []byte {
	b = binary.BigEndian.AppendUint16(b, p.PortNo)
	b = append(b, p.HWAddr[:]...)
	var name [16]byte
	copy(name[:], p.Name)
	b = append(b, name[:]...)
	b = binary.BigEndian.AppendUint32(b, p.Config)
	b = binary.BigEndian.AppendUint32(b, p.State)
	b = binary.BigEndian.AppendUint32(b, p.Curr)
	b = binary.BigEndian.AppendUint32(b, p.Advertised)
	b = binary.BigEndian.AppendUint32(b, p.Supported)
	b = binary.BigEndian.AppendUint32(b, p.Peer)
	return b
}

func unmarshalPortDesc(b []byte) PortDesc {
	var p PortDesc
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	name := b[8:24]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	p.Name = string(name[:end])
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.Curr = binary.BigEndian.Uint32(b[32:36])
	p.Advertised = binary.BigEndian.Uint32(b[36:40])
	p.Supported = binary.BigEndian.Uint32(b[40:44])
	p.Peer = binary.BigEndian.Uint32(b[44:48])
	return p
}

// PortStatus announces a port change (ofp_port_status).
type PortStatus struct {
	Header
	Reason uint8
	Desc   PortDesc
}

// Port status reasons (ofp_port_reason).
const (
	PortReasonAdd    uint8 = 0
	PortReasonDelete uint8 = 1
	PortReasonModify uint8 = 2
)

// Type implements Message.
func (*PortStatus) Type() MsgType { return TypePortStatus }

// Marshal implements Message.
func (m *PortStatus) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypePortStatus, m.Xid)
	b = append(b, m.Reason, 0, 0, 0, 0, 0, 0, 0)
	b = marshalPortDesc(b, &m.Desc)
	return patchLen(b, off)
}

func decodePortStatus(xid uint32, body []byte) (Message, error) {
	if len(body) < 8+portDescLen {
		return nil, ErrTruncated
	}
	return &PortStatus{
		Header: Header{xid},
		Reason: body[0],
		Desc:   unmarshalPortDesc(body[8:]),
	}, nil
}

// GetConfigRequest asks for the switch configuration.
type GetConfigRequest struct{ Header }

// Type implements Message.
func (*GetConfigRequest) Type() MsgType { return TypeGetConfigReq }

// Marshal implements Message.
func (m *GetConfigRequest) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeGetConfigReq, m.Xid)
	return patchLen(b, off)
}

// SwitchConfig carries OFPT_GET_CONFIG_REPLY / OFPT_SET_CONFIG bodies.
type SwitchConfig struct {
	Header
	// Set distinguishes SET_CONFIG (true) from GET_CONFIG_REPLY (false).
	Set         bool
	Flags       uint16
	MissSendLen uint16
}

// Type implements Message.
func (m *SwitchConfig) Type() MsgType {
	if m.Set {
		return TypeSetConfig
	}
	return TypeGetConfigReply
}

// Marshal implements Message.
func (m *SwitchConfig) Marshal(b []byte) []byte {
	b, off := putHeader(b, m.Type(), m.Xid)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	b = binary.BigEndian.AppendUint16(b, m.MissSendLen)
	return patchLen(b, off)
}

func decodeSwitchConfig(xid uint32, body []byte, set bool) (Message, error) {
	if len(body) < 4 {
		return nil, ErrTruncated
	}
	return &SwitchConfig{
		Header:      Header{xid},
		Set:         set,
		Flags:       binary.BigEndian.Uint16(body[0:2]),
		MissSendLen: binary.BigEndian.Uint16(body[2:4]),
	}, nil
}
