package openflow

import (
	"encoding/binary"

	"tango/internal/flowtable"
)

// StatsRequest asks the switch for statistics. Only flow and table stats
// carry bodies in this subset.
type StatsRequest struct {
	Header
	StatsType uint16
	Flags     uint16
	// FlowMatch and FlowTableID scope a flow-stats request.
	FlowMatch   flowtable.Match
	FlowTableID uint8
	FlowOutPort uint16
}

// Type implements Message.
func (*StatsRequest) Type() MsgType { return TypeStatsRequest }

// Marshal implements Message.
func (m *StatsRequest) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeStatsRequest, m.Xid)
	b = binary.BigEndian.AppendUint16(b, m.StatsType)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	if m.StatsType == StatsTypeFlow || m.StatsType == StatsTypeAggregate {
		b = marshalMatch(b, &m.FlowMatch)
		b = append(b, m.FlowTableID, 0)
		b = binary.BigEndian.AppendUint16(b, m.FlowOutPort)
	}
	return patchLen(b, off)
}

func decodeStatsRequest(xid uint32, body []byte) (Message, error) {
	if len(body) < 4 {
		return nil, ErrTruncated
	}
	m := &StatsRequest{
		Header:    Header{xid},
		StatsType: binary.BigEndian.Uint16(body[0:2]),
		Flags:     binary.BigEndian.Uint16(body[2:4]),
	}
	if m.StatsType == StatsTypeFlow || m.StatsType == StatsTypeAggregate {
		if len(body) < 4+matchLen+4 {
			return nil, ErrTruncated
		}
		match, err := unmarshalMatch(body[4:])
		if err != nil {
			return nil, err
		}
		m.FlowMatch = match
		m.FlowTableID = body[4+matchLen]
		m.FlowOutPort = binary.BigEndian.Uint16(body[4+matchLen+2 : 4+matchLen+4])
	}
	return m, nil
}

// FlowStats is one entry of a flow-stats reply.
type FlowStats struct {
	TableID      uint8
	Match        flowtable.Match
	DurationSec  uint32
	DurationNsec uint32
	Priority     uint16
	IdleTimeout  uint16
	HardTimeout  uint16
	Cookie       uint64
	PacketCount  uint64
	ByteCount    uint64
	Actions      []flowtable.Action
}

// TableStats is one entry of a table-stats reply.
type TableStats struct {
	TableID      uint8
	Name         string
	MaxEntries   uint32
	ActiveCount  uint32
	LookupCount  uint64
	MatchedCount uint64
}

// AggregateStats is the body of an aggregate-stats reply.
type AggregateStats struct {
	PacketCount uint64
	ByteCount   uint64
	FlowCount   uint32
}

// StatsReply answers a StatsRequest.
type StatsReply struct {
	Header
	StatsType uint16
	Flags     uint16
	Flows     []FlowStats
	Tables    []TableStats
	Aggregate AggregateStats
}

// Type implements Message.
func (*StatsReply) Type() MsgType { return TypeStatsReply }

// Marshal implements Message.
func (m *StatsReply) Marshal(b []byte) []byte {
	b, off := putHeader(b, TypeStatsReply, m.Xid)
	b = binary.BigEndian.AppendUint16(b, m.StatsType)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	switch m.StatsType {
	case StatsTypeFlow:
		for i := range m.Flows {
			b = marshalFlowStats(b, &m.Flows[i])
		}
	case StatsTypeTable:
		for i := range m.Tables {
			b = marshalTableStats(b, &m.Tables[i])
		}
	case StatsTypeAggregate:
		b = binary.BigEndian.AppendUint64(b, m.Aggregate.PacketCount)
		b = binary.BigEndian.AppendUint64(b, m.Aggregate.ByteCount)
		b = binary.BigEndian.AppendUint32(b, m.Aggregate.FlowCount)
		b = append(b, 0, 0, 0, 0)
	}
	return patchLen(b, off)
}

func marshalFlowStats(b []byte, fs *FlowStats) []byte {
	start := len(b)
	b = append(b, 0, 0) // length placeholder
	b = append(b, fs.TableID, 0)
	b = marshalMatch(b, &fs.Match)
	b = binary.BigEndian.AppendUint32(b, fs.DurationSec)
	b = binary.BigEndian.AppendUint32(b, fs.DurationNsec)
	b = binary.BigEndian.AppendUint16(b, fs.Priority)
	b = binary.BigEndian.AppendUint16(b, fs.IdleTimeout)
	b = binary.BigEndian.AppendUint16(b, fs.HardTimeout)
	b = append(b, 0, 0, 0, 0, 0, 0) // pad[6]
	b = binary.BigEndian.AppendUint64(b, fs.Cookie)
	b = binary.BigEndian.AppendUint64(b, fs.PacketCount)
	b = binary.BigEndian.AppendUint64(b, fs.ByteCount)
	b = marshalActions(b, fs.Actions)
	binary.BigEndian.PutUint16(b[start:start+2], uint16(len(b)-start))
	return b
}

const tableStatsLen = 64

func marshalTableStats(b []byte, ts *TableStats) []byte {
	b = append(b, ts.TableID, 0, 0, 0)
	var name [32]byte
	copy(name[:], ts.Name)
	b = append(b, name[:]...)
	b = binary.BigEndian.AppendUint32(b, wcAll) // wildcards supported
	b = binary.BigEndian.AppendUint32(b, ts.MaxEntries)
	b = binary.BigEndian.AppendUint32(b, ts.ActiveCount)
	b = binary.BigEndian.AppendUint64(b, ts.LookupCount)
	b = binary.BigEndian.AppendUint64(b, ts.MatchedCount)
	return b
}

func decodeStatsReply(xid uint32, body []byte) (Message, error) {
	if len(body) < 4 {
		return nil, ErrTruncated
	}
	m := &StatsReply{
		Header:    Header{xid},
		StatsType: binary.BigEndian.Uint16(body[0:2]),
		Flags:     binary.BigEndian.Uint16(body[2:4]),
	}
	p := body[4:]
	switch m.StatsType {
	case StatsTypeFlow:
		for len(p) > 0 {
			if len(p) < 2 {
				return nil, ErrTruncated
			}
			elen := int(binary.BigEndian.Uint16(p[0:2]))
			if elen < 88 || elen > len(p) {
				return nil, ErrTruncated
			}
			fs, err := unmarshalFlowStats(p[:elen])
			if err != nil {
				return nil, err
			}
			m.Flows = append(m.Flows, fs)
			p = p[elen:]
		}
	case StatsTypeTable:
		for len(p) >= tableStatsLen {
			m.Tables = append(m.Tables, unmarshalTableStats(p[:tableStatsLen]))
			p = p[tableStatsLen:]
		}
	case StatsTypeAggregate:
		if len(p) < 20 {
			return nil, ErrTruncated
		}
		m.Aggregate = AggregateStats{
			PacketCount: binary.BigEndian.Uint64(p[0:8]),
			ByteCount:   binary.BigEndian.Uint64(p[8:16]),
			FlowCount:   binary.BigEndian.Uint32(p[16:20]),
		}
	}
	return m, nil
}

func unmarshalFlowStats(p []byte) (FlowStats, error) {
	var fs FlowStats
	fs.TableID = p[2]
	match, err := unmarshalMatch(p[4:])
	if err != nil {
		return fs, err
	}
	fs.Match = match
	q := p[4+matchLen:]
	fs.DurationSec = binary.BigEndian.Uint32(q[0:4])
	fs.DurationNsec = binary.BigEndian.Uint32(q[4:8])
	fs.Priority = binary.BigEndian.Uint16(q[8:10])
	fs.IdleTimeout = binary.BigEndian.Uint16(q[10:12])
	fs.HardTimeout = binary.BigEndian.Uint16(q[12:14])
	fs.Cookie = binary.BigEndian.Uint64(q[20:28])
	fs.PacketCount = binary.BigEndian.Uint64(q[28:36])
	fs.ByteCount = binary.BigEndian.Uint64(q[36:44])
	actions, err := unmarshalActions(q[44:])
	if err != nil {
		return fs, err
	}
	fs.Actions = actions
	return fs, nil
}

func unmarshalTableStats(p []byte) TableStats {
	name := p[4:36]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	return TableStats{
		TableID:      p[0],
		Name:         string(name[:end]),
		MaxEntries:   binary.BigEndian.Uint32(p[40:44]),
		ActiveCount:  binary.BigEndian.Uint32(p[44:48]),
		LookupCount:  binary.BigEndian.Uint64(p[48:56]),
		MatchedCount: binary.BigEndian.Uint64(p[56:64]),
	}
}
