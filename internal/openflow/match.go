package openflow

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"tango/internal/flowtable"
	"tango/internal/packet"
)

// matchLen is the encoded size of ofp_match.
const matchLen = 40

// marshalMatch encodes m into the 40-byte ofp_match layout, appending to b.
func marshalMatch(b []byte, m *flowtable.Match) []byte {
	wc := wcAll
	var (
		inPort           uint16
		dlSrc, dlDst     packet.MAC
		dlType           uint16
		nwProto          uint8
		nwSrc, nwDst     [4]byte
		nwSrcPL, nwDstPL int // prefix lengths
		tpSrc, tpDst     uint16
	)
	if m.Has(flowtable.FieldInPort) {
		wc &^= wcInPort
		inPort = m.InPort
	}
	if m.Has(flowtable.FieldDlSrc) {
		wc &^= wcDlSrc
		dlSrc = m.DlSrc
	}
	if m.Has(flowtable.FieldDlDst) {
		wc &^= wcDlDst
		dlDst = m.DlDst
	}
	if m.Has(flowtable.FieldDlType) {
		wc &^= wcDlType
		dlType = uint16(m.DlType)
	}
	if m.Has(flowtable.FieldNwProto) {
		wc &^= wcNwProto
		nwProto = uint8(m.NwProto)
	}
	if m.Has(flowtable.FieldNwSrc) {
		nwSrc = m.NwSrc.Addr().As4()
		nwSrcPL = m.NwSrc.Bits()
	}
	if m.Has(flowtable.FieldNwDst) {
		nwDst = m.NwDst.Addr().As4()
		nwDstPL = m.NwDst.Bits()
	}
	if m.Has(flowtable.FieldTpSrc) {
		wc &^= wcTpSrc
		tpSrc = m.TpSrc
	}
	if m.Has(flowtable.FieldTpDst) {
		wc &^= wcTpDst
		tpDst = m.TpDst
	}
	// In OF1.0 the NW wildcard fields count ignored low-order bits: 0 means
	// exact /32, 32+ means fully wildcarded.
	wc &^= wcNwSrcMask | wcNwDstMask
	wc |= uint32(32-nwSrcPL) << wcNwSrcShift
	wc |= uint32(32-nwDstPL) << wcNwDstShift

	b = binary.BigEndian.AppendUint32(b, wc)
	b = binary.BigEndian.AppendUint16(b, inPort)
	b = append(b, dlSrc[:]...)
	b = append(b, dlDst[:]...)
	b = binary.BigEndian.AppendUint16(b, 0xffff) // dl_vlan: OFP_VLAN_NONE
	b = append(b, 0, 0)                          // dl_vlan_pcp + pad
	b = binary.BigEndian.AppendUint16(b, dlType)
	b = append(b, 0, byte(nwProto), 0, 0) // nw_tos, nw_proto, pad[2]
	b = append(b, nwSrc[:]...)
	b = append(b, nwDst[:]...)
	b = binary.BigEndian.AppendUint16(b, tpSrc)
	b = binary.BigEndian.AppendUint16(b, tpDst)
	return b
}

// unmarshalMatch decodes a 40-byte ofp_match into a flowtable.Match.
func unmarshalMatch(b []byte) (flowtable.Match, error) {
	var m flowtable.Match
	if len(b) < matchLen {
		return m, fmt.Errorf("openflow: match needs %d bytes, have %d", matchLen, len(b))
	}
	wc := binary.BigEndian.Uint32(b[0:4])
	if wc&wcInPort == 0 {
		m.Fields |= flowtable.FieldInPort
		m.InPort = binary.BigEndian.Uint16(b[4:6])
	}
	if wc&wcDlSrc == 0 {
		m.Fields |= flowtable.FieldDlSrc
		copy(m.DlSrc[:], b[6:12])
	}
	if wc&wcDlDst == 0 {
		m.Fields |= flowtable.FieldDlDst
		copy(m.DlDst[:], b[12:18])
	}
	if wc&wcDlType == 0 {
		m.Fields |= flowtable.FieldDlType
		m.DlType = packet.EtherType(binary.BigEndian.Uint16(b[22:24]))
	}
	if wc&wcNwProto == 0 {
		m.Fields |= flowtable.FieldNwProto
		m.NwProto = packet.IPProtocol(b[25])
	}
	if ignored := int(wc & wcNwSrcMask >> wcNwSrcShift); ignored < 32 {
		m.Fields |= flowtable.FieldNwSrc
		addr := netip.AddrFrom4([4]byte(b[28:32]))
		m.NwSrc = netip.PrefixFrom(addr, 32-ignored).Masked()
	}
	if ignored := int(wc & wcNwDstMask >> wcNwDstShift); ignored < 32 {
		m.Fields |= flowtable.FieldNwDst
		addr := netip.AddrFrom4([4]byte(b[32:36]))
		m.NwDst = netip.PrefixFrom(addr, 32-ignored).Masked()
	}
	if wc&wcTpSrc == 0 {
		m.Fields |= flowtable.FieldTpSrc
		m.TpSrc = binary.BigEndian.Uint16(b[36:38])
	}
	if wc&wcTpDst == 0 {
		m.Fields |= flowtable.FieldTpDst
		m.TpDst = binary.BigEndian.Uint16(b[38:40])
	}
	return m, nil
}

// marshalActions encodes a rule action list as ofp_action_output structs.
func marshalActions(b []byte, actions []flowtable.Action) []byte {
	for _, a := range actions {
		port := a.Port
		if a.Type == flowtable.ActionController {
			port = PortController
		}
		b = binary.BigEndian.AppendUint16(b, ActionTypeOutput)
		b = binary.BigEndian.AppendUint16(b, 8) // length
		b = binary.BigEndian.AppendUint16(b, port)
		b = binary.BigEndian.AppendUint16(b, 0xffff) // max_len (to controller)
	}
	return b
}

// unmarshalActions decodes a packed action list.
func unmarshalActions(b []byte) ([]flowtable.Action, error) {
	var out []flowtable.Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("openflow: truncated action header")
		}
		typ := binary.BigEndian.Uint16(b[0:2])
		alen := int(binary.BigEndian.Uint16(b[2:4]))
		if alen < 8 || alen%8 != 0 || alen > len(b) {
			return nil, fmt.Errorf("openflow: bad action length %d", alen)
		}
		if typ == ActionTypeOutput {
			port := binary.BigEndian.Uint16(b[4:6])
			act := flowtable.Action{Type: flowtable.ActionOutput, Port: port}
			if port == PortController {
				act = flowtable.Action{Type: flowtable.ActionController}
			}
			out = append(out, act)
		}
		// Unknown action types are skipped; the emulated switch ignores them
		// just as hardware ignores optional actions it cannot honour.
		b = b[alen:]
	}
	return out, nil
}
