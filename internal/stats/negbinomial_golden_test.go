package stats

import (
	"math"
	"math/rand"
	"testing"
)

// geometricTrials draws k run-lengths of consecutive successes (probability
// p each) before the first failure — the experiment NegBinomialMLE inverts.
func geometricTrials(seed int64, p float64, k int) []int {
	rng := rand.New(rand.NewSource(seed))
	trials := make([]int, k)
	for i := range trials {
		n := 0
		for rng.Float64() < p {
			n++
		}
		trials[i] = n
	}
	return trials
}

// TestNegBinomialMLEGolden pins the estimator bit-for-bit on seeded inputs:
// fixed seeds must keep producing these exact p̂ and n̂ = round(m·p̂) values.
// A change here means the estimator (or the trial-drawing convention)
// changed behaviour, not just jitter.
func TestNegBinomialMLEGolden(t *testing.T) {
	cases := []struct {
		seed     int64
		p        float64 // true success probability behind the draws
		m        int     // installed rules the estimate scales against
		wantPHat float64
		wantNHat int
	}{
		{7, 0.80, 500, 0.7168141592920354, 358},
		{21, 0.50, 200, 0.50387596899224807, 101},
		{99, 0.95, 1024, 0.95444839857651242, 977},
	}
	for _, c := range cases {
		trials := geometricTrials(c.seed, c.p, 64)
		phat, err := NegBinomialMLE(trials)
		if err != nil {
			t.Fatalf("seed %d: %v", c.seed, err)
		}
		if phat != c.wantPHat {
			t.Errorf("seed %d: p̂ = %.17g, want %.17g", c.seed, phat, c.wantPHat)
		}
		if nhat := int(float64(c.m)*phat + 0.5); nhat != c.wantNHat {
			t.Errorf("seed %d: n̂ = %d, want %d", c.seed, nhat, c.wantNHat)
		}
	}
}

// TestNegBinomialMLEExact checks the closed form p̂ = Σx/(k+Σx) on
// hand-computable inputs.
func TestNegBinomialMLEExact(t *testing.T) {
	cases := []struct {
		trials []int
		want   float64
	}{
		{[]int{0, 0, 0}, 0},               // all immediate misses: p̂ = 0
		{[]int{1}, 0.5},                   // 1/(1+1)
		{[]int{3, 1}, 2.0 / 3.0},          // 4/(2+4)
		{[]int{9, 9, 9, 9}, 0.9},          // 36/(4+36)
		{[]int{1000000}, 1000000.0 / 1000001.0}, // long runs approach 1
	}
	for _, c := range cases {
		got, err := NegBinomialMLE(c.trials)
		if err != nil {
			t.Fatalf("%v: %v", c.trials, err)
		}
		if math.Abs(got-c.want) > 1e-15 {
			t.Errorf("NegBinomialMLE(%v) = %.17g, want %.17g", c.trials, got, c.want)
		}
	}
}
