package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance(nil); got != 0 {
		t.Fatalf("Variance(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
	// Out-of-range p is clamped rather than rejected.
	if got, _ := Percentile(xs, 150); got != 5 {
		t.Fatalf("Percentile(150) = %v, want 5", got)
	}
	if got, _ := Percentile(xs, -10); got != 1 {
		t.Fatalf("Percentile(-10) = %v, want 1", got)
	}
}

func TestMedianSingleton(t *testing.T) {
	got, err := Median([]float64{42})
	if err != nil || got != 42 {
		t.Fatalf("Median([42]) = %v, %v", got, err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{40, 30, 20, 10}
	r, _ = Pearson(xs, neg)
	if !almost(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err != nil || r != 0 {
		t.Fatalf("constant x: r=%v err=%v, want 0, nil", r, err)
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for single sample")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman should be exactly 1 for any strictly increasing transform.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", r)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a, 1, 1e-9) || !almost(b, 2, 1e-9) {
		t.Fatalf("LinearFit = (%v, %v), want (1, 2)", a, b)
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("expected error for constant x")
	}
}

func TestNegBinomialMLE(t *testing.T) {
	// If every trial sees x consecutive hits then p̂ = kx/(k+kx) = x/(1+x).
	p, err := NegBinomialMLE([]int{4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p, 0.8, 1e-12) {
		t.Fatalf("p̂ = %v, want 0.8", p)
	}
	if _, err := NegBinomialMLE(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if _, err := NegBinomialMLE([]int{-1}); err == nil {
		t.Fatal("expected error for negative count")
	}
}

// TestNegBinomialMLERecovers verifies the estimator converges to the true
// cache-hit probability on synthetic geometric data — the exact setting of
// Algorithm 1's sampling phase.
func TestNegBinomialMLERecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []float64{0.2, 0.5, 0.8, 0.95} {
		const k = 4000
		trials := make([]int, k)
		for i := range trials {
			x := 0
			for rng.Float64() < p {
				x++
			}
			trials[i] = x
		}
		got, err := NegBinomialMLE(trials)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p) > 0.02 {
			t.Errorf("p=%v: estimate %v off by more than 0.02", p, got)
		}
	}
}

func TestHistogram(t *testing.T) {
	counts, width, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if width != 5 {
		t.Fatalf("width = %v, want 5", width)
	}
	if counts[0] != 5 || counts[1] != 6 {
		t.Fatalf("counts = %v, want [5 6]", counts)
	}
	// Constant data goes entirely into the first bin.
	counts, width, err = Histogram([]float64{3, 3, 3}, 4)
	if err != nil || width != 0 || counts[0] != 3 {
		t.Fatalf("constant: counts=%v width=%v err=%v", counts, width, err)
	}
	if _, _, err := Histogram(nil, 3); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Fatal("expected error for nbins < 1")
	}
}

// Property: Pearson is symmetric, bounded by [-1, 1], and invariant under
// positive affine transforms of either argument.
func TestPearsonProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v%17) * 3.5
		}
		r1, err1 := Pearson(xs, ys)
		r2, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(r1) > 1+1e-9 || math.Abs(r1-r2) > 1e-9 {
			return false
		}
		// Affine transform x -> 2x + 5 must preserve r.
		xt := make([]float64, len(xs))
		for i, x := range xs {
			xt[i] = 2*x + 5
		}
		r3, _ := Pearson(xt, ys)
		return math.Abs(r1-r3) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ranks are a permutation-consistent relabelling — the multiset of
// ranks always sums to n(n+1)/2.
func TestRanksSumProperty(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		ranks := Ranks(xs)
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		n := float64(len(xs))
		return math.Abs(sum-n*(n+1)/2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, err1 := Percentile(xs, p1)
		v2, err2 := Percentile(xs, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		min, max, _ := MinMax(xs)
		return v1 <= v2+1e-9 && v1 >= min-1e-9 && v2 <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
