// Package stats implements the small statistical toolkit the Tango inference
// engine needs: descriptive statistics, Pearson and rank correlation, simple
// linear fits, and the negative-binomial maximum-likelihood estimator used by
// the flow-table size-probing algorithm (Algorithm 1 of the paper).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs.
// It returns ErrEmpty if xs is empty.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Pearson returns the Pearson product-moment correlation coefficient between
// xs and ys. It returns 0 when either input is constant (zero variance), and
// an error when the lengths differ or fewer than two samples are supplied.
// The policy-probing algorithm uses |Pearson| to find the attribute that best
// explains which flows a switch kept in its cache.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: need at least two samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation between xs and ys, i.e. the
// Pearson correlation of their rank vectors. Ties receive averaged ranks.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs, averaging ranks across
// ties, in the original order of xs.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// LinearFit fits y = a + b·x by least squares and returns the intercept a and
// slope b. It returns an error for fewer than two points or constant x.
func LinearFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return 0, 0, errors.New("stats: need at least two samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: constant x")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// NegBinomialMLE computes the maximum-likelihood estimate of the cache-hit
// probability p from k independent trials whose i-th trial observed trials[i]
// consecutive cache hits before the first miss. Following §5.2 of the paper,
// with X ~ NB(1, p):
//
//	p̂ = Σx / (k + Σx)
//
// The estimated layer size is then n̂ = m·p̂ where m is the number of
// installed rules. It returns an error when no trials are supplied.
func NegBinomialMLE(trials []int) (float64, error) {
	if len(trials) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range trials {
		if x < 0 {
			return 0, errors.New("stats: negative trial count")
		}
		sum += float64(x)
	}
	k := float64(len(trials))
	return sum / (k + sum), nil
}

// NegBinomialMLESums is NegBinomialMLE over pre-aggregated trials: k trials
// whose run lengths total sum. Sampling loops track the two sufficient
// statistics instead of materialising a trial slice; run counts stay far
// below 2⁵³, so the float64 arithmetic matches the slice form bit for bit.
func NegBinomialMLESums(k, sum int) (float64, error) {
	if k == 0 {
		return 0, ErrEmpty
	}
	if sum < 0 {
		return 0, errors.New("stats: negative trial count")
	}
	s := float64(sum)
	return s / (float64(k) + s), nil
}

// Histogram counts xs into nbins equal-width bins across [min, max] and
// returns the bin counts together with the bin width. Values equal to max
// land in the final bin. It returns an error when xs is empty or nbins < 1.
func Histogram(xs []float64, nbins int) (counts []int, width float64, err error) {
	if nbins < 1 {
		return nil, 0, errors.New("stats: nbins must be >= 1")
	}
	min, max, err := MinMax(xs)
	if err != nil {
		return nil, 0, err
	}
	counts = make([]int, nbins)
	if min == max {
		counts[0] = len(xs)
		return counts, 0, nil
	}
	width = (max - min) / float64(nbins)
	for _, x := range xs {
		b := int((x - min) / width)
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, width, nil
}
