package switchsim

import (
	"time"

	"tango/internal/openflow"
	"tango/internal/telemetry"
)

// switchTelemetry holds the emulator's metric handles. Counters aggregate
// across every switch in the process (the fleet view); occupancy gauges are
// per switch instance, named after the profile. All handles are nil-safe,
// so an uninstrumented switch pays one nil check per record site.
type switchTelemetry struct {
	tracer *telemetry.Tracer
	name   string

	flowMods    *telemetry.Counter
	packets     *telemetry.Counter
	fastHits    *telemetry.Counter
	midHits     *telemetry.Counter
	slowHits    *telemetry.Counter
	controlMiss *telemetry.Counter
	evictions   *telemetry.Counter
	promotions  *telemetry.Counter
	expirations *telemetry.Counter
	resets      *telemetry.Counter
	idxPushes   *telemetry.Counter
	idxRemoves  *telemetry.Counter
	idxFixups   *telemetry.Counter

	tcamOcc   *telemetry.Gauge
	softOcc   *telemetry.Gauge
	kernelOcc *telemetry.Gauge

	hFlowMod  *telemetry.Histogram
	hIdxDepth *telemetry.Histogram
}

func (t *switchTelemetry) init(reg *telemetry.Registry, tr *telemetry.Tracer, name string) {
	t.tracer = tr
	t.name = name
	t.flowMods = reg.Counter("switchsim.flowmods")
	t.packets = reg.Counter("switchsim.packets")
	t.fastHits = reg.Counter("switchsim.fast_hits")
	t.midHits = reg.Counter("switchsim.mid_hits")
	t.slowHits = reg.Counter("switchsim.slow_hits")
	t.controlMiss = reg.Counter("switchsim.control_miss")
	t.evictions = reg.Counter("switchsim.evictions")
	t.promotions = reg.Counter("switchsim.promotions")
	t.expirations = reg.Counter("switchsim.expirations")
	t.resets = reg.Counter("switchsim.resets")
	t.idxPushes = reg.Counter("switchsim.evict_index.pushes")
	t.idxRemoves = reg.Counter("switchsim.evict_index.removes")
	t.idxFixups = reg.Counter("switchsim.evict_index.fixups")
	// Occupancy is per switch instance: labeled children of one gauge family
	// per table, so exporters can slice the fleet by switch name instead of
	// parsing name-mangled metric keys.
	t.tcamOcc = reg.GaugeVec("switchsim.tcam_occupancy", "switch").With(name)
	t.softOcc = reg.GaugeVec("switchsim.software_occupancy", "switch").With(name)
	t.kernelOcc = reg.GaugeVec("switchsim.kernel_occupancy", "switch").With(name)
	t.hFlowMod = reg.Histogram("switchsim.flowmod_ns")
	t.hIdxDepth = reg.Histogram("switchsim.evict_index.depth",
		1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)
}

// enabled reports whether any per-operation work (spans, occupancy sets)
// is worth doing.
func (t *switchTelemetry) enabled() bool {
	return t.hFlowMod != nil || t.tracer != nil
}

// WithTelemetry binds the switch to a registry and tracer instead of the
// process-wide defaults picked up at New time. Either argument may be nil.
func WithTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) Option {
	return func(s *Switch) { s.tel.init(reg, tr, s.profile.Name) }
}

// noteFlowModDone records the flow-mod's virtual latency (histogram +
// switch.flowmod span) and refreshes the occupancy gauges. Callers hold
// s.mu. start is the virtual instant the flow-mod began.
func (s *Switch) noteFlowModDone(start time.Time, fm *openflow.FlowMod, err error) {
	if !s.tel.enabled() {
		return
	}
	dur := s.clock.Now().Sub(start)
	s.tel.hFlowMod.Observe(float64(dur))
	if s.tel.tracer != nil {
		args := map[string]any{"command": fm.Command.String(), "priority": fm.Priority}
		if err != nil {
			args["error"] = err.Error()
		}
		s.tel.tracer.Record("switch.flowmod", s.tel.name, start, dur, args)
	}
	s.updateOccupancy()
}

// updateOccupancy refreshes the per-table occupancy gauges. Callers hold
// s.mu.
func (s *Switch) updateOccupancy() {
	if s.tel.tcamOcc == nil {
		return
	}
	if s.tcam != nil {
		s.tel.tcamOcc.Set(int64(s.tcam.Len()))
	}
	if s.software != nil {
		s.tel.softOcc.Set(int64(s.software.Len()))
	}
	if s.kernel != nil {
		s.tel.kernelOcc.Set(int64(len(s.kernel)))
	}
}
