package switchsim

import (
	"time"

	"tango/internal/flowtable"
)

// TableKind identifies the management style of a switch's table hierarchy.
type TableKind int

// Table-management styles seen across the vendors of §3.
const (
	// ManageTCAMOnly: a single TCAM table; inserts beyond capacity are
	// rejected with an OpenFlow "all tables full" error (Switches #2, #3).
	ManageTCAMOnly TableKind = iota
	// ManagePolicyCache: a TCAM cache in front of an (almost) unbounded
	// software table; a cache policy decides which rules live in the TCAM
	// (Switch #1 uses FIFO; the inference test matrix uses LRU/LFU/…).
	ManagePolicyCache
	// ManageMicroflow: OVS style — rules live in a user-space table and
	// data-plane traffic installs exact-match microflow entries into an
	// unbounded kernel table (the 1-to-N mapping of §3).
	ManageMicroflow
)

// String implements fmt.Stringer.
func (k TableKind) String() string {
	switch k {
	case ManageTCAMOnly:
		return "tcam-only"
	case ManagePolicyCache:
		return "policy-cache"
	default:
		return "microflow"
	}
}

// Profile describes one emulated switch model: its table hierarchy, cache
// policy, capacity limits, and latency calibration.
type Profile struct {
	// Name labels the profile in logs and experiment output.
	Name string
	// Kind selects the table-management style.
	Kind TableKind
	// TCAM sizes the hardware table (unused for ManageMicroflow).
	TCAM flowtable.TCAMConfig
	// SoftwareCapacity bounds the user-space table; 0 means the emulator's
	// default large bound. Software tables are "virtually unlimited" in the
	// paper; a finite bound keeps probing budgets sane and is documented as
	// a substitution in DESIGN.md.
	SoftwareCapacity int
	// KernelCapacity bounds the OVS kernel microflow cache (ManageMicroflow
	// only); 0 means unbounded within SoftwareCapacity.
	KernelCapacity int
	// CachePolicy governs TCAM residency for ManagePolicyCache.
	CachePolicy Policy

	// FastPath, MidPath, SlowPath, ControlPath are the per-tier data-plane
	// round-trip latencies. MidPath is used only by three-tier hardware
	// hierarchies that split their fast path (Figure 5); zero disables it.
	FastPath    LatencyDist
	MidPath     LatencyDist
	SlowPath    LatencyDist
	ControlPath LatencyDist

	// Costs calibrates control-channel operation latencies.
	Costs ControlCosts

	// MidPathSlots is the number of TCAM entries served at FastPath speed;
	// entries beyond it (but still in TCAM) pay MidPath. Zero means the
	// whole TCAM runs at FastPath. This models the two fast banks visible
	// in Figure 5.
	MidPathSlots int

	// NumPorts is the number of physical ports reported in FEATURES_REPLY;
	// zero means 48 (a typical top-of-rack configuration).
	NumPorts int

	// DatapathID is reported in FEATURES_REPLY.
	DatapathID uint64
}

// numPorts returns the effective port count.
func (p Profile) numPorts() int {
	if p.NumPorts > 0 {
		return p.NumPorts
	}
	return 48
}

// defaultSoftwareCapacity bounds "virtually unlimited" software tables.
const defaultSoftwareCapacity = 1 << 17

// Vendor profiles calibrated against the measurements in §3 of the paper.
// The latency means come straight from the text; standard deviations are
// chosen to match the visual spread of Figures 2 and 5.

// OVS models the Open vSwitch software switch: unbounded user-space and
// kernel tables, traffic-driven microflow caching, three latency tiers
// around 3 / 4.5 / 4.65 ms, and priority-independent rule installation of
// roughly 50 µs per flow-mod.
func OVS() Profile {
	return Profile{
		Name:             "OVS",
		Kind:             ManageMicroflow,
		SoftwareCapacity: defaultSoftwareCapacity,
		FastPath:         LatencyDist{Mean: ms(3.0), StdDev: ms(0.08)},
		SlowPath:         LatencyDist{Mean: ms(4.5), StdDev: ms(0.45)},
		ControlPath:      LatencyDist{Mean: ms(4.65), StdDev: ms(0.12)},
		Costs: ControlCosts{
			AddBase:         us(52),
			ModBase:         us(55),
			DelBase:         us(45),
			TypeSwitchDelta: us(45),
			JitterFrac:      0.05,
		},
		DatapathID: 0x00000000_0000_0001,
	}
}

// Switch1 models the Vendor #1 hardware switch: a FIFO software table in
// front of a TCAM holding 4K single-wide or 2K double-wide entries, three
// latency tiers at 0.665 / 3.7 / 7.5 ms, and strongly priority-dependent
// installation costs (ascending ≈12× faster than random, ≈40× faster than
// descending at a few thousand rules).
func Switch1() Profile {
	return Switch1Mode(flowtable.ModeDoubleWide)
}

// Switch1Mode returns the Switch #1 profile with its TCAM configured in the
// given user-selectable mode: single-wide gives 4K L2-only/L3-only entries,
// double-wide gives 2K L2+L3 entries (Table 1).
func Switch1Mode(mode flowtable.TCAMMode) Profile {
	cfg := flowtable.TCAMConfig{Mode: mode, CapacityNarrow: 4096, CapacityWide: 4096}
	if mode == flowtable.ModeDoubleWide {
		cfg.CapacityNarrow = 2048
		cfg.CapacityWide = 2048
	}
	return Profile{
		Name:             "Switch#1",
		Kind:             ManagePolicyCache,
		TCAM:             cfg,
		SoftwareCapacity: 8192, // 256 user-space virtual tables
		CachePolicy:      PolicyFIFO,
		FastPath:         LatencyDist{Mean: ms(0.665), StdDev: ms(0.02)},
		SlowPath:         LatencyDist{Mean: ms(3.7), StdDev: ms(0.25)},
		ControlPath:      LatencyDist{Mean: ms(7.5), StdDev: ms(0.7)},
		Costs: ControlCosts{
			AddBase:          us(420),
			AddPriorityDelta: us(480),
			ShiftUnit:        us(14),
			ModBase:          ms(6.0),
			DelBase:          ms(2.0),
			TypeSwitchDelta:  us(300),
			JitterFrac:       0.06,
		},
		DatapathID: 0x00000000_0000_0011,
	}
}

// Switch2 models the Vendor #2 hardware switch: TCAM-only with 2560 entries
// regardless of entry width (a fixed double-wide design), two latency tiers
// at 0.4 / 8 ms. FigureFiveSwitch is the variant whose TCAM additionally
// splits into the two fast banks Figure 5 shows.
func Switch2() Profile {
	return Profile{
		Name: "Switch#2",
		Kind: ManageTCAMOnly,
		TCAM: flowtable.TCAMConfig{
			Mode:           flowtable.ModeDoubleWide,
			CapacityNarrow: 2560,
			CapacityWide:   2560,
		},
		FastPath:    LatencyDist{Mean: ms(0.40), StdDev: ms(0.03)},
		ControlPath: LatencyDist{Mean: ms(8.0), StdDev: ms(0.7)},
		Costs: ControlCosts{
			AddBase:          us(500),
			AddPriorityDelta: us(400),
			ShiftUnit:        us(12),
			ModBase:          ms(5.0),
			DelBase:          ms(1.8),
			TypeSwitchDelta:  us(250),
			JitterFrac:       0.06,
		},
		DatapathID: 0x00000000_0000_0022,
	}
}

// Switch3 models the Vendor #3 hardware switch: TCAM-only with an adaptive
// width design holding 767 single-wide or 369 double-wide entries.
func Switch3() Profile {
	return Profile{
		Name: "Switch#3",
		Kind: ManageTCAMOnly,
		TCAM: flowtable.TCAMConfig{
			Mode:           flowtable.ModeAdaptive,
			CapacityNarrow: 767,
			CapacityWide:   369,
		},
		FastPath:    LatencyDist{Mean: ms(0.5), StdDev: ms(0.04)},
		ControlPath: LatencyDist{Mean: ms(8.5), StdDev: ms(0.7)},
		Costs: ControlCosts{
			AddBase:          us(600),
			AddPriorityDelta: us(500),
			// Vendor #3's TCAM manager reorganises aggressively on
			// out-of-order priority insertion (its small table and slow
			// management CPU make per-entry moves an order of magnitude
			// dearer than Vendor #1's); this is what makes the Figure 10
			// link-failure scenario — 400 additions on the Vendor #3
			// switch — improve ~70% under Tango's priority pattern.
			ShiftUnit:       us(150),
			ModBase:         ms(7.0),
			DelBase:         ms(2.5),
			TypeSwitchDelta: us(350),
			JitterFrac:      0.07,
		},
		DatapathID: 0x00000000_0000_0033,
	}
}

// WithPolicy returns a copy of a policy-cache profile using the given cache
// policy; the inference accuracy matrix sweeps this across FIFO, LRU, LFU,
// priority, and LEX composites.
func (p Profile) WithPolicy(policy Policy) Profile {
	p.CachePolicy = policy
	return p
}

// WithTCAMCapacity returns a copy with the TCAM scaled to hold n entries in
// its current mode — probing tests use small caches to keep budgets tight.
func (p Profile) WithTCAMCapacity(n int) Profile {
	p.TCAM.CapacityNarrow = n
	p.TCAM.CapacityWide = n
	return p
}

// TestSwitch returns a small, fast policy-cache profile for unit tests and
// inference experiments: cacheSize TCAM entries above an unbounded software
// table, with crisp latency tiers for unambiguous clustering.
func TestSwitch(cacheSize int, policy Policy) Profile {
	return Profile{
		Name:             "test-switch",
		Kind:             ManagePolicyCache,
		TCAM:             flowtable.TCAMConfig{Mode: flowtable.ModeDoubleWide, CapacityNarrow: cacheSize, CapacityWide: cacheSize},
		SoftwareCapacity: 1 << 15,
		CachePolicy:      policy,
		FastPath:         LatencyDist{Mean: ms(0.5), StdDev: ms(0.02)},
		SlowPath:         LatencyDist{Mean: ms(4.0), StdDev: ms(0.2)},
		ControlPath:      LatencyDist{Mean: ms(9.0), StdDev: ms(0.5)},
		Costs: ControlCosts{
			AddBase:          us(300),
			AddPriorityDelta: us(200),
			ShiftUnit:        us(10),
			ModBase:          ms(3),
			DelBase:          ms(1),
			TypeSwitchDelta:  us(150),
			JitterFrac:       0.05,
		},
		DatapathID: 0x7e57,
	}
}

// FigureFiveSwitch reproduces the three-tier RTT structure of Figure 5: two
// fast TCAM banks and a slow path, probed with ~2500 installed flows.
func FigureFiveSwitch() Profile {
	p := Switch2()
	p.Name = "Switch#2-fig5"
	p.Kind = ManagePolicyCache
	p.TCAM = flowtable.TCAMConfig{Mode: flowtable.ModeDoubleWide, CapacityNarrow: 2047, CapacityWide: 2047}
	p.SoftwareCapacity = 8192
	p.CachePolicy = PolicyFIFO
	p.MidPathSlots = 1024
	// RTTs in Figure 5 range over 0–160 in units of 10^-2 ms. Physical
	// TCAM bank latencies are tight; the narrow jitter is what lets the
	// clustering stage resolve the two fast banks as distinct tiers.
	p.FastPath = LatencyDist{Mean: ms(0.30), StdDev: ms(0.012)}
	p.MidPath = LatencyDist{Mean: ms(0.55), StdDev: ms(0.015)}
	p.SlowPath = LatencyDist{Mean: ms(1.40), StdDev: ms(0.06)}
	return p
}

// EffectiveAddLatency returns the deterministic mean cost of adding a rule
// with the given number of higher-priority entries present and whether the
// priority differs from the previous add. Exposed for calibrating scheduler
// score tables in tests.
func (p Profile) EffectiveAddLatency(higher int, newBand bool) time.Duration {
	c := p.Costs.AddBase + time.Duration(higher)*p.Costs.ShiftUnit
	if newBand {
		c += p.Costs.AddPriorityDelta
	}
	return c
}
