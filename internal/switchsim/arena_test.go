package switchsim

import (
	"math/rand"
	"testing"
	"time"

	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/simclock"
)

// trackedRule returns the bookkeeping rule for flow id, or nil.
func trackedRule(s *Switch, id uint32) *flowtable.Rule {
	want := flowtable.ExactProbeMatch(id)
	var found *flowtable.Rule
	s.forEachTracked(func(r *flowtable.Rule) {
		if r.Match == want {
			found = r
		}
	})
	return found
}

// TestArenaStaleHandleAfterDelete exercises the arena's use-after-free
// defence: a handle captured before its rule is deleted must resolve to
// nil afterwards — even once the slot has been recycled for a new rule —
// because freeEntry zeroes the slot's self field and allocEntry stamps the
// new tenant's own handle.
func TestArenaStaleHandleAfterDelete(t *testing.T) {
	s := New(Switch2())
	addFlow(t, s, 1, 100)
	r := trackedRule(s, 1)
	if r == nil {
		t.Fatal("flow 1 not tracked")
	}
	h := r.Ext
	if h == 0 {
		t.Fatal("tracked rule has no arena handle")
	}
	if err := s.FlowMod(&openflow.FlowMod{
		Command: openflow.FlowDeleteStrict, Match: flowtable.ExactProbeMatch(1), Priority: 100,
	}); err != nil {
		t.Fatal(err)
	}
	if e := s.entryAt(h); e != nil {
		t.Fatalf("stale handle %d resolved to %+v after delete", h, e)
	}
	// The slot is recycled by the next add; the stale handle must now
	// resolve to the NEW tenant only through the new rule's own Ext, never
	// through the old handle value held by a confused caller.
	addFlow(t, s, 2, 100)
	r2 := trackedRule(s, 2)
	if r2.Ext != h {
		t.Fatalf("free list did not recycle handle %d (got %d)", h, r2.Ext)
	}
	if e := s.entryAt(h); e == nil || e.rule != r2 {
		t.Fatal("recycled slot does not resolve to its new tenant")
	}
}

// TestArenaHandleReuseAfterExpiry asserts that timeout expiry feeds the
// free list exactly like explicit deletion: the expired rule's handle is
// stale immediately, and the next install reuses it.
func TestArenaHandleReuseAfterExpiry(t *testing.T) {
	clk := simclock.NewVirtual()
	s := New(Switch2(), WithClock(clk))
	addTimedFlow(t, s, 1, 0, 1)
	h := trackedRule(s, 1).Ext
	clk.Advance(2 * time.Second)
	s.ExpireNow()
	if e := s.entryAt(h); e != nil {
		t.Fatalf("handle %d still resolves after expiry", h)
	}
	addFlow(t, s, 2, 100)
	if got := trackedRule(s, 2).Ext; got != h {
		t.Fatalf("expiry freed handle %d but next add got %d", h, got)
	}
}

// TestArenaGrowthMidChurn exhausts the free list while entry pointers are
// live in neither heap nor index, forcing arena growth (slice
// reallocation) between adds, then verifies all handles still resolve to
// the right rules — the property that makes handles, not pointers, the
// durable reference.
func TestArenaGrowthMidChurn(t *testing.T) {
	p := TestSwitch(64, PolicyLRU)
	p.SoftwareCapacity = 1024
	s := New(p)
	rng := rand.New(rand.NewSource(7))
	live := map[uint32]int32{}
	nextID := uint32(0)
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			id := nextID
			nextID++
			if addFlowErr(s, id, 100) != nil {
				continue
			}
			live[id] = trackedRule(s, id).Ext
		} else {
			var id uint32
			for id = range live {
				break
			}
			if err := s.FlowMod(&openflow.FlowMod{
				Command: openflow.FlowDeleteStrict, Match: flowtable.ExactProbeMatch(id), Priority: 100,
			}); err != nil {
				t.Fatal(err)
			}
			if s.entryAt(live[id]) != nil {
				t.Fatalf("deleted flow %d handle still resolves", id)
			}
			delete(live, id)
		}
	}
	if len(s.entries) <= 1+ruleSlabSize {
		t.Fatalf("arena never grew past its first slab (%d slots); churn too small", len(s.entries))
	}
	for id, h := range live {
		e := s.entryAt(h)
		if e == nil {
			t.Fatalf("live flow %d lost its arena record", id)
		}
		if e.rule.Match != flowtable.ExactProbeMatch(id) {
			t.Fatalf("handle %d resolves to the wrong rule", h)
		}
	}
	if got, want := s.arenaLive(), len(live); got != want {
		t.Fatalf("arenaLive = %d, want %d", got, want)
	}
}

// TestResetReusesArena is the pooling contract for Reset(): the entry
// arena's backing array, the rule slabs, and the per-slot kernel-key
// slices must all survive a Reset and be reused by the next generation of
// rules — a fleet resetting switches between inference rounds must not
// leak one arena per round.
func TestResetReusesArena(t *testing.T) {
	s := New(OVS())
	const n = 40
	for id := uint32(0); id < n; id++ {
		addFlow(t, s, id, 100)
	}
	// Populate a kernel entry so one arena slot owns a kernel-key slice.
	sendProbe(t, s, 3)
	var kkHandle int32
	var kkCap int
	for h := int32(1); int(h) < len(s.entries); h++ {
		if e := s.entryAt(h); e != nil && cap(e.kernelKeys) > 0 {
			kkHandle, kkCap = h, cap(e.kernelKeys)
			break
		}
	}
	if kkHandle == 0 {
		t.Fatal("no arena slot acquired a kernel-key slice")
	}

	entryCap := cap(s.entries)
	entryBase := &s.entries[0]
	slabBase := &s.liveSlabs[0][0]

	s.Reset()

	if tcam, kern, sw := s.RuleCount(); tcam != 0 || kern != 0 || sw != 0 {
		t.Fatalf("rules survived Reset: %d/%d/%d", tcam, kern, sw)
	}
	for id := uint32(0); id < n; id++ {
		addFlow(t, s, id, 100)
	}
	if &s.entries[0] != entryBase || cap(s.entries) != entryCap {
		t.Fatal("Reset reallocated the entry arena instead of reusing it")
	}
	if &s.liveSlabs[0][0] != slabBase {
		t.Fatal("Reset did not recycle the rule slab through the pool")
	}
	if got := cap(s.entries[kkHandle].kernelKeys); got != kkCap {
		t.Fatalf("kernel-key slice capacity not retained across Reset: %d, want %d", got, kkCap)
	}
	// Handles are handed back in ascending order after Reset, keeping
	// replayed experiments deterministic.
	prev := int32(0)
	for id := uint32(0); id < n; id++ {
		h := trackedRule(s, id).Ext
		if h <= prev {
			t.Fatalf("post-Reset handles not ascending: flow %d got %d after %d", id, h, prev)
		}
		prev = h
	}
}

// collidingKeys brute-forces n distinct nonzero keys whose hashed home
// slot is exactly home under the given table mask.
func collidingKeys(mask uint64, home uint64, n int) []uint64 {
	keys := make([]uint64, 0, n)
	for k := uint64(1); len(keys) < n; k++ {
		if hashKey(k)&mask == home {
			keys = append(keys, k)
		}
	}
	return keys
}

// checkExact verifies that every key in want resolves to its handle and
// that every key in gone resolves to 0.
func checkExact(t *testing.T, x *exactIndex, want map[uint64]int32, gone []uint64) {
	t.Helper()
	for k, h := range want {
		if got := x.get(k); got != h {
			t.Fatalf("get(%#x) = %d, want %d", k, got, h)
		}
	}
	for _, k := range gone {
		if got := x.get(k); got != 0 {
			t.Fatalf("get(%#x) = %d after delete, want 0", k, got)
		}
	}
}

// TestExactIndexDeletionClustering drives the open-addressing table's
// backward-shift deletion through its adversarial shapes: long runs of
// same-home keys deleted front-first, back-first, and in random order;
// interleaved chains from adjacent home slots; and a chain that wraps the
// table boundary. After every single delete, every surviving key must
// still resolve — the tombstone-free invariant.
func TestExactIndexDeletionClustering(t *testing.T) {
	newTable := func() (*exactIndex, uint64) {
		x := &exactIndex{}
		x.init(40) // capacity 64: holds 48 keys before growth
		return x, uint64(len(x.slots) - 1)
	}

	deleteOrders := []struct {
		name  string
		order func(n int, rng *rand.Rand) []int
	}{
		{"front-first", func(n int, _ *rand.Rand) []int {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			return idx
		}},
		{"back-first", func(n int, _ *rand.Rand) []int {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = n - 1 - i
			}
			return idx
		}},
		{"random", func(n int, rng *rand.Rand) []int { return rng.Perm(n) }},
	}

	shapes := []struct {
		name string
		keys func(mask uint64) []uint64
	}{
		{"one-home", func(mask uint64) []uint64 {
			return collidingKeys(mask, 5, 20)
		}},
		{"interleaved-homes", func(mask uint64) []uint64 {
			a := collidingKeys(mask, 9, 8)
			b := collidingKeys(mask, 10, 8)
			c := collidingKeys(mask, 11, 8)
			var keys []uint64
			for i := 0; i < 8; i++ {
				keys = append(keys, a[i], b[i], c[i])
			}
			return keys
		}},
		{"wrapping", func(mask uint64) []uint64 {
			// Home at the last slot: the probe chain wraps through 0.
			return collidingKeys(mask, mask, 16)
		}},
	}

	for _, shape := range shapes {
		for _, ord := range deleteOrders {
			t.Run(shape.name+"/"+ord.name, func(t *testing.T) {
				x, mask := newTable()
				rng := rand.New(rand.NewSource(11))
				keys := shape.keys(mask)
				want := map[uint64]int32{}
				for i, k := range keys {
					h := int32(i + 1)
					x.put(k, h)
					want[k] = h
				}
				checkExact(t, x, want, nil)
				var gone []uint64
				for _, i := range ord.order(len(keys), rng) {
					x.del(keys[i])
					delete(want, keys[i])
					gone = append(gone, keys[i])
					checkExact(t, x, want, gone)
				}
				if x.used != 0 {
					t.Fatalf("used = %d after deleting everything", x.used)
				}
			})
		}
	}
}

// TestExactIndexChurnAndGrow interleaves colliding inserts, deletes, and
// re-inserts past the growth threshold, checking that growth rehashes
// chains correctly and that deletion never strands a key.
func TestExactIndexChurnAndGrow(t *testing.T) {
	x := &exactIndex{}
	x.init(0) // start at minimum capacity so growth happens mid-churn
	startCap := len(x.slots)
	rng := rand.New(rand.NewSource(23))
	want := map[uint64]int32{}
	var pool []uint64
	next := int32(1)
	for step := 0; step < 3000; step++ {
		if rng.Intn(3) > 0 || len(pool) == 0 {
			k := uint64(rng.Int63())&0xffff + 1 // small space: heavy collisions
			if _, dup := want[k]; dup {
				x.set(k, next)
			} else {
				x.put(k, next)
				pool = append(pool, k)
			}
			want[k] = next
			next++
		} else {
			i := rng.Intn(len(pool))
			k := pool[i]
			pool = append(pool[:i], pool[i+1:]...)
			x.del(k)
			delete(want, k)
		}
	}
	if len(x.slots) <= startCap {
		t.Fatalf("table never grew (cap %d); churn too small", len(x.slots))
	}
	if x.used != len(want) {
		t.Fatalf("used = %d, want %d", x.used, len(want))
	}
	checkExact(t, x, want, nil)
}

// TestExactIndexZeroKey pins down the zero-key corner: emptiness is
// signalled by slots[i]==0 (the nil handle), not keys[i]==0, so the
// all-zero address pair is a perfectly valid key.
func TestExactIndexZeroKey(t *testing.T) {
	x := &exactIndex{}
	x.init(0)
	x.put(0, 7)
	if got := x.get(0); got != 7 {
		t.Fatalf("get(0) = %d, want 7", got)
	}
	x.set(0, 9)
	if got := x.get(0); got != 9 {
		t.Fatalf("get(0) = %d after set, want 9", got)
	}
	x.del(0)
	if got := x.get(0); got != 0 {
		t.Fatalf("get(0) = %d after delete, want 0", got)
	}
	x.del(0) // deleting an absent key is a no-op
	if x.used != 0 {
		t.Fatalf("used = %d, want 0", x.used)
	}
}
