package switchsim

// Micro-benchmarks of the emulator itself: the wall-clock cost of the
// framework (not the simulated latencies, which accrue on virtual clocks).
// These bound how fast experiments and inference sweeps can run.

import (
	"testing"

	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
)

func benchFlowMod(b *testing.B, prof Profile) {
	b.Helper()
	s := New(prof)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm := &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    flowtable.ExactProbeMatch(uint32(i)),
			Priority: 100,
			Actions:  flowtable.Output(1),
		}
		if err := s.FlowMod(fm); err != nil {
			// Table full: recycle by deleting everything and continuing.
			b.StopTimer()
			s.FlowMod(&openflow.FlowMod{Command: openflow.FlowDelete})
			b.StartTimer()
		}
	}
}

func BenchmarkFlowModAddOVS(b *testing.B)     { benchFlowMod(b, OVS()) }
func BenchmarkFlowModAddSwitch1(b *testing.B) { benchFlowMod(b, Switch1()) }
func BenchmarkFlowModAddSwitch2(b *testing.B) { benchFlowMod(b, Switch2()) }

func BenchmarkPipelineFastPath(b *testing.B) {
	s := New(Switch2())
	raw, err := packet.BuildProbe(packet.ProbeSpec{FlowID: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.FlowMod(&openflow.FlowMod{
		Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(1),
		Priority: 100, Actions: flowtable.Output(1),
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendPacket(raw, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineFullTable(b *testing.B) {
	// Fast-path lookups against a full 2560-entry TCAM: the exact-IP index
	// keeps this O(1).
	s := New(Switch2())
	for id := uint32(0); id < 2560; id++ {
		if err := s.FlowMod(&openflow.FlowMod{
			Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(id),
			Priority: 100, Actions: flowtable.Output(1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 2000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendPacket(raw, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// classifyExactSwitch builds a full 2560-entry TCAM-only switch and a
// pre-decoded probe frame that hits one of its residents — the isolated
// exact-match lookup hot path (open-addressing probe + arena record read).
func classifyExactSwitch(tb testing.TB) (*Switch, *packet.Frame, int) {
	tb.Helper()
	s := New(Switch2())
	for id := uint32(0); id < 2560; id++ {
		if err := s.FlowMod(&openflow.FlowMod{
			Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(id),
			Priority: 100, Actions: flowtable.Output(1),
		}); err != nil {
			tb.Fatal(err)
		}
	}
	raw, err := packet.BuildProbe(packet.ProbeSpec{FlowID: 1234})
	if err != nil {
		tb.Fatal(err)
	}
	f := new(packet.Frame)
	if err := packet.DecodeInto(f, raw); err != nil {
		tb.Fatal(err)
	}
	return s, f, len(raw)
}

// BenchmarkClassifyExact isolates the probe-hit lookup path: frame key →
// open-addressing index → flat arena entry → TCAM-hit accounting. This is
// the per-probe inner loop of every inference sweep.
func BenchmarkClassifyExact(b *testing.B) {
	s, f, size := classifyExactSwitch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendFrameN(f, 1, size, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestClassifyExactAllocFree gates the lookup path at zero allocations per
// probe, the same way the telemetry hot path is gated: a regression that
// boxes, grows, or rehashes on a plain probe hit fails the suite, not just
// the benchmark trendline.
func TestClassifyExactAllocFree(t *testing.T) {
	s, f, size := classifyExactSwitch(t)
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := s.SendFrameN(f, 1, size, 1); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("classifyExact probe hit allocates %v times per packet, want 0", avg)
	}
}

// BenchmarkDemoteChurn drives an LRU demote storm: with 192 flows rotating
// through a 64-slot TCAM, every packet touches the globally least-recent
// flow, which the policy then promotes — demoting the TCAM's LRU resident.
// Each iteration is a full promote+demote pair: four heap membership moves
// plus two table moves, the churn pattern whose GC write barriers dominated
// the old pointer-heap profiles.
func BenchmarkDemoteChurn(b *testing.B) {
	p := TestSwitch(64, PolicyLRU)
	p.SoftwareCapacity = 256
	s := New(p)
	const flows = 192
	type churnFrame struct {
		f    packet.Frame
		size int
	}
	frames := make([]churnFrame, flows)
	for id := uint32(0); id < flows; id++ {
		if err := s.FlowMod(&openflow.FlowMod{
			Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(id),
			Priority: 100, Actions: flowtable.Output(1),
		}); err != nil {
			b.Fatal(err)
		}
		raw, err := packet.BuildProbe(packet.ProbeSpec{FlowID: id})
		if err != nil {
			b.Fatal(err)
		}
		if err := packet.DecodeInto(&frames[id].f, raw); err != nil {
			b.Fatal(err)
		}
		frames[id].size = len(raw)
	}
	// One warm rotation brings every slice to steady-state capacity.
	for i := range frames {
		if _, err := s.SendFrameN(&frames[i].f, 1, frames[i].size, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf := &frames[i%flows]
		if _, err := s.SendFrameN(&cf.f, 1, cf.size, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroflowKernelHit(b *testing.B) {
	s := New(OVS())
	if err := s.FlowMod(&openflow.FlowMod{
		Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(1),
		Priority: 100, Actions: flowtable.Output(1),
	}); err != nil {
		b.Fatal(err)
	}
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 1})
	s.SendPacket(raw, 1) // warm the kernel entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendPacket(raw, 1); err != nil {
			b.Fatal(err)
		}
	}
}
