package switchsim

// Micro-benchmarks of the emulator itself: the wall-clock cost of the
// framework (not the simulated latencies, which accrue on virtual clocks).
// These bound how fast experiments and inference sweeps can run.

import (
	"testing"

	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
)

func benchFlowMod(b *testing.B, prof Profile) {
	b.Helper()
	s := New(prof)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm := &openflow.FlowMod{
			Command:  openflow.FlowAdd,
			Match:    flowtable.ExactProbeMatch(uint32(i)),
			Priority: 100,
			Actions:  flowtable.Output(1),
		}
		if err := s.FlowMod(fm); err != nil {
			// Table full: recycle by deleting everything and continuing.
			b.StopTimer()
			s.FlowMod(&openflow.FlowMod{Command: openflow.FlowDelete})
			b.StartTimer()
		}
	}
}

func BenchmarkFlowModAddOVS(b *testing.B)     { benchFlowMod(b, OVS()) }
func BenchmarkFlowModAddSwitch1(b *testing.B) { benchFlowMod(b, Switch1()) }
func BenchmarkFlowModAddSwitch2(b *testing.B) { benchFlowMod(b, Switch2()) }

func BenchmarkPipelineFastPath(b *testing.B) {
	s := New(Switch2())
	raw, err := packet.BuildProbe(packet.ProbeSpec{FlowID: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.FlowMod(&openflow.FlowMod{
		Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(1),
		Priority: 100, Actions: flowtable.Output(1),
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendPacket(raw, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineFullTable(b *testing.B) {
	// Fast-path lookups against a full 2560-entry TCAM: the exact-IP index
	// keeps this O(1).
	s := New(Switch2())
	for id := uint32(0); id < 2560; id++ {
		if err := s.FlowMod(&openflow.FlowMod{
			Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(id),
			Priority: 100, Actions: flowtable.Output(1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 2000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendPacket(raw, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroflowKernelHit(b *testing.B) {
	s := New(OVS())
	if err := s.FlowMod(&openflow.FlowMod{
		Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(1),
		Priority: 100, Actions: flowtable.Output(1),
	}); err != nil {
		b.Fatal(err)
	}
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 1})
	s.SendPacket(raw, 1) // warm the kernel entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendPacket(raw, 1); err != nil {
			b.Fatal(err)
		}
	}
}
