package switchsim

import (
	"tango/internal/flowtable"
	"tango/internal/openflow"
)

// Handle processes one OpenFlow message the way the emulated switch's agent
// would, returning any reply messages. The TCP daemon (internal/ofconn)
// feeds its connection through this; in-process callers may use the typed
// methods directly.
//
// PacketOut frames are run through the forwarding pipeline. Frames that are
// forwarded out a port are reflected back to the controller as a PacketIn
// with reason ACTION — emulating the probing measurement host that Tango
// attaches behind the switch — so a controller can measure data-path RTT
// entirely over the OpenFlow channel. Punted frames come back with reason
// NO_MATCH.
func (s *Switch) Handle(msg openflow.Message) []openflow.Message {
	s.ExpireNow() // any agent activity sweeps due timeouts
	replies := s.handle(msg)
	// Pending async notifications (FLOW_REMOVED, PORT_STATUS) ride ahead of
	// the reply, which is how a single-threaded agent flushes its queue.
	removed := s.TakeFlowRemoved()
	ports := s.TakePortStatus()
	if len(removed) == 0 && len(ports) == 0 {
		return replies
	}
	out := make([]openflow.Message, 0, len(removed)+len(ports)+len(replies))
	for _, fr := range removed {
		out = append(out, fr)
	}
	for _, ps := range ports {
		out = append(out, ps)
	}
	return append(out, replies...)
}

func (s *Switch) handle(msg openflow.Message) []openflow.Message {
	switch m := msg.(type) {
	case *openflow.Hello:
		return []openflow.Message{&openflow.Hello{Header: openflow.Header{Xid: m.Xid}}}

	case *openflow.EchoRequest:
		return []openflow.Message{&openflow.EchoReply{Header: openflow.Header{Xid: m.Xid}, Data: m.Data}}

	case *openflow.FeaturesRequest:
		return []openflow.Message{s.featuresReply(m.Xid)}

	case *openflow.FlowMod:
		if err := s.FlowMod(m); err != nil {
			return []openflow.Message{&openflow.Error{
				Header:  openflow.Header{Xid: m.Xid},
				ErrType: openflow.ErrTypeFlowModFailed,
				Code:    openflow.ErrCodeAllTablesFull,
			}}
		}
		return nil

	case *openflow.BarrierRequest:
		// The emulator applies operations synchronously, so by the time the
		// barrier is read every preceding op has completed.
		return []openflow.Message{&openflow.BarrierReply{Header: openflow.Header{Xid: m.Xid}}}

	case *openflow.PacketOut:
		res, err := s.SendPacket(m.Data, m.InPort)
		if err != nil {
			return []openflow.Message{&openflow.Error{
				Header:  openflow.Header{Xid: m.Xid},
				ErrType: openflow.ErrTypeBadRequest,
			}}
		}
		reason := openflow.ReasonAction
		if res.Path == PathControl {
			reason = openflow.ReasonNoMatch
		}
		return []openflow.Message{&openflow.PacketIn{
			Header:   openflow.Header{Xid: m.Xid},
			BufferID: 0xffffffff,
			TotalLen: uint16(len(m.Data)),
			InPort:   m.InPort,
			Reason:   reason,
			Data:     m.Data,
		}}

	case *openflow.StatsRequest:
		return []openflow.Message{s.statsReply(m)}

	case *openflow.GetConfigRequest:
		s.mu.Lock()
		cfg := s.config
		s.mu.Unlock()
		cfg.SetXID(m.Xid)
		return []openflow.Message{&cfg}

	case *openflow.SwitchConfig:
		if m.Set {
			s.mu.Lock()
			s.config.Flags = m.Flags
			s.config.MissSendLen = m.MissSendLen
			s.mu.Unlock()
		}
		return nil

	default:
		return nil
	}
}

func (s *Switch) featuresReply(xid uint32) *openflow.FeaturesReply {
	var ntables uint8
	switch s.profile.Kind {
	case ManageTCAMOnly:
		ntables = 1
	case ManagePolicyCache:
		ntables = 2
	case ManageMicroflow:
		ntables = 2
	}
	s.mu.Lock()
	ports := s.portDescs()
	s.mu.Unlock()
	return &openflow.FeaturesReply{
		Header:       openflow.Header{Xid: xid},
		DatapathID:   s.profile.DatapathID,
		NBuffers:     256,
		NTables:      ntables,
		Capabilities: 1, // OFPC_FLOW_STATS
		Actions:      1 << openflow.ActionTypeOutput,
		Ports:        ports,
	}
}

func (s *Switch) statsReply(req *openflow.StatsRequest) *openflow.StatsReply {
	rep := &openflow.StatsReply{
		Header:    openflow.Header{Xid: req.Xid},
		StatsType: req.StatsType,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.StatsType {
	case openflow.StatsTypeTable:
		if s.tcam != nil {
			max := uint32(s.tcam.Config().CapacityNarrow)
			rep.Tables = append(rep.Tables, openflow.TableStats{
				TableID: 0, Name: "tcam", MaxEntries: max,
				ActiveCount: uint32(s.tcam.Len()),
			})
		}
		if s.software != nil {
			rep.Tables = append(rep.Tables, openflow.TableStats{
				TableID: 1, Name: "software",
				MaxEntries:  uint32(s.profile.softwareCap()),
				ActiveCount: uint32(s.software.Len()),
			})
		}
		if s.kernel != nil {
			rep.Tables = append(rep.Tables, openflow.TableStats{
				TableID: 2, Name: "kernel",
				MaxEntries:  uint32(s.profile.softwareCap()),
				ActiveCount: uint32(len(s.kernel)),
			})
		}
	case openflow.StatsTypeAggregate:
		agg := &rep.Aggregate
		count := func(rules []*flowtable.Rule) {
			for _, r := range rules {
				if req.FlowMatch.Fields != 0 && !req.FlowMatch.Covers(&r.Match) {
					continue
				}
				agg.FlowCount++
				agg.PacketCount += r.Packets
				agg.ByteCount += r.Bytes
			}
		}
		if s.tcam != nil {
			count(s.tcam.Rules())
		}
		if s.software != nil {
			count(s.software.Rules())
		}
	case openflow.StatsTypeFlow:
		appendFlows := func(tableID uint8, rules []*flowtable.Rule) {
			for _, r := range rules {
				if !req.FlowMatch.Covers(&r.Match) && req.FlowMatch.Fields != 0 {
					continue
				}
				rep.Flows = append(rep.Flows, openflow.FlowStats{
					TableID:     tableID,
					Match:       r.Match,
					Priority:    r.Priority,
					Cookie:      r.Cookie,
					PacketCount: r.Packets,
					ByteCount:   r.Bytes,
					Actions:     r.Actions,
				})
			}
		}
		if s.tcam != nil {
			appendFlows(0, s.tcam.Rules())
		}
		if s.software != nil {
			appendFlows(1, s.software.Rules())
		}
	}
	return rep
}
