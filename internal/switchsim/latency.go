package switchsim

import (
	"math/rand"
	"time"
)

// LatencyDist is a truncated-normal latency distribution. Sample never
// returns less than 10% of the mean, which keeps pathological RNG draws from
// producing negative or implausibly small delays.
type LatencyDist struct {
	Mean   time.Duration
	StdDev time.Duration
}

// Sample draws one latency value using rng.
func (d LatencyDist) Sample(rng *rand.Rand) time.Duration {
	if d.Mean == 0 {
		return 0
	}
	v := float64(d.Mean) + rng.NormFloat64()*float64(d.StdDev)
	if min := float64(d.Mean) * 0.1; v < min {
		v = min
	}
	return time.Duration(v)
}

// ms builds a duration from milliseconds, keeping profile tables readable.
func ms(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }

// us builds a duration from microseconds.
func us(v float64) time.Duration { return time.Duration(v * float64(time.Microsecond)) }

// ControlCosts calibrates the control-channel cost model of a switch.
// The total cost charged for one flow-mod is:
//
//	add: AddBase + AddPriorityDelta (if the priority differs from the
//	     previous add's) + ShiftUnit × (#entries with strictly higher
//	     priority already in the TCAM)
//	mod: ModBase
//	del: DelBase
//
// The shift term models a bottom-packed TCAM: a new entry must sit below
// every higher-priority entry, so installing in descending priority order
// displaces the entire existing block each time while ascending order
// appends for free — reproducing the 12–46× spreads of Figure 3(c).
type ControlCosts struct {
	AddBase          time.Duration
	AddPriorityDelta time.Duration
	ShiftUnit        time.Duration
	ModBase          time.Duration
	DelBase          time.Duration
	// TypeSwitchDelta is charged whenever a flow-mod's operation class
	// (add / modify / delete) differs from the previous one's: agents
	// batch homogeneous operations and flush the pipeline on a class
	// change. This is the "batching effects that switches may have" the
	// paper exploits by grouping request types, and the entire source of
	// Tango's gain on priority-insensitive software switches (Figure 12).
	TypeSwitchDelta time.Duration
	// JitterFrac is the relative standard deviation applied to every op.
	JitterFrac float64
}

// opCost draws the randomized cost of an operation with deterministic mean m.
func (c ControlCosts) opCost(rng *rand.Rand, m time.Duration) time.Duration {
	if m == 0 {
		return 0
	}
	if c.JitterFrac == 0 {
		return m
	}
	v := float64(m) * (1 + rng.NormFloat64()*c.JitterFrac)
	if min := float64(m) * 0.2; v < min {
		v = min
	}
	return time.Duration(v)
}
