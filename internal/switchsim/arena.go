package switchsim

import "tango/internal/flowtable"

// arena.go is the flat entry arena: every tracked rule's bookkeeping record
// lives in one contiguous []entry slice, addressed by int32 handles instead
// of pointers. Handle 0 is reserved ("no entry"), so the zero value of
// flowtable.Rule.Ext means untracked. Freed slots go on a free list and are
// reused by later adds — across delete, timeout expiry, and Reset — so a
// long-running switch's arena footprint is bounded by its peak live rule
// count, not its cumulative churn.
//
// The payoff is cache locality on the two profiled hot paths:
//
//   - classifyExact resolves frame-key → handle through an open-addressing
//     table (keyindex.go) and lands directly on the flat record, replacing
//     the byKey map probe that dominated SizeInference profiles;
//   - the eviction/promotion heaps (evictindex.go) become []int32 of
//     handles, so sifts write only integers — no GC pointer-write barriers,
//     which dominated allocation-phase samples during demote churn.
//
// Entry pointers (*entry) are views into the arena: they stay valid between
// allocArena calls (the only operation that can grow the slice) and must
// never be retained across one. Everything that outlives an operation is a
// handle.

// ruleSlabSize is the rule-slab allocation unit. Rules need stable addresses
// (flow tables hold *Rule), so they are slab-allocated — slabs are never
// reallocated, only retired to a pool on Reset.
const ruleSlabSize = 256

// noHeap is the heapIdx sentinel for "in neither heap".
const noHeap int32 = -1

// entryAt resolves a handle to its arena record. Handle 0 and out-of-range
// or freed handles resolve to nil.
func (s *Switch) entryAt(h int32) *entry {
	if h <= 0 || int(h) >= len(s.entries) {
		return nil
	}
	if e := &s.entries[h]; e.self == h {
		return e
	}
	// Freed slots zero their self field, so a stale handle — one recorded
	// before the slot was returned to the free list — resolves to nil
	// instead of someone else's bookkeeping.
	return nil
}

// entryOf resolves a tracked rule to its arena record via the rule's Ext
// handle — the hot-path replacement for a map lookup or interface assertion.
func (s *Switch) entryOf(r *flowtable.Rule) *entry {
	return s.entryAt(r.Ext)
}

// allocEntry hands out a fresh arena record, reusing a free-listed slot when
// one exists and growing the arena otherwise. The returned pointer is valid
// until the next allocEntry call.
func (s *Switch) allocEntry() (int32, *entry) {
	if n := len(s.freeEnts); n > 0 {
		h := s.freeEnts[n-1]
		s.freeEnts = s.freeEnts[:n-1]
		e := &s.entries[h]
		kk := e.kernelKeys[:0] // slot reuse keeps the key slice's capacity
		*e = entry{kernelKeys: kk, self: h, heapIdx: noHeap, timedIdx: noTimed}
		return h, e
	}
	if s.entries == nil {
		// Slot 0 is the reserved nil handle.
		s.entries = make([]entry, 1, 1+ruleSlabSize)
	}
	h := int32(len(s.entries))
	s.entries = append(s.entries, entry{self: h, heapIdx: noHeap, timedIdx: noTimed})
	return h, &s.entries[h]
}

// freeEntry returns e's slot to the free list. The slot's self field is
// zeroed so stale handles fail entryAt's identity check; the kernel-key
// slice keeps its capacity for the slot's next tenant. Timed entries
// swap-remove themselves from the expiry list first, keeping the invariant
// that timedEnts holds only live handles.
func (s *Switch) freeEntry(e *entry) {
	s.untimeEntry(e)
	h := e.self
	kk := e.kernelKeys[:0]
	*e = entry{kernelKeys: kk}
	s.freeEnts = append(s.freeEnts, h)
}

// newRule hands out a zeroed rule: from the rule free list when delete or
// expiry recycled one, from the current slab otherwise. Slabs drawn from the
// reset pool are reused in place.
func (s *Switch) newRule() *flowtable.Rule {
	if n := len(s.freeRules); n > 0 {
		r := s.freeRules[n-1]
		s.freeRules = s.freeRules[:n-1]
		*r = flowtable.Rule{}
		return r
	}
	if s.ruleUsed == len(s.ruleChunk) {
		if n := len(s.slabPool); n > 0 {
			s.ruleChunk = s.slabPool[n-1]
			s.slabPool = s.slabPool[:n-1]
		} else {
			s.ruleChunk = make([]flowtable.Rule, ruleSlabSize)
		}
		s.liveSlabs = append(s.liveSlabs, s.ruleChunk)
		s.ruleUsed = 0
	}
	r := &s.ruleChunk[s.ruleUsed]
	s.ruleUsed++
	*r = flowtable.Rule{}
	return r
}

// freeRule recycles a removed rule's slab slot for the next add.
func (s *Switch) freeRule(r *flowtable.Rule) {
	s.freeRules = append(s.freeRules, r)
}

// resetArena returns every arena slot to the free list and every rule slab
// to the reset pool, keeping all capacity — a long-running fleet that resets
// its switches between inference rounds reuses one arena instead of leaking
// one per reset. Free-list order is rebuilt descending so post-reset adds
// reuse handles in ascending order, keeping replays deterministic.
func (s *Switch) resetArena() {
	s.timedEnts = s.timedEnts[:0]
	s.freeEnts = s.freeEnts[:0]
	for i := len(s.entries) - 1; i >= 1; i-- {
		e := &s.entries[i]
		kk := e.kernelKeys[:0]
		*e = entry{kernelKeys: kk}
		s.freeEnts = append(s.freeEnts, int32(i))
	}
	s.freeRules = s.freeRules[:0]
	s.slabPool = append(s.slabPool, s.liveSlabs...)
	s.liveSlabs = s.liveSlabs[:0]
	s.ruleChunk = nil
	s.ruleUsed = 0
}

// arenaLive counts live (allocated) arena records; tests use it to assert
// free-list reuse.
func (s *Switch) arenaLive() int {
	n := len(s.entries)
	if n > 0 {
		n--
	}
	return n - len(s.freeEnts)
}
