package switchsim

// keyindex.go is the switch's exact-match rule index: an open-addressing
// hash table mapping packed-match-words (flowtable.ExactKey — both IPv4
// endpoints packed into one uint64) to arena handles. It replaces the
// byKey map[uint64]bucket that dominated classifyExact profiles
// (runtime.mapaccess1_fast64): the probe here is a handful of inlined
// integer operations over two flat slices, with no hash-seed indirection,
// no bucket pointer chase, and no interface boxing.
//
// Layout and invariants:
//
//   - power-of-two capacity, linear probing;
//   - slots[i] == 0 means empty (0 is the reserved nil handle), so key 0 is
//     representable and needs no special casing;
//   - deletion is tombstone-free: the hole is healed by backward-shifting
//     the probe chain (the classic Robin-Hood deletion), so lookup cost
//     never degrades with churn the way tombstone schemes do;
//   - several rules sharing one key (duplicate-add phantoms) chain through
//     the arena records' nextKey handles; the table stores only the head.
//
// The table grows at 3/4 load. With the default pre-sizing (the switch's
// whole table hierarchy) growth never happens mid-experiment.

// exactIndex is the open-addressing key → handle table.
type exactIndex struct {
	keys  []uint64
	slots []int32
	used  int
}

// hashKey mixes the packed match word. Probe workloads use adjacent IPv4
// addresses, so the low bits of raw keys collide catastrophically under
// masking; the murmur3 finalizer spreads every input bit across the word.
func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// init sizes the table for about n resident keys, rounding capacity to the
// next power of two that keeps load under 3/4.
func (x *exactIndex) init(n int) {
	capacity := 8
	for capacity*3 < n*4 {
		capacity *= 2
	}
	x.keys = make([]uint64, capacity)
	x.slots = make([]int32, capacity)
	x.used = 0
}

// reset empties the table in place, keeping capacity.
func (x *exactIndex) reset() {
	for i := range x.slots {
		x.slots[i] = 0
		x.keys[i] = 0
	}
	x.used = 0
}

// get returns the head handle for key k, or 0 when absent.
func (x *exactIndex) get(k uint64) int32 {
	if len(x.slots) == 0 {
		return 0
	}
	mask := uint64(len(x.slots) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		h := x.slots[i]
		if h == 0 {
			return 0
		}
		if x.keys[i] == k {
			return h
		}
	}
}

// put inserts key k with head handle h. The key must be absent; callers
// update existing keys with set.
func (x *exactIndex) put(k uint64, h int32) {
	if len(x.slots) == 0 {
		x.init(0)
	} else if (x.used+1)*4 > len(x.slots)*3 {
		x.grow()
	}
	mask := uint64(len(x.slots) - 1)
	i := hashKey(k) & mask
	for x.slots[i] != 0 {
		i = (i + 1) & mask
	}
	x.keys[i], x.slots[i] = k, h
	x.used++
}

// set replaces the head handle of a resident key.
func (x *exactIndex) set(k uint64, h int32) {
	mask := uint64(len(x.slots) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if x.slots[i] == 0 {
			return // absent; nothing to update
		}
		if x.keys[i] == k {
			x.slots[i] = h
			return
		}
	}
}

// del removes key k, healing the probe chain by backward shift: elements
// displaced past the hole move back into it until a slot that hashes inside
// the remaining gap (or an empty slot) terminates the chain. No tombstones
// are left behind, so heavy same-bucket churn cannot degrade later lookups.
func (x *exactIndex) del(k uint64) {
	if len(x.slots) == 0 {
		return
	}
	mask := uint64(len(x.slots) - 1)
	i := hashKey(k) & mask
	for {
		if x.slots[i] == 0 {
			return // absent
		}
		if x.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	x.used--
	for {
		x.keys[i], x.slots[i] = 0, 0
		j := i
		for {
			j = (j + 1) & mask
			if x.slots[j] == 0 {
				return
			}
			home := hashKey(x.keys[j]) & mask
			// Move j's element into the hole when its probe path crosses
			// the hole — that is, when its home slot does not sit strictly
			// inside the (i, j] cyclic interval.
			if ((j - home) & mask) >= ((j - i) & mask) {
				x.keys[i], x.slots[i] = x.keys[j], x.slots[j]
				i = j
				break
			}
		}
	}
}

// grow doubles capacity and rehashes every resident key.
func (x *exactIndex) grow() {
	oldKeys, oldSlots := x.keys, x.slots
	capacity := len(x.slots) * 2
	if capacity == 0 {
		capacity = 8
	}
	x.keys = make([]uint64, capacity)
	x.slots = make([]int32, capacity)
	mask := uint64(capacity - 1)
	for i, h := range oldSlots {
		if h == 0 {
			continue
		}
		k := oldKeys[i]
		j := hashKey(k) & mask
		for x.slots[j] != 0 {
			j = (j + 1) & mask
		}
		x.keys[j], x.slots[j] = k, h
	}
}
