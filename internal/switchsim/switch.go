package switchsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
	"tango/internal/simclock"
	"tango/internal/telemetry"
)

// PathKind identifies the forwarding tier a frame traversed.
type PathKind int

// Forwarding tiers, ordered fastest first.
const (
	// PathFast is TCAM / kernel fast-path forwarding.
	PathFast PathKind = iota
	// PathMid is the second TCAM bank of switches whose fast path splits
	// into two latency tiers (Figure 5).
	PathMid
	// PathSlow is software (user-space) forwarding.
	PathSlow
	// PathControl means the frame was punted to the controller.
	PathControl
)

// String implements fmt.Stringer.
func (p PathKind) String() string {
	switch p {
	case PathFast:
		return "fast"
	case PathMid:
		return "mid"
	case PathSlow:
		return "slow"
	default:
		return "control"
	}
}

// ErrTableFull is returned when a flow-mod cannot be installed anywhere.
// It corresponds to the OFPET_FLOW_MOD_FAILED / OFPFMFC_ALL_TABLES_FULL
// error on the wire.
var ErrTableFull = errors.New("switchsim: all tables full")

// ErrNotFound is returned for modifications/deletions of absent rules.
var ErrNotFound = errors.New("switchsim: no such rule")

// entry is the emulator's bookkeeping for one installed rule: a flat record
// in the switch's entry arena (arena.go), addressed by its int32 handle.
// Attribute sequence numbers are global and survive moves between tables,
// unlike the per-table stamps flowtable keeps. The hot fields the eviction
// heaps and the exact classifier read are all scalars, so touching them
// writes no GC-visible pointers.
type entry struct {
	rule *flowtable.Rule
	// kernelKeys records the microflow-cache keys derived from this rule, so
	// invalidation walks the owner's few keys instead of the whole kernel
	// table. Keys whose cache slot was since evicted or re-owned are skipped
	// by an ownership check, so stale keys are harmless.
	kernelKeys []packet.FiveTuple
	insertSeq  uint64
	useSeq     uint64
	traffic    uint64
	// self is this record's own handle; freed slots zero it, which is what
	// lets entryAt detect stale handles after free-list reuse.
	self int32
	// heapIdx is the entry's position in the eviction/promotion index
	// (evictindex.go); -1 while the entry is in neither heap.
	heapIdx int32
	// nextKey chains the tracked entries sharing one exact-match key
	// (duplicate-add phantoms); 0 terminates. The exact index (keyindex.go)
	// stores only the head handle.
	nextKey int32
	// timedIdx is the entry's position in the switch's timed-rule list
	// (expiry.go); -1 while the rule carries no timeout. Expiry sweeps walk
	// only that list, so million-flow tables whose residents never expire
	// pay nothing for a handful of churning timed rules.
	timedIdx int32
	inTCAM   bool
	// inSoft mirrors software-table residency the way inTCAM mirrors TCAM
	// residency; together they let the exact-match classifier skip the
	// per-tier table lookups.
	inSoft bool
}

// kernelEntry is one exact-match microflow cache entry (OVS kernel table),
// stored by value so the kernel map needs no per-entry allocation. owner is
// the installing rule's arena handle.
type kernelEntry struct {
	useSeq uint64
	owner  int32
}

// Result reports the outcome of injecting one data-plane frame.
type Result struct {
	// Path is the tier that forwarded (or punted) the frame.
	Path PathKind
	// RTT is the simulated round-trip time observed by the prober.
	RTT time.Duration
	// OutPort is the forwarding destination for PathFast/Mid/Slow when the
	// matched action was an output.
	OutPort uint16
	// Rule is the matched rule, nil on a total miss.
	Rule *flowtable.Rule
}

// Stats aggregates observable switch counters.
type Stats struct {
	FlowMods    uint64
	PacketsSeen uint64
	FastHits    uint64
	MidHits     uint64
	SlowHits    uint64
	ControlMiss uint64
	Evictions   uint64
	Promotions  uint64
	Expirations uint64
	Resets      uint64
}

// Switch is one emulated OpenFlow switch. All methods are safe for
// concurrent use; internally a single mutex serialises operations, which
// also matches the single-threaded agent loop of the modelled devices.
type Switch struct {
	mu      sync.Mutex
	profile Profile
	clock   simclock.Clock
	rng     *rand.Rand

	tcam     *flowtable.TCAM  // nil for ManageMicroflow
	software *flowtable.Table // nil for ManageTCAMOnly
	kernel   map[packet.FiveTuple]kernelEntry

	events uint64

	// entries is the flat entry arena (arena.go): slot 0 is the reserved nil
	// handle, freeEnts the reusable-slot free list. exact maps every tracked
	// rule's packed exact-match word to its head handle and wildTracked
	// holds the non-indexable residue. Together they are the switch's record
	// of installed rules (including duplicate-add phantoms resident in no
	// table): flow-mod deletes resolve their victims from one key chain
	// instead of scanning all tracked rules, and expiry sweeps iterate both.
	entries     []entry
	freeEnts    []int32
	exact       exactIndex
	wildTracked []*flowtable.Rule

	// timedEnts lists the handles of entries whose rules carry idle/hard
	// timeouts, in schedule order; expiry sweeps iterate it instead of the
	// whole tracked-rule set. Entries unlink on free via their timedIdx
	// back-pointer (swap-remove), so the list only ever holds live handles.
	timedEnts []int32

	// Rule storage: rules need stable addresses (tables hold *Rule), so they
	// come from append-only slabs; removed rules recycle through freeRules,
	// and Reset retires whole slabs to slabPool for reuse.
	ruleChunk []flowtable.Rule
	ruleUsed  int
	liveSlabs [][]flowtable.Rule
	slabPool  [][]flowtable.Rule
	freeRules []*flowtable.Rule

	// evictIdx and promoteIdx are the policy-ordered indexes over TCAM and
	// software residents (evictindex.go); nil except for ManagePolicyCache.
	// dynPolicy records whether the cache policy reads attributes that
	// change on data-plane touches (use time, traffic), which is what makes
	// touch paths pay an O(log n) index fixup.
	evictIdx   *handleHeap
	promoteIdx *handleHeap
	dynPolicy  bool
	// better is the cache policy's comparator, compiled once per
	// (re)initialisation — hot paths call it instead of Policy.Better.
	better func(a, b *entry) bool
	// customState is the per-switch scoring state of a CustomPolicy, nil
	// for LEX policies. Custom policies run without the heaps above (their
	// scores shift for many entries at once), so every victim/refill choice
	// takes the naive scans through s.better.
	customState customState

	// detector, when attached via WithDetector, observes every data-plane
	// classification for the overflow-probing signature.
	detector *OverflowDetector

	// frame is the scratch decode target reused across SendPacketN calls so
	// the data-plane hot loop does not allocate per packet.
	frame packet.Frame

	// defaultRule is the pre-installed table-miss punt rule, when present.
	// Although it occupies a TCAM slot, it is logically the last resort of
	// the whole pipeline: a frame matching only the default rule must still
	// consult the software tables before being punted.
	defaultRule *flowtable.Rule

	lastAddPriority uint16
	haveLastAdd     bool
	lastOpClass     openflow.FlowModCommand
	haveLastOp      bool

	// nextExpiry is the earliest instant any rule with a timeout could
	// expire; zero when no such rule exists. removedQueue holds pending
	// FLOW_REMOVED notifications, portQueue pending PORT_STATUS ones.
	nextExpiry   time.Time
	removedQueue []*openflow.FlowRemoved
	portQueue    []*openflow.PortStatus
	portsDown    map[uint16]bool

	// config is the OFPT_SET_CONFIG state (miss_send_len etc.).
	config openflow.SwitchConfig

	stats Stats
	tel   switchTelemetry
}

// Option configures a Switch.
type Option func(*Switch)

// WithClock substitutes the clock (tests and the TCP daemon use this; the
// default is a fresh virtual clock).
func WithClock(c simclock.Clock) Option { return func(s *Switch) { s.clock = c } }

// WithSeed fixes the RNG seed for reproducible latency draws.
func WithSeed(seed int64) Option {
	return func(s *Switch) { s.rng = rand.New(rand.NewSource(seed)) }
}

// WithDefaultRoute pre-installs the priority-0 punt-to-controller rule that
// hardware switches install when they connect (it is why Figure 2(b) shows
// 2047 rather than 2048 fast-path flows).
func WithDefaultRoute() Option {
	return func(s *Switch) { s.installDefaultRoute() }
}

// New builds a switch from a profile.
func New(p Profile, opts ...Option) *Switch {
	s := &Switch{
		profile: p,
		clock:   simclock.NewVirtual(),
		rng:     rand.New(rand.NewSource(42)),
	}
	switch p.Kind {
	case ManageTCAMOnly:
		s.tcam = flowtable.NewTCAM(p.TCAM)
	case ManagePolicyCache:
		s.tcam = flowtable.NewTCAM(p.TCAM)
		s.software = &flowtable.Table{Capacity: p.softwareCap()}
	case ManageMicroflow:
		s.software = &flowtable.Table{Capacity: p.softwareCap()}
		s.kernel = make(map[packet.FiveTuple]kernelEntry)
	}
	s.exact.init(s.trackedHint())
	s.initIndexes()
	// Bind to the process-wide default telemetry (a no-op unless a command
	// installed one); WithTelemetry overrides it below.
	s.tel.init(telemetry.Default(), telemetry.DefaultTracer(), p.Name)
	for _, o := range opts {
		o(s)
	}
	return s
}

func (p Profile) softwareCap() int {
	if p.SoftwareCapacity > 0 {
		return p.SoftwareCapacity
	}
	return defaultSoftwareCapacity
}

func (s *Switch) installDefaultRoute() {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, e := s.allocEntry()
	r := s.newRule()
	r.Priority = 0
	r.Actions = []flowtable.Action{{Type: flowtable.ActionController}}
	e.rule, e.insertSeq = r, s.nextEvent()
	if s.tcam != nil {
		if _, err := s.tcam.Insert(r, s.clock.Now()); err == nil {
			e.inTCAM = true
			s.trackTCAM(e)
		}
	} else if s.software != nil {
		_, _ = s.software.Insert(r, s.clock.Now())
	}
	r.Ext = h
	s.trackRule(r)
	s.defaultRule = r
}

// trackedHint sizes the exact index for the full hierarchy up front: probing
// installs run straight to capacity, and incremental growth would double the
// rehash traffic. "Virtually unlimited" software tables are capped — they
// never actually fill.
func (s *Switch) trackedHint() int {
	hint := s.profile.TCAM.CapacityNarrow + s.profile.softwareCap()
	if hint > 2048 {
		hint = 2048
	}
	return hint
}

// trackRule registers an installed rule in the tracked-rule index. Rules
// sharing one exact key chain behind the index's head handle in insertion
// order.
func (s *Switch) trackRule(r *flowtable.Rule) {
	if k, ok := flowtable.ExactKey(&r.Match); ok {
		h := r.Ext
		head := s.exact.get(k)
		if head == 0 {
			s.exact.put(k, h)
			return
		}
		tail := &s.entries[head]
		for tail.nextKey != 0 {
			tail = &s.entries[tail.nextKey]
		}
		tail.nextKey = h
		return
	}
	s.wildTracked = append(s.wildTracked, r)
}

// untrackRule removes r from the tracked-rule index, unlinking it from its
// key chain (and updating or deleting the index head as needed).
func (s *Switch) untrackRule(r *flowtable.Rule) {
	if k, ok := flowtable.ExactKey(&r.Match); ok {
		h := r.Ext
		e := s.entryAt(h)
		if e == nil {
			return
		}
		head := s.exact.get(k)
		if head == h {
			if e.nextKey != 0 {
				s.exact.set(k, e.nextKey)
			} else {
				s.exact.del(k)
			}
			e.nextKey = 0
			return
		}
		for prev := head; prev != 0; {
			pe := &s.entries[prev]
			if pe.nextKey == h {
				pe.nextKey = e.nextKey
				e.nextKey = 0
				return
			}
			prev = pe.nextKey
		}
		return
	}
	for i, rr := range s.wildTracked {
		if rr == r {
			s.wildTracked = append(s.wildTracked[:i], s.wildTracked[i+1:]...)
			return
		}
	}
}

// forEachTracked visits every tracked rule. Visit order is deterministic
// (index slot order, then chain order, then the wild residue) but otherwise
// unspecified, as it was when tracking lived in a map.
func (s *Switch) forEachTracked(fn func(r *flowtable.Rule)) {
	for _, h := range s.exact.slots {
		for h != 0 {
			e := &s.entries[h]
			fn(e.rule)
			h = e.nextKey
		}
	}
	for _, r := range s.wildTracked {
		fn(r)
	}
}

// Reset returns the switch to its power-on state: every flow table and the
// microflow cache are cleared, pending notifications and the agent's
// batching context are dropped, and the pre-installed default route (when
// the switch was built with one) is reinstalled. The clock, port link
// states, and cumulative counters survive, as they do across a real agent
// restart. Fault injection uses this to model mid-probe switch resets.
func (s *Switch) Reset() {
	s.mu.Lock()
	hadDefault := s.defaultRule != nil
	switch s.profile.Kind {
	case ManageTCAMOnly:
		s.tcam = flowtable.NewTCAM(s.profile.TCAM)
	case ManagePolicyCache:
		s.tcam = flowtable.NewTCAM(s.profile.TCAM)
		s.software = &flowtable.Table{Capacity: s.profile.softwareCap()}
	case ManageMicroflow:
		s.software = &flowtable.Table{Capacity: s.profile.softwareCap()}
		for k := range s.kernel {
			delete(s.kernel, k)
		}
	}
	s.exact.reset()
	s.wildTracked = s.wildTracked[:0]
	s.resetArena()
	s.initIndexes()
	s.defaultRule = nil
	s.haveLastAdd, s.haveLastOp = false, false
	s.nextExpiry = time.Time{}
	s.removedQueue = nil
	s.portQueue = nil
	s.stats.Resets++
	s.tel.resets.Add(1)
	if s.tel.enabled() {
		s.updateOccupancy()
	}
	s.mu.Unlock()
	if hadDefault {
		s.installDefaultRoute()
	}
}

// Profile returns the switch's profile.
func (s *Switch) Profile() Profile { return s.profile }

// Clock returns the switch's clock.
func (s *Switch) Clock() simclock.Clock { return s.clock }

// Now returns the current simulated instant.
func (s *Switch) Now() time.Time { return s.clock.Now() }

// Stats returns a snapshot of the switch counters.
func (s *Switch) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Switch) nextEvent() uint64 {
	s.events++
	return s.events
}

// RuleCount returns (tcam, kernel, software) rule counts.
func (s *Switch) RuleCount() (tcam, kernel, software int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tcam != nil {
		tcam = s.tcam.Len()
	}
	if s.software != nil {
		software = s.software.Len()
	}
	return tcam, len(s.kernel), software
}

// FlowMod applies one flow-table operation, advancing the clock by the
// modelled control-channel cost. Errors mirror the OpenFlow errors a real
// switch would return.
func (s *Switch) FlowMod(fm *openflow.FlowMod) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	s.stats.FlowMods++
	s.tel.flowMods.Add(1)
	s.expireLocked(now)
	// Operation-class change flushes the agent's homogeneous batch.
	class := opClass(fm.Command)
	if s.haveLastOp && class != s.lastOpClass {
		s.clock.Sleep(s.profile.Costs.opCost(s.rng, s.profile.Costs.TypeSwitchDelta))
	}
	s.lastOpClass, s.haveLastOp = class, true
	var err error
	switch fm.Command {
	case openflow.FlowAdd:
		err = s.add(fm)
	case openflow.FlowModify, openflow.FlowModifyStrict:
		err = s.modify(fm)
	case openflow.FlowDelete, openflow.FlowDeleteStrict:
		err = s.delete(fm)
	default:
		err = fmt.Errorf("switchsim: unsupported flow-mod command %v", fm.Command)
	}
	s.noteFlowModDone(now, fm, err)
	return err
}

// opClass folds strict/non-strict command variants into add/mod/del.
func opClass(c openflow.FlowModCommand) openflow.FlowModCommand {
	switch c {
	case openflow.FlowModify, openflow.FlowModifyStrict:
		return openflow.FlowModify
	case openflow.FlowDelete, openflow.FlowDeleteStrict:
		return openflow.FlowDelete
	default:
		return openflow.FlowAdd
	}
}

// chargeAdd advances the clock by the cost of an add with the given number
// of displaced higher-priority TCAM entries.
func (s *Switch) chargeAdd(priority uint16, shifted int) {
	c := s.profile.Costs
	cost := c.AddBase + time.Duration(shifted)*c.ShiftUnit
	if s.haveLastAdd && priority != s.lastAddPriority {
		cost += c.AddPriorityDelta
	}
	s.haveLastAdd = true
	s.lastAddPriority = priority
	s.clock.Sleep(c.opCost(s.rng, cost))
}

func (s *Switch) add(fm *openflow.FlowMod) error {
	h, e := s.allocEntry()
	rule := s.newRule()
	rule.Match = fm.Match
	rule.Priority = fm.Priority
	rule.Actions = fm.Actions
	rule.Cookie = fm.Cookie
	rule.IdleTimeout = fm.IdleTimeout
	rule.HardTimeout = fm.HardTimeout
	rule.SendFlowRem = fm.Flags&openflow.FlagSendFlowRem != 0
	e.rule, e.insertSeq = rule, s.nextEvent()
	e.useSeq = e.insertSeq
	now := s.clock.Now()

	switch s.profile.Kind {
	case ManageTCAMOnly:
		shifted := s.tcam.CountHigher(fm.Priority)
		if _, err := s.tcam.Insert(rule, now); err != nil {
			// Rejections are fast: the agent fails before touching hardware.
			s.clock.Sleep(s.profile.Costs.opCost(s.rng, s.profile.Costs.AddBase))
			s.freeEntry(e)
			s.freeRule(rule)
			return ErrTableFull
		}
		s.chargeAdd(fm.Priority, shifted)
		e.inTCAM = true

	case ManagePolicyCache:
		if err := s.addPolicyCache(rule, e, now); err != nil {
			s.freeEntry(e)
			s.freeRule(rule)
			return err
		}

	case ManageMicroflow:
		if _, err := s.software.Insert(rule, now); err != nil {
			s.clock.Sleep(s.profile.Costs.opCost(s.rng, s.profile.Costs.AddBase))
			s.freeEntry(e)
			s.freeRule(rule)
			return ErrTableFull
		}
		s.clock.Sleep(s.profile.Costs.opCost(s.rng, s.profile.Costs.AddBase))
	}
	rule.Ext = h
	s.trackRule(rule)
	s.scheduleExpiry(rule, s.clock.Now())
	return nil
}

// addPolicyCache implements the Switch #1 style hierarchy: the rule lands in
// TCAM if it fits or if the cache policy prefers it over a current resident;
// otherwise it goes to the software table. Priority-shift costs are charged
// against the combined resident rule set: the agent keeps one sorted view
// of all rules (TCAM plus user-space virtual tables), so out-of-order
// insertion stays expensive even past the TCAM capacity — which is why the
// descending-priority curve of Figure 3(c) keeps its quadratic shape all
// the way to 5000 rules on a 2K TCAM.
func (s *Switch) addPolicyCache(rule *flowtable.Rule, e *entry, now time.Time) error {
	width := rule.Match.Width()
	eligible := s.tcamAdmits(width)
	shifted := s.tcam.CountHigher(rule.Priority) + s.software.CountHigher(rule.Priority)
	if eligible && s.tcam.Fits(width) {
		tcamLen := s.tcam.Len()
		if _, err := s.tcam.Insert(rule, now); err == nil {
			s.chargeAdd(rule.Priority, shifted)
			e.inTCAM = true
			// A duplicate (match, priority) add overwrites in place and
			// leaves the resident rule's entry as the index member.
			if s.tcam.Len() > tcamLen {
				s.trackTCAM(e)
			}
			return nil
		}
	}
	if eligible {
		// Cache full: does the policy prefer the new flow over the worst
		// resident? (The evicted element "may be the new element, in which
		// case the cache state does not change".)
		if victim := s.worstTCAMEntry(); victim != nil && s.better(e, victim) {
			if s.evictUntilFits(width, e) {
				tcamLen := s.tcam.Len()
				if _, err := s.tcam.Insert(rule, now); err == nil {
					s.chargeAdd(rule.Priority, shifted)
					e.inTCAM = true
					if s.tcam.Len() > tcamLen {
						s.trackTCAM(e)
					}
					return nil
				}
			}
		}
	}
	softLen := s.software.Len()
	if _, err := s.software.Insert(rule, now); err != nil {
		s.clock.Sleep(s.profile.Costs.opCost(s.rng, s.profile.Costs.AddBase))
		return ErrTableFull
	}
	s.chargeAdd(rule.Priority, shifted)
	if s.software.Len() > softLen {
		e.inSoft = true
		s.trackSoft(e)
	}
	return nil
}

// tcamAdmits reports whether the TCAM mode can host entries of width w.
func (s *Switch) tcamAdmits(w flowtable.Width) bool {
	if s.tcam == nil {
		return false
	}
	if s.tcam.Config().Mode == flowtable.ModeSingleWide && w == flowtable.WidthL2L3 {
		return false
	}
	return true
}

// worstTCAMEntry returns the policy's eviction candidate among TCAM
// residents — the root of the eviction index, in O(1) instead of the
// reference implementation's full scan (worstTCAMEntryNaive).
func (s *Switch) worstTCAMEntry() *entry {
	if s.evictIdx != nil {
		return s.evictIdx.peek(s.entries)
	}
	return s.worstTCAMEntryNaive()
}

// evictUntilFits evicts policy-worst TCAM entries (those worse than the
// contender) into the software table until width w fits. It returns false —
// undoing nothing, since partial eviction still leaves a valid state — when
// the remaining residents all order better than the contender.
func (s *Switch) evictUntilFits(w flowtable.Width, contender *entry) bool {
	for !s.tcam.Fits(w) {
		victim := s.worstTCAMEntry()
		if victim == nil || !s.better(contender, victim) {
			return false
		}
		if !s.demote(victim) {
			return false
		}
	}
	return true
}

// demote moves a TCAM resident into the software table. It fails without
// side effects when the software table cannot absorb the victim, which in
// turn makes the triggering add fail with a table-full error — matching
// real agents, which reject flow-mods rather than silently discard rules.
// The software admission check runs before the TCAM removal: Table.Insert
// restamps the rule's per-table sequence, so removing first keeps the TCAM's
// binary-searched removal working off a valid key.
func (s *Switch) demote(victim *entry) bool {
	if !s.software.CanInsert(victim.rule) {
		return false
	}
	if !s.tcam.Remove(victim.rule) {
		return false
	}
	s.untrack(victim)
	victim.inTCAM = false
	softLen := s.software.Len()
	if _, err := s.software.Insert(victim.rule, s.clock.Now()); err != nil {
		// Unreachable after CanInsert; restore the TCAM copy defensively.
		_, _ = s.tcam.Insert(victim.rule, s.clock.Now())
		victim.inTCAM = true
		s.trackTCAM(victim)
		return false
	}
	if s.software.Len() > softLen {
		victim.inSoft = true
		s.trackSoft(victim)
	}
	s.stats.Evictions++
	s.tel.evictions.Add(1)
	if s.evictIdx != nil {
		s.tel.hIdxDepth.Observe(float64(s.evictIdx.len()))
	}
	return true
}

// promote moves a software entry into TCAM, evicting as needed.
func (s *Switch) promote(e *entry) bool {
	w := e.rule.Match.Width()
	if !s.tcamAdmits(w) {
		return false
	}
	if !s.tcam.Fits(w) && !s.evictUntilFits(w, e) {
		return false
	}
	if !s.software.Remove(e.rule) {
		return false
	}
	e.inSoft = false
	s.untrack(e)
	tcamLen := s.tcam.Len()
	if _, err := s.tcam.Insert(e.rule, s.clock.Now()); err != nil {
		softLen := s.software.Len()
		_, _ = s.software.Insert(e.rule, s.clock.Now())
		if s.software.Len() > softLen {
			e.inSoft = true
			s.trackSoft(e)
		}
		return false
	}
	e.inTCAM = true
	if s.tcam.Len() > tcamLen {
		s.trackTCAM(e)
	}
	s.stats.Promotions++
	s.tel.promotions.Add(1)
	return true
}

// locate finds the live rule with the same match and priority, asking the
// tables' lookup indexes first. The tracked-rule fallback only matters for
// rules that are tracked but resident in no table (duplicate-add leftovers).
func (s *Switch) locate(m *flowtable.Match, priority uint16) *flowtable.Rule {
	if s.tcam != nil {
		if r := s.tcam.Find(m, priority); r != nil {
			return r
		}
	}
	if s.software != nil {
		if r := s.software.Find(m, priority); r != nil {
			return r
		}
	}
	if k, ok := flowtable.ExactKey(m); ok {
		for h := s.exact.get(k); h != 0; {
			e := &s.entries[h]
			if e.rule.Priority == priority && e.rule.Match.Same(m) {
				return e.rule
			}
			h = e.nextKey
		}
		return nil
	}
	for _, r := range s.wildTracked {
		if r.Priority == priority && r.Match.Same(m) {
			return r
		}
	}
	return nil
}

func (s *Switch) modify(fm *openflow.FlowMod) error {
	r := s.locate(&fm.Match, fm.Priority)
	if r == nil {
		// OpenFlow 1.0 MODIFY on a missing rule behaves like an add.
		return s.add(fm)
	}
	r.Actions = fm.Actions
	r.Cookie = fm.Cookie
	s.invalidateKernel(r)
	s.clock.Sleep(s.profile.Costs.opCost(s.rng, s.profile.Costs.ModBase))
	return nil
}

func (s *Switch) delete(fm *openflow.FlowMod) error {
	strict := fm.Command == openflow.FlowDeleteStrict
	var victims []*flowtable.Rule
	if k, ok := flowtable.ExactKey(&fm.Match); ok {
		// An exact (src/32, dst/32) delete match can only hit rules pinning
		// the same address pair — strict by definition, non-strict because
		// Covers requires the victim's prefixes to sit inside the /32s. So
		// the victims all chain behind one exact-index head (same-bucket
		// keys), which turns the dominant cost of bulk rule churn (a full
		// tracked-rule scan per delete) into a handful of comparisons.
		for h := s.exact.get(k); h != 0; {
			e := &s.entries[h]
			r := e.rule
			if strict {
				if r.Priority == fm.Priority && r.Match.Same(&fm.Match) {
					victims = append(victims, r)
				}
			} else if fm.Match.Covers(&r.Match) {
				victims = append(victims, r)
			}
			h = e.nextKey
		}
	} else if strict {
		for _, r := range s.wildTracked {
			if r.Priority == fm.Priority && r.Match.Same(&fm.Match) {
				victims = append(victims, r)
			}
		}
	} else {
		s.forEachTracked(func(r *flowtable.Rule) {
			if fm.Match.Covers(&r.Match) {
				victims = append(victims, r)
			}
		})
	}
	if len(victims) == 0 {
		// Deleting nothing is not an error in OpenFlow, but it still costs
		// a channel round trip.
		s.clock.Sleep(s.profile.Costs.opCost(s.rng, s.profile.Costs.DelBase))
		return nil
	}
	now := s.clock.Now()
	for _, r := range victims {
		s.noteRemoved(r, openflow.RemovedDelete, now)
		s.removeRule(r)
		s.clock.Sleep(s.profile.Costs.opCost(s.rng, s.profile.Costs.DelBase))
	}
	return nil
}

func (s *Switch) removeRule(r *flowtable.Rule) {
	e := s.entryOf(r)
	s.untrackRule(r)
	if e != nil {
		s.untrack(e)
		s.customRemove(e)
	}
	s.invalidateKernel(r)
	r.Ext = 0
	if r == s.defaultRule {
		// The rule's storage recycles below; a dangling default pointer
		// would alias whatever rule reuses the slot.
		s.defaultRule = nil
	}
	if e != nil && e.inTCAM {
		s.tcam.Remove(r)
		s.freeEntry(e)
		s.freeRule(r)
		// A freed TCAM slot is refilled by the best software resident —
		// Switch #1 "pushes the oldest software entry into TCAM whenever an
		// empty slot is available"; under other policies the policy-best
		// entry moves up.
		s.refillTCAM()
		return
	}
	if s.software != nil {
		s.software.Remove(r)
	}
	if e != nil {
		s.freeEntry(e)
	}
	s.freeRule(r)
}

// refillTCAM promotes policy-best software entries while TCAM space allows.
func (s *Switch) refillTCAM() {
	if s.software == nil || s.profile.Kind != ManagePolicyCache {
		return
	}
	for {
		best := s.bestSoftwareEntry()
		if best == nil || !s.tcam.Fits(best.rule.Match.Width()) {
			return
		}
		if !s.promote(best) {
			return
		}
	}
}

// bestSoftwareEntry returns the policy-best TCAM-eligible software entry —
// the root of the promotion index when one is maintained.
func (s *Switch) bestSoftwareEntry() *entry {
	if s.promoteIdx != nil {
		return s.promoteIdx.peek(s.entries)
	}
	return s.bestSoftwareEntryNaive()
}

// invalidateKernel removes microflow cache entries derived from rule r. The
// owner's recorded keys bound the walk; the ownership check skips keys whose
// slot was evicted and re-filled by another rule since.
func (s *Switch) invalidateKernel(r *flowtable.Rule) {
	if s.kernel == nil {
		return
	}
	if e := s.entryOf(r); e != nil {
		for _, ft := range e.kernelKeys {
			if ke, ok := s.kernel[ft]; ok && ke.owner == e.self {
				delete(s.kernel, ft)
			}
		}
		e.kernelKeys = e.kernelKeys[:0]
		return
	}
	for ft, ke := range s.kernel {
		if oe := s.entryAt(ke.owner); oe != nil && oe.rule == r {
			delete(s.kernel, ft)
		}
	}
}

// SendPacket injects a data-plane frame on inPort and returns the
// forwarding result with its simulated RTT. The clock advances by the RTT.
func (s *Switch) SendPacket(data []byte, inPort uint16) (Result, error) {
	return s.SendPacketN(data, inPort, 1)
}

// SendPacketN injects the same frame n times back to back, which traffic-
// initialization patterns use to drive a flow's packet counter to a target
// value. The pipeline decision (and the returned Result) is computed once
// for the burst; statistics advance by n and the clock by n RTT samples'
// worth of simulated time. A burst is equivalent to n sequential packets
// for every cache policy in the model: the policies read only the final
// attribute values, and mid-burst promotions could only move the flow to a
// faster tier earlier.
func (s *Switch) SendPacketN(data []byte, inPort uint16, n int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("switchsim: burst size %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	s.expireLocked(now)
	if err := packet.DecodeInto(&s.frame, data); err != nil {
		return Result{}, err
	}
	return s.sendLocked(&s.frame, inPort, len(data), n, now), nil
}

// SendFrameN is SendPacketN for a frame the caller already decoded (size is
// the encoded length, which drives byte counters and latency models). The
// probing engine re-sends the same few frames tens of thousands of times, so
// skipping the per-call decode matters; results are identical to sending the
// frame's encoding because the pipeline only ever reads the decoded form.
// The frame is not retained past the call.
func (s *Switch) SendFrameN(f *packet.Frame, inPort uint16, size, n int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("switchsim: burst size %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	s.expireLocked(now)
	return s.sendLocked(f, inPort, size, n, now), nil
}

// sendLocked injects an n-packet burst of the decoded frame. Callers hold
// s.mu, have already run the expiry sweep, and pass the clock reading that
// sweep used — nothing between the sweep and the pipeline advances the
// clock, so reading it again per packet would only cost time.
func (s *Switch) sendLocked(f *packet.Frame, inPort uint16, size, n int, now time.Time) Result {
	s.stats.PacketsSeen += uint64(n)
	s.tel.packets.Add(int64(n))
	res := s.pipeline(f, inPort, size, now)
	if s.detector != nil {
		key, ok := flowtable.FrameKey(f)
		s.observeFrame(key, ok, res.Path)
	}
	if n > 1 {
		// Account the remaining n-1 touches on the matched rule.
		if res.Rule != nil {
			e := s.entryOf(res.Rule)
			res.Rule.Packets += uint64(n - 1)
			res.Rule.Bytes += uint64((n - 1) * size)
			if e != nil {
				e.traffic += uint64(n - 1)
				e.useSeq = s.nextEvent()
				s.indexFix(e)
				s.customTouch(e, uint64(n-1))
			}
			if e != nil && !e.inTCAM {
				s.maybePromote(e)
			}
		}
		s.clock.Sleep(time.Duration(n-1) * res.RTT)
	}
	s.clock.Sleep(res.RTT)
	if s.tel.enabled() {
		s.updateOccupancy() // data traffic promotes/evicts/caches entries
	}
	return res
}

// pipeline runs the frame through the table hierarchy.
func (s *Switch) pipeline(f *packet.Frame, inPort uint16, size int, now time.Time) Result {
	switch s.profile.Kind {
	case ManageMicroflow:
		return s.microflowPipeline(f, inPort, size, now)
	default:
		return s.hardwarePipeline(f, inPort, size, now)
	}
}

func (s *Switch) hardwarePipeline(f *packet.Frame, inPort uint16, size int, now time.Time) Result {
	if res, ok := s.classifyExact(f, inPort, size, now); ok {
		return res
	}
	if r := s.tcam.Lookup(f, inPort); r != nil && r != s.defaultRule {
		return s.tcamHit(s.entryOf(r), r, size, now)
	}
	if s.software != nil {
		if r := s.software.Lookup(f, inPort); r != nil {
			return s.softHit(s.entryOf(r), r, size, now)
		}
	}
	return s.punt()
}

// classifyExact short-circuits the per-tier lookups for the dominant probing
// workload: every installed rule an exact IPv4 match, at most the priority-0
// default route wild. The switch-wide exact index then answers the whole
// classification with one open-addressing probe — a frame's key selects the
// only rule in either table that could match it — instead of two table
// lookups that each rehash the key. ok=false defers to the reference tier
// walk whenever the workload leaves the fast path's assumptions (other wild
// rules, key shared by several rules, ambiguity against the default route).
func (s *Switch) classifyExact(f *packet.Frame, inPort uint16, size int, now time.Time) (Result, bool) {
	softWild := 0
	if s.software != nil {
		softWild = s.software.WildLen()
	}
	wilds := s.tcam.WildLen() + softWild
	defaultOnly := false
	if wilds != 0 {
		// Tolerate exactly one wild resident when it is the default route:
		// the reference walk never forwards through it (the tcam branch
		// skips it and a frame matching nothing else punts untouched), so
		// only shadowing against equal-or-lower-priority exact rules —
		// guarded below — could distinguish the paths.
		if wilds != 1 || softWild != 0 || s.defaultRule == nil ||
			s.tcam.WildSingleton() != s.defaultRule {
			return Result{}, false
		}
		defaultOnly = true
	}
	k, ok := flowtable.FrameKey(f)
	if !ok {
		// Non-IPv4 frames cannot match exact-indexed rules.
		return s.punt(), true
	}
	h := s.exact.get(k)
	if h == 0 {
		return s.punt(), true
	}
	e := &s.entries[h]
	if e.nextKey != 0 {
		// Duplicate-add phantoms chain behind the resident's key; let the
		// reference path disambiguate.
		return Result{}, false
	}
	r := e.rule
	if defaultOnly && r.Priority <= s.defaultRule.Priority {
		return Result{}, false
	}
	if !r.Match.MatchesRest(f, inPort) {
		// The rule pins more than the addresses (port, protocol); no other
		// exact rule shares the key, so the frame misses every table.
		return s.punt(), true
	}
	if e.inTCAM {
		return s.tcamHit(e, r, size, now), true
	}
	if e.inSoft {
		return s.softHit(e, r, size, now), true
	}
	// Tracked but resident in no table: a real lookup would miss.
	return s.punt(), true
}

// tcamHit accounts a hardware-table hit: touch, then forward or punt by the
// rule's actions and latency tier.
func (s *Switch) tcamHit(e *entry, r *flowtable.Rule, size int, now time.Time) Result {
	s.touch(e, r, size, now)
	if isController(r) {
		s.stats.ControlMiss++
		s.tel.controlMiss.Add(1)
		return Result{Path: PathControl, RTT: s.profile.ControlPath.Sample(s.rng), Rule: r}
	}
	path, dist := s.tcamTier(r)
	if path == PathFast {
		s.stats.FastHits++
		s.tel.fastHits.Add(1)
	} else {
		s.stats.MidHits++
		s.tel.midHits.Add(1)
	}
	return Result{Path: path, RTT: dist.Sample(s.rng), OutPort: outPort(r), Rule: r}
}

// softHit accounts a software-table hit, including the promotion check the
// reference walk performs before classifying the frame's path.
func (s *Switch) softHit(e *entry, r *flowtable.Rule, size int, now time.Time) Result {
	s.touch(e, r, size, now)
	s.maybePromote(e)
	if isController(r) {
		s.stats.ControlMiss++
		s.tel.controlMiss.Add(1)
		return Result{Path: PathControl, RTT: s.profile.ControlPath.Sample(s.rng), Rule: r}
	}
	s.stats.SlowHits++
	s.tel.slowHits.Add(1)
	return Result{Path: PathSlow, RTT: s.profile.SlowPath.Sample(s.rng), OutPort: outPort(r), Rule: r}
}

// punt accounts a total miss.
func (s *Switch) punt() Result {
	s.stats.ControlMiss++
	s.tel.controlMiss.Add(1)
	return Result{Path: PathControl, RTT: s.profile.ControlPath.Sample(s.rng)}
}

// tcamTier maps a TCAM resident to its latency tier based on its physical
// slot: the first MidPathSlots entries run at FastPath speed, the rest at
// MidPath (Figure 5's two fast banks). With MidPathSlots == 0 the whole
// TCAM is fast.
func (s *Switch) tcamTier(r *flowtable.Rule) (PathKind, LatencyDist) {
	if s.profile.MidPathSlots <= 0 || s.profile.MidPath.Mean == 0 {
		return PathFast, s.profile.FastPath
	}
	for i, rr := range s.tcam.Rules() {
		if rr == r {
			if i < s.profile.MidPathSlots {
				return PathFast, s.profile.FastPath
			}
			return PathMid, s.profile.MidPath
		}
	}
	return PathFast, s.profile.FastPath
}

// maybePromote swaps a software entry into TCAM when the cache policy now
// prefers it over the worst resident — this is how probing "a flow that was
// not initially cached might cause some other flow to be evicted".
func (s *Switch) maybePromote(e *entry) {
	if s.profile.Kind != ManagePolicyCache || e.inTCAM {
		return
	}
	w := e.rule.Match.Width()
	if !s.tcamAdmits(w) {
		return
	}
	if s.tcam.Fits(w) {
		s.promote(e)
		return
	}
	victim := s.worstTCAMEntry()
	if victim != nil && s.better(e, victim) {
		s.promote(e)
	}
}

func (s *Switch) microflowPipeline(f *packet.Frame, inPort uint16, size int, now time.Time) Result {
	ft, ftOK := f.FiveTuple()
	if ftOK {
		if ke, hit := s.kernel[ft]; hit {
			ke.useSeq = s.nextEvent()
			s.kernel[ft] = ke
			owner := s.entryAt(ke.owner)
			r := owner.rule
			s.touch(owner, r, size, now)
			if isController(r) {
				s.stats.ControlMiss++
				s.tel.controlMiss.Add(1)
				return Result{Path: PathControl, RTT: s.profile.ControlPath.Sample(s.rng), Rule: r}
			}
			s.stats.FastHits++
			s.tel.fastHits.Add(1)
			return Result{Path: PathFast, RTT: s.profile.FastPath.Sample(s.rng), OutPort: outPort(r), Rule: r}
		}
	}
	if r := s.software.Lookup(f, inPort); r != nil {
		e := s.entryOf(r)
		s.touch(e, r, size, now)
		if isController(r) {
			s.stats.ControlMiss++
			s.tel.controlMiss.Add(1)
			return Result{Path: PathControl, RTT: s.profile.ControlPath.Sample(s.rng), Rule: r}
		}
		// Install the exact-match microflow entry so the flow's next packet
		// takes the kernel fast path (the 1-to-N user→kernel mapping).
		if ftOK {
			s.kernel[ft] = kernelEntry{owner: r.Ext, useSeq: s.nextEvent()}
			if e != nil {
				e.kernelKeys = append(e.kernelKeys, ft)
			}
			s.evictKernelIfNeeded()
		}
		s.stats.SlowHits++
		s.tel.slowHits.Add(1)
		return Result{Path: PathSlow, RTT: s.profile.SlowPath.Sample(s.rng), OutPort: outPort(r), Rule: r}
	}
	s.stats.ControlMiss++
	s.tel.controlMiss.Add(1)
	return Result{Path: PathControl, RTT: s.profile.ControlPath.Sample(s.rng)}
}

// evictKernelIfNeeded applies LRU eviction to the kernel microflow cache
// when a capacity is configured.
func (s *Switch) evictKernelIfNeeded() {
	cap := s.profile.KernelCapacity
	if cap <= 0 || len(s.kernel) <= cap {
		return
	}
	var victimKey packet.FiveTuple
	var victimSeq uint64
	found := false
	for k, ke := range s.kernel {
		if !found || ke.useSeq < victimSeq {
			found, victimSeq, victimKey = true, ke.useSeq, k
		}
	}
	if found {
		delete(s.kernel, victimKey)
		s.stats.Evictions++
		s.tel.evictions.Add(1)
	}
}

func (s *Switch) touch(e *entry, r *flowtable.Rule, size int, now time.Time) {
	r.Touch(size, now)
	if e != nil {
		e.useSeq = s.nextEvent()
		e.traffic++
		s.indexFix(e)
		s.customTouch(e, 1)
	}
}

func isController(r *flowtable.Rule) bool {
	for _, a := range r.Actions {
		if a.Type == flowtable.ActionController {
			return true
		}
	}
	// An empty action list drops the frame; it does not punt.
	return false
}

func outPort(r *flowtable.Rule) uint16 {
	for _, a := range r.Actions {
		if a.Type == flowtable.ActionOutput {
			return a.Port
		}
	}
	return openflow.PortNone
}

// InTCAM reports whether the rule identified by (match, priority) currently
// resides in the hardware table. Tests and experiments use it as ground
// truth for cache state.
func (s *Switch) InTCAM(m *flowtable.Match, priority uint16) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.locate(m, priority)
	if r == nil {
		return false
	}
	e := s.entryOf(r)
	return e != nil && e.inTCAM
}

// TCAMCapacityNow returns how many more entries of width w the hardware
// table can hold — ground truth for size-inference accuracy.
func (s *Switch) TCAMCapacityNow(w flowtable.Width) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tcam == nil {
		return 0
	}
	return s.tcam.EffectiveCapacity(w)
}
