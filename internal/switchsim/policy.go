// Package switchsim emulates OpenFlow switches with diverse implementation
// properties: multi-level flow tables (TCAM, kernel, user space), vendor
// cache-replacement policies, TCAM width modes, and calibrated control- and
// data-plane latency models. The emulator reproduces the observable
// behaviours §3 of the Tango paper measured on three proprietary hardware
// switches and Open vSwitch — latency tiers, table-size limits, and
// priority-dependent rule-installation costs — so that Tango's probing and
// inference engines can be exercised without the authors' testbed.
package switchsim

import "fmt"

// Attribute is one of the per-flow values a cache policy may consult
// (the ATTRIB set of the paper's switch model, §5.1).
type Attribute int

// Cache-policy attributes.
const (
	// AttrInsertion is the flow's installation order (time since insertion).
	AttrInsertion Attribute = iota
	// AttrUseTime is the order of the flow's most recent data-plane hit.
	AttrUseTime
	// AttrTraffic is the flow's matched-packet count.
	AttrTraffic
	// AttrPriority is the flow's OpenFlow rule priority.
	AttrPriority
)

// String implements fmt.Stringer.
func (a Attribute) String() string {
	switch a {
	case AttrInsertion:
		return "insertion"
	case AttrUseTime:
		return "use_time"
	case AttrTraffic:
		return "traffic"
	case AttrPriority:
		return "priority"
	}
	return fmt.Sprintf("attr(%d)", int(a))
}

// Attributes lists every policy attribute, in declaration order.
var Attributes = []Attribute{AttrInsertion, AttrUseTime, AttrTraffic, AttrPriority}

// SortKey is one component of a lexicographic cache policy: an attribute
// plus a direction (the MONOTONE assumption — the comparison is monotone,
// either increasing or decreasing).
type SortKey struct {
	Attr Attribute
	// HighIsBetter reports whether larger attribute values make a flow more
	// likely to be *kept* in the cache. LRU keeps recently used flows
	// (high use time), so {AttrUseTime, true}; FIFO keeps the oldest flows,
	// so {AttrInsertion, false}.
	HighIsBetter bool
}

// String implements fmt.Stringer.
func (k SortKey) String() string {
	dir := "low"
	if k.HighIsBetter {
		dir = "high"
	}
	return fmt.Sprintf("%s(keep-%s)", k.Attr, dir)
}

// Policy is a lexicographic composite of sort keys (the LEX assumption):
// the cache retains the flows that order best under Keys[0], breaking ties
// with Keys[1], and so on. The zero value (no keys) is invalid for
// policy-managed switches.
//
// Custom, when set, replaces the LEX composite with a policy outside the
// paper's model (custompolicy.go); Keys is ignored. Custom policies score
// entries through per-switch state, so the pure Policy.Better/Worst helpers
// cannot evaluate them and degenerate to insertion order — switches route
// every comparison through their instantiated state instead.
type Policy struct {
	Keys   []SortKey
	Custom *CustomPolicy
}

// Named building-block policies.
var (
	// PolicyFIFO keeps the oldest-installed flows in the cache (Switch #1's
	// software table works as a FIFO buffer for TCAM).
	PolicyFIFO = Policy{Keys: []SortKey{{AttrInsertion, false}}}
	// PolicyLRU keeps the most recently used flows.
	PolicyLRU = Policy{Keys: []SortKey{{AttrUseTime, true}}}
	// PolicyLFU keeps the most heavily used flows, breaking ties by recency.
	PolicyLFU = Policy{Keys: []SortKey{{AttrTraffic, true}, {AttrUseTime, true}}}
	// PolicyPriority keeps the highest-priority flows, breaking ties by
	// traffic and then recency.
	PolicyPriority = Policy{Keys: []SortKey{{AttrPriority, true}, {AttrTraffic, true}, {AttrUseTime, true}}}
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p.Custom != nil {
		return p.Custom.Name
	}
	if len(p.Keys) == 0 {
		return "none"
	}
	s := p.Keys[0].String()
	for _, k := range p.Keys[1:] {
		s += "," + k.String()
	}
	return s
}

// Equal reports whether two policies have identical key sequences. Custom
// policies compare by name; a custom policy never equals a LEX composite.
func (p Policy) Equal(o Policy) bool {
	if p.Custom != nil || o.Custom != nil {
		return p.Custom != nil && o.Custom != nil && p.Custom.Name == o.Custom.Name
	}
	if len(p.Keys) != len(o.Keys) {
		return false
	}
	for i := range p.Keys {
		if p.Keys[i] != o.Keys[i] {
			return false
		}
	}
	return true
}

// attrValue reads attribute a of entry e as an integer for comparison.
func attrValue(e *entry, a Attribute) uint64 {
	switch a {
	case AttrInsertion:
		return e.insertSeq
	case AttrUseTime:
		return e.useSeq
	case AttrTraffic:
		return e.traffic
	case AttrPriority:
		return uint64(e.rule.Priority)
	}
	return 0
}

// Better reports whether entry a should be preferred (kept in cache) over
// entry b under the policy. Entries that compare equal on every key fall
// back to insertion order (older wins), which keeps the ordering total as
// the paper's model requires.
func (p Policy) Better(a, b *entry) bool {
	for _, k := range p.Keys {
		va, vb := attrValue(a, k.Attr), attrValue(b, k.Attr)
		if va == vb {
			continue
		}
		if k.HighIsBetter {
			return va > vb
		}
		return va < vb
	}
	return a.insertSeq < b.insertSeq
}

// compile specialises Better for the policy's key list. Single-key policies
// — the whole named matrix — get a comparator with the attribute access
// inlined, replacing the per-comparison key loop and attribute switch that
// dominate heap sift costs under touch-heavy probing. Multi-key composites
// keep the generic form. Each branch reproduces Better exactly: primary
// attribute, then the insertion-order tiebreak.
func (p Policy) compile() func(a, b *entry) bool {
	if len(p.Keys) != 1 {
		return p.Better
	}
	k := p.Keys[0]
	switch {
	case k.Attr == AttrInsertion && k.HighIsBetter:
		return func(a, b *entry) bool {
			if a.insertSeq != b.insertSeq {
				return a.insertSeq > b.insertSeq
			}
			return a.insertSeq < b.insertSeq
		}
	case k.Attr == AttrInsertion:
		return func(a, b *entry) bool { return a.insertSeq < b.insertSeq }
	case k.Attr == AttrUseTime && k.HighIsBetter:
		return func(a, b *entry) bool {
			if a.useSeq != b.useSeq {
				return a.useSeq > b.useSeq
			}
			return a.insertSeq < b.insertSeq
		}
	case k.Attr == AttrUseTime:
		return func(a, b *entry) bool {
			if a.useSeq != b.useSeq {
				return a.useSeq < b.useSeq
			}
			return a.insertSeq < b.insertSeq
		}
	case k.Attr == AttrTraffic && k.HighIsBetter:
		return func(a, b *entry) bool {
			if a.traffic != b.traffic {
				return a.traffic > b.traffic
			}
			return a.insertSeq < b.insertSeq
		}
	case k.Attr == AttrTraffic:
		return func(a, b *entry) bool {
			if a.traffic != b.traffic {
				return a.traffic < b.traffic
			}
			return a.insertSeq < b.insertSeq
		}
	case k.Attr == AttrPriority && k.HighIsBetter:
		return func(a, b *entry) bool {
			if a.rule.Priority != b.rule.Priority {
				return a.rule.Priority > b.rule.Priority
			}
			return a.insertSeq < b.insertSeq
		}
	case k.Attr == AttrPriority:
		return func(a, b *entry) bool {
			if a.rule.Priority != b.rule.Priority {
				return a.rule.Priority < b.rule.Priority
			}
			return a.insertSeq < b.insertSeq
		}
	}
	return p.Better
}

// Worst returns the entry that orders last under the policy — the eviction
// victim — among the given entries. It returns nil for an empty slice.
func (p Policy) Worst(entries []*entry) *entry {
	var worst *entry
	for _, e := range entries {
		if worst == nil || p.Better(worst, e) {
			worst = e
		}
	}
	return worst
}
