package switchsim

import (
	"errors"
	"testing"
	"time"

	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
)

// addFlow installs the exact probe rule for flow id at the given priority.
func addFlow(t *testing.T, s *Switch, id uint32, prio uint16) {
	t.Helper()
	if err := addFlowErr(s, id, prio); err != nil {
		t.Fatalf("add flow %d: %v", id, err)
	}
}

func addFlowErr(s *Switch, id uint32, prio uint16) error {
	return s.FlowMod(&openflow.FlowMod{
		Command:  openflow.FlowAdd,
		Match:    flowtable.ExactProbeMatch(id),
		Priority: prio,
		Actions:  flowtable.Output(1),
	})
}

// sendProbe injects flow id's probe frame and returns the result.
func sendProbe(t *testing.T, s *Switch, id uint32) Result {
	t.Helper()
	raw, err := packet.BuildProbe(packet.ProbeSpec{FlowID: id})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SendPacket(raw, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTCAMOnlyRejectsWhenFull(t *testing.T) {
	p := Switch2().WithTCAMCapacity(10)
	s := New(p)
	for id := uint32(0); id < 10; id++ {
		addFlow(t, s, id, 100)
	}
	err := addFlowErr(s, 99, 100)
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", err)
	}
	tcam, _, sw := s.RuleCount()
	if tcam != 10 || sw != 0 {
		t.Fatalf("counts = %d/%d", tcam, sw)
	}
}

func TestTCAMOnlyTwoTierDelay(t *testing.T) {
	// Figure 2(c): matching flows take the fast path, misses go to control.
	s := New(Switch2())
	for id := uint32(0); id < 50; id++ {
		addFlow(t, s, id, 100)
	}
	hit := sendProbe(t, s, 10)
	if hit.Path != PathFast {
		t.Fatalf("hit path = %v", hit.Path)
	}
	miss := sendProbe(t, s, 999)
	if miss.Path != PathControl {
		t.Fatalf("miss path = %v", miss.Path)
	}
	if hit.RTT >= miss.RTT {
		t.Fatalf("fast RTT %v not below control RTT %v", hit.RTT, miss.RTT)
	}
}

func TestPolicyCacheFIFOPlacement(t *testing.T) {
	// Figure 2(b): with a FIFO software table the first N insertions stay
	// in TCAM regardless of traffic.
	p := TestSwitch(5, PolicyFIFO)
	s := New(p)
	for id := uint32(0); id < 8; id++ {
		addFlow(t, s, id, 100)
	}
	tcam, _, sw := s.RuleCount()
	if tcam != 5 || sw != 3 {
		t.Fatalf("counts = %d tcam / %d software", tcam, sw)
	}
	// First five flows are fast path, later three slow path.
	for id := uint32(0); id < 5; id++ {
		if res := sendProbe(t, s, id); res.Path != PathFast {
			t.Fatalf("flow %d path = %v, want fast", id, res.Path)
		}
	}
	for id := uint32(5); id < 8; id++ {
		if res := sendProbe(t, s, id); res.Path != PathSlow {
			t.Fatalf("flow %d path = %v, want slow", id, res.Path)
		}
	}
	// FIFO is traffic independent: hammering a software flow must not
	// promote it.
	for i := 0; i < 20; i++ {
		sendProbe(t, s, 7)
	}
	if res := sendProbe(t, s, 7); res.Path != PathSlow {
		t.Fatal("traffic promoted a flow under FIFO")
	}
	// Unknown flows punt to the controller.
	if res := sendProbe(t, s, 100); res.Path != PathControl {
		t.Fatalf("miss path = %v", res.Path)
	}
}

func TestPolicyCacheFIFORefill(t *testing.T) {
	p := TestSwitch(3, PolicyFIFO)
	s := New(p)
	for id := uint32(0); id < 5; id++ {
		addFlow(t, s, id, 100)
	}
	// Deleting a TCAM resident pulls the oldest software entry (flow 3) in.
	m := flowtable.ExactProbeMatch(1)
	if err := s.FlowMod(&openflow.FlowMod{Command: openflow.FlowDeleteStrict, Match: m, Priority: 100}); err != nil {
		t.Fatal(err)
	}
	if !s.InTCAM(ptrMatch(3), 100) {
		t.Fatal("oldest software flow not promoted after TCAM delete")
	}
	if s.InTCAM(ptrMatch(4), 100) {
		t.Fatal("newer software flow promoted out of order")
	}
	tcam, _, sw := s.RuleCount()
	if tcam != 3 || sw != 1 {
		t.Fatalf("counts = %d/%d", tcam, sw)
	}
}

func ptrMatch(id uint32) *flowtable.Match {
	m := flowtable.ExactProbeMatch(id)
	return &m
}

func TestPolicyCacheLRUPromotion(t *testing.T) {
	p := TestSwitch(3, PolicyLRU)
	s := New(p)
	for id := uint32(0); id < 4; id++ {
		addFlow(t, s, id, 100)
	}
	// Under LRU the newest insertions win the cache: flows 1,2,3 resident.
	if s.InTCAM(ptrMatch(0), 100) {
		t.Fatal("LRU kept the oldest flow after insert-driven eviction")
	}
	// Touching flow 0 (software) must promote it, evicting the least
	// recently used resident (flow 1).
	res := sendProbe(t, s, 0)
	if res.Path != PathSlow {
		t.Fatalf("first touch path = %v, want slow", res.Path)
	}
	if !s.InTCAM(ptrMatch(0), 100) {
		t.Fatal("touch did not promote under LRU")
	}
	if s.InTCAM(ptrMatch(1), 100) {
		t.Fatal("LRU evicted the wrong victim")
	}
	if res := sendProbe(t, s, 0); res.Path != PathFast {
		t.Fatalf("second touch path = %v, want fast", res.Path)
	}
}

func TestPolicyCacheLFU(t *testing.T) {
	p := TestSwitch(2, PolicyLFU)
	s := New(p)
	for id := uint32(0); id < 3; id++ {
		addFlow(t, s, id, 100)
	}
	// Give flow 2 (software resident or not) heavy traffic and flow 0 none.
	for i := 0; i < 10; i++ {
		sendProbe(t, s, 2)
	}
	if !s.InTCAM(ptrMatch(2), 100) {
		t.Fatal("heavy-traffic flow not cached under LFU")
	}
}

func TestPolicyCachePriority(t *testing.T) {
	p := TestSwitch(2, PolicyPriority)
	s := New(p)
	addFlow(t, s, 0, 10)
	addFlow(t, s, 1, 20)
	addFlow(t, s, 2, 30) // evicts priority 10
	if s.InTCAM(ptrMatch(0), 10) {
		t.Fatal("low-priority flow kept over high-priority")
	}
	if !s.InTCAM(ptrMatch(1), 20) || !s.InTCAM(ptrMatch(2), 30) {
		t.Fatal("high-priority flows not cached")
	}
}

func TestMicroflowThreeTier(t *testing.T) {
	// Figure 2(a): 80 rules, 160 flows × 2 packets. First packet of a
	// matching flow is slow (user space), second fast (kernel). Unmatched
	// flows go to the controller both times.
	s := New(OVS())
	for id := uint32(0); id < 80; id++ {
		addFlow(t, s, id, 100)
	}
	for id := uint32(0); id < 160; id++ {
		first := sendProbe(t, s, id)
		second := sendProbe(t, s, id)
		if id < 80 {
			if first.Path != PathSlow {
				t.Fatalf("flow %d first packet path = %v, want slow", id, first.Path)
			}
			if second.Path != PathFast {
				t.Fatalf("flow %d second packet path = %v, want fast", id, second.Path)
			}
		} else {
			if first.Path != PathControl || second.Path != PathControl {
				t.Fatalf("flow %d paths = %v/%v, want control", id, first.Path, second.Path)
			}
		}
	}
	st := s.Stats()
	if st.FastHits != 80 || st.SlowHits != 80 || st.ControlMiss != 160 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMicroflowInvalidationOnDelete(t *testing.T) {
	s := New(OVS())
	addFlow(t, s, 1, 100)
	sendProbe(t, s, 1) // slow, installs kernel entry
	if res := sendProbe(t, s, 1); res.Path != PathFast {
		t.Fatal("kernel entry not installed")
	}
	m := flowtable.ExactProbeMatch(1)
	if err := s.FlowMod(&openflow.FlowMod{Command: openflow.FlowDeleteStrict, Match: m, Priority: 100}); err != nil {
		t.Fatal(err)
	}
	if res := sendProbe(t, s, 1); res.Path != PathControl {
		t.Fatalf("stale kernel entry served a deleted rule: %v", res.Path)
	}
}

func TestMicroflowKernelLRUCapacity(t *testing.T) {
	p := OVS()
	p.KernelCapacity = 2
	s := New(p)
	for id := uint32(0); id < 3; id++ {
		addFlow(t, s, id, 100)
	}
	sendProbe(t, s, 0)
	sendProbe(t, s, 1)
	sendProbe(t, s, 2) // evicts kernel entry for flow 0
	_, kernel, _ := s.RuleCount()
	if kernel != 2 {
		t.Fatalf("kernel entries = %d, want 2", kernel)
	}
	if res := sendProbe(t, s, 0); res.Path != PathSlow {
		t.Fatalf("evicted flow path = %v, want slow", res.Path)
	}
}

func TestModifyCheaperThanAddOnHardware(t *testing.T) {
	// Figure 3(b): modifying n entries is far cheaper than adding n
	// when priorities descend.
	p := Switch1()
	const n = 1500
	addSwitch := New(p, WithSeed(1))
	start := addSwitch.Now()
	for id := uint32(0); id < n; id++ {
		if err := addFlowErr(addSwitch, id, uint16(20000-id)); err != nil { // descending
			t.Fatal(err)
		}
	}
	addCost := addSwitch.Now().Sub(start)

	modSwitch := New(p, WithSeed(2))
	for id := uint32(0); id < n; id++ {
		if err := addFlowErr(modSwitch, id, 100); err != nil {
			t.Fatal(err)
		}
	}
	start = modSwitch.Now()
	for id := uint32(0); id < n; id++ {
		err := modSwitch.FlowMod(&openflow.FlowMod{
			Command:  openflow.FlowModifyStrict,
			Match:    flowtable.ExactProbeMatch(id),
			Priority: 100,
			Actions:  flowtable.Output(2),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	modCost := modSwitch.Now().Sub(start)
	if modCost >= addCost {
		t.Fatalf("mod (%v) not cheaper than descending add (%v)", modCost, addCost)
	}
}

func TestPriorityOrderCostSpread(t *testing.T) {
	// Figure 3(c): same > ascending > random > descending in speed.
	const n = 1000
	install := func(prios func(i int) uint16) time.Duration {
		s := New(Switch1(), WithSeed(7))
		start := s.Now()
		for i := 0; i < n; i++ {
			if err := addFlowErr(s, uint32(i), prios(i)); err != nil {
				t.Fatal(err)
			}
		}
		return s.Now().Sub(start)
	}
	same := install(func(i int) uint16 { return 1000 })
	asc := install(func(i int) uint16 { return uint16(1000 + i) })
	desc := install(func(i int) uint16 { return uint16(20000 - i) })
	rnd := install(func(i int) uint16 { return uint16(1000 + (i*7919)%n) })

	if !(same < asc && asc < rnd && rnd < desc) {
		t.Fatalf("cost order violated: same=%v asc=%v rnd=%v desc=%v", same, asc, rnd, desc)
	}
	if desc < asc*5 {
		t.Fatalf("descending (%v) should dwarf ascending (%v)", desc, asc)
	}
}

func TestOVSPriorityInsensitive(t *testing.T) {
	const n = 400
	install := func(prios func(i int) uint16) time.Duration {
		s := New(OVS(), WithSeed(7))
		start := s.Now()
		for i := 0; i < n; i++ {
			if err := addFlowErr(s, uint32(i), prios(i)); err != nil {
				t.Fatal(err)
			}
		}
		return s.Now().Sub(start)
	}
	asc := install(func(i int) uint16 { return uint16(1000 + i) })
	desc := install(func(i int) uint16 { return uint16(20000 - i) })
	ratio := float64(desc) / float64(asc)
	if ratio > 1.2 || ratio < 0.8 {
		t.Fatalf("OVS should be priority-insensitive; asc=%v desc=%v", asc, desc)
	}
}

func TestDefaultRouteOccupiesSlot(t *testing.T) {
	p := TestSwitch(4, PolicyFIFO)
	s := New(p, WithDefaultRoute())
	for id := uint32(0); id < 4; id++ {
		addFlow(t, s, id, 100)
	}
	tcam, _, sw := s.RuleCount()
	if tcam != 4 || sw != 1 {
		t.Fatalf("counts = %d/%d, want 4 TCAM (incl. default) / 1 software", tcam, sw)
	}
	// A total miss hits the default route and punts.
	if res := sendProbe(t, s, 12345); res.Path != PathControl {
		t.Fatalf("miss path = %v", res.Path)
	}
}

func TestDeleteNonStrictCovers(t *testing.T) {
	s := New(OVS())
	for id := uint32(0); id < 5; id++ {
		addFlow(t, s, id, 100)
	}
	// Wildcard-all non-strict delete clears everything.
	if err := s.FlowMod(&openflow.FlowMod{Command: openflow.FlowDelete}); err != nil {
		t.Fatal(err)
	}
	_, _, sw := s.RuleCount()
	if sw != 0 {
		t.Fatalf("software rules = %d, want 0", sw)
	}
}

func TestModifyMissingBehavesAsAdd(t *testing.T) {
	s := New(OVS())
	err := s.FlowMod(&openflow.FlowMod{
		Command:  openflow.FlowModify,
		Match:    flowtable.ExactProbeMatch(7),
		Priority: 9,
		Actions:  flowtable.Output(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, sw := s.RuleCount()
	if sw != 1 {
		t.Fatalf("rules = %d, want 1", sw)
	}
}

func TestAdaptiveWidthEviction(t *testing.T) {
	// A wide contender must be able to displace two narrow residents.
	p := TestSwitch(0, PolicyLRU)
	p.TCAM = flowtable.TCAMConfig{Mode: flowtable.ModeAdaptive, CapacityNarrow: 4, CapacityWide: 2}
	s := New(p)
	// Four narrow L3-only rules fill the TCAM.
	for id := uint32(0); id < 4; id++ {
		err := s.FlowMod(&openflow.FlowMod{
			Command: openflow.FlowAdd, Match: flowtable.L3ProbeMatch(id), Priority: 10,
			Actions: flowtable.Output(1),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tcam, _, _ := s.RuleCount()
	if tcam != 4 {
		t.Fatalf("tcam = %d, want 4", tcam)
	}
	// A new wide rule is most-recent under LRU: it evicts two narrow rules.
	addFlow(t, s, 100, 10)
	tcam, _, sw := s.RuleCount()
	if tcam != 3 || sw != 2 {
		t.Fatalf("after wide insert: tcam=%d sw=%d, want 3/2", tcam, sw)
	}
	if !s.InTCAM(ptrMatch(100), 10) {
		t.Fatal("wide rule not cached")
	}
}

func TestSingleWideModeKeepsWideRulesInSoftware(t *testing.T) {
	p := TestSwitch(0, PolicyFIFO)
	p.TCAM = flowtable.TCAMConfig{Mode: flowtable.ModeSingleWide, CapacityNarrow: 4, CapacityWide: 4}
	s := New(p)
	addFlow(t, s, 1, 10) // L2+L3: ineligible for single-wide TCAM
	if s.InTCAM(ptrMatch(1), 10) {
		t.Fatal("wide rule installed in single-wide TCAM")
	}
	_, _, sw := s.RuleCount()
	if sw != 1 {
		t.Fatalf("software rules = %d, want 1", sw)
	}
	if res := sendProbe(t, s, 1); res.Path != PathSlow {
		t.Fatalf("path = %v, want slow", res.Path)
	}
}

func TestHandleOpenFlowConversation(t *testing.T) {
	s := New(Switch2().WithTCAMCapacity(2))
	// Hello
	replies := s.Handle(&openflow.Hello{})
	if len(replies) != 1 || replies[0].Type() != openflow.TypeHello {
		t.Fatalf("hello replies: %v", replies)
	}
	// Echo
	replies = s.Handle(&openflow.EchoRequest{Data: []byte("x")})
	if len(replies) != 1 || replies[0].Type() != openflow.TypeEchoReply {
		t.Fatalf("echo replies: %v", replies)
	}
	// Features
	replies = s.Handle(&openflow.FeaturesRequest{})
	fr, ok := replies[0].(*openflow.FeaturesReply)
	if !ok || fr.DatapathID != Switch2().DatapathID || fr.NTables != 1 {
		t.Fatalf("features: %+v", replies[0])
	}
	// FlowMod ok -> no reply
	fm := &openflow.FlowMod{Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(1), Priority: 5, Actions: flowtable.Output(1)}
	if replies = s.Handle(fm); replies != nil {
		t.Fatalf("flowmod replies: %v", replies)
	}
	// Fill and overflow -> Error reply
	s.Handle(&openflow.FlowMod{Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(2), Priority: 5, Actions: flowtable.Output(1)})
	replies = s.Handle(&openflow.FlowMod{Command: openflow.FlowAdd, Match: flowtable.ExactProbeMatch(3), Priority: 5, Actions: flowtable.Output(1)})
	if len(replies) != 1 {
		t.Fatalf("overflow replies: %v", replies)
	}
	oe, ok := replies[0].(*openflow.Error)
	if !ok || !oe.IsTableFull() {
		t.Fatalf("overflow reply: %+v", replies[0])
	}
	// Barrier
	replies = s.Handle(&openflow.BarrierRequest{Header: openflow.Header{Xid: 77}})
	if len(replies) != 1 || replies[0].XID() != 77 || replies[0].Type() != openflow.TypeBarrierReply {
		t.Fatalf("barrier replies: %v", replies)
	}
	// PacketOut for an installed flow reflects a PacketIn with ACTION.
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 1})
	replies = s.Handle(&openflow.PacketOut{Data: raw, InPort: 1})
	pin, ok := replies[0].(*openflow.PacketIn)
	if !ok || pin.Reason != openflow.ReasonAction {
		t.Fatalf("packet-out reply: %+v", replies[0])
	}
	// PacketOut for a miss reflects NO_MATCH.
	raw, _ = packet.BuildProbe(packet.ProbeSpec{FlowID: 50})
	replies = s.Handle(&openflow.PacketOut{Data: raw, InPort: 1})
	pin, ok = replies[0].(*openflow.PacketIn)
	if !ok || pin.Reason != openflow.ReasonNoMatch {
		t.Fatalf("miss packet-out reply: %+v", replies[0])
	}
	// Table stats
	replies = s.Handle(&openflow.StatsRequest{StatsType: openflow.StatsTypeTable})
	sr, ok := replies[0].(*openflow.StatsReply)
	if !ok || len(sr.Tables) != 1 || sr.Tables[0].ActiveCount != 2 {
		t.Fatalf("table stats: %+v", replies[0])
	}
	// Flow stats
	replies = s.Handle(&openflow.StatsRequest{StatsType: openflow.StatsTypeFlow})
	sr, ok = replies[0].(*openflow.StatsReply)
	if !ok || len(sr.Flows) != 2 {
		t.Fatalf("flow stats: %+v", replies[0])
	}
}

func TestMidPathTiering(t *testing.T) {
	// Figure 5: entries beyond MidPathSlots in the TCAM answer at MidPath.
	p := FigureFiveSwitch()
	p.TCAM = flowtable.TCAMConfig{Mode: flowtable.ModeDoubleWide, CapacityNarrow: 20, CapacityWide: 20}
	p.MidPathSlots = 10
	p.SoftwareCapacity = 100
	s := New(p)
	for id := uint32(0); id < 25; id++ {
		addFlow(t, s, id, 100)
	}
	if res := sendProbe(t, s, 3); res.Path != PathFast {
		t.Fatalf("slot 3 path = %v", res.Path)
	}
	if res := sendProbe(t, s, 15); res.Path != PathMid {
		t.Fatalf("slot 15 path = %v", res.Path)
	}
	if res := sendProbe(t, s, 22); res.Path != PathSlow {
		t.Fatalf("overflow flow path = %v", res.Path)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New(Switch2())
	addFlow(t, s, 1, 10)
	sendProbe(t, s, 1)
	sendProbe(t, s, 2)
	st := s.Stats()
	if st.FlowMods != 1 || st.PacketsSeen != 2 || st.FastHits != 1 || st.ControlMiss != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	s := New(Switch1())
	before := s.Now()
	addFlow(t, s, 1, 10)
	afterAdd := s.Now()
	if !afterAdd.After(before) {
		t.Fatal("clock did not advance on flow-mod")
	}
	sendProbe(t, s, 1)
	if !s.Now().After(afterAdd) {
		t.Fatal("clock did not advance on packet")
	}
}

func TestPortStatusAndConfig(t *testing.T) {
	s := New(Switch2())
	// Features now carries port descriptions.
	replies := s.Handle(&openflow.FeaturesRequest{})
	fr := replies[0].(*openflow.FeaturesReply)
	if len(fr.Ports) != 48 {
		t.Fatalf("ports = %d, want 48", len(fr.Ports))
	}
	if fr.Ports[0].PortNo != 1 || fr.Ports[0].Name != "eth1" {
		t.Fatalf("port 0 = %+v", fr.Ports[0])
	}
	// Taking a port down queues a PORT_STATUS that the next Handle flushes.
	if !s.SetPortDown(3, true) {
		t.Fatal("SetPortDown failed")
	}
	if s.SetPortDown(99, true) {
		t.Fatal("unknown port accepted")
	}
	replies = s.Handle(&openflow.EchoRequest{})
	if len(replies) != 2 {
		t.Fatalf("replies = %d, want PORT_STATUS + ECHO_REPLY", len(replies))
	}
	ps, ok := replies[0].(*openflow.PortStatus)
	if !ok || ps.Desc.PortNo != 3 || ps.Desc.State&openflow.PortStateLinkDown == 0 {
		t.Fatalf("port status = %+v", replies[0])
	}
	if !s.PortDown(3) {
		t.Fatal("port state not recorded")
	}
	// Re-setting the same state is silent.
	s.SetPortDown(3, true)
	if replies := s.Handle(&openflow.EchoRequest{}); len(replies) != 1 {
		t.Fatalf("duplicate state change produced notification: %d", len(replies))
	}
	// GetConfig round trip through SetConfig.
	s.Handle(&openflow.SwitchConfig{Set: true, MissSendLen: 256, Flags: 1})
	replies = s.Handle(&openflow.GetConfigRequest{Header: openflow.Header{Xid: 9}})
	cfg, ok := replies[0].(*openflow.SwitchConfig)
	if !ok || cfg.MissSendLen != 256 || cfg.Flags != 1 || cfg.XID() != 9 {
		t.Fatalf("config = %+v", replies[0])
	}
}

func TestAggregateStats(t *testing.T) {
	s := New(Switch2())
	addFlow(t, s, 1, 10)
	addFlow(t, s, 2, 10)
	sendProbe(t, s, 1)
	sendProbe(t, s, 1)
	replies := s.Handle(&openflow.StatsRequest{StatsType: openflow.StatsTypeAggregate})
	sr := replies[0].(*openflow.StatsReply)
	if sr.Aggregate.FlowCount != 2 || sr.Aggregate.PacketCount != 2 {
		t.Fatalf("aggregate = %+v", sr.Aggregate)
	}
	if sr.Aggregate.ByteCount == 0 {
		t.Fatal("byte count not accumulated")
	}
}

func TestSendPacketNBatchedSemantics(t *testing.T) {
	s := New(OVS())
	addFlow(t, s, 1, 100)
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 1})
	res, err := s.SendPacketN(raw, 1, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rule == nil || res.Rule.Packets != 25 {
		t.Fatalf("packets = %d, want 25", res.Rule.Packets)
	}
	if st := s.Stats(); st.PacketsSeen != 25 {
		t.Fatalf("seen = %d", st.PacketsSeen)
	}
	if _, err := s.SendPacketN(raw, 1, 0); err == nil {
		t.Fatal("zero burst accepted")
	}
}

func TestSendPacketNPromotesOnce(t *testing.T) {
	// A burst to a software resident under LFU promotes it exactly as the
	// same number of sequential packets would.
	p := TestSwitch(2, PolicyLFU)
	s := New(p)
	for id := uint32(0); id < 3; id++ {
		addFlow(t, s, id, 100)
	}
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 0})
	if _, err := s.SendPacketN(raw, 1, 10); err != nil {
		t.Fatal(err)
	}
	if !s.InTCAM(ptrMatch(0), 100) {
		t.Fatal("burst did not promote under LFU")
	}
}

func TestBurstAdvancesClockProportionally(t *testing.T) {
	s := New(Switch2())
	addFlow(t, s, 1, 100)
	raw, _ := packet.BuildProbe(packet.ProbeSpec{FlowID: 1})
	before := s.Now()
	if _, err := s.SendPacketN(raw, 1, 100); err != nil {
		t.Fatal(err)
	}
	elapsed := s.Now().Sub(before)
	// 100 fast-path RTTs at ~0.4ms each.
	if elapsed < 20*time.Millisecond || elapsed > 80*time.Millisecond {
		t.Fatalf("burst advanced clock by %v", elapsed)
	}
}
