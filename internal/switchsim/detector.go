package switchsim

import (
	"sync"

	"tango/internal/telemetry"
)

// detector.go is the switch-side countermeasure to the flow-table overflow
// inference attack (arXiv 1504.03095). The attack's footprint is structural,
// not volumetric: a long run of never-before-seen flows with *adjacent*
// addresses arriving at a steady rate, interleaved with revisits to old
// flows that have just fallen out of the fast path. The detector samples the
// data plane in fixed-size windows and raises an alarm when a window is
// dominated by novel flows AND those novel flows arrive in address order —
// organic traffic (Zipf-popular flows over a randomly assigned address
// space) is novelty-heavy only briefly and essentially never sequential.

// DetectorOptions tunes the overflow detector. Zero values select defaults.
type DetectorOptions struct {
	// Window is the number of data-plane observations per analysis window
	// (default 128).
	Window int
	// NovelFrac is the minimum fraction of a window's observations that
	// must be first-seen flows (default 0.5).
	NovelFrac float64
	// SeqFrac is the minimum fraction of the window's novel flows whose
	// destination address directly follows the previous novel flow's
	// (default 0.5). Sequential novelty is the scan signature.
	SeqFrac float64
}

func (o DetectorOptions) withDefaults() DetectorOptions {
	if o.Window <= 0 {
		o.Window = 128
	}
	if o.NovelFrac <= 0 {
		o.NovelFrac = 0.5
	}
	if o.SeqFrac <= 0 {
		o.SeqFrac = 0.5
	}
	return o
}

// OverflowDetector watches one switch's data plane for the overflow-probing
// pattern. Attach it with WithDetector; read the verdict with Alarms. The
// detector has its own lock so tests can read counters while a scenario is
// still driving the switch.
type OverflowDetector struct {
	mu   sync.Mutex
	opts DetectorOptions

	// seen maps flow keys to state bits (bit 0: observed before;
	// bit 1: last observation ran on a fast tier).
	seen        map[uint64]uint8
	lastNovel   uint32 // destination of the most recent novel flow
	haveNovel   bool
	obs         int // observations in the current window
	novel       int
	seqNovel    int
	windows     int
	alarms      int
	revisitDemo int // previously-fast flows re-observed slow (diagnostic)

	alarmCtr   *telemetry.Counter
	windowCtr  *telemetry.Counter
	revisitCtr *telemetry.Counter
}

const (
	detSeen    uint8 = 1 << 0
	detWasFast uint8 = 1 << 1
)

// NewOverflowDetector builds a detector with the given options.
func NewOverflowDetector(opts DetectorOptions) *OverflowDetector {
	return &OverflowDetector{
		opts: opts.withDefaults(),
		seen: make(map[uint64]uint8),
	}
}

// WithDetector attaches d to the switch: every data-plane send (a burst
// counts once — its pipeline decision is single) is observed. The detector's
// counters become labeled children of the switchsim.overflow_detector.*
// families under the switch's profile name.
func WithDetector(d *OverflowDetector) Option {
	return func(s *Switch) {
		s.detector = d
		if d == nil {
			return
		}
		reg := telemetry.Default()
		name := s.profile.Name
		d.mu.Lock()
		d.alarmCtr = reg.CounterVec("switchsim.overflow_detector.alarms", "switch").With(name)
		d.windowCtr = reg.CounterVec("switchsim.overflow_detector.windows", "switch").With(name)
		d.revisitCtr = reg.CounterVec("switchsim.overflow_detector.revisit_demotions", "switch").With(name)
		d.mu.Unlock()
	}
}

// observe records one data-plane classification. key identifies the flow
// (FrameKey), ok is false for non-IPv4 frames (counted but never novel-
// sequential), and path is the pipeline's tier decision.
func (d *OverflowDetector) observe(key uint64, ok bool, path PathKind) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.obs++
	fast := path == PathFast || path == PathMid
	if ok {
		bits, before := d.seen[key]
		if !before {
			d.novel++
			dst := uint32(key)
			if d.haveNovel && dst == d.lastNovel+1 {
				d.seqNovel++
			}
			d.lastNovel, d.haveNovel = dst, true
		} else if bits&detWasFast != 0 && !fast {
			// A flow that used to ride the fast path got demoted between
			// visits: each overflow-probe canary check produces exactly one
			// of these. Organic cache churn produces them too, so this is a
			// diagnostic signal, not an alarm trigger.
			d.revisitDemo++
			if d.revisitCtr != nil {
				d.revisitCtr.Add(1)
			}
		}
		bits |= detSeen
		if fast {
			bits |= detWasFast
		} else {
			bits &^= detWasFast
		}
		d.seen[key] = bits
	}
	if d.obs >= d.opts.Window {
		d.closeWindow()
	}
}

// closeWindow evaluates the finished window. Callers hold d.mu.
func (d *OverflowDetector) closeWindow() {
	d.windows++
	if d.windowCtr != nil {
		d.windowCtr.Add(1)
	}
	novelOK := float64(d.novel) >= d.opts.NovelFrac*float64(d.obs)
	seqOK := d.novel > 0 && float64(d.seqNovel) >= d.opts.SeqFrac*float64(d.novel)
	if novelOK && seqOK {
		d.alarms++
		if d.alarmCtr != nil {
			d.alarmCtr.Add(1)
		}
	}
	d.obs, d.novel, d.seqNovel = 0, 0, 0
}

// Alarms returns how many windows matched the overflow-probing signature.
func (d *OverflowDetector) Alarms() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alarms
}

// Windows returns how many complete windows have been evaluated.
func (d *OverflowDetector) Windows() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.windows
}

// RevisitDemotions returns how many previously-fast flows were re-observed
// on a slow tier — the canary-check footprint.
func (d *OverflowDetector) RevisitDemotions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.revisitDemo
}

// observeFrame is the switch-side hook: derive the flow key and forward.
// Callers hold s.mu; the detector takes its own lock, keeping the hot path
// free of detector costs when none is attached.
func (s *Switch) observeFrame(key uint64, ok bool, path PathKind) {
	if s.detector != nil {
		s.detector.observe(key, ok, path)
	}
}
