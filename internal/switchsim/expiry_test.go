package switchsim

import (
	"testing"
	"time"

	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/simclock"
)

// addTimedFlow installs flow id with the given timeouts and the
// send-flow-removed flag.
func addTimedFlow(t *testing.T, s *Switch, id uint32, idle, hard uint16) {
	t.Helper()
	err := s.FlowMod(&openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Match:       flowtable.ExactProbeMatch(id),
		Priority:    100,
		IdleTimeout: idle,
		HardTimeout: hard,
		Flags:       openflow.FlagSendFlowRem,
		Actions:     flowtable.Output(1),
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHardTimeoutExpires(t *testing.T) {
	clk := simclock.NewVirtual()
	s := New(Switch2(), WithClock(clk))
	addTimedFlow(t, s, 1, 0, 10)
	addFlow(t, s, 2, 100) // no timeout: must survive

	clk.Advance(11 * time.Second)
	s.ExpireNow()

	tcam, _, _ := s.RuleCount()
	if tcam != 1 {
		t.Fatalf("rules = %d, want 1 (timed rule expired)", tcam)
	}
	removed := s.TakeFlowRemoved()
	if len(removed) != 1 {
		t.Fatalf("notifications = %d, want 1", len(removed))
	}
	fr := removed[0]
	if fr.Reason != openflow.RemovedHardTimeout || fr.Priority != 100 {
		t.Fatalf("notification = %+v", fr)
	}
	if fr.DurationSec < 10 {
		t.Fatalf("duration = %d s", fr.DurationSec)
	}
	if s.Stats().Expirations != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	// Notifications drain once.
	if len(s.TakeFlowRemoved()) != 0 {
		t.Fatal("notifications not drained")
	}
}

func TestIdleTimeoutRefreshedByTraffic(t *testing.T) {
	clk := simclock.NewVirtual()
	s := New(Switch2(), WithClock(clk))
	addTimedFlow(t, s, 1, 10, 0)

	// Traffic every 5 simulated seconds keeps the flow alive.
	for i := 0; i < 4; i++ {
		clk.Advance(5 * time.Second)
		if res := sendProbe(t, s, 1); res.Path != PathFast {
			t.Fatalf("iteration %d path = %v", i, res.Path)
		}
	}
	// Then 11 quiet seconds kill it.
	clk.Advance(11 * time.Second)
	s.ExpireNow()
	if res := sendProbe(t, s, 1); res.Path != PathControl {
		t.Fatalf("expired flow still forwarding: %v", res.Path)
	}
	removed := s.TakeFlowRemoved()
	if len(removed) != 1 || removed[0].Reason != openflow.RemovedIdleTimeout {
		t.Fatalf("notifications = %+v", removed)
	}
}

func TestExpirySweepsLazilyOnFlowMod(t *testing.T) {
	clk := simclock.NewVirtual()
	s := New(Switch2(), WithClock(clk))
	addTimedFlow(t, s, 1, 0, 5)
	clk.Advance(6 * time.Second)
	// The next control-plane op triggers the sweep without ExpireNow.
	addFlow(t, s, 2, 100)
	tcam, _, _ := s.RuleCount()
	if tcam != 1 {
		t.Fatalf("rules = %d, want only the new one", tcam)
	}
}

func TestDeleteEmitsFlowRemoved(t *testing.T) {
	s := New(Switch2())
	addTimedFlow(t, s, 1, 0, 0) // flag set, no timeouts
	m := flowtable.ExactProbeMatch(1)
	if err := s.FlowMod(&openflow.FlowMod{Command: openflow.FlowDeleteStrict, Match: m, Priority: 100}); err != nil {
		t.Fatal(err)
	}
	removed := s.TakeFlowRemoved()
	if len(removed) != 1 || removed[0].Reason != openflow.RemovedDelete {
		t.Fatalf("notifications = %+v", removed)
	}
	// Rules without the flag stay silent.
	addFlow(t, s, 2, 100)
	m2 := flowtable.ExactProbeMatch(2)
	if err := s.FlowMod(&openflow.FlowMod{Command: openflow.FlowDeleteStrict, Match: m2, Priority: 100}); err != nil {
		t.Fatal(err)
	}
	if len(s.TakeFlowRemoved()) != 0 {
		t.Fatal("unflagged delete produced a notification")
	}
}

func TestHandleFlushesFlowRemoved(t *testing.T) {
	clk := simclock.NewVirtual()
	s := New(Switch2(), WithClock(clk))
	addTimedFlow(t, s, 1, 0, 5)
	clk.Advance(6 * time.Second)
	// The next handled message triggers the sweep and carries the
	// notification ahead of its reply.
	replies := s.Handle(&openflow.EchoRequest{Header: openflow.Header{Xid: 3}})
	if len(replies) != 2 {
		t.Fatalf("replies = %d, want FLOW_REMOVED + ECHO_REPLY", len(replies))
	}
	if replies[0].Type() != openflow.TypeFlowRemoved {
		t.Fatalf("first reply = %v", replies[0].Type())
	}
	if replies[1].Type() != openflow.TypeEchoReply || replies[1].XID() != 3 {
		t.Fatalf("second reply = %v", replies[1].Type())
	}
}

func TestNoTimeoutRulesCostNothing(t *testing.T) {
	s := New(Switch2())
	for id := uint32(0); id < 100; id++ {
		addFlow(t, s, id, 100)
	}
	// nextExpiry must remain unset so sweeps stay O(1).
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.nextExpiry.IsZero() {
		t.Fatal("expiry deadline set without any timed rules")
	}
}
