package switchsim

import "tango/internal/flowtable"

// custompolicy.go adds cache-management policies that fall outside the
// paper's LEX model: their keep/evict decision is not a lexicographic
// composite of per-flow attributes, so Tango's Algorithm 2 cannot express
// them and the inference engine must reject them with a typed error (or, for
// policies whose observable behaviour happens to coincide with a LEX
// composite, classify them as that composite). Two families are modelled:
//
//   - destination-based rule aggregation (arXiv 1909.03059): flows sharing a
//     destination /28 are scored as a group by the group's cumulative
//     traffic, so one elephant flow shields its whole aggregate;
//   - FDRC-style flow-driven caching (arXiv 1803.04270): per-flow activity
//     is counted in coarse epochs and a flow's score is its current plus
//     previous epoch count, so idle flows decay to zero in two epochs
//     regardless of lifetime totals.
//
// Both need per-switch mutable scoring state, which Policy.Better — a pure
// function of two entries — cannot carry. A CustomPolicy therefore supplies
// a state constructor; the switch instantiates the state in initIndexes and
// routes every comparison, touch, and removal through it. Group-aggregate
// and epoch scores shift for many entries at once on a single touch, which
// would invalidate per-entry heap fixups, so custom policies deliberately
// run without the eviction/promotion indexes and use the retained naive
// scans instead.

// customState is a custom policy's per-switch scoring state. The switch
// calls better under its lock wherever it would consult the compiled LEX
// comparator, and the hook methods on every attribute-changing event.
type customState interface {
	// better reports whether a should be kept over b; it must be a total
	// order (tie-break on insertSeq like Policy.Better).
	better(a, b *entry) bool
	// onTouch accounts n data-plane packets on e (called after e.traffic
	// has been advanced).
	onTouch(e *entry, n uint64)
	// onRemove forgets e (rule deleted or expired).
	onRemove(e *entry)
}

// CustomPolicy is a cache-management policy outside the LEX model. Construct
// one with PolicyDestAggregate or PolicyFDRC and place it in
// Policy.Custom; the embedded state constructor keeps per-switch scoring
// private to each Switch instance.
type CustomPolicy struct {
	// Name identifies the policy in Policy.String output.
	Name string
	// newState builds fresh scoring state; called from initIndexes (so
	// Reset starts clean).
	newState func() customState
}

// PolicyDestAggregate returns a destination-based rule-aggregation policy:
// entries whose destination addresses share a /28 form a group, a group's
// score is its cumulative matched-packet count, and eviction removes a
// member of the lowest-scoring group (oldest member first). Rules without
// an exact IPv4 destination share one residual group.
func PolicyDestAggregate() Policy {
	return Policy{Custom: &CustomPolicy{
		Name: "dest-aggregate(/28)",
		newState: func() customState {
			return &destAggState{
				group: make(map[int32]uint32),
				score: make(map[uint32]uint64),
			}
		},
	}}
}

// destAggState scores entries by their destination /28 group's cumulative
// traffic. State is keyed by arena handle (entry.self), not *entry: arena
// pointers move when the arena grows, handles never do.
type destAggState struct {
	group map[int32]uint32  // memoized group key per live entry handle
	score map[uint32]uint64 // cumulative traffic per group
}

// residualGroup collects rules whose match has no exact IPv4 destination.
const residualGroup = ^uint32(0)

func (st *destAggState) key(e *entry) uint32 {
	if g, ok := st.group[e.self]; ok {
		return g
	}
	g := residualGroup
	if k, ok := flowtable.ExactKey(&e.rule.Match); ok {
		g = uint32(k) >> 4 // low word is the destination; aggregate at /28
	}
	st.group[e.self] = g
	return g
}

func (st *destAggState) better(a, b *entry) bool {
	sa, sb := st.score[st.key(a)], st.score[st.key(b)]
	if sa != sb {
		return sa > sb
	}
	return a.insertSeq < b.insertSeq
}

func (st *destAggState) onTouch(e *entry, n uint64) {
	st.score[st.key(e)] += n
}

func (st *destAggState) onRemove(e *entry) {
	g, ok := st.group[e.self]
	if !ok {
		return
	}
	// The entry's own lifetime traffic leaves with it.
	if s := st.score[g]; s > e.traffic {
		st.score[g] = s - e.traffic
	} else {
		delete(st.score, g)
	}
	delete(st.group, e.self)
}

// PolicyFDRC returns a flow-driven rule-caching policy: switch-wide
// data-plane events are divided into epochs of the given window size
// (packets per epoch; 0 selects 4096), each entry counts its packets in the
// current epoch, and its score is current + previous epoch counts. Flows
// idle for two epochs score zero however much they carried before, which is
// what distinguishes FDRC's sliding recency-weighted frequency from plain
// LFU's lifetime totals.
func PolicyFDRC(window uint64) Policy {
	if window == 0 {
		window = 4096
	}
	return Policy{Custom: &CustomPolicy{
		Name: "fdrc(window=" + itoa(window) + ")",
		newState: func() customState {
			return &fdrcState{window: window, cells: make(map[int32]fdrcCell)}
		},
	}}
}

// itoa formats a uint64 without importing strconv into the hot-path file.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// fdrcCell is one entry's epoch-local activity counters.
type fdrcCell struct {
	epoch     uint64 // epoch cur was accumulated in
	cur, prev uint64
}

// fdrcState scores entries by current-plus-previous-epoch packet counts.
// Cells are keyed by arena handle for the same reason as destAggState.
type fdrcState struct {
	window uint64
	events uint64 // switch-wide data-plane packets seen
	cells  map[int32]fdrcCell
}

func (st *fdrcState) epochNow() uint64 { return st.events / st.window }

// scoreOf reads e's score at the current epoch without mutating the cell:
// rotation is applied as a view, so comparisons during eviction scans are
// side-effect free.
func (st *fdrcState) scoreOf(e *entry) uint64 {
	c, ok := st.cells[e.self]
	if !ok {
		return 0
	}
	switch ep := st.epochNow(); {
	case c.epoch == ep:
		return c.cur + c.prev
	case c.epoch+1 == ep:
		return c.cur
	default:
		return 0
	}
}

func (st *fdrcState) better(a, b *entry) bool {
	sa, sb := st.scoreOf(a), st.scoreOf(b)
	if sa != sb {
		return sa > sb
	}
	if a.useSeq != b.useSeq {
		return a.useSeq > b.useSeq
	}
	return a.insertSeq < b.insertSeq
}

func (st *fdrcState) onTouch(e *entry, n uint64) {
	st.events += n
	ep := st.epochNow()
	c := st.cells[e.self]
	switch {
	case c.epoch == ep:
	case c.epoch+1 == ep:
		c.prev, c.cur, c.epoch = c.cur, 0, ep
	default:
		c.prev, c.cur, c.epoch = 0, 0, ep
	}
	c.cur += n
	st.cells[e.self] = c
}

func (st *fdrcState) onRemove(e *entry) {
	delete(st.cells, e.self)
}

// customTouch routes a data-plane touch to the active custom policy state.
// Callers hold s.mu.
func (s *Switch) customTouch(e *entry, n uint64) {
	if s.customState != nil && e != nil {
		s.customState.onTouch(e, n)
	}
}

// customRemove forgets e in the active custom policy state. Callers hold
// s.mu.
func (s *Switch) customRemove(e *entry) {
	if s.customState != nil && e != nil {
		s.customState.onRemove(e)
	}
}
