package switchsim

import (
	"testing"

	"tango/internal/structlayout"
)

// TestHotStructLayouts gates the arena's per-entry structs on zero padding
// waste. The whole point of the flat arena is cache density — entries per
// line — so a field added in the wrong place is a perf regression even
// though no benchmark names it.
func TestHotStructLayouts(t *testing.T) {
	for _, v := range []interface{}{
		entry{},
		kernelEntry{},
		exactIndex{},
		handleHeap{},
	} {
		if err := structlayout.Check(v); err != nil {
			t.Error(err)
		}
	}
}
