package switchsim

// evictindex.go keeps the cache policy's eviction order incrementally
// instead of recomputing it. Policy-cache switches maintain two binary heaps
// over their entries, both ordered by Policy.Better (a total order — ties
// fall back to insertion sequence, so every heap root is unique and equals
// the corresponding full-scan result):
//
//   - the eviction index over TCAM residents, policy-worst entry at the
//     root (the next victim);
//   - the promotion index over TCAM-eligible software residents,
//     policy-best entry at the root (the next entry to refill a freed slot).
//
// Each entry carries a heap-position back-pointer, so membership moves
// (insert, evict, promote, delete) and attribute updates under touch-heavy
// policies (use time, traffic) cost O(log n) instead of the O(n) slice
// rebuild and rescan the naive scan paid on every insert into a full cache.
// The naive scans survive as worstTCAMEntryNaive/bestSoftwareEntryNaive,
// the reference implementations the differential test replays against.
//
// The heaps hold int32 arena handles, not pointers: a sift writes only
// integers into items and heapIdx fields, so the GC write barrier never
// runs on this path (it fires on pointer stores into heap objects — the
// dominant cost of the old []*entry sifts during demote churn).

// handleHeap is a binary heap of arena handles with back-pointers in the
// arena records. first reports whether a must sit closer to the root than b;
// with a total order the root is the unique extreme element. Every method
// takes the arena slice explicitly, because the slice header changes when
// the arena grows.
type handleHeap struct {
	items []int32
	first func(a, b *entry) bool
}

func newHandleHeap(first func(a, b *entry) bool) *handleHeap {
	return &handleHeap{first: first}
}

func (h *handleHeap) len() int { return len(h.items) }

// peek returns the root entry, nil when empty.
func (h *handleHeap) peek(ar []entry) *entry {
	if len(h.items) == 0 {
		return nil
	}
	return &ar[h.items[0]]
}

// contains reports whether e currently sits in this heap. Back-pointers are
// shared across heaps, so the slot's occupant is checked, not just the index.
func (h *handleHeap) contains(e *entry) bool {
	i := e.heapIdx
	return i >= 0 && int(i) < len(h.items) && h.items[i] == e.self
}

// push adds e to the heap. e must not already be in any heap.
func (h *handleHeap) push(ar []entry, e *entry) {
	e.heapIdx = int32(len(h.items))
	h.items = append(h.items, e.self)
	h.up(ar, int(e.heapIdx))
}

// removeEntry takes e out of the heap, reporting whether it was a member.
func (h *handleHeap) removeEntry(ar []entry, e *entry) bool {
	if !h.contains(e) {
		return false
	}
	i := int(e.heapIdx)
	last := len(h.items) - 1
	if i != last {
		h.swap(ar, i, last)
	}
	h.items = h.items[:last]
	e.heapIdx = noHeap
	if i != last {
		if !h.down(ar, i) {
			h.up(ar, i)
		}
	}
	return true
}

// fix restores heap order around e after its attributes changed, reporting
// whether e was a member.
func (h *handleHeap) fix(ar []entry, e *entry) bool {
	if !h.contains(e) {
		return false
	}
	if !h.down(ar, int(e.heapIdx)) {
		h.up(ar, int(e.heapIdx))
	}
	return true
}

func (h *handleHeap) swap(ar []entry, i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	ar[h.items[i]].heapIdx = int32(i)
	ar[h.items[j]].heapIdx = int32(j)
}

// up sifts items[i] toward the root.
func (h *handleHeap) up(ar []entry, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.first(&ar[h.items[i]], &ar[h.items[parent]]) {
			return
		}
		h.swap(ar, i, parent)
		i = parent
	}
}

// down sifts items[i] toward the leaves, reporting whether it moved.
func (h *handleHeap) down(ar []entry, i int) bool {
	moved := false
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return moved
		}
		next := left
		if right := left + 1; right < n && h.first(&ar[h.items[right]], &ar[h.items[left]]) {
			next = right
		}
		if !h.first(&ar[h.items[next]], &ar[h.items[i]]) {
			return moved
		}
		h.swap(ar, i, next)
		i = next
		moved = true
	}
}

// initIndexes builds (or rebuilds, on Reset) the eviction and promotion
// indexes. Only policy-cache hierarchies pay for index maintenance; the
// other kinds never consult a cache policy.
func (s *Switch) initIndexes() {
	if c := s.profile.CachePolicy.Custom; c != nil && s.profile.Kind == ManagePolicyCache {
		// Custom policies (custompolicy.go) score through per-switch state
		// whose values shift for many entries on a single touch — per-entry
		// heap fixups cannot track that, so the indexes stay nil and every
		// victim/refill choice takes the naive scans through s.better.
		st := c.newState()
		s.customState = st
		s.better = st.better
		s.evictIdx, s.promoteIdx = nil, nil
		s.dynPolicy = false
		return
	}
	s.customState = nil
	// The compiled comparator serves every policy consumer, indexed or not.
	s.better = s.profile.CachePolicy.compile()
	if s.profile.Kind != ManagePolicyCache {
		return
	}
	better := s.better
	s.evictIdx = newHandleHeap(func(a, b *entry) bool { return better(b, a) })
	s.promoteIdx = newHandleHeap(better)
	policy := s.profile.CachePolicy
	s.dynPolicy = false
	for _, k := range policy.Keys {
		if k.Attr == AttrUseTime || k.Attr == AttrTraffic {
			s.dynPolicy = true
		}
	}
}

// trackTCAM registers e in the eviction index after it entered the TCAM.
func (s *Switch) trackTCAM(e *entry) {
	if s.evictIdx == nil {
		return
	}
	s.evictIdx.push(s.entries, e)
	s.tel.idxPushes.Add(1)
}

// trackSoft registers e in the promotion index after it entered the
// software table; ineligible widths never become promotion candidates and
// stay out of the index, exactly as the naive scan skips them.
func (s *Switch) trackSoft(e *entry) {
	if s.promoteIdx == nil || !s.tcamAdmits(e.rule.Match.Width()) {
		return
	}
	s.promoteIdx.push(s.entries, e)
	s.tel.idxPushes.Add(1)
}

// untrack removes e from whichever index holds it.
func (s *Switch) untrack(e *entry) {
	if s.evictIdx == nil || e == nil || e.heapIdx < 0 {
		return
	}
	if s.evictIdx.removeEntry(s.entries, e) || s.promoteIdx.removeEntry(s.entries, e) {
		s.tel.idxRemoves.Add(1)
	}
}

// indexFix restores index order around e after a policy attribute changed.
// Static policies (insertion/priority keys only) skip it: their comparisons
// read values fixed at insert time.
func (s *Switch) indexFix(e *entry) {
	if !s.dynPolicy || e == nil || e.heapIdx < 0 {
		return
	}
	if s.evictIdx.fix(s.entries, e) || s.promoteIdx.fix(s.entries, e) {
		s.tel.idxFixups.Add(1)
	}
}

// worstTCAMEntryNaive is the retained reference implementation of victim
// selection: scan the TCAM residents for the policy-worst. The differential
// test asserts the index always agrees with it. It compares through
// s.better — identical to Policy.Worst for compiled LEX policies, and the
// only comparator that can see a custom policy's per-switch state.
func (s *Switch) worstTCAMEntryNaive() *entry {
	var worst *entry
	for _, r := range s.tcam.Rules() {
		e := s.entryOf(r)
		if e == nil {
			continue
		}
		if worst == nil || s.better(worst, e) {
			worst = e
		}
	}
	return worst
}

// bestSoftwareEntryNaive is the retained reference scan for promotion.
func (s *Switch) bestSoftwareEntryNaive() *entry {
	var best *entry
	for _, r := range s.software.Rules() {
		e := s.entryOf(r)
		if e == nil || !s.tcamAdmits(r.Match.Width()) {
			continue
		}
		if best == nil || s.better(e, best) {
			best = e
		}
	}
	return best
}
