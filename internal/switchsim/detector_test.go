package switchsim

import "testing"

// detKey builds a flow key with the given source and destination words —
// the same src<<32|dst layout flowtable.FrameKey produces.
func detKey(src, dst uint32) uint64 {
	return uint64(src)<<32 | uint64(dst)
}

func TestDetectorAlarmsOnSequentialScan(t *testing.T) {
	d := NewOverflowDetector(DetectorOptions{})
	// An overflow attacker's fill phase: every packet a never-seen flow,
	// destinations in address order, all missing the fast path.
	for i := uint32(0); i < 256; i++ {
		d.observe(detKey(7, 1000+i), true, PathControl)
	}
	if w := d.Windows(); w != 2 {
		t.Fatalf("windows = %d, want 2", w)
	}
	if a := d.Alarms(); a != 2 {
		t.Fatalf("alarms = %d, want 2 (every window pure sequential scan)", a)
	}
}

func TestDetectorIgnoresShuffledNovelty(t *testing.T) {
	d := NewOverflowDetector(DetectorOptions{})
	// Novelty-heavy but address-shuffled traffic (e.g. a flash crowd over a
	// hashed address space): stride 3 never produces dst adjacency.
	for i := uint32(0); i < 256; i++ {
		d.observe(detKey(7, 1000+3*i), true, PathControl)
	}
	if a := d.Alarms(); a != 0 {
		t.Fatalf("alarms = %d on non-sequential novelty, want 0", a)
	}
	if w := d.Windows(); w != 2 {
		t.Fatalf("windows = %d, want 2", w)
	}
}

func TestDetectorIgnoresRepeatedTraffic(t *testing.T) {
	d := NewOverflowDetector(DetectorOptions{})
	// Steady-state traffic over a tiny working set: almost no novelty.
	for i := 0; i < 256; i++ {
		d.observe(detKey(7, uint32(i%4)), true, PathFast)
	}
	if a := d.Alarms(); a != 0 {
		t.Fatalf("alarms = %d on repeated traffic, want 0", a)
	}
}

func TestDetectorCountsRevisitDemotions(t *testing.T) {
	d := NewOverflowDetector(DetectorOptions{})
	k := detKey(7, 42)
	d.observe(k, true, PathFast) // canary installed, rides the fast path
	d.observe(k, true, PathSlow) // canary evicted: revisit comes back slow
	if r := d.RevisitDemotions(); r != 1 {
		t.Fatalf("revisit demotions = %d, want 1", r)
	}
	// A second slow observation is not a *demotion* — the flow was already
	// known-slow.
	d.observe(k, true, PathSlow)
	if r := d.RevisitDemotions(); r != 1 {
		t.Fatalf("revisit demotions = %d after slow-slow, want 1", r)
	}
	// Promotion back to fast re-arms the signal.
	d.observe(k, true, PathMid)
	d.observe(k, true, PathControl)
	if r := d.RevisitDemotions(); r != 2 {
		t.Fatalf("revisit demotions = %d after re-arm, want 2", r)
	}
}

func TestDetectorNonIPv4FramesNeverNovel(t *testing.T) {
	d := NewOverflowDetector(DetectorOptions{})
	// Unparseable frames fill windows but cannot look like a scan.
	for i := 0; i < 128; i++ {
		d.observe(0, false, PathControl)
	}
	if w, a := d.Windows(), d.Alarms(); w != 1 || a != 0 {
		t.Fatalf("windows/alarms = %d/%d, want 1/0", w, a)
	}
}

func TestDetectorDefaultsAndCustomWindow(t *testing.T) {
	// The window's first novel flow has no predecessor, so at window 8 a pure
	// scan yields 7/8 sequential novels — SeqFrac must stay at or below that.
	d := NewOverflowDetector(DetectorOptions{Window: 8, NovelFrac: 0.9, SeqFrac: 0.8})
	for i := uint32(0); i < 8; i++ {
		d.observe(detKey(1, i), true, PathControl)
	}
	if a := d.Alarms(); a != 1 {
		t.Fatalf("alarms = %d with window 8, want 1", a)
	}
	if got := (DetectorOptions{}).withDefaults(); got.Window != 128 || got.NovelFrac != 0.5 || got.SeqFrac != 0.5 {
		t.Fatalf("defaults = %+v", got)
	}
}

// TestDetectorOnSwitchObservesBursts pins the switch-side hook: every
// data-plane send is classified exactly once (a burst counts once, matching
// its single pipeline decision).
func TestDetectorOnSwitchObservesBursts(t *testing.T) {
	d := NewOverflowDetector(DetectorOptions{Window: 8})
	s := New(TestSwitch(4, PolicyLRU), WithDetector(d))
	addFlow(t, s, 1, 100)
	for i := 0; i < 16; i++ {
		sendProbe(t, s, 1)
	}
	if w := d.Windows(); w != 2 {
		t.Fatalf("windows = %d after 16 sends with window 8, want 2", w)
	}
	if a := d.Alarms(); a != 0 {
		t.Fatalf("alarms = %d on single-flow traffic, want 0", a)
	}
}
