package switchsim

import (
	"testing"
	"time"

	"tango/internal/simclock"
)

func TestCustomPolicyStringAndEqual(t *testing.T) {
	da, fdrc := PolicyDestAggregate(), PolicyFDRC(0)
	if got := da.String(); got != "dest-aggregate(/28)" {
		t.Errorf("dest-aggregate String() = %q", got)
	}
	if got := fdrc.String(); got != "fdrc(window=4096)" {
		t.Errorf("fdrc String() = %q", got)
	}
	if got := PolicyFDRC(128).String(); got != "fdrc(window=128)" {
		t.Errorf("fdrc(128) String() = %q", got)
	}
	if !da.Equal(PolicyDestAggregate()) {
		t.Error("dest-aggregate not Equal to itself")
	}
	if da.Equal(fdrc) || fdrc.Equal(da) {
		t.Error("distinct custom policies compare Equal")
	}
	if da.Equal(PolicyLRU) || PolicyLRU.Equal(da) {
		t.Error("custom policy compares Equal to a LEX policy")
	}
	if !PolicyFDRC(64).Equal(PolicyFDRC(64)) {
		t.Error("same-window fdrc not Equal")
	}
	if PolicyFDRC(64).Equal(PolicyFDRC(128)) {
		t.Error("different-window fdrc compares Equal")
	}
}

// TestDestAggregateGroupShielding pins the aggregation behaviour that makes
// the policy non-LEX: traffic on ONE member of a destination /28 group
// protects every member, so a never-touched flow survives eviction purely
// through its neighbour's score.
func TestDestAggregateGroupShielding(t *testing.T) {
	s := New(TestSwitch(2, PolicyDestAggregate()))
	// Flows 0 and 1 share a destination /28; flow 16 is one group over.
	addFlow(t, s, 0, 100)
	addFlow(t, s, 1, 100)
	if !s.InTCAM(ptrMatch(0), 100) || !s.InTCAM(ptrMatch(1), 100) {
		t.Fatal("initial residents not in TCAM")
	}
	// Only flow 0 carries traffic; its group's score covers flow 1 too.
	for i := 0; i < 5; i++ {
		sendProbe(t, s, 0)
	}
	// A newcomer from a zero-score group cannot displace either member.
	addFlow(t, s, 16, 100)
	if s.InTCAM(ptrMatch(16), 100) {
		t.Fatal("zero-score group admitted over a scored group")
	}
	if !s.InTCAM(ptrMatch(1), 100) {
		t.Fatal("group score failed to shield the untouched member")
	}
	// Once the newcomer's group out-scores the residents', it promotes — and
	// the victim is the residents' group's youngest member (tie on score,
	// insertSeq breaks toward keeping the older).
	for i := 0; i < 10; i++ {
		sendProbe(t, s, 16)
	}
	if !s.InTCAM(ptrMatch(16), 100) {
		t.Fatal("high-score group member not promoted")
	}
	if !s.InTCAM(ptrMatch(0), 100) || s.InTCAM(ptrMatch(1), 100) {
		t.Fatal("eviction removed the wrong member of the losing group")
	}
}

// TestFDRCDecaysStaleTraffic pins the epoch decay that distinguishes FDRC
// from LFU: lifetime totals are worthless two epochs after the flow goes
// idle, so a recently-active small flow beats a historically-heavy idle one.
func TestFDRCDecaysStaleTraffic(t *testing.T) {
	s := New(TestSwitch(2, PolicyFDRC(4)))
	addFlow(t, s, 0, 100)
	addFlow(t, s, 1, 100)
	// Flow 0 is briefly an elephant (8 packets = 2 full epochs) ...
	for i := 0; i < 8; i++ {
		sendProbe(t, s, 0)
	}
	// ... then goes idle while flow 1 carries the next 2 epochs, aging flow
	// 0's history out of the scoring window.
	for i := 0; i < 8; i++ {
		sendProbe(t, s, 1)
	}
	// A brand-new zero-score flow now beats flow 0's decayed score on the
	// recency tie-break and takes its slot. Under LFU (lifetime totals) flow
	// 0 would win 8 packets to 0.
	addFlow(t, s, 2, 100)
	if !s.InTCAM(ptrMatch(2), 100) {
		t.Fatal("fresh flow not admitted over decayed elephant")
	}
	if s.InTCAM(ptrMatch(0), 100) {
		t.Fatal("decayed elephant survived eviction (LFU behaviour, not FDRC)")
	}
	if !s.InTCAM(ptrMatch(1), 100) {
		t.Fatal("recent-epoch elephant evicted")
	}
}

// TestCustomPolicyResetRebuildsState pins that Reset discards scoring state
// along with the tables: post-reset behaviour matches a fresh switch.
func TestCustomPolicyResetRebuildsState(t *testing.T) {
	s := New(TestSwitch(2, PolicyDestAggregate()))
	addFlow(t, s, 0, 100)
	for i := 0; i < 50; i++ {
		sendProbe(t, s, 0)
	}
	s.Reset()
	// If the old group scores survived reset, flow 16's group (score 0)
	// would lose admission contests it should win by insertion order.
	addFlow(t, s, 16, 100)
	addFlow(t, s, 17, 100)
	if !s.InTCAM(ptrMatch(16), 100) || !s.InTCAM(ptrMatch(17), 100) {
		t.Fatal("fresh flows not resident after Reset")
	}
}

// TestCustomPolicyExpiryReleasesState pins that timeout expiry routes
// through onRemove: an expired group member takes its traffic with it.
func TestCustomPolicyExpiryReleasesState(t *testing.T) {
	clk := simclock.NewVirtual()
	s := New(TestSwitch(4, PolicyDestAggregate()), WithClock(clk))
	addTimedFlow(t, s, 0, 0, 1)
	for i := 0; i < 5; i++ {
		sendProbe(t, s, 0)
	}
	clk.Advance(2 * time.Second) // past the 1s hard timeout
	s.ExpireNow()
	// Flow 0 is gone; its group score must not shield a newcomer contest.
	addFlow(t, s, 1, 100) // same /28 as flow 0
	if !s.InTCAM(ptrMatch(1), 100) {
		t.Fatal("expired flow's rule still resident")
	}
	// onRemove released the expired entry's memo and its group score (the
	// entry carried all the group's traffic). Flow 1 has not been compared
	// or touched yet, so both maps must be empty.
	st, ok := s.customState.(*destAggState)
	if !ok {
		t.Fatalf("customState is %T", s.customState)
	}
	if len(st.group) != 0 || len(st.score) != 0 {
		t.Fatalf("stale scoring state after expiry: %d memos, %d group scores",
			len(st.group), len(st.score))
	}
}
