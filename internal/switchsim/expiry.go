package switchsim

import (
	"time"

	"tango/internal/flowtable"
	"tango/internal/openflow"
)

// expiry.go implements idle and hard flow timeouts with FLOW_REMOVED
// notifications. Expiry is swept lazily: the switch tracks the earliest
// possible deadline across rules that carry timeouts and only walks the
// rule set when the virtual clock passes it, so workloads without timeouts
// (all probing patterns) pay nothing.

// scheduleExpiry records that a rule with timeouts exists, updating the
// next sweep deadline. Callers hold s.mu.
func (s *Switch) scheduleExpiry(r *flowtable.Rule, now time.Time) {
	d := ruleDeadline(r, now)
	if d.IsZero() {
		return
	}
	if s.nextExpiry.IsZero() || d.Before(s.nextExpiry) {
		s.nextExpiry = d
	}
}

// ruleDeadline returns the earliest instant at which r could expire, or the
// zero time when it never does.
func ruleDeadline(r *flowtable.Rule, now time.Time) time.Time {
	var d time.Time
	if r.HardTimeout > 0 {
		d = r.InstalledAt.Add(time.Duration(r.HardTimeout) * time.Second)
	}
	if r.IdleTimeout > 0 {
		idle := r.LastUsedAt.Add(time.Duration(r.IdleTimeout) * time.Second)
		if d.IsZero() || idle.Before(d) {
			d = idle
		}
	}
	return d
}

// expireLocked removes every rule whose timeout has passed as of now,
// queueing FLOW_REMOVED notifications for rules that asked for them.
// Callers hold s.mu.
func (s *Switch) expireLocked(now time.Time) {
	if s.nextExpiry.IsZero() || now.Before(s.nextExpiry) {
		return
	}
	s.nextExpiry = time.Time{}
	var victims []*flowtable.Rule
	var reasons []uint8
	s.forEachTracked(func(r *flowtable.Rule) {
		if r.HardTimeout == 0 && r.IdleTimeout == 0 {
			return
		}
		switch {
		case r.HardTimeout > 0 && !now.Before(r.InstalledAt.Add(time.Duration(r.HardTimeout)*time.Second)):
			victims = append(victims, r)
			reasons = append(reasons, openflow.RemovedHardTimeout)
		case r.IdleTimeout > 0 && !now.Before(r.LastUsedAt.Add(time.Duration(r.IdleTimeout)*time.Second)):
			victims = append(victims, r)
			reasons = append(reasons, openflow.RemovedIdleTimeout)
		default:
			// Still alive: fold its deadline into the next sweep.
			if d := ruleDeadline(r, now); !d.IsZero() &&
				(s.nextExpiry.IsZero() || d.Before(s.nextExpiry)) {
				s.nextExpiry = d
			}
		}
	})
	for i, r := range victims {
		s.noteRemoved(r, reasons[i], now)
		s.removeRule(r)
		s.stats.Expirations++
		s.tel.expirations.Add(1)
	}
	if len(victims) > 0 && s.tel.enabled() {
		s.updateOccupancy()
	}
}

// noteRemoved queues a FLOW_REMOVED notification if the rule asked for one.
func (s *Switch) noteRemoved(r *flowtable.Rule, reason uint8, now time.Time) {
	if !r.SendFlowRem {
		return
	}
	dur := now.Sub(r.InstalledAt)
	if dur < 0 {
		dur = 0
	}
	s.removedQueue = append(s.removedQueue, &openflow.FlowRemoved{
		Match:        r.Match,
		Cookie:       r.Cookie,
		Priority:     r.Priority,
		Reason:       reason,
		DurationSec:  uint32(dur / time.Second),
		DurationNsec: uint32(dur % time.Second),
		IdleTimeout:  r.IdleTimeout,
		PacketCount:  r.Packets,
		ByteCount:    r.Bytes,
	})
}

// TakeFlowRemoved drains the queued FLOW_REMOVED notifications. The TCP
// agent loop flushes them ahead of the next reply; in-process controllers
// poll after advancing time.
func (s *Switch) TakeFlowRemoved() []*openflow.FlowRemoved {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.removedQueue
	s.removedQueue = nil
	return out
}

// ExpireNow forces an expiry sweep at the current clock reading — useful
// after advancing a virtual clock past rule deadlines.
func (s *Switch) ExpireNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.nextExpiry.IsZero() {
		now := s.clock.Now()
		if !now.Before(s.nextExpiry) {
			s.expireLocked(now)
		}
	}
}
