package switchsim

import (
	"time"

	"tango/internal/flowtable"
	"tango/internal/openflow"
)

// expiry.go implements idle and hard flow timeouts with FLOW_REMOVED
// notifications. Expiry is swept lazily: the switch tracks the earliest
// possible deadline across rules that carry timeouts and only walks the
// timed-rule list when the virtual clock passes it. Workloads without
// timeouts (all probing patterns) pay nothing, and — critical at fleet
// scale — a table holding a million permanent residents plus a few hundred
// churning timed rules sweeps only the few hundred, not the million.

// noTimed is the timedIdx sentinel for "not in the timed-rule list".
const noTimed int32 = -1

// scheduleExpiry records that a rule with timeouts exists: the rule's entry
// joins the timed-rule list (once) and the next sweep deadline is pulled
// forward. Callers hold s.mu and have set r.Ext.
func (s *Switch) scheduleExpiry(r *flowtable.Rule, now time.Time) {
	d := ruleDeadline(r, now)
	if d.IsZero() {
		return
	}
	if e := s.entryAt(r.Ext); e != nil && e.timedIdx == noTimed {
		e.timedIdx = int32(len(s.timedEnts))
		s.timedEnts = append(s.timedEnts, e.self)
	}
	if s.nextExpiry.IsZero() || d.Before(s.nextExpiry) {
		s.nextExpiry = d
	}
}

// untimeEntry swap-removes e from the timed-rule list. Callers hold s.mu.
func (s *Switch) untimeEntry(e *entry) {
	i := e.timedIdx
	if i == noTimed {
		return
	}
	e.timedIdx = noTimed
	last := len(s.timedEnts) - 1
	if int(i) != last {
		moved := s.timedEnts[last]
		s.timedEnts[i] = moved
		s.entries[moved].timedIdx = i
	}
	s.timedEnts = s.timedEnts[:last]
}

// ruleDeadline returns the earliest instant at which r could expire, or the
// zero time when it never does.
func ruleDeadline(r *flowtable.Rule, now time.Time) time.Time {
	var d time.Time
	if r.HardTimeout > 0 {
		d = r.InstalledAt.Add(time.Duration(r.HardTimeout) * time.Second)
	}
	if r.IdleTimeout > 0 {
		idle := r.LastUsedAt.Add(time.Duration(r.IdleTimeout) * time.Second)
		if d.IsZero() || idle.Before(d) {
			d = idle
		}
	}
	return d
}

// expireLocked removes every rule whose timeout has passed as of now,
// queueing FLOW_REMOVED notifications for rules that asked for them.
// Callers hold s.mu.
func (s *Switch) expireLocked(now time.Time) {
	if s.nextExpiry.IsZero() || now.Before(s.nextExpiry) {
		return
	}
	s.nextExpiry = time.Time{}
	var victims []*flowtable.Rule
	var reasons []uint8
	// Walk only the timed-rule list, in schedule (install) order. Victims
	// are collected first — removeRule below unlinks them via freeEntry, so
	// mutating during iteration would skip the swapped-in tail handles.
	for _, h := range s.timedEnts {
		e := &s.entries[h]
		r := e.rule
		switch {
		case r.HardTimeout > 0 && !now.Before(r.InstalledAt.Add(time.Duration(r.HardTimeout)*time.Second)):
			victims = append(victims, r)
			reasons = append(reasons, openflow.RemovedHardTimeout)
		case r.IdleTimeout > 0 && !now.Before(r.LastUsedAt.Add(time.Duration(r.IdleTimeout)*time.Second)):
			victims = append(victims, r)
			reasons = append(reasons, openflow.RemovedIdleTimeout)
		default:
			// Still alive: fold its deadline into the next sweep.
			if d := ruleDeadline(r, now); !d.IsZero() &&
				(s.nextExpiry.IsZero() || d.Before(s.nextExpiry)) {
				s.nextExpiry = d
			}
		}
	}
	for i, r := range victims {
		s.noteRemoved(r, reasons[i], now)
		s.removeRule(r)
		s.stats.Expirations++
		s.tel.expirations.Add(1)
	}
	if len(victims) > 0 && s.tel.enabled() {
		s.updateOccupancy()
	}
}

// noteRemoved queues a FLOW_REMOVED notification if the rule asked for one.
func (s *Switch) noteRemoved(r *flowtable.Rule, reason uint8, now time.Time) {
	if !r.SendFlowRem {
		return
	}
	dur := now.Sub(r.InstalledAt)
	if dur < 0 {
		dur = 0
	}
	s.removedQueue = append(s.removedQueue, &openflow.FlowRemoved{
		Match:        r.Match,
		Cookie:       r.Cookie,
		Priority:     r.Priority,
		Reason:       reason,
		DurationSec:  uint32(dur / time.Second),
		DurationNsec: uint32(dur % time.Second),
		IdleTimeout:  r.IdleTimeout,
		PacketCount:  r.Packets,
		ByteCount:    r.Bytes,
	})
}

// TakeFlowRemoved drains the queued FLOW_REMOVED notifications. The TCP
// agent loop flushes them ahead of the next reply; in-process controllers
// poll after advancing time.
func (s *Switch) TakeFlowRemoved() []*openflow.FlowRemoved {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.removedQueue
	s.removedQueue = nil
	return out
}

// ExpireNow forces an expiry sweep at the current clock reading — useful
// after advancing a virtual clock past rule deadlines.
func (s *Switch) ExpireNow() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.nextExpiry.IsZero() {
		now := s.clock.Now()
		if !now.Before(s.nextExpiry) {
			s.expireLocked(now)
		}
	}
}
