package switchsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
	"tango/internal/simclock"
)

// checkIndexes asserts that both heaps agree with the retained naive scans —
// same victim, same promotion candidate — and that their memberships are
// exactly the table residents the scans would consider. Called after every
// operation of the differential test, it is the property that makes the
// O(log n) index a pure optimization: Better is a total order, so the heap
// root and the full-scan extreme are the same unique entry.
func checkIndexes(t *testing.T, s *Switch) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()

	if got, want := s.worstTCAMEntry(), s.worstTCAMEntryNaive(); got != want {
		t.Fatalf("worstTCAMEntry: index picked %+v, naive scan picked %+v", got, want)
	}
	if got, want := s.bestSoftwareEntry(), s.bestSoftwareEntryNaive(); got != want {
		t.Fatalf("bestSoftwareEntry: index picked %+v, naive scan picked %+v", got, want)
	}

	inEvict := map[int32]bool{}
	for _, h := range s.evictIdx.items {
		e := s.entryAt(h)
		if e == nil {
			t.Fatalf("eviction index holds dead handle %d", h)
		}
		if !s.evictIdx.contains(e) {
			t.Fatalf("eviction index back-pointer broken for %+v", e)
		}
		inEvict[h] = true
	}
	for _, r := range s.tcam.Rules() {
		if e := s.entryOf(r); e != nil && !inEvict[e.self] {
			t.Fatalf("TCAM resident %v missing from eviction index", r.Match)
		}
	}
	if len(inEvict) != s.tcam.Len() {
		t.Fatalf("eviction index tracks %d entries, TCAM holds %d", len(inEvict), s.tcam.Len())
	}

	inPromote := map[int32]bool{}
	for _, h := range s.promoteIdx.items {
		e := s.entryAt(h)
		if e == nil {
			t.Fatalf("promotion index holds dead handle %d", h)
		}
		if !s.promoteIdx.contains(e) {
			t.Fatalf("promotion index back-pointer broken for %+v", e)
		}
		inPromote[h] = true
	}
	eligible := 0
	for _, r := range s.software.Rules() {
		e := s.entryOf(r)
		if e == nil || !s.tcamAdmits(r.Match.Width()) {
			continue
		}
		eligible++
		if !inPromote[e.self] {
			t.Fatalf("software resident %v missing from promotion index", r.Match)
		}
	}
	if len(inPromote) != eligible {
		t.Fatalf("promotion index tracks %d entries, software holds %d eligible", len(inPromote), eligible)
	}

	checkArena(t, s)
}

// checkArena asserts the flat-arena bookkeeping invariants: every tracked
// rule resolves to a live arena record and vice versa (no leaks, no
// dangling handles), and every free-listed slot is dead — its zeroed self
// field makes stale handles resolve to nil.
func checkArena(t *testing.T, s *Switch) {
	t.Helper()
	tracked := 0
	s.forEachTracked(func(r *flowtable.Rule) {
		tracked++
		e := s.entryOf(r)
		if e == nil {
			t.Fatalf("tracked rule %v (handle %d) resolves to no arena record", r.Match, r.Ext)
		}
		if e.rule != r {
			t.Fatalf("arena record %d points at the wrong rule", e.self)
		}
	})
	if live := s.arenaLive(); live != tracked {
		t.Fatalf("arena holds %d live records, switch tracks %d rules", live, tracked)
	}
	onFree := map[int32]bool{}
	for _, h := range s.freeEnts {
		if onFree[h] {
			t.Fatalf("handle %d free-listed twice", h)
		}
		onFree[h] = true
		if h <= 0 || int(h) >= len(s.entries) {
			t.Fatalf("free list holds out-of-range handle %d", h)
		}
		if s.entries[h].self != 0 {
			t.Fatalf("free slot %d still claims self=%d; stale handles would resolve", h, s.entries[h].self)
		}
		if s.entryAt(h) != nil {
			t.Fatalf("freed handle %d still resolves", h)
		}
	}
}

// runDifferential drives one switch through a randomized insert / touch /
// burst / delete / re-add sequence — plus the arena's adversarial ops:
// timeout expiry and Reset (both recycle handles, so later steps probe
// stale-handle detection), and install bursts past both table capacities
// (free-list exhaustion followed by arena growth mid-churn) — checking
// index-vs-scan agreement and the arena invariants after every step. Small
// capacities keep the cache saturated, so evictions, promotions, and
// refills fire constantly.
func runDifferential(t *testing.T, policy Policy, seed int64) {
	p := TestSwitch(6, policy)
	p.SoftwareCapacity = 18
	clk := simclock.NewVirtual()
	s := New(p, WithSeed(seed), WithClock(clk))
	rng := rand.New(rand.NewSource(seed))

	var live []uint32
	nextID := uint32(0)
	priorities := []uint16{10, 20, 30, 40}

	for step := 0; step < 500; step++ {
		switch op := rng.Intn(12); {
		case op < 4: // install a new flow
			id := nextID
			nextID++
			err := addFlowErr(s, id, priorities[rng.Intn(len(priorities))])
			if err == nil {
				live = append(live, id)
			}
		case op < 7: // touch an existing flow with data traffic
			if len(live) == 0 {
				continue
			}
			id := live[rng.Intn(len(live))]
			raw, err := packet.BuildProbe(packet.ProbeSpec{FlowID: id})
			if err != nil {
				t.Fatal(err)
			}
			n := 1 + rng.Intn(4) // mix single packets and bursts
			if _, err := s.SendPacketN(raw, 1, n); err != nil {
				t.Fatal(err)
			}
		case op < 8: // duplicate add: overwrites in place, must not enter an index
			if len(live) == 0 {
				continue
			}
			id := live[rng.Intn(len(live))]
			_ = addFlowErr(s, id, priorities[rng.Intn(len(priorities))])
		case op < 10: // delete an existing flow (strict)
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			m := flowtable.ExactProbeMatch(id)
			for _, prio := range priorities {
				_ = s.FlowMod(&openflow.FlowMod{
					Command: openflow.FlowDeleteStrict, Match: m, Priority: prio,
				})
			}
		case op < 11: // timed install, then sometimes expire: frees recycle handles
			id := nextID
			nextID++
			err := s.FlowMod(&openflow.FlowMod{
				Command:     openflow.FlowAdd,
				Match:       flowtable.ExactProbeMatch(id),
				Priority:    priorities[rng.Intn(len(priorities))],
				IdleTimeout: uint16(1 + rng.Intn(2)),
				HardTimeout: uint16(1 + rng.Intn(3)),
				Actions:     flowtable.Output(1),
			})
			if err == nil {
				live = append(live, id) // may die to expiry; later ops turn into no-ops
			}
			if rng.Intn(2) == 0 {
				clk.Advance(time.Duration(1+rng.Intn(4)) * time.Second)
				s.ExpireNow()
			}
		default: // arena stress: Reset, or a burst past capacity forcing growth
			if rng.Intn(3) == 0 {
				s.Reset()
				live = live[:0]
			} else {
				for i := 0; i < 30; i++ {
					id := nextID
					nextID++
					if addFlowErr(s, id, priorities[rng.Intn(len(priorities))]) == nil {
						live = append(live, id)
					}
				}
			}
		}
		checkIndexes(t, s)
	}
}

// TestEvictionIndexDifferential replays randomized operation sequences
// against every named policy and a set of random LEX composites, asserting
// after each operation that the incremental index and the naive full scan
// agree on the next victim and the next promotion candidate.
func TestEvictionIndexDifferential(t *testing.T) {
	named := []struct {
		name   string
		policy Policy
	}{
		{"fifo", PolicyFIFO},
		{"lru", PolicyLRU},
		{"lfu", PolicyLFU},
		{"priority", PolicyPriority},
	}
	for _, tc := range named {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			runDifferential(t, tc.policy, 1)
		})
	}

	// Random LEX composites: every subset/order/direction of the non-serial
	// attributes terminated by a serial key, like the conformance generator.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		policy := randomLexPolicy(rng)
		seed := rng.Int63()
		t.Run(fmt.Sprintf("lex-%d-%s", i, policy), func(t *testing.T) {
			t.Parallel()
			runDifferential(t, policy, seed)
		})
	}
}

// randomLexPolicy draws a random LEX composite: a shuffled subset of the
// non-serial attributes with random directions, terminated by a serial key
// (insertion or use-time) so the order is total before the insertSeq
// tie-break even kicks in.
func randomLexPolicy(rng *rand.Rand) Policy {
	nonSerial := []Attribute{AttrTraffic, AttrPriority}
	var keys []SortKey
	for _, idx := range rng.Perm(len(nonSerial))[:rng.Intn(len(nonSerial)+1)] {
		keys = append(keys, SortKey{Attr: nonSerial[idx], HighIsBetter: rng.Intn(2) == 0})
	}
	serial := SortKey{Attr: AttrInsertion, HighIsBetter: rng.Intn(2) == 0}
	if rng.Intn(2) == 0 {
		serial = SortKey{Attr: AttrUseTime, HighIsBetter: true}
	}
	return Policy{Keys: append(keys, serial)}
}
