package switchsim

import (
	"fmt"

	"tango/internal/openflow"
	"tango/internal/packet"
)

// ports.go models the switch's physical ports: their descriptions in
// FEATURES_REPLY and PORT_STATUS notifications on administrative state
// changes (the event that triggers the paper's link-failure scenario).

// portDescs builds the port description list. Port numbers are 1-based.
func (s *Switch) portDescs() []openflow.PortDesc {
	n := s.profile.numPorts()
	out := make([]openflow.PortDesc, n)
	for i := range out {
		no := uint16(i + 1)
		var state uint32
		if s.portsDown[no] {
			state = openflow.PortStateLinkDown
		}
		out[i] = openflow.PortDesc{
			PortNo: no,
			HWAddr: packet.MACFromUint64(s.profile.DatapathID<<8 | uint64(no)),
			Name:   fmt.Sprintf("eth%d", no),
			State:  state,
			Curr:   1 << 5, // OFPPF_10GB_FD
		}
	}
	return out
}

// SetPortDown changes a port's link state, queueing a PORT_STATUS
// notification. It returns false for an unknown port number.
func (s *Switch) SetPortDown(port uint16, down bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if port == 0 || int(port) > s.profile.numPorts() {
		return false
	}
	if s.portsDown == nil {
		s.portsDown = make(map[uint16]bool)
	}
	if s.portsDown[port] == down {
		return true // no change, no notification
	}
	s.portsDown[port] = down
	var state uint32
	if down {
		state = openflow.PortStateLinkDown
	}
	s.portQueue = append(s.portQueue, &openflow.PortStatus{
		Reason: openflow.PortReasonModify,
		Desc: openflow.PortDesc{
			PortNo: port,
			HWAddr: packet.MACFromUint64(s.profile.DatapathID<<8 | uint64(port)),
			Name:   fmt.Sprintf("eth%d", port),
			State:  state,
			Curr:   1 << 5,
		},
	})
	return true
}

// PortDown reports a port's administrative link state.
func (s *Switch) PortDown(port uint16) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.portsDown[port]
}

// TakePortStatus drains queued PORT_STATUS notifications.
func (s *Switch) TakePortStatus() []*openflow.PortStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.portQueue
	s.portQueue = nil
	return out
}
