package infer

import (
	"errors"
	"fmt"

	"tango/internal/core/probe"
	"tango/internal/switchsim"
)

// classify.go wraps Algorithm 2 with a hard verdict. ProbePolicy always
// returns its best-effort diagnosis; controllers that must *act* on the
// result (pick an abstraction, admit a switch to a scheduling domain) need
// the opposite contract — a policy either is a complete LEX ordering the
// model can reason about, or the switch is rejected with a typed error. The
// adversarial conformance scenarios use this entry point against cache
// policies deliberately built outside the LEX model (custompolicy.go).

// ErrUnclassifiablePolicy is the sentinel wrapped by UnclassifiableError;
// match it with errors.Is.
var ErrUnclassifiablePolicy = errors.New("infer: cache policy outside the LEX model")

// UnclassifiableError reports that policy probing could not settle on a
// complete lexicographic ordering: either no attribute ever correlated with
// cache residency, or the correlation chain stalled after a partial prefix.
type UnclassifiableError struct {
	// Rounds is how many probing rounds ran before giving up.
	Rounds int
	// Partial is the accepted key prefix, empty when probing was
	// inconclusive from the first round.
	Partial switchsim.Policy
}

// Error implements error.
func (e *UnclassifiableError) Error() string {
	if len(e.Partial.Keys) == 0 {
		return fmt.Sprintf("%v (inconclusive after %d rounds)", ErrUnclassifiablePolicy, e.Rounds)
	}
	return fmt.Sprintf("%v (stalled after %d rounds with partial prefix %s)",
		ErrUnclassifiablePolicy, e.Rounds, e.Partial)
}

// Unwrap lets errors.Is(err, ErrUnclassifiablePolicy) match.
func (e *UnclassifiableError) Unwrap() error { return ErrUnclassifiablePolicy }

// ClassifyPolicy runs ProbePolicy and converts its diagnosis into a verdict:
// the inferred policy when probing terminated with every round accepted (a
// serial attribute closed the ordering, or all attributes were consumed),
// or an UnclassifiableError carrying the partial prefix otherwise. The
// PolicyResult is returned in both cases so callers can still inspect the
// per-round correlations of a rejected switch.
func ClassifyPolicy(e *probe.Engine, opts PolicyOptions) (*PolicyResult, error) {
	res, err := ProbePolicy(e, opts)
	if err != nil {
		return nil, err
	}
	if len(res.Rounds) == 0 || res.Inconclusive || !res.Rounds[len(res.Rounds)-1].Accepted {
		return res, &UnclassifiableError{Rounds: len(res.Rounds), Partial: res.Policy}
	}
	return res, nil
}
