package infer

import (
	"math"
	"testing"
	"time"

	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/switchsim"
)

func engineFor(p switchsim.Profile, opts ...switchsim.Option) (*probe.Engine, *switchsim.Switch) {
	s := switchsim.New(p, opts...)
	return probe.NewEngine(probe.SimDevice{S: s}), s
}

func relErr(est, actual int) float64 {
	if actual == 0 {
		return math.Inf(1)
	}
	return math.Abs(float64(est-actual)) / float64(actual)
}

func TestProbeSizesTCAMOnly(t *testing.T) {
	// Switch #2 style: one TCAM layer, rejection on overflow.
	const cap = 600
	e, _ := engineFor(switchsim.Switch2().WithTCAMCapacity(cap))
	res, err := ProbeSizes(e, SizeOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheFull {
		t.Fatal("expected rejection-driven termination")
	}
	if res.RulesInstalled != cap {
		t.Fatalf("installed %d, want %d", res.RulesInstalled, cap)
	}
	if len(res.Levels) != 1 {
		t.Fatalf("levels = %+v, want 1", res.Levels)
	}
	if res.Levels[0].Size != cap {
		t.Fatalf("size = %d, want %d", res.Levels[0].Size, cap)
	}
}

func TestProbeSizesTwoLevelFIFO(t *testing.T) {
	// Policy-cache switch: TCAM 500 + bounded software 1500.
	p := switchsim.TestSwitch(500, switchsim.PolicyFIFO)
	p.SoftwareCapacity = 1500
	e, sw := engineFor(p)
	res, err := ProbeSizes(e, SizeOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheFull {
		t.Fatal("expected rejection at software capacity")
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %v", res)
	}
	if e := relErr(res.Levels[0].Size, 500); e > 0.05 {
		t.Fatalf("TCAM size estimate %d off by %.1f%% (want <5%%)", res.Levels[0].Size, e*100)
	}
	if e := relErr(res.Levels[1].Size, 1500); e > 0.05 {
		t.Fatalf("software size estimate %d off by %.1f%%", res.Levels[1].Size, e*100)
	}
	// The census estimator must be at least as accurate.
	if e := relErr(res.Levels[0].Census, 500); e > 0.02 {
		t.Fatalf("census %d off by %.1f%%", res.Levels[0].Census, e*100)
	}
	tcam, _, _ := sw.RuleCount()
	if tcam != 500 {
		t.Fatalf("ground truth changed: %d", tcam)
	}
}

func TestProbeSizesLRUCache(t *testing.T) {
	// LRU promotion churns cache membership during probing; the size
	// estimate must still converge (hits do not change membership).
	p := switchsim.TestSwitch(300, switchsim.PolicyLRU)
	p.SoftwareCapacity = 900
	e, _ := engineFor(p)
	res, err := ProbeSizes(e, SizeOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %v", res)
	}
	if e := relErr(res.Levels[0].Size, 300); e > 0.05 {
		t.Fatalf("LRU cache size estimate %d off by %.1f%%", res.Levels[0].Size, e*100)
	}
}

func TestProbeSizesBudgetCap(t *testing.T) {
	// OVS never rejects; the budget must stop the doubling.
	e, _ := engineFor(switchsim.OVS())
	res, err := ProbeSizes(e, SizeOptions{Seed: 4, MaxRules: 256, Trials: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheFull {
		t.Fatal("OVS should not reject")
	}
	if res.RulesInstalled != 256 {
		t.Fatalf("installed %d, want 256", res.RulesInstalled)
	}
	// Every flow was warmed into the kernel cache, so one fast tier.
	if len(res.Levels) != 1 {
		t.Fatalf("levels = %v", res)
	}
}

func TestProbeSizesDefaultRouteOffByOne(t *testing.T) {
	// Figure 2(b): the pre-installed default route eats one TCAM slot, so
	// inference should see capacity-1 fast entries.
	p := switchsim.TestSwitch(256, switchsim.PolicyFIFO)
	p.SoftwareCapacity = 768
	e, _ := engineFor(p, switchsim.WithDefaultRoute())
	res, err := ProbeSizes(e, SizeOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %v", res)
	}
	if got := res.Levels[0].Census; got != 255 {
		t.Fatalf("fast-tier census = %d, want 255", got)
	}
}

func TestProbePolicyFIFO(t *testing.T) {
	e, _ := engineFor(switchsim.TestSwitch(100, switchsim.PolicyFIFO))
	res, err := ProbePolicy(e, PolicyOptions{CacheSize: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := switchsim.PolicyFIFO
	if len(res.Policy.Keys) != 1 || res.Policy.Keys[0] != want.Keys[0] {
		t.Fatalf("policy = %v (rounds %+v), want %v", res.Policy, res.Rounds, want)
	}
}

func TestProbePolicyLRU(t *testing.T) {
	e, _ := engineFor(switchsim.TestSwitch(100, switchsim.PolicyLRU))
	res, err := ProbePolicy(e, PolicyOptions{CacheSize: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policy.Keys) == 0 || res.Policy.Keys[0] != (switchsim.SortKey{Attr: switchsim.AttrUseTime, HighIsBetter: true}) {
		t.Fatalf("policy = %v (rounds %+v), want LRU", res.Policy, res.Rounds)
	}
}

func TestProbePolicyLFU(t *testing.T) {
	e, _ := engineFor(switchsim.TestSwitch(80, switchsim.PolicyLFU))
	res, err := ProbePolicy(e, PolicyOptions{CacheSize: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Policy.Equal(switchsim.PolicyLFU) {
		t.Fatalf("policy = %v (rounds %+v), want %v", res.Policy, res.Rounds, switchsim.PolicyLFU)
	}
}

func TestProbePolicyPriority(t *testing.T) {
	e, _ := engineFor(switchsim.TestSwitch(80, switchsim.PolicyPriority))
	res, err := ProbePolicy(e, PolicyOptions{CacheSize: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Policy.Equal(switchsim.PolicyPriority) {
		t.Fatalf("policy = %v (rounds %+v), want %v", res.Policy, res.Rounds, switchsim.PolicyPriority)
	}
}

func TestProbePolicyInconclusiveOnOVS(t *testing.T) {
	e, _ := engineFor(switchsim.OVS())
	res, err := ProbePolicy(e, PolicyOptions{CacheSize: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Inconclusive {
		t.Fatalf("expected inconclusive on a microflow switch, got %v", res.Policy)
	}
}

func TestProbePolicyBadCacheSize(t *testing.T) {
	e, _ := engineFor(switchsim.OVS())
	if _, err := ProbePolicy(e, PolicyOptions{}); err != ErrBadCacheSize {
		t.Fatalf("err = %v, want ErrBadCacheSize", err)
	}
}

func TestDetectMicroflowCaching(t *testing.T) {
	e, _ := engineFor(switchsim.OVS())
	ovs, ratio, err := DetectMicroflowCaching(e, 99, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !ovs {
		t.Fatalf("OVS not detected as microflow (ratio %.2f)", ratio)
	}
	e2, _ := engineFor(switchsim.Switch2())
	hw, _, err := DetectMicroflowCaching(e2, 99, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hw {
		t.Fatal("TCAM-only switch misdetected as microflow")
	}
}

func TestMeasureCostsHardware(t *testing.T) {
	e, sw := engineFor(switchsim.Switch1())
	card, err := MeasureCosts(e, "Switch#1", CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	costs := sw.Profile().Costs
	// Same-priority adds near AddBase.
	if r := float64(card.AddSamePriority) / float64(costs.AddBase); r < 0.7 || r > 1.4 {
		t.Fatalf("AddSamePriority %v vs true %v", card.AddSamePriority, costs.AddBase)
	}
	// Ascending adds near AddBase + priority delta.
	wantAsc := costs.AddBase + costs.AddPriorityDelta
	if r := float64(card.AddNewPriority) / float64(wantAsc); r < 0.7 || r > 1.4 {
		t.Fatalf("AddNewPriority %v vs true %v", card.AddNewPriority, wantAsc)
	}
	// Shift slope near ShiftUnit.
	if r := float64(card.ShiftPerEntry) / float64(costs.ShiftUnit); r < 0.5 || r > 2.0 {
		t.Fatalf("ShiftPerEntry %v vs true %v", card.ShiftPerEntry, costs.ShiftUnit)
	}
	// Mod / Del near calibration.
	if r := float64(card.Mod) / float64(costs.ModBase); r < 0.8 || r > 1.25 {
		t.Fatalf("Mod %v vs true %v", card.Mod, costs.ModBase)
	}
	if r := float64(card.Del) / float64(costs.DelBase); r < 0.8 || r > 1.25 {
		t.Fatalf("Del %v vs true %v", card.Del, costs.DelBase)
	}
	// The card must leave the switch clean.
	tcam, _, software := sw.RuleCount()
	if tcam != 0 || software != 0 {
		t.Fatalf("residue after MeasureCosts: %d/%d", tcam, software)
	}
}

func TestMeasureCostsOVSFlat(t *testing.T) {
	e, _ := engineFor(switchsim.OVS())
	card, err := MeasureCosts(e, "OVS", CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if card.ShiftPerEntry > card.AddSamePriority/10 {
		t.Fatalf("OVS shift cost %v should be negligible next to %v", card.ShiftPerEntry, card.AddSamePriority)
	}
	// Priority-independent: same vs new priority within 30%.
	r := float64(card.AddNewPriority) / float64(card.AddSamePriority)
	if r < 0.7 || r > 1.3 {
		t.Fatalf("OVS priority sensitivity: same=%v new=%v", card.AddSamePriority, card.AddNewPriority)
	}
}

func TestMeasurePriorityCurves(t *testing.T) {
	e, sw := engineFor(switchsim.Switch1())
	curves, err := MeasurePriorityCurves(e, CurveOptions{Counts: []int{100, 400}})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("orders = %d", len(curves))
	}
	// Shape: same < ascending < random < descending at the larger count.
	last := func(o pattern.Order) time.Duration { return curves[o][1].Total }
	same, asc := last(pattern.OrderSame), last(pattern.OrderAscending)
	rnd, desc := last(pattern.OrderRandom), last(pattern.OrderDescending)
	if !(same < asc && asc < rnd && rnd < desc) {
		t.Fatalf("curve order violated: same=%v asc=%v rnd=%v desc=%v", same, asc, rnd, desc)
	}
	// Curves are monotone in n.
	for o, pts := range curves {
		if pts[0].N != 100 || pts[1].N != 400 {
			t.Fatalf("%v counts = %+v", o, pts)
		}
		if pts[0].Total >= pts[1].Total {
			t.Fatalf("%v not monotone: %+v", o, pts)
		}
	}
	// The device is restored between runs.
	tcam, _, software := sw.RuleCount()
	if tcam != 0 || software != 0 {
		t.Fatalf("residue: %d/%d", tcam, software)
	}
}

func TestMeasurePriorityCurvesOVSFlat(t *testing.T) {
	e, _ := engineFor(switchsim.OVS())
	curves, err := MeasurePriorityCurves(e, CurveOptions{Counts: []int{300}})
	if err != nil {
		t.Fatal(err)
	}
	asc := curves[pattern.OrderAscending][0].Total.Seconds()
	desc := curves[pattern.OrderDescending][0].Total.Seconds()
	if r := desc / asc; r > 1.2 || r < 0.8 {
		t.Fatalf("OVS curves not flat: asc=%v desc=%v", asc, desc)
	}
}

func TestProbeSizesThreeTierBanks(t *testing.T) {
	// The Figure 5 switch: two fast TCAM banks (1024 + 1023 entries after
	// the default route) above a software table. Size probing must resolve
	// all three layers.
	p := switchsim.FigureFiveSwitch()
	p.SoftwareCapacity = 3072
	e, _ := engineFor(p, switchsim.WithDefaultRoute())
	res, err := ProbeSizes(e, SizeOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("levels = %v, want 3 (two banks + software)", res)
	}
	if got := res.Levels[0].Census; got != 1024 {
		t.Errorf("fast bank census = %d, want 1024", got)
	}
	// The priority-0 default route sorts to the bottom of the TCAM, i.e.
	// into the second bank, so probe rules see 1022 slots there.
	if got := res.Levels[1].Census; got != 1022 {
		t.Errorf("second bank census = %d, want 1022 (default route occupies a second-bank slot)", got)
	}
	if e := relErr(res.Levels[0].Size, 1024); e > 0.05 {
		t.Errorf("fast bank estimate %d off by %.1f%%", res.Levels[0].Size, e*100)
	}
}

func TestProbePolicyCustomComposites(t *testing.T) {
	// LEX composites beyond the named policies: the recursion must walk
	// each prefix correctly and stop at the serial attribute.
	cases := []switchsim.Policy{
		// Keep the heaviest flows, oldest first among equals.
		{Keys: []switchsim.SortKey{
			{Attr: switchsim.AttrTraffic, HighIsBetter: true},
			{Attr: switchsim.AttrInsertion, HighIsBetter: false},
		}},
		// Keep the lowest-priority flows (an inverted-priority oddball),
		// most recent among equals.
		{Keys: []switchsim.SortKey{
			{Attr: switchsim.AttrPriority, HighIsBetter: false},
			{Attr: switchsim.AttrUseTime, HighIsBetter: true},
		}},
	}
	for i, want := range cases {
		e, _ := engineFor(switchsim.TestSwitch(80, want))
		res, err := ProbePolicy(e, PolicyOptions{CacheSize: 80, Seed: int64(10 + i)})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !res.Policy.Equal(want) {
			t.Errorf("case %d: inferred %v, want %v (rounds %+v)", i, res.Policy, want, res.Rounds)
		}
	}
}
