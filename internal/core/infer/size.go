// Package infer implements Tango's switch inference engine (§5): flow-table
// size probing (Algorithm 1), cache-replacement policy probing
// (Algorithm 2), and control-channel cost fitting. All inference works
// purely through the probing engine's Device interface — standard OpenFlow
// commands plus data traffic — never through privileged knowledge of the
// switch, which is the paper's core premise.
package infer

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tango/internal/cluster"
	"tango/internal/core/probe"
	"tango/internal/stats"
	"tango/internal/switchsim"
)

// SizeOptions tunes ProbeSizes. The zero value selects sensible defaults.
type SizeOptions struct {
	// Priority used for every probe rule; one shared priority avoids
	// confounding the measurements with TCAM shift costs. Zero means 1000.
	Priority uint16
	// MaxRules caps the doubling phase. Software tables are "virtually
	// unlimited", so a switch that never rejects would otherwise absorb an
	// unbounded probing budget; reaching the cap is reported via
	// SizeResult.CacheFull=false. Zero means 16384.
	MaxRules int
	// Trials fixes k, the number of sampling trials per cache level. Zero
	// selects an adaptive budget: trials continue until roughly 6×m probe
	// packets have been spent on the level, which puts the estimator's
	// standard error within the paper's 5%-of-actual accuracy bound for
	// level fractions down to ~15% of m.
	Trials int
	// Seed fixes the sampling RNG.
	Seed int64
	// FlowIDBase offsets probe flow IDs so repeated inferences against one
	// switch use fresh flows.
	FlowIDBase uint32
}

func (o SizeOptions) withDefaults() SizeOptions {
	if o.Priority == 0 {
		o.Priority = 1000
	}
	if o.MaxRules == 0 {
		o.MaxRules = 16384
	}
	return o
}

// LevelEstimate describes one inferred flow-table layer.
type LevelEstimate struct {
	// MeanRTT is the layer's mean observed round-trip time.
	MeanRTT time.Duration
	// Size is the estimated number of entries resident in the layer, from
	// the negative-binomial sampling experiment.
	Size int
	// Census is the number of installed rules whose stage-2 RTT fell in
	// this layer's cluster — an exact membership count at probe time and
	// usually the tighter estimate. The ablation benchmarks compare the
	// two estimators.
	Census int
}

// SizeResult is the outcome of Algorithm 1.
type SizeResult struct {
	// Levels are the inferred layers, fastest first.
	Levels []LevelEstimate
	// RulesInstalled is m, the number of probe rules installed.
	RulesInstalled int
	// ProbesSent counts data-plane packets used.
	ProbesSent int
	// CacheFull reports whether the switch rejected an installation (true)
	// or the MaxRules budget stopped the doubling (false). When false the
	// deepest layer's size is a lower bound, not an estimate.
	CacheFull bool
	// Clusters are the raw RTT tiers found.
	Clusters []cluster.Cluster
}

// ErrNoRules is returned when not even one rule could be installed.
var ErrNoRules = errors.New("infer: could not install any rules")

// ProbeSizes runs Algorithm 1 (Size Probing) against the engine's device:
//
//  1. Double the number of installed rules (sending one matching packet per
//     rule so traffic-driven caches allocate every slot) until the switch
//     rejects an installation or the budget is exhausted.
//  2. Measure one RTT per installed rule and cluster the samples; each
//     cluster is one flow-table layer.
//  3. For every layer, estimate its size with the negative-binomial
//     sampling experiment: repeatedly pick uniform random rules and count
//     consecutive picks whose RTT stays inside the layer's cluster; the MLE
//     p̂ = Σx/(k+Σx) gives the layer's fraction of the m installed rules.
//
// The procedure is asymptotically optimal: O(n) rule installations in
// O(log n) batches and O(n) probe packets (§5.2).
func ProbeSizes(e *probe.Engine, opts SizeOptions) (*SizeResult, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &SizeResult{}
	tr := e.Tracer()
	sizeStart := e.Device().Now()

	// Stage 1: doubling installation. Over a pipelined channel each round's
	// installs go out as one batch behind shared barriers, then every new
	// rule gets its allocation packet — the packets only drive traffic-led
	// cache placement, so they need not interleave with the installs.
	// Serial devices keep the install/probe interleave, which leaves
	// emulator runs (virtual clock, one shared RNG stream) byte-identical
	// to the pre-pipelining engine. Measurement probes (stages 2 and 3) are
	// strictly serial on every device: each RTT classifies a rule into a
	// latency tier, and pipelining them would fold queueing delay into the
	// very signal being clustered.
	installed := 0
	pipelined := e.Pipelined()
	var roundIDs []uint32
	for target := 1; !res.CacheFull && installed < opts.MaxRules; target *= 2 {
		if target > opts.MaxRules {
			target = opts.MaxRules
		}
		roundStart := e.Device().Now()
		if pipelined {
			roundIDs = roundIDs[:0]
			for i := installed; i < target; i++ {
				roundIDs = append(roundIDs, opts.FlowIDBase+uint32(i))
			}
			roundBase := installed
			n, err := e.InstallBatch(roundIDs, opts.Priority)
			installed += n
			if err != nil {
				// Only a genuine capacity rejection terminates the doubling;
				// anything else (channel fault) is a real failure the caller
				// must see.
				if !errors.Is(err, switchsim.ErrTableFull) {
					return nil, fmt.Errorf("infer: install rule %d: %w", installed, err)
				}
				res.CacheFull = true
			}
			for i := roundBase; i < installed; i++ {
				if _, _, err := e.Probe(opts.FlowIDBase + uint32(i)); err != nil {
					return nil, err
				}
				res.ProbesSent++
			}
		} else {
			for i := installed; i < target; i++ {
				if err := e.Install(opts.FlowIDBase+uint32(i), opts.Priority); err != nil {
					// Only a genuine capacity rejection terminates the doubling;
					// anything else (channel fault, exhausted retries) is a real
					// failure the caller must see.
					if !errors.Is(err, switchsim.ErrTableFull) {
						return nil, fmt.Errorf("infer: install rule %d: %w", i, err)
					}
					res.CacheFull = true
					break
				}
				installed++
				if _, _, err := e.Probe(opts.FlowIDBase + uint32(i)); err != nil {
					return nil, err
				}
				res.ProbesSent++
			}
		}
		if tr != nil {
			tr.Record("probe.round", "", roundStart, e.Device().Now().Sub(roundStart),
				map[string]any{"target": target, "installed": installed, "full": res.CacheFull})
		}
	}
	if installed == 0 {
		return nil, ErrNoRules
	}
	m := installed
	res.RulesInstalled = m

	// Stage 2: one RTT sample per rule, in random order, then cluster.
	rtts := make([]float64, m)
	for _, i := range rng.Perm(m) {
		rtt, _, err := e.Probe(opts.FlowIDBase + uint32(i))
		if err != nil {
			return nil, err
		}
		res.ProbesSent++
		rtts[i] = float64(rtt)
	}
	cl, err := cluster.Find(rtts, cluster.Options{})
	if err != nil {
		return nil, err
	}
	res.Clusters = cl.Clusters

	// With a single tier everything fits in one layer and the estimate is m
	// itself (sampling would degenerate to p̂→1 with capped runs), so the
	// sampling stage — thousands of probes whose outcome is ignored — is
	// skipped entirely.
	if len(cl.Clusters) == 1 {
		res.Levels = append(res.Levels, LevelEstimate{
			MeanRTT: time.Duration(cl.Clusters[0].Mean),
			Size:    m,
			Census:  cl.Clusters[0].Count,
		})
		if tr != nil {
			tr.Record("infer.size", "", sizeStart, e.Device().Now().Sub(sizeStart),
				map[string]any{"rules": m, "levels": 1, "probes": res.ProbesSent, "full": res.CacheFull})
		}
		return res, nil
	}

	// Stage 3: negative-binomial sampling per level.
	for level := range cl.Clusters {
		levelStart := e.Device().Now()
		size, probes, err := estimateLevel(e, rng, opts, m, cl.Clusters, level)
		if err != nil {
			return nil, err
		}
		res.ProbesSent += probes
		res.Levels = append(res.Levels, LevelEstimate{
			MeanRTT: time.Duration(cl.Clusters[level].Mean),
			Size:    size,
			Census:  cl.Clusters[level].Count,
		})
		if tr != nil {
			tr.Record("infer.sample", "", levelStart, e.Device().Now().Sub(levelStart),
				map[string]any{"level": level, "size": size, "probes": probes})
		}
	}
	if tr != nil {
		tr.Record("infer.size", "", sizeStart, e.Device().Now().Sub(sizeStart),
			map[string]any{"rules": m, "levels": len(res.Levels), "probes": res.ProbesSent, "full": res.CacheFull})
	}
	return res, nil
}

// estimateLevel runs the per-level sampling experiment of Algorithm 1,
// returning the size estimate and the number of probes consumed.
func estimateLevel(e *probe.Engine, rng *rand.Rand, opts SizeOptions, m int, clusters []cluster.Cluster, level int) (int, int, error) {
	slack := clusterSlack(clusters, level)
	targetProbes := 6 * m
	if targetProbes < 3000 {
		targetProbes = 3000
	}
	// Only the MLE's sufficient statistics (trial count and total run
	// length) are kept; the per-trial slice would be thousands of entries
	// of pure append traffic.
	trialK, trialSum := 0, 0
	probes := 0
	for {
		if opts.Trials > 0 {
			if trialK >= opts.Trials {
				break
			}
		} else if trialK >= 64 && probes >= targetProbes {
			break
		}
		j := 0
		for j < m {
			id := opts.FlowIDBase + uint32(rng.Intn(m))
			rtt, _, err := e.Probe(id)
			if err != nil {
				return 0, probes, err
			}
			probes++
			if !cluster.Within(clusters[level], float64(rtt), slack) {
				break
			}
			j++
		}
		trialK++
		trialSum += j
	}
	p, err := stats.NegBinomialMLESums(trialK, trialSum)
	if err != nil {
		return 0, probes, err
	}
	return int(float64(m)*p + 0.5), probes, nil
}

// clusterSlack widens a cluster's acceptance band to half the gap to its
// nearest neighbour, so fresh RTT draws from the same latency tier — which
// jitter can push slightly outside the originally observed min/max — still
// classify correctly.
func clusterSlack(clusters []cluster.Cluster, level int) float64 {
	c := clusters[level]
	slack := c.Mean * 0.25
	for i, o := range clusters {
		if i == level {
			continue
		}
		gap := o.Min - c.Max
		if o.Max < c.Min {
			gap = c.Min - o.Max
		}
		if gap > 0 && gap/2 < slack {
			slack = gap / 2
		}
	}
	return slack
}

// String renders the result compactly.
func (r *SizeResult) String() string {
	s := fmt.Sprintf("m=%d full=%v levels=[", r.RulesInstalled, r.CacheFull)
	for i, l := range r.Levels {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("{%v:%d}", l.MeanRTT.Round(10*time.Microsecond), l.Size)
	}
	return s + "]"
}
