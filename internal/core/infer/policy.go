package infer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tango/internal/cluster"
	"tango/internal/core/probe"
	"tango/internal/stats"
	"tango/internal/switchsim"
)

// PolicyOptions tunes ProbePolicy.
type PolicyOptions struct {
	// CacheSize is the inferred size of the cache layer under test (the
	// fastest level from ProbeSizes). Required.
	CacheSize int
	// BasePriority anchors the per-flow priority permutation. Zero means
	// 5000 (leaving room below for the permutation spread).
	BasePriority uint16
	// TrafficGap is the spacing between adjacent initialized traffic
	// counts. MONOTONE only requires differences "sufficiently large
	// (greater than 2)"; zero means 3.
	TrafficGap int
	// CorrThreshold is the minimum |correlation| for an attribute to be
	// accepted as a sort key. Zero means 0.4.
	CorrThreshold float64
	// MaxRounds bounds the LEX recursion. Zero means 4 (one per attribute).
	MaxRounds int
	// Seed fixes permutation generation.
	Seed int64
	// FlowIDBase offsets probe flow IDs; each round uses a fresh block.
	FlowIDBase uint32
}

func (o PolicyOptions) withDefaults() PolicyOptions {
	if o.BasePriority == 0 {
		o.BasePriority = 5000
	}
	if o.TrafficGap == 0 {
		o.TrafficGap = 3
	}
	if o.CorrThreshold == 0 {
		o.CorrThreshold = 0.4
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 4
	}
	if o.FlowIDBase == 0 {
		o.FlowIDBase = 1 << 20
	}
	return o
}

// Round records the diagnostics of one recursion round of Algorithm 2.
type Round struct {
	// Correlations maps attribute → Pearson correlation between the
	// attribute's initialized values and observed cache residency.
	Correlations map[switchsim.Attribute]float64
	// Chosen is the accepted sort key, if any.
	Chosen switchsim.SortKey
	// Accepted reports whether a key passed the threshold this round.
	Accepted bool
	// CachedCount is how many probe flows were observed in the cache.
	CachedCount int
}

// PolicyResult is the outcome of Algorithm 2.
type PolicyResult struct {
	// Policy is the inferred lexicographic cache policy.
	Policy switchsim.Policy
	// Rounds holds per-round diagnostics.
	Rounds []Round
	// Inconclusive is set when no attribute correlated with residency —
	// e.g. the cache admitted everything probed (an OVS-style microflow
	// cache) or residency looked random.
	Inconclusive bool
}

// ErrBadCacheSize rejects non-positive cache sizes.
var ErrBadCacheSize = errors.New("infer: cache size must be positive")

// serialAttrs are the attributes with unique per-flow values; once one is
// chosen the ordering is total and the recursion stops (line 27 of
// Algorithm 2).
var serialAttrs = map[switchsim.Attribute]bool{
	switchsim.AttrInsertion: true,
	switchsim.AttrUseTime:   true,
}

// ProbePolicy runs Algorithm 2 (Policy Probing): it installs 2×cacheSize
// flows whose attribute values are pairwise-decorrelated permutations,
// observes which flows the cache retained via RTT classification, picks the
// attribute correlating most strongly with residency, and recurses with
// that attribute held constant until a serial attribute terminates the
// lexicographic ordering.
func ProbePolicy(e *probe.Engine, opts PolicyOptions) (*PolicyResult, error) {
	opts = opts.withDefaults()
	if opts.CacheSize <= 0 {
		return nil, ErrBadCacheSize
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &PolicyResult{}
	fixed := map[switchsim.Attribute]bool{}

	for round := 0; round < opts.MaxRounds; round++ {
		base := opts.FlowIDBase + uint32(round)*uint32(16*opts.CacheSize+8192)
		var r *Round
		var err error
		if fixed[switchsim.AttrTraffic] {
			// Once traffic count is a fixed (constant) prefix key, every
			// measurement packet perturbs exactly that key: probing a
			// non-resident bumps its count above the field and promotes it,
			// evicting a resident before that resident is measured. The
			// correlation round would then be scored against corrupted
			// membership, so these rounds use hypothesis verification
			// instead: measure in each candidate ordering's keep-order —
			// under the true ordering residents are measured first as pure
			// cache hits (which never change membership) and non-residents
			// afterwards can no longer out-rank them, so only the correct
			// hypothesis produces a clean fast-then-slow step.
			r, err = verifyRound(e, opts, rng, base, fixed)
		} else {
			r, err = probeRound(e, opts, rng, base, fixed)
		}
		if err != nil {
			return nil, err
		}
		res.Rounds = append(res.Rounds, *r)
		if !r.Accepted {
			res.Inconclusive = len(res.Policy.Keys) == 0
			return res, nil
		}
		res.Policy.Keys = append(res.Policy.Keys, r.Chosen)
		fixed[r.Chosen.Attr] = true
		if serialAttrs[r.Chosen.Attr] {
			return res, nil
		}
		if len(fixed) == len(switchsim.Attributes) {
			return res, nil
		}
	}
	return res, nil
}

// probeRound performs one initialization + measurement + correlation round.
func probeRound(e *probe.Engine, opts PolicyOptions, rng *rand.Rand, flowBase uint32, fixed map[switchsim.Attribute]bool) (*Round, error) {
	s := 2 * opts.CacheSize

	// Pairwise-decorrelated value permutations for the free attributes.
	// Insertion order is the identity by construction; priority, traffic
	// and use-order get independent random permutations re-drawn until no
	// pair correlates above 0.15 — ensuring "no subset of flows satisfies
	// the half-above/half-below condition for more than one attribute".
	prioPerm, trafPerm, usePerm := decorrelatedPerms(rng, s)

	priorities := make([]uint16, s)
	for i := range priorities {
		if fixed[switchsim.AttrPriority] {
			priorities[i] = opts.BasePriority
		} else {
			priorities[i] = opts.BasePriority + uint16(prioPerm[i])
		}
	}

	// Install phase (insertion attribute = install order).
	for i := 0; i < s; i++ {
		if err := e.Install(flowBase+uint32(i), priorities[i]); err != nil {
			return nil, fmt.Errorf("infer: policy probe install %d: %w", i, err)
		}
	}

	// Traffic phase: counts spaced TrafficGap apart, sent in ascending
	// target order so the cache converges to the top-traffic flows under
	// frequency policies. Skipped when traffic is held constant.
	if !fixed[switchsim.AttrTraffic] {
		order := make([]int, s)
		for i := range order {
			order[i] = i
		}
		// Ascending target count == ascending trafPerm rank. Bursts go
		// through the engine's batched traffic path, which keeps the
		// quadratic total packet count affordable even for multi-thousand
		// entry caches.
		for _, i := range sortByRank(order, trafPerm) {
			count := opts.TrafficGap * (trafPerm[i] + 1)
			if err := e.SendTraffic(flowBase+uint32(i), count); err != nil {
				return nil, err
			}
		}
	}

	// Use-time phase: one packet per flow in usePerm order; the flow with
	// usePerm rank s-1 ends up most recently used.
	useRank := make([]int, s) // useRank[i] = recency rank of flow i
	orderByUse := make([]int, s)
	for i := 0; i < s; i++ {
		orderByUse[usePerm[i]] = i
	}
	for rank, i := range orderByUse {
		useRank[i] = rank
		if _, _, err := e.Probe(flowBase + uint32(i)); err != nil {
			return nil, err
		}
	}

	// Measurement phase: most-recently-used first, so each flow's
	// classification reflects the pre-measurement cache state.
	rtts := make([]float64, s)
	for rank := s - 1; rank >= 0; rank-- {
		i := orderByUse[rank]
		rtt, _, err := e.Probe(flowBase + uint32(i))
		if err != nil {
			return nil, err
		}
		rtts[i] = float64(rtt)
	}

	// Classify: the fastest RTT cluster is the cache under test.
	cl, err := cluster.Find(rtts, cluster.Options{})
	if err != nil {
		return nil, err
	}
	round := &Round{Correlations: map[switchsim.Attribute]float64{}}
	cached := make([]float64, s)
	if len(cl.Clusters) >= 2 {
		for i, a := range cl.Assignment {
			if a == 0 {
				cached[i] = 1
				round.CachedCount++
			}
		}
	} else {
		// One tier: nothing to discriminate (e.g. every probed flow was
		// admitted — microflow caching). Leave `cached` all-zero so no
		// attribute correlates.
		round.CachedCount = s
	}

	// Correlate each free attribute's value vector with residency.
	values := func(attr switchsim.Attribute) []float64 {
		v := make([]float64, s)
		for i := 0; i < s; i++ {
			switch attr {
			case switchsim.AttrInsertion:
				v[i] = float64(i)
			case switchsim.AttrUseTime:
				v[i] = float64(useRank[i])
			case switchsim.AttrTraffic:
				v[i] = float64(trafPerm[i])
			case switchsim.AttrPriority:
				v[i] = float64(prioPerm[i])
			}
		}
		return v
	}
	best := switchsim.SortKey{}
	bestCorr := 0.0
	for _, attr := range switchsim.Attributes {
		if fixed[attr] {
			continue
		}
		r, err := stats.Pearson(values(attr), cached)
		if err != nil {
			return nil, err
		}
		round.Correlations[attr] = r
		if math.Abs(r) > math.Abs(bestCorr) {
			bestCorr = r
			best = switchsim.SortKey{Attr: attr, HighIsBetter: r > 0}
		}
	}
	if math.Abs(bestCorr) >= opts.CorrThreshold {
		round.Chosen = best
		round.Accepted = true
	}

	// Cleanup: remove this round's probe rules so the next round starts
	// from a clean cache.
	for i := 0; i < s; i++ {
		_ = e.Delete(flowBase+uint32(i), priorities[i])
	}
	return round, nil
}

// verifyRound tests every remaining (attribute, direction) hypothesis by
// re-initializing the probe flows and measuring them in the hypothesis's
// keep-order. The accuracy of the predicted fast/slow step scores the
// hypothesis; the best one wins if it clears the acceptance threshold.
func verifyRound(e *probe.Engine, opts PolicyOptions, rng *rand.Rand, flowBase uint32, fixed map[switchsim.Attribute]bool) (*Round, error) {
	s := 2 * opts.CacheSize
	n := opts.CacheSize
	round := &Round{Correlations: map[switchsim.Attribute]float64{}}
	best := switchsim.SortKey{}
	bestScore := -1.0
	sub := uint32(0)
	for _, attr := range switchsim.Attributes {
		if fixed[attr] {
			continue
		}
		for _, high := range []bool{true, false} {
			base := flowBase + sub*uint32(2*s+256)
			sub++
			score, err := verifyHypothesis(e, opts, rng, base, fixed,
				switchsim.SortKey{Attr: attr, HighIsBetter: high})
			if err != nil {
				return nil, err
			}
			// Record the better-direction score per attribute, signed by
			// direction so diagnostics read like a correlation.
			signed := score
			if !high {
				signed = -score
			}
			if abs := score; abs > absFloat(round.Correlations[attr]) {
				round.Correlations[attr] = signed
			}
			if score > bestScore {
				bestScore = score
				best = switchsim.SortKey{Attr: attr, HighIsBetter: high}
			}
		}
	}
	round.CachedCount = n
	// A correct hypothesis yields a near-perfect step; anything close to
	// coin-flip accuracy means no remaining attribute explains residency.
	if bestScore >= 0.8 {
		round.Chosen = best
		round.Accepted = true
	}
	return round, nil
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// verifyHypothesis initializes one fresh flow block (fixed attributes held
// constant, free attributes decorrelated as in the correlation round),
// measures the flows in the hypothesis keep-order, and returns the fraction
// of flows whose observed tier matches the hypothesis's prediction.
func verifyHypothesis(e *probe.Engine, opts PolicyOptions, rng *rand.Rand, flowBase uint32, fixed map[switchsim.Attribute]bool, hyp switchsim.SortKey) (float64, error) {
	s := 2 * opts.CacheSize
	n := opts.CacheSize
	prioPerm, trafPerm, usePerm := decorrelatedPerms(rng, s)

	priorities := make([]uint16, s)
	for i := range priorities {
		if fixed[switchsim.AttrPriority] {
			priorities[i] = opts.BasePriority
		} else {
			priorities[i] = opts.BasePriority + uint16(prioPerm[i])
		}
	}
	for i := 0; i < s; i++ {
		if err := e.Install(flowBase+uint32(i), priorities[i]); err != nil {
			return 0, fmt.Errorf("infer: verify install %d: %w", i, err)
		}
	}
	if !fixed[switchsim.AttrTraffic] {
		order := make([]int, s)
		for i := range order {
			order[i] = i
		}
		for _, i := range sortByRank(order, trafPerm) {
			if err := e.SendTraffic(flowBase+uint32(i), opts.TrafficGap*(trafPerm[i]+1)); err != nil {
				return 0, err
			}
		}
	}
	orderByUse := make([]int, s)
	for i := 0; i < s; i++ {
		orderByUse[usePerm[i]] = i
	}
	for _, i := range orderByUse {
		if _, _, err := e.Probe(flowBase + uint32(i)); err != nil {
			return 0, err
		}
	}

	// Hypothesis value per flow.
	value := func(i int) float64 {
		switch hyp.Attr {
		case switchsim.AttrInsertion:
			return float64(i)
		case switchsim.AttrUseTime:
			return float64(usePerm[i])
		case switchsim.AttrTraffic:
			return float64(trafPerm[i])
		default:
			return float64(prioPerm[i])
		}
	}
	// Keep-order: best-kept first.
	order := make([]int, s)
	for i := range order {
		order[i] = i
	}
	sortBy(order, func(a, b int) bool {
		if hyp.HighIsBetter {
			return value(a) > value(b)
		}
		return value(a) < value(b)
	})

	rtts := make([]float64, s)
	for _, i := range order {
		rtt, _, err := e.Probe(flowBase + uint32(i))
		if err != nil {
			return 0, err
		}
		rtts[i] = float64(rtt)
	}
	for i := 0; i < s; i++ {
		_ = e.Delete(flowBase+uint32(i), priorities[i])
	}

	cl, err := cluster.Find(rtts, cluster.Options{})
	if err != nil {
		return 0, err
	}
	if len(cl.Clusters) < 2 {
		return 0, nil // indistinguishable tiers: hypothesis unverifiable
	}
	correct := 0
	for rank, i := range order {
		predictedFast := rank < n
		observedFast := cl.Assignment[i] == 0
		if predictedFast == observedFast {
			correct++
		}
	}
	return float64(correct) / float64(s), nil
}

// sortBy is a small insertion sort over ints with a custom less.
func sortBy(xs []int, less func(a, b int) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// decorrelatedPerms draws three permutations of [0,s) whose pairwise
// correlations (including with the identity) stay below 0.15.
func decorrelatedPerms(rng *rand.Rand, s int) (prio, traf, use []int) {
	identity := make([]float64, s)
	for i := range identity {
		identity[i] = float64(i)
	}
	draw := func(existing ...[]int) []int {
		for attempt := 0; attempt < 200; attempt++ {
			p := rng.Perm(s)
			pf := make([]float64, s)
			for i, v := range p {
				pf[i] = float64(v)
			}
			ok := true
			if r, _ := stats.Pearson(identity, pf); math.Abs(r) > 0.15 {
				ok = false
			}
			for _, ex := range existing {
				ef := make([]float64, s)
				for i, v := range ex {
					ef[i] = float64(v)
				}
				if r, _ := stats.Pearson(ef, pf); math.Abs(r) > 0.15 {
					ok = false
					break
				}
			}
			if ok {
				return p
			}
		}
		// Statistically unreachable for s ≥ 16; fall back to the last draw.
		return rng.Perm(s)
	}
	prio = draw()
	traf = draw(prio)
	use = draw(prio, traf)
	return prio, traf, use
}

// sortByRank returns idxs sorted ascending by rank[idx].
func sortByRank(idxs []int, rank []int) []int {
	out := append([]int(nil), idxs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && rank[out[j]] < rank[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// InitPattern is the post-initialization attribute state Algorithm 2 sets
// up — what Figure 6 of the paper visualises for a cache of size 100.
// Index i is the i-th installed flow.
type InitPattern struct {
	Insertion []int // installation order (identity)
	Use       []int // recency rank after the use-time pass
	Priority  []int // priority permutation value
	Traffic   []int // initialized packet count
}

// InitializationPattern returns the attribute initialization the policy
// probe would use for the given cache size and seed, for inspection and
// plotting without touching a switch.
func InitializationPattern(cacheSize int, seed int64) InitPattern {
	opts := PolicyOptions{CacheSize: cacheSize, Seed: seed}.withDefaults()
	s := 2 * cacheSize
	rng := rand.New(rand.NewSource(opts.Seed))
	prio, traf, use := decorrelatedPerms(rng, s)
	p := InitPattern{
		Insertion: make([]int, s),
		Use:       make([]int, s),
		Priority:  make([]int, s),
		Traffic:   make([]int, s),
	}
	for i := 0; i < s; i++ {
		p.Insertion[i] = i
		p.Use[i] = use[i]
		p.Priority[i] = prio[i]
		p.Traffic[i] = opts.TrafficGap * (traf[i] + 1)
	}
	return p
}

// DetectMicroflowCaching reports whether the switch exhibits traffic-driven
// exact-match caching (the OVS behaviour of Figure 2(a)): a freshly
// installed flow's first packet is markedly slower than its second, because
// the first packet takes the user-space slow path and installs the kernel
// microflow entry. Several fresh flows are sampled and medians compared so
// a single jittery RTT draw cannot flip the verdict. The median
// first-to-second RTT ratio is returned for diagnostics.
func DetectMicroflowCaching(e *probe.Engine, flowIDBase uint32, priority uint16) (bool, float64, error) {
	const samples = 7
	firsts := make([]float64, 0, samples)
	seconds := make([]float64, 0, samples)
	for i := uint32(0); i < samples; i++ {
		id := flowIDBase + i
		if err := e.Install(id, priority); err != nil {
			return false, 0, err
		}
		first, _, err := e.Probe(id)
		if err != nil {
			return false, 0, err
		}
		second, _, err := e.Probe(id)
		if err != nil {
			return false, 0, err
		}
		_ = e.Delete(id, priority)
		firsts = append(firsts, float64(first))
		seconds = append(seconds, float64(second))
	}
	mf, err := stats.Median(firsts)
	if err != nil {
		return false, 0, err
	}
	ms, err := stats.Median(seconds)
	if err != nil || ms == 0 {
		return false, 0, err
	}
	ratio := mf / ms
	return ratio > 1.25, ratio, nil
}
