package infer

import (
	"time"

	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/stats"
)

// CostOptions tunes MeasureCosts.
type CostOptions struct {
	// Samples is the number of operations timed per cost class. Zero
	// means 128.
	Samples int
	// BasePriority anchors the priority ranges used. Zero means 20000.
	BasePriority uint16
	// FlowIDBase offsets probe flow IDs. Zero means 3<<20.
	FlowIDBase uint32
}

func (o CostOptions) withDefaults() CostOptions {
	if o.Samples == 0 {
		o.Samples = 128
	}
	if o.BasePriority == 0 {
		o.BasePriority = 20000
	}
	if o.FlowIDBase == 0 {
		o.FlowIDBase = 3 << 20
	}
	return o
}

// MeasureCosts fits a control-channel ScoreCard for the device by timing
// four rewriting patterns:
//
//   - same-priority adds          → AddSamePriority
//   - ascending-priority adds     → AddNewPriority (no shifts by design)
//   - descending-priority adds    → ShiftPerEntry (slope of per-op latency
//     against the number of higher-priority entries already present)
//   - modify and delete sweeps    → Mod, Del
//
// All rules are installed under a dedicated flow-ID block and removed
// afterwards. The card is the scheduler's cost oracle; its quality is what
// turns "Tango patterns" into installation-time wins (§6, §7).
func MeasureCosts(e *probe.Engine, switchName string, opts CostOptions) (*pattern.ScoreCard, error) {
	opts = opts.withDefaults()
	n := opts.Samples
	card := &pattern.ScoreCard{SwitchName: switchName, PriorityCurves: map[pattern.Order][]pattern.CurvePoint{}}

	// Phase 1: same-priority adds.
	base := opts.FlowIDBase
	sameOps := make([]pattern.Op, n)
	for i := range sameOps {
		sameOps[i] = pattern.Op{Kind: pattern.OpAdd, FlowID: base + uint32(i), Priority: opts.BasePriority}
	}
	res, err := e.Run(pattern.Pattern{Name: "cost/same", Ops: sameOps})
	if err != nil {
		return nil, err
	}
	// Skip the first op: it may pay the new-priority-band cost.
	card.AddSamePriority = meanLatency(res.Ops[1:])

	// Phase 2: modify sweep over the same rules.
	modOps := make([]pattern.Op, n)
	for i := range modOps {
		modOps[i] = pattern.Op{Kind: pattern.OpMod, FlowID: base + uint32(i), Priority: opts.BasePriority}
	}
	if res, err = e.Run(pattern.Pattern{Name: "cost/mod", Ops: modOps}); err != nil {
		return nil, err
	}
	card.Mod = meanLatency(res.Ops)

	// Phase 3: delete sweep.
	delOps := make([]pattern.Op, n)
	for i := range delOps {
		delOps[i] = pattern.Op{Kind: pattern.OpDel, FlowID: base + uint32(i), Priority: opts.BasePriority}
	}
	if res, err = e.Run(pattern.Pattern{Name: "cost/del", Ops: delOps}); err != nil {
		return nil, err
	}
	card.Del = meanLatency(res.Ops)

	// Phase 4: ascending-priority adds — every add tops the table, so no
	// higher-priority entries exist and the per-op cost is the clean
	// new-priority baseline.
	base += uint32(n)
	ascOps := make([]pattern.Op, n)
	for i := range ascOps {
		ascOps[i] = pattern.Op{Kind: pattern.OpAdd, FlowID: base + uint32(i), Priority: opts.BasePriority + 1 + uint16(i)}
	}
	if res, err = e.Run(pattern.Pattern{Name: "cost/asc", Ops: ascOps}); err != nil {
		return nil, err
	}
	card.AddNewPriority = meanLatency(res.Ops)
	for i := range ascOps {
		_ = e.Delete(base+uint32(i), ascOps[i].Priority)
	}

	// Phase 5: descending-priority adds — op i sees i higher-priority
	// entries; the latency slope over i is the per-entry shift cost.
	base += uint32(n)
	descOps := make([]pattern.Op, n)
	for i := range descOps {
		descOps[i] = pattern.Op{Kind: pattern.OpAdd, FlowID: base + uint32(i), Priority: opts.BasePriority - 1 - uint16(i)}
	}
	if res, err = e.Run(pattern.Pattern{Name: "cost/desc", Ops: descOps}); err != nil {
		return nil, err
	}
	xs := make([]float64, len(res.Ops))
	ys := make([]float64, len(res.Ops))
	for i, ot := range res.Ops {
		xs[i] = float64(i)
		ys[i] = float64(ot.Latency)
	}
	if _, slope, err := stats.LinearFit(xs, ys); err == nil && slope > 0 {
		card.ShiftPerEntry = time.Duration(slope)
	}
	for i := range descOps {
		_ = e.Delete(base+uint32(i), descOps[i].Priority)
	}

	// Phase 6: alternating add/delete pairs expose the batching effect —
	// the per-op surcharge agents pay when the operation class changes.
	base += uint32(n)
	altOps := make([]pattern.Op, 0, 2*n)
	for i := 0; i < n; i++ {
		altOps = append(altOps,
			pattern.Op{Kind: pattern.OpAdd, FlowID: base + uint32(i), Priority: opts.BasePriority},
			pattern.Op{Kind: pattern.OpDel, FlowID: base + uint32(i), Priority: opts.BasePriority},
		)
	}
	if res, err = e.Run(pattern.Pattern{Name: "cost/alternate", Ops: altOps}); err != nil {
		return nil, err
	}
	perOp := meanLatency(res.Ops[1:])
	flat := (card.AddSamePriority + card.Del) / 2
	if perOp > flat {
		card.TypeSwitch = perOp - flat
	}
	return card, nil
}

// meanLatency averages op latencies.
func meanLatency(ops []pattern.OpTiming) time.Duration {
	if len(ops) == 0 {
		return 0
	}
	var sum time.Duration
	for _, o := range ops {
		sum += o.Latency
	}
	return sum / time.Duration(len(ops))
}
