package infer

import (
	"math/rand"

	"tango/internal/core/pattern"
	"tango/internal/core/probe"
)

// CurveOptions tunes MeasurePriorityCurves.
type CurveOptions struct {
	// Counts are the rule counts to measure; zero-length selects a small
	// default sweep. Every count must fit the device's total capacity.
	Counts []int
	// Orders are the priority orderings to measure; zero-length selects
	// all four.
	Orders []pattern.Order
	// Seed drives the random ordering.
	Seed int64
	// FlowIDBase offsets probe flow IDs. Zero means 5<<20.
	FlowIDBase uint32
}

func (o CurveOptions) withDefaults() CurveOptions {
	if len(o.Counts) == 0 {
		o.Counts = []int{50, 200, 500, 1000}
	}
	if len(o.Orders) == 0 {
		o.Orders = pattern.Orders
	}
	if o.FlowIDBase == 0 {
		o.FlowIDBase = 5 << 20
	}
	return o
}

// MeasurePriorityCurves measures the total installation time of n fresh
// rules under each priority ordering, for each n in Counts — the probing
// pattern behind Figure 3(c) and the source of the score database's
// PriorityCurves. The device's tables are restored between runs by
// deleting the installed rules, so a single (initially empty) device
// serves the whole sweep.
func MeasurePriorityCurves(e *probe.Engine, opts CurveOptions) (map[pattern.Order][]pattern.CurvePoint, error) {
	opts = opts.withDefaults()
	out := make(map[pattern.Order][]pattern.CurvePoint, len(opts.Orders))
	maxN := -1 // largest count known to fit; -1 = unknown
	for _, order := range opts.Orders {
		for _, n := range opts.Counts {
			if maxN >= 0 && n > maxN {
				continue // exceeded device capacity in an earlier order
			}
			rng := rand.New(rand.NewSource(opts.Seed + int64(n)))
			p := pattern.PriorityInstall(n, order, rng)
			// Rebase flow IDs into the dedicated block.
			ops := make([]pattern.Op, len(p.Ops))
			for i, op := range p.Ops {
				op.FlowID += opts.FlowIDBase
				ops[i] = op
			}
			total, err := e.TimeOps(ops)
			// Restore the device before judging the outcome (deletes of
			// never-installed rules are no-ops).
			for _, op := range ops {
				_ = e.Delete(op.FlowID, op.Priority)
			}
			if err != nil {
				// Count exceeds the device's capacity: clamp the sweep and
				// keep the measurements that fit.
				maxN = n - 1
				continue
			}
			out[order] = append(out[order], pattern.CurvePoint{N: n, Total: total})
		}
	}
	return out, nil
}
