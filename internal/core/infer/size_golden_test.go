package infer

import (
	"testing"

	"tango/internal/switchsim"
)

// TestProbeSizesGolden pins Algorithm 1 end to end: with the switch and the
// probe RNG both seeded, the inferred layer sizes are exact integers, not
// tolerance bands. These values were captured from a known-good run; a
// change means size inference (clustering, sampling, or the MLE) changed
// behaviour, not just noise.
func TestProbeSizesGolden(t *testing.T) {
	// bounded gives the test-switch hierarchy a small software table so the
	// doubling phase terminates on a genuine table-full in milliseconds.
	bounded := func(cache int, pol switchsim.Policy, soft int) switchsim.Profile {
		p := switchsim.TestSwitch(cache, pol)
		p.SoftwareCapacity = soft
		return p
	}
	cases := []struct {
		name      string
		profile   switchsim.Profile
		probeSeed int64
		want      []int
	}{
		// One TCAM layer, hard rejection at 600: recovered exactly.
		{"switch2-tcam-600", switchsim.Switch2().WithTCAMCapacity(600), 41, []int{600}},
		// Cache + software hierarchies: both layer estimates pinned as-is.
		{"cache-128-fifo", bounded(128, switchsim.PolicyFIFO, 384), 42, []int{130, 382}},
		{"cache-96-lru", bounded(96, switchsim.PolicyLRU, 288), 43, []int{95, 288}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e, _ := engineFor(c.profile, switchsim.WithSeed(1))
			res, err := ProbeSizes(e, SizeOptions{Seed: c.probeSeed})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Levels) != len(c.want) {
				t.Fatalf("found %d levels, want %d (%+v)", len(res.Levels), len(c.want), res.Levels)
			}
			for i, want := range c.want {
				if res.Levels[i].Size != want {
					t.Errorf("level %d size = %d, want exactly %d", i, res.Levels[i].Size, want)
				}
			}
		})
	}
}
