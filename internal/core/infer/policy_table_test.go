package infer

import (
	"testing"

	"tango/internal/switchsim"
)

// key abbreviates sort-key construction for the tables below.
func key(a switchsim.Attribute, high bool) switchsim.SortKey {
	return switchsim.SortKey{Attr: a, HighIsBetter: high}
}

// TestProbePolicyConformance is the Algorithm 2 conformance table: for each
// ground-truth LEX composite — one, two, and three levels deep — the
// inference must recover the exact key sequence. Each case pins its own
// seed so a regression reports the precise composite that broke.
func TestProbePolicyConformance(t *testing.T) {
	cases := []struct {
		name      string
		policy    switchsim.Policy
		cacheSize int
		seed      int64
	}{
		// Single-attribute policies (serial attribute alone).
		{"fifo/insertion-low", switchsim.Policy{Keys: []switchsim.SortKey{
			key(switchsim.AttrInsertion, false),
		}}, 100, 101},
		{"lifo/insertion-high", switchsim.Policy{Keys: []switchsim.SortKey{
			key(switchsim.AttrInsertion, true),
		}}, 100, 102},
		{"lru/use-time-high", switchsim.Policy{Keys: []switchsim.SortKey{
			key(switchsim.AttrUseTime, true),
		}}, 100, 103},

		// Two-level composites: one comparable attribute, serial tiebreak.
		{"lfu/traffic-then-fifo", switchsim.Policy{Keys: []switchsim.SortKey{
			key(switchsim.AttrTraffic, true),
			key(switchsim.AttrInsertion, false),
		}}, 80, 104},
		{"prio-then-lru", switchsim.Policy{Keys: []switchsim.SortKey{
			key(switchsim.AttrPriority, true),
			key(switchsim.AttrUseTime, true),
		}}, 80, 105},
		{"inverted-prio-then-lifo", switchsim.Policy{Keys: []switchsim.SortKey{
			key(switchsim.AttrPriority, false),
			key(switchsim.AttrInsertion, true),
		}}, 80, 106},

		// Three-level composites: both comparable attributes, then serial.
		{"traffic-prio-fifo", switchsim.Policy{Keys: []switchsim.SortKey{
			key(switchsim.AttrTraffic, true),
			key(switchsim.AttrPriority, true),
			key(switchsim.AttrInsertion, false),
		}}, 80, 107},
		{"prio-traffic-lru", switchsim.Policy{Keys: []switchsim.SortKey{
			key(switchsim.AttrPriority, true),
			key(switchsim.AttrTraffic, true),
			key(switchsim.AttrUseTime, true),
		}}, 80, 108},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			e, _ := engineFor(switchsim.TestSwitch(c.cacheSize, c.policy))
			res, err := ProbePolicy(e, PolicyOptions{CacheSize: c.cacheSize, Seed: c.seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Inconclusive {
				t.Fatalf("inconclusive (rounds %+v)", res.Rounds)
			}
			if !res.Policy.Equal(c.policy) {
				t.Fatalf("inferred %v, want %v (rounds %+v)", res.Policy, c.policy, res.Rounds)
			}
		})
	}
}

// TestProbePolicyAmbiguousComposite covers the tie case: a configured policy
// that stops at a comparable attribute is observationally identical to the
// same policy completed with the emulator's implicit tiebreak (insertion,
// low-is-better — Better falls back to insertSeq ordering when every key
// compares equal). Algorithm 2 cannot and should not distinguish the two:
// it must return the completed canonical form.
func TestProbePolicyAmbiguousComposite(t *testing.T) {
	configured := switchsim.Policy{Keys: []switchsim.SortKey{
		key(switchsim.AttrTraffic, true), // no serial terminator
	}}
	canonical := switchsim.Policy{Keys: []switchsim.SortKey{
		key(switchsim.AttrTraffic, true),
		key(switchsim.AttrInsertion, false),
	}}
	e, _ := engineFor(switchsim.TestSwitch(80, configured))
	res, err := ProbePolicy(e, PolicyOptions{CacheSize: 80, Seed: 109})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Policy.Equal(canonical) {
		t.Fatalf("inferred %v, want the canonical completion %v (rounds %+v)",
			res.Policy, canonical, res.Rounds)
	}
}

// TestProbePolicyMicroflowInconclusive pins the other ambiguity outcome: on
// a switch whose "policy" is per-packet microflow caching (OVS), every
// composite hypothesis fails verification and Algorithm 2 must say so
// rather than guess.
func TestProbePolicyMicroflowInconclusive(t *testing.T) {
	e, _ := engineFor(switchsim.OVS())
	res, err := ProbePolicy(e, PolicyOptions{CacheSize: 64, Seed: 110})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Inconclusive {
		t.Fatalf("got %v, want inconclusive on a microflow cache", res.Policy)
	}
}
