package probe

import (
	"errors"
	"fmt"
	"time"
)

// Retry bounds the engine's recovery from transient control-channel
// failures (drops, injected timeouts, spurious overflow errors). The zero
// value disables retry: every operation gets exactly one attempt, matching
// the engine's historical behaviour on a perfect channel.
type Retry struct {
	// MaxAttempts is the total number of attempts per operation, including
	// the first; values <= 1 disable retry.
	MaxAttempts int
	// Backoff is the wait before the first retry, doubling on each
	// subsequent one. It is charged against the device clock when the
	// device can sleep (SimDevice advances virtual time; ofconn blocks).
	Backoff time.Duration
	// Deadline caps the total time (on the device clock) one operation may
	// spend retrying; 0 means no deadline.
	Deadline time.Duration
}

func (r Retry) enabled() bool { return r.MaxAttempts > 1 }

// DefaultRetry is a sensible hardening profile for faulty channels: up to
// five attempts with 2ms→32ms exponential backoff, bounded at two seconds
// per operation.
var DefaultRetry = Retry{MaxAttempts: 5, Backoff: 2 * time.Millisecond, Deadline: 2 * time.Second}

// ErrExhausted is the sentinel matched by errors.Is when an operation kept
// failing transiently until its retry budget (attempts or deadline) ran out.
var ErrExhausted = errors.New("probe: retry budget exhausted")

// ExhaustedError carries the detail behind ErrExhausted: which operation
// gave up, after how many attempts, and the last underlying failure.
type ExhaustedError struct {
	Op       string
	Attempts int
	Last     error
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("probe: %s gave up after %d attempts: %v", e.Op, e.Attempts, e.Last)
}

// Unwrap exposes the last underlying failure to errors.Is/As.
func (e *ExhaustedError) Unwrap() error { return e.Last }

// Is matches the ErrExhausted sentinel.
func (e *ExhaustedError) Is(target error) bool { return target == ErrExhausted }

// Transient reports whether err marks itself recoverable by retry. The
// convention is structural — any error in the chain exposing
// `Transient() bool` (internal/faults errors, ofconn timeouts) — so this
// package needs no dependency on the injector.
func Transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// sleep charges a backoff against the device clock when the device can
// sleep; devices without a clock to advance retry immediately.
func (e *Engine) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if s, ok := e.dev.(interface{ Sleep(time.Duration) }); ok {
		s.Sleep(d)
	}
}

// withRetry runs attempt, retrying transient failures under the engine's
// Retry policy. scrub, when non-nil, runs before each re-attempt to restore
// idempotence (e.g. strict-deleting a possibly-applied add). Non-transient
// errors pass through untouched; an exhausted budget returns an
// *ExhaustedError wrapping the last failure.
func (e *Engine) withRetry(op string, attempt func() error, scrub func()) error {
	err := attempt()
	if err == nil || !e.Retry.enabled() || !Transient(err) {
		return err
	}
	start := e.dev.Now()
	backoff := e.Retry.Backoff
	attempts := 1
	for attempts < e.Retry.MaxAttempts {
		if e.Retry.Deadline > 0 && e.dev.Now().Sub(start) >= e.Retry.Deadline {
			break
		}
		e.sleep(backoff)
		backoff *= 2
		if scrub != nil {
			scrub()
		}
		e.mRetries.Add(1)
		attempts++
		err = attempt()
		if err == nil || !Transient(err) {
			return err
		}
	}
	e.mExhausted.Add(1)
	return &ExhaustedError{Op: op, Attempts: attempts, Last: err}
}
