package probe

import (
	"errors"
	"testing"
	"time"

	"tango/internal/openflow"
)

// transientErr is a minimal error carrying the structural Transient marker.
type transientErr struct{ msg string }

func (e transientErr) Error() string   { return e.msg }
func (e transientErr) Transient() bool { return true }

// flakyDevice fails FlowMod and SendProbe transiently for the first
// failures[command-kind] attempts, then succeeds. Its clock advances only
// through Sleep, so deadline behaviour is fully scripted.
type flakyDevice struct {
	failLeft  int  // remaining attempts to fail
	permanent bool // fail with a non-transient error instead

	now      time.Time
	flowMods []openflow.FlowModCommand // every command seen, in order
	probes   int
	slept    time.Duration
}

func (d *flakyDevice) Now() time.Time        { return d.now }
func (d *flakyDevice) Sleep(t time.Duration) { d.now = d.now.Add(t); d.slept += t }

func (d *flakyDevice) fail() error {
	if d.failLeft <= 0 {
		return nil
	}
	d.failLeft--
	if d.permanent {
		return errors.New("organic failure")
	}
	return transientErr{"injected loss"}
}

func (d *flakyDevice) FlowMod(fm *openflow.FlowMod) error {
	d.flowMods = append(d.flowMods, fm.Command)
	// Scrub deletes are bookkeeping, never faulted.
	if fm.Command == openflow.FlowDeleteStrict {
		return nil
	}
	return d.fail()
}

func (d *flakyDevice) SendProbe(data []byte, inPort uint16) (time.Duration, bool, error) {
	d.probes++
	if err := d.fail(); err != nil {
		return 0, false, err
	}
	return time.Millisecond, false, nil
}

func adds(cmds []openflow.FlowModCommand) int {
	n := 0
	for _, c := range cmds {
		if c == openflow.FlowAdd {
			n++
		}
	}
	return n
}

func TestRetryRecoversAfterTransientFailures(t *testing.T) {
	dev := &flakyDevice{failLeft: 3}
	e := NewEngine(dev)
	e.Retry = Retry{MaxAttempts: 5, Backoff: time.Millisecond}
	if err := e.Install(1, 100); err != nil {
		t.Fatalf("install failed despite budget for 5 attempts: %v", err)
	}
	if got := adds(dev.flowMods); got != 4 {
		t.Fatalf("device saw %d adds, want 4 (3 failures + success)", got)
	}
	// Exponential backoff: 1ms + 2ms + 4ms before attempts 2..4.
	if dev.slept != 7*time.Millisecond {
		t.Fatalf("slept %v, want 7ms of doubling backoff", dev.slept)
	}
}

func TestRetryScrubsBeforeReAdd(t *testing.T) {
	dev := &flakyDevice{failLeft: 2}
	e := NewEngine(dev)
	e.Retry = Retry{MaxAttempts: 3}
	if err := e.Install(1, 100); err != nil {
		t.Fatal(err)
	}
	// Every re-attempted add must be preceded by a strict delete of the
	// same rule, so an ack-lost add cannot leak a duplicate slot.
	want := []openflow.FlowModCommand{
		openflow.FlowAdd,
		openflow.FlowDeleteStrict, openflow.FlowAdd,
		openflow.FlowDeleteStrict, openflow.FlowAdd,
	}
	if len(dev.flowMods) != len(want) {
		t.Fatalf("command sequence %v, want %v", dev.flowMods, want)
	}
	for i, c := range want {
		if dev.flowMods[i] != c {
			t.Fatalf("command sequence %v, want %v", dev.flowMods, want)
		}
	}
}

func TestRetryDeletesAreNotScrubbed(t *testing.T) {
	dev := &flakyDevice{}
	e := NewEngine(dev)
	e.Retry = DefaultRetry
	if err := e.Delete(1, 100); err != nil {
		t.Fatal(err)
	}
	if len(dev.flowMods) != 1 || dev.flowMods[0] != openflow.FlowDeleteStrict {
		t.Fatalf("delete issued commands %v, want a single strict delete", dev.flowMods)
	}
}

func TestRetryExhaustionReturnsTypedError(t *testing.T) {
	dev := &flakyDevice{failLeft: 100}
	e := NewEngine(dev)
	e.Retry = Retry{MaxAttempts: 3}
	err := e.Install(1, 100)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %T does not expose *ExhaustedError", err)
	}
	if ex.Attempts != 3 || ex.Op != "flowmod" {
		t.Fatalf("exhausted after %d attempts on %q, want 3 on flowmod", ex.Attempts, ex.Op)
	}
	if !errors.As(err, new(transientErr)) {
		t.Fatal("exhausted error does not unwrap to the last failure")
	}
}

func TestRetryNonTransientPassesThrough(t *testing.T) {
	dev := &flakyDevice{failLeft: 100, permanent: true}
	e := NewEngine(dev)
	e.Retry = DefaultRetry
	err := e.Install(1, 100)
	if err == nil || errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want the organic error untouched", err)
	}
	if got := adds(dev.flowMods); got != 1 {
		t.Fatalf("device saw %d adds, want 1 (no retry of organic failures)", got)
	}
}

func TestRetryDisabledByZeroValue(t *testing.T) {
	dev := &flakyDevice{failLeft: 1}
	e := NewEngine(dev) // zero Retry: single attempt
	if err := e.Install(1, 100); err == nil {
		t.Fatal("zero-value Retry must not retry")
	}
	if got := adds(dev.flowMods); got != 1 {
		t.Fatalf("device saw %d adds, want 1", got)
	}
}

func TestRetryDeadlineCapsAttempts(t *testing.T) {
	dev := &flakyDevice{failLeft: 100}
	e := NewEngine(dev)
	// 10ms backoff against a 15ms deadline: attempt 1, sleep 10ms, attempt
	// 2, then sleep would land past the deadline after 30ms total — but the
	// deadline check runs before the sleep, so attempt 3 happens at 10ms
	// and attempt 4 is cut off at 30ms ≥ 15ms.
	e.Retry = Retry{MaxAttempts: 100, Backoff: 10 * time.Millisecond, Deadline: 15 * time.Millisecond}
	_, _, err := e.Probe(1)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted from the deadline", err)
	}
	if dev.probes > 5 {
		t.Fatalf("device saw %d probes; deadline failed to cap retries", dev.probes)
	}
}
