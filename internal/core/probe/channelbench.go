package probe

import (
	"fmt"
	"time"

	"tango/internal/core/pattern"
	"tango/internal/stats"
)

// ChannelReport summarises raw control-channel performance — the
// Oflops-style baseline measurements (§8: "Tango builds on Oflops but
// designs smart probing algorithms") that ground every higher-level
// inference.
type ChannelReport struct {
	// AddPerSec, ModPerSec, DelPerSec are sustained same-priority
	// flow-mod rates.
	AddPerSec float64
	ModPerSec float64
	DelPerSec float64
	// FastRTT summarises data-path round trips for an installed flow;
	// PuntRTT for a total miss (controller path).
	FastRTT RTTSummary
	PuntRTT RTTSummary
}

// RTTSummary is a latency distribution digest.
type RTTSummary struct {
	Min    time.Duration
	Mean   time.Duration
	Median time.Duration
	P99    time.Duration
}

func summarize(samples []float64) (RTTSummary, error) {
	if len(samples) == 0 {
		return RTTSummary{}, fmt.Errorf("probe: no samples")
	}
	min, _, err := stats.MinMax(samples)
	if err != nil {
		return RTTSummary{}, err
	}
	med, err := stats.Median(samples)
	if err != nil {
		return RTTSummary{}, err
	}
	p99, err := stats.Percentile(samples, 99)
	if err != nil {
		return RTTSummary{}, err
	}
	return RTTSummary{
		Min:    time.Duration(min),
		Mean:   time.Duration(stats.Mean(samples)),
		Median: time.Duration(med),
		P99:    time.Duration(p99),
	}, nil
}

// ChannelBenchOptions tunes BenchmarkChannel.
type ChannelBenchOptions struct {
	// Ops is the number of flow-mods per rate measurement. Zero means 200.
	Ops int
	// Probes is the number of RTT samples per path. Zero means 200.
	Probes int
	// FlowIDBase offsets the probe flows. Zero means 6<<20.
	FlowIDBase uint32
	// Priority used for the benchmark rules. Zero means 700.
	Priority uint16
}

func (o ChannelBenchOptions) withDefaults() ChannelBenchOptions {
	if o.Ops == 0 {
		o.Ops = 200
	}
	if o.Probes == 0 {
		o.Probes = 200
	}
	if o.FlowIDBase == 0 {
		o.FlowIDBase = 6 << 20
	}
	if o.Priority == 0 {
		o.Priority = 700
	}
	return o
}

// BenchmarkChannel measures the device's raw control-channel rates and
// data-path RTT distributions. The device is left clean.
func BenchmarkChannel(e *Engine, opts ChannelBenchOptions) (*ChannelReport, error) {
	opts = opts.withDefaults()
	rep := &ChannelReport{}

	rate := func(kind pattern.OpKind) (float64, error) {
		ops := make([]pattern.Op, opts.Ops)
		for i := range ops {
			ops[i] = pattern.Op{Kind: kind, FlowID: opts.FlowIDBase + uint32(i), Priority: opts.Priority}
		}
		d, err := e.TimeOps(ops)
		if err != nil {
			return 0, err
		}
		if d <= 0 {
			return 0, fmt.Errorf("probe: zero elapsed time")
		}
		return float64(opts.Ops) / d.Seconds(), nil
	}
	var err error
	if rep.AddPerSec, err = rate(pattern.OpAdd); err != nil {
		return nil, fmt.Errorf("probe: add rate: %w", err)
	}
	if rep.ModPerSec, err = rate(pattern.OpMod); err != nil {
		return nil, fmt.Errorf("probe: mod rate: %w", err)
	}

	// RTT distributions while the rules are installed.
	fast := make([]float64, 0, opts.Probes)
	for i := 0; i < opts.Probes; i++ {
		rtt, punted, err := e.Probe(opts.FlowIDBase + uint32(i%opts.Ops))
		if err != nil {
			return nil, err
		}
		if !punted {
			fast = append(fast, float64(rtt))
		}
	}
	if rep.FastRTT, err = summarize(fast); err != nil {
		return nil, fmt.Errorf("probe: fast path: %w", err)
	}
	punt := make([]float64, 0, opts.Probes)
	missBase := opts.FlowIDBase + uint32(opts.Ops) + 1000
	for i := 0; i < opts.Probes; i++ {
		rtt, punted, err := e.Probe(missBase + uint32(i))
		if err != nil {
			return nil, err
		}
		if punted {
			punt = append(punt, float64(rtt))
		}
	}
	if rep.PuntRTT, err = summarize(punt); err != nil {
		return nil, fmt.Errorf("probe: punt path: %w", err)
	}

	if rep.DelPerSec, err = rate(pattern.OpDel); err != nil {
		return nil, fmt.Errorf("probe: del rate: %w", err)
	}
	return rep, nil
}

// String renders the report for CLI output.
func (r *ChannelReport) String() string {
	f := func(s RTTSummary) string {
		return fmt.Sprintf("min=%v mean=%v median=%v p99=%v",
			s.Min.Round(10*time.Microsecond), s.Mean.Round(10*time.Microsecond),
			s.Median.Round(10*time.Microsecond), s.P99.Round(10*time.Microsecond))
	}
	return fmt.Sprintf("channel: add=%.0f/s mod=%.0f/s del=%.0f/s\n  fast path RTT: %s\n  punt path RTT: %s",
		r.AddPerSec, r.ModPerSec, r.DelPerSec, f(r.FastRTT), f(r.PuntRTT))
}
