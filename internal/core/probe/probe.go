// Package probe implements Tango's probing engine (§4): it applies Tango
// patterns — flow-mod sequences plus matching data traffic — to a switch
// and collects timing measurements. The engine is transport-agnostic: it
// drives anything satisfying Device, which both the in-process emulator
// adapter (SimDevice, virtual time) and the TCP controller
// (internal/ofconn.Controller, wall time) do.
package probe

import (
	"fmt"
	"time"

	"tango/internal/core/pattern"
	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// Device is the switch-side contract the probing engine needs: confirmed
// flow-mods, probe packets with measured RTTs, and a clock consistent with
// those measurements.
type Device interface {
	// FlowMod applies the operation and returns once it has completed
	// (barrier semantics). Table-full rejections must return an error.
	FlowMod(fm *openflow.FlowMod) error
	// SendProbe injects the frame and reports its round-trip time and
	// whether it was punted to the controller rather than forwarded.
	SendProbe(data []byte, inPort uint16) (rtt time.Duration, punted bool, err error)
	// Now returns the current time on the clock RTTs are measured against.
	Now() time.Time
}

// TrafficSender is the optional Device extension for sending a burst of
// identical packets in one call. Emulated switches support it natively;
// over a live OpenFlow channel the engine falls back to a packet loop.
type TrafficSender interface {
	SendTraffic(data []byte, inPort uint16, count int) error
}

// PipelinedDevice is the optional Device extension for control channels
// that can pipeline flow-mods (ofconn.Controller's asynchronous send path):
// FlowModBatch applies the ops in order with a shared trailing barrier and
// returns per-op outcomes — errs has len(fms), errs[i] nil when op i was
// accepted, and the second return reports channel-level failures only.
// Later ops still execute after a rejection (OpenFlow has no transactional
// abort). Devices that cannot pipeline — including SimDevice, whose virtual
// clock makes barriers free — simply don't implement it and keep the
// confirmed per-op path, which leaves emulator runs byte-identical.
type PipelinedDevice interface {
	FlowModBatch(fms []*openflow.FlowMod) ([]error, error)
}

// LabeledDevice is the optional Device extension reporting a stable
// switch/profile label. Engines auto-label themselves from it at
// construction, binding the per-switch probe.rtt_ns{switch=...} histogram
// child and the switch's flight-recorder track.
type LabeledDevice interface {
	TelemetryLabel() string
}

// FrameDevice is the optional Device extension for injecting a frame the
// engine already decoded, skipping the per-packet parse. size is the encoded
// length (it drives byte counters and latency models); the device must not
// retain f past the call. Results must be identical to sending the frame's
// encoding n times.
type FrameDevice interface {
	SendFrameN(f *packet.Frame, inPort uint16, size, n int) (rtt time.Duration, punted bool, err error)
}

// SimDevice adapts an emulated switch to the Device interface using its
// virtual clock, so probing an emulated switch is instantaneous in wall
// time while observing exactly the modelled latencies.
type SimDevice struct {
	S *switchsim.Switch
}

// FlowMod implements Device.
func (d SimDevice) FlowMod(fm *openflow.FlowMod) error { return d.S.FlowMod(fm) }

// SendProbe implements Device.
func (d SimDevice) SendProbe(data []byte, inPort uint16) (time.Duration, bool, error) {
	res, err := d.S.SendPacket(data, inPort)
	if err != nil {
		return 0, false, err
	}
	return res.RTT, res.Path == switchsim.PathControl, nil
}

// Now implements Device.
func (d SimDevice) Now() time.Time { return d.S.Now() }

// TelemetryLabel implements LabeledDevice with the profile name.
func (d SimDevice) TelemetryLabel() string { return d.S.Profile().Name }

// Sleep advances the switch's virtual clock, letting retry backoff and
// injected fault latencies charge simulated rather than wall time.
func (d SimDevice) Sleep(dur time.Duration) { d.S.Clock().Sleep(dur) }

// Reset power-cycles the underlying emulated switch (used by fault
// injection to model mid-probe agent restarts).
func (d SimDevice) Reset() { d.S.Reset() }

// SendTraffic implements TrafficSender with a single batched pipeline pass.
func (d SimDevice) SendTraffic(data []byte, inPort uint16, count int) error {
	_, err := d.S.SendPacketN(data, inPort, count)
	return err
}

// SendFrameN implements FrameDevice on the emulated switch's pre-decoded
// injection path.
func (d SimDevice) SendFrameN(f *packet.Frame, inPort uint16, size, n int) (time.Duration, bool, error) {
	res, err := d.S.SendFrameN(f, inPort, size, n)
	if err != nil {
		return 0, false, err
	}
	return res.RTT, res.Path == switchsim.PathControl, nil
}

// cachedFrame is one frame-cache slot: the encoded probe frame plus its
// decoded form for devices that accept pre-parsed frames.
type cachedFrame struct {
	data  []byte
	frame packet.Frame
	// buf backs data for payload-less probes, making each cache slot a
	// single allocation; frames with payloads spill to the heap.
	buf [64]byte
}

// EngineStats is the engine's deterministic op ledger: plain counters
// incremented at the same points as the probe.* telemetry counters, but
// owned by the engine rather than a shared registry, so a caller that owns
// the engine can read exact per-switch deltas (ops issued between two
// reads) without snapshotting a registry or worrying about other engines'
// contributions. Like the engine itself it is not safe for concurrent use;
// cross-goroutine reads need an external happens-before (the fleet service
// reads a member's stats only after its worker finishes the round).
type EngineStats struct {
	// FlowMods counts flow-mod operations issued (install/modify/delete,
	// batched or serial).
	FlowMods int64
	// Probes counts measurement probes that completed without a channel
	// error; Punted counts the subset that missed and went to the agent.
	Probes int64
	Punted int64
	// Traffic counts data-plane packets sent by SendTraffic.
	Traffic int64
}

// Engine executes patterns against one device.
type Engine struct {
	dev Device
	// frameDev is dev's FrameDevice view, resolved once at construction;
	// nil when the device only accepts encoded packets.
	frameDev FrameDevice
	// pipeDev is dev's PipelinedDevice view; nil for serial-only devices.
	pipeDev PipelinedDevice
	// InPort is the ingress port probe frames claim; the default 1 works
	// for all emulated profiles.
	InPort uint16
	// Retry bounds recovery from transient channel failures; the zero
	// value keeps the engine single-attempt.
	Retry Retry
	// The frame cache: probing re-sends the same flows thousands of times,
	// and flow IDs run densely upward from a pattern's FlowIDBase. Slots
	// within frameWindow of the first-seen ID live in frameWin, indexed by
	// offset — one bounds check instead of a map hash per probe. IDs
	// outside the window (sparse sweeps such as microflow detection) fall
	// back to frameOver. ResetFrames invalidates both.
	frameWin  []*cachedFrame
	frameBase uint32
	frameOver map[uint32]*cachedFrame
	// frameSlab is the allocation arena behind both caches: slots are
	// carved from slabs of frameSlabSize so a size sweep's thousands of
	// cache fills cost dozens of allocations instead of one per flow,
	// and the GC scans a handful of large objects instead of a swarm.
	frameSlab []cachedFrame
	// opScratch is the flow-mod TimeOps reuses across a batch's ops.
	opScratch openflow.FlowMod

	// Telemetry handles. All nil-safe: an engine built with no registry
	// (and no process default installed) records nothing at no cost.
	reg        *telemetry.Registry
	tracer     *telemetry.Tracer
	mFlowMods  *telemetry.Counter
	mProbes    *telemetry.Counter
	mPunted    *telemetry.Counter
	mTraffic   *telemetry.Counter
	mRetries   *telemetry.Counter
	mExhausted *telemetry.Counter
	mFrameHits *telemetry.Counter
	mFrameMiss *telemetry.Counter
	hRTT       *telemetry.Histogram
	// hRTTSw is the per-switch probe.rtt_ns{switch=...} child, bound by
	// SetLabel; nil on unlabeled engines, so the fleet aggregate hRTT keeps
	// its meaning either way.
	hRTTSw *telemetry.Histogram
	// flightRec/flight feed the per-switch RTT flight recorder: flight is
	// this engine's track in flightRec, bound by SetLabel.
	flightRec *telemetry.FlightRecorder
	flight    *telemetry.FlightTrack
	label     string

	// stats is the per-engine op ledger; see EngineStats.
	stats EngineStats
}

// Stats returns the engine's op ledger since construction. Callers diff two
// reads for per-interval deltas.
func (e *Engine) Stats() EngineStats { return e.stats }

// NewEngine returns an engine driving dev, bound to the process-wide
// default telemetry (a no-op unless a command installed one). Devices that
// report a label (LabeledDevice — every SimDevice does) are auto-labeled,
// so their RTTs land in the per-switch histogram child and flight track
// without any caller wiring.
func NewEngine(dev Device) *Engine {
	e := &Engine{dev: dev, InPort: 1}
	e.frameDev, _ = dev.(FrameDevice)
	e.pipeDev, _ = dev.(PipelinedDevice)
	e.flightRec = telemetry.DefaultFlight()
	e.SetTelemetry(telemetry.Default(), telemetry.DefaultTracer())
	if ld, ok := dev.(LabeledDevice); ok {
		e.SetLabel(ld.TelemetryLabel())
	}
	return e
}

// SetTelemetry rebinds the engine's metrics and tracer. Either argument may
// be nil to disable that half. A label bound earlier is re-applied against
// the new registry.
func (e *Engine) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	e.reg = reg
	e.tracer = tr
	e.mFlowMods = reg.Counter("probe.flowmods")
	e.mProbes = reg.Counter("probe.probes_sent")
	e.mPunted = reg.Counter("probe.punted")
	e.mTraffic = reg.Counter("probe.traffic_packets")
	e.mRetries = reg.Counter("probe.retries")
	e.mExhausted = reg.Counter("probe.retry_exhausted")
	e.mFrameHits = reg.Counter("probe.frame_cache_hits")
	e.mFrameMiss = reg.Counter("probe.frame_cache_misses")
	e.hRTT = reg.Histogram("probe.rtt_ns")
	e.hRTTSw = nil
	if e.label != "" {
		e.SetLabel(e.label)
	}
}

// SetFlight rebinds the engine's flight recorder (picked up from
// telemetry.DefaultFlight at construction). The current label's track is
// rebound; pass nil to stop recording flight samples.
func (e *Engine) SetFlight(fr *telemetry.FlightRecorder) {
	e.flightRec = fr
	e.flight = nil
	if e.label != "" {
		e.SetLabel(e.label)
	}
}

// SetLabel names the switch this engine probes. It binds the per-switch
// probe.rtt_ns{switch=label} histogram child (observed alongside the fleet
// aggregate) and the label's flight-recorder track. An empty label unbinds
// both. Engines over labeled devices call this automatically at
// construction; fleets label TCP members by their member names.
func (e *Engine) SetLabel(label string) {
	e.label = label
	if label == "" {
		e.hRTTSw = nil
		e.flight = nil
		return
	}
	e.hRTTSw = e.reg.HistogramVec("probe.rtt_ns", "switch").With(label)
	e.flight = e.flightRec.Track(label)
}

// Label returns the switch label bound by SetLabel ("" when unlabeled).
func (e *Engine) Label() string { return e.label }

// Tracer returns the engine's tracer (possibly nil). The inference
// algorithms use it to emit probe.round / infer.size spans on the device's
// virtual timeline.
func (e *Engine) Tracer() *telemetry.Tracer { return e.tracer }

// Device returns the engine's device.
func (e *Engine) Device() Device { return e.dev }

// flowMod issues one flow-mod through the device, counting it and retrying
// transient channel failures under the engine's Retry policy. Re-attempted
// adds are scrubbed first (strict-delete of the same match/priority):
// after an ack-loss the rule may already be installed, and a blind re-add
// would leak a duplicate table slot.
func (e *Engine) flowMod(fm *openflow.FlowMod) error {
	e.mFlowMods.Add(1)
	e.stats.FlowMods++
	if !e.Retry.enabled() {
		// Single-attempt engines skip withRetry: with retry disabled it is
		// exactly one attempt, and the closure it would take heap-allocates
		// per call — pure garbage on the bulk-install path.
		return e.dev.FlowMod(fm)
	}
	var scrub func()
	if fm.Command == openflow.FlowAdd && e.Retry.enabled() {
		scrub = func() {
			del := &openflow.FlowMod{
				Command:  openflow.FlowDeleteStrict,
				Match:    fm.Match,
				Priority: fm.Priority,
			}
			_ = e.dev.FlowMod(del) // best effort; a no-op delete is not an error
		}
	}
	return e.withRetry("flowmod", func() error { return e.dev.FlowMod(fm) }, scrub)
}

// frameSlabSize is the frame-cache arena's slab length (cache slots per
// allocation).
const frameSlabSize = 256

// frameWindow bounds how far past the first-seen flow ID the dense cache
// window extends. 32Ki slots cover every doubling phase the default MaxRules
// budget can reach while keeping the worst-case window at 256KiB of slots.
const frameWindow = 1 << 15

// frame returns (building if needed) the cached probe frame for flow id, in
// both encoded and decoded form.
func (e *Engine) frame(id uint32) (*cachedFrame, error) {
	// id < frameBase wraps the offset to a huge value and falls through to
	// the overflow map, as intended.
	if off := id - e.frameBase; e.frameWin != nil && off < uint32(len(e.frameWin)) {
		if cf := e.frameWin[off]; cf != nil {
			e.mFrameHits.Add(1)
			return cf, nil
		}
	} else if cf, ok := e.frameOver[id]; ok {
		e.mFrameHits.Add(1)
		return cf, nil
	}
	e.mFrameMiss.Add(1)
	if len(e.frameSlab) == cap(e.frameSlab) {
		// Full (or nil) slab: start a fresh one. Slots already handed out
		// keep their addresses — the old backing array stays reachable
		// through frameWin/frameOver.
		e.frameSlab = make([]cachedFrame, 0, frameSlabSize)
	}
	e.frameSlab = append(e.frameSlab, cachedFrame{})
	cf := &e.frameSlab[len(e.frameSlab)-1]
	data, err := packet.AppendBuildProbe(cf.buf[:0], packet.ProbeSpec{FlowID: id})
	if err != nil {
		return nil, err
	}
	cf.data = data
	if err := packet.DecodeInto(&cf.frame, data); err != nil {
		return nil, err
	}
	if e.frameWin == nil {
		e.frameBase = id
		e.frameWin = make([]*cachedFrame, 1, 256)
	}
	if off := id - e.frameBase; off < frameWindow {
		for uint32(len(e.frameWin)) <= off {
			e.frameWin = append(e.frameWin, nil)
		}
		e.frameWin[off] = cf
	} else {
		if e.frameOver == nil {
			e.frameOver = make(map[uint32]*cachedFrame)
		}
		e.frameOver[id] = cf
	}
	return cf, nil
}

// ResetFrames invalidates the frame cache. Callers that power-cycle or swap
// the device mid-run (fault injection) use it to drop frames built for the
// previous incarnation.
func (e *Engine) ResetFrames() {
	clear(e.frameWin)
	clear(e.frameOver)
}

// Shared action slices for probe flow-mods. Devices retain (but never
// mutate) the action slice of an installed rule, so all probe rules can
// alias these two.
var (
	probeActions  = flowtable.Output(2)
	modifyActions = flowtable.Output(3) // modify to a different action
)

// fillFlowMod populates fm in place for one pattern op, so batch paths can
// reuse a single scratch struct instead of allocating per op. The actions
// alias the shared slices above and must not be mutated.
func fillFlowMod(fm *openflow.FlowMod, op pattern.Op) {
	*fm = openflow.FlowMod{
		Match:    flowtable.ExactProbeMatch(op.FlowID),
		Priority: op.Priority,
		Actions:  probeActions,
	}
	switch op.Kind {
	case pattern.OpAdd:
		fm.Command = openflow.FlowAdd
	case pattern.OpMod:
		fm.Command = openflow.FlowModifyStrict
		fm.Actions = modifyActions
	case pattern.OpDel:
		fm.Command = openflow.FlowDeleteStrict
		fm.Actions = nil
	}
}

// flowMod builds the flow-mod for one pattern op.
func flowMod(op pattern.Op) *openflow.FlowMod {
	fm := &openflow.FlowMod{}
	fillFlowMod(fm, op)
	return fm
}

// Install adds the probe rule for flow id at the given priority. Like the
// other single-op helpers it reuses the engine's scratch flow-mod: devices
// copy what they keep, so per-op allocation would be pure collector load.
func (e *Engine) Install(id uint32, priority uint16) error {
	fillFlowMod(&e.opScratch, pattern.Op{Kind: pattern.OpAdd, FlowID: id, Priority: priority})
	return e.flowMod(&e.opScratch)
}

// Modify rewrites the actions of flow id's rule.
func (e *Engine) Modify(id uint32, priority uint16) error {
	fillFlowMod(&e.opScratch, pattern.Op{Kind: pattern.OpMod, FlowID: id, Priority: priority})
	return e.flowMod(&e.opScratch)
}

// Delete removes flow id's rule.
func (e *Engine) Delete(id uint32, priority uint16) error {
	fillFlowMod(&e.opScratch, pattern.Op{Kind: pattern.OpDel, FlowID: id, Priority: priority})
	return e.flowMod(&e.opScratch)
}

// Probe sends flow id's frame and returns its RTT and whether it punted.
// Transient send failures retry under the engine's Retry policy.
func (e *Engine) Probe(id uint32) (time.Duration, bool, error) {
	cf, err := e.frame(id)
	if err != nil {
		return 0, false, err
	}
	var (
		rtt    time.Duration
		punted bool
	)
	if !e.Retry.enabled() {
		// Single-attempt fast path: no retry closure, and devices that take
		// pre-decoded frames skip the per-probe packet parse.
		if e.frameDev != nil {
			rtt, punted, err = e.frameDev.SendFrameN(&cf.frame, e.InPort, len(cf.data), 1)
		} else {
			rtt, punted, err = e.dev.SendProbe(cf.data, e.InPort)
		}
	} else {
		err = e.withRetry("probe", func() error {
			var aerr error
			rtt, punted, aerr = e.dev.SendProbe(cf.data, e.InPort)
			return aerr
		}, nil)
	}
	if err == nil {
		e.mProbes.Add(1)
		e.stats.Probes++
		e.hRTT.Observe(float64(rtt))
		// Labeled/flight recording guards explicitly rather than leaning on
		// nil-safe receivers: unlabeled engines skip the calls outright, so
		// the per-probe overhead of the uninstrumented path is two compares.
		if e.hRTTSw != nil {
			e.hRTTSw.Observe(float64(rtt))
		}
		if e.flight != nil {
			e.flight.Record(e.dev.Now(), time.Now(), rtt, id, punted)
		}
		if punted {
			e.mPunted.Add(1)
			e.stats.Punted++
		}
	}
	return rtt, punted, err
}

// SendTraffic drives flow id's packet counter up by count packets, using
// the device's batched path when available.
func (e *Engine) SendTraffic(id uint32, count int) error {
	if count <= 0 {
		return nil
	}
	cf, err := e.frame(id)
	if err != nil {
		return err
	}
	if e.frameDev != nil && !e.Retry.enabled() {
		if _, _, err := e.frameDev.SendFrameN(&cf.frame, e.InPort, len(cf.data), count); err != nil {
			return err
		}
		e.mTraffic.Add(int64(count))
		e.stats.Traffic += int64(count)
		return nil
	}
	if ts, ok := e.dev.(TrafficSender); ok {
		if err := e.withRetry("traffic", func() error {
			return ts.SendTraffic(cf.data, e.InPort, count)
		}, nil); err != nil {
			return err
		}
		e.mTraffic.Add(int64(count))
		e.stats.Traffic += int64(count)
		return nil
	}
	for i := 0; i < count; i++ {
		if err := e.withRetry("traffic", func() error {
			_, _, aerr := e.dev.SendProbe(cf.data, e.InPort)
			return aerr
		}, nil); err != nil {
			return err
		}
		e.mTraffic.Add(1)
		e.stats.Traffic++
	}
	return nil
}

// ProbeN sends flow id's frame n times, returning the last RTT.
func (e *Engine) ProbeN(id uint32, n int) (time.Duration, bool, error) {
	var (
		rtt    time.Duration
		punted bool
		err    error
	)
	for i := 0; i < n; i++ {
		rtt, punted, err = e.Probe(id)
		if err != nil {
			return rtt, punted, err
		}
	}
	return rtt, punted, nil
}

// Run executes a pattern: every op in sequence (timed individually), then
// the traffic steps. Op errors abort the run.
func (e *Engine) Run(p pattern.Pattern) (pattern.Result, error) {
	res := pattern.Result{Pattern: p.Name, Ops: make([]pattern.OpTiming, 0, len(p.Ops))}
	start := e.dev.Now()
	for _, op := range p.Ops {
		opStart := e.dev.Now()
		if err := e.flowMod(flowMod(op)); err != nil {
			return res, fmt.Errorf("probe: op %s flow %d: %w", op.Kind, op.FlowID, err)
		}
		res.Ops = append(res.Ops, pattern.OpTiming{Op: op, Latency: e.dev.Now().Sub(opStart)})
		if op.SendProbe {
			if _, _, err := e.Probe(op.FlowID); err != nil {
				return res, err
			}
		}
	}
	for _, ts := range p.Traffic {
		for i := 0; i < ts.Count; i++ {
			if _, _, err := e.Probe(ts.FlowID); err != nil {
				return res, err
			}
		}
	}
	res.Total = e.dev.Now().Sub(start)
	if e.tracer != nil {
		e.tracer.Record("probe.pattern", "", start, res.Total,
			map[string]any{"pattern": p.Name, "ops": len(p.Ops)})
	}
	return res, nil
}

// TimeOps executes ops (without traffic) and returns only the total time —
// the measurement the scheduler experiments need.
func (e *Engine) TimeOps(ops []pattern.Op) (time.Duration, error) {
	start := e.dev.Now()
	for _, op := range ops {
		// One scratch flow-mod for the whole batch: the device send path is
		// synchronous and devices copy what they keep, so per-op allocation
		// would be pure garbage-collector load.
		fillFlowMod(&e.opScratch, op)
		if err := e.flowMod(&e.opScratch); err != nil {
			return e.dev.Now().Sub(start), err
		}
	}
	return e.dev.Now().Sub(start), nil
}

// Pipelined reports whether batch operations will ride the device's
// pipelined path. Retry-hardened engines stay serial: the retry policy's
// scrub-and-reissue semantics are defined per confirmed op, not per batch.
func (e *Engine) Pipelined() bool {
	return e.pipeDev != nil && !e.Retry.enabled()
}

// InstallBatch installs the probe rules for ids, all at priority p, and
// returns how many of the leading ids are now installed. Over a pipelined
// channel the whole batch shares trailing barriers (one per in-flight
// window) instead of paying a round trip per rule; the serial fallback
// loops confirmed Installs. Both paths stop counting at the first
// rejection, and for an add-only batch that leaves identical table state —
// once a table rejects an add, it rejects every later one too — so the two
// are interchangeable: same count, same resident rules, same error.
func (e *Engine) InstallBatch(ids []uint32, p uint16) (int, error) {
	if !e.Pipelined() {
		for i, id := range ids {
			if err := e.Install(id, p); err != nil {
				return i, err
			}
		}
		return len(ids), nil
	}
	fms := make([]*openflow.FlowMod, len(ids))
	for i, id := range ids {
		fms[i] = flowMod(pattern.Op{Kind: pattern.OpAdd, FlowID: id, Priority: p})
	}
	e.mFlowMods.Add(int64(len(ids)))
	e.stats.FlowMods += int64(len(ids))
	errs, err := e.pipeDev.FlowModBatch(fms)
	if err != nil {
		return 0, err
	}
	for i, opErr := range errs {
		if opErr != nil {
			return i, opErr
		}
	}
	return len(ids), nil
}

// ClearBatch deletes the probe rules for flows [base, base+n) at priority
// p, batched over the pipelined path when available. Deletes go out in the
// same ascending order as the serial loop and rejections are ignored (a
// no-op delete is not an error), so both paths leave identical state.
func (e *Engine) ClearBatch(base, n uint32, p uint16) {
	if !e.Pipelined() {
		for id := base; id < base+n; id++ {
			_ = e.Delete(id, p)
		}
		return
	}
	fms := make([]*openflow.FlowMod, n)
	for i := range fms {
		fms[i] = flowMod(pattern.Op{Kind: pattern.OpDel, FlowID: base + uint32(i), Priority: p})
	}
	e.mFlowMods.Add(int64(n))
	e.stats.FlowMods += int64(n)
	_, _ = e.pipeDev.FlowModBatch(fms)
}

// ClearProbeRules removes the probe rules for flows [base, base+n) at
// priority p, restoring a switch between probing rounds.
func (e *Engine) ClearProbeRules(base, n uint32, p uint16) {
	e.ClearBatch(base, n, p)
}
