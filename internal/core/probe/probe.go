// Package probe implements Tango's probing engine (§4): it applies Tango
// patterns — flow-mod sequences plus matching data traffic — to a switch
// and collects timing measurements. The engine is transport-agnostic: it
// drives anything satisfying Device, which both the in-process emulator
// adapter (SimDevice, virtual time) and the TCP controller
// (internal/ofconn.Controller, wall time) do.
package probe

import (
	"fmt"
	"time"

	"tango/internal/core/pattern"
	"tango/internal/flowtable"
	"tango/internal/openflow"
	"tango/internal/packet"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// Device is the switch-side contract the probing engine needs: confirmed
// flow-mods, probe packets with measured RTTs, and a clock consistent with
// those measurements.
type Device interface {
	// FlowMod applies the operation and returns once it has completed
	// (barrier semantics). Table-full rejections must return an error.
	FlowMod(fm *openflow.FlowMod) error
	// SendProbe injects the frame and reports its round-trip time and
	// whether it was punted to the controller rather than forwarded.
	SendProbe(data []byte, inPort uint16) (rtt time.Duration, punted bool, err error)
	// Now returns the current time on the clock RTTs are measured against.
	Now() time.Time
}

// TrafficSender is the optional Device extension for sending a burst of
// identical packets in one call. Emulated switches support it natively;
// over a live OpenFlow channel the engine falls back to a packet loop.
type TrafficSender interface {
	SendTraffic(data []byte, inPort uint16, count int) error
}

// SimDevice adapts an emulated switch to the Device interface using its
// virtual clock, so probing an emulated switch is instantaneous in wall
// time while observing exactly the modelled latencies.
type SimDevice struct {
	S *switchsim.Switch
}

// FlowMod implements Device.
func (d SimDevice) FlowMod(fm *openflow.FlowMod) error { return d.S.FlowMod(fm) }

// SendProbe implements Device.
func (d SimDevice) SendProbe(data []byte, inPort uint16) (time.Duration, bool, error) {
	res, err := d.S.SendPacket(data, inPort)
	if err != nil {
		return 0, false, err
	}
	return res.RTT, res.Path == switchsim.PathControl, nil
}

// Now implements Device.
func (d SimDevice) Now() time.Time { return d.S.Now() }

// Sleep advances the switch's virtual clock, letting retry backoff and
// injected fault latencies charge simulated rather than wall time.
func (d SimDevice) Sleep(dur time.Duration) { d.S.Clock().Sleep(dur) }

// Reset power-cycles the underlying emulated switch (used by fault
// injection to model mid-probe agent restarts).
func (d SimDevice) Reset() { d.S.Reset() }

// SendTraffic implements TrafficSender with a single batched pipeline pass.
func (d SimDevice) SendTraffic(data []byte, inPort uint16, count int) error {
	_, err := d.S.SendPacketN(data, inPort, count)
	return err
}

// Engine executes patterns against one device.
type Engine struct {
	dev Device
	// InPort is the ingress port probe frames claim; the default 1 works
	// for all emulated profiles.
	InPort uint16
	// Retry bounds recovery from transient channel failures; the zero
	// value keeps the engine single-attempt.
	Retry Retry
	// frames caches built probe frames by flow ID — probing re-sends the
	// same flows thousands of times.
	frames map[uint32][]byte
	// opScratch is the flow-mod TimeOps reuses across a batch's ops.
	opScratch openflow.FlowMod

	// Telemetry handles. All nil-safe: an engine built with no registry
	// (and no process default installed) records nothing at no cost.
	tracer     *telemetry.Tracer
	mFlowMods  *telemetry.Counter
	mProbes    *telemetry.Counter
	mPunted    *telemetry.Counter
	mTraffic   *telemetry.Counter
	mRetries   *telemetry.Counter
	mExhausted *telemetry.Counter
	hRTT       *telemetry.Histogram
}

// NewEngine returns an engine driving dev, bound to the process-wide
// default telemetry (a no-op unless a command installed one).
func NewEngine(dev Device) *Engine {
	e := &Engine{dev: dev, InPort: 1, frames: make(map[uint32][]byte)}
	e.SetTelemetry(telemetry.Default(), telemetry.DefaultTracer())
	return e
}

// SetTelemetry rebinds the engine's metrics and tracer. Either argument may
// be nil to disable that half.
func (e *Engine) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	e.tracer = tr
	e.mFlowMods = reg.Counter("probe.flowmods")
	e.mProbes = reg.Counter("probe.probes_sent")
	e.mPunted = reg.Counter("probe.punted")
	e.mTraffic = reg.Counter("probe.traffic_packets")
	e.mRetries = reg.Counter("probe.retries")
	e.mExhausted = reg.Counter("probe.retry_exhausted")
	e.hRTT = reg.Histogram("probe.rtt_ns")
}

// Tracer returns the engine's tracer (possibly nil). The inference
// algorithms use it to emit probe.round / infer.size spans on the device's
// virtual timeline.
func (e *Engine) Tracer() *telemetry.Tracer { return e.tracer }

// Device returns the engine's device.
func (e *Engine) Device() Device { return e.dev }

// flowMod issues one flow-mod through the device, counting it and retrying
// transient channel failures under the engine's Retry policy. Re-attempted
// adds are scrubbed first (strict-delete of the same match/priority):
// after an ack-loss the rule may already be installed, and a blind re-add
// would leak a duplicate table slot.
func (e *Engine) flowMod(fm *openflow.FlowMod) error {
	e.mFlowMods.Add(1)
	var scrub func()
	if fm.Command == openflow.FlowAdd && e.Retry.enabled() {
		scrub = func() {
			del := &openflow.FlowMod{
				Command:  openflow.FlowDeleteStrict,
				Match:    fm.Match,
				Priority: fm.Priority,
			}
			_ = e.dev.FlowMod(del) // best effort; a no-op delete is not an error
		}
	}
	return e.withRetry("flowmod", func() error { return e.dev.FlowMod(fm) }, scrub)
}

// frame returns (building if needed) the probe frame for flow id.
func (e *Engine) frame(id uint32) ([]byte, error) {
	if f, ok := e.frames[id]; ok {
		return f, nil
	}
	f, err := packet.BuildProbe(packet.ProbeSpec{FlowID: id})
	if err != nil {
		return nil, err
	}
	e.frames[id] = f
	return f, nil
}

// Shared action slices for probe flow-mods. Devices retain (but never
// mutate) the action slice of an installed rule, so all probe rules can
// alias these two.
var (
	probeActions  = flowtable.Output(2)
	modifyActions = flowtable.Output(3) // modify to a different action
)

// fillFlowMod populates fm in place for one pattern op, so batch paths can
// reuse a single scratch struct instead of allocating per op. The actions
// alias the shared slices above and must not be mutated.
func fillFlowMod(fm *openflow.FlowMod, op pattern.Op) {
	*fm = openflow.FlowMod{
		Match:    flowtable.ExactProbeMatch(op.FlowID),
		Priority: op.Priority,
		Actions:  probeActions,
	}
	switch op.Kind {
	case pattern.OpAdd:
		fm.Command = openflow.FlowAdd
	case pattern.OpMod:
		fm.Command = openflow.FlowModifyStrict
		fm.Actions = modifyActions
	case pattern.OpDel:
		fm.Command = openflow.FlowDeleteStrict
		fm.Actions = nil
	}
}

// flowMod builds the flow-mod for one pattern op.
func flowMod(op pattern.Op) *openflow.FlowMod {
	fm := &openflow.FlowMod{}
	fillFlowMod(fm, op)
	return fm
}

// Install adds the probe rule for flow id at the given priority.
func (e *Engine) Install(id uint32, priority uint16) error {
	return e.flowMod(flowMod(pattern.Op{Kind: pattern.OpAdd, FlowID: id, Priority: priority}))
}

// Modify rewrites the actions of flow id's rule.
func (e *Engine) Modify(id uint32, priority uint16) error {
	return e.flowMod(flowMod(pattern.Op{Kind: pattern.OpMod, FlowID: id, Priority: priority}))
}

// Delete removes flow id's rule.
func (e *Engine) Delete(id uint32, priority uint16) error {
	return e.flowMod(flowMod(pattern.Op{Kind: pattern.OpDel, FlowID: id, Priority: priority}))
}

// Probe sends flow id's frame and returns its RTT and whether it punted.
// Transient send failures retry under the engine's Retry policy.
func (e *Engine) Probe(id uint32) (time.Duration, bool, error) {
	f, err := e.frame(id)
	if err != nil {
		return 0, false, err
	}
	var (
		rtt    time.Duration
		punted bool
	)
	err = e.withRetry("probe", func() error {
		var aerr error
		rtt, punted, aerr = e.dev.SendProbe(f, e.InPort)
		return aerr
	}, nil)
	if err == nil {
		e.mProbes.Add(1)
		e.hRTT.Observe(float64(rtt))
		if punted {
			e.mPunted.Add(1)
		}
	}
	return rtt, punted, err
}

// SendTraffic drives flow id's packet counter up by count packets, using
// the device's batched path when available.
func (e *Engine) SendTraffic(id uint32, count int) error {
	if count <= 0 {
		return nil
	}
	f, err := e.frame(id)
	if err != nil {
		return err
	}
	if ts, ok := e.dev.(TrafficSender); ok {
		if err := e.withRetry("traffic", func() error {
			return ts.SendTraffic(f, e.InPort, count)
		}, nil); err != nil {
			return err
		}
		e.mTraffic.Add(int64(count))
		return nil
	}
	for i := 0; i < count; i++ {
		if err := e.withRetry("traffic", func() error {
			_, _, aerr := e.dev.SendProbe(f, e.InPort)
			return aerr
		}, nil); err != nil {
			return err
		}
		e.mTraffic.Add(1)
	}
	return nil
}

// ProbeN sends flow id's frame n times, returning the last RTT.
func (e *Engine) ProbeN(id uint32, n int) (time.Duration, bool, error) {
	var (
		rtt    time.Duration
		punted bool
		err    error
	)
	for i := 0; i < n; i++ {
		rtt, punted, err = e.Probe(id)
		if err != nil {
			return rtt, punted, err
		}
	}
	return rtt, punted, nil
}

// Run executes a pattern: every op in sequence (timed individually), then
// the traffic steps. Op errors abort the run.
func (e *Engine) Run(p pattern.Pattern) (pattern.Result, error) {
	res := pattern.Result{Pattern: p.Name, Ops: make([]pattern.OpTiming, 0, len(p.Ops))}
	start := e.dev.Now()
	for _, op := range p.Ops {
		opStart := e.dev.Now()
		if err := e.flowMod(flowMod(op)); err != nil {
			return res, fmt.Errorf("probe: op %s flow %d: %w", op.Kind, op.FlowID, err)
		}
		res.Ops = append(res.Ops, pattern.OpTiming{Op: op, Latency: e.dev.Now().Sub(opStart)})
		if op.SendProbe {
			if _, _, err := e.Probe(op.FlowID); err != nil {
				return res, err
			}
		}
	}
	for _, ts := range p.Traffic {
		for i := 0; i < ts.Count; i++ {
			if _, _, err := e.Probe(ts.FlowID); err != nil {
				return res, err
			}
		}
	}
	res.Total = e.dev.Now().Sub(start)
	if e.tracer != nil {
		e.tracer.Record("probe.pattern", "", start, res.Total,
			map[string]any{"pattern": p.Name, "ops": len(p.Ops)})
	}
	return res, nil
}

// TimeOps executes ops (without traffic) and returns only the total time —
// the measurement the scheduler experiments need.
func (e *Engine) TimeOps(ops []pattern.Op) (time.Duration, error) {
	start := e.dev.Now()
	for _, op := range ops {
		// One scratch flow-mod for the whole batch: the device send path is
		// synchronous and devices copy what they keep, so per-op allocation
		// would be pure garbage-collector load.
		fillFlowMod(&e.opScratch, op)
		if err := e.flowMod(&e.opScratch); err != nil {
			return e.dev.Now().Sub(start), err
		}
	}
	return e.dev.Now().Sub(start), nil
}

// ClearProbeRules removes the probe rules for flows [base, base+n) at
// priority p, restoring a switch between probing rounds.
func (e *Engine) ClearProbeRules(base, n uint32, p uint16) {
	for id := base; id < base+n; id++ {
		_ = e.Delete(id, p)
	}
}
