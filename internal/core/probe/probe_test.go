package probe

import (
	"testing"
	"time"

	"tango/internal/core/pattern"
	"tango/internal/switchsim"
)

func newEngine(p switchsim.Profile) (*Engine, *switchsim.Switch) {
	s := switchsim.New(p)
	return NewEngine(SimDevice{S: s}), s
}

func TestInstallProbeDelete(t *testing.T) {
	e, sw := newEngine(switchsim.Switch2())
	if err := e.Install(1, 100); err != nil {
		t.Fatal(err)
	}
	rtt, punted, err := e.Probe(1)
	if err != nil || punted {
		t.Fatalf("probe: rtt=%v punted=%v err=%v", rtt, punted, err)
	}
	if rtt <= 0 {
		t.Fatal("zero RTT")
	}
	_, punted, err = e.Probe(999)
	if err != nil || !punted {
		t.Fatalf("miss probe: punted=%v err=%v", punted, err)
	}
	if err := e.Delete(1, 100); err != nil {
		t.Fatal(err)
	}
	tcam, _, _ := sw.RuleCount()
	if tcam != 0 {
		t.Fatal("delete did not take")
	}
}

func TestModifyChangesActions(t *testing.T) {
	e, sw := newEngine(switchsim.OVS())
	if err := e.Install(5, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.Modify(5, 10); err != nil {
		t.Fatal(err)
	}
	_, _, software := sw.RuleCount()
	if software != 1 {
		t.Fatalf("rules = %d, want 1 (modify must not duplicate)", software)
	}
}

func TestRunPatternTimings(t *testing.T) {
	e, _ := newEngine(switchsim.Switch1())
	p := pattern.PriorityInstall(20, pattern.OrderAscending, nil)
	res, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 20 {
		t.Fatalf("timings = %d", len(res.Ops))
	}
	var sum time.Duration
	for _, ot := range res.Ops {
		if ot.Latency <= 0 {
			t.Fatalf("non-positive op latency: %+v", ot)
		}
		sum += ot.Latency
	}
	if res.Total < sum {
		t.Fatalf("total %v < sum of ops %v", res.Total, sum)
	}
}

func TestRunPatternWithTrafficAndProbes(t *testing.T) {
	e, sw := newEngine(switchsim.OVS())
	p := pattern.Pattern{
		Name: "t",
		Ops: []pattern.Op{
			{Kind: pattern.OpAdd, FlowID: 1, Priority: 10, SendProbe: true},
		},
		Traffic: []pattern.TrafficStep{{FlowID: 1, Count: 3}},
	}
	if _, err := e.Run(p); err != nil {
		t.Fatal(err)
	}
	if st := sw.Stats(); st.PacketsSeen != 4 {
		t.Fatalf("packets = %d, want 4", st.PacketsSeen)
	}
}

func TestRunAbortsOnRejection(t *testing.T) {
	e, _ := newEngine(switchsim.Switch2().WithTCAMCapacity(2))
	p := pattern.PriorityInstall(5, pattern.OrderSame, nil)
	res, err := e.Run(p)
	if err == nil {
		t.Fatal("expected table-full abort")
	}
	if len(res.Ops) != 2 {
		t.Fatalf("completed ops = %d, want 2", len(res.Ops))
	}
}

func TestTimeOps(t *testing.T) {
	e, _ := newEngine(switchsim.OVS())
	ops := pattern.PriorityInstall(10, pattern.OrderSame, nil).Ops
	d, err := e.TimeOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no time charged")
	}
}

func TestClearProbeRules(t *testing.T) {
	e, sw := newEngine(switchsim.OVS())
	for id := uint32(10); id < 15; id++ {
		if err := e.Install(id, 7); err != nil {
			t.Fatal(err)
		}
	}
	e.ClearProbeRules(10, 5, 7)
	_, _, software := sw.RuleCount()
	if software != 0 {
		t.Fatalf("rules left: %d", software)
	}
}

func TestProbeN(t *testing.T) {
	e, sw := newEngine(switchsim.OVS())
	if err := e.Install(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ProbeN(1, 5); err != nil {
		t.Fatal(err)
	}
	if st := sw.Stats(); st.PacketsSeen != 5 {
		t.Fatalf("packets = %d, want 5", st.PacketsSeen)
	}
}

func TestBenchmarkChannel(t *testing.T) {
	e, sw := newEngine(switchsim.Switch1())
	rep, err := BenchmarkChannel(e, ChannelBenchOptions{Ops: 100, Probes: 100})
	if err != nil {
		t.Fatal(err)
	}
	costs := sw.Profile().Costs
	// Same-priority add rate ≈ 1/AddBase.
	wantAdd := 1 / costs.AddBase.Seconds()
	if r := rep.AddPerSec / wantAdd; r < 0.7 || r > 1.4 {
		t.Fatalf("add rate %.0f/s vs expected %.0f/s", rep.AddPerSec, wantAdd)
	}
	wantMod := 1 / costs.ModBase.Seconds()
	if r := rep.ModPerSec / wantMod; r < 0.7 || r > 1.4 {
		t.Fatalf("mod rate %.0f/s vs expected %.0f/s", rep.ModPerSec, wantMod)
	}
	// Fast path well below punt path, both near calibration.
	if rep.FastRTT.Mean >= rep.PuntRTT.Mean {
		t.Fatalf("fast %v not below punt %v", rep.FastRTT.Mean, rep.PuntRTT.Mean)
	}
	if r := rep.FastRTT.Mean.Seconds() / sw.Profile().FastPath.Mean.Seconds(); r < 0.8 || r > 1.25 {
		t.Fatalf("fast RTT %v vs calibration %v", rep.FastRTT.Mean, sw.Profile().FastPath.Mean)
	}
	// Distribution digest ordering.
	if !(rep.FastRTT.Min <= rep.FastRTT.Median && rep.FastRTT.Median <= rep.FastRTT.P99) {
		t.Fatalf("summary disordered: %+v", rep.FastRTT)
	}
	// Device left clean.
	tcam, _, software := sw.RuleCount()
	if tcam != 0 || software != 0 {
		t.Fatalf("residue: %d/%d", tcam, software)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}
