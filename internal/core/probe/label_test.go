package probe

// label_test.go covers the engine's per-switch telemetry wiring: the
// auto-applied device label, the probe.rtt_ns{switch=...} histogram child,
// and the flight-recorder track fed by Probe.

import (
	"testing"
	"time"

	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

func TestEngineAutoLabelFeedsVecAndFlight(t *testing.T) {
	reg := telemetry.NewRegistry()
	fr := telemetry.NewFlightRecorder(16)
	s := switchsim.New(switchsim.Switch2())
	e := NewEngine(SimDevice{S: s})
	e.SetFlight(fr)
	e.SetTelemetry(reg, nil)

	if e.Label() != "Switch#2" && e.Label() != s.Profile().Name {
		t.Fatalf("auto label = %q, want profile name %q", e.Label(), s.Profile().Name)
	}

	if err := e.Install(1, 100); err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, _, err := e.Probe(1); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	agg, ok := snap.Histograms["probe.rtt_ns"]
	if !ok || agg.Count != n {
		t.Fatalf("aggregate rtt histogram = %+v", agg)
	}
	child, ok := snap.Histograms[telemetry.ChildName("probe.rtt_ns", "switch", e.Label())]
	if !ok || child.Count != n {
		t.Fatalf("labeled rtt child = %+v (snapshot keys %v)", child, len(snap.Histograms))
	}

	samples := fr.Track(e.Label()).Samples()
	if len(samples) != n {
		t.Fatalf("flight samples = %d, want %d", len(samples), n)
	}
	last := samples[n-1]
	if last.Seq != n || last.FlowID != 1 || last.RTT <= 0 || last.Punted {
		t.Fatalf("flight sample = %+v", last)
	}
	if last.Virt.IsZero() || last.Wall.IsZero() {
		t.Fatalf("flight sample missing clock stamps: %+v", last)
	}
	// The virtual stamp rides the device clock, not the wall clock.
	if !last.Virt.Equal(s.Now()) {
		t.Fatalf("virt stamp %v != device now %v", last.Virt, s.Now())
	}
}

func TestEngineSetLabelRebindAndClear(t *testing.T) {
	reg := telemetry.NewRegistry()
	fr := telemetry.NewFlightRecorder(8)
	s := switchsim.New(switchsim.OVS())
	e := NewEngine(SimDevice{S: s})
	e.SetFlight(fr)
	e.SetTelemetry(reg, nil)

	e.SetLabel("member-a")
	if err := e.Install(1, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Probe(1); err != nil {
		t.Fatal(err)
	}
	if got := fr.Track("member-a").Len(); got != 1 {
		t.Fatalf("member-a flight samples = %d, want 1", got)
	}

	e.SetLabel("")
	if _, _, err := e.Probe(1); err != nil {
		t.Fatal(err)
	}
	if got := fr.Track("member-a").Len(); got != 1 {
		t.Fatalf("unlabeled probe still recorded into old track: %d samples", got)
	}
	snap := reg.Snapshot()
	if snap.Histograms["probe.rtt_ns"].Count != 2 {
		t.Fatalf("aggregate count = %d, want 2", snap.Histograms["probe.rtt_ns"].Count)
	}
	if snap.Histograms[telemetry.ChildName("probe.rtt_ns", "switch", "member-a")].Count != 1 {
		t.Fatal("labeled child should have exactly the labeled probe")
	}
}

func TestEngineLabelNilTelemetryIsFree(t *testing.T) {
	s := switchsim.New(switchsim.Switch1())
	e := NewEngine(SimDevice{S: s}) // no registry, no flight recorder installed
	e.SetLabel("anything")
	if err := e.Install(1, 100); err != nil {
		t.Fatal(err)
	}
	rtt, _, err := e.Probe(1)
	if err != nil || rtt <= 0 {
		t.Fatalf("probe under nil telemetry: rtt=%v err=%v", rtt, err)
	}
	e.SetFlight(nil)
	e.SetTelemetry(nil, nil)
	if _, _, err := e.Probe(1); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFlightDefaultPickup(t *testing.T) {
	old := telemetry.DefaultFlight()
	defer telemetry.SetDefaultFlight(old)
	fr := telemetry.NewFlightRecorder(4)
	telemetry.SetDefaultFlight(fr)

	s := switchsim.New(switchsim.Switch2())
	e := NewEngine(SimDevice{S: s})
	if err := e.Install(1, 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Probe(1); err != nil {
		t.Fatal(err)
	}
	name := s.Profile().Name
	if got := fr.Track(name).Len(); got != 1 {
		t.Fatalf("default flight recorder samples = %d, want 1", got)
	}
	if got := fr.Track(name).Samples()[0]; got.RTT <= 0 || got.Wall.Before(time.Now().Add(-time.Minute)) {
		t.Fatalf("default flight sample = %+v", got)
	}
}
