package sched

import (
	"testing"
	"time"

	"tango/internal/core/infer"
	"tango/internal/core/pattern"
	"tango/internal/core/probe"
	"tango/internal/dag"
	"tango/internal/switchsim"
)

// testCard returns a hardware-like score card.
func testCard(name string) *pattern.ScoreCard {
	return &pattern.ScoreCard{
		SwitchName:      name,
		AddSamePriority: 400 * time.Microsecond,
		AddNewPriority:  900 * time.Microsecond,
		ShiftPerEntry:   14 * time.Microsecond,
		Mod:             6 * time.Millisecond,
		Del:             2 * time.Millisecond,
	}
}

func testDB(switches ...string) *pattern.DB {
	db := pattern.NewDB()
	for _, s := range switches {
		db.PutScore(testCard(s))
	}
	return db
}

// mixedGraph builds a single-switch graph of nAdd adds (descending input
// priorities, worst case), nMod mods, nDel dels, all independent.
func mixedGraph(sw string, nAdd, nMod, nDel int) *Graph {
	g := NewGraph()
	for i := 0; i < nAdd; i++ {
		g.AddNode(&Request{Switch: sw, Op: pattern.OpAdd, FlowID: uint32(1000 + i),
			Priority: uint16(5000 - i), HasPriority: true})
	}
	for i := 0; i < nMod; i++ {
		g.AddNode(&Request{Switch: sw, Op: pattern.OpMod, FlowID: uint32(i), Priority: 100, HasPriority: true})
	}
	for i := 0; i < nDel; i++ {
		g.AddNode(&Request{Switch: sw, Op: pattern.OpDel, FlowID: uint32(nMod + i), Priority: 100, HasPriority: true})
	}
	return g
}

// hwEngine builds an engine on a Switch #1 style device preloaded with
// rules [0, nPre) at priority 100 so mods and dels have targets.
func hwEngine(t *testing.T, nPre int) *probe.Engine {
	t.Helper()
	s := switchsim.New(switchsim.Switch1(), switchsim.WithSeed(3))
	e := probe.NewEngine(probe.SimDevice{S: s})
	for i := 0; i < nPre; i++ {
		if err := e.Install(uint32(i), 100); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestTangoOrderGroupsAndSorts(t *testing.T) {
	tg := &Tango{DB: testDB("s1"), SortPriorities: true}
	reqs := []*Request{
		{Switch: "s1", Op: pattern.OpAdd, Priority: 30, HasPriority: true},
		{Switch: "s1", Op: pattern.OpDel, Priority: 10, HasPriority: true},
		{Switch: "s1", Op: pattern.OpAdd, Priority: 10, HasPriority: true},
		{Switch: "s1", Op: pattern.OpMod, Priority: 20, HasPriority: true},
		{Switch: "s1", Op: pattern.OpAdd, Priority: 20, HasPriority: true},
	}
	got := tg.Order("s1", reqs, nil, nil)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	// Adds must come out ascending by priority and contiguous.
	var addPrios []uint16
	for _, r := range got {
		if r.Op == pattern.OpAdd {
			addPrios = append(addPrios, r.Priority)
		}
	}
	if len(addPrios) != 3 || addPrios[0] != 10 || addPrios[1] != 20 || addPrios[2] != 30 {
		t.Fatalf("add priorities = %v", addPrios)
	}
}

func TestTangoFallbackWithoutCard(t *testing.T) {
	tg := &Tango{}
	reqs := []*Request{
		{Op: pattern.OpAdd, Priority: 5, HasPriority: true},
		{Op: pattern.OpDel},
		{Op: pattern.OpMod},
	}
	got := tg.Order("unknown", reqs, nil, nil)
	if got[0].Op != pattern.OpDel || got[1].Op != pattern.OpMod || got[2].Op != pattern.OpAdd {
		t.Fatalf("fallback order: %v %v %v", got[0].Op, got[1].Op, got[2].Op)
	}
}

func TestDionysusCriticalPathOrder(t *testing.T) {
	g := NewGraph()
	// a -> b -> c (chain), d isolated. a has the longest path.
	a := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 1})
	b := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 2})
	c := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 3})
	d := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 4})
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	reqs := []*Request{g.Payload(d), g.Payload(a)}
	got := Dionysus{}.Order("s", reqs, []dag.NodeID{d, a}, g)
	if got[0].FlowID != 1 {
		t.Fatalf("critical-path node not first: %+v", got[0])
	}
}

func TestRunDrainsRespectingDependencies(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(&Request{Switch: "s1", Op: pattern.OpAdd, FlowID: 1, Priority: 10, HasPriority: true})
	b := g.AddNode(&Request{Switch: "s2", Op: pattern.OpAdd, FlowID: 2, Priority: 10, HasPriority: true})
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	db := testDB("s1", "s2")
	res, err := Run(g, &Tango{DB: db}, CardExecutor{DB: db}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
	if g.Len() != 0 {
		t.Fatal("graph not drained")
	}
}

func TestRunParallelMakespan(t *testing.T) {
	// Two independent switches: makespan is the max, not the sum.
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.AddNode(&Request{Switch: "s1", Op: pattern.OpMod, FlowID: uint32(i), Priority: 1, HasPriority: true})
		g.AddNode(&Request{Switch: "s2", Op: pattern.OpMod, FlowID: uint32(i), Priority: 1, HasPriority: true})
	}
	db := testDB("s1", "s2")
	res, err := Run(g, &Tango{DB: db}, CardExecutor{DB: db}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * testCard("x").Mod
	if res.Makespan != want {
		t.Fatalf("makespan = %v, want %v (parallel rounds)", res.Makespan, want)
	}
	if res.PerSwitch["s1"] != want || res.PerSwitch["s2"] != want {
		t.Fatalf("per-switch = %+v", res.PerSwitch)
	}
}

func TestTangoBeatsDionysusOnHardware(t *testing.T) {
	// The Figure 10 effect in miniature: a mixed batch on a hardware
	// switch. Tango groups deletes/mods and installs adds ascending;
	// Dionysus issues in arbitrary (input) order paying descending-priority
	// shifts.
	const nAdd, nMod, nDel = 150, 75, 75
	db := testDB(switchsim.Switch1().Name)

	run := func(s Scheduler) time.Duration {
		g := mixedGraph(switchsim.Switch1().Name, nAdd, nMod, nDel)
		e := hwEngine(t, nMod+nDel)
		res, err := Run(g, s, EngineExecutor{switchsim.Switch1().Name: e}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	dio := run(Dionysus{})
	tangoType := run(&Tango{DB: db})
	tangoFull := run(&Tango{DB: db, SortPriorities: true})
	if tangoFull >= dio {
		t.Fatalf("tango (%v) not faster than dionysus (%v)", tangoFull, dio)
	}
	if tangoFull > tangoType {
		t.Fatalf("priority sorting (%v) should not lose to type-only (%v)", tangoFull, tangoType)
	}
}

func TestEnforcePriorities(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 1})
	b := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 2})
	c := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 3})
	fixed := g.AddNode(&Request{Switch: "s", Op: pattern.OpAdd, FlowID: 4, Priority: 9999, HasPriority: true})
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	EnforcePriorities(g, 100)
	if g.Payload(a).Priority != 100 || g.Payload(b).Priority != 101 || g.Payload(c).Priority != 102 {
		t.Fatalf("levels: %d %d %d", g.Payload(a).Priority, g.Payload(b).Priority, g.Payload(c).Priority)
	}
	if g.Payload(fixed).Priority != 9999 {
		t.Fatal("enforcement clobbered an app-assigned priority")
	}
}

func TestConcurrentExtensionCoIssuesCrossSwitch(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(&Request{Switch: "s1", Op: pattern.OpMod, FlowID: 1, Priority: 1, HasPriority: true})
	b := g.AddNode(&Request{Switch: "s2", Op: pattern.OpMod, FlowID: 2, Priority: 1, HasPriority: true})
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	db := testDB("s1", "s2")
	res, err := Run(g, &Tango{DB: db}, CardExecutor{DB: db}, RunOptions{Concurrent: true, GuardTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 with concurrent issue", res.Rounds)
	}
	// Same-switch dependencies must NOT be co-issued.
	g2 := NewGraph()
	a2 := g2.AddNode(&Request{Switch: "s1", Op: pattern.OpMod, FlowID: 1, Priority: 1, HasPriority: true})
	b2 := g2.AddNode(&Request{Switch: "s1", Op: pattern.OpMod, FlowID: 2, Priority: 1, HasPriority: true})
	if err := g2.AddEdge(a2, b2); err != nil {
		t.Fatal(err)
	}
	res2, err := Run(g2, &Tango{DB: db}, CardExecutor{DB: db}, RunOptions{Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rounds != 2 {
		t.Fatalf("same-switch dependency co-issued: rounds = %d", res2.Rounds)
	}
}

func TestNonGreedyBatchingWins(t *testing.T) {
	// Switch X carries a slow independent op A (mod, 6ms on the test card
	// scaled: use Mod=10ms). Switch Y has a cheap op B whose successor C is
	// also on Y and expensive. Greedy: round1 max(A, B), round2 C — total
	// A + C. Non-greedy: round1 B alone (cheap), round2 {A, C} in parallel
	// — total B + max(A, C).
	card := func(name string, mod time.Duration) *pattern.ScoreCard {
		return &pattern.ScoreCard{SwitchName: name, Mod: mod,
			AddSamePriority: time.Millisecond, AddNewPriority: time.Millisecond,
			Del: time.Millisecond}
	}
	db := pattern.NewDB()
	db.PutScore(card("x", 10*time.Millisecond))
	db.PutScore(card("y", 10*time.Millisecond))

	build := func() *Graph {
		g := NewGraph()
		g.AddNode(&Request{Switch: "x", Op: pattern.OpMod, FlowID: 1, Priority: 1, HasPriority: true}) // A
		b := g.AddNode(&Request{Switch: "y", Op: pattern.OpDel, FlowID: 2, Priority: 1, HasPriority: true})
		c := g.AddNode(&Request{Switch: "y", Op: pattern.OpMod, FlowID: 3, Priority: 1, HasPriority: true})
		if err := g.AddEdge(b, c); err != nil {
			t.Fatal(err)
		}
		return g
	}
	tg := &Tango{DB: db}
	greedy, err := Run(build(), tg, CardExecutor{DB: db}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	nonGreedy, err := Run(build(), tg, CardExecutor{DB: db}, RunOptions{NonGreedy: true})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy: round1 = max(10ms mod on x, 1ms del on y) = 10ms; round2 =
	// 10ms mod on y → 20ms. Non-greedy: round1 = 1ms del; round2 =
	// max(10, 10) = 10ms → 11ms.
	if greedy.Makespan != 20*time.Millisecond {
		t.Fatalf("greedy makespan = %v", greedy.Makespan)
	}
	if nonGreedy.Makespan != 11*time.Millisecond {
		t.Fatalf("non-greedy makespan = %v", nonGreedy.Makespan)
	}
}

func TestNonGreedyFallsBackWithoutEstimator(t *testing.T) {
	// Dionysus implements no estimates; NonGreedy must be a no-op.
	g := NewGraph()
	g.AddNode(&Request{Switch: "s", Op: pattern.OpMod, FlowID: 1, Priority: 1, HasPriority: true})
	db := testDB("s")
	res, err := Run(g, Dionysus{}, CardExecutor{DB: db}, RunOptions{NonGreedy: true})
	if err != nil || res.Rounds != 1 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestRunErrorsOnMissingEngine(t *testing.T) {
	g := NewGraph()
	g.AddNode(&Request{Switch: "ghost", Op: pattern.OpAdd, FlowID: 1})
	_, err := Run(g, &Tango{}, EngineExecutor{}, RunOptions{})
	if err == nil {
		t.Fatal("expected error for unknown switch")
	}
}

func TestMeasuredCardDrivesScheduler(t *testing.T) {
	// End-to-end: fit a card by probing, then verify the scheduler picks
	// ascending adds for the hardware profile.
	s := switchsim.New(switchsim.Switch1(), switchsim.WithSeed(9))
	e := probe.NewEngine(probe.SimDevice{S: s})
	card, err := infer.MeasureCosts(e, switchsim.Switch1().Name, infer.CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db := pattern.NewDB()
	db.PutScore(card)
	tg := &Tango{DB: db, SortPriorities: true}
	reqs := []*Request{
		{Switch: card.SwitchName, Op: pattern.OpAdd, Priority: 300, HasPriority: true},
		{Switch: card.SwitchName, Op: pattern.OpAdd, Priority: 100, HasPriority: true},
		{Switch: card.SwitchName, Op: pattern.OpAdd, Priority: 200, HasPriority: true},
	}
	got := tg.Order(card.SwitchName, reqs, nil, nil)
	if got[0].Priority != 100 || got[1].Priority != 200 || got[2].Priority != 300 {
		t.Fatalf("measured card did not yield ascending order: %v %v %v",
			got[0].Priority, got[1].Priority, got[2].Priority)
	}
}

func TestDeadlineOrderingAndMisses(t *testing.T) {
	db := testDB("s")
	tg := &Tango{DB: db, SortPriorities: true}
	reqs := []*Request{
		{Switch: "s", Op: pattern.OpAdd, FlowID: 1, Priority: 10, HasPriority: true},
		{Switch: "s", Op: pattern.OpAdd, FlowID: 2, Priority: 30, HasPriority: true, InstallBy: 5 * time.Millisecond},
		{Switch: "s", Op: pattern.OpAdd, FlowID: 3, Priority: 20, HasPriority: true, InstallBy: 2 * time.Millisecond},
	}
	got := tg.Order("s", reqs, nil, nil)
	// Earliest deadline first, best-effort last.
	if got[0].FlowID != 3 || got[1].FlowID != 2 || got[2].FlowID != 1 {
		t.Fatalf("order: %d %d %d", got[0].FlowID, got[1].FlowID, got[2].FlowID)
	}

	// Misses: a batch taking ~3x Mod blows a deadline shorter than that.
	g := NewGraph()
	for i := 0; i < 3; i++ {
		g.AddNode(&Request{Switch: "s", Op: pattern.OpMod, FlowID: uint32(i),
			Priority: 1, HasPriority: true, InstallBy: 10 * time.Millisecond})
	}
	g.AddNode(&Request{Switch: "s", Op: pattern.OpMod, FlowID: 9,
		Priority: 1, HasPriority: true, InstallBy: time.Hour})
	// testCard Mod = 6ms; batch of 4 mods = 24ms > 10ms deadline.
	res, err := Run(g, tg, CardExecutor{DB: db}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 3 {
		t.Fatalf("misses = %d, want 3", res.DeadlineMisses)
	}
}

func TestTableView(t *testing.T) {
	v := NewTableView()
	v.Preload("s1", 3000, 200)
	v.Apply(&Request{Switch: "s1", Op: pattern.OpAdd, Priority: 1000})
	v.Apply(&Request{Switch: "s1", Op: pattern.OpAdd, Priority: 1000})
	v.Apply(&Request{Switch: "s1", Op: pattern.OpDel, Priority: 3000})
	v.Apply(&Request{Switch: "s1", Op: pattern.OpMod, Priority: 500}) // no-op
	if got := v.Higher("s1", 999); got != 201 {
		t.Fatalf("Higher(999) = %d, want 201 (199 preloaded + 2 adds)", got)
	}
	if got := v.Higher("s1", 1000); got != 199 {
		t.Fatalf("Higher(1000) = %d, want 199", got)
	}
	if got := v.Rules("s1"); got != 201 {
		t.Fatalf("Rules = %d, want 201", got)
	}
	if got := v.Priorities("s1"); len(got) != 2 || got[0] != 1000 || got[1] != 3000 {
		t.Fatalf("Priorities = %v", got)
	}
	if got := v.Higher("unknown", 0); got != 0 {
		t.Fatalf("unknown switch Higher = %d", got)
	}
}

func TestRunWithViewTracksExecution(t *testing.T) {
	db := testDB("s1")
	view := NewTableView()
	view.Preload("s1", 3000, 10)
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.AddNode(&Request{Switch: "s1", Op: pattern.OpDel, FlowID: uint32(i),
			Priority: 3000, HasPriority: true})
	}
	for i := 0; i < 5; i++ {
		g.AddNode(&Request{Switch: "s1", Op: pattern.OpAdd, FlowID: uint32(100 + i),
			Priority: 1000, HasPriority: true})
	}
	tg := &Tango{DB: db, SortPriorities: true, ExistingHigher: view.Higher}
	if _, err := RunWithView(g, tg, CardExecutor{DB: db}, RunOptions{}, view); err != nil {
		t.Fatal(err)
	}
	if got := view.Rules("s1"); got != 5 {
		t.Fatalf("post-run rules = %d, want 5 (10 preloaded deleted, 5 added)", got)
	}
	if got := view.Higher("s1", 0); got != 5 {
		t.Fatalf("Higher(0) = %d, want 5", got)
	}
}
