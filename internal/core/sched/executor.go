package sched

import (
	"fmt"
	"time"

	"tango/internal/core/pattern"
	"tango/internal/core/probe"
)

// EngineExecutor backs the scheduler with probing engines — one per switch,
// each an emulated device on its own virtual clock, so per-switch batch
// durations compose into a parallel makespan.
type EngineExecutor map[string]*probe.Engine

// Execute implements Executor.
func (x EngineExecutor) Execute(switchName string, ops []pattern.Op) (time.Duration, error) {
	e, ok := x[switchName]
	if !ok {
		return 0, fmt.Errorf("sched: no engine for switch %q", switchName)
	}
	return e.TimeOps(ops)
}

// CardExecutor estimates batch durations from score cards instead of
// executing them — used for fast what-if evaluation and for tests that
// need a deterministic executor.
type CardExecutor struct {
	DB *pattern.DB
}

// Execute implements Executor.
func (x CardExecutor) Execute(switchName string, ops []pattern.Op) (time.Duration, error) {
	card, ok := x.DB.Score(switchName)
	if !ok {
		return 0, fmt.Errorf("sched: no score card for switch %q", switchName)
	}
	return card.EstimateOps(ops, nil), nil
}
