package sched

import (
	"sort"
	"sync"
	"time"

	"tango/internal/core/pattern"
)

// TableView is the controller's shadow of each switch's resident rule set,
// tracked by priority. The controller installed every rule, so it can know
// the table composition without querying the switch; the view's Higher
// method plugs directly into Tango.ExistingHigher, giving the pattern
// oracle the information it needs to price TCAM shifts and to see that
// deleting high-priority rules before adding saves them.
type TableView struct {
	mu sync.RWMutex
	// counts[sw][priority] = resident rules at that priority.
	counts map[string]map[uint16]int
}

// NewTableView returns an empty view.
func NewTableView() *TableView {
	return &TableView{counts: map[string]map[uint16]int{}}
}

// Preload records n pre-existing rules at the given priority.
func (v *TableView) Preload(sw string, priority uint16, n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.bump(sw, priority, n)
}

func (v *TableView) bump(sw string, priority uint16, delta int) {
	m := v.counts[sw]
	if m == nil {
		m = map[uint16]int{}
		v.counts[sw] = m
	}
	m[priority] += delta
	if m[priority] <= 0 {
		delete(m, priority)
	}
}

// Apply folds one executed request into the view: adds insert a rule,
// deletes remove one, modifications leave the composition unchanged.
func (v *TableView) Apply(r *Request) {
	v.mu.Lock()
	defer v.mu.Unlock()
	switch r.Op {
	case pattern.OpAdd:
		v.bump(r.Switch, r.Priority, 1)
	case pattern.OpDel:
		v.bump(r.Switch, r.Priority, -1)
	}
}

// Higher returns the number of rules the controller believes are resident
// on sw with priority strictly greater than p. Its method value satisfies
// the Tango.ExistingHigher contract.
func (v *TableView) Higher(sw string, p uint16) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	n := 0
	for prio, c := range v.counts[sw] {
		if prio > p {
			n += c
		}
	}
	return n
}

// Rules returns the total rule count the view holds for sw.
func (v *TableView) Rules(sw string) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	n := 0
	for _, c := range v.counts[sw] {
		n += c
	}
	return n
}

// Priorities returns the distinct priorities present on sw, ascending —
// useful for diagnostics and priority-space planning.
func (v *TableView) Priorities(sw string) []uint16 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]uint16, 0, len(v.counts[sw]))
	for p := range v.counts[sw] {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// RunWithView drains the graph like Run and additionally folds every issued
// request into the view as it completes, so the oracle's table-state
// estimates stay current across rounds. The view couples batches *within*
// a round — under the serial order a later switch's oracle reads observe an
// earlier switch's applies — so view-tracked runs pin Workers to 1 to keep
// that order deterministic.
func RunWithView(g *Graph, s Scheduler, exec Executor, opts RunOptions, view *TableView) (*RunResult, error) {
	tracking := viewTrackingExecutor{exec: exec, view: view}
	opts.Workers = 1
	return Run(g, s, tracking, opts)
}

// viewTrackingExecutor wraps an executor, applying completed ops to a view.
type viewTrackingExecutor struct {
	exec Executor
	view *TableView
}

// Execute implements Executor.
func (t viewTrackingExecutor) Execute(switchName string, ops []pattern.Op) (time.Duration, error) {
	d, err := t.exec.Execute(switchName, ops)
	if err != nil {
		return d, err
	}
	for _, op := range ops {
		t.view.Apply(&Request{Switch: switchName, Op: op.Kind, Priority: op.Priority})
	}
	return d, nil
}
