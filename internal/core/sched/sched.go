// Package sched implements the Tango network scheduler (§6): it drains a
// DAG of switch requests by repeatedly extracting the independent set,
// ordering each switch's batch with the best-scoring rewrite pattern from
// the Tango score database (Algorithm 3), and issuing the batches. A
// Dionysus-style critical-path scheduler is provided as the comparison
// baseline of §7.2 — it schedules the same DAG but is oblivious to per-
// operation-type and priority-order cost diversity.
package sched

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tango/internal/core/pattern"
	"tango/internal/dag"
	"tango/internal/simclock"
	"tango/internal/telemetry"
)

// Request is one switch request (the req_elem of §6): an operation to
// perform at a given switch, optionally carrying an application-assigned
// priority and a soft deadline.
type Request struct {
	// Switch is the location field: which switch executes the request.
	Switch string
	// Op is the operation type (add / mod / del).
	Op pattern.OpKind
	// FlowID identifies the rule the operation targets.
	FlowID uint32
	// Priority is the rule priority. Meaningful only when HasPriority.
	Priority uint16
	// HasPriority distinguishes app-specified priorities (priority sorting
	// applies) from unassigned ones (priority enforcement may choose them).
	HasPriority bool
	// InstallBy is an optional deadline relative to schedule start; zero
	// means best effort.
	InstallBy time.Duration
}

// Graph is a dependency DAG over requests.
type Graph = dag.Graph[*Request]

// NewGraph returns an empty request graph.
func NewGraph() *Graph { return dag.New[*Request]() }

// Scheduler orders one switch's batch of independent requests.
type Scheduler interface {
	// Name labels the scheduler in experiment output.
	Name() string
	// Order returns reqs in issue order. ids are the corresponding DAG
	// nodes (for critical-path computations); g is the full graph.
	Order(switchName string, reqs []*Request, ids []dag.NodeID, g *Graph) []*Request
}

// Tango is the Basic Tango Scheduler of Algorithm 3 with the priority-
// sorting optimization: it evaluates the rewrite patterns — all six
// type-permutations crossed with ascending/descending add orders — against
// the switch's score card and issues the cheapest.
type Tango struct {
	// DB supplies per-switch score cards. Switches without a card fall
	// back to the universally safe pattern: deletes, then modifies, then
	// additions in ascending priority order.
	DB *pattern.DB
	// SortPriorities enables reordering adds by priority (§7's "Priority
	// sorting"). Without it adds keep their input order, so the scheduler
	// optimizes only the type pattern ("Tango (Type)" in Figure 10).
	SortPriorities bool
	// ExistingHigher, when set, tells the pattern oracle how many rules
	// with priority strictly above p the controller believes are resident
	// on the switch — state the controller has, since it installed those
	// rules. It lets the oracle see that deleting high-priority rules
	// before adding saves TCAM shifts. It must be safe for concurrent
	// calls when the runner uses parallel workers (RunOptions.Workers).
	ExistingHigher func(switchName string, p uint16) int
	// Metrics, when set, receives the per-pattern score distribution
	// (histogram "sched.pattern_score_ns": the estimated cost of every
	// rewrite candidate evaluated). Nil falls back to the process-wide
	// default registry; with neither, scoring records nothing.
	Metrics *telemetry.Registry

	scoreOnce sync.Once
	hScore    *telemetry.Histogram

	// cardMu guards the memoized DB.Score lookups below: one map lookup
	// per Order call instead of a database round trip, invalidated by the
	// database's score version.
	cardMu      sync.RWMutex
	cardVersion uint64
	cardCache   map[string]*pattern.ScoreCard
	// scratch pools the per-call ordering buffers, keeping Order
	// allocation-lean and safe under concurrent per-switch calls.
	scratch sync.Pool
}

// card resolves the switch's score card through the memoizing cache.
func (t *Tango) card(switchName string) *pattern.ScoreCard {
	if t.DB == nil {
		return nil
	}
	v := t.DB.ScoreVersion()
	t.cardMu.RLock()
	if t.cardCache != nil && t.cardVersion == v {
		if c, ok := t.cardCache[switchName]; ok {
			t.cardMu.RUnlock()
			return c
		}
	}
	t.cardMu.RUnlock()
	c, _ := t.DB.Score(switchName)
	t.cardMu.Lock()
	if t.cardCache == nil {
		t.cardCache = make(map[string]*pattern.ScoreCard)
	}
	if t.cardVersion != v {
		clear(t.cardCache)
		t.cardVersion = v
	}
	t.cardCache[switchName] = c
	t.cardMu.Unlock()
	return c
}

// scoreHist lazily binds the pattern-score histogram.
func (t *Tango) scoreHist() *telemetry.Histogram {
	t.scoreOnce.Do(func() {
		reg := t.Metrics
		if reg == nil {
			reg = telemetry.Default()
		}
		t.hScore = reg.Histogram("sched.pattern_score_ns")
	})
	return t.hScore
}

// Name implements Scheduler.
func (t *Tango) Name() string {
	if t.SortPriorities {
		return "tango-type+priority"
	}
	return "tango-type"
}

// Order implements Scheduler.
func (t *Tango) Order(switchName string, reqs []*Request, _ []dag.NodeID, _ *Graph) []*Request {
	// 12 = the 6 type-permutations × up to 2 add orders.
	var scoreBuf [12]float64
	ordered, scores, _ := t.plan(switchName, reqs, make([]*Request, 0, len(reqs)), scoreBuf[:0])
	t.observeScores(scores)
	return ordered
}

// observeScores folds candidate costs collected by plan into the
// pattern-score histogram. The parallel runner calls this during its
// deterministic aggregation pass, so histogram contents are identical
// whatever the worker count.
func (t *Tango) observeScores(scores []float64) {
	if len(scores) == 0 {
		return
	}
	h := t.scoreHist()
	for _, v := range scores {
		h.Observe(v)
	}
}

// orderScratch holds the buffers one plan call needs: the three op-type
// groups (adds twice, once per direction), their pattern.Op mirrors, and
// the streaming estimator. Pooled on the Tango so steady-state ordering
// allocates nothing.
type orderScratch struct {
	dels, mods, addsAsc, addsDesc         []*Request
	opsDel, opsMod, opsAddAsc, opsAddDesc []pattern.Op
	est                                   pattern.Estimator
}

// groupFor returns the request group for kind under the given add order.
func (sc *orderScratch) groupFor(kind pattern.OpKind, asc bool) []*Request {
	switch kind {
	case pattern.OpDel:
		return sc.dels
	case pattern.OpMod:
		return sc.mods
	default:
		if asc {
			return sc.addsAsc
		}
		return sc.addsDesc
	}
}

// opsFor returns the op mirror of groupFor.
func (sc *orderScratch) opsFor(kind pattern.OpKind, asc bool) []pattern.Op {
	switch kind {
	case pattern.OpDel:
		return sc.opsDel
	case pattern.OpMod:
		return sc.opsMod
	default:
		if asc {
			return sc.opsAddAsc
		}
		return sc.opsAddDesc
	}
}

func (t *Tango) getScratch() *orderScratch {
	if sc, ok := t.scratch.Get().(*orderScratch); ok {
		return sc
	}
	return &orderScratch{}
}

// deadlineCmp orders deadline-carrying requests first (earliest deadline
// first) so best-effort requests absorb the tail of the batch — the
// install_by semantics of the §6 request format.
func deadlineCmp(a, b *Request) int {
	da, db := a.InstallBy, b.InstallBy
	switch {
	case da > 0 && db > 0:
		return cmp.Compare(da, db)
	case da > 0:
		return -1
	case db > 0:
		return 1
	}
	return 0
}

// addAscCmp and addDescCmp order adds by deadline, then priority. A single
// stable sort on the composite key equals the former pair of stable sorts
// (priority first, then deadline).
func addAscCmp(a, b *Request) int {
	if c := deadlineCmp(a, b); c != 0 {
		return c
	}
	return cmp.Compare(a.Priority, b.Priority)
}

func addDescCmp(a, b *Request) int {
	if c := deadlineCmp(a, b); c != 0 {
		return c
	}
	return cmp.Compare(b.Priority, a.Priority)
}

// plan is the core of Order: it partitions reqs by op type into pooled
// scratch groups in a single pass, prices the six type-permutations crossed
// with the add orders against the switch's score card *without
// materializing any candidate* (the candidates differ only in group
// concatenation order, which the streaming estimator consumes group by
// group), then appends the winning ordering to dst. Each candidate's
// estimated cost is appended to scores for the caller to fold into the
// pattern-score histogram — deferred so parallel workers can replay them
// in deterministic order. Returns the extended dst and scores plus the
// winning cost, -1 when the switch has no score card and the universally
// safe fallback (deletes, modifies, adds ascending) was used.
func (t *Tango) plan(switchName string, reqs []*Request, dst []*Request, scores []float64) ([]*Request, []float64, time.Duration) {
	card := t.card(switchName)
	sc := t.getScratch()
	defer t.scratch.Put(sc)

	sc.dels, sc.mods, sc.addsAsc = sc.dels[:0], sc.mods[:0], sc.addsAsc[:0]
	for _, r := range reqs {
		switch r.Op {
		case pattern.OpDel:
			sc.dels = append(sc.dels, r)
		case pattern.OpMod:
			sc.mods = append(sc.mods, r)
		default:
			sc.addsAsc = append(sc.addsAsc, r)
		}
	}
	slices.SortStableFunc(sc.dels, deadlineCmp)
	slices.SortStableFunc(sc.mods, deadlineCmp)
	sortDesc := card != nil && t.SortPriorities
	if sortDesc {
		// The descending copy must branch off *before* the ascending sort:
		// both directions tie-break equal keys by input order.
		sc.addsDesc = append(sc.addsDesc[:0], sc.addsAsc...)
		slices.SortStableFunc(sc.addsDesc, addDescCmp)
	}
	if t.SortPriorities {
		slices.SortStableFunc(sc.addsAsc, addAscCmp)
	} else {
		slices.SortStableFunc(sc.addsAsc, deadlineCmp)
	}

	if card == nil {
		// No measurements: fall back to the pattern that is never worse on
		// any switch we have modelled.
		dst = append(dst, sc.dels...)
		dst = append(dst, sc.mods...)
		dst = append(dst, sc.addsAsc...)
		return dst, scores, -1
	}

	sc.opsDel = appendOps(sc.opsDel[:0], sc.dels)
	sc.opsMod = appendOps(sc.opsMod[:0], sc.mods)
	sc.opsAddAsc = appendOps(sc.opsAddAsc[:0], sc.addsAsc)
	if sortDesc {
		sc.opsAddDesc = appendOps(sc.opsAddDesc[:0], sc.addsDesc)
	}

	var existing func(uint16) int
	if t.ExistingHigher != nil {
		existing = func(p uint16) int { return t.ExistingHigher(switchName, p) }
	}
	directions := [2]bool{true, false}
	addOrders := directions[:1]
	if t.SortPriorities {
		addOrders = directions[:]
	}
	bestCost := time.Duration(-1)
	bestPerm, bestAsc := pattern.Permutations3[0], true
	for _, perm := range pattern.Permutations3 {
		for _, asc := range addOrders {
			sc.est.Begin(card, existing)
			for _, kind := range perm {
				sc.est.Feed(sc.opsFor(kind, asc))
			}
			cost := sc.est.Total()
			scores = append(scores, float64(cost))
			if bestCost < 0 || cost < bestCost {
				bestCost, bestPerm, bestAsc = cost, perm, asc
			}
		}
	}
	for _, kind := range bestPerm {
		dst = append(dst, sc.groupFor(kind, bestAsc)...)
	}
	return dst, scores, bestCost
}

// Dionysus is the baseline: critical-path scheduling that issues requests
// on longer dependency chains first but does not reorder by operation type
// or priority — exactly the diversity-obliviousness §7.2 compares against.
type Dionysus struct{}

// Name implements Scheduler.
func (Dionysus) Name() string { return "dionysus" }

// Order implements Scheduler.
func (Dionysus) Order(_ string, reqs []*Request, ids []dag.NodeID, g *Graph) []*Request {
	lengths := g.LongestPathLengths()
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return lengths[ids[idx[a]]] > lengths[ids[idx[b]]]
	})
	out := make([]*Request, len(reqs))
	for i, j := range idx {
		out[i] = reqs[j]
	}
	return out
}

// appendOps converts requests to pattern ops, appending into dst so
// callers can reuse a scratch buffer.
func appendOps(dst []pattern.Op, reqs []*Request) []pattern.Op {
	for _, r := range reqs {
		dst = append(dst, pattern.Op{Kind: r.Op, FlowID: r.FlowID, Priority: r.Priority})
	}
	return dst
}

// Executor issues an ordered batch of operations on one switch and reports
// how long the switch took. Experiments back this with per-switch emulated
// engines running on independent virtual clocks.
type Executor interface {
	Execute(switchName string, ops []pattern.Op) (time.Duration, error)
}

// RunOptions tunes Run.
type RunOptions struct {
	// Concurrent enables the §6 extension that issues a request whose
	// dependencies all sit on *other* switches in the same round, relying
	// on latency estimates plus a guard interval instead of barriers
	// (weak-consistency scenarios). GuardTime is added once per dependent
	// request issued this way.
	Concurrent bool
	GuardTime  time.Duration
	// NonGreedy enables the §6 non-greedy batching extension: before each
	// round the runner compares (by score-card estimate) the greedy
	// whole-independent-set batch against issuing only the prefix of
	// requests that unblock successors, letting the freed successors ride
	// in the next batch alongside the deferred remainder. Requires the
	// scheduler to implement BatchEstimator; ignored otherwise.
	NonGreedy bool
	// Workers caps the goroutines ordering and executing a round's
	// per-switch batches, which the paper's model says run in parallel.
	// 0 (the default) uses GOMAXPROCS; 1 forces the serial path. Workers
	// only compute: every result and every sched.* metric and trace span
	// is folded in on the calling goroutine in sorted switch order, so
	// RunResult and telemetry are identical whatever the worker count.
	// The one behavioural difference from the old serial loop is that a
	// failing batch no longer prevents the rest of its round from
	// executing (the first failure in switch order is still the one
	// reported). Schedulers and executors must tolerate concurrent
	// per-switch calls when Workers != 1; the built-in ones do.
	Workers int
	// Metrics receives run counters (rounds, requests, deadline misses),
	// the makespan gauge, and the per-batch duration histogram. Nil falls
	// back to the process-wide default registry; with neither, the run
	// records nothing.
	Metrics *telemetry.Registry
	// Tracer receives sched.round / sched.batch spans on the run's virtual
	// timeline (each switch on its own track). Nil falls back to the
	// process-wide default tracer.
	Tracer *telemetry.Tracer
}

// BatchEstimator is the optional scheduler capability the non-greedy
// extension needs: a cost estimate for executing a batch on a switch.
type BatchEstimator interface {
	EstimateBatch(switchName string, reqs []*Request) (time.Duration, bool)
}

// EstimateBatch implements BatchEstimator using the Tango score database.
// The winning candidate's score *is* the batch estimate, so no ordered
// slice is re-priced.
func (t *Tango) EstimateBatch(switchName string, reqs []*Request) (time.Duration, bool) {
	if t.DB == nil {
		return 0, false
	}
	var scoreBuf [12]float64
	_, scores, cost := t.plan(switchName, reqs, nil, scoreBuf[:0])
	t.observeScores(scores)
	if cost < 0 {
		return 0, false
	}
	return cost, true
}

// RunResult reports a schedule execution.
type RunResult struct {
	// Makespan is the network-wide completion time: rounds execute their
	// per-switch batches in parallel, so each round costs its slowest
	// switch, and rounds are serialised by the dependency barriers.
	Makespan time.Duration
	// Rounds is the number of dependency rounds used.
	Rounds int
	// PerSwitch is each switch's total busy time.
	PerSwitch map[string]time.Duration
	// DeadlineMisses counts requests whose switch batch completed after
	// their InstallBy deadline (measured from schedule start). Best-effort
	// requests (InstallBy == 0) never miss.
	DeadlineMisses int
}

// batchJob carries one switch's batch through a round: ids are assigned by
// the grouping pass, the middle fields are filled by a worker, and the
// aggregation pass folds them into the result. Jobs are pooled per switch
// across rounds so their slices reach a steady state and stop allocating.
type batchJob struct {
	sw      string
	round   int
	ids     []dag.NodeID
	reqs    []*Request
	ordered []*Request
	ops     []pattern.Op
	scores  []float64
	guards  time.Duration
	elapsed time.Duration
	err     error
}

// runBatches runs fn over every job on at most workers goroutines. Workers
// claim jobs off a shared index, so the assignment of job to goroutine is
// arbitrary — all determinism lives in the caller's aggregation pass.
func runBatches(jobs []*batchJob, workers int, fn func(*batchJob)) {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, job := range jobs {
			fn(job)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(jobs) {
					return
				}
				fn(jobs[n])
			}
		}()
	}
	wg.Wait()
}

// Run drains the graph with the given scheduler and executor, returning
// the simulated network-wide makespan. Each round reads the incremental
// dependency frontier, orders and executes the per-switch batches on a
// worker pool (RunOptions.Workers), folds the outcomes in deterministically,
// and retires the round with one O(out-degree) batch removal.
func Run(g *Graph, s Scheduler, exec Executor, opts RunOptions) (*RunResult, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	tr := opts.Tracer
	if tr == nil {
		tr = telemetry.DefaultTracer()
	}
	var (
		mRounds   = reg.Counter("sched.rounds")
		mRequests = reg.Counter("sched.requests")
		mMisses   = reg.Counter("sched.deadline_misses")
		gMakespan = reg.Gauge("sched.makespan_ns")
		hBatch    = reg.Histogram("sched.batch_ns")
	)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Tango defers its pattern-score telemetry to the aggregation pass so
	// worker interleaving can't reorder histogram samples; other schedulers
	// record from inside Order and are on their own under Workers > 1.
	tango, _ := s.(*Tango)
	res := &RunResult{PerSwitch: map[string]time.Duration{}}
	var (
		issue  []dag.NodeID
		jobs   = map[string]*batchJob{}
		active []*batchJob
		round  int
	)
	for g.Len() > 0 {
		indep := g.Frontier()
		if len(indep) == 0 {
			return nil, fmt.Errorf("sched: dependency graph stuck with %d nodes", g.Len())
		}
		issue = append(issue[:0], indep...)
		if opts.NonGreedy {
			if est, ok := s.(BatchEstimator); ok {
				issue = nonGreedyBatch(g, issue, est)
			}
		}
		if opts.Concurrent {
			issue = append(issue, crossSwitchFollowers(g, issue)...)
		}
		// Group by switch onto pooled jobs.
		round++
		active = active[:0]
		for _, id := range issue {
			sw := g.Payload(id).Switch
			job := jobs[sw]
			if job == nil {
				job = &batchJob{sw: sw}
				jobs[sw] = job
			}
			if job.round != round {
				job.round = round
				job.ids = job.ids[:0]
				active = append(active, job)
			}
			job.ids = append(job.ids, id)
		}
		slices.SortFunc(active, func(a, b *batchJob) int { return strings.Compare(a.sw, b.sw) })

		// Order and execute the round's batches in parallel. Workers only
		// read the graph; all mutation and accounting happens below.
		runBatches(active, workers, func(job *batchJob) {
			job.reqs = job.reqs[:0]
			job.guards = 0
			for _, id := range job.ids {
				job.reqs = append(job.reqs, g.Payload(id))
				if opts.Concurrent && g.InDegree(id) > 0 {
					job.guards += opts.GuardTime
				}
			}
			job.scores = job.scores[:0]
			if tango != nil {
				job.ordered, job.scores, _ = tango.plan(job.sw, job.reqs, job.ordered[:0], job.scores)
			} else {
				job.ordered = append(job.ordered[:0], s.Order(job.sw, job.reqs, job.ids, g)...)
			}
			job.ops = appendOps(job.ops[:0], job.ordered)
			job.elapsed, job.err = exec.Execute(job.sw, job.ops)
		})

		// Deterministic aggregation in sorted switch order: results,
		// counters, histograms, and trace spans all fold in here, so they
		// are bit-for-bit independent of the worker count.
		var roundMax time.Duration
		for _, job := range active {
			if job.err != nil {
				return nil, fmt.Errorf("sched: executing %d ops on %s: %w", len(job.ordered), job.sw, job.err)
			}
			if tango != nil {
				tango.observeScores(job.scores)
			}
			elapsed := job.elapsed + job.guards
			res.PerSwitch[job.sw] += elapsed
			finish := res.Makespan + elapsed
			for _, r := range job.ordered {
				if r.InstallBy > 0 && finish > r.InstallBy {
					res.DeadlineMisses++
					mMisses.Add(1)
				}
			}
			if elapsed > roundMax {
				roundMax = elapsed
			}
			hBatch.Observe(float64(elapsed))
			if tr != nil {
				// Batches within a round run in parallel, so each starts at
				// the round boundary of the composed virtual timeline.
				tr.Record("sched.batch", job.sw, simclock.Epoch.Add(res.Makespan), elapsed,
					map[string]any{"ops": len(job.ordered), "scheduler": s.Name(), "round": res.Rounds + 1})
			}
		}
		if tr != nil {
			tr.Record("sched.round", "", simclock.Epoch.Add(res.Makespan), roundMax,
				map[string]any{"round": res.Rounds + 1, "requests": len(issue)})
		}
		mRounds.Add(1)
		mRequests.Add(int64(len(issue)))
		res.Makespan += roundMax
		res.Rounds++
		if _, err := g.RemoveBatch(issue); err != nil {
			return nil, err
		}
	}
	gMakespan.Set(int64(res.Makespan))
	return res, nil
}

// nonGreedyBatch evaluates the §6 prefix alternative with a two-round
// lookahead and returns the batch to issue this round: either the full
// independent set (greedy) or only the subset with successors (prefix),
// whichever the estimates say finishes the two rounds sooner.
func nonGreedyBatch(g *Graph, indep []dag.NodeID, est BatchEstimator) []dag.NodeID {
	var prefix, rest []dag.NodeID
	for _, id := range indep {
		if len(g.Successors(id)) > 0 {
			prefix = append(prefix, id)
		} else {
			rest = append(rest, id)
		}
	}
	if len(prefix) == 0 || len(rest) == 0 {
		return indep
	}
	inSet := func(ids []dag.NodeID) map[dag.NodeID]bool {
		m := make(map[dag.NodeID]bool, len(ids))
		for _, id := range ids {
			m[id] = true
		}
		return m
	}
	// unlockedBy returns the nodes whose predecessors all sit in the batch
	// (given as both slice and set: the slice keeps iteration — and hence
	// estimator telemetry — deterministic).
	unlockedBy := func(ids []dag.NodeID, batch map[dag.NodeID]bool) []dag.NodeID {
		var out []dag.NodeID
		seen := map[dag.NodeID]bool{}
		for _, id := range ids {
			for _, succ := range g.Successors(id) {
				if seen[succ] || batch[succ] {
					continue
				}
				seen[succ] = true
				ok := true
				for _, p := range g.Predecessors(succ) {
					if !batch[p] {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, succ)
				}
			}
		}
		return out
	}
	roundCost := func(ids []dag.NodeID) (time.Duration, bool) {
		bySwitch := map[string][]*Request{}
		var switches []string
		for _, id := range ids {
			r := g.Payload(id)
			if _, ok := bySwitch[r.Switch]; !ok {
				switches = append(switches, r.Switch)
			}
			bySwitch[r.Switch] = append(bySwitch[r.Switch], r)
		}
		// Estimate in sorted switch order so the score histogram fills
		// identically on every run.
		sort.Strings(switches)
		var max time.Duration
		for _, sw := range switches {
			d, ok := est.EstimateBatch(sw, bySwitch[sw])
			if !ok {
				return 0, false
			}
			if d > max {
				max = d
			}
		}
		return max, true
	}

	// Greedy: round 1 = indep, round 2 = everything indep unlocks.
	g1, ok1 := roundCost(indep)
	g2, ok2 := roundCost(unlockedBy(indep, inSet(indep)))
	// Prefix: round 1 = prefix, round 2 = rest + what the prefix unlocks.
	p1, ok3 := roundCost(prefix)
	p2, ok4 := roundCost(append(append([]dag.NodeID(nil), rest...), unlockedBy(prefix, inSet(prefix))...))
	if !(ok1 && ok2 && ok3 && ok4) {
		return indep
	}
	if p1+p2 < g1+g2 {
		return prefix
	}
	return indep
}

// crossSwitchFollowers returns nodes not in the independent set whose
// predecessors (a) are all being issued this round and (b) all live on
// other switches — the candidates the concurrent extension may co-issue.
func crossSwitchFollowers(g *Graph, indep []dag.NodeID) []dag.NodeID {
	inRound := map[dag.NodeID]bool{}
	for _, id := range indep {
		inRound[id] = true
	}
	var extra []dag.NodeID
	for _, id := range indep {
		for _, succ := range g.Successors(id) {
			if inRound[succ] {
				continue
			}
			ok := true
			for _, p := range g.Predecessors(succ) {
				if !inRound[p] || g.Payload(p).Switch == g.Payload(succ).Switch {
					ok = false
					break
				}
			}
			if ok {
				inRound[succ] = true
				extra = append(extra, succ)
			}
		}
	}
	return extra
}

// EnforcePriorities implements the "priority enforcement" optimization of
// §7.2: when applications leave priorities unassigned, Tango chooses them.
// Requests at DAG depth d receive priority base+d, so (a) every dependency
// constraint is satisfiable by installing in ascending priority order and
// (b) the number of distinct priorities is the minimum possible — the DAG
// depth — which maximises cheap same-priority installations.
func EnforcePriorities(g *Graph, base uint16) {
	levels := g.Levels()
	for depth, nodes := range levels {
		for _, id := range nodes {
			r := g.Payload(id)
			if !r.HasPriority {
				r.Priority = base + uint16(depth)
				r.HasPriority = true
			}
		}
	}
}
