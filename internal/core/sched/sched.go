// Package sched implements the Tango network scheduler (§6): it drains a
// DAG of switch requests by repeatedly extracting the independent set,
// ordering each switch's batch with the best-scoring rewrite pattern from
// the Tango score database (Algorithm 3), and issuing the batches. A
// Dionysus-style critical-path scheduler is provided as the comparison
// baseline of §7.2 — it schedules the same DAG but is oblivious to per-
// operation-type and priority-order cost diversity.
package sched

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tango/internal/core/pattern"
	"tango/internal/dag"
	"tango/internal/simclock"
	"tango/internal/telemetry"
)

// Request is one switch request (the req_elem of §6): an operation to
// perform at a given switch, optionally carrying an application-assigned
// priority and a soft deadline.
type Request struct {
	// Switch is the location field: which switch executes the request.
	Switch string
	// Op is the operation type (add / mod / del).
	Op pattern.OpKind
	// FlowID identifies the rule the operation targets.
	FlowID uint32
	// Priority is the rule priority. Meaningful only when HasPriority.
	Priority uint16
	// HasPriority distinguishes app-specified priorities (priority sorting
	// applies) from unassigned ones (priority enforcement may choose them).
	HasPriority bool
	// InstallBy is an optional deadline relative to schedule start; zero
	// means best effort.
	InstallBy time.Duration
}

// Graph is a dependency DAG over requests.
type Graph = dag.Graph[*Request]

// NewGraph returns an empty request graph.
func NewGraph() *Graph { return dag.New[*Request]() }

// Scheduler orders one switch's batch of independent requests.
type Scheduler interface {
	// Name labels the scheduler in experiment output.
	Name() string
	// Order returns reqs in issue order. ids are the corresponding DAG
	// nodes (for critical-path computations); g is the full graph.
	Order(switchName string, reqs []*Request, ids []dag.NodeID, g *Graph) []*Request
}

// Tango is the Basic Tango Scheduler of Algorithm 3 with the priority-
// sorting optimization: it evaluates the rewrite patterns — all six
// type-permutations crossed with ascending/descending add orders — against
// the switch's score card and issues the cheapest.
type Tango struct {
	// DB supplies per-switch score cards. Switches without a card fall
	// back to the universally safe pattern: deletes, then modifies, then
	// additions in ascending priority order.
	DB *pattern.DB
	// SortPriorities enables reordering adds by priority (§7's "Priority
	// sorting"). Without it adds keep their input order, so the scheduler
	// optimizes only the type pattern ("Tango (Type)" in Figure 10).
	SortPriorities bool
	// ExistingHigher, when set, tells the pattern oracle how many rules
	// with priority strictly above p the controller believes are resident
	// on the switch — state the controller has, since it installed those
	// rules. It lets the oracle see that deleting high-priority rules
	// before adding saves TCAM shifts.
	ExistingHigher func(switchName string, p uint16) int
	// Metrics, when set, receives the per-pattern score distribution
	// (histogram "sched.pattern_score_ns": the estimated cost of every
	// rewrite candidate evaluated). Nil falls back to the process-wide
	// default registry; with neither, scoring records nothing.
	Metrics *telemetry.Registry

	scoreOnce sync.Once
	hScore    *telemetry.Histogram
}

// scoreHist lazily binds the pattern-score histogram.
func (t *Tango) scoreHist() *telemetry.Histogram {
	t.scoreOnce.Do(func() {
		reg := t.Metrics
		if reg == nil {
			reg = telemetry.Default()
		}
		t.hScore = reg.Histogram("sched.pattern_score_ns")
	})
	return t.hScore
}

// Name implements Scheduler.
func (t *Tango) Name() string {
	if t.SortPriorities {
		return "tango-type+priority"
	}
	return "tango-type"
}

// Order implements Scheduler.
func (t *Tango) Order(switchName string, reqs []*Request, _ []dag.NodeID, _ *Graph) []*Request {
	var card *pattern.ScoreCard
	if t.DB != nil {
		card, _ = t.DB.Score(switchName)
	}
	if card == nil {
		// No measurements: fall back to the pattern that is never worse on
		// any switch we have modelled.
		return t.assemble(reqs, [3]pattern.OpKind{pattern.OpDel, pattern.OpMod, pattern.OpAdd}, true)
	}
	var existing func(uint16) int
	if t.ExistingHigher != nil {
		existing = func(p uint16) int { return t.ExistingHigher(switchName, p) }
	}
	best := reqs
	bestCost := time.Duration(-1)
	addOrders := []bool{true}
	if t.SortPriorities {
		addOrders = []bool{true, false}
	}
	hScore := t.scoreHist()
	for _, perm := range pattern.Permutations3 {
		for _, asc := range addOrders {
			candidate := t.assemble(reqs, perm, asc)
			cost := card.EstimateOps(toOps(candidate), existing)
			hScore.Observe(float64(cost))
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				best = candidate
			}
		}
	}
	return best
}

// assemble groups requests by type in perm order; adds are sorted by
// priority (ascending or descending) when priority sorting is on. Within
// every group, deadline-carrying requests come first (earliest deadline
// first) so best-effort requests absorb the tail of the batch — the
// install_by semantics of the §6 request format.
func (t *Tango) assemble(reqs []*Request, perm [3]pattern.OpKind, asc bool) []*Request {
	out := make([]*Request, 0, len(reqs))
	for _, kind := range perm {
		group := make([]*Request, 0, len(reqs))
		for _, r := range reqs {
			if r.Op == kind {
				group = append(group, r)
			}
		}
		if kind == pattern.OpAdd && t.SortPriorities {
			sort.SliceStable(group, func(a, b int) bool {
				if asc {
					return group[a].Priority < group[b].Priority
				}
				return group[a].Priority > group[b].Priority
			})
		}
		sort.SliceStable(group, func(a, b int) bool {
			da, db := group[a].InstallBy, group[b].InstallBy
			switch {
			case da > 0 && db > 0:
				return da < db
			case da > 0:
				return true
			default:
				return false
			}
		})
		out = append(out, group...)
	}
	return out
}

// Dionysus is the baseline: critical-path scheduling that issues requests
// on longer dependency chains first but does not reorder by operation type
// or priority — exactly the diversity-obliviousness §7.2 compares against.
type Dionysus struct{}

// Name implements Scheduler.
func (Dionysus) Name() string { return "dionysus" }

// Order implements Scheduler.
func (Dionysus) Order(_ string, reqs []*Request, ids []dag.NodeID, g *Graph) []*Request {
	lengths := g.LongestPathLengths()
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return lengths[ids[idx[a]]] > lengths[ids[idx[b]]]
	})
	out := make([]*Request, len(reqs))
	for i, j := range idx {
		out[i] = reqs[j]
	}
	return out
}

// toOps converts requests to pattern ops.
func toOps(reqs []*Request) []pattern.Op {
	ops := make([]pattern.Op, len(reqs))
	for i, r := range reqs {
		ops[i] = pattern.Op{Kind: r.Op, FlowID: r.FlowID, Priority: r.Priority}
	}
	return ops
}

// Executor issues an ordered batch of operations on one switch and reports
// how long the switch took. Experiments back this with per-switch emulated
// engines running on independent virtual clocks.
type Executor interface {
	Execute(switchName string, ops []pattern.Op) (time.Duration, error)
}

// RunOptions tunes Run.
type RunOptions struct {
	// Concurrent enables the §6 extension that issues a request whose
	// dependencies all sit on *other* switches in the same round, relying
	// on latency estimates plus a guard interval instead of barriers
	// (weak-consistency scenarios). GuardTime is added once per dependent
	// request issued this way.
	Concurrent bool
	GuardTime  time.Duration
	// NonGreedy enables the §6 non-greedy batching extension: before each
	// round the runner compares (by score-card estimate) the greedy
	// whole-independent-set batch against issuing only the prefix of
	// requests that unblock successors, letting the freed successors ride
	// in the next batch alongside the deferred remainder. Requires the
	// scheduler to implement BatchEstimator; ignored otherwise.
	NonGreedy bool
	// Metrics receives run counters (rounds, requests, deadline misses),
	// the makespan gauge, and the per-batch duration histogram. Nil falls
	// back to the process-wide default registry; with neither, the run
	// records nothing.
	Metrics *telemetry.Registry
	// Tracer receives sched.round / sched.batch spans on the run's virtual
	// timeline (each switch on its own track). Nil falls back to the
	// process-wide default tracer.
	Tracer *telemetry.Tracer
}

// BatchEstimator is the optional scheduler capability the non-greedy
// extension needs: a cost estimate for executing a batch on a switch.
type BatchEstimator interface {
	EstimateBatch(switchName string, reqs []*Request) (time.Duration, bool)
}

// EstimateBatch implements BatchEstimator using the Tango score database.
func (t *Tango) EstimateBatch(switchName string, reqs []*Request) (time.Duration, bool) {
	if t.DB == nil {
		return 0, false
	}
	card, ok := t.DB.Score(switchName)
	if !ok {
		return 0, false
	}
	ordered := t.Order(switchName, reqs, nil, nil)
	var existing func(uint16) int
	if t.ExistingHigher != nil {
		existing = func(p uint16) int { return t.ExistingHigher(switchName, p) }
	}
	return card.EstimateOps(toOps(ordered), existing), true
}

// RunResult reports a schedule execution.
type RunResult struct {
	// Makespan is the network-wide completion time: rounds execute their
	// per-switch batches in parallel, so each round costs its slowest
	// switch, and rounds are serialised by the dependency barriers.
	Makespan time.Duration
	// Rounds is the number of dependency rounds used.
	Rounds int
	// PerSwitch is each switch's total busy time.
	PerSwitch map[string]time.Duration
	// DeadlineMisses counts requests whose switch batch completed after
	// their InstallBy deadline (measured from schedule start). Best-effort
	// requests (InstallBy == 0) never miss.
	DeadlineMisses int
}

// Run drains the graph with the given scheduler and executor, returning
// the simulated network-wide makespan.
func Run(g *Graph, s Scheduler, exec Executor, opts RunOptions) (*RunResult, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default()
	}
	tr := opts.Tracer
	if tr == nil {
		tr = telemetry.DefaultTracer()
	}
	var (
		mRounds   = reg.Counter("sched.rounds")
		mRequests = reg.Counter("sched.requests")
		mMisses   = reg.Counter("sched.deadline_misses")
		gMakespan = reg.Gauge("sched.makespan_ns")
		hBatch    = reg.Histogram("sched.batch_ns")
	)
	res := &RunResult{PerSwitch: map[string]time.Duration{}}
	for g.Len() > 0 {
		indep := g.IndependentSet()
		if len(indep) == 0 {
			return nil, fmt.Errorf("sched: dependency graph stuck with %d nodes", g.Len())
		}
		issue := append([]dag.NodeID(nil), indep...)
		if opts.NonGreedy {
			if est, ok := s.(BatchEstimator); ok {
				issue = nonGreedyBatch(g, issue, est)
			}
		}
		if opts.Concurrent {
			issue = append(issue, crossSwitchFollowers(g, issue)...)
		}
		// Group by switch, preserving deterministic order.
		bySwitch := map[string][]dag.NodeID{}
		var switches []string
		for _, id := range issue {
			sw := g.Payload(id).Switch
			if _, ok := bySwitch[sw]; !ok {
				switches = append(switches, sw)
			}
			bySwitch[sw] = append(bySwitch[sw], id)
		}
		sort.Strings(switches)

		var roundMax time.Duration
		for _, sw := range switches {
			ids := bySwitch[sw]
			reqs := make([]*Request, len(ids))
			guards := time.Duration(0)
			for i, id := range ids {
				reqs[i] = g.Payload(id)
				if opts.Concurrent && len(g.Predecessors(id)) > 0 {
					guards += opts.GuardTime
				}
			}
			ordered := s.Order(sw, reqs, ids, g)
			elapsed, err := exec.Execute(sw, toOps(ordered))
			if err != nil {
				return nil, fmt.Errorf("sched: executing %d ops on %s: %w", len(ordered), sw, err)
			}
			elapsed += guards
			res.PerSwitch[sw] += elapsed
			finish := res.Makespan + elapsed
			for _, r := range ordered {
				if r.InstallBy > 0 && finish > r.InstallBy {
					res.DeadlineMisses++
					mMisses.Add(1)
				}
			}
			if elapsed > roundMax {
				roundMax = elapsed
			}
			hBatch.Observe(float64(elapsed))
			if tr != nil {
				// Batches within a round run in parallel, so each starts at
				// the round boundary of the composed virtual timeline.
				tr.Record("sched.batch", sw, simclock.Epoch.Add(res.Makespan), elapsed,
					map[string]any{"ops": len(ordered), "scheduler": s.Name(), "round": res.Rounds + 1})
			}
		}
		if tr != nil {
			tr.Record("sched.round", "", simclock.Epoch.Add(res.Makespan), roundMax,
				map[string]any{"round": res.Rounds + 1, "requests": len(issue)})
		}
		mRounds.Add(1)
		mRequests.Add(int64(len(issue)))
		res.Makespan += roundMax
		res.Rounds++
		for _, id := range issue {
			if err := g.Remove(id); err != nil {
				return nil, err
			}
		}
	}
	gMakespan.Set(int64(res.Makespan))
	return res, nil
}

// nonGreedyBatch evaluates the §6 prefix alternative with a two-round
// lookahead and returns the batch to issue this round: either the full
// independent set (greedy) or only the subset with successors (prefix),
// whichever the estimates say finishes the two rounds sooner.
func nonGreedyBatch(g *Graph, indep []dag.NodeID, est BatchEstimator) []dag.NodeID {
	var prefix, rest []dag.NodeID
	for _, id := range indep {
		if len(g.Successors(id)) > 0 {
			prefix = append(prefix, id)
		} else {
			rest = append(rest, id)
		}
	}
	if len(prefix) == 0 || len(rest) == 0 {
		return indep
	}
	inSet := func(ids []dag.NodeID) map[dag.NodeID]bool {
		m := make(map[dag.NodeID]bool, len(ids))
		for _, id := range ids {
			m[id] = true
		}
		return m
	}
	// unlockedBy returns the nodes whose predecessors all sit in batch.
	unlockedBy := func(batch map[dag.NodeID]bool) []dag.NodeID {
		var out []dag.NodeID
		seen := map[dag.NodeID]bool{}
		for id := range batch {
			for _, succ := range g.Successors(id) {
				if seen[succ] || batch[succ] {
					continue
				}
				seen[succ] = true
				ok := true
				for _, p := range g.Predecessors(succ) {
					if !batch[p] {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, succ)
				}
			}
		}
		return out
	}
	roundCost := func(ids []dag.NodeID) (time.Duration, bool) {
		bySwitch := map[string][]*Request{}
		for _, id := range ids {
			r := g.Payload(id)
			bySwitch[r.Switch] = append(bySwitch[r.Switch], r)
		}
		var max time.Duration
		for sw, reqs := range bySwitch {
			d, ok := est.EstimateBatch(sw, reqs)
			if !ok {
				return 0, false
			}
			if d > max {
				max = d
			}
		}
		return max, true
	}

	// Greedy: round 1 = indep, round 2 = everything indep unlocks.
	g1, ok1 := roundCost(indep)
	g2, ok2 := roundCost(unlockedBy(inSet(indep)))
	// Prefix: round 1 = prefix, round 2 = rest + what the prefix unlocks.
	p1, ok3 := roundCost(prefix)
	p2, ok4 := roundCost(append(append([]dag.NodeID(nil), rest...), unlockedBy(inSet(prefix))...))
	if !(ok1 && ok2 && ok3 && ok4) {
		return indep
	}
	if p1+p2 < g1+g2 {
		return prefix
	}
	return indep
}

// crossSwitchFollowers returns nodes not in the independent set whose
// predecessors (a) are all being issued this round and (b) all live on
// other switches — the candidates the concurrent extension may co-issue.
func crossSwitchFollowers(g *Graph, indep []dag.NodeID) []dag.NodeID {
	inRound := map[dag.NodeID]bool{}
	for _, id := range indep {
		inRound[id] = true
	}
	var extra []dag.NodeID
	for _, id := range indep {
		for _, succ := range g.Successors(id) {
			if inRound[succ] {
				continue
			}
			ok := true
			for _, p := range g.Predecessors(succ) {
				if !inRound[p] || g.Payload(p).Switch == g.Payload(succ).Switch {
					ok = false
					break
				}
			}
			if ok {
				inRound[succ] = true
				extra = append(extra, succ)
			}
		}
	}
	return extra
}

// EnforcePriorities implements the "priority enforcement" optimization of
// §7.2: when applications leave priorities unassigned, Tango chooses them.
// Requests at DAG depth d receive priority base+d, so (a) every dependency
// constraint is satisfiable by installing in ascending priority order and
// (b) the number of distinct priorities is the minimum possible — the DAG
// depth — which maximises cheap same-priority installations.
func EnforcePriorities(g *Graph, base uint16) {
	levels := g.Levels()
	for depth, nodes := range levels {
		for _, id := range nodes {
			r := g.Payload(id)
			if !r.HasPriority {
				r.Priority = base + uint16(depth)
				r.HasPriority = true
			}
		}
	}
}
