package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestOrderPriorities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 10
	same := OrderSame.Priorities(n, rng)
	for _, p := range same {
		if p != same[0] {
			t.Fatal("same-order priorities differ")
		}
	}
	asc := OrderAscending.Priorities(n, rng)
	desc := OrderDescending.Priorities(n, rng)
	for i := 1; i < n; i++ {
		if asc[i] <= asc[i-1] {
			t.Fatal("ascending not increasing")
		}
		if desc[i] >= desc[i-1] {
			t.Fatal("descending not decreasing")
		}
	}
	rnd := OrderRandom.Priorities(n, rng)
	seen := map[uint16]bool{}
	for _, p := range rnd {
		if seen[p] {
			t.Fatal("random priorities collide")
		}
		seen[p] = true
	}
}

func TestPriorityInstallPattern(t *testing.T) {
	p := PriorityInstall(5, OrderAscending, nil)
	if len(p.Ops) != 5 {
		t.Fatalf("ops = %d", len(p.Ops))
	}
	for i, op := range p.Ops {
		if op.Kind != OpAdd || op.FlowID != uint32(i) {
			t.Fatalf("op %d = %+v", i, op)
		}
	}
}

func TestPermutationPattern(t *testing.T) {
	p := Permutation([3]OpKind{OpDel, OpMod, OpAdd}, 3, 2, 1, 100)
	if p.Name != "perm/del_mod_add" {
		t.Fatalf("name = %q", p.Name)
	}
	if len(p.Ops) != 6 {
		t.Fatalf("ops = %d", len(p.Ops))
	}
	if p.Ops[0].Kind != OpDel || p.Ops[1].Kind != OpMod || p.Ops[3].Kind != OpAdd {
		t.Fatalf("op order wrong: %+v", p.Ops)
	}
}

func TestScoreCardEstimateOrdering(t *testing.T) {
	card := &ScoreCard{
		AddSamePriority: 400 * time.Microsecond,
		AddNewPriority:  900 * time.Microsecond,
		ShiftPerEntry:   14 * time.Microsecond,
		Mod:             6 * time.Millisecond,
		Del:             2 * time.Millisecond,
	}
	n := 500
	mk := func(prio func(i int) uint16) []Op {
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = Op{Kind: OpAdd, Priority: prio(i)}
		}
		return ops
	}
	same := card.EstimateOps(mk(func(i int) uint16 { return 100 }), nil)
	asc := card.EstimateOps(mk(func(i int) uint16 { return uint16(100 + i) }), nil)
	desc := card.EstimateOps(mk(func(i int) uint16 { return uint16(2000 - i) }), nil)
	if !(same < asc && asc < desc) {
		t.Fatalf("estimate ordering: same=%v asc=%v desc=%v", same, asc, desc)
	}
	// Descending pays the full quadratic shift bill.
	wantShift := time.Duration(n*(n-1)/2) * card.ShiftPerEntry
	if desc-asc < wantShift {
		t.Fatalf("desc-asc = %v, want ≥ %v", desc-asc, wantShift)
	}
	// Existing higher-priority entries raise the cost.
	withExisting := card.EstimateOps(mk(func(i int) uint16 { return uint16(100 + i) }),
		func(p uint16) int { return 1000 })
	if withExisting <= asc {
		t.Fatal("existingHigher ignored")
	}
}

func TestScoreCardEstimateMixedOps(t *testing.T) {
	card := &ScoreCard{Mod: time.Millisecond, Del: 2 * time.Millisecond, AddNewPriority: 3 * time.Millisecond}
	ops := []Op{{Kind: OpMod}, {Kind: OpDel}, {Kind: OpAdd, Priority: 5}}
	if got := card.EstimateOps(ops, nil); got != 6*time.Millisecond {
		t.Fatalf("estimate = %v, want 6ms", got)
	}
}

func TestDBPatternsAndScores(t *testing.T) {
	db := NewDB()
	db.PutPattern(Pattern{Name: "b"})
	db.PutPattern(Pattern{Name: "a"})
	if got := db.Patterns(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("patterns = %v", got)
	}
	if _, ok := db.GetPattern("a"); !ok {
		t.Fatal("pattern a missing")
	}
	if _, ok := db.GetPattern("zzz"); ok {
		t.Fatal("phantom pattern")
	}
	db.PutScore(&ScoreCard{SwitchName: "s1"})
	db.PutScore(&ScoreCard{SwitchName: "s0"})
	if got := db.Switches(); len(got) != 2 || got[0] != "s0" {
		t.Fatalf("switches = %v", got)
	}
	if _, ok := db.Score("s1"); !ok {
		t.Fatal("score s1 missing")
	}
}

// Property: EstimateOps is invariant to flow IDs and monotone in op count.
func TestEstimateMonotoneProperty(t *testing.T) {
	card := &ScoreCard{
		AddSamePriority: time.Millisecond,
		AddNewPriority:  2 * time.Millisecond,
		ShiftPerEntry:   time.Microsecond,
		Mod:             time.Millisecond,
		Del:             time.Millisecond,
	}
	f := func(kinds []uint8, prios []uint16) bool {
		n := len(kinds)
		if len(prios) < n {
			n = len(prios)
		}
		if n > 200 {
			n = 200
		}
		ops := make([]Op, n)
		for i := 0; i < n; i++ {
			ops[i] = Op{Kind: OpKind(kinds[i] % 3), Priority: prios[i]}
		}
		prev := time.Duration(0)
		for i := 0; i <= n; i++ {
			cur := card.EstimateOps(ops[:i], nil)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
