// Package pattern defines Tango patterns — sequences of OpenFlow flow-mod
// commands paired with a corresponding data-traffic pattern — plus the
// central Tango Pattern and Score databases (TangoDB, §4 of the paper).
// The probing engine executes patterns against switches; the inference
// engine distils the measurements into per-switch ScoreCards; the scheduler
// consults the score database to pick rewrite orderings.
package pattern

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// OpKind is a flow-table operation type.
type OpKind int

// Operation kinds.
const (
	OpAdd OpKind = iota
	OpMod
	OpDel
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpMod:
		return "mod"
	default:
		return "del"
	}
}

// Op is one flow-mod step of a pattern. FlowID selects the probe rule the
// op targets (see packet.BuildProbe / flowtable.ExactProbeMatch); SendProbe
// asks the engine to follow the op with a matching data-plane packet.
type Op struct {
	Kind      OpKind
	FlowID    uint32
	Priority  uint16
	SendProbe bool
}

// TrafficStep is one step of a pattern's data-traffic component.
type TrafficStep struct {
	FlowID uint32
	Count  int
}

// Pattern is a named probing recipe.
type Pattern struct {
	Name        string
	Description string
	Ops         []Op
	Traffic     []TrafficStep
}

// Order enumerates the priority orderings of §3's installation experiments.
type Order int

// Priority orderings.
const (
	OrderSame Order = iota
	OrderAscending
	OrderDescending
	OrderRandom
)

// String implements fmt.Stringer.
func (o Order) String() string {
	switch o {
	case OrderSame:
		return "same"
	case OrderAscending:
		return "ascending"
	case OrderDescending:
		return "descending"
	default:
		return "random"
	}
}

// Orders lists all priority orderings.
var Orders = []Order{OrderSame, OrderAscending, OrderDescending, OrderRandom}

// Priorities returns n priorities following the ordering. Random draws from
// rng (required only for OrderRandom).
func (o Order) Priorities(n int, rng *rand.Rand) []uint16 {
	out := make([]uint16, n)
	const base = 1000
	switch o {
	case OrderSame:
		for i := range out {
			out[i] = base
		}
	case OrderAscending:
		for i := range out {
			out[i] = uint16(base + i)
		}
	case OrderDescending:
		for i := range out {
			out[i] = uint16(base + n - i)
		}
	default:
		perm := rng.Perm(n)
		for i := range out {
			out[i] = uint16(base + perm[i])
		}
	}
	return out
}

// PriorityInstall builds the pattern that installs n fresh flows with the
// given priority ordering — the Figure 3(c) experiment.
func PriorityInstall(n int, order Order, rng *rand.Rand) Pattern {
	prios := order.Priorities(n, rng)
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpAdd, FlowID: uint32(i), Priority: prios[i]}
	}
	return Pattern{
		Name:        fmt.Sprintf("priority-install/%s/%d", order, n),
		Description: fmt.Sprintf("install %d flows in %s priority order", n, order),
		Ops:         ops,
	}
}

// ModifyAll builds the pattern that modifies flows [0, n) previously
// installed at the given priority — half of the Figure 3(b) experiment.
func ModifyAll(n int, priority uint16) Pattern {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpMod, FlowID: uint32(i), Priority: priority}
	}
	return Pattern{
		Name:        fmt.Sprintf("modify-all/%d", n),
		Description: fmt.Sprintf("modify %d existing flows", n),
		Ops:         ops,
	}
}

// Permutation builds the Figure 3(a) pattern: nAdd adds, nMod mods, and
// nDel dels executed in the order given by perm (a permutation of
// {OpAdd, OpMod, OpDel}). Mods and dels target already-installed flows
// [0, nMod) and [nMod, nMod+nDel); adds create fresh flows. Adds use
// ascending priorities starting above base.
func Permutation(perm [3]OpKind, nAdd, nMod, nDel int, base uint16) Pattern {
	var ops []Op
	name := ""
	for _, k := range perm {
		if name != "" {
			name += "_"
		}
		name += k.String()
		switch k {
		case OpAdd:
			for i := 0; i < nAdd; i++ {
				ops = append(ops, Op{Kind: OpAdd, FlowID: uint32(100000 + i), Priority: base + uint16(i)})
			}
		case OpMod:
			for i := 0; i < nMod; i++ {
				ops = append(ops, Op{Kind: OpMod, FlowID: uint32(i), Priority: base})
			}
		case OpDel:
			for i := 0; i < nDel; i++ {
				ops = append(ops, Op{Kind: OpDel, FlowID: uint32(nMod + i), Priority: base})
			}
		}
	}
	return Pattern{
		Name:        "perm/" + name,
		Description: fmt.Sprintf("%d adds, %d mods, %d dels in %s order", nAdd, nMod, nDel, name),
		Ops:         ops,
	}
}

// Permutations3 lists all six orderings of add/mod/del. The delete-first
// orderings lead so that a scheduler breaking score ties takes them:
// deletions can only free TCAM space that later additions would otherwise
// shift past (the same bias the paper's example pattern list encodes).
var Permutations3 = [][3]OpKind{
	{OpDel, OpMod, OpAdd},
	{OpDel, OpAdd, OpMod},
	{OpMod, OpDel, OpAdd},
	{OpMod, OpAdd, OpDel},
	{OpAdd, OpDel, OpMod},
	{OpAdd, OpMod, OpDel},
}

// OpTiming records the measured latency of one executed op.
type OpTiming struct {
	Op      Op
	Latency time.Duration
}

// Result is the outcome of running a pattern.
type Result struct {
	Pattern string
	Total   time.Duration
	Ops     []OpTiming
}

// ScoreCard is the distilled cost model of one switch, fitted from probe
// measurements. It parallels the calibration constants of the emulator's
// ControlCosts but is *learned*, never copied — the whole point of Tango is
// that these numbers are inferred through the standard OpenFlow interface.
type ScoreCard struct {
	// SwitchName labels the device the card describes.
	SwitchName string
	// AddSamePriority is the per-op cost of an add at an already-used
	// priority.
	AddSamePriority time.Duration
	// AddNewPriority is the per-op cost of an add at a fresh priority with
	// no higher-priority entries present (ascending-order insertions).
	AddNewPriority time.Duration
	// ShiftPerEntry is the marginal cost per existing higher-priority entry
	// (the TCAM shift term); ~0 on software switches.
	ShiftPerEntry time.Duration
	// Mod and Del are per-op costs.
	Mod time.Duration
	Del time.Duration
	// TypeSwitch is the extra cost paid when an operation's class differs
	// from the previous one's — the measured batching effect that makes
	// grouping deletes/modifies/additions profitable even on switches with
	// flat per-op costs.
	TypeSwitch time.Duration
	// PriorityCurves holds measured total installation times by ordering
	// and rule count, for reporting and plotting (Figure 3(b)/(c)).
	PriorityCurves map[Order][]CurvePoint
	// PathLatency maps inferred forwarding-tier index (0 = fastest) to its
	// mean RTT, from size probing.
	PathLatency []time.Duration
}

// CurvePoint is one (rule count, total duration) measurement.
type CurvePoint struct {
	N     int
	Total time.Duration
}

// EstimateOps predicts the cost of executing ops in the given sequence,
// simulating the higher-priority entry count the way a bottom-packed TCAM
// pays it. existingHigher maps a priority to the number of higher-priority
// entries resident before the batch (nil means none); deletions executed
// earlier in the batch credit back the space they free, which is what makes
// delete-before-add orderings score better when deletions target
// high-priority rules.
func (c *ScoreCard) EstimateOps(ops []Op, existingHigher func(uint16) int) time.Duration {
	var e Estimator
	e.Begin(c, existingHigher)
	e.Feed(ops)
	return e.Total()
}

// countAbove returns how many entries of the ascending-sorted s exceed p.
func countAbove(s []uint16, p uint16) int {
	at := sort.Search(len(s), func(i int) bool { return s[i] > p })
	return len(s) - at
}

// containsPriority reports whether the ascending-sorted s contains p.
func containsPriority(s []uint16, p uint16) bool {
	at := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	return at < len(s) && s[at] == p
}

// insertSorted inserts p into the ascending-sorted s.
func insertSorted(s []uint16, p uint16) []uint16 {
	at := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	s = append(s, 0)
	copy(s[at+1:], s[at:])
	s[at] = p
	return s
}

// Estimator is the streaming form of ScoreCard.EstimateOps: Begin binds a
// card, Feed folds op groups in, Total reads the running estimate. Feeding
// a batch group by group prices the concatenated sequence, so a scheduler
// can score every candidate group ordering without materializing each one
// as a flat slice. The priority-tracking buffers are retained across Begin
// calls, making a reused Estimator allocation-free in steady state. An
// Estimator must not be used from multiple goroutines concurrently.
type Estimator struct {
	card           *ScoreCard
	existingHigher func(uint16) int
	// prios tracks priorities of adds fed so far; deleted tracks priorities
	// removed so far. Membership in prios doubles as the seen-priority test:
	// priorities are only ever inserted, never removed.
	prios, deleted []uint16
	total          time.Duration
	lastKind       OpKind
	started        bool
}

// Begin resets the estimator for a fresh sequence priced against card.
func (e *Estimator) Begin(card *ScoreCard, existingHigher func(uint16) int) {
	e.card = card
	e.existingHigher = existingHigher
	e.prios = e.prios[:0]
	e.deleted = e.deleted[:0]
	e.total = 0
	e.started = false
}

// Feed folds the next ops of the sequence into the estimate.
func (e *Estimator) Feed(ops []Op) {
	c := e.card
	for _, op := range ops {
		if e.started && op.Kind != e.lastKind {
			e.total += c.TypeSwitch
		}
		e.started = true
		e.lastKind = op.Kind
		switch op.Kind {
		case OpMod:
			e.total += c.Mod
		case OpDel:
			e.total += c.Del
			e.deleted = insertSorted(e.deleted, op.Priority)
		case OpAdd:
			higher := countAbove(e.prios, op.Priority)
			if e.existingHigher != nil {
				ex := e.existingHigher(op.Priority) - countAbove(e.deleted, op.Priority)
				if ex > 0 {
					higher += ex
				}
			}
			base := c.AddNewPriority
			if containsPriority(e.prios, op.Priority) {
				base = c.AddSamePriority
			}
			e.total += base + time.Duration(higher)*c.ShiftPerEntry
			e.prios = insertSorted(e.prios, op.Priority)
		}
	}
}

// Total returns the estimate of everything fed since Begin.
func (e *Estimator) Total() time.Duration { return e.total }

// DB is the central Tango Score and Pattern Database: a concurrency-safe
// registry of patterns and per-switch score cards. New patterns can be
// added continuously, as the architecture intends.
type DB struct {
	mu       sync.RWMutex
	patterns map[string]Pattern
	scores   map[string]*ScoreCard
	// scoreVersion increments on every PutScore, letting callers that cache
	// Score lookups (the scheduler memoizes cards per round) cheaply detect
	// staleness.
	scoreVersion uint64
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		patterns: make(map[string]Pattern),
		scores:   make(map[string]*ScoreCard),
	}
}

// PutPattern registers (or replaces) a pattern.
func (db *DB) PutPattern(p Pattern) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.patterns[p.Name] = p
}

// GetPattern looks a pattern up by name.
func (db *DB) GetPattern(name string) (Pattern, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, ok := db.patterns[name]
	return p, ok
}

// Patterns returns the registered pattern names in sorted order.
func (db *DB) Patterns() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.patterns))
	for n := range db.patterns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PutScore stores the score card for a switch.
func (db *DB) PutScore(card *ScoreCard) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.scores[card.SwitchName] = card
	db.scoreVersion++
}

// ScoreVersion returns a counter that changes whenever a score card is
// stored. A cached Score result is valid as long as the version it was
// taken at still matches.
func (db *DB) ScoreVersion() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.scoreVersion
}

// Score returns the score card for a switch.
func (db *DB) Score(switchName string) (*ScoreCard, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	c, ok := db.scores[switchName]
	return c, ok
}

// Switches returns the names of switches with score cards, sorted.
func (db *DB) Switches() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.scores))
	for n := range db.scores {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
