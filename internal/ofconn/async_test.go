package ofconn

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"tango/internal/core/probe"
	"tango/internal/openflow"
	"tango/internal/packet"
	"tango/internal/switchsim"
	"tango/internal/telemetry"
)

// dialFlakyProfile is dialFlaky with a chosen switch profile.
func dialFlakyProfile(t *testing.T, prof switchsim.Profile) (*Controller, *failingWriteConn) {
	t.Helper()
	sw := switchsim.New(prof, switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := &failingWriteConn{Conn: raw}
	c, err := NewController(fc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, fc
}

// TestFlowModAsyncPipelinesBatch is the happy path: a batch larger than the
// in-flight window lands entirely, per-op outcomes are all nil, and no XID
// stays registered afterwards.
func TestFlowModAsyncPipelinesBatch(t *testing.T) {
	c, _ := dialFlaky(t)
	const n = 2*asyncWindow + 7 // forces two internal window flushes
	fms := make([]*openflow.FlowMod, n)
	for i := range fms {
		fms[i] = probeAdd(uint32(i))
	}
	errs, err := c.FlowModBatch(fms)
	if err != nil {
		t.Fatalf("FlowModBatch: %v", err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("op %d: unexpected rejection %v", i, e)
		}
	}
	if got := c.pendingLen(); got != 0 {
		t.Fatalf("batch left %d pending XIDs", got)
	}
	flows, err := c.FlowStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != n {
		t.Fatalf("installed %d rules, want %d", len(flows), n)
	}
}

// TestFlowModBatchTableFullPerOp proves per-op error attribution: adds past
// a TCAM-only switch's capacity come back as switchsim.ErrTableFull on
// exactly the ops that overflowed, and the engine's pipelined InstallBatch
// agrees with its serial fallback on the installed count.
func TestFlowModBatchTableFullPerOp(t *testing.T) {
	c, _ := dialFlakyProfile(t, switchsim.Switch3())
	const n = 420
	fms := make([]*openflow.FlowMod, n)
	for i := range fms {
		fms[i] = probeAdd(uint32(i))
	}
	errs, err := c.FlowModBatch(fms)
	if err != nil {
		t.Fatalf("FlowModBatch: %v", err)
	}
	installed := 0
	for ; installed < n && errs[installed] == nil; installed++ {
	}
	if installed == 0 || installed == n {
		t.Fatalf("installed = %d, want a capacity rejection inside the batch", installed)
	}
	for i := installed; i < n; i++ {
		if !errors.Is(errs[i], switchsim.ErrTableFull) {
			t.Fatalf("op %d after capacity: err = %v, want ErrTableFull", i, errs[i])
		}
	}
	if got := c.pendingLen(); got != 0 {
		t.Fatalf("batch left %d pending XIDs", got)
	}

	// The serial reference on an identical fresh switch lands the same count.
	serial := switchsim.New(switchsim.Switch3(), switchsim.WithClock(fastClock()))
	e := probe.NewEngine(probe.SimDevice{S: serial})
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	sn, serr := e.InstallBatch(ids, 10)
	if !errors.Is(serr, switchsim.ErrTableFull) {
		t.Fatalf("serial InstallBatch err = %v, want ErrTableFull", serr)
	}
	if sn != installed {
		t.Fatalf("pipelined installed %d rules, serial %d", installed, sn)
	}
}

// TestFlowModAsyncWindowFull pins the window discipline: the op that would
// exceed asyncWindow first flushes the window, resolving every outstanding
// completion and releasing every XID, and leaves only itself in flight.
func TestFlowModAsyncWindowFull(t *testing.T) {
	c, _ := dialFlaky(t)
	comps := make([]*Completion, asyncWindow+1)
	for i := range comps {
		cp, err := c.FlowModAsync(probeAdd(uint32(i)))
		if err != nil {
			t.Fatalf("FlowModAsync %d: %v", i, err)
		}
		comps[i] = cp
	}
	for i := 0; i < asyncWindow; i++ {
		err, ok := comps[i].Err()
		if !ok {
			t.Fatalf("completion %d unresolved after window-full flush", i)
		}
		if err != nil {
			t.Fatalf("completion %d: %v", i, err)
		}
	}
	if _, ok := comps[asyncWindow].Err(); ok {
		t.Fatal("last op resolved before any covering barrier")
	}
	if got := c.pendingLen(); got != 1 {
		t.Fatalf("pending XIDs = %d, want 1 (the unflushed op)", got)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := comps[asyncWindow].Wait(); err != nil {
		t.Fatalf("last op: %v", err)
	}
	if got := c.pendingLen(); got != 0 {
		t.Fatalf("pending XIDs = %d after flush, want 0", got)
	}
}

// TestFlowModAsyncWindowFullFlushFailure covers the window-full error path:
// when the forced flush sinks on a dead pipe, FlowModAsync itself reports
// the failure, the outstanding completions resolve with it, and no XID
// leaks — including the never-registered overflowing op's.
func TestFlowModAsyncWindowFullFlushFailure(t *testing.T) {
	c, fc := dialFlaky(t)
	comps := make([]*Completion, asyncWindow)
	for i := range comps {
		cp, err := c.FlowModAsync(probeAdd(uint32(i)))
		if err != nil {
			t.Fatalf("FlowModAsync %d: %v", i, err)
		}
		comps[i] = cp
	}
	fc.arm(0)
	if _, err := c.FlowModAsync(probeAdd(asyncWindow)); err == nil {
		t.Fatal("FlowModAsync past a dead window: want error")
	}
	for i, cp := range comps {
		if err := cp.Wait(); err == nil {
			t.Fatalf("completion %d resolved nil across a failed flush", i)
		}
	}
	if got := c.pendingLen(); got != 0 {
		t.Fatalf("failed flush leaked %d pending XIDs", got)
	}
}

// TestFlowModAsyncSendFailure covers the asynchronous send-failure path: the
// write error surfaces at the flush (and on the op's completion), never as
// a silent success, and the XIDs are released.
func TestFlowModAsyncSendFailure(t *testing.T) {
	c, fc := dialFlaky(t)
	fc.arm(0)
	cp, err := c.FlowModAsync(probeAdd(1))
	if err != nil {
		// Queueing is decoupled from the wire; the failure belongs to Flush.
		t.Fatalf("FlowModAsync: %v", err)
	}
	if err := c.Flush(); err == nil {
		t.Fatal("Flush over failing writes: want error")
	}
	if err := cp.Wait(); err == nil {
		t.Fatal("completion resolved nil despite failed send")
	}
	if got := c.pendingLen(); got != 0 {
		t.Fatalf("send failure leaked %d pending XIDs", got)
	}
}

// TestFlowModAsyncBarrierFailure lets the flow-mod reach the wire and fails
// only the flush barrier's write: the flush errors, the completion resolves
// with the failure, and the XIDs are released.
func TestFlowModAsyncBarrierFailure(t *testing.T) {
	// An explicit registry so asyncWrites is a live counter the test can
	// poll to sequence the write-failure injection after the data write.
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fc := &failingWriteConn{Conn: raw}
	c, err := NewControllerOptions(fc, ControllerOptions{Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	cp, err := c.FlowModAsync(probeAdd(1))
	if err != nil {
		t.Fatalf("FlowModAsync: %v", err)
	}
	// Wait until the writer has put the flow-mod on the wire, so arming
	// cannot race the data write — only the barrier is left to fail.
	deadline := time.Now().Add(5 * time.Second)
	for c.tel.asyncWrites.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never wrote the queued flow-mod")
		}
		time.Sleep(time.Millisecond)
	}
	fc.arm(0)
	if err := c.Flush(); err == nil {
		t.Fatal("Flush with failing barrier write: want error")
	}
	if err := cp.Wait(); err == nil {
		t.Fatal("completion resolved nil despite failed barrier")
	}
	if got := c.pendingLen(); got != 0 {
		t.Fatalf("barrier failure leaked %d pending XIDs", got)
	}
}

// TestFlowModAsyncCloseWhileInflight closes the controller with unflushed
// ops in the window: every completion must resolve with an error (never
// hang, never report success), later issues must fail, and no XID survives.
func TestFlowModAsyncCloseWhileInflight(t *testing.T) {
	c, _ := dialFlaky(t)
	comps := make([]*Completion, 3)
	for i := range comps {
		cp, err := c.FlowModAsync(probeAdd(uint32(i)))
		if err != nil {
			t.Fatalf("FlowModAsync %d: %v", i, err)
		}
		comps[i] = cp
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, cp := range comps {
		if err := cp.Wait(); err == nil {
			t.Fatalf("completion %d resolved nil across Close", i)
		}
	}
	if _, err := c.FlowModAsync(probeAdd(9)); err == nil {
		t.Fatal("FlowModAsync after Close: want error")
	}
	if got := c.pendingLen(); got != 0 {
		t.Fatalf("close-while-inflight leaked %d pending XIDs", got)
	}
}

// TestSyncOpsFenceWindow proves the sync paths flush the pipelined window
// before touching the wire: a probe sent right after an async install must
// observe the rule (forwarded, not punted), which requires the fence to
// have completed the install's barrier first.
func TestSyncOpsFenceWindow(t *testing.T) {
	c, _ := dialFlaky(t)
	if _, err := c.FlowModAsync(probeAdd(1)); err != nil {
		t.Fatalf("FlowModAsync: %v", err)
	}
	data, err := packet.BuildProbe(packet.ProbeSpec{FlowID: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, punted, err := c.SendProbe(data, 1)
	if err != nil {
		t.Fatalf("SendProbe: %v", err)
	}
	if punted {
		t.Fatal("probe punted: fence did not flush the pending install")
	}
	flows, err := c.FlowStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 {
		t.Fatalf("flow count = %d, want 1", len(flows))
	}
}

// TestEngineBatchOverPipelinedChannel drives the probe engine's batch
// helpers end to end over TCP: InstallBatch lands every rule, and
// ClearProbeRules (riding ClearBatch) removes them all again.
func TestEngineBatchOverPipelinedChannel(t *testing.T) {
	c, _ := dialFlaky(t)
	e := probe.NewEngine(c)
	if !e.Pipelined() {
		t.Fatal("engine over ofconn.Controller should be pipelined")
	}
	ids := make([]uint32, 150)
	for i := range ids {
		ids[i] = uint32(i)
	}
	n, err := e.InstallBatch(ids, 10)
	if err != nil || n != len(ids) {
		t.Fatalf("InstallBatch = %d, %v; want %d, nil", n, err, len(ids))
	}
	flows, err := c.FlowStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != len(ids) {
		t.Fatalf("flow count = %d, want %d", len(flows), len(ids))
	}
	e.ClearProbeRules(0, uint32(len(ids)), 10)
	flows, err = c.FlowStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 0 {
		t.Fatalf("flow count after clear = %d, want 0", len(flows))
	}
}

// TestAsyncOpSpans checks the xid-level span segments of the pipelined path:
// every successfully flushed op lands one observation in each of the
// submit→enqueue, queue→wire and wire→barrier histograms, and the recorded
// durations are non-negative.
func TestAsyncOpSpans(t *testing.T) {
	sw := switchsim.New(switchsim.Switch2(), switchsim.WithClock(fastClock()))
	addr := startSwitch(t, sw)
	reg := telemetry.NewRegistry()
	c, err := DialOptions(addr, ControllerOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 17
	fms := make([]*openflow.FlowMod, n)
	for i := range fms {
		fms[i] = probeAdd(uint32(1000 + i))
	}
	errs, err := c.FlowModBatch(fms)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("op %d: %v", i, e)
		}
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"ofconn.controller.span.submit_enqueue_ns",
		"ofconn.controller.span.queue_wire_ns",
		"ofconn.controller.span.wire_barrier_ns",
	} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("%s missing from snapshot", name)
		}
		if h.Count != n {
			t.Fatalf("%s count = %d, want %d", name, h.Count, n)
		}
		if h.Min < 0 {
			t.Fatalf("%s min = %v, want >= 0", name, h.Min)
		}
	}
}

// TestAsyncOpSpansSkippedWhenUninstrumented checks the uninstrumented path
// stays stamp-free: with no metrics bound, completions carry zero timestamps.
func TestAsyncOpSpansSkippedWhenUninstrumented(t *testing.T) {
	c, _ := dialFlaky(t)
	cp, err := c.FlowModAsync(probeAdd(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Wait(); err != nil {
		t.Fatal(err)
	}
	if !cp.submit.IsZero() || !cp.enqueued.IsZero() || !cp.wrote.IsZero() {
		t.Fatalf("uninstrumented completion carries timestamps: %+v", cp)
	}
}

// TestControllerAutoLabel: a probe engine over a live channel must pick up
// the controller's datapath-ID label (Controller implements
// probe.LabeledDevice), so per-switch histogram children and flight tracks
// bind over TCP exactly as they do for emulated devices.
func TestControllerAutoLabel(t *testing.T) {
	c, _ := dialFlaky(t)
	e := probe.NewEngine(c)
	want := fmt.Sprintf("dpid-%#x", c.Features().DatapathID)
	if e.Label() != want {
		t.Fatalf("auto label = %q, want %q", e.Label(), want)
	}

	reg := telemetry.NewRegistry()
	e.SetTelemetry(reg, nil)
	e.SetFlight(telemetry.NewFlightRecorder(16))
	if err := e.Install(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Probe(1); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	child := telemetry.ChildName("probe.rtt_ns", "switch", want)
	if h, ok := snap.Histograms[child]; !ok || h.Count != 1 {
		t.Fatalf("labeled child %q: present=%v count=%+v", child, ok, h)
	}
}
