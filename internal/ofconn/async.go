package ofconn

// async.go is the controller's pipelined send path. The synchronous FlowMod
// pays one conn.Write syscall for the op, another for its barrier, and a
// full round trip before the next op may start; bulk installs (the doubling
// phase of size probing, probe-rule teardown) serialize thousands of those.
// The pipelined path instead queues encoded frames to a single writer
// goroutine that coalesces every immediately available frame into one
// conn.Write, and lets a bounded window of ops share one trailing barrier:
// n ops cost a handful of syscalls and one round trip instead of 2n and n.

import (
	"sync"
	"time"

	"tango/internal/openflow"
	"tango/internal/switchsim"
)

// asyncWindow is the default bound on how many flow-mods may be in flight —
// queued without a completed covering barrier. Issuing past the window
// flushes it first, so a runaway caller cannot build an unbounded backlog
// of unconfirmed ops. ControllerOptions.AsyncWindow overrides it per
// connection; window 1 degenerates to serial (one barrier per op).
const asyncWindow = 64

// wireFrame is one encoded message bound for the writer goroutine. A nil
// ack is fire-and-forget (flow-mods: their outcome arrives via the barrier
// protocol); barriers carry an ack so the flusher knows the bytes reached
// the wire — or didn't — before it starts awaiting the reply. cp, when
// non-nil, is the op's completion: the writer stamps its wire-write instant
// so the xid-level span segments can separate queueing delay from wire RTT.
type wireFrame struct {
	data []byte
	ack  chan error
	cp   *Completion
}

// asyncState is the controller's pipelining state. Its mutex is separate
// from Controller.mu (the xid table): the two are never held together.
type asyncState struct {
	mu sync.Mutex
	// window holds the issued-but-unflushed completions, in issue order.
	window []*Completion
	// queue feeds the writer goroutine, started lazily on first use.
	queue   chan wireFrame
	started bool
	closed  bool
	wg      sync.WaitGroup
}

// Completion is the handle for one asynchronous flow-mod. It resolves when
// a flush's trailing barrier covers the op; err is written exactly once
// before done is closed.
type Completion struct {
	c    *Controller
	xid  uint32
	ch   chan openflow.Message
	done chan struct{}
	err  error

	// Span timestamps, stamped only when telemetry is bound (zero
	// otherwise): submit at FlowModAsync entry, enqueued when the frame is
	// handed to the writer, wrote when its bytes hit the wire (stamped by
	// the writer goroutine; the flush's barrier ack orders that write
	// before any read here). Resolved into the
	// ofconn.controller.span.* histograms by flushWindow.
	submit   time.Time
	enqueued time.Time
	wrote    time.Time
}

// Wait blocks until a barrier covering the op has completed and returns the
// op's outcome: nil, switchsim.ErrTableFull, the switch's *openflow.Error,
// or the channel failure that sank the flush. If the op is still unflushed,
// Wait flushes the window itself.
func (cp *Completion) Wait() error {
	select {
	case <-cp.done:
		return cp.err
	default:
	}
	// Whoever snapshots the window containing this completion resolves it —
	// our flush, or a concurrent one that got there first. Either way done
	// closes, even on a dead connection (the flush then resolves everything
	// with the channel error).
	_, _ = cp.c.flushWindow()
	<-cp.done
	return cp.err
}

// Err returns the resolved outcome without blocking; ok reports whether the
// op has been covered by a barrier yet.
func (cp *Completion) Err() (err error, ok bool) {
	select {
	case <-cp.done:
		return cp.err, true
	default:
		return nil, false
	}
}

// FlowModAsync queues the flow-mod on the pipelined send path and returns
// its completion handle without waiting for the switch. fm is serialized
// before return, so the caller may immediately reuse or mutate it. The op
// is confirmed only when a trailing barrier covers it: Completion.Wait (or
// Flush) reports the outcome, mapping table-full rejections to
// switchsim.ErrTableFull exactly like the synchronous path. At most
// ControllerOptions.AsyncWindow ops may be outstanding; issuing past the window first
// flushes it, and a flush-level (channel) failure surfaces here with
// nothing left pending. Per-op rejections inside that forced flush do not
// surface here — they belong to their own completions.
func (c *Controller) FlowModAsync(fm *openflow.FlowMod) (*Completion, error) {
	spans := c.tel.spansEnabled()
	var submit time.Time
	if spans {
		submit = time.Now()
	}
	a := &c.async
	a.mu.Lock()
	full := len(a.window) >= c.window
	a.mu.Unlock()
	if full {
		if _, err := c.flushWindow(); err != nil {
			return nil, err
		}
	}
	xid, ch, err := c.register()
	if err != nil {
		return nil, err
	}
	fm.SetXID(xid)
	data := fm.Marshal(nil)
	cp := &Completion{c: c, xid: xid, ch: ch, done: make(chan struct{}), submit: submit}
	a.mu.Lock()
	if err := c.enqueueLocked(wireFrame{data: data, cp: cp}); err != nil {
		a.mu.Unlock()
		c.unregister(xid)
		return nil, err
	}
	if spans {
		cp.enqueued = time.Now()
	}
	a.window = append(a.window, cp)
	a.mu.Unlock()
	c.tel.asyncQueued.Add(1)
	return cp, nil
}

// Flush forces every queued flow-mod onto the wire, awaits one trailing
// barrier covering them, and resolves their completions. It returns the
// channel failure if the flush itself sank, otherwise the first switch-side
// rejection among the flushed ops (FlowMods' contract); use the individual
// completions to attribute rejections per op. With nothing in flight it is
// a no-op.
func (c *Controller) Flush() error {
	reject, err := c.flushWindow()
	if err != nil {
		return err
	}
	return reject
}

// flushWindow is the flush core. It snapshots and clears the window, sends
// one barrier through the queue (keeping wire order), awaits the reply, and
// resolves every snapshotted completion — on a failed flush, all of them
// with the failure, so no Wait can hang. err is the flush-level failure
// only; per-op rejections are reported via reject and the completions.
// Splitting the two keeps internal flushes (window pressure, the sync-path
// fence) from misattributing an earlier op's table-full to the current
// operation.
func (c *Controller) flushWindow() (reject, err error) {
	a := &c.async
	a.mu.Lock()
	window := a.window
	a.window = nil
	a.mu.Unlock()
	if len(window) == 0 {
		return nil, nil
	}
	c.tel.asyncFlushes.Add(1)
	ferr := c.barrierAsync()
	var resolve time.Time
	if ferr == nil && c.tel.spansEnabled() {
		// One stamp for the whole window: the trailing barrier resolved
		// every op at the same instant.
		resolve = time.Now()
	}
	for _, cp := range window {
		c.unregister(cp.xid)
		if !resolve.IsZero() {
			c.noteOpSpans(cp, resolve)
		}
		opErr := ferr
		if ferr == nil {
			// The agent writes an op's error reply before the barrier reply,
			// so after the barrier a non-blocking read is race free — same
			// guarantee the synchronous FlowMod relies on.
			select {
			case msg := <-cp.ch:
				if oe, ok := msg.(*openflow.Error); ok {
					if oe.IsTableFull() {
						opErr = switchsim.ErrTableFull
					} else {
						opErr = oe
					}
				}
			default:
			}
		}
		cp.err = opErr
		close(cp.done)
		if opErr != nil && reject == nil {
			reject = opErr
		}
	}
	return reject, ferr
}

// noteOpSpans records one resolved op's xid-level segments: submit→enqueue
// (window admission, including any forced flush), enqueue→wire-write (the
// writer's queueing delay — the component that must never pollute a
// measurement probe's RTT), and wire-write→barrier-resolve (wire round trip
// plus switch processing). Only called on a successful flush, whose barrier
// ack ordered the writer's wrote stamp before this read; a zero wrote stamp
// (frame never written, e.g. enqueued after a poisoned write) skips the
// wire-relative segments.
func (c *Controller) noteOpSpans(cp *Completion, resolve time.Time) {
	if cp.submit.IsZero() {
		return
	}
	c.tel.hSubmitEnqueue.Observe(float64(cp.enqueued.Sub(cp.submit)))
	if cp.wrote.IsZero() {
		return
	}
	c.tel.hQueueWire.Observe(float64(cp.wrote.Sub(cp.enqueued)))
	c.tel.hWireBarrier.Observe(float64(resolve.Sub(cp.wrote)))
	if tr := c.tel.tracer; tr != nil {
		args := map[string]any{"xid": cp.xid}
		tr.Record("ofconn.op.enqueue", "ofconn.async", cp.submit, cp.enqueued.Sub(cp.submit), args)
		tr.Record("ofconn.op.queue", "ofconn.async", cp.enqueued, cp.wrote.Sub(cp.enqueued), args)
		tr.Record("ofconn.op.barrier", "ofconn.async", cp.wrote, resolve.Sub(cp.wrote), args)
	}
}

// barrierAsync sends a barrier through the writer queue — behind every
// already-queued frame — and awaits its reply. The ack round trip through
// the writer guarantees the barrier's bytes (and everything queued before
// it) reached the wire before the await starts.
func (c *Controller) barrierAsync() error {
	xid, ch, err := c.register()
	if err != nil {
		return err
	}
	bar := &openflow.BarrierRequest{Header: openflow.Header{Xid: xid}}
	ack := make(chan error, 1)
	c.async.mu.Lock()
	qerr := c.enqueueLocked(wireFrame{data: bar.Marshal(nil), ack: ack})
	c.async.mu.Unlock()
	if qerr != nil {
		c.unregister(xid)
		return qerr
	}
	if werr := <-ack; werr != nil {
		c.unregister(xid)
		return werr
	}
	if _, err := c.await(xid, ch); err != nil {
		c.unregister(xid)
		return err
	}
	return nil
}

// FlowModBatch applies the flow-mods in order over the pipelined path with
// a shared trailing barrier per window, returning per-op outcomes: errs has
// len(fms) and errs[i] is nil when op i was accepted. Later ops still
// execute after a rejection (OpenFlow has no transactional abort). The
// batch-level error reports channel failures only; on one, every op from
// the failure point on carries it. This method is the controller's
// implementation of the probe engine's PipelinedDevice contract.
func (c *Controller) FlowModBatch(fms []*openflow.FlowMod) ([]error, error) {
	errs := make([]error, len(fms))
	comps := make([]*Completion, len(fms))
	var cerr error
	for i, fm := range fms {
		cp, err := c.FlowModAsync(fm)
		if err != nil {
			for j := i; j < len(fms); j++ {
				errs[j] = err
			}
			cerr = err
			break
		}
		comps[i] = cp
	}
	if _, ferr := c.flushWindow(); ferr != nil && cerr == nil {
		cerr = ferr
	}
	for i, cp := range comps {
		if cp != nil {
			// Non-blocking in practice: the flush above resolved everything,
			// successfully or with the channel error.
			errs[i] = cp.Wait()
		}
	}
	return errs, cerr
}

// fence serialises the synchronous send paths behind the pipelined one: any
// open window is flushed — completions resolved, barrier done — before a
// direct write may touch the connection, so a sync op's barrier can never
// overtake a queued flow-mod. With no window open it costs one mutex probe
// and performs no writes, keeping pure-sync controllers byte-for-byte
// identical to the pre-pipelining behaviour. Per-op rejections stay with
// their completions and do not leak into the fencing op's result.
func (c *Controller) fence() error {
	c.async.mu.Lock()
	empty := len(c.async.window) == 0
	c.async.mu.Unlock()
	if empty {
		return nil
	}
	_, err := c.flushWindow()
	return err
}

// enqueueLocked hands a frame to the writer goroutine, starting it on first
// use. Callers hold async.mu, which makes the closed check and the channel
// send atomic with respect to shutdown. The send cannot block: the queue's
// capacity exceeds the window bound plus one barrier, and the writer drains
// independently of every lock.
func (c *Controller) enqueueLocked(f wireFrame) error {
	a := &c.async
	if a.closed {
		return ErrClosed
	}
	if !a.started {
		a.queue = make(chan wireFrame, 2*c.window+2)
		a.started = true
		a.wg.Add(1)
		go c.asyncWriter()
	}
	a.queue <- f
	return nil
}

// asyncWriter is the connection's single writer goroutine. It drains the
// frame queue, concatenating every immediately available frame into one
// conn.Write, and acknowledges barrier frames once their bytes are on the
// wire. After the first write error the pipe is poisoned: nothing further
// is written and every subsequent ack reports the error, so a barrier
// queued behind a failed op can never report success.
func (c *Controller) asyncWriter() {
	defer c.async.wg.Done()
	var (
		buf    []byte
		acks   []chan error
		cps    []*Completion
		sticky error
	)
	for f := range c.async.queue {
		buf = append(buf[:0], f.data...)
		acks = acks[:0]
		cps = cps[:0]
		frames := int64(1)
		if f.ack != nil {
			acks = append(acks, f.ack)
		}
		if f.cp != nil && !f.cp.submit.IsZero() {
			cps = append(cps, f.cp)
		}
	coalesce:
		for {
			select {
			case f2, ok := <-c.async.queue:
				if !ok {
					break coalesce
				}
				buf = append(buf, f2.data...)
				frames++
				if f2.ack != nil {
					acks = append(acks, f2.ack)
				}
				if f2.cp != nil && !f2.cp.submit.IsZero() {
					cps = append(cps, f2.cp)
				}
			default:
				break coalesce
			}
		}
		if sticky == nil {
			if _, err := c.conn.Write(buf); err != nil {
				sticky = err
			} else {
				c.tel.msgsOut.Add(frames)
				c.tel.asyncWrites.Add(1)
				if len(cps) > 0 {
					// One stamp per coalesced batch: every frame in it hit
					// the wire in the same syscall. Reads are ordered behind
					// this by the flush barrier's ack round trip.
					wrote := time.Now()
					for _, cp := range cps {
						cp.wrote = wrote
					}
				}
			}
		}
		for _, ach := range acks {
			ach <- sticky
		}
	}
}

// shutdownAsync stops the writer goroutine and fails all future enqueues.
// Queued frames are still drained (and their acks answered — with the write
// error the closed connection now produces), so no flusher hangs.
func (c *Controller) shutdownAsync() {
	a := &c.async
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		if a.started {
			close(a.queue)
		}
	}
	a.mu.Unlock()
	a.wg.Wait()
}
